// Tests for the SLO engine (obs/slo.hpp): burn-rate math, the
// zero-width-budget cap, the alert latch into the event plumbing, the
// exact nearest-rank p99, and the slo.* metrics export
// (docs/observability.md, "Causal tracing & SLOs").
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"

namespace ftla {
namespace {

using obs::SloEngine;
using obs::SloKind;
using obs::SloSpec;
using obs::SloState;

SloSpec availability_slo(double objective, double alert_burn_rate = 1.0) {
  SloSpec spec;
  spec.name = "availability";
  spec.kind = SloKind::Availability;
  spec.objective = objective;
  spec.alert_burn_rate = alert_burn_rate;
  return spec;
}

TEST(SloEngine, BurnRateIsBadFractionOverBudget) {
  SloEngine slo;
  slo.add(availability_slo(0.99));
  // 49 good + 1 bad: bad fraction 0.02 against a 0.01 budget.
  for (int i = 0; i < 49; ++i) slo.record_job(i, true, false, 0.1);
  slo.record_job(49.0, false, false, 0.1);
  const std::vector<SloState> states = slo.states();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].total, 50);
  EXPECT_EQ(states[0].bad, 1);
  EXPECT_DOUBLE_EQ(states[0].bad_fraction(), 0.02);
  EXPECT_NEAR(states[0].burn_rate(), 2.0, 1e-12);
}

TEST(SloEngine, ZeroWidthBudgetIsCappedNotInfinite) {
  SloEngine slo;
  slo.add(availability_slo(1.0));
  slo.record_job(0.0, false, false, 0.1);
  const std::vector<SloState> states = slo.states();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_DOUBLE_EQ(states[0].burn_rate(), obs::kMaxBurnRate);
}

TEST(SloEngine, LatencySloJudgesAgainstThreshold) {
  SloSpec spec;
  spec.name = "job_latency";
  spec.kind = SloKind::LatencyP99;
  spec.objective = 0.5;
  spec.latency_threshold_s = 1.0;
  SloEngine slo;
  slo.add(spec);
  slo.record_job(0.0, true, false, 0.5);   // good
  slo.record_job(1.0, true, false, 2.0);   // bad: over threshold
  const std::vector<SloState> states = slo.states();
  EXPECT_EQ(states[0].total, 2);
  EXPECT_EQ(states[0].bad, 1);
}

TEST(SloEngine, ZeroSdcSloCountsOnlySdc) {
  SloEngine slo;
  SloSpec spec;
  spec.name = "zero_sdc";
  spec.kind = SloKind::ZeroSdc;
  spec.objective = 1.0;
  slo.add(spec);
  slo.record_job(0.0, false, false, 0.1);  // honest failure: not bad here
  slo.record_job(1.0, true, true, 0.1);    // sdc: bad
  const std::vector<SloState> states = slo.states();
  EXPECT_EQ(states[0].bad, 1);
}

TEST(SloEngine, AlertLatchFiresExactlyOncePerCrossing) {
  obs::RingBufferSink events;
  SloEngine slo;
  slo.set_event_sink(&events);
  slo.add(availability_slo(0.5, /*alert_burn_rate=*/1.0));

  // The very first bad job pushes the burn rate over threshold: one
  // alert at that virtual instant, then the latch holds through the
  // second bad job.
  slo.record_job(0.0, false, false, 0.1);
  slo.record_job(1.0, false, false, 0.1);
  EXPECT_EQ(slo.alerts_fired(), 1);

  // Flood with good jobs until the burn rate drops back under the
  // threshold (latch releases), then cross again: second alert.
  for (int i = 0; i < 10; ++i) slo.record_job(2.0 + i, true, false, 0.1);
  ASSERT_LT(slo.states()[0].burn_rate(), 1.0);
  for (int i = 0; i < 30; ++i) slo.record_job(20.0 + i, false, false, 0.1);
  EXPECT_EQ(slo.alerts_fired(), 2);

  const std::vector<obs::Event> posted = events.events();
  ASSERT_EQ(posted.size(), 2u);
  EXPECT_EQ(posted[0].kind, obs::EventKind::Alert);
  EXPECT_EQ(posted[0].name, "slo:availability");
  EXPECT_DOUBLE_EQ(posted[0].time, 0.0);  // virtual crossing instant
  EXPECT_GT(posted[0].value, posted[0].value2);
}

TEST(SloEngine, LatencyP99IsExactNearestRank) {
  SloEngine slo;
  for (int i = 100; i >= 1; --i) {
    slo.record_job(static_cast<double>(i), true, false,
                   static_cast<double>(i));
  }
  // Nearest-rank over 1..100: ceil(0.99 * 100) = rank 99 → 99.0.
  EXPECT_DOUBLE_EQ(slo.latency_p99(), 99.0);
}

TEST(SloEngine, DefaultFleetSlosAndMetricsExport) {
  SloEngine slo;
  for (const SloSpec& spec : SloEngine::default_fleet_slos(0.25)) {
    slo.add(spec);
  }
  const std::vector<SloState> states = slo.states();
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0].spec.name, "availability");
  EXPECT_EQ(states[1].spec.name, "job_latency");
  EXPECT_DOUBLE_EQ(states[1].spec.latency_threshold_s, 0.25);
  EXPECT_EQ(states[2].spec.name, "zero_sdc");
  EXPECT_DOUBLE_EQ(states[2].spec.objective, 1.0);

  slo.record_job(0.0, true, false, 0.1);
  slo.record_job(1.0, false, false, 0.5);
  obs::MetricsRegistry metrics;
  slo.export_metrics(&metrics);
  EXPECT_EQ(metrics.counters().at("slo.availability.total"), 2);
  EXPECT_EQ(metrics.counters().at("slo.availability.bad"), 1);
  EXPECT_EQ(metrics.counters().at("slo.job_latency.bad"), 1);
  EXPECT_EQ(metrics.counters().at("slo.zero_sdc.bad"), 0);
  EXPECT_GT(metrics.gauges().at("slo.availability.burn_rate"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.gauges().at("slo.latency_p99_s"), 0.5);
  EXPECT_TRUE(metrics.has_counter("slo.alerts"));
}

}  // namespace
}  // namespace ftla
