// ResourceTimeline tests: capacity packing, delayed starts, window
// conflicts, pruning, and a randomized never-exceeds-capacity property.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/timeline.hpp"

namespace ftla::sim {
namespace {

TEST(Timeline, ImmediateStartWhenEmpty) {
  ResourceTimeline t(4);
  EXPECT_DOUBLE_EQ(t.allocate(5.0, 2.0, 3), 5.0);
  EXPECT_DOUBLE_EQ(t.last_end(), 7.0);
}

TEST(Timeline, ConcurrentAllocationsShareCapacity) {
  ResourceTimeline t(4);
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 10.0, 2), 0.0);
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 10.0, 2), 0.0);  // fits alongside
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 5.0, 1), 10.0);  // must wait
}

TEST(Timeline, FullWidthSerializes) {
  ResourceTimeline t(4);
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 3.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 3.0, 4), 3.0);
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 3.0, 4), 6.0);
}

TEST(Timeline, StartsAtReleasePoint) {
  ResourceTimeline t(2);
  t.allocate(0.0, 4.0, 2);
  t.allocate(0.0, 2.0, 1);  // starts at 4
  EXPECT_DOUBLE_EQ(t.allocate(1.0, 1.0, 2), 6.0);  // needs both units
}

TEST(Timeline, WindowConflictPushesPastLaterBusyPeriod) {
  ResourceTimeline t(2);
  // Busy [5, 8) with full capacity.
  t.allocate(5.0, 3.0, 2);
  // A long job that would overlap [5,8) cannot start at 0.
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 6.0, 1), 8.0);
  // A short one fits before.
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 5.0, 1), 0.0);
}

TEST(Timeline, GapFitting) {
  ResourceTimeline t(1);
  t.allocate(0.0, 2.0, 1);   // [0,2)
  t.allocate(6.0, 2.0, 1);   // [6,8)
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 3.0, 1), 2.0);  // fits the [2,6) gap
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 2.0, 1), 8.0);  // gap now too small
}

TEST(Timeline, UsageAt) {
  ResourceTimeline t(8);
  t.allocate(1.0, 4.0, 3);
  t.allocate(2.0, 1.0, 2);
  EXPECT_EQ(t.usage_at(0.5), 0);
  EXPECT_EQ(t.usage_at(1.5), 3);
  EXPECT_EQ(t.usage_at(2.5), 5);
  EXPECT_EQ(t.usage_at(3.5), 3);
  EXPECT_EQ(t.usage_at(10.0), 0);
}

TEST(Timeline, UsageAtHalfOpenBoundaries) {
  // Allocations are active on the half-open interval [start, end): the
  // start instant counts, the end instant does not. The profiler's
  // utilization tracks depend on exactly this convention.
  ResourceTimeline t(4);
  t.allocate(1.0, 2.0, 3);  // [1, 3)
  EXPECT_EQ(t.usage_at(1.0), 3);  // closed at start
  EXPECT_EQ(t.usage_at(3.0), 0);  // open at end
  // Back-to-back allocations at a shared breakpoint never double-count:
  // at the handoff instant only the starting job is active.
  t.allocate(3.0, 2.0, 4);  // [3, 5)
  EXPECT_EQ(t.usage_at(3.0), 4);
  EXPECT_EQ(t.usage_at(5.0), 0);
  // A zero-duration allocation occupies no instant at all.
  ResourceTimeline z(1);
  z.allocate(2.0, 0.0, 1);
  EXPECT_EQ(z.usage_at(2.0), 0);
}

TEST(Timeline, BusyUnitSecondsAccumulates) {
  ResourceTimeline t(4);
  t.allocate(0.0, 2.0, 3);
  t.allocate(0.0, 4.0, 1);
  EXPECT_DOUBLE_EQ(t.busy_unit_seconds(), 10.0);
}

TEST(Timeline, BusyUnitSecondsUnderContentionDelayedStarts) {
  // Contention delays starts but never shrinks or stretches work:
  // busy_unit_seconds must equal sum(units * duration) over the
  // *requested* jobs regardless of where they were pushed to start.
  ResourceTimeline t(2);
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 4.0, 2), 0.0);   // [0, 4) full width
  EXPECT_DOUBLE_EQ(t.allocate(1.0, 3.0, 1), 4.0);   // delayed to [4, 7)
  EXPECT_DOUBLE_EQ(t.allocate(2.0, 3.0, 1), 4.0);   // co-runs on [4, 7)
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 1.0, 2), 7.0);   // delayed to [7, 8)
  EXPECT_DOUBLE_EQ(t.busy_unit_seconds(),
                   2 * 4.0 + 1 * 3.0 + 1 * 3.0 + 2 * 1.0);
  // The accounting matches the integral of usage_at over the horizon.
  double integral = 0.0;
  for (double at = 0.005; at < 8.0; at += 0.01) {
    integral += t.usage_at(at) * 0.01;
  }
  EXPECT_NEAR(integral, t.busy_unit_seconds(), 1e-6);
}

TEST(Timeline, PrunePreservesActiveAllocations) {
  ResourceTimeline t(2);
  t.allocate(0.0, 100.0, 1);  // long-running, active across the prune
  t.allocate(0.0, 1.0, 1);    // finished before the prune
  t.prune(50.0);
  // Capacity still reflects the long-running allocation.
  EXPECT_DOUBLE_EQ(t.allocate(50.0, 1.0, 2), 100.0);
}

TEST(Timeline, ZeroDurationAllocation) {
  ResourceTimeline t(1);
  EXPECT_DOUBLE_EQ(t.allocate(3.0, 0.0, 1), 3.0);
  EXPECT_DOUBLE_EQ(t.allocate(0.0, 5.0, 1), 0.0);
}

TEST(TimelineProperty, NeverExceedsCapacityUnderRandomLoad) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const int cap = rng.uniform_int(2, 8);
    ResourceTimeline t(cap);
    struct Alloc {
      double start, end;
      int units;
    };
    std::vector<Alloc> allocs;
    double earliest = 0.0;
    for (int i = 0; i < 200; ++i) {
      earliest += rng.next_double() * 0.1;
      const double dur = 0.01 + rng.next_double();
      const int units = rng.uniform_int(1, cap);
      const double start = t.allocate(earliest, dur, units);
      EXPECT_GE(start, earliest);
      allocs.push_back({start, start + dur, units});
    }
    // Check usage at every interval boundary.
    for (const auto& probe : allocs) {
      for (double at : {probe.start, probe.start + 1e-9}) {
        int usage = 0;
        for (const auto& a : allocs) {
          if (a.start <= at && at < a.end) usage += a.units;
        }
        EXPECT_LE(usage, cap) << "seed " << seed;
      }
    }
  }
}

TEST(TimelineProperty, WorkConservingForUnitJobs) {
  // With unit-width jobs and a single unit of capacity, the timeline
  // must behave exactly like a FIFO queue: total busy time equals the
  // sum of durations and there are no overlaps.
  Rng rng(99);
  ResourceTimeline t(1);
  double total = 0.0;
  double prev_end = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double dur = 0.1 + rng.next_double();
    const double start = t.allocate(0.0, dur, 1);
    EXPECT_DOUBLE_EQ(start, prev_end);
    prev_end = start + dur;
    total += dur;
  }
  EXPECT_NEAR(t.busy_unit_seconds(), total, 1e-9);
  EXPECT_NEAR(t.last_end(), total, 1e-9);
}

}  // namespace
}  // namespace ftla::sim
