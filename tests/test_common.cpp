// Unit tests for the common module: matrix container/views, RNG,
// floating-point utilities, SPD generators, statistics, table formatter.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "blas/lapack.hpp"
#include "blas/reference.hpp"
#include "common/fp.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/spd.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "test_util.hpp"

namespace ftla {
namespace {

TEST(Matrix, StorageIsColumnMajor) {
  Matrix<double> m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  m(0, 1) = 4;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
  EXPECT_EQ(m.data()[3], 4);
  EXPECT_EQ(m.ld(), 3);
}

TEST(Matrix, FillAndEquality) {
  Matrix<double> a(4, 4, 7.0);
  Matrix<double> b(4, 4);
  b.fill(7.0);
  EXPECT_EQ(a, b);
  b(3, 3) = 8.0;
  EXPECT_FALSE(a == b);
}

TEST(MatrixView, BlockAddressing) {
  Matrix<double> m(6, 6);
  for (int j = 0; j < 6; ++j)
    for (int i = 0; i < 6; ++i) m(i, j) = 10.0 * i + j;
  auto blk = m.block(2, 3, 3, 2);
  EXPECT_EQ(blk.rows(), 3);
  EXPECT_EQ(blk.cols(), 2);
  EXPECT_EQ(blk(0, 0), 23.0);
  EXPECT_EQ(blk(2, 1), 44.0);
  EXPECT_EQ(blk.ld(), 6);
}

TEST(MatrixView, NestedBlocks) {
  Matrix<double> m(8, 8);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < 8; ++i) m(i, j) = 10.0 * i + j;
  auto outer = m.block(1, 1, 6, 6);
  auto inner = outer.block(2, 3, 2, 2);
  EXPECT_EQ(inner(0, 0), m(3, 4));
  EXPECT_EQ(inner(1, 1), m(4, 5));
}

TEST(MatrixView, RowAndColViews) {
  Matrix<double> m = test::random_matrix(5, 5, 1);
  auto c = m.view().col(2);
  auto r = m.view().row(3);
  EXPECT_EQ(c.rows(), 5);
  EXPECT_EQ(c.cols(), 1);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 5);
  EXPECT_EQ(c(4, 0), m(4, 2));
  EXPECT_EQ(r(0, 4), m(3, 4));
}

TEST(MatrixCopy, RespectsDistinctLeadingDims) {
  Matrix<double> src = test::random_matrix(6, 6, 2);
  Matrix<double> dst(9, 9, 0.0);
  copy(ConstMatrixView<double>(src.block(1, 1, 4, 4)),
       dst.block(3, 2, 4, 4));
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(dst(3 + i, 2 + j), src(1 + i, 1 + j));
  EXPECT_EQ(dst(0, 0), 0.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformDoublesInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(9);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  Stats s;
  for (int i = 0; i < 20000; ++i) s.add(r.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Fp, BitFlipRoundTrips) {
  const double x = 3.141592653589793;
  for (int bit = 0; bit < 64; ++bit) {
    const double y = flip_bit(x, bit);
    EXPECT_NE(double_to_bits(x), double_to_bits(y));
    EXPECT_EQ(double_to_bits(flip_bit(y, bit)), double_to_bits(x));
  }
}

TEST(Fp, SignBitFlip) {
  EXPECT_EQ(flip_bit(1.5, 63), -1.5);
}

TEST(Fp, ExponentFlipIsLarge) {
  const double x = 1.0;
  const double y = flip_bit(x, 62);  // top exponent bit
  EXPECT_GT(std::abs(y - x) / std::abs(x), 1e10);
}

TEST(Fp, UlpDistanceAdjacent) {
  const double x = 1.0;
  const double y = std::nextafter(x, 2.0);
  EXPECT_EQ(ulp_distance(x, y), 1u);
  EXPECT_EQ(ulp_distance(x, x), 0u);
}

TEST(Fp, UlpDistanceAcrossZero) {
  const double a = std::nextafter(0.0, 1.0);
  const double b = std::nextafter(0.0, -1.0);
  EXPECT_EQ(ulp_distance(a, b), 2u);
}

TEST(Fp, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12, 1e-9));
  EXPECT_FALSE(approx_equal(1.0, 1.01, 1e-9));
  EXPECT_TRUE(approx_equal(0.0, 1e-12, 0.0, 1e-9));
}

TEST(Spd, DiagDominantFactorizes) {
  for (int n : {1, 5, 33, 100}) {
    Matrix<double> a(n, n);
    make_spd_diag_dominant(a, 3);
    Matrix<double> l = a;
    EXPECT_NO_THROW(blas::ref::potrf(l.view())) << "n=" << n;
  }
}

TEST(Spd, GramFactorizes) {
  Matrix<double> a(24, 24);
  make_spd(a, 5);
  Matrix<double> l = a;
  EXPECT_NO_THROW(blas::ref::potrf(l.view()));
}

TEST(Spd, GeneratedMatricesAreSymmetric) {
  Matrix<double> a(40, 40);
  make_spd_diag_dominant(a, 8);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 40; ++i) EXPECT_EQ(a(i, j), a(j, i));
}

TEST(Spd, ExponentialCovarianceFactorizes) {
  Matrix<double> a(32, 32);
  make_spd_exponential(a, 0.8, 13);
  Matrix<double> l = a;
  EXPECT_NO_THROW(blas::ref::potrf(l.view()));
}

TEST(Spd, NormalEquationsFactorize) {
  Matrix<double> a(16, 16);
  make_normal_equations(a, 48, 17);
  Matrix<double> l = a;
  EXPECT_NO_THROW(blas::ref::potrf(l.view()));
}

TEST(Spd, DeterministicForSeed) {
  Matrix<double> a(12, 12), b(12, 12);
  make_spd_diag_dominant(a, 99);
  make_spd_diag_dominant(b, 99);
  EXPECT_EQ(a, b);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptyIsSafe) {
  Stats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Histogram, LogEdgesAreStrictlyIncreasing) {
  const auto edges = Histogram::log_edges(1e-3, 1e3, 2);
  ASSERT_GE(edges.size(), 12u);
  EXPECT_DOUBLE_EQ(edges.front(), 1e-3);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // three edges + overflow
  h.add(0.5);   // bucket 0 (x <= 1)
  h.add(1.0);   // bucket 0 (inclusive upper bound)
  h.add(3.0);   // bucket 2
  h.add(100.0); // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bucket_hits(0), 2);
  EXPECT_EQ(h.bucket_hits(1), 0);
  EXPECT_EQ(h.bucket_hits(2), 1);
  EXPECT_EQ(h.bucket_hits(3), 1);
  EXPECT_TRUE(std::isinf(h.bucket_upper(3)));
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
}

TEST(Histogram, PercentilesOnUniformGrid) {
  // 100 samples 1..100 against unit-wide buckets: pXX should land within
  // one bucket width of the exact order statistic.
  std::vector<double> edges;
  for (int i = 10; i <= 100; i += 10) edges.push_back(i);
  Histogram h(edges);
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_NEAR(h.p50(), 50.0, 10.0);
  EXPECT_NEAR(h.p95(), 95.0, 10.0);
  EXPECT_NEAR(h.p99(), 99.0, 10.0);
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

// The nearest-rank contract's edge cases (documented in stats.hpp):
// with n = 1 every percentile is that sample, and with identical
// samples every percentile is that value — both because the estimate
// is clamped to the observed [min, max].
TEST(Histogram, SingleSampleEveryPercentileIsTheSample) {
  Histogram h({1.0, 10.0, 100.0});
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.p50(), 7.0);
  EXPECT_DOUBLE_EQ(h.p95(), 7.0);
  EXPECT_DOUBLE_EQ(h.p99(), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 7.0);
}

TEST(Histogram, AllEqualSamplesCollapseEveryPercentile) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 50; ++i) h.add(3.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(h.p50(), 3.5);
  EXPECT_DOUBLE_EQ(h.p99(), 3.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.5);
}

TEST(Histogram, PercentileArgumentIsClampedTo0And100) {
  Histogram h({1.0, 10.0});
  h.add(2.0);
  h.add(8.0);
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(250.0), h.percentile(100.0));
}

TEST(Histogram, MergeMatchesSingleStream) {
  const auto edges = Histogram::log_edges(1e-3, 1e2, 4);
  Histogram a(edges);
  Histogram b(edges);
  Histogram whole(edges);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double x = std::exp(rng.uniform(-3.0, 3.0));
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.stats().stddev(), whole.stats().stddev(), 1e-9);
  for (std::size_t i = 0; i < whole.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket_hits(i), whole.bucket_hits(i));
  }
  EXPECT_NEAR(a.p50(), whole.p50(), 1e-12);
}

TEST(Histogram, MergeIntoEmptyAdoptsOther) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  b.add(2.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
}

TEST(Stats, FromMomentsRoundTrips) {
  Stats s;
  s.add(1.0);
  s.add(2.0);
  s.add(4.0);
  const Stats r = Stats::from_moments(s.count(), s.mean(),
                                      s.variance() * 2.0, s.sum(), s.min(),
                                      s.max());
  EXPECT_EQ(r.count(), 3);
  EXPECT_DOUBLE_EQ(r.mean(), s.mean());
  EXPECT_DOUBLE_EQ(r.stddev(), s.stddev());
  EXPECT_DOUBLE_EQ(r.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.max(), 4.0);
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22.5  |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1234.5678, 6), "1234.57");
  EXPECT_EQ(Table::pct(0.0532), "5.32%");
}

}  // namespace
}  // namespace ftla
