// BLAS Level-3 tests: optimized routines against the naive reference
// oracle across the full parameter space (transposes, sides, triangles,
// alpha/beta, including empty and degenerate shapes).
#include <gtest/gtest.h>

#include <tuple>

#include "blas/level3.hpp"
#include "blas/reference.hpp"
#include "test_util.hpp"

namespace ftla::blas {
namespace {

using test::random_matrix;

class GemmParam
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, Trans, Trans, double, double>> {};

TEST_P(GemmParam, MatchesReference) {
  const auto [m, n, k, ta, tb, alpha, beta] = GetParam();
  auto a = ta == Trans::No ? random_matrix(m, k, 1) : random_matrix(k, m, 1);
  auto b = tb == Trans::No ? random_matrix(k, n, 2) : random_matrix(n, k, 2);
  auto c = random_matrix(m, n, 3);
  auto c_ref = c;
  gemm(ta, tb, alpha, a.view(), b.view(), beta, c.view());
  ref::gemm(ta, tb, alpha, a.view(), b.view(), beta, c_ref.view());
  EXPECT_MATRIX_NEAR(c, c_ref, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParam,
    ::testing::Combine(
        ::testing::Values(1, 8, 21), ::testing::Values(1, 5, 17),
        ::testing::Values(1, 9, 30),
        ::testing::Values(Trans::No, Trans::Yes),
        ::testing::Values(Trans::No, Trans::Yes),
        ::testing::Values(1.0, -0.7), ::testing::Values(0.0, 1.0, 0.5)));

TEST(Gemm, EmptyInnerDimensionScalesOnly) {
  auto a = random_matrix(4, 0, 4);
  auto b = random_matrix(0, 3, 5);
  auto c = random_matrix(4, 3, 6);
  auto expect = c;
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 4; ++i) expect(i, j) *= 0.5;
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.5, c.view());
  EXPECT_MATRIX_NEAR(c, expect, 0.0);
}

TEST(Gemm, SubBlockViewsWithLargeLd) {
  auto big_a = random_matrix(10, 10, 7);
  auto big_b = random_matrix(10, 10, 8);
  auto big_c = random_matrix(10, 10, 9);
  auto c_ref = big_c;
  gemm(Trans::No, Trans::Yes, 2.0, big_a.block(2, 1, 4, 5),
       big_b.block(3, 2, 3, 5), 1.0, big_c.block(1, 1, 4, 3));
  ref::gemm(Trans::No, Trans::Yes, 2.0,
            ConstMatrixView<double>(big_a.block(2, 1, 4, 5)),
            ConstMatrixView<double>(big_b.block(3, 2, 3, 5)), 1.0,
            c_ref.block(1, 1, 4, 3));
  EXPECT_MATRIX_NEAR(big_c, c_ref, 1e-12);
}

class SyrkParam
    : public ::testing::TestWithParam<
          std::tuple<int, int, Uplo, Trans, double, double>> {};

TEST_P(SyrkParam, MatchesReference) {
  const auto [n, k, uplo, trans, alpha, beta] = GetParam();
  auto a =
      trans == Trans::No ? random_matrix(n, k, 10) : random_matrix(k, n, 10);
  auto c = random_matrix(n, n, 11);
  auto c_ref = c;
  syrk(uplo, trans, alpha, a.view(), beta, c.view());
  ref::syrk(uplo, trans, alpha, a.view(), beta, c_ref.view());
  EXPECT_MATRIX_NEAR(c, c_ref, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SyrkParam,
    ::testing::Combine(::testing::Values(1, 6, 19), ::testing::Values(1, 8, 25),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(1.0, -1.0),
                       ::testing::Values(0.0, 1.0)));

TEST(Syrk, LeavesOppositeTriangleUntouched) {
  auto a = random_matrix(5, 7, 12);
  Matrix<double> c(5, 5, 99.0);
  syrk(Uplo::Lower, Trans::No, 1.0, a.view(), 0.0, c.view());
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i < j; ++i) EXPECT_EQ(c(i, j), 99.0);
}

class TrsmParam
    : public ::testing::TestWithParam<
          std::tuple<int, int, Side, Uplo, Trans, Diag, double>> {};

TEST_P(TrsmParam, MatchesReference) {
  const auto [m, n, side, uplo, trans, diag, alpha] = GetParam();
  const int ka = side == Side::Left ? m : n;
  auto a = random_matrix(ka, ka, 13);
  for (int i = 0; i < ka; ++i) a(i, i) = 3.0 + 0.5 * i;
  auto b = random_matrix(m, n, 14);
  auto b_ref = b;
  trsm(side, uplo, trans, diag, alpha, a.view(), b.view());
  ref::trsm(side, uplo, trans, diag, alpha, a.view(), b_ref.view());
  EXPECT_MATRIX_NEAR(b, b_ref, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, TrsmParam,
    ::testing::Combine(::testing::Values(1, 6, 14), ::testing::Values(1, 5, 11),
                       ::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit),
                       ::testing::Values(1.0, 2.0)));

TEST(Trsm, InverseOfTrmmRoundTrip) {
  const int m = 9, n = 7;
  auto a = random_matrix(n, n, 15);
  for (int i = 0; i < n; ++i) a(i, i) = 4.0 + i;
  auto b0 = random_matrix(m, n, 16);
  auto b = b0;
  trmm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0, a.view(),
       b.view());
  trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0, a.view(),
       b.view());
  EXPECT_MATRIX_NEAR(b, b0, 1e-10);
}

class TrmmParam
    : public ::testing::TestWithParam<
          std::tuple<int, int, Side, Uplo, Trans, Diag>> {};

TEST_P(TrmmParam, MatchesReference) {
  const auto [m, n, side, uplo, trans, diag] = GetParam();
  const int ka = side == Side::Left ? m : n;
  auto a = random_matrix(ka, ka, 17);
  auto b = random_matrix(m, n, 18);
  auto b_ref = b;
  trmm(side, uplo, trans, diag, 1.5, a.view(), b.view());
  ref::trmm(side, uplo, trans, diag, 1.5, a.view(), b_ref.view());
  EXPECT_MATRIX_NEAR(b, b_ref, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, TrmmParam,
    ::testing::Combine(::testing::Values(2, 8), ::testing::Values(3, 9),
                       ::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(Symmetrize, MirrorsLowerToUpper) {
  auto a = random_matrix(6, 6, 19);
  symmetrize(Uplo::Lower, a.view());
  for (int j = 0; j < 6; ++j)
    for (int i = 0; i < 6; ++i) EXPECT_EQ(a(i, j), a(j, i));
}

TEST(Symmetrize, MirrorsUpperToLower) {
  auto a = random_matrix(5, 5, 20);
  auto orig = a;
  symmetrize(Uplo::Upper, a.view());
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i <= j; ++i) EXPECT_EQ(a(i, j), orig(i, j));
  for (int j = 0; j < 5; ++j)
    for (int i = 0; i < 5; ++i) EXPECT_EQ(a(i, j), a(j, i));
}

// --------------------------------------------------------------------
// Cache-blocked path: sizes straddling the packing-panel boundaries.
// --------------------------------------------------------------------

class GemmBoundaryParam
    : public ::testing::TestWithParam<
          std::tuple<int, int, Trans, Trans, double, double>> {};

TEST_P(GemmBoundaryParam, MatchesReferenceAroundPanelEdges) {
  const auto [m, k, ta, tb, alpha, beta] = GetParam();
  const int n = kGemmNR + 1;  // forces a partial NR strip as well
  auto a = ta == Trans::No ? random_matrix(m, k, 21) : random_matrix(k, m, 21);
  auto b = tb == Trans::No ? random_matrix(k, n, 22) : random_matrix(n, k, 22);
  auto c = random_matrix(m, n, 23);
  auto c_ref = c;
  gemm(ta, tb, alpha, a.view(), b.view(), beta, c.view());
  ref::gemm(ta, tb, alpha, a.view(), b.view(), beta, c_ref.view());
  EXPECT_MATRIX_NEAR(c, c_ref, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PanelEdges, GemmBoundaryParam,
    ::testing::Combine(::testing::Values(kGemmMC - 1, kGemmMC + 1),
                       ::testing::Values(kGemmKC - 1, kGemmKC + 1),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(-1.0, 0.3),
                       ::testing::Values(0.0, 0.3)));

TEST(GemmBlocked, FullAlphaBetaGridOnBlockedPath) {
  // Big enough for the packed core, awkward enough (primes) to leave
  // partial MR/NR/KC tiles everywhere.
  const int m = 37, n = 29, k = 41;
  for (const double alpha : {0.0, 1.0, -1.0, 0.3}) {
    for (const double beta : {0.0, 1.0, -1.0, 0.3}) {
      auto a = random_matrix(m, k, 24);
      auto b = random_matrix(k, n, 25);
      auto c = random_matrix(m, n, 26);
      auto c_ref = c;
      gemm(Trans::No, Trans::No, alpha, a.view(), b.view(), beta, c.view());
      ref::gemm(Trans::No, Trans::No, alpha, a.view(), b.view(), beta,
                c_ref.view());
      EXPECT_MATRIX_NEAR(c, c_ref, 1e-10);
    }
  }
}

TEST(GemmBlocked, NonContiguousViewsAtPanelBoundary) {
  // ld > rows on every operand, with the operation size right at the
  // MC/KC packing edges.
  const int m = kGemmMC + 1, n = kGemmNR + 2, k = kGemmKC + 1;
  auto big_a = random_matrix(m + 9, k + 5, 27);
  auto big_b = random_matrix(k + 7, n + 3, 28);
  auto big_c = random_matrix(m + 4, n + 6, 29);
  auto c_ref = big_c;
  gemm(Trans::No, Trans::No, 1.0, big_a.block(3, 2, m, k),
       big_b.block(5, 1, k, n), -0.5, big_c.block(2, 4, m, n));
  ref::gemm(Trans::No, Trans::No, 1.0,
            ConstMatrixView<double>(big_a.block(3, 2, m, k)),
            ConstMatrixView<double>(big_b.block(5, 1, k, n)), -0.5,
            c_ref.block(2, 4, m, n));
  EXPECT_MATRIX_NEAR(big_c, c_ref, 1e-9);
}

class SyrkBoundaryParam
    : public ::testing::TestWithParam<std::tuple<int, Uplo, Trans>> {};

TEST_P(SyrkBoundaryParam, MatchesReferenceAroundTriBlockEdges) {
  const auto [n, uplo, trans] = GetParam();
  const int k = kGemmKC + 1;
  auto a =
      trans == Trans::No ? random_matrix(n, k, 30) : random_matrix(k, n, 30);
  auto c = random_matrix(n, n, 31);
  auto c_ref = c;
  syrk(uplo, trans, -1.0, a.view(), 0.3, c.view());
  ref::syrk(uplo, trans, -1.0, a.view(), 0.3, c_ref.view());
  EXPECT_MATRIX_NEAR(c, c_ref, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PanelEdges, SyrkBoundaryParam,
    ::testing::Combine(::testing::Values(kTriBlock - 1, kTriBlock + 1,
                                         2 * kTriBlock + 1),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes)));

class TriBoundaryParam
    : public ::testing::TestWithParam<
          std::tuple<int, Side, Uplo, Trans, Diag>> {};

/// Triangular factor that stays well-conditioned at depth 2*kTriBlock+1
/// even with a unit diagonal: small centered off-diagonals keep the
/// substitution from amplifying exponentially (which would drown the
/// blocked-vs-reference comparison in conditioning noise).
Matrix<double> boundary_tri(int ka, std::uint64_t seed) {
  auto a = random_matrix(ka, ka, seed);
  for (int j = 0; j < ka; ++j) {
    for (int i = 0; i < ka; ++i) a(i, j) = 0.2 * (a(i, j) - 0.5);
  }
  for (int i = 0; i < ka; ++i) a(i, i) = 3.0 + 0.5 * i;
  return a;
}

TEST_P(TriBoundaryParam, TrsmMatchesReferenceAroundTriBlockEdges) {
  const auto [sz, side, uplo, trans, diag] = GetParam();
  const int m = side == Side::Left ? sz : 33;
  const int n = side == Side::Left ? 33 : sz;
  const int ka = side == Side::Left ? m : n;
  auto a = boundary_tri(ka, 32);
  auto b = random_matrix(m, n, 33);
  auto b_ref = b;
  trsm(side, uplo, trans, diag, -0.7, a.view(), b.view());
  ref::trsm(side, uplo, trans, diag, -0.7, a.view(), b_ref.view());
  EXPECT_MATRIX_NEAR(b, b_ref, 1e-9);
}

TEST_P(TriBoundaryParam, TrmmMatchesReferenceAroundTriBlockEdges) {
  const auto [sz, side, uplo, trans, diag] = GetParam();
  const int m = side == Side::Left ? sz : 33;
  const int n = side == Side::Left ? 33 : sz;
  const int ka = side == Side::Left ? m : n;
  auto a = boundary_tri(ka, 34);
  auto b = random_matrix(m, n, 35);
  auto b_ref = b;
  trmm(side, uplo, trans, diag, 0.3, a.view(), b.view());
  ref::trmm(side, uplo, trans, diag, 0.3, a.view(), b_ref.view());
  EXPECT_MATRIX_NEAR(b, b_ref, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PanelEdges, TriBoundaryParam,
    ::testing::Combine(::testing::Values(kTriBlock - 1, kTriBlock + 1,
                                         2 * kTriBlock + 1),
                       ::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

// --------------------------------------------------------------------
// Thread-count invariance: the parallel GEMM core partitions C into
// disjoint tiles with a barrier per KC step, so results must be
// BIT-identical for every thread count, not merely close.
// --------------------------------------------------------------------

class ThreadedBlas : public ::testing::Test {
 protected:
  void TearDown() override { common::set_global_threads(1); }
};

TEST_F(ThreadedBlas, ResultsAreBitIdenticalAcrossThreadCounts) {
  const int n = 2 * kGemmMC + 7;  // several MC panels => real fan-out
  auto a = random_matrix(n, n, 36);
  auto b = random_matrix(n, n, 37);
  auto tri = random_matrix(n, n, 38);
  for (int i = 0; i < n; ++i) tri(i, i) = 4.0 + 0.25 * i;

  common::set_global_threads(1);
  auto c1 = random_matrix(n, n, 39);
  auto s1 = random_matrix(n, n, 40);
  auto t1 = random_matrix(n, n, 41);
  auto w1 = random_matrix(n, n, 42);
  gemm(Trans::No, Trans::Yes, -1.0, a.view(), b.view(), 1.0, c1.view());
  syrk(Uplo::Lower, Trans::No, -1.0, a.view(), 1.0, s1.view());
  trsm(Side::Right, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, tri.view(),
       t1.view());
  trmm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, 1.0, tri.view(),
       w1.view());

  for (const int threads : {2, 4}) {
    common::set_global_threads(threads);
    auto c = random_matrix(n, n, 39);
    auto s = random_matrix(n, n, 40);
    auto t = random_matrix(n, n, 41);
    auto w = random_matrix(n, n, 42);
    gemm(Trans::No, Trans::Yes, -1.0, a.view(), b.view(), 1.0, c.view());
    syrk(Uplo::Lower, Trans::No, -1.0, a.view(), 1.0, s.view());
    trsm(Side::Right, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, tri.view(),
         t.view());
    trmm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, 1.0, tri.view(),
         w.view());
    EXPECT_TRUE(c == c1) << "gemm differs at threads=" << threads;
    EXPECT_TRUE(s == s1) << "syrk differs at threads=" << threads;
    EXPECT_TRUE(t == t1) << "trsm differs at threads=" << threads;
    EXPECT_TRUE(w == w1) << "trmm differs at threads=" << threads;
  }
}

TEST_F(ThreadedBlas, ParallelGemmMatchesReference) {
  const int m = kGemmMC * 2 + 3, n = 65, k = kGemmKC + 9;
  common::set_global_threads(4);
  auto a = random_matrix(m, k, 43);
  auto b = random_matrix(k, n, 44);
  auto c = random_matrix(m, n, 45);
  auto c_ref = c;
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), -0.3, c.view());
  ref::gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), -0.3,
            c_ref.view());
  EXPECT_MATRIX_NEAR(c, c_ref, 1e-9);
}

TEST(FlopCounts, MatchClosedForms) {
  EXPECT_EQ(gemm_flops(3, 4, 5), 120);
  EXPECT_EQ(syrk_flops(4, 6), 4 * 5 * 6);
  EXPECT_EQ(trsm_flops(Side::Left, 5, 7), 25 * 7);
  EXPECT_EQ(trsm_flops(Side::Right, 5, 7), 49 * 5);
  EXPECT_EQ(gemv_flops(6, 7), 84);
  EXPECT_EQ(potrf_flops(10), 1000 / 3);
}

}  // namespace
}  // namespace ftla::blas
