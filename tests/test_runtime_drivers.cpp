// DAG-runtime conformance for the factorization drivers
// (docs/runtime.md): the task-graph path must be bit-identical to the
// bulk-synchronous oracle fault-free, produce the same verification
// counters, survive fault injection with zero silent corruption, and
// strictly shorten the simulated makespan at the benchmarked sizes.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "abft/cholesky.hpp"
#include "abft/lu.hpp"
#include "abft/qr.hpp"
#include "blas/lapack.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using fault::FaultSpec;
using fault::FaultType;
using fault::Injector;
using fault::Op;
using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

// Exact elementwise equality — the DAG schedule must reproduce the bulk
// result to the last bit, not merely to a residual tolerance.
void expect_bit_identical(const Matrix<double>& a, const Matrix<double>& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << "first divergence at (" << i << ", "
                                  << j << ")";
    }
  }
}

// --------------------- Cholesky: fault-free conformance ----------------

class CholeskyConformance
    : public ::testing::TestWithParam<
          std::tuple<Variant, UpdatePlacement, int, bool>> {};

TEST_P(CholeskyConformance, DagBitIdenticalToBulk) {
  const auto [variant, placement, verify_interval, transfer_guard] =
      GetParam();
  const int n = 96;
  const auto a0 = test::random_spd(n, 321);

  CholeskyOptions opt;
  opt.variant = variant;
  opt.placement = placement;
  opt.verify_interval = verify_interval;
  opt.transfer_guard = transfer_guard;

  auto bulk = a0;
  Machine mb(small_rig(), ExecutionMode::Numeric);
  opt.runtime = RuntimeMode::Bulk;
  const CholeskyResult rb = cholesky(mb, &bulk, n, opt);
  ASSERT_TRUE(rb.success) << rb.note;

  auto dag = a0;
  Machine md(small_rig(), ExecutionMode::Numeric);
  opt.runtime = RuntimeMode::Dag;
  const CholeskyResult rd = cholesky(md, &dag, n, opt);
  ASSERT_TRUE(rd.success) << rd.note;

  expect_bit_identical(bulk, dag);
  EXPECT_EQ(rd.errors_detected, 0);
  EXPECT_EQ(rd.checksum_repairs, 0);
  // Table-I conformance: the DAG schedules exactly the verifications the
  // bulk path does.
  EXPECT_EQ(rb.verified.potf2_blocks, rd.verified.potf2_blocks);
  EXPECT_EQ(rb.verified.trsm_blocks, rd.verified.trsm_blocks);
  EXPECT_EQ(rb.verified.syrk_blocks, rd.verified.syrk_blocks);
  EXPECT_EQ(rb.verified.gemm_blocks, rd.verified.gemm_blocks);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsPlacementsIntervals, CholeskyConformance,
    ::testing::Combine(
        ::testing::Values(Variant::NoFt, Variant::Offline, Variant::Online,
                          Variant::EnhancedOnline),
        ::testing::Values(UpdatePlacement::Blocking, UpdatePlacement::Gpu),
        ::testing::Values(1, 2), ::testing::Values(false, true)));

TEST(CholeskyConformance, CpuPlacementFallsBackToBulk) {
  // The graph does not model the host checksum mirror; the driver must
  // silently run the bulk path and still be correct.
  const int n = 64;
  const auto a0 = test::random_spd(n, 77);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.placement = UpdatePlacement::Cpu;
  opt.runtime = RuntimeMode::Dag;
  const CholeskyResult res = cholesky(m, &a, n, opt);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

TEST(CholeskyConformance, CheckpointRecoveryFallsBackToBulk) {
  const int n = 64;
  const auto a0 = test::random_spd(n, 78);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.recovery = Recovery::Checkpoint;
  opt.runtime = RuntimeMode::Dag;
  const CholeskyResult res = cholesky(m, &a, n, opt);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

// --------------------- Cholesky: faults under the DAG ------------------

TEST(CholeskyDagFaults, ComputingErrorCorrectedInPlace) {
  const int n = 96;
  const auto a0 = test::random_spd(n, 4242);
  auto a = a0;
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = 2;
  s.elem_row = 3;
  s.elem_col = 5;
  s.magnitude = 1e6;
  Injector inj({s});
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.runtime = RuntimeMode::Dag;
  const CholeskyResult res = cholesky(m, &a, n, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(inj.fired_count(), 1);
  EXPECT_EQ(res.reruns, 0);
  EXPECT_GE(res.errors_corrected, 1);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-10);
}

TEST(CholeskyDagFaults, StorageErrorCorrectedInPlace) {
  const int n = 96;
  const auto a0 = test::random_spd(n, 4242);
  auto a = a0;
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Syrk;
  s.iteration = 3;
  s.block_row = 3;
  s.block_col = 2;
  s.elem_row = 2;
  s.elem_col = 7;
  s.bits = {20, 44, 54};
  Injector inj({s});
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.runtime = RuntimeMode::Dag;
  const CholeskyResult res = cholesky(m, &a, n, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(inj.fired_count(), 1);
  EXPECT_EQ(res.reruns, 0);
  EXPECT_GE(res.errors_corrected, 1);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-10);
}

TEST(CholeskyDagFaults, OnlineStorageErrorEscalatesToRerun) {
  // Online-ABFT verifies only outputs; a storage strike in the
  // verified-to-read window is uncorrectable and must re-run — same
  // ladder as bulk, reached from inside the executor.
  const int n = 96;
  const auto a0 = test::random_spd(n, 4242);
  auto a = a0;
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Syrk;
  s.iteration = 3;
  s.block_row = 3;
  s.block_col = 2;
  s.elem_row = 2;
  s.elem_col = 7;
  s.bits = {20, 44, 54};
  Injector inj({s});
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = Variant::Online;
  opt.runtime = RuntimeMode::Dag;
  const CholeskyResult res = cholesky(m, &a, n, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_GE(res.reruns, 1);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-10);
}

// --------------------- Cholesky: makespan ------------------------------

double timed_seconds(const sim::MachineProfile& profile, int n,
                     RuntimeMode runtime, Variant variant) {
  Machine m(profile, ExecutionMode::TimingOnly);
  CholeskyOptions opt;
  opt.variant = variant;
  opt.placement = UpdatePlacement::Gpu;
  opt.runtime = runtime;
  const CholeskyResult res = cholesky(m, nullptr, n, opt);
  EXPECT_TRUE(res.success) << res.note;
  return res.seconds;
}

class MakespanParam
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 public:
  static sim::MachineProfile profile(const char* name) {
    return std::string(name) == "tardis" ? sim::tardis()
                                         : sim::bulldozer64();
  }
};

TEST_P(MakespanParam, DagStrictlyShorterThanBulk) {
  const auto [name, n] = GetParam();
  const auto p = profile(name);
  const double bulk =
      timed_seconds(p, n, RuntimeMode::Bulk, Variant::EnhancedOnline);
  const double dag =
      timed_seconds(p, n, RuntimeMode::Dag, Variant::EnhancedOnline);
  EXPECT_LT(dag, bulk) << "DAG lost its overlap win on " << name
                       << " at n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    PinnedBenchSizes, MakespanParam,
    ::testing::Combine(::testing::Values("tardis", "bulldozer64"),
                       ::testing::Values(2048, 4096)));

// --------------------- LU / QR conformance -----------------------------

TEST(LuConformance, DagBitIdenticalToBulk) {
  const int n = 96;
  const auto a0 = test::random_spd(n, 555);
  for (const Variant variant : {Variant::NoFt, Variant::EnhancedOnline}) {
    auto bulk = a0;
    Machine mb(small_rig(), ExecutionMode::Numeric);
    LuOptions opt;
    opt.variant = variant;
    opt.runtime = RuntimeMode::Bulk;
    const CholeskyResult rb = lu(mb, &bulk, n, opt);
    ASSERT_TRUE(rb.success) << rb.note;

    auto dag = a0;
    Machine md(small_rig(), ExecutionMode::Numeric);
    opt.runtime = RuntimeMode::Dag;
    const CholeskyResult rd = lu(md, &dag, n, opt);
    ASSERT_TRUE(rd.success) << rd.note;

    expect_bit_identical(bulk, dag);
    EXPECT_EQ(rb.verified.total(), rd.verified.total());
  }
}

TEST(LuConformance, DagMakespanStrictlyShorter) {
  Machine mb(sim::tardis(), ExecutionMode::TimingOnly);
  LuOptions opt;
  opt.runtime = RuntimeMode::Bulk;
  const double bulk = lu(mb, nullptr, 2048, opt).seconds;
  Machine md(sim::tardis(), ExecutionMode::TimingOnly);
  opt.runtime = RuntimeMode::Dag;
  const double dag = lu(md, nullptr, 2048, opt).seconds;
  EXPECT_LT(dag, bulk);
}

TEST(QrConformance, DagBitIdenticalToBulk) {
  const int n = 96;
  const auto a0 = test::random_matrix(n, n, 808);
  for (const Variant variant : {Variant::NoFt, Variant::EnhancedOnline}) {
    auto bulk = a0;
    std::vector<double> tau_bulk;
    Machine mb(small_rig(), ExecutionMode::Numeric);
    QrOptions opt;
    opt.variant = variant;
    opt.runtime = RuntimeMode::Bulk;
    const CholeskyResult rb = qr(mb, &bulk, &tau_bulk, n, opt);
    ASSERT_TRUE(rb.success) << rb.note;

    auto dag = a0;
    std::vector<double> tau_dag;
    Machine md(small_rig(), ExecutionMode::Numeric);
    opt.runtime = RuntimeMode::Dag;
    const CholeskyResult rd = qr(md, &dag, &tau_dag, n, opt);
    ASSERT_TRUE(rd.success) << rd.note;

    expect_bit_identical(bulk, dag);
    ASSERT_EQ(tau_bulk.size(), tau_dag.size());
    for (std::size_t i = 0; i < tau_bulk.size(); ++i) {
      ASSERT_EQ(tau_bulk[i], tau_dag[i]) << "tau diverges at " << i;
    }
    EXPECT_EQ(rb.verified.total(), rd.verified.total());
  }
}

TEST(QrConformance, DagMakespanStrictlyShorter) {
  Machine mb(sim::tardis(), ExecutionMode::TimingOnly);
  QrOptions opt;
  opt.runtime = RuntimeMode::Bulk;
  const double bulk = qr(mb, nullptr, nullptr, 2048, opt).seconds;
  Machine md(sim::tardis(), ExecutionMode::TimingOnly);
  opt.runtime = RuntimeMode::Dag;
  const double dag = qr(md, nullptr, nullptr, 2048, opt).seconds;
  EXPECT_LT(dag, bulk);
}

}  // namespace
}  // namespace ftla::abft
