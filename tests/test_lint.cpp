// Tests for ftla_lint: scanner behavior, config round-tripping, every
// rule firing on its bad fixture and staying silent on its good twin,
// suppression handling, and the meta-test that the real tree is clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

using ftla::lint::Config;
using ftla::lint::Finding;
using ftla::lint::SourceFile;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Reads tests/lint_fixtures/<rel> and lints it as if it lived at the
/// project-relative `virtual_path` (so path-scoped rules see the
/// intended location).
std::vector<Finding> lint_fixture(const std::string& rel,
                                  const std::string& virtual_path) {
  const std::string text =
      read_file(std::string(FTLA_LINT_FIXTURE_DIR) + "/" + rel);
  EXPECT_FALSE(text.empty()) << rel;
  return ftla::lint::lint_file(ftla::lint::scan_source(virtual_path, text),
                               ftla::lint::default_config());
}

std::vector<int> lines_of(const std::vector<Finding>& findings,
                          const std::string& rule) {
  std::vector<int> lines;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, rule) << f.file << ":" << f.line << " " << f.message;
    lines.push_back(f.line);
  }
  return lines;
}

// ----------------------------- scanner --------------------------------

TEST(Scanner, BlanksCommentsAndStringContents) {
  const SourceFile f = ftla::lint::scan_source(
      "src/x.cpp",
      "int a = 1; // rand()\n"
      "const char* s = \"rand()\";\n"
      "/* rand()\n"
      "   rand() */ int b = 2;\n");
  ASSERT_EQ(f.code.size(), 4u);
  EXPECT_EQ(f.code[0].find("rand"), std::string::npos);
  EXPECT_EQ(f.code[1].find("rand"), std::string::npos);
  EXPECT_NE(f.code[1].find('"'), std::string::npos);  // quotes survive
  EXPECT_EQ(f.code[2].find("rand"), std::string::npos);
  EXPECT_NE(f.code[3].find("int b"), std::string::npos);
  // nocomment keeps string contents but not comments.
  EXPECT_NE(f.nocomment[1].find("rand()"), std::string::npos);
  EXPECT_EQ(f.nocomment[0].find("rand"), std::string::npos);
}

TEST(Scanner, HandlesRawStringsAndDigitSeparators) {
  const SourceFile f = ftla::lint::scan_source(
      "src/x.cpp",
      "auto re = R\"(time\\(\\))\";\n"
      "long big = 1'000'000;\n"
      "char c = 'x';\n");
  EXPECT_EQ(f.code[0].find("time"), std::string::npos);
  EXPECT_NE(f.nocomment[0].find("time"), std::string::npos);
  EXPECT_NE(f.code[1].find("1'000'000"), std::string::npos);
  EXPECT_EQ(f.code[2].find('x'), std::string::npos);  // char contents blank
}

TEST(Scanner, SuppressionParsing) {
  const SourceFile f = ftla::lint::scan_source(
      "src/x.cpp",
      "int a;  // ftla-lint: allow(no-wall-clock)\n"
      "int b;\n"
      "// ftla-lint: allow(no-wall-clock, metrics-naming)\n"
      "int c;\n");
  EXPECT_TRUE(f.suppressed(1, "no-wall-clock"));
  EXPECT_FALSE(f.suppressed(1, "metrics-naming"));
  EXPECT_TRUE(f.suppressed(2, "no-wall-clock"));  // line above counts
  EXPECT_FALSE(f.suppressed(2, "metrics-naming"));
  EXPECT_TRUE(f.suppressed(4, "metrics-naming"));
  EXPECT_TRUE(f.suppressed(4, "no-wall-clock"));
  EXPECT_FALSE(f.suppressed(4, "include-hygiene"));
}

TEST(Scanner, HeaderDetection) {
  EXPECT_TRUE(ftla::lint::scan_source("src/a.hpp", "").is_header());
  EXPECT_TRUE(ftla::lint::scan_source("src/a.h", "").is_header());
  EXPECT_FALSE(ftla::lint::scan_source("src/a.cpp", "").is_header());
}

// ------------------------------ config --------------------------------

TEST(Config, DefaultRoundTripsThroughFormatAndParse) {
  const Config def = ftla::lint::default_config();
  Config back;
  std::string error;
  ASSERT_TRUE(
      ftla::lint::parse_config(ftla::lint::format_config(def), &back, &error))
      << error;
  EXPECT_EQ(def, back);
}

TEST(Config, PartialSectionKeepsDefaultScoping) {
  Config cfg;
  std::string error;
  ASSERT_TRUE(ftla::lint::parse_config(
      "version = 1\n[rule.no-wall-clock]\nenabled = false\n", &cfg, &error))
      << error;
  const ftla::lint::RuleConfig& rc = cfg.rule("no-wall-clock");
  EXPECT_FALSE(rc.enabled);
  // Scoping inherited from the built-in default, not wiped.
  EXPECT_EQ(rc.paths, ftla::lint::default_config().rule("no-wall-clock").paths);
}

TEST(Config, UnknownRuleAndKeyAreErrors) {
  Config cfg;
  std::string error;
  EXPECT_FALSE(ftla::lint::parse_config("[rule.no-such-rule]\n", &cfg, &error));
  EXPECT_NE(error.find("no-such-rule"), std::string::npos);
  EXPECT_FALSE(ftla::lint::parse_config(
      "[rule.no-wall-clock]\nseverity = 3\n", &cfg, &error));
  EXPECT_NE(error.find("severity"), std::string::npos);
  EXPECT_FALSE(ftla::lint::parse_config("version = 2\n", &cfg, &error));
}

TEST(Config, MissingRuleFallsBackToDefaults) {
  Config cfg;  // empty rules map
  EXPECT_TRUE(cfg.rule("no-wall-clock").enabled);
  EXPECT_FALSE(cfg.rule("no-wall-clock").paths.empty());
}

TEST(Config, CheckedInConfigMatchesBuiltInDefaults) {
  Config cfg;
  std::string error;
  ASSERT_TRUE(ftla::lint::load_config(
      std::string(FTLA_LINT_SOURCE_DIR) + "/.ftla_lint.toml", &cfg, &error))
      << error;
  EXPECT_EQ(cfg, ftla::lint::default_config());
}

// ------------------------------ rules ---------------------------------

TEST(RuleCatalog, HasAtLeastFiveRules) {
  EXPECT_GE(ftla::lint::rule_catalog().size(), 5u);
}

TEST(NoWallClock, FiresOnBadFixture) {
  const auto findings =
      lint_fixture("bad/no_wall_clock.cpp", "src/sim/fixture.cpp");
  const std::vector<int> lines = lines_of(findings, "no-wall-clock");
  EXPECT_EQ(lines, (std::vector<int>{7, 12, 16, 20}));
}

TEST(NoWallClock, SilentOnGoodFixtureAndOutOfScope) {
  EXPECT_TRUE(
      lint_fixture("good/no_wall_clock.cpp", "src/sim/fixture.cpp").empty());
  // Out of the rule's path scope (bench code may read host clocks).
  EXPECT_TRUE(
      lint_fixture("bad/no_wall_clock.cpp", "bench/fixture.cpp").empty());
}

TEST(NoRawRandomness, FiresOnBadFixture) {
  const auto findings =
      lint_fixture("bad/no_raw_randomness.cpp", "src/abft/fixture.cpp");
  const std::vector<int> lines = lines_of(findings, "no-raw-randomness");
  EXPECT_EQ(lines, (std::vector<int>{7, 11, 15}));
}

TEST(NoRawRandomness, SilentOnGoodFixtureAndExemptPath) {
  EXPECT_TRUE(
      lint_fixture("good/no_raw_randomness.cpp", "src/obs/fixture.cpp")
          .empty());
  // The seeded-RNG implementation itself is the one sanctioned user.
  EXPECT_TRUE(
      lint_fixture("bad/no_raw_randomness.cpp", "src/common/rng.hpp").empty());
}

TEST(DeterministicSerialization, FiresOnBadFixture) {
  const auto findings = lint_fixture("bad/deterministic_serialization.cpp",
                                     "src/obs/fixture.cpp");
  const std::vector<int> lines =
      lines_of(findings, "deterministic-serialization");
  EXPECT_EQ(lines, (std::vector<int>{9, 18}));
}

TEST(DeterministicSerialization, SilentOnGoodFixture) {
  EXPECT_TRUE(lint_fixture("good/deterministic_serialization.cpp",
                           "src/obs/fixture.cpp")
                  .empty());
}

TEST(ExitCodeContract, FiresOnBadFixture) {
  const auto findings =
      lint_fixture("bad/exit_code_cli.cpp", "tools/fixture_cli.cpp");
  const std::vector<int> lines = lines_of(findings, "exit-code-contract");
  // exit(2), EXIT_FAILURE, two numeric returns, and the
  // never-mentions-kExit finding anchored at main.
  EXPECT_EQ(lines, (std::vector<int>{6, 8, 11, 14, 16}));
}

TEST(ExitCodeContract, OnlyAppliesToCliTranslationUnits) {
  EXPECT_TRUE(
      lint_fixture("bad/exit_code_cli.cpp", "tools/helper.cpp").empty());
  EXPECT_TRUE(
      lint_fixture("bad/exit_code_cli.cpp", "src/fault/campaign.cpp").empty());
}

TEST(ExitCodeContract, SilentOnGoodFixture) {
  EXPECT_TRUE(
      lint_fixture("good/exit_code_cli.cpp", "tools/fixture_cli.cpp").empty());
}

TEST(MetricsNaming, FiresOnBadFixture) {
  const auto findings =
      lint_fixture("bad/metrics_naming.cpp", "src/obs/fixture.cpp");
  const std::vector<int> lines = lines_of(findings, "metrics-naming");
  EXPECT_EQ(lines, (std::vector<int>{16, 17, 18, 19, 20, 21, 22}));
}

TEST(MetricsNaming, SilentOnGoodFixture) {
  EXPECT_TRUE(
      lint_fixture("good/metrics_naming.cpp", "src/obs/fixture.cpp").empty());
}

TEST(MetricsNaming, NamespaceAllowlistIsConfigurable) {
  // With `extra` overriding the built-in namespace list, "wallclock.*"
  // becomes legal and every abft/sim/profile name becomes a finding.
  Config cfg = ftla::lint::default_config();
  cfg.rules["metrics-naming"].extra = {"wallclock"};
  const std::string text = read_file(std::string(FTLA_LINT_FIXTURE_DIR) +
                                     "/bad/metrics_naming.cpp");
  const auto findings = ftla::lint::lint_file(
      ftla::lint::scan_source("src/obs/fixture.cpp", text), cfg);
  const std::vector<int> lines = lines_of(findings, "metrics-naming");
  // Lines 16-19 and 21 still violate the shape rule; the wallclock.*
  // names on lines 20 and 22 are now allowed.
  EXPECT_EQ(lines, (std::vector<int>{16, 17, 18, 19, 21}));

  const auto good = ftla::lint::lint_file(
      ftla::lint::scan_source(
          "src/obs/fixture.cpp",
          "struct R { void set_gauge(const char*, double); };\n"
          "void f(R& r) { r.set_gauge(\"wallclock.reads_total\", 1.0); }\n"),
      cfg);
  EXPECT_TRUE(good.empty());
}

TEST(IncludeHygiene, FiresOnBadHeaderOnly) {
  const auto findings =
      lint_fixture("bad/include_hygiene.hpp", "src/common/fixture.hpp");
  const std::vector<int> lines = lines_of(findings, "include-hygiene");
  EXPECT_EQ(lines, (std::vector<int>{5, 6}));
  // The same content in a .cpp is fine — the rule is header-scoped.
  EXPECT_TRUE(
      lint_fixture("bad/include_hygiene.hpp", "src/common/fixture.cpp")
          .empty());
}

TEST(IncludeHygiene, SilentOnGoodFixture) {
  EXPECT_TRUE(
      lint_fixture("good/include_hygiene.hpp", "src/common/fixture.hpp")
          .empty());
}

TEST(MetricsNaming, FiresOnRuntimeNamespaceBadFixture) {
  const auto findings =
      lint_fixture("bad/metrics_runtime.cpp", "src/runtime/fixture.cpp");
  const std::vector<int> lines = lines_of(findings, "metrics-naming");
  EXPECT_EQ(lines, (std::vector<int>{10, 11, 12, 13}));
}

TEST(MetricsNaming, SilentOnRuntimeNamespaceGoodFixture) {
  EXPECT_TRUE(
      lint_fixture("good/metrics_runtime.cpp", "src/runtime/fixture.cpp")
          .empty());
}

TEST(MetricsNaming, FiresOnTraceNamespaceBadFixture) {
  const auto findings =
      lint_fixture("bad/metrics_trace.cpp", "src/obs/fixture.cpp");
  const std::vector<int> lines = lines_of(findings, "metrics-naming");
  EXPECT_EQ(lines, (std::vector<int>{11, 12, 13, 14, 15}));
}

TEST(MetricsNaming, SilentOnTraceNamespaceGoodFixture) {
  EXPECT_TRUE(
      lint_fixture("good/metrics_trace.cpp", "src/obs/fixture.cpp").empty());
}

TEST(DagFootprintHelpers, FiresOnBadFixture) {
  const auto findings =
      lint_fixture("bad/dag_footprint.cpp", "src/abft/fixture.cpp");
  const std::vector<int> lines = lines_of(findings, "dag-footprint-helpers");
  EXPECT_EQ(lines, (std::vector<int>{17, 21, 25}));
}

TEST(DagFootprintHelpers, SilentOnGoodFixtureExemptAndOutOfScope) {
  EXPECT_TRUE(
      lint_fixture("good/dag_footprint.cpp", "src/abft/fixture.cpp").empty());
  // The graph/sanitizer internals legitimately handle raw Access values.
  EXPECT_TRUE(
      lint_fixture("bad/dag_footprint.cpp", "src/runtime/graph.cpp").empty());
  // Outside src/abft + src/runtime the DAG rules do not apply.
  EXPECT_TRUE(
      lint_fixture("bad/dag_footprint.cpp", "src/obs/fixture.cpp").empty());
}

TEST(DagTaskPhase, FiresOnBadFixture) {
  const auto findings =
      lint_fixture("bad/dag_task_phase.cpp", "src/abft/fixture.cpp");
  const std::vector<int> lines = lines_of(findings, "dag-task-phase");
  EXPECT_EQ(lines, (std::vector<int>{27, 32, 35}));
}

TEST(DagTaskPhase, SilentOnGoodFixtureAndOutOfScope) {
  EXPECT_TRUE(
      lint_fixture("good/dag_task_phase.cpp", "src/abft/fixture.cpp").empty());
  EXPECT_TRUE(
      lint_fixture("bad/dag_task_phase.cpp", "tests/fixture.cpp").empty());
}

TEST(DagCaptureHygiene, FiresOnBadFixture) {
  const auto findings =
      lint_fixture("bad/dag_capture.cpp", "src/abft/fixture.cpp");
  const std::vector<int> lines = lines_of(findings, "dag-capture-hygiene");
  EXPECT_EQ(lines, (std::vector<int>{29, 31, 33}));
}

TEST(DagCaptureHygiene, SilentOnGoodFixture) {
  EXPECT_TRUE(
      lint_fixture("good/dag_capture.cpp", "src/abft/fixture.cpp").empty());
}

// --------------------------- suppression ------------------------------

TEST(Suppression, AllowCommentSilencesNamedRule) {
  EXPECT_TRUE(
      lint_fixture("good/suppressed.cpp", "src/sim/fixture.cpp").empty());
}

TEST(Suppression, WrongRuleNameDoesNotSilence) {
  const auto findings =
      lint_fixture("bad/suppressed_wrong_rule.cpp", "src/sim/fixture.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-wall-clock");
}

// ----------------------------- meta-test ------------------------------

// The real tree must be clean under the checked-in configuration: this
// is the same invocation CI runs (docs/static-analysis.md).
TEST(MetaLint, RealTreeIsClean) {
  Config cfg;
  std::string error;
  ASSERT_TRUE(ftla::lint::load_config(
      std::string(FTLA_LINT_SOURCE_DIR) + "/.ftla_lint.toml", &cfg, &error))
      << error;
  std::vector<std::string> io_errors;
  const std::vector<Finding> findings = ftla::lint::lint_paths(
      {"src", "tools", "tests"}, FTLA_LINT_SOURCE_DIR, cfg, &io_errors);
  EXPECT_TRUE(io_errors.empty())
      << "first: " << (io_errors.empty() ? "" : io_errors.front());
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

TEST(MetaLint, OutputIsDeterministic) {
  Config cfg = ftla::lint::default_config();
  cfg.exclude.clear();  // let the fixture corpus lint
  const auto run = [&] {
    std::vector<std::string> io_errors;
    std::vector<Finding> fs = ftla::lint::lint_paths(
        {"tests/lint_fixtures"}, FTLA_LINT_SOURCE_DIR, cfg, &io_errors);
    std::vector<std::string> flat;
    flat.reserve(fs.size());
    for (const Finding& f : fs) {
      flat.push_back(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
    }
    return flat;
  };
  const std::vector<std::string> first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

}  // namespace
