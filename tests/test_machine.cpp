// Machine (simulated CUDA runtime) tests. The test_rig profile uses
// round numbers — per-SM rate 10 GFLOP/s, 4 SMs, 1 GB/s links, zero
// fixed overheads — so expected virtual times are computed by hand.
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"
#include "sim/profile.hpp"

namespace ftla::sim {
namespace {

Machine make_numeric() { return Machine(test_rig(), ExecutionMode::Numeric); }

KernelDesc blas3(std::int64_t flops) {
  return KernelDesc{"k3", KernelClass::Blas3, flops, 0};
}
KernelDesc blas2(std::int64_t flops) {
  return KernelDesc{"k2", KernelClass::Blas2, flops, 0};
}

TEST(Machine, KernelDurationFromCostModel) {
  auto m = make_numeric();
  // Blas3 uses all 4 SMs at 10 GFLOP/s each -> 40e9 flops take 1 s.
  m.launch(m.default_stream(), blas3(40'000'000'000LL), {});
  EXPECT_DOUBLE_EQ(m.host_now(), 0.0);  // async: host does not wait
  m.sync_all();
  EXPECT_DOUBLE_EQ(m.host_now(), 1.0);
}

TEST(Machine, StreamFifoOrdering) {
  auto m = make_numeric();
  m.launch(0, blas3(40e9), {});
  m.launch(0, blas3(20e9), {});
  m.sync_stream(0);
  EXPECT_DOUBLE_EQ(m.host_now(), 1.5);
}

TEST(Machine, IndependentStreamsOverlap) {
  auto m = make_numeric();
  const StreamId s1 = m.create_stream();
  const StreamId s2 = m.create_stream();
  // Each Blas2 kernel takes 1 SM for 1 s; they co-run.
  m.launch(s1, blas2(10e9), {});
  m.launch(s2, blas2(10e9), {});
  m.sync_all();
  EXPECT_DOUBLE_EQ(m.host_now(), 1.0);
}

TEST(Machine, ConcurrencyBoundedBySmPool) {
  auto m = make_numeric();
  std::vector<StreamId> streams;
  for (int i = 0; i < 5; ++i) streams.push_back(m.create_stream());
  // Five 1-SM kernels of 1 s on a 4-SM device: 2 s total.
  for (auto s : streams) m.launch(s, blas2(10e9), {});
  m.sync_all();
  EXPECT_DOUBLE_EQ(m.host_now(), 2.0);
}

TEST(Machine, BigKernelBlocksSmallOnes) {
  auto m = make_numeric();
  const StreamId s1 = m.create_stream();
  const StreamId s2 = m.create_stream();
  m.launch(s1, blas3(40e9), {});  // occupies all 4 SMs for 1 s
  m.launch(s2, blas2(10e9), {});  // must wait
  m.sync_stream(s2);
  EXPECT_DOUBLE_EQ(m.host_now(), 2.0);
}

TEST(Machine, EventsOrderAcrossStreams) {
  auto m = make_numeric();
  const StreamId s1 = m.create_stream();
  const StreamId s2 = m.create_stream();
  m.launch(s1, blas2(20e9), {});            // ends at 2
  const EventId e = m.record_event(s1);
  m.stream_wait_event(s2, e);
  m.launch(s2, blas2(10e9), {});            // starts at 2
  m.sync_stream(s2);
  EXPECT_DOUBLE_EQ(m.host_now(), 3.0);
}

TEST(Machine, SyncEventJoinsHost) {
  auto m = make_numeric();
  m.launch(0, blas3(40e9), {});
  const EventId e = m.record_event(0);
  m.launch(0, blas3(40e9), {});
  m.sync_event(e);
  EXPECT_DOUBLE_EQ(m.host_now(), 1.0);  // not 2.0
}

TEST(Machine, HostComputeAdvancesHostClock) {
  auto m = make_numeric();
  bool ran = false;
  m.host_compute(KernelDesc{"h", KernelClass::HostPotf2, 10'000'000'000LL, 0},
                 [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(m.host_now(), 1.0);  // 10e9 flops at 10 GFLOP/s
}

TEST(Machine, HostOverlapsAsyncGpuWork) {
  auto m = make_numeric();
  m.launch(0, blas3(40e9), {});  // 1 s on the GPU
  m.host_compute(KernelDesc{"h", KernelClass::HostPotf2, 5'000'000'000LL, 0},
                 {});            // 0.5 s on the host, overlapped
  m.sync_all();
  EXPECT_DOUBLE_EQ(m.host_now(), 1.0);
}

TEST(Machine, MemcpyBandwidthModel) {
  auto m = make_numeric();
  auto buf = m.alloc(1'000'000);
  std::vector<double> host(1'000'000, 1.0);
  // 8 MB at 1 GB/s = 8 ms.
  m.memcpy_h2d(buf, 0, host.data(), 1'000'000, 0, /*blocking=*/true);
  EXPECT_NEAR(m.host_now(), 0.008, 1e-12);
}

TEST(Machine, CopyEnginesRunInParallel) {
  auto m = make_numeric();
  auto buf = m.alloc(2'000'000);
  std::vector<double> host(1'000'000, 0.5);
  std::vector<double> out(1'000'000);
  m.memcpy_h2d(buf, 0, host.data(), 1'000'000, 0);
  const StreamId s2 = m.create_stream();
  m.memcpy_d2h(out.data(), buf, 0, 1'000'000, s2);
  m.sync_all();
  EXPECT_NEAR(m.host_now(), 0.008, 1e-12);  // overlapped, not 0.016
}

TEST(Machine, SameEngineSerializes) {
  auto m = make_numeric();
  auto buf = m.alloc(2'000'000);
  std::vector<double> host(2'000'000, 0.5);
  const StreamId s2 = m.create_stream();
  m.memcpy_h2d(buf, 0, host.data(), 1'000'000, 0);
  m.memcpy_h2d(buf, 1'000'000, host.data(), 1'000'000, s2);
  m.sync_all();
  EXPECT_NEAR(m.host_now(), 0.016, 1e-12);
}

TEST(Machine, NumericBodiesExecuteEagerly) {
  auto m = make_numeric();
  auto buf = m.alloc(4);
  m.launch(0, blas2(100), [&] { buf.data()[2] = 42.0; });
  EXPECT_EQ(buf.data()[2], 42.0);  // before any sync
}

TEST(Machine, MemcpyMovesData) {
  auto m = make_numeric();
  auto buf = m.alloc(3);
  std::vector<double> in = {1.0, 2.0, 3.0};
  std::vector<double> out(3, 0.0);
  m.memcpy_h2d(buf, 0, in.data(), 3, 0);
  m.memcpy_d2h(out.data(), buf, 0, 3, 0);
  EXPECT_EQ(out, in);
}

TEST(Machine, Memcpy2dStrided) {
  auto m = make_numeric();
  auto buf = m.alloc(20);  // device 4x5 matrix, ld 4
  std::vector<double> host(6);
  for (int i = 0; i < 6; ++i) host[i] = i + 1.0;  // 2x3 block, ld 2
  m.memcpy_h2d_2d(buf, 1, 4, host.data(), 2, 2, 3, 0);
  EXPECT_EQ(buf.data()[1], 1.0);
  EXPECT_EQ(buf.data()[2], 2.0);
  EXPECT_EQ(buf.data()[5], 3.0);
  EXPECT_EQ(buf.data()[9], 5.0);
  std::vector<double> back(6, 0.0);
  m.memcpy_d2h_2d(back.data(), 2, buf, 1, 4, 2, 3, 0);
  EXPECT_EQ(back, host);
}

TEST(Machine, DeviceToDeviceCopy) {
  auto m = make_numeric();
  auto a = m.alloc(4);
  auto b = m.alloc(4);
  a.data()[1] = 7.0;
  m.memcpy_d2d(b, 0, a, 1, 2, 0);
  EXPECT_EQ(b.data()[0], 7.0);
}

TEST(Machine, DeviceMemoryAccounting) {
  auto m = make_numeric();
  EXPECT_EQ(m.device_bytes_in_use(), 0);
  {
    auto buf = m.alloc(1000);
    EXPECT_EQ(m.device_bytes_in_use(), 8000);
    auto buf2 = std::move(buf);
    EXPECT_EQ(m.device_bytes_in_use(), 8000);
  }
  EXPECT_EQ(m.device_bytes_in_use(), 0);
}

TEST(Machine, TimingOnlySkipsBodiesAndStorage) {
  Machine m(test_rig(), ExecutionMode::TimingOnly);
  auto buf = m.alloc(100'000'000);  // 800 MB if real, zero here
  bool ran = false;
  m.launch(0, blas3(40e9), [&] { ran = true; });
  m.sync_all();
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(m.host_now(), 1.0);  // timing identical to Numeric
}

TEST(MachineDeath, TimingOnlyDataAccessAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Machine m(test_rig(), ExecutionMode::TimingOnly);
  auto buf = m.alloc(4);
  EXPECT_DEATH((void)buf.data(), "Numeric mode");
}

TEST(Machine, StatsAccumulate) {
  auto m = make_numeric();
  m.launch(0, blas3(40e9), {});
  m.launch(0, blas2(10e9), {});
  m.sync_all();
  const auto& st = m.stats();
  EXPECT_EQ(st.gpu.at(KernelClass::Blas3).count, 1);
  EXPECT_EQ(st.gpu.at(KernelClass::Blas2).count, 1);
  EXPECT_EQ(st.total_gpu_flops(), 50'000'000'000LL);
}

TEST(Machine, UtilizationBetweenZeroAndOne) {
  auto m = make_numeric();
  m.launch(0, blas2(10e9), {});  // 1 SM of 4 busy for 1 s
  m.sync_all();
  EXPECT_NEAR(m.gpu_utilization(), 0.25, 1e-9);
}

TEST(Machine, TraceRecordsLanesAndTimes) {
  auto m = make_numeric();
  m.set_trace_enabled(true);
  m.launch(0, blas3(40e9), {});
  m.host_compute(KernelDesc{"h", KernelClass::HostPotf2, 10'000'000'000LL, 0},
                 {});
  m.sync_all();
  ASSERT_EQ(m.trace().size(), 2u);
  EXPECT_EQ(m.trace()[0].lane, 0);
  EXPECT_EQ(m.trace()[1].lane, kHostLane);
  EXPECT_DOUBLE_EQ(m.trace()[0].end, 1.0);
}

TEST(Machine, ConcurrentKernelLimitInflatesFootprint) {
  // A profile whose concurrent-kernel limit (2) is tighter than its SM
  // count (8): 1-SM kernels must behave as if they used 4 SMs.
  MachineProfile p = test_rig();
  p.sm_count = 8;
  p.gpu_peak_gflops = 80.0;
  p.max_concurrent_kernels = 2;
  Machine m(p, ExecutionMode::Numeric);
  std::vector<StreamId> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(m.create_stream());
  for (auto s : streams) m.launch(s, blas2(10e9), {});
  m.sync_all();
  // 4 kernels, only 2 at a time -> 2 s.
  EXPECT_DOUBLE_EQ(m.host_now(), 2.0);
}

}  // namespace
}  // namespace ftla::sim
