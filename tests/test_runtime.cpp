// Task-graph core (src/runtime): dependency inference, deterministic
// scheduling, cycle rejection, wave construction, and executor
// semantics on both backends (docs/runtime.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "runtime/executor.hpp"
#include "runtime/graph.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::runtime {
namespace {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

TileKey t(int m, int r, int c) { return TileKey{m, r, c}; }

TaskBody noop() {
  return [](const TaskContext&) {};
}

// --------------------------- inference ---------------------------------

TEST(GraphInference, RawEdgeFromWriterToReader) {
  TaskGraph g;
  const int w = g.add_task("w", {write(t(0, 0, 0))}, noop());
  const int r = g.add_task("r", {read(t(0, 0, 0))}, noop());
  ASSERT_EQ(g.node(r).preds.size(), 1u);
  EXPECT_EQ(g.node(r).preds[0], w);
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(GraphInference, WarEdgeFromReaderToWriter) {
  TaskGraph g;
  const int w0 = g.add_task("w0", {write(t(0, 0, 0))}, noop());
  const int r = g.add_task("r", {read(t(0, 0, 0))}, noop());
  const int w1 = g.add_task("w1", {write(t(0, 0, 0))}, noop());
  // w1 must wait for the reader (WAR) and the previous writer (WAW).
  auto preds = g.node(w1).preds;
  std::sort(preds.begin(), preds.end());
  EXPECT_EQ(preds, (std::vector<int>{w0, r}));
}

TEST(GraphInference, WawChainsWriters) {
  TaskGraph g;
  const int w0 = g.add_task("w0", {write(t(0, 0, 0))}, noop());
  const int w1 = g.add_task("w1", {write(t(0, 0, 0))}, noop());
  const int w2 = g.add_task("w2", {write(t(0, 0, 0))}, noop());
  EXPECT_EQ(g.node(w1).preds, std::vector<int>{w0});
  EXPECT_EQ(g.node(w2).preds, std::vector<int>{w1});
}

TEST(GraphInference, IndependentReadersShareNoEdge) {
  TaskGraph g;
  g.add_task("w", {write(t(0, 0, 0))}, noop());
  const int r0 = g.add_task("r0", {read(t(0, 0, 0))}, noop());
  const int r1 = g.add_task("r1", {read(t(0, 0, 0))}, noop());
  EXPECT_EQ(g.node(r1).preds, g.node(r0).preds);  // both depend on w only
  EXPECT_EQ(g.node(r0).succs, std::vector<int>{});
}

TEST(GraphInference, ReadWriteActsAsBoth) {
  TaskGraph g;
  const int w = g.add_task("w", {write(t(0, 0, 0))}, noop());
  const int u = g.add_task("u", {rw(t(0, 0, 0))}, noop());
  const int r = g.add_task("r", {read(t(0, 0, 0))}, noop());
  EXPECT_EQ(g.node(u).preds, std::vector<int>{w});
  EXPECT_EQ(g.node(r).preds, std::vector<int>{u});
}

TEST(GraphInference, DisjointTilesNoEdges) {
  TaskGraph g;
  g.add_task("a", {write(t(0, 0, 0)), read(t(0, 1, 0))}, noop());
  g.add_task("b", {write(t(0, 1, 1)), read(t(1, 0, 0))}, noop());
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(GraphInference, DuplicateEdgesCollapse) {
  TaskGraph g;
  const int w = g.add_task(
      "w", {write(t(0, 0, 0)), write(t(0, 1, 0))}, noop());
  const int r = g.add_task(
      "r", {read(t(0, 0, 0)), read(t(0, 1, 0))}, noop());
  ASSERT_EQ(g.node(r).preds.size(), 1u);
  EXPECT_EQ(g.node(r).preds[0], w);
  EXPECT_EQ(g.edge_count(), 1);
}

// --------------------------- scheduling --------------------------------

TEST(GraphSchedule, InsertionOrderWhenPrioritiesEqual) {
  // The driver-conformance cornerstone: uniform priorities + forward
  // edges => schedule order == insertion order.
  TaskGraph g;
  for (int i = 0; i < 32; ++i) {
    g.add_task("n", {rw(t(0, i % 3, 0))}, noop());
  }
  const auto order = g.schedule();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(GraphSchedule, PriorityBreaksTiesDeterministically) {
  TaskGraph g;
  const int a = g.add_task("a", {}, noop());           // priority 0
  TaskOptions hot;
  hot.priority = -1;                                   // lower = earlier
  const int b = g.add_task("b", {}, noop(), hot);
  const int c = g.add_task("c", {}, noop());
  const auto order = g.schedule();
  EXPECT_EQ(order, (std::vector<int>{b, a, c}));
}

TEST(GraphSchedule, CycleRejected) {
  TaskGraph g;
  const int a = g.add_task("a", {}, noop());
  const int b = g.add_task("b", {}, noop());
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.schedule(), CycleError);
  EXPECT_THROW(g.waves(), CycleError);
}

TEST(GraphSchedule, WavesGroupByDepth) {
  TaskGraph g;
  const int w = g.add_task("w", {write(t(0, 0, 0))}, noop());
  const int r0 = g.add_task("r0", {read(t(0, 0, 0))}, noop());
  const int r1 = g.add_task("r1", {read(t(0, 0, 0))}, noop());
  const int f = g.add_task("f", {rw(t(0, 0, 0))}, noop());
  const auto waves = g.waves();
  ASSERT_EQ(waves.size(), 3u);
  EXPECT_EQ(waves[0], std::vector<int>{w});
  EXPECT_EQ(waves[1], (std::vector<int>{r0, r1}));
  EXPECT_EQ(waves[2], std::vector<int>{f});
}

TEST(GraphSchedule, EmptyGraph) {
  TaskGraph g;
  EXPECT_EQ(g.schedule(), std::vector<int>{});
  EXPECT_TRUE(g.waves().empty());
}

// --------------------------- host executor -----------------------------

// Build a tile-Cholesky task graph over a host matrix with real BLAS
// bodies. Same-wave tasks write disjoint tiles, so any thread count
// must produce bit-identical factors.
Matrix<double> host_dag_cholesky(const Matrix<double>& a0, int b,
                                 common::ThreadPool* pool) {
  Matrix<double> a = a0;
  const int n = a.rows();
  const int nb = (n + b - 1) / b;
  auto bs = [&](int i) { return std::min(b, n - i * b); };
  auto blk = [&](int i, int k) {
    return a.block(i * b, k * b, bs(i), bs(k));
  };

  TaskGraph g;
  for (int j = 0; j < nb; ++j) {
    for (int k = 0; k < j; ++k) {
      g.add_task("syrk",
                 {read(t(0, j, k)), rw(t(0, j, j))},
                 [blk, j, k](const TaskContext&) {
                   auto c = blk(j, j);
                   blas::gemm(Trans::No, Trans::Yes, -1.0,
                              ConstMatrixView<double>(blk(j, k)),
                              ConstMatrixView<double>(blk(j, k)), 1.0, c);
                 });
    }
    g.add_task("potf2", {rw(t(0, j, j))}, [blk, j](const TaskContext&) {
      auto d = blk(j, j);
      blas::potf2(d);
      for (int c = 1; c < d.cols(); ++c)
        for (int r = 0; r < c; ++r) d(r, c) = 0.0;
    });
    for (int i = j + 1; i < nb; ++i) {
      for (int k = 0; k < j; ++k) {
        g.add_task("gemm",
                   {read(t(0, i, k)), read(t(0, j, k)), rw(t(0, i, j))},
                   [blk, i, j, k](const TaskContext&) {
                     auto c = blk(i, j);
                     blas::gemm(Trans::No, Trans::Yes, -1.0,
                                ConstMatrixView<double>(blk(i, k)),
                                ConstMatrixView<double>(blk(j, k)), 1.0, c);
                   });
      }
      g.add_task("trsm", {read(t(0, j, j)), rw(t(0, i, j))},
                 [blk, i, j](const TaskContext&) {
                   auto p = blk(i, j);
                   blas::trsm(Side::Right, Uplo::Lower, Trans::Yes,
                              Diag::NonUnit, 1.0,
                              ConstMatrixView<double>(blk(j, j)), p);
                 });
    }
  }
  HostRunOptions opts;
  opts.pool = pool;
  run_on_host(g, opts);
  return a;
}

TEST(HostExecutor, TileCholeskyBitIdenticalAcrossThreadCounts) {
  const int n = 96;
  const auto a0 = test::random_spd(n, 1234);

  common::ThreadPool serial(1);
  common::ThreadPool wide(4);
  const auto f1 = host_dag_cholesky(a0, 16, &serial);
  const auto f4 = host_dag_cholesky(a0, 16, &wide);

  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      ASSERT_EQ(f1(i, j), f4(i, j)) << "thread-count divergence at (" << i
                                    << ", " << j << ")";

  auto ref = a0;
  blas::potrf(ref.view(), 16);
  EXPECT_LE(test::lower_max_diff(f1, ref), 1e-9);
}

TEST(HostExecutor, RunsEveryTaskOnce) {
  TaskGraph g;
  std::atomic<int> hits{0};
  for (int i = 0; i < 64; ++i) {
    g.add_task("n", {rw(t(0, i % 5, 0))},
               [&hits](const TaskContext&) { ++hits; });
  }
  common::ThreadPool pool(4);
  obs::MetricsRegistry metrics;
  HostRunOptions opts;
  opts.pool = &pool;
  opts.metrics = &metrics;
  run_on_host(g, opts);
  EXPECT_EQ(hits.load(), 64);
  EXPECT_EQ(metrics.counter("runtime.host.tasks"), 64);
}

// --------------------------- stream executor ---------------------------

TEST(StreamExecutor, IssuesInScheduleOrderAndFencesDeps) {
  sim::Machine m(sim::test_rig(), sim::ExecutionMode::TimingOnly);
  const sim::StreamId extra = m.create_stream();

  TaskGraph g;
  std::vector<int> issued;
  auto body = [&issued](int id) {
    return [&issued, id](const TaskContext&) { issued.push_back(id); };
  };
  g.add_task("a", {write(t(0, 0, 0))}, body(0));
  g.add_task("b", {read(t(0, 0, 0)), write(t(0, 1, 0))}, body(1));
  g.add_task("c", {read(t(0, 0, 0)), write(t(0, 2, 0))}, body(2));
  g.add_task("d", {read(t(0, 1, 0)), read(t(0, 2, 0))}, body(3));

  StreamRunOptions opts;
  opts.streams = {m.default_stream(), extra};
  const StreamRunStats stats = run_on_streams(g, m, opts);
  m.sync_all();

  EXPECT_EQ(issued, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(stats.tasks, 4);
  EXPECT_EQ(stats.device_tasks, 4);
  EXPECT_EQ(stats.edges, 4);
  // The bodies issue no machine work, so every stream-end tie breaks to
  // the pool head: all four tasks share one stream and every edge rides
  // same-stream FIFO order — no fence is ever issued.
  EXPECT_EQ(stats.stream_waits, 0);
  EXPECT_EQ(stats.host_syncs, 0);
}

TEST(StreamExecutor, HostAndInlineTasksOrderViaHostClock) {
  sim::Machine m(sim::test_rig(), sim::ExecutionMode::TimingOnly);
  TaskGraph g;
  std::vector<int> issued;
  TaskOptions dev;
  TaskOptions host;
  host.where = Where::Host;
  TaskOptions inl;
  inl.where = Where::Inline;
  g.add_task("launch", {write(t(0, 0, 0))},
             [&](const TaskContext& c) {
               issued.push_back(0);
               sim::KernelDesc d{"k", sim::KernelClass::Blas3, 1000, 0};
               m.launch(c.stream, d, {});
             },
             dev);
  g.add_task("host", {read(t(0, 0, 0)), write(t(1, 0, 0))},
             [&](const TaskContext&) {
               issued.push_back(1);
               sim::KernelDesc d{"h", sim::KernelClass::HostPotf2, 1000, 0};
               m.host_compute(d, {});
             },
             host);
  g.add_task("hook", {}, [&](const TaskContext&) { issued.push_back(2); },
             inl);
  g.add_task("launch2", {read(t(1, 0, 0))},
             [&](const TaskContext& c) {
               issued.push_back(3);
               sim::KernelDesc d{"k2", sim::KernelClass::Blas3, 1000, 0};
               m.launch(c.stream, d, {});
             },
             dev);

  const StreamRunStats stats = run_on_streams(g, m, {});
  m.sync_all();
  EXPECT_EQ(issued, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(stats.host_tasks, 1);
  EXPECT_EQ(stats.inline_tasks, 1);
  EXPECT_EQ(stats.device_tasks, 2);
  EXPECT_GT(m.host_now(), 0.0);
}

TEST(StreamExecutor, BodyExceptionPropagates) {
  sim::Machine m(sim::test_rig(), sim::ExecutionMode::TimingOnly);
  TaskGraph g;
  g.add_task("boom", {},
             [](const TaskContext&) { throw UnrecoverableCorruptionError("x"); });
  EXPECT_THROW(run_on_streams(g, m, {}), UnrecoverableCorruptionError);
}

}  // namespace
}  // namespace ftla::runtime
