// Schedule-permutation fuzzer for the task-graph runtime.
//
// TaskGraph::random_schedule(seed) draws a seeded random valid
// topological order. The unit tests pin down its contract (validity,
// per-seed determinism, diversity, sequence-point pinning); the driver
// fuzz tests then execute the cholesky/lu/qr DAGs — with faults armed
// and the footprint sanitizer recording — under 32 random schedules
// each and certify bit-identical factors, tau vectors, verification
// counters, and error counters against the deterministic schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "abft/cholesky.hpp"
#include "abft/lu.hpp"
#include "abft/qr.hpp"
#include "fault/fault.hpp"
#include "runtime/graph.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla {
namespace {

using sim::ExecutionMode;
using sim::Machine;

constexpr std::uint64_t kFuzzSeeds = 32;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

// Exact elementwise equality — a permuted schedule must reproduce the
// deterministic result to the last bit, not merely to a tolerance.
void expect_bit_identical(const Matrix<double>& a, const Matrix<double>& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << "first divergence at (" << i << ", "
                                  << j << ")";
    }
  }
}

/// RAII switch for the drivers' FTLA_DAG_SANITIZE opt-in, so the fuzz
/// runs double as sanitizer coverage of every permuted schedule.
class SanitizeEnvGuard {
 public:
  SanitizeEnvGuard() { ::setenv("FTLA_DAG_SANITIZE", "1", 1); }
  ~SanitizeEnvGuard() { ::unsetenv("FTLA_DAG_SANITIZE"); }
};

runtime::TaskBody nop() {
  return [](const runtime::TaskContext&) {};
}

// A small pipeline with real hazards: per column a producer, two
// consumers of the produced tile, and a reducer over both results.
runtime::TaskGraph pipeline_graph(int cols) {
  runtime::TaskGraph g;
  for (int k = 0; k < cols; ++k) {
    const runtime::TileKey t{0, 0, k};
    const runtime::TileKey u{1, 0, k};
    const runtime::TileKey v{2, 0, k};
    const runtime::TileKey r{3, 0, k};
    g.add_task("produce" + std::to_string(k), {runtime::write(t)}, nop());
    g.add_task("left" + std::to_string(k),
               {runtime::read(t), runtime::write(u)}, nop());
    g.add_task("right" + std::to_string(k),
               {runtime::read(t), runtime::write(v)}, nop());
    g.add_task("reduce" + std::to_string(k),
               {runtime::read(u), runtime::read(v), runtime::write(r)},
               nop());
  }
  return g;
}

TEST(RandomSchedule, IsAValidTopologicalOrder) {
  runtime::TaskGraph g = pipeline_graph(4);
  const int n = g.size();
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const std::vector<int> order = g.random_schedule(seed);
    ASSERT_EQ(static_cast<int>(order.size()), n);
    // A permutation of 0..n-1.
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> iota(n);
    std::iota(iota.begin(), iota.end(), 0);
    ASSERT_EQ(sorted, iota) << "seed " << seed;
    // Every dependency edge respected.
    std::vector<int> pos(n);
    for (int i = 0; i < n; ++i) pos[order[i]] = i;
    for (int task = 0; task < n; ++task) {
      for (int pred : g.node(task).preds) {
        ASSERT_LT(pos[pred], pos[task])
            << "seed " << seed << ": task " << task << " ran before its "
            << "predecessor " << pred;
      }
    }
  }
}

TEST(RandomSchedule, DeterministicPerSeedAndDiverseAcrossSeeds) {
  runtime::TaskGraph g = pipeline_graph(4);
  EXPECT_EQ(g.random_schedule(7), g.random_schedule(7));
  EXPECT_EQ(g.random_schedule(12345), g.random_schedule(12345));
  std::set<std::vector<int>> orders;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    orders.insert(g.random_schedule(seed));
  }
  // 16 tasks with lots of slack: seeds must actually explore.
  EXPECT_GT(orders.size(), 4u);
  // And at least one differs from the deterministic schedule.
  EXPECT_TRUE(orders.size() > 1u || *orders.begin() != g.schedule());
}

TEST(RandomSchedule, EmptyFootprintTasksStaySequencePoints) {
  // Empty-footprint tasks (the fault-injection hooks) must keep their
  // deterministic-schedule position as a barrier: the *set* of tasks
  // issued before them is identical in every random schedule.
  runtime::TaskGraph g;
  const runtime::TileKey ta{0, 0, 0};
  const runtime::TileKey tb{0, 0, 1};
  const runtime::TileKey tc{0, 0, 2};
  const runtime::TileKey td{0, 0, 3};
  g.add_task("a", {runtime::write(ta)}, nop());
  g.add_task("b", {runtime::write(tb)}, nop());
  const int hook = g.add_task("hook", {}, nop());
  g.add_task("c", {runtime::write(tc)}, nop());
  g.add_task("d", {runtime::write(td)}, nop());

  const std::vector<int> det = g.schedule();
  const auto det_pos = std::find(det.begin(), det.end(), hook);
  ASSERT_NE(det_pos, det.end());
  const std::set<int> det_before(det.begin(), det_pos);

  std::set<std::vector<int>> orders;
  for (std::uint64_t seed = 1; seed <= kFuzzSeeds; ++seed) {
    const std::vector<int> order = g.random_schedule(seed);
    const auto at = std::find(order.begin(), order.end(), hook);
    ASSERT_NE(at, order.end());
    const std::set<int> before(order.begin(), at);
    EXPECT_EQ(before, det_before) << "seed " << seed;
    orders.insert(order);
  }
  // The segments around the hook still permute (a/b and c/d commute).
  EXPECT_GT(orders.size(), 1u);
}

// ------------------------- driver fuzzing ------------------------------
//
// Seed 0 is the deterministic schedule; every other seed permutes the
// issue order. Because work is dispatched eagerly at issue and the
// numeric kernels are sequential per task, any valid topological order
// must produce bit-identical results — factors, tau, verification
// verdicts, and correction counters alike.

struct FuzzOutcome {
  Matrix<double> matrix;
  std::vector<double> tau;
  abft::CholeskyResult res;
  int fired = 0;
};

void expect_same_outcome(const FuzzOutcome& base, const FuzzOutcome& got,
                         std::uint64_t matrix_seed, std::uint64_t seed) {
  FTLA_SEED_TRACE_DAG(matrix_seed, seed);
  expect_bit_identical(base.matrix, got.matrix);
  ASSERT_EQ(base.tau.size(), got.tau.size());
  for (std::size_t i = 0; i < base.tau.size(); ++i) {
    ASSERT_EQ(base.tau[i], got.tau[i]) << "tau diverges at " << i;
  }
  EXPECT_EQ(base.res.success, got.res.success);
  EXPECT_EQ(base.res.verified.potf2_blocks, got.res.verified.potf2_blocks);
  EXPECT_EQ(base.res.verified.trsm_blocks, got.res.verified.trsm_blocks);
  EXPECT_EQ(base.res.verified.syrk_blocks, got.res.verified.syrk_blocks);
  EXPECT_EQ(base.res.verified.gemm_blocks, got.res.verified.gemm_blocks);
  EXPECT_EQ(base.res.errors_detected, got.res.errors_detected);
  EXPECT_EQ(base.res.errors_corrected, got.res.errors_corrected);
  EXPECT_EQ(base.res.checksum_repairs, got.res.checksum_repairs);
  EXPECT_EQ(base.res.reruns, got.res.reruns);
  EXPECT_EQ(base.fired, got.fired);
}

TEST(ScheduleFuzz, CholeskyDagBitIdenticalAcrossRandomSchedules) {
  SanitizeEnvGuard env;
  const int n = 96;
  const auto a0 = test::random_spd(n, 321);
  const auto run = [&](std::uint64_t seed) {
    FuzzOutcome out;
    out.matrix = a0;
    fault::FaultSpec s;
    s.type = fault::FaultType::Storage;
    s.op = fault::Op::Syrk;
    s.iteration = 3;
    s.block_row = 3;
    s.block_col = 2;
    s.elem_row = 2;
    s.elem_col = 7;
    s.bits = {20, 44, 54};
    fault::Injector inj({s});
    Machine m(small_rig(), ExecutionMode::Numeric);
    abft::CholeskyOptions opt;
    opt.variant = abft::Variant::EnhancedOnline;
    opt.runtime = abft::RuntimeMode::Dag;
    opt.dag_schedule_seed = seed;
    out.res = abft::cholesky(m, &out.matrix, n, opt, &inj);
    out.fired = inj.fired_count();
    EXPECT_TRUE(out.res.success) << out.res.note;
    return out;
  };
  const FuzzOutcome base = run(0);
  EXPECT_EQ(base.fired, 1);
  EXPECT_GE(base.res.errors_corrected, 1);
  for (std::uint64_t seed = 1; seed <= kFuzzSeeds; ++seed) {
    expect_same_outcome(base, run(seed), 321, seed);
  }
}

TEST(ScheduleFuzz, LuDagBitIdenticalAcrossRandomSchedules) {
  SanitizeEnvGuard env;
  const int n = 96;
  const auto a0 = test::random_spd(n, 2024);
  const auto run = [&](std::uint64_t seed) {
    FuzzOutcome out;
    out.matrix = a0;
    fault::FaultSpec s;
    s.type = fault::FaultType::Storage;
    s.op = fault::Op::Potf2;
    s.iteration = 2;
    s.block_row = 3;
    s.block_col = 2;
    s.elem_row = 4;
    s.elem_col = 9;
    s.bits = {20, 44, 54};
    fault::Injector inj({s});
    Machine m(small_rig(), ExecutionMode::Numeric);
    abft::LuOptions opt;
    opt.variant = abft::Variant::EnhancedOnline;
    opt.runtime = abft::RuntimeMode::Dag;
    opt.dag_schedule_seed = seed;
    out.res = abft::lu(m, &out.matrix, n, opt, &inj);
    out.fired = inj.fired_count();
    EXPECT_TRUE(out.res.success) << out.res.note;
    return out;
  };
  const FuzzOutcome base = run(0);
  EXPECT_GE(base.fired, 1);
  EXPECT_GE(base.res.errors_corrected, 1);
  for (std::uint64_t seed = 1; seed <= kFuzzSeeds; ++seed) {
    expect_same_outcome(base, run(seed), 2024, seed);
  }
}

TEST(ScheduleFuzz, QrDagBitIdenticalAcrossRandomSchedules) {
  SanitizeEnvGuard env;
  const int n = 96;
  const auto a0 = test::random_matrix(n, n, 808);
  const auto run = [&](std::uint64_t seed) {
    FuzzOutcome out;
    out.matrix = a0;
    fault::FaultSpec s;
    s.type = fault::FaultType::Computing;
    s.op = fault::Op::Gemm;
    s.iteration = 1;
    s.block_row = 3;
    s.block_col = 4;
    s.elem_row = 2;
    s.elem_col = 3;
    s.magnitude = 1e5;
    fault::Injector inj({s});
    Machine m(small_rig(), ExecutionMode::Numeric);
    abft::QrOptions opt;
    opt.variant = abft::Variant::EnhancedOnline;
    opt.runtime = abft::RuntimeMode::Dag;
    opt.dag_schedule_seed = seed;
    out.res = abft::qr(m, &out.matrix, &out.tau, n, opt, &inj);
    out.fired = inj.fired_count();
    EXPECT_TRUE(out.res.success) << out.res.note;
    return out;
  };
  const FuzzOutcome base = run(0);
  EXPECT_GE(base.fired, 1);
  EXPECT_GE(base.res.errors_corrected, 1);
  for (std::uint64_t seed = 1; seed <= kFuzzSeeds; ++seed) {
    expect_same_outcome(base, run(seed), 808, seed);
  }
}

}  // namespace
}  // namespace ftla
