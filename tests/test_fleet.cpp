// Tests for the device-fleet simulator (sim::Fleet, device-level
// faults on sim::Machine) and the resilient factorization service
// (service::FactorizationService) — docs/fleet.md.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "service/fleet_campaign.hpp"
#include "service/service.hpp"
#include "sim/fleet.hpp"
#include "sim/profile.hpp"

namespace ftla {
namespace {

using service::FactorizationService;
using service::JobOutcome;
using service::JobResult;
using service::JobSpec;
using service::ServiceOptions;
using sim::DeviceLostError;
using sim::DeviceState;
using sim::ExecutionMode;
using sim::Fleet;
using sim::FleetProfile;
using sim::Machine;

FleetProfile small_fleet(int devices, int link_capacity = 1) {
  FleetProfile fp;
  fp.device = sim::test_rig();
  fp.devices = devices;
  fp.link_capacity = link_capacity;
  return fp;
}

// ----- device-level faults on a single Machine -----------------------

TEST(MachineFaults, FailStopThrowsFromTheArmedInstantOn) {
  Machine m(sim::test_rig(), ExecutionMode::TimingOnly);
  m.set_device_id(3);
  m.set_fail_at(1.0);
  m.host_advance(0.5);
  EXPECT_FALSE(m.lost());
  // Issued strictly before the instant: completes (in-flight work is
  // not clawed back), but the clock crosses the loss.
  m.host_advance(1.0);
  EXPECT_TRUE(m.lost());
  try {
    m.host_advance(0.1);
    FAIL() << "expected DeviceLostError";
  } catch (const DeviceLostError& e) {
    EXPECT_EQ(e.device(), 3);
    EXPECT_DOUBLE_EQ(e.at(), 1.0);
  }
  // The device stays dead: every further entry point throws too.
  EXPECT_THROW(m.sync_all(), DeviceLostError);
  EXPECT_THROW(m.alloc(8), DeviceLostError);
}

TEST(MachineFaults, StallWindowHoldsIssuedWorkUntilItCloses) {
  Machine m(sim::test_rig(), ExecutionMode::TimingOnly);
  m.add_stall(1.0, 2.0);
  m.host_advance(1.5);  // issued at t=0, lands inside the window
  m.host_advance(0.0);  // issued inside [1, 2): held until 2.0
  EXPECT_DOUBLE_EQ(m.host_now(), 2.0);
  // Past the window the device behaves normally again (no exception —
  // a stall is a hang, not a loss).
  m.host_advance(0.25);
  EXPECT_DOUBLE_EQ(m.host_now(), 2.25);
}

TEST(MachineFaults, ChainedStallWindowsApplyInOnePass) {
  Machine m(sim::test_rig(), ExecutionMode::TimingOnly);
  m.add_stall(2.0, 3.0);
  m.add_stall(1.0, 2.5);
  m.host_advance(1.2);
  m.host_advance(0.0);  // 1.2 -> 2.5 (first window) -> 3.0 (second)
  EXPECT_DOUBLE_EQ(m.host_now(), 3.0);
}

// ----- fleet clock / link / health bookkeeping ------------------------

TEST(FleetSim, SharedHostLinkSerializesSiblingTransfers) {
  // Two devices each issue one identical blocking H2D copy at t=0. With
  // one shared link slot the copies serialize; with two they overlap.
  const std::int64_t n = 1 << 20;
  auto upload_on_each = [&](int link_capacity) {
    Fleet fleet(small_fleet(2, link_capacity), ExecutionMode::TimingOnly);
    for (int d = 0; d < fleet.size(); ++d) {
      Machine& m = fleet.device(d);
      sim::DeviceBuffer buf = m.alloc(n);
      m.memcpy_h2d(buf, 0, nullptr, n, m.default_stream(),
                   /*blocking=*/true);
    }
    return fleet.makespan();
  };
  const double serialized = upload_on_each(1);
  const double overlapped = upload_on_each(2);
  EXPECT_GT(serialized, 1.5 * overlapped);
}

TEST(FleetSim, ClockIsTheLatestDeviceInstant) {
  Fleet fleet(small_fleet(3), ExecutionMode::TimingOnly);
  fleet.device(1).host_advance(2.0);
  fleet.device(2).host_advance(0.5);
  EXPECT_DOUBLE_EQ(fleet.now(), 2.0);
}

TEST(FleetSim, HealthBookkeeping) {
  Fleet fleet(small_fleet(3), ExecutionMode::TimingOnly);
  EXPECT_EQ(fleet.usable_count(), 3);
  EXPECT_EQ(fleet.state(0), DeviceState::Healthy);

  fleet.mark_degraded(1, 4.0);
  EXPECT_EQ(fleet.state(1), DeviceState::Degraded);
  EXPECT_DOUBLE_EQ(fleet.degrade_factor(1), 4.0);
  EXPECT_EQ(fleet.usable_count(), 3);  // degraded still serves jobs

  fleet.mark_lost(2);
  EXPECT_EQ(fleet.state(2), DeviceState::Lost);
  EXPECT_EQ(fleet.usable_count(), 2);
  EXPECT_EQ(fleet.losses_discovered(), 1);
  fleet.mark_lost(2);  // idempotent
  EXPECT_EQ(fleet.losses_discovered(), 1);

  fleet.arm_loss(0, 1.0);  // armed on the underlying machine
  fleet.device(0).host_advance(2.0);  // issued before the instant: lands
  EXPECT_THROW(fleet.device(0).host_advance(0.1), DeviceLostError);
}

// ----- the factorization service -------------------------------------

JobSpec basic_job(int n, int block = 16) {
  JobSpec spec;
  spec.id = 0;
  spec.n = n;
  spec.block = block;
  spec.matrix_seed = 12345;
  return spec;
}

/// Fault-free makespan of `spec` on a fresh single-device fleet — the
/// horizon device-loss instants are placed against. Measured without
/// panel checkpointing so a kill instant derived from it lands mid-run
/// whether or not the faulted run checkpoints (the checkpointed run is
/// strictly slower per iteration).
double fault_free_makespan(const JobSpec& spec) {
  Fleet fleet(small_fleet(1), ExecutionMode::Numeric);
  ServiceOptions so;
  so.checkpoint_resume = false;
  FactorizationService svc(fleet, so);
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();
  EXPECT_EQ(rs.size(), 1u);
  EXPECT_TRUE(rs[0].success);
  return fleet.makespan();
}

TEST(Service, FaultFreeJobCompletesOnFirstDevice) {
  Fleet fleet(small_fleet(2), ExecutionMode::Numeric);
  FactorizationService svc(fleet, ServiceOptions{});
  svc.submit(basic_job(96));
  const std::vector<JobResult> rs = svc.drain();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].outcome, JobOutcome::Completed);
  EXPECT_TRUE(rs[0].success);
  EXPECT_EQ(rs[0].attempts, 1);
  EXPECT_EQ(rs[0].migrations, 0);
  EXPECT_EQ(rs[0].resumed_iterations, 0);
  EXPECT_FALSE(rs[0].sdc);
  EXPECT_LT(rs[0].residual, 1e-12);
}

TEST(Service, MidRunDeviceLossMigratesAndResumesFromPanelCheckpoint) {
  const JobSpec spec = basic_job(512);  // 32 outer iterations
  const double horizon = fault_free_makespan(spec);

  Fleet fleet(small_fleet(2), ExecutionMode::Numeric);
  // Kill the device the job will start on (both clocks are 0; the
  // scheduler tie-breaks to device 0) deep into the factorization.
  fleet.arm_loss(0, 0.6 * horizon);
  FactorizationService svc(fleet, ServiceOptions{});
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();

  ASSERT_EQ(rs.size(), 1u);
  const JobResult& r = rs[0];
  EXPECT_EQ(r.outcome, JobOutcome::Migrated);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.device, 1);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.migrations, 1);
  // The retry seeded from the host-side panel checkpoint instead of
  // restarting cold: the loss at 0.6 * horizon postdates several
  // checkpoint cadences (interval 2 of 32 iterations).
  EXPECT_GT(r.resumed_iterations, 0);
  EXPECT_LT(r.resumed_iterations, 32);
  EXPECT_FALSE(r.sdc);
  EXPECT_LT(r.residual, 1e-12);
  EXPECT_EQ(fleet.losses_discovered(), 1);
  EXPECT_EQ(fleet.state(0), DeviceState::Lost);
}

TEST(Service, CheckpointResumeBeatsColdRerunAtScale) {
  // Acceptance bar (ISSUE 7): killing a device mid-Cholesky at n >= 1024
  // recovers from the last panel checkpoint, and the recovered run is
  // strictly cheaper than restarting cold.
  const JobSpec spec = basic_job(1024, 32);  // 32 outer iterations
  const double horizon = fault_free_makespan(spec);

  auto run_with_loss = [&](bool checkpoint_resume) {
    Fleet fleet(small_fleet(2), ExecutionMode::Numeric);
    fleet.arm_loss(0, 0.7 * horizon);
    ServiceOptions so;
    so.checkpoint_resume = checkpoint_resume;
    FactorizationService svc(fleet, so);
    svc.submit(spec);
    const std::vector<JobResult> rs = svc.drain();
    EXPECT_EQ(rs.size(), 1u);
    EXPECT_EQ(rs[0].outcome, JobOutcome::Migrated);
    EXPECT_TRUE(rs[0].success);
    EXPECT_FALSE(rs[0].sdc);
    if (checkpoint_resume) {
      EXPECT_GT(rs[0].resumed_iterations, 0);
    } else {
      EXPECT_EQ(rs[0].resumed_iterations, 0);
    }
    return fleet.makespan();
  };

  const double recovered = run_with_loss(true);
  const double cold = run_with_loss(false);
  EXPECT_LT(recovered, cold);
}

TEST(Service, LossBeforePlacementIsReplacementNotRetry) {
  // The device dies before the job would start there: discovering that
  // during placement costs no attempt and no retry budget.
  const JobSpec spec = basic_job(96);
  // Device 0 is least-loaded but already dead when the job is admitted
  // at t=1: the placement clock catch-up (not the factorization itself)
  // discovers the loss.
  Fleet fleet(small_fleet(2), ExecutionMode::Numeric);
  fleet.device(0).host_advance(0.6);
  fleet.device(1).host_advance(1.0);
  fleet.arm_loss(0, 0.5);  // armed after the clock passed it: next op throws
  ServiceOptions so;
  so.max_retries = 0;  // any mid-run migration would exhaust retries
  FactorizationService svc(fleet, so);
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].outcome, JobOutcome::Completed);
  EXPECT_EQ(rs[0].attempts, 1);
  EXPECT_EQ(rs[0].migrations, 0);
  EXPECT_EQ(rs[0].device, 1);
  EXPECT_EQ(fleet.losses_discovered(), 1);
}

TEST(Service, LosingTheWholeFleetIsAnHonestFailStop) {
  const JobSpec spec = basic_job(96);
  Fleet fleet(small_fleet(1), ExecutionMode::Numeric);
  fleet.arm_loss(0, 0.0);  // dead on arrival
  FactorizationService svc(fleet, ServiceOptions{});
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].outcome, JobOutcome::FailStop);
  EXPECT_FALSE(rs[0].success);
  EXPECT_FALSE(rs[0].sdc);
}

TEST(Service, RetryBudgetExhaustsWhenEveryDeviceDies) {
  const JobSpec spec = basic_job(256);
  const double horizon = fault_free_makespan(spec);
  Fleet fleet(small_fleet(2), ExecutionMode::Numeric);
  fleet.arm_loss(0, 0.3 * horizon);
  fleet.arm_loss(1, 0.3 * horizon);
  ServiceOptions so;
  so.max_retries = 1;
  FactorizationService svc(fleet, so);
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();
  ASSERT_EQ(rs.size(), 1u);
  // Both devices die mid-run: either the retry budget runs out or the
  // re-placement finds an empty fleet — never a dropped job, never a
  // claimed success.
  EXPECT_TRUE(rs[0].outcome == JobOutcome::ExhaustedRetries ||
              rs[0].outcome == JobOutcome::FailStop);
  EXPECT_FALSE(rs[0].success);
  EXPECT_GE(rs[0].migrations, 1);
  EXPECT_EQ(fleet.usable_count(), 0);
}

TEST(Service, JobsAdmittedOnAShrunkenFleetReportDegraded) {
  const JobSpec spec = basic_job(96);
  Fleet fleet(small_fleet(2), ExecutionMode::Numeric);
  fleet.mark_lost(0);  // the fleet already lost a device
  FactorizationService svc(fleet, ServiceOptions{});
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].outcome, JobOutcome::Degraded);
  EXPECT_TRUE(rs[0].success);
  EXPECT_FALSE(rs[0].sdc);
}

// ----- deterministic-twin replay -------------------------------------

/// Field-by-field equality of two scenario results; doubles compare
/// exactly because the whole pipeline is seeded and wall-clock-free.
void expect_identical(const service::FleetScenarioResult& a,
                      const service::FleetScenarioResult& b) {
  EXPECT_EQ(a.jobs_admitted, b.jobs_admitted);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.sdc_jobs, b.sdc_jobs);
  EXPECT_EQ(a.device_losses, b.device_losses);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.retries_spent, b.retries_spent);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.faults_detected, b.faults_detected);
  EXPECT_EQ(a.horizon_s, b.horizon_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  for (int v = 0; v < service::kFleetVerdictCount; ++v) {
    EXPECT_EQ(a.verdicts[static_cast<std::size_t>(v)],
              b.verdicts[static_cast<std::size_t>(v)]);
  }
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].outcome, b.jobs[i].outcome);
    EXPECT_EQ(a.jobs[i].attempts, b.jobs[i].attempts);
    EXPECT_EQ(a.jobs[i].device, b.jobs[i].device);
    EXPECT_EQ(a.jobs[i].migrations, b.jobs[i].migrations);
    EXPECT_EQ(a.jobs[i].resumed_iterations, b.jobs[i].resumed_iterations);
    EXPECT_EQ(a.jobs[i].end_time, b.jobs[i].end_time);
    EXPECT_EQ(a.jobs[i].residual, b.jobs[i].residual);
    EXPECT_EQ(a.jobs[i].faults_fired, b.jobs[i].faults_fired);
  }
}

TEST(FleetReplay, DeviceLossScenarioReplaysIdentically) {
  // A loss-heavy scenario with soft-error pressure: replaying it must
  // reproduce the run exactly — outcomes, virtual times, residual bits.
  service::FleetScenario sc;
  sc.devices = 3;
  sc.jobs = 2;
  sc.loss_count = 2;
  sc.stall_count = 1;
  sc.degrade_count = 1;
  sc.min_blocks = 6;
  sc.max_blocks = 8;
  sc.mtbf_s = 5e-5;
  sc.seed = 987654321;
  const service::FleetScenarioResult once = service::run_fleet_scenario(sc);
  const service::FleetScenarioResult twice = service::run_fleet_scenario(sc);
  expect_identical(once, twice);
  EXPECT_EQ(once.jobs_admitted, 2);
  EXPECT_EQ(once.dropped, 0);
  EXPECT_EQ(once.sdc_jobs, 0);
}

TEST(FleetReplay, ScenarioFormatRoundTrips) {
  service::FleetScenario sc;
  sc.devices = 4;
  sc.link_capacity = 2;
  sc.jobs = 3;
  sc.loss_count = 2;
  sc.stall_count = 1;
  sc.degrade_count = 1;
  sc.block = 16;
  sc.min_blocks = 4;
  sc.max_blocks = 7;
  sc.mtbf_s = 3.141592653589793e-5;
  sc.max_arrivals = 9;
  sc.max_retries = 2;
  sc.seed = 0xdeadbeefULL;

  const std::string text = service::format_fleet_scenario(sc);
  service::FleetScenario back;
  std::string err;
  ASSERT_TRUE(service::parse_fleet_scenario(text, &back, &err)) << err;
  EXPECT_EQ(back.devices, sc.devices);
  EXPECT_EQ(back.link_capacity, sc.link_capacity);
  EXPECT_EQ(back.jobs, sc.jobs);
  EXPECT_EQ(back.loss_count, sc.loss_count);
  EXPECT_EQ(back.stall_count, sc.stall_count);
  EXPECT_EQ(back.degrade_count, sc.degrade_count);
  EXPECT_EQ(back.block, sc.block);
  EXPECT_EQ(back.min_blocks, sc.min_blocks);
  EXPECT_EQ(back.max_blocks, sc.max_blocks);
  EXPECT_EQ(back.mtbf_s, sc.mtbf_s);  // exact: printed at precision 17
  EXPECT_EQ(back.max_arrivals, sc.max_arrivals);
  EXPECT_EQ(back.max_retries, sc.max_retries);
  EXPECT_EQ(back.seed, sc.seed);
}

// ----- causal tracing along the recovery path -------------------------

const obs::TraceNode* find_child(const obs::TraceNode& node,
                                 const std::string& name, int nth = 0) {
  int seen = 0;
  for (const auto& child : node.children) {
    if (child.span->name == name && seen++ == nth) return &child;
  }
  return nullptr;
}

TEST(ServiceTrace, MidRunLossTraceReconstructsTheRecoveryChain) {
  // The tentpole acceptance path: a forced mid-run device loss must
  // leave a trace from which submit → place → loss → migrate → resume →
  // complete reconstructs with parentage intact across devices.
  const JobSpec base = basic_job(512);  // 32 outer iterations
  const double horizon = fault_free_makespan(base);

  Fleet fleet(small_fleet(2), ExecutionMode::Numeric);
  fleet.arm_loss(0, 0.6 * horizon);
  obs::TraceStore trace;
  ServiceOptions so;
  so.trace = &trace;
  so.trace_seed = 99;
  FactorizationService svc(fleet, so);
  JobSpec spec = base;
  spec.tenant = "alpha";
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();

  ASSERT_EQ(rs.size(), 1u);
  const JobResult& r = rs[0];
  EXPECT_EQ(r.outcome, JobOutcome::Migrated);
  EXPECT_GT(r.resumed_iterations, 0);
  EXPECT_EQ(r.trace_id, obs::derive_trace_id(99, 0));
  EXPECT_EQ(r.tenant, "alpha");
  EXPECT_GT(r.device_seconds, 0.0);
  EXPECT_GT(r.checkpoint_bytes, 0);

  const obs::TraceReport report = obs::TraceReport::build(trace);
  const auto trees = obs::assemble_traces(report);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].trace_id, r.trace_id);
  EXPECT_EQ(trees[0].missing_parents, 0);
  ASSERT_EQ(trees[0].roots.size(), 1u);
  const obs::TraceNode& job = trees[0].roots[0];
  EXPECT_EQ(job.span->kind, "job");
  EXPECT_EQ(job.span->tenant, "alpha");
  EXPECT_EQ(job.span->parent_span, 0u);

  ASSERT_NE(find_child(job, "submit"), nullptr);
  ASSERT_NE(find_child(job, "queue"), nullptr);

  // First attempt on device 0 ends in the loss; its driver span closes
  // with "loss" too (the unwind must not orphan open spans).
  const obs::TraceNode* first = find_child(job, "attempt", 0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->span->device, 0);
  EXPECT_EQ(first->span->status, "loss");
  ASSERT_NE(find_child(*first, "place"), nullptr);
  ASSERT_NE(find_child(*first, "loss"), nullptr);
  const obs::TraceNode* lost_drv = find_child(*first, "factorize");
  ASSERT_NE(lost_drv, nullptr);
  EXPECT_EQ(lost_drv->span->status, "loss");

  const obs::TraceNode* migrate = find_child(job, "migrate");
  ASSERT_NE(migrate, nullptr);
  EXPECT_NE(migrate->span->detail.find("from=0"), std::string::npos);

  // Second attempt on the surviving device resumes from the panel
  // checkpoint: the driver carries a resume marker and checkpoint
  // spans, all parented under the device-1 attempt.
  const obs::TraceNode* second = find_child(job, "attempt", 1);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->span->device, 1);
  EXPECT_EQ(second->span->status, "ok");
  const obs::TraceNode* drv = find_child(*second, "factorize");
  ASSERT_NE(drv, nullptr);
  EXPECT_EQ(drv->span->device, 1);
  ASSERT_NE(find_child(*drv, "resume"), nullptr);
  const obs::TraceNode* pass = find_child(*drv, "pass");
  ASSERT_NE(pass, nullptr);
  EXPECT_NE(find_child(*pass, "checkpoint"), nullptr);

  const obs::TraceNode* complete = find_child(job, "complete");
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->span->status, "migrated");

  // The whole story is one job: every span shares the trace id and the
  // tenant, wherever it was recorded.
  for (const auto& s : report.spans) {
    EXPECT_EQ(s.trace_id, r.trace_id);
    EXPECT_EQ(s.tenant, "alpha");
  }
}

TEST(ServiceTrace, CallerProvidedContextIsKept) {
  Fleet fleet(small_fleet(1), ExecutionMode::Numeric);
  obs::TraceStore trace;
  ServiceOptions so;
  so.trace = &trace;
  FactorizationService svc(fleet, so);
  JobSpec spec = basic_job(96);
  spec.trace.trace_id = obs::derive_trace_id(555, 42);
  spec.trace.span_id = spec.trace.trace_id;
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].trace_id, obs::derive_trace_id(555, 42));
}

TEST(ServiceTrace, TracingOffRecordsNothingAndChangesNothing) {
  const JobSpec spec = basic_job(96);
  Fleet traced_fleet(small_fleet(1), ExecutionMode::Numeric);
  obs::TraceStore trace;
  ServiceOptions so;
  so.trace = &trace;
  FactorizationService traced(traced_fleet, so);
  traced.submit(spec);
  const std::vector<JobResult> a = traced.drain();

  Fleet plain_fleet(small_fleet(1), ExecutionMode::Numeric);
  FactorizationService plain(plain_fleet, ServiceOptions{});
  plain.submit(spec);
  const std::vector<JobResult> b = plain.drain();

  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(b[0].trace_id, 0u);
  // Tracing is pure observation: virtual timings are identical.
  EXPECT_EQ(a[0].end_time, b[0].end_time);
  EXPECT_EQ(a[0].seconds, b[0].seconds);
  EXPECT_EQ(traced_fleet.makespan(), plain_fleet.makespan());
}

// ----- flight-recorder breadcrumbs along recovery paths ---------------

TEST(ServiceBreadcrumbs, RecoveryPathLeavesAReconcilableTrail) {
  // Satellite (ISSUE 10): a forced mid-run device loss must leave the
  // breadcrumb chain placement → loss discovered → re-placement →
  // resume-from-panel in the flight recorder, and the postmortem bundle
  // must reconcile with it.
  const JobSpec spec = basic_job(512);
  const double horizon = fault_free_makespan(spec);

  Fleet fleet(small_fleet(2), ExecutionMode::Numeric);
  fleet.arm_loss(0, 0.6 * horizon);
  obs::FlightRecorder recorder;
  ServiceOptions so;
  so.recorder = &recorder;
  FactorizationService svc(fleet, so);
  svc.submit(spec);
  const std::vector<JobResult> rs = svc.drain();
  ASSERT_EQ(rs.size(), 1u);
  ASSERT_EQ(rs[0].outcome, JobOutcome::Migrated);
  ASSERT_GT(rs[0].resumed_iterations, 0);

  std::ostringstream bundle_text;
  recorder.write_bundle(bundle_text, /*exit_code=*/3, "forced loss");
  std::istringstream in(bundle_text.str());
  obs::FlightBundle bundle;
  ASSERT_TRUE(obs::read_flight_bundle(in, &bundle));
  EXPECT_EQ(bundle.exit_code, 3);

  // The chain, in order, within the bundle's breadcrumb trail:
  // placement → loss discovered → migration → re-placement →
  // resume-from-panel → finish.
  const std::vector<std::pair<std::string, std::string>> chain = {
      {"service:admit", ""},
      {"service:place", "device=0"},
      {"service:device_lost", "device=0"},
      {"service:migrate", "from=0"},
      {"service:place", "device=1"},
      {"service:resume", "iterations="},
      {"service:finish", "outcome=migrated"},
  };
  std::size_t at = 0;
  for (const auto& want : chain) {
    bool found = false;
    for (; at < bundle.breadcrumbs.size(); ++at) {
      const std::string& crumb = bundle.breadcrumbs[at];
      if (crumb.find(want.first) != std::string::npos &&
          crumb.find(want.second) != std::string::npos) {
        found = true;
        ++at;
        break;
      }
    }
    EXPECT_TRUE(found) << "breadcrumb chain broken at \"" << want.first
                       << " ... " << want.second << "\"\nbundle:\n"
                       << bundle_text.str();
  }
}

}  // namespace
}  // namespace ftla
