// Tests for the analytic models: the Opt-2 placement decision model and
// the closed-form overhead model (paper Tables II-VI).
#include <gtest/gtest.h>

#include "abft/opt2_model.hpp"
#include "abft/overhead_model.hpp"
#include "sim/profile.hpp"

namespace ftla::abft {
namespace {

TEST(Opt2Model, PicksCpuOnTardis) {
  // Paper §VII-D: "we choose CPU to update checksums on Tardis".
  auto e = opt2_decide(sim::tardis(), 20480, 256, 1);
  EXPECT_EQ(e.decision, UpdatePlacement::Cpu);
  EXPECT_GT(e.t_pick_gpu_s, e.t_pick_cpu_s);
}

TEST(Opt2Model, PicksGpuOnBulldozer64) {
  // Paper §VII-D: "choose GPU to update checksums on Bulldozer64".
  auto e = opt2_decide(sim::bulldozer64(), 30720, 512, 1);
  EXPECT_EQ(e.decision, UpdatePlacement::Gpu);
}

TEST(Opt2Model, EstimatesArePositiveAndOrdered) {
  for (int n : {5120, 10240, 20480}) {
    auto e = opt2_decide(sim::tardis(), n, 256, 1);
    EXPECT_GT(e.t_pick_cpu_s, 0.0);
    EXPECT_GT(e.t_pick_gpu_s, 0.0);
    // Both include the same base work, so they are within 2x.
    EXPECT_LT(e.t_pick_gpu_s / e.t_pick_cpu_s, 2.0);
  }
}

TEST(Opt2Model, LargerKReducesCpuTransferPenalty) {
  auto k1 = opt2_decide(sim::tardis(), 20480, 256, 1);
  auto k5 = opt2_decide(sim::tardis(), 20480, 256, 5);
  EXPECT_LE(k5.t_pick_cpu_s, k1.t_pick_cpu_s);
}

TEST(OverheadModel, CholeskyFlops) {
  EXPECT_DOUBLE_EQ(cholesky_flops_model(3000), 9e9);
}

TEST(OverheadModel, EncodeIsTwoNSquared) {
  auto o = online_abft_overhead(1000, 100);
  EXPECT_DOUBLE_EQ(o.encode, 2e6);
  // Relative encode overhead = 6/n (paper §VI-1).
  EXPECT_NEAR(o.encode / cholesky_flops_model(1000), 6.0 / 1000, 1e-12);
}

TEST(OverheadModel, UpdateTotalsMatchTableIII) {
  const int n = 20480, b = 256;
  auto o = online_abft_overhead(n, b);
  const double n3 = cholesky_flops_model(n);
  // Total updating relative overhead = 12/n + 2/B (paper §VI-2),
  // POTF2's 6B/n^2 being the ignorable part.
  EXPECT_NEAR((o.update_trsm + o.update_syrk + o.update_gemm) / n3,
              12.0 / n + 2.0 / b, 1e-9);
}

TEST(OverheadModel, OnlineRecalcMatchesTableIV) {
  const int n = 20480, b = 256;
  auto o = online_abft_overhead(n, b);
  const double n3 = cholesky_flops_model(n);
  EXPECT_NEAR((o.recalc_trsm + o.recalc_gemm) / n3, 12.0 / n, 1e-9);
}

TEST(OverheadModel, EnhancedRecalcMatchesTableV) {
  const int n = 20480, b = 256, k = 3;
  auto o = enhanced_abft_overhead(n, b, k);
  const double n3 = cholesky_flops_model(n);
  // (6K+6)/nK + 2/BK (paper §VI-3b).
  EXPECT_NEAR((o.recalc_trsm + o.recalc_syrk + o.recalc_gemm) / n3,
              (6.0 * k + 6.0) / (n * k) + 2.0 / (b * k), 1e-9);
}

TEST(OverheadModel, OverallFormulasMatchTableVI) {
  const int n = 20480, b = 256;
  EXPECT_NEAR(online_relative_overhead(n, b), 30.0 / n + 2.0 / b, 1e-15);
  for (int k : {1, 3, 5}) {
    EXPECT_NEAR(enhanced_relative_overhead(n, b, k),
                (24.0 * k + 6.0) / (static_cast<double>(n) * k) +
                    (2.0 * k + 2.0) / (static_cast<double>(b) * k),
                1e-15);
  }
}

TEST(OverheadModel, BreakdownTotalsEqualClosedFormAsymptotically) {
  const int n = 30720, b = 512;
  // Online: breakdown total / n^3/3 should approach 30/n + 2/B.
  auto o = online_abft_overhead(n, b);
  EXPECT_NEAR(o.flops_total() / cholesky_flops_model(n),
              online_relative_overhead(n, b),
              2.0 / n);  // POTF2 terms are O(B/n^2)
  // Enhanced, K = 1.
  auto e = enhanced_abft_overhead(n, b, 1);
  EXPECT_NEAR(e.flops_total() / cholesky_flops_model(n),
              enhanced_relative_overhead(n, b, 1), 2.0 / n);
}

TEST(OverheadModel, EnhancedConvergesToConstant) {
  const int b = 256, k = 1;
  const double at_20k = enhanced_relative_overhead(20480, b, k);
  const double at_40k = enhanced_relative_overhead(40960, b, k);
  const double limit = (2.0 * k + 2.0) / (b * k);
  EXPECT_GT(at_20k, at_40k);
  EXPECT_GT(at_40k, limit);
  EXPECT_NEAR(at_40k, limit, 1e-3);
}

TEST(OverheadModel, LargerKLowersEnhancedOverhead) {
  const int n = 20480, b = 256;
  EXPECT_GT(enhanced_relative_overhead(n, b, 1),
            enhanced_relative_overhead(n, b, 3));
  EXPECT_GT(enhanced_relative_overhead(n, b, 3),
            enhanced_relative_overhead(n, b, 5));
}

TEST(OverheadModel, VerificationTransferScalesAsPaper) {
  const int n = 20480, b = 256;
  auto e1 = enhanced_abft_overhead(n, b, 1);
  auto e4 = enhanced_abft_overhead(n, b, 4);
  EXPECT_NEAR(e1.xfer_verification,
              static_cast<double>(n) * n * n / (3.0 * b * b), 1.0);
  EXPECT_NEAR(e1.xfer_verification / e4.xfer_verification, 4.0, 1e-9);
}

TEST(OverheadModel, SpaceOverheadIsTwoOverB) {
  auto o = online_abft_overhead(10240, 256);
  EXPECT_NEAR(o.checksum_words / (10240.0 * 10240.0), 2.0 / 256, 1e-12);
}

}  // namespace
}  // namespace ftla::abft
