// BLAS Level-1 unit tests, including strided access and edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/level1.hpp"
#include "common/rng.hpp"

namespace ftla::blas {
namespace {

std::vector<double> random_vec(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(Axpy, Contiguous) {
  auto x = random_vec(100, 1);
  auto y = random_vec(100, 2);
  auto expect = y;
  for (int i = 0; i < 100; ++i) expect[i] += 2.5 * x[i];
  axpy(100, 2.5, x.data(), 1, y.data(), 1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
}

TEST(Axpy, Strided) {
  auto x = random_vec(30, 3);
  auto y = random_vec(30, 4);
  auto expect = y;
  for (int i = 0; i < 10; ++i) expect[i * 3] += -1.5 * x[i * 2];
  axpy(10, -1.5, x.data(), 2, y.data(), 3);
  for (int i = 0; i < 30; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
}

TEST(Axpy, AlphaZeroIsNoop) {
  auto x = random_vec(16, 5);
  auto y = random_vec(16, 6);
  auto expect = y;
  axpy(16, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, expect);
}

TEST(Axpy, NegativeLengthIsNoop) {
  auto y = random_vec(4, 7);
  auto expect = y;
  axpy(-3, 1.0, y.data(), 1, y.data(), 1);
  EXPECT_EQ(y, expect);
}

TEST(Scal, ScalesInPlace) {
  auto x = random_vec(50, 8);
  auto expect = x;
  for (auto& v : expect) v *= 3.0;
  scal(50, 3.0, x.data(), 1);
  EXPECT_EQ(x, expect);
}

TEST(Scal, Strided) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  scal(3, 10.0, x.data(), 2);
  EXPECT_EQ(x, (std::vector<double>{10, 2, 30, 4, 50, 6}));
}

TEST(Dot, MatchesManualSum) {
  auto x = random_vec(64, 9);
  auto y = random_vec(64, 10);
  double expect = 0.0;
  for (int i = 0; i < 64; ++i) expect += x[i] * y[i];
  EXPECT_DOUBLE_EQ(dot(64, x.data(), 1, y.data(), 1), expect);
}

TEST(Dot, EmptyIsZero) {
  EXPECT_EQ(dot(0, nullptr, 1, nullptr, 1), 0.0);
}

TEST(Nrm2, MatchesSqrtOfDot) {
  auto x = random_vec(80, 11);
  const double expect = std::sqrt(dot(80, x.data(), 1, x.data(), 1));
  EXPECT_NEAR(nrm2(80, x.data(), 1), expect, 1e-12 * expect);
}

TEST(Nrm2, OverflowSafe) {
  std::vector<double> x = {1e200, 1e200};
  EXPECT_NEAR(nrm2(2, x.data(), 1), std::sqrt(2.0) * 1e200,
              1e188);
}

TEST(Nrm2, UnderflowSafe) {
  std::vector<double> x = {1e-200, 1e-200};
  EXPECT_NEAR(nrm2(2, x.data(), 1) / (std::sqrt(2.0) * 1e-200), 1.0, 1e-12);
}

TEST(Iamax, FindsLargestMagnitude) {
  std::vector<double> x = {1.0, -5.0, 3.0, 4.9};
  EXPECT_EQ(iamax(4, x.data(), 1), 1);
}

TEST(Iamax, FirstOfTies) {
  std::vector<double> x = {2.0, -2.0, 2.0};
  EXPECT_EQ(iamax(3, x.data(), 1), 0);
}

TEST(Iamax, EmptyReturnsMinusOne) {
  EXPECT_EQ(iamax(0, nullptr, 1), -1);
}

TEST(Copy, Strided) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y(8, 0.0);
  copy(4, x.data(), 1, y.data(), 2);
  EXPECT_EQ(y, (std::vector<double>{1, 0, 2, 0, 3, 0, 4, 0}));
}

TEST(Swap, ExchangesContents) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {4, 5, 6};
  swap(3, x.data(), 1, y.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(y, (std::vector<double>{1, 2, 3}));
}

TEST(Asum, SumsAbsoluteValues) {
  std::vector<double> x = {-1.0, 2.0, -3.0};
  EXPECT_DOUBLE_EQ(asum(3, x.data(), 1), 6.0);
}

}  // namespace
}  // namespace ftla::blas
