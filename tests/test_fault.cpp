// Fault-injection bookkeeping tests: plan matching, ECC absorption,
// scenario builders and randomized plan hygiene.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "fault/fault.hpp"
#include "fault/process.hpp"

namespace ftla::fault {
namespace {

TEST(Injector, TakeMatchesTypeOpIteration) {
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = 3;
  Injector inj({s});
  EXPECT_TRUE(inj.take(FaultType::Computing, Op::Gemm, 2).empty());
  EXPECT_TRUE(inj.take(FaultType::Storage, Op::Gemm, 3).empty());
  EXPECT_TRUE(inj.take(FaultType::Computing, Op::Syrk, 3).empty());
  auto fired = inj.take(FaultType::Computing, Op::Gemm, 3);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(inj.pending_count(), 0);
  // Consumed: does not fire twice (transient fault semantics).
  EXPECT_TRUE(inj.take(FaultType::Computing, Op::Gemm, 3).empty());
}

TEST(Injector, MultipleMatchingSpecsAllFire) {
  FaultSpec a;
  a.type = FaultType::Storage;
  a.op = Op::Syrk;
  a.iteration = 1;
  FaultSpec b = a;
  b.block_col = 0;
  Injector inj({a, b});
  EXPECT_EQ(inj.take(FaultType::Storage, Op::Syrk, 1).size(), 2u);
}

TEST(Injector, RecordsKeepHistory) {
  FaultSpec s;
  Injector inj;
  inj.record(s, 1.0, 2.0, 10, 20);
  ASSERT_EQ(inj.fired_count(), 1);
  EXPECT_EQ(inj.records()[0].old_value, 1.0);
  EXPECT_EQ(inj.records()[0].new_value, 2.0);
  EXPECT_EQ(inj.records()[0].global_row, 10);
  EXPECT_EQ(inj.records()[0].global_col, 20);
}

TEST(Ecc, CorrectsSingleBitOnly) {
  EccModel on{true};
  EccModel off{false};
  EXPECT_TRUE(on.corrects({5}));
  EXPECT_FALSE(on.corrects({5, 6}));
  EXPECT_FALSE(off.corrects({5}));
}

TEST(Injector, EccAbsorbsSingleBitStorageFaults) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 2;
  s.bits = {17};
  Injector inj({s}, EccModel{true});
  EXPECT_TRUE(inj.take(FaultType::Storage, Op::Gemm, 2).empty());
  EXPECT_EQ(inj.ecc_absorbed_count(), 1);
}

TEST(Injector, EccPassesMultiBitStorageFaults) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 2;
  s.bits = {17, 44};
  Injector inj({s}, EccModel{true});
  EXPECT_EQ(inj.take(FaultType::Storage, Op::Gemm, 2).size(), 1u);
  EXPECT_EQ(inj.ecc_absorbed_count(), 0);
}

TEST(Injector, EccDoesNotSeeComputingErrors) {
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = 0;
  Injector inj({s}, EccModel{true});
  EXPECT_EQ(inj.take(FaultType::Computing, Op::Gemm, 0).size(), 1u);
}

TEST(Builders, ComputingErrorTargetsCurrentColumn) {
  Rng rng(1);
  for (int iter : {0, 3, 7}) {
    auto s = computing_error_at(iter, 8, rng);
    EXPECT_EQ(s.type, FaultType::Computing);
    EXPECT_EQ(s.iteration, iter);
    EXPECT_EQ(s.block_col, iter);
    if (s.op == Op::Gemm) EXPECT_GT(s.block_row, iter);
  }
}

TEST(Builders, LastIterationFallsBackToSyrk) {
  Rng rng(2);
  auto s = computing_error_at(7, 8, rng);
  EXPECT_EQ(s.op, Op::Syrk);
  EXPECT_EQ(s.block_row, 7);
}

TEST(Builders, StorageErrorHitsDecomposedPanel) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int iter = 1 + static_cast<int>(rng.next_below(7));
    auto s = storage_error_at(iter, 8, rng);
    EXPECT_EQ(s.type, FaultType::Storage);
    EXPECT_LT(s.block_col, iter) << "must target the decomposed slate";
    EXPECT_GE(s.bits.size(), 2u) << "must defeat SEC-DED ECC";
    if (s.op == Op::Syrk) {
      EXPECT_EQ(s.block_row, iter);
    } else {
      EXPECT_GT(s.block_row, iter);
    }
  }
}

TEST(RandomPlan, RespectsTypeFilter) {
  auto plan = random_plan(20, 8, 42, FaultType::Computing);
  for (const auto& s : plan) EXPECT_EQ(s.type, FaultType::Computing);
}

TEST(RandomPlan, NoDuplicateHooks) {
  auto plan = random_plan(64, 6, 7);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.size(); ++j) {
      const bool same = plan[i].iteration == plan[j].iteration &&
                        plan[i].op == plan[j].op &&
                        plan[i].type == plan[j].type &&
                        plan[i].block_row == plan[j].block_row &&
                        plan[i].block_col == plan[j].block_col;
      EXPECT_FALSE(same);
    }
  }
}

TEST(RandomPlan, DeterministicForSeed) {
  auto p1 = random_plan(10, 8, 5);
  auto p2 = random_plan(10, 8, 5);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].iteration, p2[i].iteration);
    EXPECT_EQ(p1[i].block_row, p2[i].block_row);
    EXPECT_EQ(p1[i].block_col, p2[i].block_col);
  }
}

TEST(RandomPlan, ReturnsExactlyRequestedCount) {
  // The count is a contract, not a hint: hook-site collisions are
  // resampled, not dropped, so any request the hook grid can hold is
  // met exactly.
  for (int count : {1, 5, 17, 40}) {
    for (std::uint64_t seed : {1ULL, 42ULL, 987654321ULL}) {
      EXPECT_EQ(random_plan(count, 8, seed).size(),
                static_cast<std::size_t>(count))
          << "count=" << count << " seed=" << seed;
    }
  }
}

TEST(RandomPlan, SaturatesGracefullyOnTinyHookGrid) {
  // A request beyond the distinct-hook capacity of a tiny block grid
  // returns a shorter duplicate-free plan instead of spinning or
  // padding with repeats.
  const auto plan = random_plan(500, 2, 9);
  EXPECT_LT(plan.size(), 500u);
  EXPECT_GT(plan.size(), 0u);
  std::set<std::tuple<int, int, int, int, int>> keys;
  for (const auto& s : plan) {
    EXPECT_TRUE(keys.insert({s.iteration, static_cast<int>(s.op),
                             static_cast<int>(s.type), s.block_row,
                             s.block_col})
                    .second);
  }
}

TEST(FaultProcess, DeterministicForSeed) {
  ProcessConfig cfg;
  cfg.mtbf_s = 1.0e-4;
  cfg.seed = 99;
  FaultProcess p1(cfg, 6);
  FaultProcess p2(cfg, 6);
  for (int step = 1; step <= 50; ++step) {
    const double now = 1.0e-4 * step;
    for (FaultType t : {FaultType::Computing, FaultType::Storage,
                        FaultType::Transfer}) {
      const int n1 = p1.drain(t, now);
      const int n2 = p2.drain(t, now);
      ASSERT_EQ(n1, n2) << "type diverged at step " << step;
      // Transfer arrivals are concretized by the machine's copy hook,
      // not synthesize() — drain parity is the whole contract there.
      if (t == FaultType::Transfer) continue;
      for (int i = 0; i < n1; ++i) {
        auto s1 = p1.synthesize(t, Op::Syrk, step);
        auto s2 = p2.synthesize(t, Op::Syrk, step);
        ASSERT_EQ(s1.size(), s2.size());
        for (std::size_t k = 0; k < s1.size(); ++k) {
          EXPECT_EQ(s1[k].block_row, s2[k].block_row);
          EXPECT_EQ(s1[k].block_col, s2[k].block_col);
          EXPECT_EQ(s1[k].elem_row, s2[k].elem_row);
          EXPECT_EQ(s1[k].bits, s2[k].bits);
          EXPECT_EQ(s1[k].magnitude, s2[k].magnitude);
        }
      }
    }
  }
  EXPECT_GT(p1.arrivals_generated(), 0);
}

TEST(FaultProcess, ArrivalRateTracksMtbf) {
  // Over a horizon of H seconds a Poisson process with mean gap m sees
  // ~H/m arrivals; check within generous bounds across seeds.
  ProcessConfig cfg;
  cfg.mtbf_s = 1.0e-3;
  cfg.max_arrivals = 100000;
  const double horizon = 1.0;  // expect ~1000 arrivals
  long long total = 0;
  const int kSeeds = 8;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    cfg.seed = seed;
    FaultProcess p(cfg, 6);
    for (FaultType t : {FaultType::Computing, FaultType::Storage,
                        FaultType::Transfer}) {
      p.drain(t, horizon);
    }
    total += p.arrivals_generated();
  }
  const double mean = static_cast<double>(total) / kSeeds;
  EXPECT_GT(mean, 850.0);
  EXPECT_LT(mean, 1150.0);
}

TEST(FaultProcess, MaxArrivalsBoundsStorms) {
  ProcessConfig cfg;
  cfg.mtbf_s = 1.0e-9;  // pathological rate
  cfg.seed = 3;
  cfg.max_arrivals = 16;
  FaultProcess p(cfg, 4);
  int drained = 0;
  for (FaultType t : {FaultType::Computing, FaultType::Storage,
                      FaultType::Transfer}) {
    drained += p.drain(t, 10.0);
  }
  EXPECT_LE(drained, 16);
  EXPECT_LE(p.arrivals_generated(), 16);
}

TEST(FaultProcess, StormCapIsPerDeviceNotPerRun) {
  // Regression (ISSUE 7 satellite): the cap used to be a single per-run
  // budget, so one noisy device could exhaust it and silently starve
  // injection on its healthy fleet siblings. Drain device 0 to the cap,
  // then device 1 must still generate its own full storm.
  ProcessConfig cfg;
  cfg.mtbf_s = 1.0e-9;  // pathological rate: every drain hits the cap
  cfg.seed = 3;
  cfg.max_arrivals = 16;
  cfg.devices = 2;
  FaultProcess p(cfg, 4);

  p.set_active_device(0);
  for (FaultType t : {FaultType::Computing, FaultType::Storage,
                      FaultType::Transfer}) {
    p.drain(t, 10.0);
  }
  EXPECT_EQ(p.arrivals_generated(0), 16);

  p.set_active_device(1);
  int drained = 0;
  for (FaultType t : {FaultType::Computing, FaultType::Storage,
                      FaultType::Transfer}) {
    drained += p.drain(t, 10.0);
  }
  EXPECT_EQ(drained, 16) << "device 1's budget was eaten by device 0";
  EXPECT_EQ(p.arrivals_generated(1), 16);
  EXPECT_EQ(p.arrivals_generated(), 32);
}

TEST(FaultProcess, DeviceStreamsAreIndependent) {
  // Device 0's stream is seeded exactly like the single-device process
  // (bit-compatibility with every pre-fleet test); sibling devices see
  // different, independent arrival sequences.
  ProcessConfig cfg;
  cfg.mtbf_s = 1.0e-4;
  cfg.seed = 99;
  cfg.max_arrivals = 1000;

  FaultProcess single(cfg, 6);
  ProcessConfig fleet_cfg = cfg;
  fleet_cfg.devices = 3;
  FaultProcess fleet(fleet_cfg, 6);

  int single_total = 0;
  int fleet_dev0_total = 0;
  for (int step = 1; step <= 20; ++step) {
    const double now = 1.0e-4 * step;
    for (FaultType t : {FaultType::Computing, FaultType::Storage,
                        FaultType::Transfer}) {
      single_total += single.drain(t, now);
      fleet.set_active_device(0);
      fleet_dev0_total += fleet.drain(t, now);
      fleet.set_active_device(1);
      fleet.drain(t, now);
    }
  }
  EXPECT_EQ(fleet_dev0_total, single_total);
  EXPECT_GT(fleet.arrivals_generated(1), 0);
}

TEST(FaultProcess, RateMultiplierAcceleratesOneDeviceOnly) {
  ProcessConfig cfg;
  cfg.mtbf_s = 1.0e-3;
  cfg.seed = 5;
  cfg.max_arrivals = 100000;
  cfg.devices = 2;
  FaultProcess p(cfg, 6);
  p.set_rate_multiplier(1, 8.0);
  for (int d = 0; d < 2; ++d) {
    p.set_active_device(d);
    for (FaultType t : {FaultType::Computing, FaultType::Storage,
                        FaultType::Transfer}) {
      p.drain(t, 1.0);
    }
  }
  // Device 1 runs degraded hardware: ~8x the arrivals of device 0 over
  // the same horizon (generous bounds — it is still a Poisson draw).
  EXPECT_GT(p.arrivals_generated(1),
            4 * std::max(1, p.arrivals_generated(0)));
}

TEST(FaultProcess, StorageBitsNeverManufactureNanInf) {
  ProcessConfig cfg;
  cfg.seed = 11;
  FaultProcess p(cfg, 6);
  for (int i = 0; i < 2000; ++i) {
    for (int b : p.sample_bits()) {
      EXPECT_GE(b, 8);
      EXPECT_LE(b, 61);
    }
  }
}

TEST(DeviceFaultPlan, LossesLandMidRunOnDistinctDevices) {
  DeviceFaultPlanConfig cfg;
  cfg.devices = 4;
  cfg.loss_count = 5;  // asked for more than survivable
  cfg.stall_count = 2;
  cfg.degrade_count = 1;
  cfg.horizon_s = 2.0;
  cfg.seed = 77;
  const std::vector<DeviceFaultSpec> plan = sample_device_faults(cfg);

  std::set<int> lost;
  for (const auto& s : plan) {
    EXPECT_GE(s.device, 0);
    EXPECT_LT(s.device, cfg.devices);
    if (s.kind == DeviceFaultKind::FailStop) {
      EXPECT_TRUE(lost.insert(s.device).second)
          << "two losses on device " << s.device;
      EXPECT_GE(s.time, 0.15 * cfg.horizon_s);
      EXPECT_LE(s.time, 0.85 * cfg.horizon_s);
    } else if (s.kind == DeviceFaultKind::Stall) {
      EXPECT_GT(s.duration, 0.0);
      EXPECT_GE(s.time, 0.15 * cfg.horizon_s);
    } else {
      EXPECT_GT(s.rate_multiplier, 1.0);
    }
  }
  // At least one device must survive, whatever was requested.
  EXPECT_LE(static_cast<int>(lost.size()), cfg.devices - 1);
  EXPECT_EQ(static_cast<int>(lost.size()), 3);

  // Deterministic for the seed.
  const std::vector<DeviceFaultSpec> again = sample_device_faults(cfg);
  ASSERT_EQ(plan.size(), again.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].device, again[i].device);
    EXPECT_EQ(plan[i].time, again[i].time);
  }
}

TEST(Strings, EnumNames) {
  EXPECT_STREQ(to_string(FaultType::Computing), "computing");
  EXPECT_STREQ(to_string(FaultType::Storage), "storage");
  EXPECT_STREQ(to_string(Op::Potf2), "potf2");
  EXPECT_STREQ(to_string(Op::Trsm), "trsm");
}

}  // namespace
}  // namespace ftla::fault
