// Fault-injection bookkeeping tests: plan matching, ECC absorption,
// scenario builders and randomized plan hygiene.
#include <gtest/gtest.h>

#include "fault/fault.hpp"

namespace ftla::fault {
namespace {

TEST(Injector, TakeMatchesTypeOpIteration) {
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = 3;
  Injector inj({s});
  EXPECT_TRUE(inj.take(FaultType::Computing, Op::Gemm, 2).empty());
  EXPECT_TRUE(inj.take(FaultType::Storage, Op::Gemm, 3).empty());
  EXPECT_TRUE(inj.take(FaultType::Computing, Op::Syrk, 3).empty());
  auto fired = inj.take(FaultType::Computing, Op::Gemm, 3);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(inj.pending_count(), 0);
  // Consumed: does not fire twice (transient fault semantics).
  EXPECT_TRUE(inj.take(FaultType::Computing, Op::Gemm, 3).empty());
}

TEST(Injector, MultipleMatchingSpecsAllFire) {
  FaultSpec a;
  a.type = FaultType::Storage;
  a.op = Op::Syrk;
  a.iteration = 1;
  FaultSpec b = a;
  b.block_col = 0;
  Injector inj({a, b});
  EXPECT_EQ(inj.take(FaultType::Storage, Op::Syrk, 1).size(), 2u);
}

TEST(Injector, RecordsKeepHistory) {
  FaultSpec s;
  Injector inj;
  inj.record(s, 1.0, 2.0, 10, 20);
  ASSERT_EQ(inj.fired_count(), 1);
  EXPECT_EQ(inj.records()[0].old_value, 1.0);
  EXPECT_EQ(inj.records()[0].new_value, 2.0);
  EXPECT_EQ(inj.records()[0].global_row, 10);
  EXPECT_EQ(inj.records()[0].global_col, 20);
}

TEST(Ecc, CorrectsSingleBitOnly) {
  EccModel on{true};
  EccModel off{false};
  EXPECT_TRUE(on.corrects({5}));
  EXPECT_FALSE(on.corrects({5, 6}));
  EXPECT_FALSE(off.corrects({5}));
}

TEST(Injector, EccAbsorbsSingleBitStorageFaults) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 2;
  s.bits = {17};
  Injector inj({s}, EccModel{true});
  EXPECT_TRUE(inj.take(FaultType::Storage, Op::Gemm, 2).empty());
  EXPECT_EQ(inj.ecc_absorbed_count(), 1);
}

TEST(Injector, EccPassesMultiBitStorageFaults) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 2;
  s.bits = {17, 44};
  Injector inj({s}, EccModel{true});
  EXPECT_EQ(inj.take(FaultType::Storage, Op::Gemm, 2).size(), 1u);
  EXPECT_EQ(inj.ecc_absorbed_count(), 0);
}

TEST(Injector, EccDoesNotSeeComputingErrors) {
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = 0;
  Injector inj({s}, EccModel{true});
  EXPECT_EQ(inj.take(FaultType::Computing, Op::Gemm, 0).size(), 1u);
}

TEST(Builders, ComputingErrorTargetsCurrentColumn) {
  Rng rng(1);
  for (int iter : {0, 3, 7}) {
    auto s = computing_error_at(iter, 8, rng);
    EXPECT_EQ(s.type, FaultType::Computing);
    EXPECT_EQ(s.iteration, iter);
    EXPECT_EQ(s.block_col, iter);
    if (s.op == Op::Gemm) EXPECT_GT(s.block_row, iter);
  }
}

TEST(Builders, LastIterationFallsBackToSyrk) {
  Rng rng(2);
  auto s = computing_error_at(7, 8, rng);
  EXPECT_EQ(s.op, Op::Syrk);
  EXPECT_EQ(s.block_row, 7);
}

TEST(Builders, StorageErrorHitsDecomposedPanel) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int iter = 1 + static_cast<int>(rng.next_below(7));
    auto s = storage_error_at(iter, 8, rng);
    EXPECT_EQ(s.type, FaultType::Storage);
    EXPECT_LT(s.block_col, iter) << "must target the decomposed slate";
    EXPECT_GE(s.bits.size(), 2u) << "must defeat SEC-DED ECC";
    if (s.op == Op::Syrk) {
      EXPECT_EQ(s.block_row, iter);
    } else {
      EXPECT_GT(s.block_row, iter);
    }
  }
}

TEST(RandomPlan, RespectsTypeFilter) {
  auto plan = random_plan(20, 8, 42, FaultType::Computing);
  for (const auto& s : plan) EXPECT_EQ(s.type, FaultType::Computing);
}

TEST(RandomPlan, NoDuplicateHooks) {
  auto plan = random_plan(64, 6, 7);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.size(); ++j) {
      const bool same = plan[i].iteration == plan[j].iteration &&
                        plan[i].op == plan[j].op &&
                        plan[i].type == plan[j].type &&
                        plan[i].block_row == plan[j].block_row &&
                        plan[i].block_col == plan[j].block_col;
      EXPECT_FALSE(same);
    }
  }
}

TEST(RandomPlan, DeterministicForSeed) {
  auto p1 = random_plan(10, 8, 5);
  auto p2 = random_plan(10, 8, 5);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].iteration, p2[i].iteration);
    EXPECT_EQ(p1[i].block_row, p2[i].block_row);
    EXPECT_EQ(p1[i].block_col, p2[i].block_col);
  }
}

TEST(Strings, EnumNames) {
  EXPECT_STREQ(to_string(FaultType::Computing), "computing");
  EXPECT_STREQ(to_string(FaultType::Storage), "storage");
  EXPECT_STREQ(to_string(Op::Potf2), "potf2");
  EXPECT_STREQ(to_string(Op::Trsm), "trsm");
}

}  // namespace
}  // namespace ftla::fault
