// Fleet-campaign certification tests (docs/fleet.md): the >= 500
// scenario sweep that certifies the resilient service's invariants —
// zero silent data corruption and zero silently dropped jobs — plus
// the serial-vs-parallel determinism twin.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "service/fleet_campaign.hpp"

namespace ftla::service {
namespace {

void expect_identical(const FleetCampaignSummary& a,
                      const FleetCampaignSummary& b) {
  EXPECT_EQ(a.scenarios_run, b.scenarios_run);
  EXPECT_EQ(a.jobs_admitted, b.jobs_admitted);
  EXPECT_EQ(a.sdc_jobs, b.sdc_jobs);
  EXPECT_EQ(a.dropped_jobs, b.dropped_jobs);
  EXPECT_EQ(a.device_losses, b.device_losses);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.retries_spent, b.retries_spent);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.faults_detected, b.faults_detected);
  EXPECT_EQ(a.aborted, b.aborted);
  for (int v = 0; v < kFleetVerdictCount; ++v) {
    EXPECT_EQ(a.verdicts[static_cast<std::size_t>(v)],
              b.verdicts[static_cast<std::size_t>(v)]);
  }
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(format_fleet_scenario(a.failures[i].scenario),
              format_fleet_scenario(b.failures[i].scenario));
    EXPECT_EQ(a.failures[i].reason, b.failures[i].reason);
  }
}

long long counter_or_zero(const obs::MetricsRegistry& reg,
                          const std::string& name) {
  for (const auto& [key, value] : reg.counters()) {
    if (key == name) return value;
  }
  return 0;
}

TEST(FleetCampaign, FiveHundredScenariosCertifyTheInvariants) {
  // The acceptance sweep (ISSUE 7): across >= 500 randomized fleet
  // scenarios — device counts, workloads, loss/stall/degrade plans,
  // soft-error pressure — no job is silently corrupted and no admitted
  // job goes unaccounted.
  FleetCampaignOptions opt;
  opt.scenarios = 500;
  opt.seed = 20260808;
  opt.threads = 0;  // all cores; the summary is schedule-independent

  obs::MetricsRegistry metrics;
  const FleetCampaignSummary sum = run_fleet_campaign(opt, &metrics);

  EXPECT_EQ(sum.scenarios_run, 500);
  EXPECT_TRUE(sum.clean());
  EXPECT_EQ(sum.sdc_jobs, 0);
  EXPECT_EQ(sum.dropped_jobs, 0);
  EXPECT_EQ(sum.verdicts[static_cast<std::size_t>(FleetVerdict::Sdc)], 0);

  // Every admitted job carries exactly one verdict.
  long long accounted = 0;
  for (int v = 0; v < kFleetVerdictCount; ++v) {
    accounted += sum.verdicts[static_cast<std::size_t>(v)];
  }
  EXPECT_EQ(accounted, sum.jobs_admitted);

  // The campaign must actually exercise the recovery machinery, not
  // vacuously pass on fault-free scenarios.
  EXPECT_GT(sum.device_losses, 100);
  EXPECT_GT(sum.migrations, 0);
  EXPECT_GT(sum.faults_fired, 0);
  EXPECT_GT(sum.verdicts[static_cast<std::size_t>(FleetVerdict::Migrated)],
            0);

  // Reconciliation: the exported metrics tell the same story as the
  // summary (what the flight-recorder postmortem embeds).
  EXPECT_EQ(counter_or_zero(metrics, "fleet.scenarios"), sum.scenarios_run);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.jobs.admitted"),
            sum.jobs_admitted);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.jobs.sdc"), 0);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.jobs.dropped"), 0);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.device_losses"),
            sum.device_losses);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.migrations"), sum.migrations);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.failures"), 0);
  long long metric_verdicts = 0;
  for (int v = 0; v < kFleetVerdictCount; ++v) {
    metric_verdicts += counter_or_zero(
        metrics, std::string("fleet.verdict.") +
                     to_string(static_cast<FleetVerdict>(v)));
  }
  EXPECT_EQ(metric_verdicts, sum.jobs_admitted);
}

TEST(FleetCampaign, ParallelSummaryIsBitIdenticalToSerial) {
  // Satellite 3 (ISSUE 7): the deterministic twin. Same seed, serial vs
  // four worker threads — the campaign summary (and any failure dump)
  // must match field for field.
  FleetCampaignOptions opt;
  opt.scenarios = 60;
  opt.seed = 424242;

  opt.threads = 1;
  const FleetCampaignSummary serial = run_fleet_campaign(opt);
  opt.threads = 4;
  const FleetCampaignSummary parallel = run_fleet_campaign(opt);
  expect_identical(serial, parallel);
}

TEST(FleetCampaign, AbortAfterTruncatesDeterministically) {
  FleetCampaignOptions opt;
  opt.scenarios = 40;
  opt.seed = 7;
  const FleetCampaignSummary full = run_fleet_campaign(opt);

  opt.abort_after = 15;
  const FleetCampaignSummary cut = run_fleet_campaign(opt);
  EXPECT_TRUE(cut.aborted);
  EXPECT_EQ(cut.scenarios_run, 15);
  EXPECT_FALSE(full.aborted);
  // The truncated campaign is a prefix of the full one, so it can never
  // see more of anything.
  EXPECT_LE(cut.jobs_admitted, full.jobs_admitted);
  EXPECT_LE(cut.device_losses, full.device_losses);
}

TEST(FleetCampaign, FailingScenarioDumpReplays) {
  // Any scenario the campaign would dump must replay through the same
  // entry point the CLI's --replay uses. Use a healthy scenario (the
  // campaign is clean) and check the round trip end to end.
  FleetCampaignOptions opt;
  Rng rng(99);
  const FleetScenario sc = random_fleet_scenario(rng, opt);
  const std::string text = format_fleet_scenario(sc);

  FleetScenario back;
  std::string err;
  ASSERT_TRUE(parse_fleet_scenario(text, &back, &err)) << err;
  const FleetScenarioResult a = run_fleet_scenario(sc);
  const FleetScenarioResult b = run_fleet_scenario(back);
  EXPECT_EQ(a.jobs_admitted, b.jobs_admitted);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.device_losses, b.device_losses);
  EXPECT_EQ(a.migrations, b.migrations);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].residual, b.jobs[i].residual);
    EXPECT_EQ(a.jobs[i].end_time, b.jobs[i].end_time);
  }
}

}  // namespace
}  // namespace ftla::service
