// Fleet-campaign certification tests (docs/fleet.md): the >= 500
// scenario sweep that certifies the resilient service's invariants —
// zero silent data corruption and zero silently dropped jobs — plus
// the serial-vs-parallel determinism twin.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "service/fleet_campaign.hpp"

namespace ftla::service {
namespace {

void expect_identical(const FleetCampaignSummary& a,
                      const FleetCampaignSummary& b) {
  EXPECT_EQ(a.scenarios_run, b.scenarios_run);
  EXPECT_EQ(a.jobs_admitted, b.jobs_admitted);
  EXPECT_EQ(a.sdc_jobs, b.sdc_jobs);
  EXPECT_EQ(a.dropped_jobs, b.dropped_jobs);
  EXPECT_EQ(a.device_losses, b.device_losses);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.retries_spent, b.retries_spent);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.faults_detected, b.faults_detected);
  EXPECT_EQ(a.aborted, b.aborted);
  for (int v = 0; v < kFleetVerdictCount; ++v) {
    EXPECT_EQ(a.verdicts[static_cast<std::size_t>(v)],
              b.verdicts[static_cast<std::size_t>(v)]);
  }
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(format_fleet_scenario(a.failures[i].scenario),
              format_fleet_scenario(b.failures[i].scenario));
    EXPECT_EQ(a.failures[i].reason, b.failures[i].reason);
  }
}

long long counter_or_zero(const obs::MetricsRegistry& reg,
                          const std::string& name) {
  for (const auto& [key, value] : reg.counters()) {
    if (key == name) return value;
  }
  return 0;
}

TEST(FleetCampaign, FiveHundredScenariosCertifyTheInvariants) {
  // The acceptance sweep (ISSUE 7): across >= 500 randomized fleet
  // scenarios — device counts, workloads, loss/stall/degrade plans,
  // soft-error pressure — no job is silently corrupted and no admitted
  // job goes unaccounted.
  FleetCampaignOptions opt;
  opt.scenarios = 500;
  opt.seed = 20260808;
  opt.threads = 0;  // all cores; the summary is schedule-independent

  obs::MetricsRegistry metrics;
  const FleetCampaignSummary sum = run_fleet_campaign(opt, &metrics);

  EXPECT_EQ(sum.scenarios_run, 500);
  EXPECT_TRUE(sum.clean());
  EXPECT_EQ(sum.sdc_jobs, 0);
  EXPECT_EQ(sum.dropped_jobs, 0);
  EXPECT_EQ(sum.verdicts[static_cast<std::size_t>(FleetVerdict::Sdc)], 0);

  // Every admitted job carries exactly one verdict.
  long long accounted = 0;
  for (int v = 0; v < kFleetVerdictCount; ++v) {
    accounted += sum.verdicts[static_cast<std::size_t>(v)];
  }
  EXPECT_EQ(accounted, sum.jobs_admitted);

  // The campaign must actually exercise the recovery machinery, not
  // vacuously pass on fault-free scenarios.
  EXPECT_GT(sum.device_losses, 100);
  EXPECT_GT(sum.migrations, 0);
  EXPECT_GT(sum.faults_fired, 0);
  EXPECT_GT(sum.verdicts[static_cast<std::size_t>(FleetVerdict::Migrated)],
            0);

  // Reconciliation: the exported metrics tell the same story as the
  // summary (what the flight-recorder postmortem embeds).
  EXPECT_EQ(counter_or_zero(metrics, "fleet.scenarios"), sum.scenarios_run);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.jobs.admitted"),
            sum.jobs_admitted);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.jobs.sdc"), 0);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.jobs.dropped"), 0);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.device_losses"),
            sum.device_losses);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.migrations"), sum.migrations);
  EXPECT_EQ(counter_or_zero(metrics, "fleet.failures"), 0);
  long long metric_verdicts = 0;
  for (int v = 0; v < kFleetVerdictCount; ++v) {
    metric_verdicts += counter_or_zero(
        metrics, std::string("fleet.verdict.") +
                     to_string(static_cast<FleetVerdict>(v)));
  }
  EXPECT_EQ(metric_verdicts, sum.jobs_admitted);
}

TEST(FleetCampaign, ParallelSummaryIsBitIdenticalToSerial) {
  // Satellite 3 (ISSUE 7): the deterministic twin. Same seed, serial vs
  // four worker threads — the campaign summary (and any failure dump)
  // must match field for field.
  FleetCampaignOptions opt;
  opt.scenarios = 60;
  opt.seed = 424242;

  opt.threads = 1;
  const FleetCampaignSummary serial = run_fleet_campaign(opt);
  opt.threads = 4;
  const FleetCampaignSummary parallel = run_fleet_campaign(opt);
  expect_identical(serial, parallel);
}

TEST(FleetCampaign, AbortAfterTruncatesDeterministically) {
  FleetCampaignOptions opt;
  opt.scenarios = 40;
  opt.seed = 7;
  const FleetCampaignSummary full = run_fleet_campaign(opt);

  opt.abort_after = 15;
  const FleetCampaignSummary cut = run_fleet_campaign(opt);
  EXPECT_TRUE(cut.aborted);
  EXPECT_EQ(cut.scenarios_run, 15);
  EXPECT_FALSE(full.aborted);
  // The truncated campaign is a prefix of the full one, so it can never
  // see more of anything.
  EXPECT_LE(cut.jobs_admitted, full.jobs_admitted);
  EXPECT_LE(cut.device_losses, full.device_losses);
}

TEST(FleetCampaign, TenantAccountingReconcilesWithMetrics) {
  // Tentpole (ISSUE 10): every campaign job is billed to a tenant, and
  // the tenant.* metrics tell the same story as the summary.
  FleetCampaignOptions opt;
  opt.scenarios = 40;
  opt.seed = 20260808;
  obs::MetricsRegistry metrics;
  const FleetCampaignSummary sum = run_fleet_campaign(opt, &metrics);

  ASSERT_FALSE(sum.tenants.empty());
  long long tenant_jobs = 0;
  long long tenant_retries = 0;
  double tenant_device_seconds = 0.0;
  long long tenant_checkpoint_bytes = 0;
  for (const auto& [name, usage] : sum.tenants) {
    EXPECT_FALSE(name.empty());
    EXPECT_GT(usage.jobs, 0) << name;
    EXPECT_GE(usage.retries, 0);
    EXPECT_GE(usage.device_seconds, 0.0);
    tenant_jobs += usage.jobs;
    tenant_retries += usage.retries;
    tenant_device_seconds += usage.device_seconds;
    tenant_checkpoint_bytes += usage.checkpoint_bytes;

    EXPECT_EQ(counter_or_zero(metrics, "tenant." + name + ".jobs"),
              usage.jobs);
    EXPECT_EQ(counter_or_zero(metrics, "tenant." + name + ".retries"),
              usage.retries);
    EXPECT_EQ(counter_or_zero(metrics, "tenant." + name + ".migrations"),
              usage.migrations);
    EXPECT_EQ(
        counter_or_zero(metrics, "tenant." + name + ".checkpoint_bytes"),
        usage.checkpoint_bytes);
    EXPECT_DOUBLE_EQ(
        metrics.gauges().at("tenant." + name + ".device_seconds"),
        usage.device_seconds);
  }
  // Billing is total: every admitted job lands in exactly one tenant
  // bucket, and nothing else leaks into the totals.
  EXPECT_EQ(tenant_jobs, sum.jobs_admitted);
  EXPECT_EQ(tenant_retries, sum.retries_spent);
  EXPECT_GT(tenant_device_seconds, 0.0);
  EXPECT_GT(tenant_checkpoint_bytes, 0);
}

TEST(FleetCampaign, TraceIsByteIdenticalAcrossThreadCounts) {
  // Acceptance (ISSUE 10): the reassembled trace JSON of a campaign run
  // is byte-identical between a serial and a --threads 4 run of the
  // same seed.
  FleetCampaignOptions opt;
  opt.scenarios = 12;
  opt.seed = 424242;

  opt.threads = 1;
  obs::TraceStore serial_trace;
  const FleetCampaignSummary serial =
      run_fleet_campaign(opt, nullptr, nullptr, 100, &serial_trace);
  opt.threads = 4;
  obs::TraceStore parallel_trace;
  const FleetCampaignSummary parallel =
      run_fleet_campaign(opt, nullptr, nullptr, 100, &parallel_trace);

  expect_identical(serial, parallel);
  ASSERT_GT(serial_trace.size(), 0u);
  const std::string a = obs::TraceReport::build(serial_trace).to_string();
  const std::string b = obs::TraceReport::build(parallel_trace).to_string();
  EXPECT_EQ(a, b);
  // And the structural diff agrees with the byte-level one.
  const auto diff =
      obs::diff_traces(obs::TraceReport::build(serial_trace),
                       obs::TraceReport::build(parallel_trace));
  EXPECT_TRUE(diff.identical());
}

TEST(FleetCampaign, SloFeedIsDeterministicAcrossThreadCounts) {
  // The SLO engine sees every admitted job exactly once, in draw order,
  // so its state is independent of the worker-thread count.
  FleetCampaignOptions opt;
  opt.scenarios = 12;
  opt.seed = 424242;

  opt.threads = 1;
  obs::SloEngine serial_slo;
  for (const auto& spec : obs::SloEngine::default_fleet_slos(0.05)) {
    serial_slo.add(spec);
  }
  const FleetCampaignSummary serial =
      run_fleet_campaign(opt, nullptr, nullptr, 100, nullptr, &serial_slo);

  opt.threads = 4;
  obs::SloEngine parallel_slo;
  for (const auto& spec : obs::SloEngine::default_fleet_slos(0.05)) {
    parallel_slo.add(spec);
  }
  const FleetCampaignSummary parallel = run_fleet_campaign(
      opt, nullptr, nullptr, 100, nullptr, &parallel_slo);

  expect_identical(serial, parallel);
  const auto sa = serial_slo.states();
  const auto sb = parallel_slo.states();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].total, sb[i].total);
    EXPECT_EQ(sa[i].bad, sb[i].bad);
    EXPECT_EQ(sa[i].total, serial.jobs_admitted);
  }
  EXPECT_EQ(serial_slo.latency_p99(), parallel_slo.latency_p99());
}

TEST(FleetCampaign, FailingScenarioDumpReplays) {
  // Any scenario the campaign would dump must replay through the same
  // entry point the CLI's --replay uses. Use a healthy scenario (the
  // campaign is clean) and check the round trip end to end.
  FleetCampaignOptions opt;
  Rng rng(99);
  const FleetScenario sc = random_fleet_scenario(rng, opt);
  const std::string text = format_fleet_scenario(sc);

  FleetScenario back;
  std::string err;
  ASSERT_TRUE(parse_fleet_scenario(text, &back, &err)) << err;
  const FleetScenarioResult a = run_fleet_scenario(sc);
  const FleetScenarioResult b = run_fleet_scenario(back);
  EXPECT_EQ(a.jobs_admitted, b.jobs_admitted);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.device_losses, b.device_losses);
  EXPECT_EQ(a.migrations, b.migrations);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].residual, b.jobs[i].residual);
    EXPECT_EQ(a.jobs[i].end_time, b.jobs[i].end_time);
  }
}

}  // namespace
}  // namespace ftla::service
