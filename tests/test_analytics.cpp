// Tests for campaign analytics: aggregation reconciles with the
// campaign summary, serial and parallel campaigns aggregate
// byte-identically, the JSON round-trips, and --abort-after truncation
// is deterministic.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>

#include "fault/analytics.hpp"
#include "fault/campaign.hpp"

namespace ftla::fault {
namespace {

CampaignOptions small_campaign(int threads) {
  CampaignOptions opt;
  opt.scenarios = 24;
  opt.seed = 11;
  opt.threads = threads;
  opt.shrink_failures = false;
  opt.collect_observations = true;
  return opt;
}

TEST(CampaignAnalyticsAggregate, VerdictsReconcileWithSummary) {
  const CampaignSummary sum = run_campaign(small_campaign(1));
  ASSERT_EQ(static_cast<int>(sum.observations.size()), sum.scenarios_run);
  const CampaignAnalytics a = aggregate_campaign(sum);
  EXPECT_EQ(a.scenarios, sum.scenarios_run);

  // Folding analytics' per-recovery rows back to algo/variant must give
  // exactly the summary's verdict table.
  std::map<std::string, std::array<long long, kVerdictCount>> folded;
  for (const auto& [key, row] : a.verdicts) {
    const std::string av = key.substr(0, key.rfind('/'));
    auto& dst = folded[av];
    for (int i = 0; i < kVerdictCount; ++i) dst[i] += row[i];
  }
  EXPECT_EQ(folded, sum.verdicts);
}

TEST(CampaignAnalyticsAggregate, LatencyCountsMatchObservations) {
  const CampaignSummary sum = run_campaign(small_campaign(1));
  const CampaignAnalytics a = aggregate_campaign(sum);
  long long observed = 0;
  for (const auto& ob : sum.observations) {
    observed += static_cast<long long>(ob.detections.size());
  }
  long long aggregated = 0;
  for (const auto& [type, h] : a.detection_latency) {
    (void)type;
    aggregated += h.count;
  }
  EXPECT_EQ(aggregated, observed);
  EXPECT_GT(observed, 0);  // the seed fires and detects faults
}

TEST(CampaignAnalyticsAggregate, SerialAndParallelAreByteIdentical) {
  const CampaignSummary serial = run_campaign(small_campaign(1));
  const CampaignSummary parallel = run_campaign(small_campaign(4));
  std::ostringstream a;
  std::ostringstream b;
  write_analytics_json(aggregate_campaign(serial), a);
  write_analytics_json(aggregate_campaign(parallel), b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(CampaignAnalyticsAggregate, OverheadBaselinesArePositive) {
  const CampaignSummary sum = run_campaign(small_campaign(1));
  const CampaignAnalytics a = aggregate_campaign(sum);
  ASSERT_FALSE(a.overhead.empty());
  for (const auto& [key, st] : a.overhead) {
    EXPECT_GT(st.samples, 0) << key;
    EXPECT_GT(st.max, 0.0) << key;
    EXPECT_LE(st.min, st.p50) << key;
    EXPECT_LE(st.p50, st.p99) << key;
    EXPECT_LE(st.p99, st.max) << key;
  }
}

TEST(CampaignAnalyticsJson, RoundTripIsByteIdentical) {
  const CampaignAnalytics a =
      aggregate_campaign(run_campaign(small_campaign(1)));
  std::ostringstream os;
  write_analytics_json(a, os);
  std::istringstream is(os.str());
  CampaignAnalytics back;
  ASSERT_TRUE(read_analytics_json(is, &back));
  std::ostringstream os2;
  write_analytics_json(back, os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(CampaignAnalyticsJson, RejectsWrongSchemaVersion) {
  std::istringstream is(
      R"({"analytics_version":9,"detection_latency":{},"meta":{},)"
      R"("overhead":{},"scenarios":0,"verdicts":{}})");
  CampaignAnalytics out;
  EXPECT_FALSE(read_analytics_json(is, &out));
}

TEST(CampaignAbort, TruncatesDeterministically) {
  CampaignOptions full = small_campaign(1);
  CampaignOptions cut = full;
  cut.abort_after = 7;
  const CampaignSummary whole = run_campaign(full);
  const CampaignSummary part = run_campaign(cut);
  EXPECT_FALSE(whole.aborted);
  EXPECT_TRUE(part.aborted);
  EXPECT_EQ(part.scenarios_run, 7);
  // Shared rng prefix: the aborted campaign's observations are exactly
  // the first 7 of the full campaign's.
  ASSERT_EQ(part.observations.size(), 7u);
  for (std::size_t i = 0; i < part.observations.size(); ++i) {
    EXPECT_EQ(part.observations[i].verdict, whole.observations[i].verdict);
    EXPECT_EQ(part.observations[i].n, whole.observations[i].n);
    EXPECT_DOUBLE_EQ(part.observations[i].seconds,
                     whole.observations[i].seconds);
  }
  // Parallel truncation agrees with serial truncation.
  CampaignOptions cut4 = cut;
  cut4.threads = 4;
  const CampaignSummary part4 = run_campaign(cut4);
  EXPECT_EQ(part4.scenarios_run, 7);
  EXPECT_EQ(part4.verdicts, part.verdicts);
}

}  // namespace
}  // namespace ftla::fault
