// Tests for the HTML run report and the metrics-document reader it
// feeds on: byte-stable rendering, well-formedness basics, HTML
// escaping of untrusted labels, and the MetricsDoc round-trip.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/analytics.hpp"
#include "obs/metrics.hpp"
#include "obs/profile_report.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "report/html_report.hpp"

namespace ftla::report {
namespace {

ReportInputs sample_inputs() {
  ReportInputs in;
  in.title = "test report";

  obs::ProfileReport prof;
  prof.makespan_seconds = 2.0;
  prof.critical_path_seconds = 1.5;
  prof.abft_critical_seconds = 0.25;
  prof.idle_critical_seconds = 0.1;
  prof.projected_no_abft_seconds = 1.25;
  prof.span_count = 10;
  prof.meta["algo"] = "cholesky";
  obs::PhaseProfile update;
  update.spans = 6;
  update.busy_seconds = 1.0;
  update.critical_seconds = 0.9;
  prof.phases["update"] = update;
  obs::PhaseProfile verify;
  verify.spans = 4;
  verify.busy_seconds = 0.3;
  verify.critical_seconds = 0.25;
  prof.phases["verify"] = verify;
  obs::ResourceProfile sm;
  sm.busy_unit_seconds = 12.0;
  sm.capacity_units = 8;
  prof.resources["gpu_sm"] = sm;
  in.profiles.emplace_back("profile", prof);

  fault::CampaignAnalytics an;
  an.scenarios = 3;
  an.verdicts["cholesky/no-ft/rerun"] = {1, 0, 0, 0, 2};
  fault::HistogramSummary h;
  h.count = 2;
  h.min = 0.5;
  h.max = 1.5;
  h.mean = 1.0;
  h.p50 = 0.5;
  h.p95 = 1.5;
  h.p99 = 1.5;
  h.buckets = {{1.0, 1}, {10.0, 1}};
  an.detection_latency["computing"] = h;
  in.analytics.emplace_back("analytics", an);

  obs::TimeSeriesStore store;
  store.sample_gauge("timeseries.test.g", 0.0, 1.0);
  store.sample_gauge("timeseries.test.g", 1.0, 3.0);
  in.timeseries.emplace_back("ts", obs::build_timeseries_report(store, 0.5));

  obs::MetricsDoc doc;
  doc.meta.emplace_back("tool", "test");
  doc.counters["run.reruns"] = 2;
  doc.gauges["run.seconds"] = 1.5;
  in.metrics.emplace_back("metrics", doc);
  return in;
}

TEST(HtmlReport, ByteStableAcrossInvocations) {
  const ReportInputs in = sample_inputs();
  std::ostringstream a;
  std::ostringstream b;
  write_html_report(in, a);
  write_html_report(in, b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(a.str().empty());
}

TEST(HtmlReport, ContainsAllSectionsAndSvgCharts) {
  std::ostringstream os;
  write_html_report(sample_inputs(), os);
  const std::string html = os.str();
  EXPECT_EQ(html.find("<!DOCTYPE html>"), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("test report"), std::string::npos);
  EXPECT_NE(html.find("cholesky/no-ft/rerun"), std::string::npos);
  EXPECT_NE(html.find("timeseries.test.g"), std::string::npos);
  EXPECT_NE(html.find("run.reruns"), std::string::npos);
}

TEST(HtmlReport, EscapesUntrustedLabels) {
  ReportInputs in;
  obs::MetricsDoc doc;
  doc.meta.emplace_back("note", "<script>alert(1)</script>");
  in.metrics.emplace_back("a<b&c", doc);
  std::ostringstream os;
  write_html_report(in, os);
  const std::string html = os.str();
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
  EXPECT_NE(html.find("a&lt;b&amp;c"), std::string::npos);
}

TEST(HtmlReport, MissingInputsBannerIsVisibleAndByteStable) {
  // Satellite (ISSUE 10): skipped optional inputs must be called out,
  // not silently rendered as empty sections — and the banner must not
  // cost byte-stability.
  ReportInputs in;
  in.title = "partial report";
  obs::MetricsDoc doc;
  doc.counters["run.reruns"] = 1;
  in.metrics.emplace_back("metrics", doc);
  in.missing_inputs = {"profile", "analytics", "timeseries", "trace"};

  std::ostringstream a;
  std::ostringstream b;
  write_html_report(in, a);
  write_html_report(in, b);
  EXPECT_EQ(a.str(), b.str());
  const std::string html = a.str();
  EXPECT_NE(html.find("Inputs not provided:"), std::string::npos);
  EXPECT_NE(html.find("profile, analytics, timeseries, trace"),
            std::string::npos);
  EXPECT_NE(html.find("absent, not empty"), std::string::npos);

  // A complete report carries no banner.
  std::ostringstream full;
  write_html_report(sample_inputs(), full);
  EXPECT_EQ(full.str().find("Inputs not provided:"), std::string::npos);
}

TEST(HtmlReport, TraceSectionRendersWaterfallDeterministically) {
  ReportInputs in;
  in.title = "traced run";
  obs::TraceStore store;
  const obs::TraceId t = obs::derive_trace_id(20260808, 0);
  obs::TraceSpan job;
  job.trace_id = t;
  job.span_id = t;
  job.name = "job";
  job.kind = "job";
  job.tenant = "alpha";
  job.device = -1;
  job.start = 0.0;
  job.end = 10.0;
  store.record(job);
  obs::TraceSpan attempt = job;
  attempt.span_id = obs::derive_span_id(t, 16);
  attempt.parent_span = t;
  attempt.name = "attempt";
  attempt.kind = "attempt";
  attempt.device = 0;
  attempt.end = 4.0;
  attempt.status = "loss";
  store.record(attempt);
  in.traces.emplace_back("trace", obs::TraceReport::build(store));

  std::ostringstream a;
  std::ostringstream b;
  write_html_report(in, a);
  write_html_report(in, b);
  EXPECT_EQ(a.str(), b.str());
  const std::string html = a.str();
  EXPECT_NE(html.find(obs::format_trace_id(t)), std::string::npos);
  EXPECT_NE(html.find("alpha"), std::string::npos);
  EXPECT_NE(html.find("<pre>"), std::string::npos);  // the waterfall
  EXPECT_NE(html.find("attempt"), std::string::npos);
}

TEST(HtmlReport, SloBurnPanelShowsAlertingState) {
  ReportInputs in;
  obs::MetricsDoc doc;
  doc.gauges["slo.availability.burn_rate"] = 3.5;
  doc.gauges["slo.availability.objective"] = 0.99;
  doc.gauges["slo.availability.alerting"] = 1.0;
  doc.gauges["slo.job_latency.burn_rate"] = 0.25;
  doc.gauges["slo.job_latency.objective"] = 0.99;
  doc.gauges["slo.job_latency.alerting"] = 0.0;
  doc.gauges["slo.latency_p99_s"] = 0.125;
  doc.counters["slo.alerts"] = 2;
  in.metrics.emplace_back("campaign", doc);

  std::ostringstream os;
  write_html_report(in, os);
  const std::string html = os.str();
  EXPECT_NE(html.find("SLO error-budget burn"), std::string::npos);
  EXPECT_NE(html.find("ALERTING"), std::string::npos);
  EXPECT_NE(html.find("#c74c4c"), std::string::npos);  // alerting bar
  EXPECT_NE(html.find("#6faa6f"), std::string::npos);  // healthy bar
  EXPECT_NE(html.find("2 alert(s) fired"), std::string::npos);
}

TEST(MetricsDocReader, RoundTripsReportJson) {
  obs::MetricsReport report;
  report.add_meta("tool", "test");
  report.add_meta("n", "64");
  report.metrics.counter("run.reruns") = 3;
  report.metrics.set_gauge("run.seconds", 0.125);
  report.metrics.histogram("abft.detection_latency_s", {1.0, 10.0})
      .add(0.5);
  std::ostringstream os;
  obs::write_metrics_json(report, os);

  std::istringstream is(os.str());
  obs::MetricsDoc doc;
  ASSERT_TRUE(obs::read_metrics_json(is, &doc));
  const std::string* tool = doc.find_meta("tool");
  ASSERT_NE(tool, nullptr);
  EXPECT_EQ(*tool, "test");
  EXPECT_EQ(doc.counters.at("run.reruns"), 3);
  EXPECT_DOUBLE_EQ(doc.gauges.at("run.seconds"), 0.125);
  const auto& h = doc.histograms.at("abft.detection_latency_s");
  EXPECT_EQ(h.count, 1);
  // The writer is sparse: only the one hit bucket appears.
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(h.buckets[0].first, 1.0);
  EXPECT_EQ(h.buckets[0].second, 1);
}

TEST(MetricsDocReader, RejectsWrongSchemaVersion) {
  std::istringstream is(R"({"schema_version":2,"meta":{}})");
  obs::MetricsDoc doc;
  EXPECT_FALSE(obs::read_metrics_json(is, &doc));
}

}  // namespace
}  // namespace ftla::report
