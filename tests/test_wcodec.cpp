// Tests for the generalized weighted checksum codec: Reed-Solomon-style
// multi-error correction per block column (extension of paper §IV-A).
#include <gtest/gtest.h>

#include <tuple>

#include "abft/wcodec.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "common/fp.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using test::random_matrix;

Matrix<double> encode(const WeightedCodec& codec, const Matrix<double>& a) {
  Matrix<double> chk(codec.redundancy(), a.cols());
  codec.encode(a.view(), chk.view());
  return chk;
}

double mismatch(const WeightedCodec& codec, const Matrix<double>& a,
                const Matrix<double>& chk) {
  Matrix<double> r(codec.redundancy(), a.cols());
  codec.encode(a.view(), r.view());
  double worst = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    for (int k = 0; k < codec.redundancy(); ++k) {
      const double scale =
          std::max(1.0, std::abs(chk(codec.redundancy() - 1, j)));
      worst = std::max(worst, std::abs(r(k, j) - chk(k, j)) / scale);
    }
  }
  return worst;
}

TEST(WCodec, RejectsBadRedundancy) {
  EXPECT_NO_THROW(WeightedCodec(2));
  EXPECT_NO_THROW(WeightedCodec(8));
}

TEST(WCodec, EncodeMatchesPaperCodecForRedundancyTwo) {
  auto a = random_matrix(12, 9, 1);
  WeightedCodec codec(2);
  auto chk_general = encode(codec, a);
  Matrix<double> chk_paper(2, 9);
  encode_block(a.view(), chk_paper.view());
  EXPECT_MATRIX_NEAR(chk_general, chk_paper, 1e-12);
}

TEST(WCodec, CleanBlockVerifiesClean) {
  for (int r : {2, 3, 4, 6}) {
    auto a = random_matrix(16, 16, 2);
    WeightedCodec codec(r);
    auto chk = encode(codec, a);
    auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
    EXPECT_TRUE(out.clean()) << "R=" << r;
  }
}

class WCodecSingleError
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WCodecSingleError, CorrectedAtEveryRedundancy) {
  const auto [redundancy, row, col] = GetParam();
  auto a = random_matrix(24, 24, 3);
  WeightedCodec codec(redundancy);
  auto chk = encode(codec, a);
  const double orig = a(row, col);
  a(row, col) += 4321.0;
  auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 1);
  EXPECT_FALSE(out.uncorrectable);
  EXPECT_NEAR(a(row, col), orig, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WCodecSingleError,
    ::testing::Combine(::testing::Values(2, 3, 4, 6),
                       ::testing::Values(0, 11, 23),
                       ::testing::Values(0, 7, 23)));

TEST(WCodec, TwoErrorsSameColumnCorrectedWithRedundancyFour) {
  auto a = random_matrix(32, 32, 4);
  WeightedCodec codec(4);
  auto chk = encode(codec, a);
  const double o1 = a(5, 9);
  const double o2 = a(20, 9);
  a(5, 9) += 1000.0;
  a(20, 9) -= 777.0;
  auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 2);
  EXPECT_FALSE(out.uncorrectable);
  EXPECT_NEAR(a(5, 9), o1, 1e-7);
  EXPECT_NEAR(a(20, 9), o2, 1e-7);
}

TEST(WCodec, TwoErrorsSameColumnUncorrectableWithRedundancyTwo) {
  auto a = random_matrix(32, 32, 5);
  WeightedCodec codec(2);
  auto chk = encode(codec, a);
  a(5, 9) += 1000.0;
  a(20, 9) -= 777.0;
  auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
  EXPECT_TRUE(out.uncorrectable);
}

TEST(WCodec, AdjacentRowPairCorrected) {
  // Adjacent error rows give the worst-conditioned locator.
  auto a = random_matrix(64, 8, 6);
  WeightedCodec codec(4);
  auto chk = encode(codec, a);
  const double o1 = a(30, 3), o2 = a(31, 3);
  a(30, 3) += 2e4;
  a(31, 3) += 3e4;
  auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 2);
  EXPECT_NEAR(a(30, 3), o1, 1e-5);
  EXPECT_NEAR(a(31, 3), o2, 1e-5);
}

TEST(WCodec, ThreeErrorsCorrectedWithRedundancySix) {
  auto a = random_matrix(24, 6, 7);
  WeightedCodec codec(6);
  ASSERT_EQ(codec.max_correctable(), 3);
  auto chk = encode(codec, a);
  const double o[3] = {a(2, 1), a(10, 1), a(17, 1)};
  a(2, 1) += 900.0;
  a(10, 1) -= 4e3;
  a(17, 1) += 2.5e3;
  auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 3);
  EXPECT_NEAR(a(2, 1), o[0], 1e-4);
  EXPECT_NEAR(a(10, 1), o[1], 1e-4);
  EXPECT_NEAR(a(17, 1), o[2], 1e-4);
}

TEST(WCodec, BeyondCapacityDetectedNotMiscorrected) {
  auto a = random_matrix(32, 4, 8);
  const Matrix<double> orig = a;
  WeightedCodec codec(4);
  auto chk = encode(codec, a);
  a(1, 2) += 1e3;
  a(9, 2) -= 2e3;
  a(25, 2) += 3e3;  // three errors, capacity two
  auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
  EXPECT_TRUE(out.uncorrectable || out.errors_corrected == 0)
      << "must not silently mis-correct";
}

TEST(WCodec, CorruptedChecksumRowRepaired) {
  for (int r : {2, 4}) {
    auto a = random_matrix(16, 16, 9);
    WeightedCodec codec(r);
    auto chk = encode(codec, a);
    chk(r - 1, 5) = flip_bit(chk(r - 1, 5), 55);
    auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
    EXPECT_EQ(out.checksum_repairs, 1) << "R=" << r;
    EXPECT_EQ(out.errors_corrected, 0) << "R=" << r;
    EXPECT_LT(mismatch(codec, a, chk), 1e-9) << "R=" << r;
  }
}

TEST(WCodec, MultipleChecksumRowsRepaired) {
  auto a = random_matrix(16, 16, 10);
  WeightedCodec codec(4);
  auto chk = encode(codec, a);
  chk(0, 5) += 999.0;
  chk(2, 5) -= 123.0;
  auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.checksum_repairs, 2);
  EXPECT_LT(mismatch(codec, a, chk), 1e-9);
}

TEST(WCodec, Potf2TransformInvariantAtHigherRedundancy) {
  const int n = 32;
  for (int r : {2, 3, 4}) {
    auto a = test::random_spd(n, 11);
    WeightedCodec codec(r);
    auto chk = encode(codec, a);
    blas::potf2(a.view());
    for (int c = 1; c < n; ++c)
      for (int row = 0; row < c; ++row) a(row, c) = 0.0;
    WeightedCodec::potf2_transform(a.view(), chk.view());
    EXPECT_LT(mismatch(codec, a, chk), 1e-8) << "R=" << r;
  }
}

TEST(WCodec, UpdateRulesRemainLinearAtHigherRedundancy) {
  // chk(A - LD LC^T) = chk(A) - chk(LD) LC^T holds for any R.
  const int b = 16, w = 24;
  WeightedCodec codec(4);
  auto a = random_matrix(b, b, 12);
  auto ld = random_matrix(b, w, 13);
  auto lc = random_matrix(b, w, 14);
  auto chk_a = encode(codec, a);
  auto chk_ld = encode(codec, ld);
  blas::gemm(blas::Trans::No, blas::Trans::Yes, -1.0, ld.view(), lc.view(),
             1.0, a.view());
  blas::gemm(blas::Trans::No, blas::Trans::Yes, -1.0, chk_ld.view(),
             lc.view(), 1.0, chk_a.view());
  EXPECT_LT(mismatch(codec, a, chk_a), 1e-9);
}

TEST(WCodecProperty, RandomizedMultiErrorSweep) {
  Rng rng(77);
  int corrected_runs = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int redundancy = 2 * rng.uniform_int(1, 3);  // 2, 4, 6
    WeightedCodec codec(redundancy);
    const int rows = rng.uniform_int(8, 48);
    auto a = random_matrix(rows, 6, 1000 + trial);
    const Matrix<double> orig = a;
    auto chk = encode(codec, a);
    const int col = rng.uniform_int(0, 5);
    const int nerr = rng.uniform_int(1, codec.max_correctable());
    std::vector<int> used;
    for (int e = 0; e < nerr; ++e) {
      int row;
      do {
        row = rng.uniform_int(0, rows - 1);
      } while (std::find(used.begin(), used.end(), row) != used.end());
      used.push_back(row);
      a(row, col) += rng.uniform(500.0, 5e4) * (rng.next_double() < 0.5 ? -1 : 1);
    }
    auto out = codec.verify_host(a.view(), chk.view(), Tolerance{});
    ASSERT_FALSE(out.uncorrectable)
        << "trial " << trial << " R=" << redundancy << " nerr=" << nerr;
    ASSERT_EQ(out.errors_corrected, nerr) << "trial " << trial;
    ++corrected_runs;
    for (int r = 0; r < rows; ++r) {
      EXPECT_NEAR(a(r, col), orig(r, col),
                  1e-5 * std::max(1.0, std::abs(orig(r, col))))
          << "trial " << trial << " row " << r;
    }
  }
  EXPECT_EQ(corrected_runs, 60);
}

}  // namespace
}  // namespace ftla::abft
