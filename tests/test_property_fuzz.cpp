// Cross-cutting randomized property tests: drive the full system
// (drivers x variants x placements x fault plans x recovery strategies)
// through seeded random configurations and assert the global invariants
// that must hold for every one of them.
#include <gtest/gtest.h>

#include "abft/cholesky.hpp"
#include "abft/lu.hpp"
#include "abft/qr.hpp"
#include "blas/lapack.hpp"
#include "blas/qr.hpp"
#include "common/spd.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

struct Config {
  int n = 0;
  Variant variant = Variant::EnhancedOnline;
  UpdatePlacement placement = UpdatePlacement::Gpu;
  Recovery recovery = Recovery::Rerun;
  int k = 1;
  bool opt1 = true;
  int faults = 0;
  std::uint64_t seed = 0;
};

Config random_config(Rng& rng) {
  Config c;
  c.n = 16 * rng.uniform_int(3, 9);  // 48..144
  const Variant variants[] = {Variant::NoFt, Variant::Offline,
                              Variant::Online, Variant::EnhancedOnline};
  c.variant = variants[rng.uniform_int(0, 3)];
  const UpdatePlacement placements[] = {UpdatePlacement::Blocking,
                                        UpdatePlacement::Gpu,
                                        UpdatePlacement::Cpu,
                                        UpdatePlacement::Auto};
  c.placement = placements[rng.uniform_int(0, 3)];
  c.recovery =
      rng.next_double() < 0.5 ? Recovery::Rerun : Recovery::Checkpoint;
  c.k = rng.uniform_int(1, 4);
  c.opt1 = rng.next_double() < 0.7;
  c.faults = c.variant == Variant::EnhancedOnline ? rng.uniform_int(0, 3)
                                                  : rng.uniform_int(0, 1);
  c.seed = rng.next_u64();
  return c;
}

class CholeskyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyFuzz, InvariantsHoldUnderRandomConfig) {
  const std::uint64_t seed = test::root_seed(1234 + GetParam());
  FTLA_SEED_TRACE(seed);
  Rng rng(seed);
  const Config c = random_config(rng);
  SCOPED_TRACE("n=" + std::to_string(c.n) +
               " variant=" + to_string(c.variant) +
               " placement=" + to_string(c.placement) +
               " recovery=" + to_string(c.recovery) +
               " K=" + std::to_string(c.k) +
               " faults=" + std::to_string(c.faults));

  auto a0 = test::random_spd(c.n, c.seed);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = c.variant;
  opt.placement = c.placement;
  opt.recovery = c.recovery;
  opt.verify_interval = c.k;
  opt.concurrent_recalc = c.opt1;
  opt.checkpoint_interval = 2;

  const int nb = (c.n + 15) / 16;
  fault::Injector inj(
      c.faults > 0 ? fault::random_plan(c.faults, nb, c.seed ^ 0xabcdef)
                   : std::vector<fault::FaultSpec>{});
  auto res = cholesky(m, &a, c.n, opt, c.faults ? &inj : nullptr);

  // Invariant 1: virtual time is positive and finite.
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_TRUE(std::isfinite(res.seconds));

  // Invariant 2: fault-free runs always succeed cleanly.
  if (c.faults == 0) {
    ASSERT_TRUE(res.success) << res.note;
    EXPECT_EQ(res.errors_detected, 0);
    EXPECT_EQ(res.reruns, 0);
    EXPECT_EQ(res.rollbacks, 0);
  }

  // Invariant 3: Enhanced never reruns or rolls back (it corrects in
  // place) and always delivers a clean factor.
  if (c.variant == Variant::EnhancedOnline) {
    ASSERT_TRUE(res.success) << res.note;
    EXPECT_EQ(res.reruns, 0);
    EXPECT_EQ(res.rollbacks, 0);
  }

  // Invariant 4: whenever a run reports success AND no scheme ever
  // relies on silent luck (Enhanced / recovered runs), the residual is
  // at rounding level.
  if (res.success &&
      (c.variant == Variant::EnhancedOnline || res.reruns > 0 ||
       res.rollbacks > 0 || c.faults == 0)) {
    EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-6);
  }

  // Invariant 5: counters are consistent.
  EXPECT_GE(res.errors_detected, 0);
  EXPECT_LE(res.errors_corrected,
            res.errors_detected + res.errors_corrected);
  if (c.variant == Variant::NoFt) EXPECT_EQ(res.verified.total(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyFuzz, ::testing::Range(0, 40));

class TimingParityFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TimingParityFuzz, NumericAndTimingOnlyAgree) {
  // The virtual clock must not depend on the numeric payload: for any
  // fault-free configuration, Numeric and TimingOnly runs take the
  // same virtual time and issue the same verification schedule.
  const std::uint64_t seed = test::root_seed(777 + GetParam());
  FTLA_SEED_TRACE(seed);
  Rng rng(seed);
  Config c = random_config(rng);
  c.faults = 0;
  CholeskyOptions opt;
  opt.variant = c.variant;
  opt.placement = c.placement;
  opt.recovery = c.recovery;
  opt.verify_interval = c.k;
  opt.concurrent_recalc = c.opt1;
  opt.checkpoint_interval = 2;

  auto a = test::random_spd(c.n, c.seed);
  Machine m1(small_rig(), ExecutionMode::Numeric);
  auto r1 = cholesky(m1, &a, c.n, opt);
  Machine m2(small_rig(), ExecutionMode::TimingOnly);
  auto r2 = cholesky(m2, nullptr, c.n, opt);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_NEAR(r1.seconds, r2.seconds, 1e-12 + 1e-9 * r1.seconds)
      << "variant=" << to_string(c.variant)
      << " placement=" << to_string(c.placement) << " n=" << c.n;
  EXPECT_EQ(r1.verified.total(), r2.verified.total());
  EXPECT_EQ(m1.stats().total_gpu_flops(), m2.stats().total_gpu_flops());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingParityFuzz, ::testing::Range(0, 20));

class LuFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LuFuzz, EnhancedLuSurvivesRandomFaults) {
  const std::uint64_t seed = test::root_seed(555 + GetParam());
  FTLA_SEED_TRACE(seed);
  Rng rng(seed);
  const int n = 16 * rng.uniform_int(4, 8);
  const int nb = n / 16;
  auto a0 = test::random_spd(n, rng.next_u64());
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  LuOptions opt;
  opt.verify_interval = rng.uniform_int(1, 3);
  opt.concurrent_recalc = rng.next_double() < 0.7;
  auto plan = fault::random_plan(rng.uniform_int(1, 3), nb,
                                 rng.next_u64());
  // The random plans are phrased for the Cholesky block layout; retarget
  // them to LU's program points (SYRK does not exist there, and block
  // defaults should come from the LU driver's own context).
  for (auto& spec : plan) {
    if (spec.op == fault::Op::Syrk) spec.op = fault::Op::Gemm;
    spec.block_row = -1;
    spec.block_col = -1;
  }
  fault::Injector inj(std::move(plan));
  auto res = lu(m, &a, n, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(res.reruns, 0) << "enhanced LU should correct in place";
  EXPECT_LT(blas::lu_residual(a0.view(), a.view()), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuFuzz, ::testing::Range(0, 20));

class QrFuzz : public ::testing::TestWithParam<int> {};

TEST_P(QrFuzz, EnhancedQrSurvivesRandomFaults) {
  const std::uint64_t seed = test::root_seed(888 + GetParam());
  FTLA_SEED_TRACE(seed);
  Rng rng(seed);
  const int n = 16 * rng.uniform_int(4, 8);
  const int nb = n / 16;
  Matrix<double> a0(n, n);
  make_uniform(a0, rng.next_u64());
  auto a = a0;
  std::vector<double> tau;
  Machine m(small_rig(), ExecutionMode::Numeric);
  QrOptions opt;
  opt.verify_interval = rng.uniform_int(1, 3);
  opt.concurrent_recalc = rng.next_double() < 0.7;
  auto plan = fault::random_plan(rng.uniform_int(1, 3), nb,
                                 rng.next_u64());
  for (auto& spec : plan) {
    if (spec.op == fault::Op::Syrk) spec.op = fault::Op::Gemm;
    spec.block_row = -1;
    spec.block_col = -1;
  }
  fault::Injector inj(std::move(plan));
  auto res = qr(m, &a, &tau, n, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(res.reruns, 0) << "enhanced QR should correct in place";
  EXPECT_LT(blas::qr_residual(a0.view(), a.view(), tau.data()), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrFuzz, ::testing::Range(0, 20));

}  // namespace
}  // namespace ftla::abft
