// Tests for checkpoint/rollback recovery (composing ABFT with periodic
// checkpointing — the paper's citation [11]).
#include <gtest/gtest.h>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using fault::FaultSpec;
using fault::FaultType;
using fault::Injector;
using fault::Op;
using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

FaultSpec storage_syrk(int iter) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Syrk;
  s.iteration = iter;
  s.block_row = iter;
  s.block_col = iter - 1;
  s.elem_row = 2;
  s.elem_col = 7;
  s.bits = {20, 44, 54};
  return s;
}

struct Run {
  CholeskyResult res;
  double residual = 0.0;
};

Run run(Variant v, Recovery recovery, std::vector<FaultSpec> plan,
        int n = 160, int ckpt_interval = 2) {
  auto a0 = test::random_spd(n, 99);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = v;
  opt.recovery = recovery;
  opt.checkpoint_interval = ckpt_interval;
  Injector inj(std::move(plan));
  Run out;
  out.res = cholesky(m, &a, n, opt, &inj);
  if (out.res.success) {
    out.residual = blas::cholesky_residual(a0.view(), a.view());
  }
  return out;
}

TEST(Checkpoint, FaultFreeRunTakesNoRollbacks) {
  auto out = run(Variant::Online, Recovery::Checkpoint, {});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.rollbacks, 0);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_LT(out.residual, 1e-12);
}

TEST(Checkpoint, OnlineStorageErrorRecoversByRollback) {
  auto out = run(Variant::Online, Recovery::Checkpoint, {storage_syrk(7)});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.rollbacks, 1);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_LT(out.residual, 1e-10);
}

TEST(Checkpoint, RollbackIsCheaperThanRerun) {
  // Fault late in the run: rollback replays at most checkpoint_interval
  // iterations, a rerun replays everything.
  auto ckpt =
      run(Variant::Online, Recovery::Checkpoint, {storage_syrk(8)});
  auto rerun = run(Variant::Online, Recovery::Rerun, {storage_syrk(8)});
  ASSERT_TRUE(ckpt.res.success && rerun.res.success);
  EXPECT_EQ(ckpt.res.rollbacks, 1);
  EXPECT_EQ(rerun.res.reruns, 1);
  EXPECT_LT(ckpt.res.seconds, rerun.res.seconds);
}

TEST(Checkpoint, EnhancedNeverNeedsIt) {
  auto out =
      run(Variant::EnhancedOnline, Recovery::Checkpoint, {storage_syrk(7)});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.rollbacks, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(Checkpoint, NoFtRecoversFromFailStopViaRollback) {
  // Without checksums a violent storage fault breaks positive
  // definiteness; with checkpointing the transient is replayed away.
  FaultSpec s = storage_syrk(7);
  s.bits = {62};  // top exponent bit: the value explodes to ~1e308
  auto out = run(Variant::NoFt, Recovery::Checkpoint, {s});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_GE(out.res.rollbacks, 1);
  EXPECT_LT(out.residual, 1e-12);
}

TEST(Checkpoint, OfflineIgnoresCheckpointing) {
  // Offline detection happens at the end — no checkpoint is known-good,
  // so the driver must fall back to a full rerun.
  auto out = run(Variant::Offline, Recovery::Checkpoint, {storage_syrk(7)});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.rollbacks, 0);
  EXPECT_EQ(out.res.reruns, 1);
  EXPECT_LT(out.residual, 1e-10);
}

TEST(Checkpoint, CpuPlacementSnapshotsHostMirror) {
  auto a0 = test::random_spd(160, 99);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = Variant::Online;
  opt.recovery = Recovery::Checkpoint;
  opt.checkpoint_interval = 2;
  opt.placement = UpdatePlacement::Cpu;
  Injector inj({storage_syrk(7)});
  auto res = cholesky(m, &a, 160, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(res.rollbacks, 1);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-10);
}

TEST(Checkpoint, TimingOnlyChargesSnapshotCost) {
  const int n = 5120;
  const auto profile = sim::tardis();
  CholeskyOptions plain;
  plain.variant = Variant::Online;
  CholeskyOptions ckpt = plain;
  ckpt.recovery = Recovery::Checkpoint;
  ckpt.checkpoint_interval = 2;
  Machine m1(profile, ExecutionMode::TimingOnly);
  const double t_plain = cholesky(m1, nullptr, n, plain).seconds;
  Machine m2(profile, ExecutionMode::TimingOnly);
  const double t_ckpt = cholesky(m2, nullptr, n, ckpt).seconds;
  EXPECT_GT(t_ckpt, t_plain);
  EXPECT_LT(t_ckpt / t_plain - 1.0, 0.35) << "snapshots should be cheap-ish";
}

TEST(Checkpoint, StringName) {
  EXPECT_STREQ(to_string(Recovery::Rerun), "rerun");
  EXPECT_STREQ(to_string(Recovery::Checkpoint), "checkpoint");
}

}  // namespace
}  // namespace ftla::abft
