// Tests for the causal-tracing layer (obs/trace.hpp): deterministic id
// derivation, byte-stable serialization, cross-device reassembly,
// filtering, waterfall rendering, and the structural diff that gates CI
// (docs/observability.md, "Causal tracing & SLOs").
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ftla {
namespace {

using obs::SpanId;
using obs::TraceId;
using obs::TraceReport;
using obs::TraceSpan;
using obs::TraceStore;

TraceSpan span(TraceId trace, SpanId id, SpanId parent, const char* name,
               const char* kind, int device, double start, double end,
               const char* status = "ok") {
  TraceSpan s;
  s.trace_id = trace;
  s.span_id = id;
  s.parent_span = parent;
  s.name = name;
  s.kind = kind;
  s.device = device;
  s.tenant = "alpha";
  s.start = start;
  s.end = end;
  s.status = status;
  return s;
}

/// A two-attempt migrated job recorded across two devices: the shape
/// the fleet service emits (job → attempt/loss on device 0, migrate,
/// attempt/driver on device 1).
std::vector<TraceSpan> migrated_job(TraceId trace, double shift = 0.0) {
  const SpanId root = trace;
  const SpanId a1 = obs::derive_span_id(root, 16);
  const SpanId a2 = obs::derive_span_id(root, 17);
  const SpanId mig = obs::derive_span_id(root, 8192);
  const SpanId drv = obs::derive_span_id(a2, obs::kTraceDriverChild);
  return {
      span(trace, root, 0, "job", "job", -1, shift, shift + 10.0),
      span(trace, a1, root, "attempt", "attempt", 0, shift, shift + 4.0,
           "loss"),
      span(trace, mig, root, "migrate", "migrate", -1, shift + 4.0,
           shift + 5.0),
      span(trace, a2, root, "attempt", "attempt", 1, shift + 5.0,
           shift + 10.0),
      span(trace, drv, a2, "factorize", "driver", 1, shift + 6.0,
           shift + 9.0),
  };
}

TEST(TraceIds, DerivedIdsAreStableNonzeroAndDistinct) {
  const TraceId t = obs::derive_trace_id(42, 7);
  EXPECT_EQ(t, obs::derive_trace_id(42, 7));
  EXPECT_NE(t, 0u);
  EXPECT_NE(t, obs::derive_trace_id(42, 8));
  EXPECT_NE(t, obs::derive_trace_id(43, 7));

  const SpanId s = obs::derive_span_id(t, 1);
  EXPECT_EQ(s, obs::derive_span_id(t, 1));
  EXPECT_NE(s, 0u);
  EXPECT_NE(s, obs::derive_span_id(t, 2));
  // Child-index namespaces (attempt slots vs checkpoint vs task bases)
  // must not collide on a realistic id.
  EXPECT_NE(obs::derive_span_id(t, 16),
            obs::derive_span_id(t, obs::kTraceCheckpointChildBase + 16));
}

TEST(TraceIds, FormatParseRoundTrip) {
  const TraceId t = obs::derive_trace_id(1, 0);
  const std::string hex = obs::format_trace_id(t);
  EXPECT_EQ(hex.size(), 16u);
  TraceId back = 0;
  ASSERT_TRUE(obs::parse_trace_id(hex, &back));
  EXPECT_EQ(back, t);
  EXPECT_FALSE(obs::parse_trace_id("xyz", &back));
  EXPECT_FALSE(obs::parse_trace_id("0123", &back));
}

TEST(TraceContext, ChildKeepsTraceAndDerivesParent) {
  obs::TraceContext ctx;
  EXPECT_FALSE(ctx.valid());
  ctx.trace_id = obs::derive_trace_id(9, 9);
  ctx.span_id = ctx.trace_id;
  ctx.device = 2;
  ctx.tenant = "beta";
  EXPECT_TRUE(ctx.valid());
  const obs::TraceContext child = ctx.child(3);
  EXPECT_EQ(child.trace_id, ctx.trace_id);
  EXPECT_EQ(child.device, 2);
  EXPECT_EQ(child.tenant, "beta");
  EXPECT_EQ(child.span_id, obs::derive_span_id(ctx.span_id, 3));
}

TEST(TraceStore, BoundedWithDroppedCount) {
  TraceStore store(2);
  const TraceId t = obs::derive_trace_id(1, 1);
  store.record(span(t, t, 0, "a", "job", -1, 0.0, 1.0));
  store.record(span(t, obs::derive_span_id(t, 1), t, "b", "marker", -1,
                    0.0, 0.0));
  store.record(span(t, obs::derive_span_id(t, 2), t, "c", "marker", -1,
                    1.0, 1.0));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dropped(), 1u);
  const TraceReport report = TraceReport::build(store);
  EXPECT_EQ(report.spans.size(), 2u);
  EXPECT_EQ(report.dropped, 2 + 1 - 2);
}

TEST(TraceReport, ByteStableAcrossRecordingOrder) {
  const TraceId t1 = obs::derive_trace_id(5, 0);
  const TraceId t2 = obs::derive_trace_id(5, 1);
  std::vector<TraceSpan> spans = migrated_job(t1);
  const std::vector<TraceSpan> more = migrated_job(t2);
  spans.insert(spans.end(), more.begin(), more.end());

  TraceStore forward;
  forward.append(spans);
  std::reverse(spans.begin(), spans.end());
  TraceStore backward;
  backward.append(spans);

  const std::string a = TraceReport::build(forward).to_string();
  const std::string b = TraceReport::build(backward).to_string();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"trace_version\":1"), std::string::npos);
}

TEST(TraceReport, RoundTripsThroughJson) {
  TraceStore store;
  store.append(migrated_job(obs::derive_trace_id(3, 3)));
  const TraceReport report = TraceReport::build(store);
  const std::string text = report.to_string();

  TraceReport back;
  std::string err;
  ASSERT_TRUE(TraceReport::read(text, &back, &err)) << err;
  EXPECT_EQ(back.to_string(), text);
  ASSERT_EQ(back.spans.size(), report.spans.size());
  EXPECT_EQ(back.spans[0].name, report.spans[0].name);
  EXPECT_EQ(back.spans[0].span_id, report.spans[0].span_id);
  EXPECT_EQ(back.spans[0].device, report.spans[0].device);
  EXPECT_EQ(back.spans[0].tenant, report.spans[0].tenant);
}

TEST(TraceAssembly, RebuildsCrossDeviceParentage) {
  const TraceId t = obs::derive_trace_id(11, 0);
  TraceStore store;
  store.append(migrated_job(t));
  const auto trees = obs::assemble_traces(TraceReport::build(store));
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].trace_id, t);
  EXPECT_EQ(trees[0].missing_parents, 0);
  ASSERT_EQ(trees[0].roots.size(), 1u);
  const obs::TraceNode& job = trees[0].roots[0];
  EXPECT_EQ(job.span->name, "job");
  // attempt(dev0) → migrate → attempt(dev1), in causal order.
  ASSERT_EQ(job.children.size(), 3u);
  EXPECT_EQ(job.children[0].span->device, 0);
  EXPECT_EQ(job.children[1].span->name, "migrate");
  EXPECT_EQ(job.children[2].span->device, 1);
  ASSERT_EQ(job.children[2].children.size(), 1u);
  EXPECT_EQ(job.children[2].children[0].span->kind, "driver");
}

TEST(TraceAssembly, MissingParentSurfacesAsExtraRoot) {
  const TraceId t = obs::derive_trace_id(12, 0);
  TraceStore store;
  store.record(span(t, t, 0, "job", "job", -1, 0.0, 1.0));
  // Parented to a span id that never got recorded (e.g. the store
  // dropped it at capacity): must stay visible, not vanish.
  store.record(span(t, obs::derive_span_id(t, 99), 0xdeadbeefULL,
                    "orphan", "task", 1, 0.5, 0.6));
  const auto trees = obs::assemble_traces(TraceReport::build(store));
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].missing_parents, 1);
  ASSERT_EQ(trees[0].roots.size(), 2u);
  EXPECT_EQ(trees[0].roots[1].span->name, "orphan");
}

TEST(TraceFilter, ByTraceTenantAndDevice) {
  const TraceId t1 = obs::derive_trace_id(7, 0);
  const TraceId t2 = obs::derive_trace_id(7, 1);
  TraceStore store;
  store.append(migrated_job(t1));
  std::vector<TraceSpan> other = migrated_job(t2);
  for (auto& s : other) s.tenant = "beta";
  store.append(other);
  const TraceReport report = TraceReport::build(store);

  obs::TraceFilter by_trace;
  by_trace.trace_id = t1;
  EXPECT_EQ(obs::filter_trace(report, by_trace).spans.size(), 5u);

  obs::TraceFilter by_tenant;
  by_tenant.tenant = "beta";
  const TraceReport betas = obs::filter_trace(report, by_tenant);
  EXPECT_EQ(betas.spans.size(), 5u);
  for (const auto& s : betas.spans) EXPECT_EQ(s.tenant, "beta");

  obs::TraceFilter by_device;
  by_device.device = 1;
  const TraceReport dev1 = obs::filter_trace(report, by_device);
  EXPECT_EQ(dev1.spans.size(), 4u);  // attempt + driver per trace
  for (const auto& s : dev1.spans) EXPECT_EQ(s.device, 1);
}

TEST(TraceWaterfall, DeterministicAndShowsTheCausalChain) {
  TraceStore store;
  store.append(migrated_job(obs::derive_trace_id(2, 0)));
  const TraceReport report = TraceReport::build(store);
  const std::string a = obs::render_waterfall(report);
  EXPECT_EQ(a, obs::render_waterfall(report));
  EXPECT_NE(a.find("job"), std::string::npos);
  EXPECT_NE(a.find("migrate"), std::string::npos);
  EXPECT_NE(a.find("factorize"), std::string::npos);
  EXPECT_NE(a.find("loss"), std::string::npos);
}

TEST(TraceDiff, TimeShiftedRunsCompareEqual) {
  const TraceId t = obs::derive_trace_id(4, 0);
  TraceStore a;
  a.append(migrated_job(t));
  TraceStore b;
  b.append(migrated_job(t, /*shift=*/123.0));
  const auto diff =
      obs::diff_traces(TraceReport::build(a), TraceReport::build(b));
  EXPECT_TRUE(diff.identical()) << diff.differences.front();
}

TEST(TraceDiff, StructuralPerturbationsAreRejected) {
  const TraceId t = obs::derive_trace_id(4, 1);
  TraceStore base;
  base.append(migrated_job(t));
  const TraceReport ra = TraceReport::build(base);

  // Different device on the final attempt.
  std::vector<TraceSpan> moved = migrated_job(t);
  moved[3].device = 2;
  TraceStore bs;
  bs.append(moved);
  EXPECT_FALSE(obs::diff_traces(ra, TraceReport::build(bs)).identical());

  // Dropped child span.
  std::vector<TraceSpan> shorter = migrated_job(t);
  shorter.pop_back();
  TraceStore cs;
  cs.append(shorter);
  EXPECT_FALSE(obs::diff_traces(ra, TraceReport::build(cs)).identical());

  // A whole trace only present on one side.
  TraceStore ds;
  ds.append(migrated_job(t));
  ds.append(migrated_job(obs::derive_trace_id(4, 2)));
  const auto diff = obs::diff_traces(ra, TraceReport::build(ds));
  EXPECT_FALSE(diff.identical());
  EXPECT_NE(diff.differences.front().find("only in"), std::string::npos);
}

}  // namespace
}  // namespace ftla
