// Tests for the time-series telemetry layer: windowed rollup math,
// the determinism contract (byte-identical JSON across repeats and
// thread counts), JSON round-trips, and the end-to-end feed from a
// simulated run (machine occupancy + telemetry counters).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "abft/cholesky.hpp"
#include "common/spd.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "obs/timeseries.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/profiler.hpp"

namespace ftla::obs {
namespace {

// ------------------------------ store ---------------------------------

TEST(TimeSeriesStore, CounterAccumulatesRunningTotal) {
  TimeSeriesStore store;
  store.sample_counter("timeseries.test.count", 0.0, 1.0);
  store.sample_counter("timeseries.test.count", 1.0, 2.0);
  store.sample_counter("timeseries.test.count", 2.0, -1.0);
  const auto snap = store.snapshot();
  const auto& s = snap.at("timeseries.test.count");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0].value, 1.0);
  EXPECT_DOUBLE_EQ(s[1].value, 3.0);
  EXPECT_DOUBLE_EQ(s[2].value, 2.0);
}

TEST(TimeSeriesStore, GaugeRecordsPointReadings) {
  TimeSeriesStore store;
  store.sample_gauge("timeseries.test.g", 0.5, 7.0);
  store.sample_gauge("timeseries.test.g", 1.5, 3.0);
  const auto snap = store.snapshot();
  const auto& s = snap.at("timeseries.test.g");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].value, 7.0);
  EXPECT_DOUBLE_EQ(s[1].value, 3.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dropped(), 0u);
}

TEST(TimeSeriesStore, CapDropsSamplesButKeepsCounting) {
  TimeSeriesStore store(2);
  store.sample_gauge("timeseries.test.g", 0.0, 1.0);
  store.sample_gauge("timeseries.test.g", 1.0, 2.0);
  store.sample_gauge("timeseries.test.g", 2.0, 3.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dropped(), 1u);
}

// ------------------------------ rollup --------------------------------

TEST(TimeSeriesRollupMath, WindowStatsAreExact) {
  TimeSeriesStore store;
  // Window [0, 10): 1, 3, 5.  Window [10, 20): 10.  Window [20, 30)
  // empty — must not appear.  Window [30, 40): 2.
  store.sample_gauge("timeseries.test.g", 0.0, 1.0);
  store.sample_gauge("timeseries.test.g", 4.0, 3.0);
  store.sample_gauge("timeseries.test.g", 9.9, 5.0);
  store.sample_gauge("timeseries.test.g", 10.0, 10.0);
  store.sample_gauge("timeseries.test.g", 30.0, 2.0);
  const TimeSeriesReport rep = build_timeseries_report(store, 10.0);
  const auto& roll = rep.series.at("timeseries.test.g");
  EXPECT_EQ(roll.samples, 5);
  ASSERT_EQ(roll.windows.size(), 3u);
  const TimeSeriesWindow& w0 = roll.windows[0];
  EXPECT_DOUBLE_EQ(w0.start, 0.0);
  EXPECT_DOUBLE_EQ(w0.end, 10.0);
  EXPECT_EQ(w0.samples, 3);
  EXPECT_DOUBLE_EQ(w0.min, 1.0);
  EXPECT_DOUBLE_EQ(w0.max, 5.0);
  EXPECT_DOUBLE_EQ(w0.mean, 3.0);
  EXPECT_DOUBLE_EQ(w0.p50, 3.0);  // nearest rank: ceil(.5*3)=2 -> 3.0
  EXPECT_DOUBLE_EQ(w0.p99, 5.0);  // ceil(.99*3)=3 -> 5.0
  EXPECT_DOUBLE_EQ(roll.windows[1].start, 10.0);
  EXPECT_EQ(roll.windows[1].samples, 1);
  EXPECT_DOUBLE_EQ(roll.windows[2].start, 30.0);
  EXPECT_DOUBLE_EQ(roll.windows[2].p50, 2.0);
}

TEST(TimeSeriesRollupMath, NonPositiveWindowCollapsesToOne) {
  TimeSeriesStore store;
  store.sample_gauge("timeseries.test.g", 1.0, 4.0);
  store.sample_gauge("timeseries.test.g", 99.0, 8.0);
  const TimeSeriesReport rep = build_timeseries_report(store, 0.0);
  const auto& roll = rep.series.at("timeseries.test.g");
  ASSERT_EQ(roll.windows.size(), 1u);
  EXPECT_EQ(roll.windows[0].samples, 2);
  EXPECT_DOUBLE_EQ(roll.windows[0].mean, 6.0);
}

TEST(TimeSeriesRollupMath, RollupIgnoresRecordingOrder) {
  // The determinism contract: a permuted recording order (what a
  // thread-pool race produces) must roll up to the same report.
  TimeSeriesStore fwd;
  TimeSeriesStore rev;
  const std::vector<TimeSeriesSample> samples = {
      {0.5, 2.0}, {1.5, 8.0}, {2.5, 1.0}, {3.5, 5.0}};
  for (const auto& s : samples) {
    fwd.sample_gauge("timeseries.test.g", s.time, s.value);
  }
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    rev.sample_gauge("timeseries.test.g", it->time, it->value);
  }
  std::ostringstream a;
  std::ostringstream b;
  write_timeseries_json(build_timeseries_report(fwd, 2.0), a);
  write_timeseries_json(build_timeseries_report(rev, 2.0), b);
  EXPECT_EQ(a.str(), b.str());
}

// ----------------------------- round-trip -----------------------------

TEST(TimeSeriesJson, RoundTripPreservesEverything) {
  TimeSeriesStore store;
  store.sample_counter("timeseries.test.count", 0.25, 1.0);
  store.sample_counter("timeseries.test.count", 1.75, 4.0);
  store.sample_gauge("timeseries.test.g", 0.5, -3.5);
  TimeSeriesReport rep = build_timeseries_report(store, 1.0);
  rep.meta["algo"] = "cholesky";
  rep.meta["n"] = "64";

  std::ostringstream os;
  write_timeseries_json(rep, os);
  std::istringstream is(os.str());
  TimeSeriesReport back;
  ASSERT_TRUE(read_timeseries_json(is, &back));

  std::ostringstream os2;
  write_timeseries_json(back, os2);
  EXPECT_EQ(os.str(), os2.str());
  EXPECT_EQ(back.meta.at("algo"), "cholesky");
  EXPECT_EQ(back.series.size(), 2u);
}

TEST(TimeSeriesJson, RejectsWrongSchemaVersion) {
  std::istringstream is(
      R"({"meta":{},"samples_dropped":0,"samples_recorded":0,"series":{},)"
      R"("timeseries_version":2,"window_seconds":1})");
  TimeSeriesReport out;
  EXPECT_FALSE(read_timeseries_json(is, &out));
}

// --------------------------- end-to-end feed --------------------------

std::string run_and_export(int threads) {
  common::set_global_threads(threads);
  sim::Machine machine(sim::test_rig(), sim::ExecutionMode::Numeric);
  machine.set_trace_enabled(true);
  TimeSeriesStore store;

  Matrix<double> a(64, 64);
  make_spd_diag_dominant(a, 42);
  abft::CholeskyOptions opt;
  opt.variant = abft::Variant::EnhancedOnline;
  opt.timeseries = &store;
  std::vector<fault::FaultSpec> plan = fault::random_plan(2, 8, 7);
  fault::Injector injector(std::move(plan));
  const auto res = abft::cholesky(machine, &a, 64, opt, &injector);
  EXPECT_TRUE(res.success);

  sim::append_machine_timeseries(machine, &store);
  TimeSeriesReport rep =
      build_timeseries_report(store, machine.makespan() / 10.0);
  std::ostringstream os;
  write_timeseries_json(rep, os);
  return os.str();
}

TEST(TimeSeriesEndToEnd, MachineAndTelemetryFeedIsByteStable) {
  const std::string serial = run_and_export(1);
  const std::string again = run_and_export(1);
  const std::string parallel = run_and_export(4);
  common::set_global_threads(1);
  EXPECT_EQ(serial, again);
  EXPECT_EQ(serial, parallel);

  std::istringstream is(serial);
  TimeSeriesReport rep;
  ASSERT_TRUE(read_timeseries_json(is, &rep));
  // The canonical series from both producers are present and non-empty.
  EXPECT_GT(rep.series.at("timeseries.sim.sm_units_in_use").samples, 0);
  EXPECT_GT(rep.series.at("timeseries.abft.verified_blocks").samples, 0);
  EXPECT_GT(rep.series.at("timeseries.abft.errors_detected").samples, 0);
}

}  // namespace
}  // namespace ftla::obs
