// Fixture: a header (scanned under src/) pulling in heavyweight
// standard includes must fire include-hygiene on each.
#pragma once

#include <iostream>  // line 5: banned in headers
#include <regex>     // line 6: banned in headers

inline void trace(const char* msg) { std::cout << msg; }
