// Fixture: every randomness construct here must fire
// no-raw-randomness regardless of where the file sits.
#include <cstdlib>
#include <random>

int roll() {
  return rand() % 6;  // line 7: rand()
}

void reseed() {
  srand(42);  // line 11: srand()
}

unsigned entropy() {
  std::random_device rd;  // line 15: random_device
  return rd();
}
