// Fixture: an allow() comment naming a different rule does not silence
// the finding — this must still fire no-wall-clock.
#include <ctime>

long sample() {
  return time(nullptr);  // ftla-lint: allow(no-raw-randomness)
}
