// Fixture: raw access-mode plumbing that must fire
// dag-footprint-helpers when scanned under a src/abft virtual path.
namespace runtime {
enum class Access { Read, Write, ReadWrite };
struct TileKey {
  int matrix = 0;
  int row = 0;
  int col = 0;
};
struct Footprint {
  TileKey tile;
  Access access;
};
}  // namespace runtime

runtime::Footprint raw_read(runtime::TileKey t) {
  return {t, runtime::Access::Read};  // line 17: raw Access value
}

runtime::Footprint aggregate(runtime::TileKey t, runtime::Access a) {
  return runtime::Footprint{t, a};  // line 21: brace-built entry
}

runtime::Access pick_mode(bool writing) {
  return writing ? runtime::Access::Write : runtime::Access::ReadWrite;
}
