// Fixture: add_task call sites that never name an observability
// phase — all three must fire dag-task-phase under src/abft.
#include <functional>
#include <string>
#include <vector>

namespace runtime {
struct TileKey {
  int matrix = 0;
};
struct Footprint;
Footprint read(TileKey t);
Footprint write(TileKey t);
struct TaskContext {};
struct TaskOptions {
  int phase = 0;
  int iteration = 0;
};
struct TaskGraph {
  int add_task(std::string name, std::vector<Footprint> footprint,
               std::function<void(const TaskContext&)> body,
               TaskOptions opts = {});
};
}  // namespace runtime

void build(runtime::TaskGraph& g, runtime::TileKey t) {
  g.add_task("lambda_last", {runtime::read(t)},  // line 27: no options
             [t](const runtime::TaskContext&) { (void)t; });

  runtime::TaskOptions opts;
  opts.iteration = 3;
  g.add_task("phaseless_options", {runtime::write(t)},  // line 32
             [t](const runtime::TaskContext&) { (void)t; }, opts);

  g.add_task("default_options", {runtime::read(t)},  // line 35
             [t](const runtime::TaskContext&) { (void)t; }, {});
}
