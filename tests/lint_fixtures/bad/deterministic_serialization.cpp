// Fixture: iterating an unordered container inside a function that
// writes serialized output must fire deterministic-serialization.
#include <ostream>
#include <string>
#include <unordered_map>

void dump_counters(const std::unordered_map<std::string, long>& counters,
                   std::ostream& os) {
  for (const auto& kv : counters) {  // line 9: unordered iteration + <<
    os << kv.first << "=" << kv.second << "\n";
  }
}

struct Exporter {
  std::unordered_map<std::string, double> gauges_;

  void to_json(std::ostream& os) const {
    for (auto it = gauges_.begin(); it != gauges_.end(); ++it) {  // line 18
      os << it->first;
    }
  }
};
