// Fixture: scanned under a tools/*_cli.cpp virtual path, every raw
// exit status here must fire exit-code-contract (plus the
// missing-contract finding, since kExit* never appears).
#include <cstdlib>

int main(int argc, char**) {
  if (argc > 3) {
    std::exit(2);  // line 8: raw exit()
  }
  if (argc > 2) {
    return EXIT_FAILURE;  // line 11: macro return
  }
  if (argc > 1) {
    return 1;  // line 14: numeric return from main
  }
  return 0;  // line 16: numeric return from main
}
