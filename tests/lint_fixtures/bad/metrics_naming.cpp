// Fixture: every literal metric name here violates the
// subsystem.noun[_unit] convention and must fire metrics-naming.
struct Registry {
  long& counter(const char*);
  void add_counter(const char*, long);
  void set_gauge(const char*, double);
  void record_histogram(const char*, double);
};

struct Store {
  void sample_counter(const char*, double, double);
  void sample_gauge(const char*, double, double);
};

void report(Registry& reg, Store& ts) {
  reg.counter("blocks") += 1;              // line 16: no dot
  reg.add_counter("abft.Verify", 1);       // line 17: uppercase segment
  reg.set_gauge("abft..gap", 0.5);         // line 18: empty segment
  reg.record_histogram("2fast.metric", 1); // line 19: leading digit
  reg.counter("wallclock.reads") += 1;     // line 20: unknown namespace
  ts.sample_counter("verified_blocks", 0.5, 1.0);       // line 21: no dot
  ts.sample_gauge("wallclock.in_use", 0.5, 1.0);        // line 22: unknown ns
}
