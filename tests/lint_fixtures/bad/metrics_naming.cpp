// Fixture: every literal metric name here violates the
// subsystem.noun[_unit] convention and must fire metrics-naming.
struct Registry {
  long& counter(const char*);
  void add_counter(const char*, long);
  void set_gauge(const char*, double);
  void record_histogram(const char*, double);
};

void report(Registry& reg) {
  reg.counter("blocks") += 1;              // line 11: no dot
  reg.add_counter("abft.Verify", 1);       // line 12: uppercase segment
  reg.set_gauge("abft..gap", 0.5);         // line 13: empty segment
  reg.record_histogram("2fast.metric", 1); // line 14: leading digit
  reg.counter("wallclock.reads") += 1;     // line 15: unknown namespace
}
