// Fixture: runtime.* metric names that break the dotted
// subsystem.noun[_unit] convention — every call below must fire
// metrics-naming.
struct Registry {
  long& counter(const char*);
  void add_counter(const char*, long);
};

void tick(Registry& reg) {
  reg.add_counter("runtime.Tasks", 1);      // line 10: uppercase segment
  reg.counter("runtimex.tasks") += 1;       // line 11: unknown namespace
  reg.add_counter("runtime", 1);            // line 12: no dot
  reg.add_counter("runtime..sanitize", 1);  // line 13: empty segment
}
