// Fixture: trace.* / slo.* / tenant.* metric names that break the
// dotted subsystem.noun[_unit] convention — every call below must fire
// metrics-naming.
struct Registry {
  long& counter(const char*);
  void add_counter(const char*, long);
  void set_gauge(const char*, double);
};

void tick(Registry& reg) {
  reg.add_counter("trace.Spans", 1);          // line 11: uppercase segment
  reg.set_gauge("slos.burn_rate", 1.0);       // line 12: unknown namespace
  reg.add_counter("tenant", 1);               // line 13: no dot
  reg.counter("slo..burn_rate") += 1;         // line 14: empty segment
  reg.add_counter("tenants.alpha.jobs", 1);   // line 15: unknown namespace
}
