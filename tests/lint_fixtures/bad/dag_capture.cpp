// Fixture: default lambda captures inside add_task calls — each must
// fire dag-capture-hygiene under src/abft.
#include <functional>
#include <string>
#include <vector>

namespace runtime {
struct TileKey {
  int matrix = 0;
};
struct Footprint;
Footprint read(TileKey t);
Footprint write(TileKey t);
struct TaskContext {};
struct TaskOptions {
  int phase = 0;
};
struct TaskGraph {
  int add_task(std::string name, std::vector<Footprint> footprint,
               std::function<void(const TaskContext&)> body,
               TaskOptions opts = {});
};
}  // namespace runtime

void build(runtime::TaskGraph& g, runtime::TileKey t, int j) {
  runtime::TaskOptions opts;
  opts.phase = 1;
  g.add_task("capture_all_by_ref", {runtime::read(t)},
             [&](const runtime::TaskContext&) { (void)j; }, opts);
  g.add_task("capture_all_by_value", {runtime::write(t)},
             [=](const runtime::TaskContext&) { (void)j; }, opts);
  g.add_task("ref_default_with_extras", {runtime::read(t)},
             [&, j](const runtime::TaskContext&) { (void)j; }, opts);
}
