// Fixture: every timing construct here must fire no-wall-clock when
// the file is scanned under a src/sim virtual path.
#include <chrono>
#include <ctime>

double sample_system_clock() {
  auto now = std::chrono::system_clock::now();  // line 7: system_clock
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long sample_time() {
  return time(nullptr);  // line 12: time()
}

long sample_clock() {
  return clock();  // line 16: clock()
}

double sample_steady() {
  auto t = std::chrono::steady_clock::now();  // line 20: steady_clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
