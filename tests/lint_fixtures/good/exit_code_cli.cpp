// Fixture: must stay silent under a tools/*_cli.cpp virtual path —
// exit paths use the shared contract; numeric returns in helper
// functions (not main) are fine.
namespace ftla::common {
inline constexpr int kExitSuccess = 0;
inline constexpr int kExitUsage = 2;
}  // namespace ftla::common

int parse_count(const char* s) {
  if (s == nullptr) return 0;  // helper: numeric return is fine here
  return 1;
}

int main(int argc, char** argv) {
  if (parse_count(argc > 1 ? argv[1] : nullptr) == 0) {
    return ftla::common::kExitUsage;
  }
  return ftla::common::kExitSuccess;
}
