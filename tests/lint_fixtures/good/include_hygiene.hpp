// Fixture: must stay silent — forward-declaration headers are the
// sanctioned alternative, and project includes are never banned.
#pragma once

#include <iosfwd>
#include <string>

#include "common/error.hpp"

void trace(std::ostream& os, const std::string& msg);
