// Fixture: must stay silent — compliant dotted names, runtime-built
// names (outside the rule's reach), and banned shapes in comments.
#include <string>

struct Registry {
  long& counter(const std::string&);
  void set_gauge(const std::string&, double);
};

struct Store {
  void sample_counter(const std::string&, double, double);
  void sample_gauge(const std::string&, double, double);
};

void report(Registry& reg, Store& ts, const std::string& op) {
  reg.counter("abft.verify.dgemm_blocks") += 1;
  reg.set_gauge("sim.queue_depth", 3.0);
  reg.set_gauge("profile.critical_path_s", 0.25);
  reg.counter("abft.verify." + op) += 1;  // assembled name: not judged
  ts.sample_counter("timeseries.abft.verified_blocks", 0.5, 1.0);
  ts.sample_gauge("timeseries.sim.sm_units_in_use", 0.5, 12.0);
  reg.counter("fleet.device_losses") += 1;
  reg.set_gauge("fleet.devices_usable", 2.0);
  reg.counter("service.jobs.migrated") += 1;
  ts.sample_counter("service.jobs_finished", 0.5, 1.0);
  reg.counter("runtime.stream_waits") += 1;
  reg.counter("runtime.waits_elided") += 1;
  // reg.counter("BAD") in a comment must not fire.
}
