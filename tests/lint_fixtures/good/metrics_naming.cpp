// Fixture: must stay silent — compliant dotted names, runtime-built
// names (outside the rule's reach), and banned shapes in comments.
#include <string>

struct Registry {
  long& counter(const std::string&);
  void set_gauge(const std::string&, double);
};

void report(Registry& reg, const std::string& op) {
  reg.counter("abft.verify.dgemm_blocks") += 1;
  reg.set_gauge("sim.queue_depth", 3.0);
  reg.set_gauge("profile.critical_path_s", 0.25);
  reg.counter("abft.verify." + op) += 1;  // assembled name: not judged
  // reg.counter("BAD") in a comment must not fire.
}
