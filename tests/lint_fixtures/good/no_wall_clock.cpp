// Fixture: none of this may fire no-wall-clock — identifiers that
// merely contain clock/time words, commented-out violations, and
// violations inside string literals.
struct Machine {
  double host_now() const { return now_; }
  double now_ = 0.0;
};

double detection_time(const Machine& m) {
  // auto t = std::chrono::system_clock::now();  (comment: must not fire)
  const char* label = "time(nullptr) inside a string must not fire";
  double wall_clock_budget = 0.0;  // identifier containing clock
  double timeline = m.host_now();  // virtual clock is the sanctioned source
  return timeline + wall_clock_budget + static_cast<double>(label[0] != '\0');
}
