// Fixture: must stay silent — seeded Rng usage and identifiers that
// merely contain the banned substrings.
struct Rng {
  explicit Rng(unsigned long long seed) : state_(seed) {}
  double uniform() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state_ >> 11) / 9007199254740992.0;
  }
  unsigned long long state_;
};

double operand(double x) { return x; }  // contains "rand(" mid-word

double draw(Rng& rng) {
  // rand() in a comment must not fire.
  const char* note = "srand(1) in a string must not fire";
  return rng.uniform() + operand(note[0] == 's' ? 1.0 : 0.0);
}
