// Fixture: helper-built footprints — must stay silent under the same
// src/abft virtual path (Access::Write in a comment must not fire).
#include <vector>

namespace runtime {
struct TileKey {
  int matrix = 0;
  int row = 0;
  int col = 0;
};
struct Footprint;
Footprint read(TileKey t);
Footprint write(TileKey t);
Footprint rw(TileKey t);
}  // namespace runtime

void declare(std::vector<runtime::Footprint>* fp, runtime::TileKey t) {
  fp->push_back(runtime::read(t));
  fp->push_back(runtime::write(t));
  fp->push_back(runtime::rw(t));
}
