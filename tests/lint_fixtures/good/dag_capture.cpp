// Fixture: explicit captures (including named by-reference ones) and
// array subscripts inside add_task bodies — must stay silent.
#include <functional>
#include <string>
#include <vector>

namespace runtime {
struct TileKey {
  int matrix = 0;
};
struct Footprint;
Footprint read(TileKey t);
Footprint write(TileKey t);
struct TaskContext {};
struct TaskOptions {
  int phase = 0;
};
struct TaskGraph {
  int add_task(std::string name, std::vector<Footprint> footprint,
               std::function<void(const TaskContext&)> body,
               TaskOptions opts = {});
};
}  // namespace runtime

void build(runtime::TaskGraph& g, runtime::TileKey t, int j,
           const std::vector<int>& lengths) {
  runtime::TaskOptions opts;
  opts.phase = 1;
  g.add_task("explicit_captures", {runtime::read(t)},
             [t, j](const runtime::TaskContext&) {
               (void)t;
               (void)j;
             },
             opts);
  g.add_task("named_reference_capture", {runtime::write(t)},
             [&lengths, j](const runtime::TaskContext&) {
               (void)lengths[j];
             },
             opts);
}
