// Fixture: must stay silent — both suppression placements (same line,
// line above) naming the firing rule.
#include <ctime>

long same_line() {
  return time(nullptr);  // ftla-lint: allow(no-wall-clock) calibration only
}

long line_above() {
  // ftla-lint: allow(no-wall-clock, no-raw-randomness)
  return time(nullptr);
}
