// Fixture: compliant trace.* / slo.* / tenant.* metric names (the
// causal-tracing and SLO layer's namespaces) — must stay silent.
struct Registry {
  long& counter(const char*);
  void add_counter(const char*, long);
  void set_gauge(const char*, double);
};

void tick(Registry& reg) {
  reg.add_counter("trace.spans", 1);
  reg.add_counter("trace.spans_dropped", 0);
  reg.set_gauge("slo.availability.burn_rate", 0.5);
  reg.add_counter("slo.alerts", 1);
  reg.add_counter("tenant.alpha.checkpoint_bytes", 4096);
  reg.set_gauge("tenant.alpha.device_seconds", 1.5);
}
