// Fixture: must stay silent — ordered iteration while serializing,
// and unordered iteration in functions that never serialize.
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>

void dump_sorted(const std::map<std::string, long>& counters,
                 std::ostream& os) {
  for (const auto& kv : counters) {  // std::map: deterministic order
    os << kv.first << "=" << kv.second << "\n";
  }
}

long total(const std::unordered_map<std::string, long>& tallies) {
  long sum = 0;
  for (const auto& kv : tallies) sum += kv.second;  // no sink here
  return sum;
}
