// Fixture: every add_task call names its phase (a named TaskOptions
// assigned in the enclosing function, a copied one, or a designated
// initializer) — must stay silent.
#include <functional>
#include <string>
#include <vector>

namespace runtime {
struct TileKey {
  int matrix = 0;
};
struct Footprint;
Footprint read(TileKey t);
Footprint write(TileKey t);
struct TaskContext {};
struct TaskOptions {
  int phase = 0;
  int iteration = 0;
};
struct TaskGraph {
  int add_task(std::string name, std::vector<Footprint> footprint,
               std::function<void(const TaskContext&)> body,
               TaskOptions opts = {});
};
}  // namespace runtime

void build(runtime::TaskGraph& g, runtime::TileKey t) {
  runtime::TaskOptions opts;
  opts.phase = 1;
  g.add_task("named_options", {runtime::read(t)},
             [t](const runtime::TaskContext&) { (void)t; }, opts);

  runtime::TaskOptions update = opts;
  update.phase = 2;
  g.add_task("copied_options", {runtime::write(t)},
             [t](const runtime::TaskContext&) { (void)t; }, update);

  g.add_task("braced_options", {runtime::read(t)},
             [t](const runtime::TaskContext&) { (void)t; },
             runtime::TaskOptions{.phase = 3});
}
