// Fixture: compliant runtime.* metric names (the task-graph runtime's
// namespace, including the sanitizer counters) — must stay silent.
struct Registry {
  long& counter(const char*);
  void add_counter(const char*, long);
};

void tick(Registry& reg) {
  reg.add_counter("runtime.tasks", 1);
  reg.add_counter("runtime.sanitize.accesses", 1);
  reg.add_counter("runtime.sanitize.violations", 0);
  reg.counter("runtime.schedule.random_draws") += 1;
}
