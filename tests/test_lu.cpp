// Tests for the LU extension: no-pivot LU substrate correctness, the
// row/column-checksum scheme, and fault tolerance of the Enhanced
// Online-ABFT LU driver.
#include <gtest/gtest.h>

#include <tuple>

#include "abft/lu.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using fault::FaultSpec;
using fault::FaultType;
using fault::Injector;
using fault::Op;
using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

// ----------------------- substrate: getf2/getrf ------------------------

TEST(GetrfNopiv, MatchesUnblockedOnDiagDominant) {
  const int n = 96;
  auto a = test::random_spd(n, 1);  // diagonally dominant
  auto lu1 = a;
  auto lu2 = a;
  blas::getf2_nopiv(lu1.view());
  blas::getrf_nopiv(lu2.view(), 16);
  EXPECT_MATRIX_NEAR(lu1, lu2, 1e-9);
}

class GetrfSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GetrfSizes, SmallResidual) {
  const auto [n, nb] = GetParam();
  auto a = test::random_spd(n, 100 + n);
  auto lu_packed = a;
  blas::getrf_nopiv(lu_packed.view(), nb);
  EXPECT_LT(blas::lu_residual(a.view(), lu_packed.view()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GetrfSizes,
                         ::testing::Values(std::tuple{1, 8}, std::tuple{7, 8},
                                           std::tuple{64, 16},
                                           std::tuple{100, 32},
                                           std::tuple{130, 64}));

TEST(Getf2Nopiv, RectangularPanel) {
  const int m = 48, nn = 16;
  Matrix<double> a(m, nn);
  make_uniform(a, 7);
  for (int i = 0; i < nn; ++i) a(i, i) += 10.0;  // safe pivots
  auto packed = a;
  blas::getf2_nopiv(packed.view());
  // Reconstruct: A = L (m x n, unit diag) * U (n x n upper).
  Matrix<double> rec(m, nn, 0.0);
  for (int j = 0; j < nn; ++j) {
    for (int i = 0; i < m; ++i) {
      const int kmax = std::min(i, j);
      double s = 0.0;
      for (int k = 0; k < kmax; ++k) s += packed(i, k) * packed(k, j);
      s += i <= j ? packed(i, j) : packed(i, j) * packed(j, j);
      rec(i, j) = s;
    }
  }
  EXPECT_MATRIX_NEAR(rec, a, 1e-10);
}

TEST(Getf2Nopiv, ThrowsOnZeroPivot) {
  Matrix<double> a(3, 3, 1.0);  // singular
  EXPECT_THROW(blas::getf2_nopiv(a.view()), NotPositiveDefiniteError);
}

// ----------------------- row checksums under LU ops --------------------

TEST(RowChecksums, InvariantUnderLeftTrsm) {
  // rchk(L^{-1} A) = L^{-1} rchk(A) — the property column checksums lack.
  const int b = 16, w = 24;
  auto l = test::random_spd(b, 2);
  blas::getf2_nopiv(l.view());
  auto a = test::random_matrix(b, w, 3);
  Matrix<double> rchk(b, kChecksumRows);
  encode_block_rows(a.view(), rchk.view());
  blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::No,
             blas::Diag::Unit, 1.0, l.view(), a.view());
  blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::No,
             blas::Diag::Unit, 1.0, l.view(), rchk.view());
  Matrix<double> expect(b, kChecksumRows);
  encode_block_rows(a.view(), expect.view());
  EXPECT_MATRIX_NEAR(rchk, expect, 1e-9);
}

TEST(RowChecksums, InvariantUnderTrailingGemm) {
  // rchk(B - L U) = rchk(B) - L rchk(U).
  const int b = 16;
  auto bm = test::random_matrix(b, b, 4);
  auto l = test::random_matrix(b, b, 5);
  auto u = test::random_matrix(b, b, 6);
  Matrix<double> rchk_b(b, kChecksumRows), rchk_u(b, kChecksumRows);
  encode_block_rows(bm.view(), rchk_b.view());
  encode_block_rows(u.view(), rchk_u.view());
  blas::gemm(blas::Trans::No, blas::Trans::No, -1.0, l.view(), u.view(), 1.0,
             bm.view());
  blas::gemm(blas::Trans::No, blas::Trans::No, -1.0, l.view(), rchk_u.view(),
             1.0, rchk_b.view());
  Matrix<double> expect(b, kChecksumRows);
  encode_block_rows(bm.view(), expect.view());
  EXPECT_MATRIX_NEAR(rchk_b, expect, 1e-10);
}

TEST(RowChecksums, SingleErrorLocatedAndCorrected) {
  auto a = test::random_matrix(12, 20, 7);
  Matrix<double> chk(12, kChecksumRows);
  encode_block_rows(a.view(), chk.view());
  const double orig = a(5, 13);
  a(5, 13) -= 321.5;
  auto out = verify_block_rows_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 1);
  ASSERT_EQ(out.corrections.size(), 1u);
  EXPECT_EQ(out.corrections[0].row, 5);
  EXPECT_EQ(out.corrections[0].col, 13);
  EXPECT_NEAR(a(5, 13), orig, 1e-9);
}

TEST(RowChecksums, TwoErrorsSameRowUncorrectable) {
  auto a = test::random_matrix(8, 8, 8);
  Matrix<double> chk(8, kChecksumRows);
  encode_block_rows(a.view(), chk.view());
  a(3, 1) += 50.0;
  a(3, 6) += 70.0;
  auto out = verify_block_rows_host(a.view(), chk.view(), Tolerance{});
  EXPECT_TRUE(out.uncorrectable);
}

TEST(RowChecksums, CorruptedChecksumColumnRepaired) {
  auto a = test::random_matrix(8, 8, 9);
  Matrix<double> chk(8, kChecksumRows);
  encode_block_rows(a.view(), chk.view());
  chk(4, 1) += 1e5;
  auto out = verify_block_rows_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.checksum_repairs, 1);
  Matrix<double> expect(8, kChecksumRows);
  encode_block_rows(a.view(), expect.view());
  EXPECT_MATRIX_NEAR(chk, expect, 1e-12);
}

// ----------------------------- the driver ------------------------------

struct LuOutcome {
  CholeskyResult res;
  double residual = 0.0;
};

LuOutcome run_lu(Variant variant, std::vector<FaultSpec> plan, int n = 96,
                 int k_interval = 1) {
  auto a0 = test::random_spd(n, 2024);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  LuOptions opt;
  opt.variant = variant;
  opt.verify_interval = k_interval;
  const bool has_faults = !plan.empty();
  Injector inj(std::move(plan));
  LuOutcome out;
  out.res = lu(m, &a, n, opt, has_faults ? &inj : nullptr);
  if (out.res.success) {
    out.residual = blas::lu_residual(a0.view(), a.view());
  }
  return out;
}

TEST(LuDriver, FaultFreeMatchesReference) {
  const int n = 96;
  auto a0 = test::random_spd(n, 2024);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  LuOptions opt;
  auto res = lu(m, &a, n, opt);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(res.errors_detected, 0) << "false positive";
  EXPECT_EQ(res.checksum_repairs, 0);
  auto expect = a0;
  blas::getrf_nopiv(expect.view(), 16);
  EXPECT_MATRIX_NEAR(a, expect, 1e-8);
}

TEST(LuDriver, NoFtSkipsAllVerification) {
  auto out = run_lu(Variant::NoFt, {});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.verified.total(), 0);
  EXPECT_LT(out.residual, 1e-12);
}

class LuSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LuSizes, ArbitraryShapes) {
  const auto [n, b] = GetParam();
  auto a0 = test::random_spd(n, 300 + n);
  auto a = a0;
  auto p = small_rig();
  p.magma_block_size = b;
  Machine m(p, ExecutionMode::Numeric);
  LuOptions opt;
  auto res = lu(m, &a, n, opt);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_LT(blas::lu_residual(a0.view(), a.view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LuSizes,
                         ::testing::Values(std::tuple{16, 16},
                                           std::tuple{17, 16},
                                           std::tuple{50, 16},
                                           std::tuple{96, 32},
                                           std::tuple{31, 8}));

TEST(LuFaults, StorageErrorInPanelInputCorrected) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Potf2;  // about to be read by the panel factorization
  s.iteration = 2;
  s.block_row = 3;
  s.block_col = 2;
  s.elem_row = 4;
  s.elem_col = 9;
  s.bits = {20, 44, 54};
  auto out = run_lu(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(LuFaults, StorageErrorInURowCorrectedByRowChecksums) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;  // the trailing update reads the U row
  s.iteration = 2;
  s.block_row = 2;  // block (2, 4) is U territory at iteration 2
  s.block_col = 4;
  s.elem_row = 3;
  s.elem_col = 5;
  s.bits = {21, 45, 55};
  auto out = run_lu(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(LuFaults, ComputingErrorInTrailingUpdateCorrected) {
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = 1;
  s.block_row = 3;
  s.block_col = 4;
  s.elem_row = 2;
  s.elem_col = 2;
  s.magnitude = 1e5;
  auto out = run_lu(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(LuFaults, StorageErrorOnFinishedFactorCaughtByFinalSweep) {
  // Right-looking LU never re-reads finished blocks; the final sweep is
  // what protects them. Corrupt a finished U block long after its last
  // use (fires before the iteration-4 trailing read of *other* blocks).
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Trsm;
  s.iteration = 4;
  s.block_row = 0;  // U block finished back at iteration 0
  s.block_col = 3;
  s.elem_row = 1;
  s.elem_col = 2;
  s.bits = {19, 47, 53};
  auto out = run_lu(Variant::EnhancedOnline, {s}, 96);
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(LuFaults, IntervalGatingStillConverges) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 1;  // 1 % 3 != 0: trailing verification gated off
  s.block_row = 4;
  s.block_col = 3;
  s.bits = {22, 46, 54};
  auto out = run_lu(Variant::EnhancedOnline, {s}, 96, 3);
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_LT(out.residual, 1e-6);
}

TEST(LuDriver, TimingOnlyParity) {
  const int n = 96;
  LuOptions opt;
  auto a = test::random_spd(n, 2024);
  Machine m1(small_rig(), ExecutionMode::Numeric);
  auto r1 = lu(m1, &a, n, opt);
  Machine m2(small_rig(), ExecutionMode::TimingOnly);
  auto r2 = lu(m2, nullptr, n, opt);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_NEAR(r1.seconds, r2.seconds, 1e-9 * std::max(1.0, r1.seconds));
  EXPECT_EQ(r1.verified.total(), r2.verified.total());
}

TEST(LuDriver, EnhancedCostsMoreThanNoFt) {
  const int n = 10240;
  const auto profile = sim::tardis();
  LuOptions noft;
  noft.variant = Variant::NoFt;
  LuOptions enh;
  enh.variant = Variant::EnhancedOnline;
  enh.verify_interval = 5;
  Machine m1(profile, ExecutionMode::TimingOnly);
  const double t_noft = lu(m1, nullptr, n, noft).seconds;
  Machine m2(profile, ExecutionMode::TimingOnly);
  const double t_enh = lu(m2, nullptr, n, enh).seconds;
  EXPECT_GT(t_enh, t_noft);
  EXPECT_LT(t_enh / t_noft - 1.0, 0.30) << "overhead should stay modest";
}

}  // namespace
}  // namespace ftla::abft
