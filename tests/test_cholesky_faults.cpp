// Fault-injection behaviour of the four schemes — the paper's central
// claims (Tables VII/VIII):
//   * Enhanced Online-ABFT corrects computing AND storage errors in
//     place, with no re-run.
//   * Online-ABFT corrects computing errors but must re-run after a
//     storage error in the verified-to-read window.
//   * Offline-ABFT re-runs for both error types.
//   * NoFt either fail-stops or silently produces a wrong factor.
#include <gtest/gtest.h>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using fault::FaultSpec;
using fault::FaultType;
using fault::Injector;
using fault::Op;
using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

struct Outcome {
  CholeskyResult res;
  double residual = 0.0;
  int fired = 0;
};

Outcome run_with_faults(Variant variant, std::vector<FaultSpec> plan,
                        int n = 96, int verify_interval = 1,
                        fault::EccModel ecc = {}) {
  auto a0 = test::random_spd(n, 4242);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = variant;
  opt.verify_interval = verify_interval;
  Injector inj(std::move(plan), ecc);
  Outcome out;
  out.res = cholesky(m, &a, n, opt, &inj);
  out.fired = inj.fired_count();
  if (out.res.success) {
    out.residual = blas::cholesky_residual(a0.view(), a.view());
  }
  return out;
}

FaultSpec computing_gemm(int iter) {
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = iter;
  s.elem_row = 3;
  s.elem_col = 5;
  s.magnitude = 1e6;
  return s;
}

FaultSpec storage_syrk(int iter) {
  // Multi-bit flip in a decomposed panel block that SYRK is about to
  // read — the exact scenario of the paper's "Memory Error" column.
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Syrk;
  s.iteration = iter;
  s.block_row = iter;
  s.block_col = iter - 1;
  s.elem_row = 2;
  s.elem_col = 7;
  s.bits = {20, 44, 54};
  return s;
}

// --------------------------- Enhanced ---------------------------------

TEST(EnhancedFaults, ComputingErrorCorrectedWithoutRerun) {
  auto out = run_with_faults(Variant::EnhancedOnline, {computing_gemm(2)});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.fired, 1);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(EnhancedFaults, StorageErrorCorrectedWithoutRerun) {
  auto out = run_with_faults(Variant::EnhancedOnline, {storage_syrk(3)});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.fired, 1);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(EnhancedFaults, BothErrorTypesTogether) {
  auto out = run_with_faults(Variant::EnhancedOnline,
                             {computing_gemm(1), storage_syrk(4)});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.fired, 2);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 2);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(EnhancedFaults, StorageErrorInGemmInputCorrected) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 2;
  s.block_row = 4;
  s.block_col = 1;
  s.bits = {18, 43, 55};
  auto out = run_with_faults(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(EnhancedFaults, CorruptedChecksumRepaired) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Syrk;
  s.iteration = 3;
  s.block_row = 3;
  s.block_col = 2;
  s.target_checksum = true;
  s.bits = {30, 52};
  auto out = run_with_faults(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.checksum_repairs, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(EnhancedFaults, SignBitStorageErrorCorrected) {
  FaultSpec s = storage_syrk(2);
  s.bits = {63, 10};  // sign flip plus a mantissa bit
  auto out = run_with_faults(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(EnhancedFaults, EccAbsorbsSingleBitFlip) {
  FaultSpec s = storage_syrk(3);
  s.bits = {44};  // single bit: SEC-DED handles it before ABFT sees it
  auto out = run_with_faults(Variant::EnhancedOnline, {s}, 96, 1,
                             fault::EccModel{true});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.fired, 0);
  EXPECT_EQ(out.res.errors_detected, 0);
  EXPECT_LT(out.residual, 1e-12);
}

TEST(EnhancedFaults, WithoutEccSingleBitFlipStillCorrected) {
  FaultSpec s = storage_syrk(3);
  s.bits = {60};  // high exponent bit: large excursion
  auto out = run_with_faults(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(EnhancedFaults, IntervalGatedRunStillCorrectsEventually) {
  // With K = 3 a GEMM-input fault may be read once uncorrected, but the
  // scheme must still converge to a correct factor (SYRK inputs are
  // always verified, protecting the unrecoverable path).
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 1;  // not a verify iteration for K = 3? j=1, 1%3 != 0
  s.block_row = 3;
  s.block_col = 0;
  s.bits = {21, 45, 53};
  auto out = run_with_faults(Variant::EnhancedOnline, {s}, 96, 3);
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_LT(out.residual, 1e-6);
}

TEST(EnhancedFaults, ManyRandomFaultsAllHandled) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto plan = fault::random_plan(5, 6, seed);  // 6x6 blocks of 16 => 96
    auto out = run_with_faults(Variant::EnhancedOnline, plan);
    ASSERT_TRUE(out.res.success) << "seed " << seed << ": " << out.res.note;
    EXPECT_LT(out.residual, 1e-5) << "seed " << seed;
  }
}

// --------------------------- Online -----------------------------------

TEST(OnlineFaults, ComputingErrorCorrectedWithoutRerun) {
  auto out = run_with_faults(Variant::Online, {computing_gemm(2)});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(OnlineFaults, StorageErrorForcesRerun) {
  auto out = run_with_faults(Variant::Online, {storage_syrk(3)});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 1) << "online cannot correct storage errors";
  EXPECT_LT(out.residual, 1e-10) << "rerun must produce a clean factor";
}

TEST(OnlineFaults, StorageErrorRoughlyDoublesTime) {
  auto clean = run_with_faults(Variant::Online, {});
  auto faulty = run_with_faults(Variant::Online, {storage_syrk(3)});
  ASSERT_TRUE(clean.res.success && faulty.res.success);
  // At toy sizes fixed transfer latencies skew the ratio; the clean ~2x
  // shape is reproduced at paper scale by bench/table7.
  EXPECT_GT(faulty.res.seconds, 1.3 * clean.res.seconds);
  EXPECT_LT(faulty.res.seconds, 5.0 * clean.res.seconds);
}

// --------------------------- Offline ----------------------------------

TEST(OfflineFaults, ComputingErrorForcesRerun) {
  auto out = run_with_faults(Variant::Offline, {computing_gemm(2)});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 1);
  EXPECT_LT(out.residual, 1e-10);
}

TEST(OfflineFaults, StorageErrorForcesRerun) {
  auto out = run_with_faults(Variant::Offline, {storage_syrk(3)});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 1);
  EXPECT_LT(out.residual, 1e-10);
}

TEST(OfflineFaults, FaultFreeRunDoesNotRerun) {
  auto out = run_with_faults(Variant::Offline, {});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.reruns, 0);
}

// --------------------------- NoFt --------------------------------------

TEST(NoFtFaults, StorageErrorSilentlyCorruptsOrFails) {
  auto out = run_with_faults(Variant::NoFt, {storage_syrk(3)});
  if (out.res.success) {
    EXPECT_GT(out.residual, 1e-8) << "silently wrong factor expected";
  } else {
    EXPECT_TRUE(out.res.fail_stop_observed);
  }
}

TEST(NoFtFaults, ComputingErrorSilentlyCorruptsOrFails) {
  auto out = run_with_faults(Variant::NoFt, {computing_gemm(2)});
  if (out.res.success) {
    EXPECT_GT(out.residual, 1e-8);
  } else {
    EXPECT_TRUE(out.res.fail_stop_observed);
  }
}

// ------------------- cross-variant comparison --------------------------

TEST(FaultComparison, EnhancedIsOnlyVariantNotRerunningOnStorage) {
  const auto spec = storage_syrk(3);
  auto enh = run_with_faults(Variant::EnhancedOnline, {spec});
  auto onl = run_with_faults(Variant::Online, {spec});
  auto off = run_with_faults(Variant::Offline, {spec});
  ASSERT_TRUE(enh.res.success && onl.res.success && off.res.success);
  EXPECT_EQ(enh.res.reruns, 0);
  EXPECT_EQ(onl.res.reruns, 1);
  EXPECT_EQ(off.res.reruns, 1);
  // The paper's Table VII in miniature: the enhanced run stays close to
  // its fault-free time while the others roughly double.
  auto enh_clean = run_with_faults(Variant::EnhancedOnline, {});
  EXPECT_LT(enh.res.seconds, 1.1 * enh_clean.res.seconds);
}

TEST(FaultComparison, StorageInGemmPathSilentlyCorruptsOnlineFactor) {
  // A storage error in a block only GEMM reads: Online's post-update
  // verification "corrects" the polluted outputs but never re-checks the
  // corrupted slate block itself — the final factor is silently wrong.
  // (This is the paper's argument for pre-read verification.)
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 2;
  s.block_row = 4;
  s.block_col = 1;
  s.elem_row = 3;
  s.elem_col = 3;
  s.bits = {25, 48, 56};
  auto onl = run_with_faults(Variant::Online, {s});
  if (onl.res.success && onl.res.reruns == 0) {
    EXPECT_GT(onl.residual, 1e-9) << "expected silent corruption";
  }
  auto enh = run_with_faults(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(enh.res.success);
  EXPECT_LT(enh.residual, 1e-6) << "enhanced must catch it pre-read";
}

TEST(FaultComparison, MaxRerunsExhaustedReportsFailure) {
  // Two storage faults at different iterations: online reruns once
  // (consuming the first), hits the second... both consumed on first
  // pass? No: the second fires in the rerun only if still pending.
  // Force exhaustion instead with max_reruns = 0.
  auto a0 = test::random_spd(96, 4242);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = Variant::Online;
  opt.max_reruns = 0;
  Injector inj({storage_syrk(3)});
  auto res = cholesky(m, &a, 96, opt, &inj);
  EXPECT_FALSE(res.success);
  EXPECT_FALSE(res.note.empty());
}

}  // namespace
}  // namespace ftla::abft
