// Fault-campaign engine tests: the zero-SDC invariant for the guarded
// variant, the SDC oracle demonstrably catching unguarded corruption,
// scenario serialization round-trips, the shrinker's minimal plans, and
// the transfer-fault hook's injection -> detection -> trace flow.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "common/fp.hpp"
#include "common/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/trace_export.hpp"
#include "test_util.hpp"

namespace ftla::fault {
namespace {

long long verdict_total(const CampaignSummary& sum, const std::string& key,
                        Verdict v) {
  const auto it = sum.verdicts.find(key);
  if (it == sum.verdicts.end()) return 0;
  return it->second[static_cast<int>(v)];
}

TEST(Campaign, GuardedVariantNeverSilentlyCorrupts) {
  const std::uint64_t seed = test::root_seed(7);
  FTLA_SEED_TRACE(seed);
  CampaignOptions opt;
  opt.scenarios = 300;
  opt.seed = seed;
  obs::MetricsRegistry metrics;
  const CampaignSummary sum = run_campaign(opt, &metrics);

  EXPECT_EQ(sum.scenarios_run, 300);
  EXPECT_GT(sum.faults_fired, 0);
  EXPECT_GT(sum.faults_detected, 0);
  EXPECT_GT(sum.transfer_faults, 0);

  // The central invariant: the guarded variant must never claim success
  // with a corrupt result, for any algorithm.
  EXPECT_EQ(sum.guarded_sdc, 0);
  for (const char* key :
       {"cholesky/enhanced-online-abft", "lu/enhanced-online-abft",
        "qr/enhanced-online-abft"}) {
    EXPECT_EQ(verdict_total(sum, key, Verdict::Sdc), 0) << key;
  }
  // ... while the oracle demonstrably catches unprotected corruption —
  // otherwise a zero above would only prove the oracle is blind.
  EXPECT_GT(verdict_total(sum, "cholesky/no-ft", Verdict::Sdc), 0);
  EXPECT_GT(verdict_total(sum, "lu/no-ft", Verdict::Sdc) +
                verdict_total(sum, "qr/no-ft", Verdict::Sdc),
            0);
  // Offline verifies before reporting success: corruption it cannot fix
  // escalates to rerun/fail-stop, never sdc.
  EXPECT_EQ(verdict_total(sum, "cholesky/offline-abft", Verdict::Sdc), 0);

  // The summary is exported through the metrics registry.
  EXPECT_TRUE(sum.clean());
  EXPECT_GT(metrics.counter("campaign.scenarios"), 0);
  EXPECT_GT(metrics.counter("campaign.faults.fired"), 0);
}

TEST(Campaign, DeterministicForSeed) {
  CampaignOptions opt;
  opt.scenarios = 40;
  opt.seed = 11;
  const CampaignSummary a = run_campaign(opt);
  const CampaignSummary b = run_campaign(opt);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.faults_detected, b.faults_detected);
  EXPECT_EQ(a.verdicts, b.verdicts);
}

TEST(Campaign, ParallelCampaignBitIdenticalToSerial) {
  // The parallel executor pre-draws scenarios in the serial draw order
  // and merges in draw order, so the whole summary — aggregates,
  // verdict histogram, and every shrunk failure plan — must match a
  // single-threaded campaign exactly, not statistically.
  CampaignOptions opt;
  opt.scenarios = 24;
  opt.seed = 7;
  const CampaignSummary serial = run_campaign(opt);

  CampaignOptions par = opt;
  par.threads = 4;
  const CampaignSummary parallel = run_campaign(par);

  EXPECT_EQ(serial.scenarios_run, parallel.scenarios_run);
  EXPECT_EQ(serial.faults_fired, parallel.faults_fired);
  EXPECT_EQ(serial.faults_detected, parallel.faults_detected);
  EXPECT_EQ(serial.ecc_absorbed, parallel.ecc_absorbed);
  EXPECT_EQ(serial.transfer_faults, parallel.transfer_faults);
  EXPECT_EQ(serial.guarded_sdc, parallel.guarded_sdc);
  EXPECT_EQ(serial.unexpected_fail_stop, parallel.unexpected_fail_stop);
  EXPECT_EQ(serial.verdicts, parallel.verdicts);
  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  for (std::size_t i = 0; i < serial.failures.size(); ++i) {
    const CampaignFailure& a = serial.failures[i];
    const CampaignFailure& b = parallel.failures[i];
    EXPECT_EQ(a.result.verdict, b.result.verdict);
    EXPECT_EQ(a.reproduced, b.reproduced);
    EXPECT_EQ(a.shrink_runs, b.shrink_runs);
    EXPECT_EQ(format_scenario(a.scenario), format_scenario(b.scenario));
    EXPECT_EQ(format_scenario(a.shrunk), format_scenario(b.shrunk));
  }
}

TEST(Campaign, WorkerExecutionMatchesInlinePerScenario) {
  // Per-scenario bit-identity: the same scenario run on a pool worker
  // (where nested BLAS parallelism is forced inline) must give the same
  // verdict, residual and fired plan as an inline run on this thread.
  CampaignOptions opt;
  Rng rng(13);
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 12; ++i) scenarios.push_back(random_scenario(rng, opt));

  std::vector<ScenarioResult> inline_res(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    inline_res[i] = run_scenario(scenarios[i]);
  }

  std::vector<ScenarioResult> pooled_res(scenarios.size());
  common::ThreadPool pool(4);
  pool.parallel_for(0, static_cast<std::int64_t>(scenarios.size()),
                    [&](std::int64_t i) {
                      const auto u = static_cast<std::size_t>(i);
                      pooled_res[u] = run_scenario(scenarios[u]);
                    });

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& a = inline_res[i];
    const ScenarioResult& b = pooled_res[i];
    EXPECT_EQ(a.verdict, b.verdict) << "scenario " << i;
    EXPECT_EQ(a.success, b.success);
    if (std::isnan(a.residual)) {
      EXPECT_TRUE(std::isnan(b.residual));
    } else {
      EXPECT_EQ(a.residual, b.residual) << "scenario " << i;
    }
    EXPECT_EQ(a.faults_fired, b.faults_fired);
    EXPECT_EQ(a.faults_detected, b.faults_detected);
    EXPECT_EQ(a.errors_corrected, b.errors_corrected);
    EXPECT_EQ(a.rollbacks, b.rollbacks);
    EXPECT_EQ(a.reruns, b.reruns);
    // Compare fired plans through the replay serialization (exact
    // round-trip format, so equal text means equal faults).
    Scenario ta = scenarios[i];
    ta.mtbf_s = 0.0;
    ta.plan = a.fired_plan;
    Scenario tb = scenarios[i];
    tb.mtbf_s = 0.0;
    tb.plan = b.fired_plan;
    EXPECT_EQ(format_scenario(ta), format_scenario(tb)) << "scenario " << i;
  }
}

TEST(Campaign, DeterministicTwinReproducesStochasticRun) {
  // Any single-attempt stochastic run must replay identically from its
  // fired_plan with the arrival process disabled — that twin is the
  // starting point for shrinking.
  const std::uint64_t seed = test::root_seed(21);
  FTLA_SEED_TRACE(seed);
  CampaignOptions opt;
  Rng rng(seed);
  int checked = 0;
  for (int i = 0; i < 200 && checked < 5; ++i) {
    const Scenario sc = random_scenario(rng, opt);
    const ScenarioResult res = run_scenario(sc);
    if (res.faults_fired == 0 || res.reruns > 0 || res.rollbacks > 0) {
      continue;  // multi-attempt runs may quantize differently
    }
    Scenario twin = sc;
    twin.mtbf_s = 0.0;
    twin.plan = res.fired_plan;
    const ScenarioResult replay = run_scenario(twin);
    EXPECT_EQ(replay.verdict, res.verdict)
        << "scenario:\n"
        << format_scenario(twin);
    ++checked;
  }
  EXPECT_GE(checked, 3) << "campaign mix produced too few twin candidates";
}

TEST(ScenarioIo, FormatParseRoundTrip) {
  const std::uint64_t seed = test::root_seed(31);
  FTLA_SEED_TRACE(seed);
  CampaignOptions opt;
  Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    Scenario sc = random_scenario(rng, opt);
    // Exercise the fault-line serializer too.
    sc.plan = random_plan(4, sc.nblocks(), rng.next_u64());
    sc.plan[0].type = FaultType::Transfer;
    sc.plan[0].transfer_index = 3;
    sc.plan[1].target_checksum = true;
    const std::string text = format_scenario(sc);
    Scenario back;
    std::string err;
    ASSERT_TRUE(parse_scenario(text, &back, &err)) << err << "\n" << text;
    EXPECT_EQ(format_scenario(back), text);
  }
}

TEST(Campaign, DagRuntimeScenariosStayZeroSdc) {
  // Force every scenario onto the task-graph runtime: the zero-SDC
  // invariant must hold over the DAG drivers exactly as over the bulk
  // oracle (docs/runtime.md), for all three algorithms.
  const std::uint64_t seed = test::root_seed(77);
  FTLA_SEED_TRACE(seed);
  CampaignOptions opt;
  opt.scenarios = 120;
  opt.seed = seed;
  opt.dag_share = 1.0;
  const CampaignSummary sum = run_campaign(opt);
  EXPECT_EQ(sum.scenarios_run, 120);
  EXPECT_GT(sum.faults_fired, 0);
  EXPECT_GT(sum.faults_detected, 0);
  EXPECT_EQ(sum.guarded_sdc, 0);
  EXPECT_TRUE(sum.clean());
  // The oracle still catches unguarded corruption under the DAG, so the
  // zero above is not the oracle going blind.
  long long noft_sdc = 0;
  for (const char* key : {"cholesky/no-ft", "lu/no-ft", "qr/no-ft"}) {
    noft_sdc += verdict_total(sum, key, Verdict::Sdc);
  }
  EXPECT_GT(noft_sdc, 0);
}

TEST(ScenarioIo, RuntimeKeyRoundTripsAndDefaultsToBulk) {
  Scenario sc;
  sc.runtime = abft::RuntimeMode::Dag;
  const std::string text = format_scenario(sc);
  EXPECT_NE(text.find(" runtime=dag "), std::string::npos) << text;
  Scenario back;
  std::string err;
  ASSERT_TRUE(parse_scenario(text, &back, &err)) << err;
  EXPECT_EQ(back.runtime, abft::RuntimeMode::Dag);
  // Pre-runtime plans omit the key: bulk is the compatibility default.
  ASSERT_TRUE(
      parse_scenario("scenario algo=cholesky n=64 block=16\n", &back, &err))
      << err;
  EXPECT_EQ(back.runtime, abft::RuntimeMode::Bulk);
}

TEST(ScenarioIo, ParseReportsLineNumbers) {
  Scenario sc;
  std::string err;
  EXPECT_FALSE(parse_scenario("scenario algo=cholesky\nfault type=bogus\n",
                              &sc, &err));
  EXPECT_NE(err.find("2"), std::string::npos) << err;
}

TEST(Shrink, ProducesMinimalReplayablePlan) {
  // A NoFt run with a pile of faults silently corrupts; the shrinker
  // must cut the plan to <= 2 faults (here: one) that still reproduce
  // the sdc verdict when replayed.
  Scenario sc;
  sc.algo = Algo::Cholesky;
  sc.variant = abft::Variant::NoFt;
  sc.n = 80;
  sc.matrix_seed = 5;
  sc.plan = random_plan(5, sc.nblocks(), 17, FaultType::Storage);
  const ScenarioResult res = run_scenario(sc);
  ASSERT_EQ(res.verdict, Verdict::Sdc)
      << "residual=" << res.residual << " fired=" << res.faults_fired;

  const ShrinkOutcome out = shrink_scenario(sc, Verdict::Sdc);
  ASSERT_LE(out.scenario.plan.size(), 2u);
  ASSERT_GE(out.scenario.plan.size(), 1u);
  EXPECT_GT(out.runs, 0);

  // The minimized scenario replays to the same verdict, including after
  // a serialization round-trip.
  Scenario back;
  std::string err;
  ASSERT_TRUE(parse_scenario(format_scenario(out.scenario), &back, &err))
      << err;
  EXPECT_EQ(run_scenario(back).verdict, Verdict::Sdc);
}

TEST(TransferFault, MidH2dCaughtByNextPreReferenceVerification) {
  // Acceptance path for the transfer-fault model: corrupt the factored
  // diagonal block's H2D return trip mid-copy, and require Enhanced
  // Online-ABFT (transfer_guard on) to catch it at the next verification
  // that reads the block — with the injection -> detection flow visible
  // in the exported Chrome trace.
  const int n = 64;
  auto a0 = test::random_spd(n, 99);

  // Pass 1: find the copy ordinal of the first *armed* H2D copy after
  // the run starts (the drivers arm exactly the copies whose corruption
  // a downstream check can see).
  std::int64_t target_seq = -1;
  {
    auto a = a0;
    sim::Machine m(sim::test_rig(), sim::ExecutionMode::Numeric);
    m.set_transfer_hook([&](const sim::TransferCtx& ctx) {
      // A full-matrix destination (ld == n) keeps coordinates mappable.
      if (target_seq < 0 && ctx.h2d && ctx.armed && ctx.rows > 1 &&
          ctx.ld == n && ctx.dev_off >= 0) {
        target_seq = ctx.seq;
      }
    });
    abft::CholeskyOptions opt;
    opt.variant = abft::Variant::EnhancedOnline;
    opt.block_size = 16;
    opt.transfer_guard = true;
    ASSERT_TRUE(abft::cholesky(m, &a, n, opt).success);
  }
  ASSERT_GE(target_seq, 0) << "no armed H2D copy observed";

  // Pass 2: same run with a planned transfer fault on that copy.
  FaultSpec spec;
  spec.type = FaultType::Transfer;
  spec.op = Op::Potf2;
  spec.transfer_index = target_seq;
  spec.elem_row = 1;
  spec.elem_col = 0;
  spec.bits = {52, 57};

  auto a = a0;
  sim::Machine m(sim::test_rig(), sim::ExecutionMode::Numeric);
  m.set_trace_enabled(true);
  Injector inj({spec});
  obs::RingBufferSink sink;
  m.set_transfer_hook([&](const sim::TransferCtx& ctx) {
    for (FaultSpec s : inj.take_transfer(ctx.seq, ctx.end, ctx.armed)) {
      const int r = std::min(s.elem_row, ctx.rows - 1);
      const int c = std::min(s.elem_col, ctx.cols - 1);
      double* p = ctx.data + static_cast<std::int64_t>(c) * ctx.ld + r;
      const double old_value = *p;
      for (int b : s.bits) *p = flip_bit(*p, b);
      const int grow = static_cast<int>(ctx.dev_off % n) + r;
      const int gcol = static_cast<int>(ctx.dev_off / n) + c;
      inj.record(s, old_value, *p, grow, gcol);
    }
  });
  abft::CholeskyOptions opt;
  opt.variant = abft::Variant::EnhancedOnline;
  opt.block_size = 16;
  opt.transfer_guard = true;
  opt.event_sink = &sink;
  const auto res = abft::cholesky(m, &a, n, opt, &inj);

  ASSERT_TRUE(res.success);
  ASSERT_EQ(inj.fired_count(), 1);
  EXPECT_EQ(inj.detected_count(), 1)
      << "mid-H2D corruption must be caught before the block is read";
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-10);

  // The event stream carries the correlated chain...
  const auto events = sink.events();
  std::int64_t fault_id = -1;
  bool saw_detection = false;
  for (const auto& e : events) {
    if (e.kind == obs::EventKind::FaultInjected &&
        e.name == "fault:transfer") {
      fault_id = e.correlation;
    }
    if (e.kind == obs::EventKind::Detection && e.correlation >= 0 &&
        e.correlation == fault_id) {
      saw_detection = true;
    }
  }
  ASSERT_GE(fault_id, 0);
  EXPECT_TRUE(saw_detection);

  // ...and the merged Chrome trace renders it: instant events for the
  // injection and detection plus a flow arrow between them.
  std::ostringstream os;
  sim::write_chrome_trace(m, events, os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("fault:transfer"), std::string::npos);
  EXPECT_NE(trace.find("\"detection\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);  // flow end
}

}  // namespace
}  // namespace ftla::fault
