// Tests for the observability layer: event sinks, the metrics registry,
// the JSON report, and the end-to-end property the layer exists for —
// a faulty Numeric-mode Cholesky run whose exported Chrome trace carries
// the injection instant event and the injection->detection flow arrows,
// and whose metrics reconcile exactly with the CholeskyResult counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "abft/cholesky.hpp"
#include "abft/telemetry.hpp"
#include "fault/fault.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/trace_export.hpp"
#include "test_util.hpp"

namespace ftla::obs {
namespace {

Event note(const std::string& name) {
  Event e;
  e.kind = EventKind::Note;
  e.name = name;
  return e;
}

// ----------------------------- sinks ----------------------------------

TEST(EventSink, PostStampsMonotonicSequence) {
  RingBufferSink sink(16);
  sink.post(note("a"));
  sink.post(note("b"));
  sink.post(note("c"));
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0);
  EXPECT_EQ(events[1].seq, 1);
  EXPECT_EQ(events[2].seq, 2);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[2].name, "c");
  EXPECT_EQ(sink.posted(), 3);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(EventSink, RingBufferOverwritesOldestWhenFull) {
  RingBufferSink sink(3);
  for (int i = 0; i < 5; ++i) sink.post(note("e" + std::to_string(i)));
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest two were overwritten; survivors are in posting order.
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
  EXPECT_EQ(events[0].seq, 2);
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.posted(), 5);
}

TEST(EventSink, NullSinkCountsButStoresNothing) {
  NullSink sink;
  sink.post(note("x"));
  sink.post(note("y"));
  EXPECT_EQ(sink.posted(), 2);
}

TEST(EventSink, JsonlConcurrentWritersEmitWholeLines) {
  // The JSONL sink's contract under concurrency: every posted event
  // lands as one complete, balanced line with a unique sequence number
  // — no interleaved fragments. Run under TSan in CI.
  std::ostringstream os;
  JsonlStreamSink sink(os);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&sink, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Event e;
          e.kind = EventKind::Note;
          e.name = "w" + std::to_string(t) + "." + std::to_string(i);
          sink.post(e);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  const std::string s = os.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), kThreads * kPerThread);
  EXPECT_EQ(sink.posted(), kThreads * kPerThread);

  std::istringstream lines(s);
  std::string line;
  std::set<long long> seqs;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'));
    const std::size_t at = line.find("\"seq\":");
    ASSERT_NE(at, std::string::npos);
    seqs.insert(std::strtoll(line.c_str() + at + 6, nullptr, 10));
  }
  // Sequence numbers are exactly 0..N-1, each on its own line.
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(*seqs.begin(), 0);
  EXPECT_EQ(*seqs.rbegin(), kThreads * kPerThread - 1);
}

TEST(EventSink, JsonlEmitsOneObjectPerLine) {
  std::ostringstream os;
  JsonlStreamSink sink(os);
  Event e = note("quote\"and\\slash");
  e.time = 1.5;
  sink.post(e);
  sink.post(note("second"));
  const std::string s = os.str();
  // Two lines, each a balanced JSON object.
  ASSERT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
  EXPECT_EQ(s.find('{'), 0u);
  EXPECT_NE(s.find("\"kind\":\"note\""), std::string::npos);
  EXPECT_NE(s.find("quote\\\"and\\\\slash"), std::string::npos);
  EXPECT_NE(s.find("\"seq\":1"), std::string::npos);
}

// ---------------------------- registry --------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.counter("test.count") += 2;
  reg.add_counter("test.count", 3);
  reg.set_gauge("test.gauge", 1.25);
  reg.histogram("test.h", {1.0, 2.0}).add(1.5);
  EXPECT_EQ(reg.counters().at("test.count"), 5);
  EXPECT_DOUBLE_EQ(reg.gauges().at("test.gauge"), 1.25);
  EXPECT_EQ(reg.histogram("test.h").count(), 1);
  EXPECT_TRUE(reg.has_counter("test.count"));
  EXPECT_FALSE(reg.has_counter("missing"));
}

TEST(MetricsRegistry, MergeAddsCountersAndFoldsHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("test.merge.n") = 2;
  b.counter("test.merge.n") = 3;
  b.counter("test.merge.only_b") = 7;
  a.set_gauge("test.merge.g", 1.0);
  b.set_gauge("test.merge.g", 9.0);
  a.histogram("test.merge.h", {1.0, 10.0}).add(0.5);
  b.histogram("test.merge.h", {1.0, 10.0}).add(5.0);
  a.merge(b);
  EXPECT_EQ(a.counters().at("test.merge.n"), 5);
  EXPECT_EQ(a.counters().at("test.merge.only_b"), 7);
  EXPECT_DOUBLE_EQ(a.gauges().at("test.merge.g"), 9.0);  // last writer wins
  EXPECT_EQ(a.histogram("test.merge.h").count(), 2);
  EXPECT_DOUBLE_EQ(a.histogram("test.merge.h").max(), 5.0);
}

TEST(MetricsReportJson, SchemaAndSections) {
  MetricsReport report;
  report.add_meta("machine", "test");
  report.add_meta("mode", "numeric");
  report.metrics.counter("test.z_last") = 1;
  report.metrics.counter("test.a_first") = 2;
  report.metrics.set_gauge("test.report_g", 0.5);
  report.metrics.histogram("test.report_h", {1.0}).add(3.0);
  std::ostringstream os;
  write_metrics_json(report, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(s.find("\"machine\":\"test\""), std::string::npos);
  // Counters are emitted in sorted (map) order.
  EXPECT_LT(s.find("test.a_first"), s.find("test.z_last"));
  EXPECT_NE(s.find("\"p50\":"), std::string::npos);
  // Overflow bucket upper bound serialized as "inf".
  EXPECT_NE(s.find("\"le\":\"inf\""), std::string::npos);
  int depth = 0;
  for (char c : s) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// -------------------------- end to end --------------------------------

// Splits a Chrome-trace JSON string into its top-level event objects.
std::vector<std::string> trace_objects(const std::string& json) {
  std::vector<std::string> out;
  const auto start = json.find('[');
  int depth = 0;
  std::size_t obj_begin = 0;
  for (std::size_t i = start; i < json.size(); ++i) {
    if (json[i] == '{') {
      if (depth == 0) obj_begin = i;
      ++depth;
    } else if (json[i] == '}') {
      --depth;
      if (depth == 0) out.push_back(json.substr(obj_begin, i - obj_begin + 1));
    }
  }
  return out;
}

bool has(const std::string& obj, const std::string& needle) {
  return obj.find(needle) != std::string::npos;
}

// Extracts the integer value of `"key":N` from one event object.
long long int_field(const std::string& obj, const std::string& key) {
  const auto pos = obj.find("\"" + key + "\":");
  if (pos == std::string::npos) return -1;
  return std::stoll(obj.substr(pos + key.size() + 3));
}

TEST(ObservabilityEndToEnd, FaultyCholeskyTraceAndMetricsReconcile) {
  using abft::CholeskyOptions;
  using abft::Variant;
  const int n = 96;
  auto profile = sim::test_rig();
  profile.magma_block_size = 16;
  auto a0 = test::random_spd(n, 91);
  auto a = a0;
  sim::Machine m(profile, sim::ExecutionMode::Numeric);
  m.set_trace_enabled(true);

  RingBufferSink sink;
  MetricsRegistry metrics;
  m.set_event_sink(&sink);

  // A storage fault in a decomposed panel block SYRK is about to read
  // (caught by the very next input verification, zero virtual-time
  // latency) plus a computing fault in a GEMM output (caught when a
  // later operation reads the block, strictly positive latency).
  fault::FaultSpec storage;
  storage.type = fault::FaultType::Storage;
  storage.op = fault::Op::Syrk;
  storage.iteration = 2;
  storage.block_row = 2;
  storage.block_col = 1;
  storage.elem_row = 2;
  storage.elem_col = 7;
  storage.bits = {20, 44, 54};
  fault::FaultSpec computing;
  computing.type = fault::FaultType::Computing;
  computing.op = fault::Op::Gemm;
  computing.iteration = 3;
  computing.elem_row = 3;
  computing.elem_col = 5;
  computing.magnitude = 1e6;
  fault::Injector inj({storage, computing});

  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.event_sink = &sink;
  opt.metrics = &metrics;
  const auto res = abft::cholesky(m, &a, n, opt, &inj);

  ASSERT_TRUE(res.success) << res.note;
  ASSERT_EQ(inj.fired_count(), 2);
  ASSERT_GE(res.errors_detected, 2);
  EXPECT_GE(res.errors_corrected, 2);
  EXPECT_EQ(res.reruns, 0);

  // (1) Metrics reconcile EXACTLY with the result's Table-I counters.
  const auto& c = metrics.counters();
  EXPECT_EQ(c.at("abft.verify.potf2_blocks"), res.verified.potf2_blocks);
  EXPECT_EQ(c.at("abft.verify.trsm_blocks"), res.verified.trsm_blocks);
  EXPECT_EQ(c.at("abft.verify.syrk_blocks"), res.verified.syrk_blocks);
  EXPECT_EQ(c.at("abft.verify.gemm_blocks"), res.verified.gemm_blocks);
  EXPECT_EQ(c.at("abft.errors_detected"), res.errors_detected);
  EXPECT_EQ(c.at("abft.errors_corrected"), res.errors_corrected);
  EXPECT_EQ(c.at("abft.detections_matched"), 2);

  // (2) The detection-latency histogram is non-empty; the injector's own
  // records agree, and the computing fault's detection happened at a
  // strictly later virtual time than its injection.
  ASSERT_TRUE(metrics.has_histogram(abft::kDetectionLatencyMetric));
  const auto& h = metrics.histogram(abft::kDetectionLatencyMetric);
  ASSERT_GE(h.count(), 2);
  EXPECT_GE(h.min(), 0.0);
  EXPECT_GT(h.max(), 0.0);
  ASSERT_EQ(inj.records().size(), 2u);
  double worst = 0.0;
  for (const auto& r : inj.records()) {
    EXPECT_TRUE(r.detected());
    worst = std::max(worst, r.detection_latency());
  }
  EXPECT_NEAR(h.max(), worst, 1e-12);

  // (3) The exported Chrome trace carries the fault instant event and an
  // injection->detection flow pair sharing the injection id.
  std::ostringstream os;
  sim::write_chrome_trace(m, sink.events(), os);
  const auto objs = trace_objects(os.str());
  ASSERT_GT(objs.size(), 10u);

  std::vector<long long> injection_ids;
  int detection_instants = 0;
  bool saw_verification = false;
  for (const auto& o : objs) {
    if (has(o, "\"ph\":\"i\"") && has(o, "\"cat\":\"fault_injected\"")) {
      injection_ids.push_back(int_field(o, "injection_id"));
    }
    if (has(o, "\"ph\":\"i\"") && has(o, "\"cat\":\"detection\"")) {
      ++detection_instants;
      EXPECT_TRUE(has(o, "\"pass\":true"));
    }
    if (has(o, "\"cat\":\"verification\"")) saw_verification = true;
  }
  ASSERT_EQ(injection_ids.size(), 2u) << "expected two fault instants";
  EXPECT_EQ(detection_instants, 2);
  EXPECT_TRUE(saw_verification);

  for (long long injection_id : injection_ids) {
    ASSERT_GE(injection_id, 0);
    bool flow_start = false;
    bool flow_end = false;
    for (const auto& o : objs) {
      if (!has(o, "\"cat\":\"fault\"")) continue;
      if (int_field(o, "id") != injection_id) continue;
      if (has(o, "\"ph\":\"s\"")) flow_start = true;
      if (has(o, "\"ph\":\"t\"") || has(o, "\"ph\":\"f\"")) flow_end = true;
    }
    EXPECT_TRUE(flow_start)
        << "missing flow start for injection " << injection_id;
    EXPECT_TRUE(flow_end)
        << "missing flow continuation for injection " << injection_id;
  }

  // (4) The machine's event mirror reached the sink too: kernel spans
  // were posted even though the merger renders them from the trace.
  bool saw_kernel_event = false;
  for (const auto& e : sink.events()) {
    if (e.kind == EventKind::Kernel) saw_kernel_event = true;
  }
  EXPECT_TRUE(saw_kernel_event);
}

TEST(ObservabilityEndToEnd, CleanRunHasNoDetectionAndNoFlows) {
  const int n = 64;
  auto profile = sim::test_rig();
  profile.magma_block_size = 16;
  auto a = test::random_spd(n, 17);
  sim::Machine m(profile, sim::ExecutionMode::Numeric);
  RingBufferSink sink;
  MetricsRegistry metrics;
  m.set_event_sink(&sink);
  abft::CholeskyOptions opt;
  opt.variant = abft::Variant::EnhancedOnline;
  opt.event_sink = &sink;
  opt.metrics = &metrics;
  const auto res = abft::cholesky(m, &a, n, opt);
  ASSERT_TRUE(res.success);
  EXPECT_FALSE(metrics.has_counter("abft.errors_detected"));
  EXPECT_FALSE(metrics.has_histogram(abft::kDetectionLatencyMetric));
  EXPECT_EQ(metrics.counters().at("abft.verify.gemm_blocks"),
            res.verified.gemm_blocks);
  std::ostringstream os;
  sim::write_chrome_trace(m, sink.events(), os);
  const std::string s = os.str();
  EXPECT_EQ(s.find("\"cat\":\"fault\","), std::string::npos);
  EXPECT_NE(s.find("\"cat\":\"verification\""), std::string::npos);
}

}  // namespace
}  // namespace ftla::obs
