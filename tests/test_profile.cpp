// Simulated-time profiler tests: span classification and tagging, the
// exactness contract of the analyzer (critical path == makespan, phase
// decomposition sums exactly to simulated time), JSON round-tripping,
// byte-identical reports across repeated and threaded runs, and the
// perf-regression comparison.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "abft/cholesky.hpp"
#include "common/thread_pool.hpp"
#include "obs/profile_report.hpp"
#include "obs/span.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/profiler.hpp"

namespace ftla {
namespace {

using obs::Phase;

TEST(SpanClassify, NamingConventionCoversEveryPhase) {
  EXPECT_EQ(obs::classify_span_name("verify_gemm_inputs"), Phase::Verify);
  EXPECT_EQ(obs::classify_span_name("recalc_colsum"), Phase::Recalc);
  EXPECT_EQ(obs::classify_span_name("encode_checksums"), Phase::Encode);
  EXPECT_EQ(obs::classify_span_name("ckpt_save"), Phase::Recover);
  EXPECT_EQ(obs::classify_span_name("restore_block"), Phase::Recover);
  EXPECT_EQ(obs::classify_span_name("chk_syrk_cpu"), Phase::Update);
  EXPECT_EQ(obs::classify_span_name("larfb_rchk"), Phase::Update);
  EXPECT_EQ(obs::classify_span_name("gemm"), Phase::Base);
  EXPECT_EQ(obs::classify_span_name("potf2"), Phase::Base);
  EXPECT_EQ(obs::classify_span_name("h2d_2d"), Phase::Base);
}

TEST(SpanStore, PhaseScopeOverridesNeutralNamesOnly) {
  obs::SpanStore store;
  store.record(obs::EventKind::Kernel, "gemm", "blas3", 0, 0.0, 1.0, 10, 0,
               4);
  {
    const obs::PhaseScope update(&store, Phase::Update);
    store.record(obs::EventKind::Kernel, "gemm", "blas3", 0, 1.0, 2.0, 10, 0,
                 4);
    // A name-classified span keeps its own phase inside any scope.
    store.record(obs::EventKind::Kernel, "verify_panel", "host_checksum", -1,
                 2.0, 3.0, 0, 0, 0);
    {
      const obs::PhaseScope recover(&store, Phase::Recover);
      store.record(obs::EventKind::Copy, "h2d_2d", "copy", -2, 3.0, 4.0, 0,
                   100, 0);
    }
  }
  store.record(obs::EventKind::Kernel, "trsm", "blas3", 1, 4.0, 5.0, 10, 0,
               4);

  const std::vector<obs::Span> spans = store.snapshot();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[0].phase, Phase::Base);
  EXPECT_EQ(spans[1].phase, Phase::Update);
  EXPECT_EQ(spans[2].phase, Phase::Verify);
  EXPECT_EQ(spans[3].phase, Phase::Recover);  // innermost scope wins
  EXPECT_EQ(spans[4].phase, Phase::Base);     // scopes fully unwound
}

TEST(SpanStore, StampsIterationAndCountsDrops) {
  obs::SpanStore store(/*limit=*/2);
  store.set_iteration(3);
  store.record(obs::EventKind::Kernel, "gemm", "blas3", 0, 0.0, 1.0, 0, 0, 1);
  store.set_iteration(-1);
  store.record(obs::EventKind::Kernel, "gemm", "blas3", 0, 1.0, 2.0, 0, 0, 1);
  store.record(obs::EventKind::Kernel, "gemm", "blas3", 0, 2.0, 3.0, 0, 0, 1);
  const auto spans = store.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].iteration, 3);
  EXPECT_EQ(spans[1].iteration, -1);
  EXPECT_EQ(store.dropped(), 1u);
}

/// One quickstart-like Enhanced Online-ABFT run under the profiler.
obs::ProfileReport run_profiled(int threads = 1) {
  common::set_global_threads(threads);
  sim::Machine machine(sim::test_rig(), sim::ExecutionMode::TimingOnly);
  obs::SpanStore spans;
  machine.set_span_store(&spans);
  abft::CholeskyOptions opt;
  opt.variant = abft::Variant::EnhancedOnline;
  opt.block_size = 64;
  opt.profile = &spans;
  auto res = abft::cholesky(machine, nullptr, 256, opt);
  EXPECT_TRUE(res.success) << res.note;
  obs::ProfileReport report = sim::build_profile(machine, spans);
  common::set_global_threads(1);
  return report;
}

std::string to_json(const obs::ProfileReport& report) {
  std::ostringstream os;
  obs::write_profile_json(report, os);
  return os.str();
}

TEST(ProfileReport, CriticalPathEqualsMakespanExactly) {
  const obs::ProfileReport r = run_profiled();
  EXPECT_GT(r.makespan_seconds, 0.0);
  // Identity, not approximation: the walk tiles [0, makespan].
  EXPECT_EQ(r.critical_path_seconds, r.makespan_seconds);
  EXPECT_GT(r.critical_segments, 0);
  EXPECT_GE(r.idle_critical_seconds, 0.0);
  EXPECT_GT(r.abft_critical_seconds, 0.0);  // enhanced run does ABFT work
  EXPECT_LE(r.projected_no_abft_seconds, r.makespan_seconds);
}

TEST(ProfileReport, PhaseDecompositionSumsToSimulatedTimeExactly) {
  const obs::ProfileReport r = run_profiled();
  // All six phases are always present (zeroed when unused).
  ASSERT_EQ(r.phases.size(), 6u);
  // Accumulating per-phase critical seconds in sorted key order (the
  // map's order) plus the idle remainder reproduces the makespan
  // bit-for-bit — the analyzer defines idle as exactly this remainder.
  double sum = 0.0;
  for (const auto& [name, phase] : r.phases) sum += phase.critical_seconds;
  EXPECT_EQ(sum + r.idle_critical_seconds, r.makespan_seconds);
  // The enhanced run exercises base + every online-ABFT phase.
  EXPECT_GT(r.phases.at("base").busy_seconds, 0.0);
  EXPECT_GT(r.phases.at("encode").busy_seconds, 0.0);
  EXPECT_GT(r.phases.at("recalc").busy_seconds, 0.0);
  EXPECT_GT(r.phases.at("update").busy_seconds, 0.0);
  EXPECT_GT(r.phases.at("verify").busy_seconds, 0.0);
  EXPECT_EQ(r.phases.at("recover").spans, 0);  // fault-free run
}

TEST(ProfileReport, ReportsResourcesAndTopSpans) {
  const obs::ProfileReport r = run_profiled();
  ASSERT_TRUE(r.resources.count("gpu_sm"));
  ASSERT_TRUE(r.resources.count("host_cpu"));
  ASSERT_TRUE(r.resources.count("h2d_engine"));
  ASSERT_TRUE(r.resources.count("d2h_engine"));
  EXPECT_GT(r.resources.at("gpu_sm").busy_unit_seconds, 0.0);
  EXPECT_GT(r.resources.at("gpu_sm").capacity_units, 1.0);
  ASSERT_FALSE(r.top_spans.empty());
  // Aggregates are busy-time descending.
  for (std::size_t i = 1; i < r.top_spans.size(); ++i) {
    EXPECT_GE(r.top_spans[i - 1].busy_seconds, r.top_spans[i].busy_seconds);
  }
  EXPECT_GT(r.span_count, 0);
  EXPECT_EQ(r.spans_dropped, 0);
}

TEST(ProfileReport, DagRunAttributesSpansToTaskNodes) {
  // Under the task-graph runtime every span carries its issuing task
  // node, and the analyzer surfaces the distinct-node count; a bulk
  // run has no task attribution and must report zero (docs/runtime.md).
  const auto profiled = [](abft::RuntimeMode mode) {
    sim::Machine machine(sim::test_rig(), sim::ExecutionMode::TimingOnly);
    obs::SpanStore spans;
    machine.set_span_store(&spans);
    abft::CholeskyOptions opt;
    opt.variant = abft::Variant::EnhancedOnline;
    opt.block_size = 64;
    opt.placement = abft::UpdatePlacement::Gpu;
    opt.runtime = mode;
    opt.profile = &spans;
    auto res = abft::cholesky(machine, nullptr, 256, opt);
    EXPECT_TRUE(res.success) << res.note;
    return sim::build_profile(machine, spans);
  };
  const obs::ProfileReport bulk = profiled(abft::RuntimeMode::Bulk);
  EXPECT_EQ(bulk.task_nodes, 0);
  const obs::ProfileReport dag = profiled(abft::RuntimeMode::Dag);
  EXPECT_GT(dag.task_nodes, 0);
  // Attribution survives the JSON round trip (and stays byte-stable).
  const std::string first = to_json(dag);
  std::istringstream is(first);
  obs::ProfileReport parsed;
  ASSERT_TRUE(obs::read_profile_json(is, &parsed));
  EXPECT_EQ(parsed.task_nodes, dag.task_nodes);
  EXPECT_EQ(to_json(parsed), first);
}

TEST(ProfileJson, RoundTripsByteIdentically) {
  obs::ProfileReport r = run_profiled();
  r.meta["algo"] = "cholesky";
  r.meta["n"] = "256";
  const std::string first = to_json(r);
  std::istringstream is(first);
  obs::ProfileReport parsed;
  ASSERT_TRUE(obs::read_profile_json(is, &parsed));
  EXPECT_EQ(to_json(parsed), first);
  EXPECT_EQ(parsed.meta.at("n"), "256");
  EXPECT_EQ(parsed.makespan_seconds, r.makespan_seconds);
}

TEST(ProfileJson, RejectsGarbageAndWrongVersion) {
  obs::ProfileReport out;
  std::istringstream garbage("not json at all");
  EXPECT_FALSE(obs::read_profile_json(garbage, &out));
  std::istringstream wrong("{\"profile_version\":99}");
  EXPECT_FALSE(obs::read_profile_json(wrong, &out));
}

TEST(ProfileDeterminism, IdenticalRunsSerializeByteIdentically) {
  EXPECT_EQ(to_json(run_profiled()), to_json(run_profiled()));
}

TEST(ProfileDeterminism, ThreadedRunMatchesSerial) {
  // Virtual time is independent of the host thread count; the report —
  // including every double — must be byte-identical.
  EXPECT_EQ(to_json(run_profiled(1)), to_json(run_profiled(4)));
}

TEST(ProfileGate, SelfComparisonIsClean) {
  const obs::ProfileReport r = run_profiled();
  EXPECT_TRUE(obs::compare_profiles(r, r, 0.0).empty());
}

TEST(ProfileGate, FlagsMakespanAndPhaseDrift) {
  const obs::ProfileReport base = run_profiled();
  obs::ProfileReport slow = base;
  slow.makespan_seconds *= 1.10;
  const auto findings = obs::compare_profiles(base, slow, 0.01);
  EXPECT_FALSE(findings.empty());

  obs::ProfileReport shifted = base;
  shifted.phases.at("recalc").busy_seconds +=
      0.5 * base.makespan_seconds;  // busy-fraction drift, same makespan
  EXPECT_FALSE(obs::compare_profiles(base, shifted, 0.01).empty());
}

}  // namespace
}  // namespace ftla
