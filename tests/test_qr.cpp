// Tests for the QR extension: the Householder substrate
// (geqf2/larft/larfb), the row-checksum-under-left-multiplication
// property, and the fault-tolerant QR driver.
#include <gtest/gtest.h>

#include <tuple>

#include "abft/qr.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "blas/qr.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using fault::FaultSpec;
using fault::FaultType;
using fault::Injector;
using fault::Op;
using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

// ----------------------- substrate -------------------------------------

TEST(Geqf2, ReconstructsViaApplyQ) {
  const int n = 48;
  auto a = test::random_matrix(n, n, 1);
  auto packed = a;
  std::vector<double> tau(n);
  blas::geqf2(packed.view(), tau.data());
  EXPECT_LT(blas::qr_residual(a.view(), packed.view(), tau.data()), 1e-13);
}

TEST(Geqf2, RIsUpperTriangular) {
  const int n = 24;
  auto a = test::random_matrix(n, n, 2);
  std::vector<double> tau(n);
  blas::geqf2(a.view(), tau.data());
  // The "R" part is what sits on/above the diagonal by construction;
  // check Q^T A equals it by applying Q^T to the original.
  // (Indirectly validated by the residual test; here check diag signs
  // are well-defined, i.e. no zero pivots on a random matrix.)
  for (int j = 0; j < n; ++j) EXPECT_NE(a(j, j), 0.0);
}

TEST(Geqf2, OrthogonalityOfQ) {
  const int n = 32;
  auto a = test::random_matrix(n, n, 3);
  auto packed = a;
  std::vector<double> tau(n);
  blas::geqf2(packed.view(), tau.data());
  // Q^T Q = I: apply Q then Q^T to the identity.
  Matrix<double> q(n, n, 0.0);
  for (int i = 0; i < n; ++i) q(i, i) = 1.0;
  blas::apply_q(packed.view(), tau.data(), q.view(), /*transpose=*/false);
  blas::apply_q(packed.view(), tau.data(), q.view(), /*transpose=*/true);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(q(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

class GeqrfSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeqrfSizes, BlockedMatchesUnblocked) {
  const auto [n, nb] = GetParam();
  auto a = test::random_matrix(n, n, 100 + n);
  auto p1 = a;
  auto p2 = a;
  std::vector<double> t1(n), t2(n);
  blas::geqf2(p1.view(), t1.data());
  blas::geqrf(p2.view(), t2.data(), nb);
  EXPECT_MATRIX_NEAR(p1, p2, 1e-10);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(t1[i], t2[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeqrfSizes,
                         ::testing::Values(std::tuple{8, 4},
                                           std::tuple{33, 8},
                                           std::tuple{64, 16},
                                           std::tuple{96, 32}));

TEST(Larfb, MatchesSequentialReflectors) {
  const int m = 40, k = 8, n = 12;
  auto panel = test::random_matrix(m, k, 5);
  std::vector<double> tau(k);
  blas::geqf2(panel.view(), tau.data());
  Matrix<double> t(k, k);
  blas::larft(panel.view(), tau.data(), t.view());

  auto c1 = test::random_matrix(m, n, 6);
  auto c2 = c1;
  blas::larfb_left_t(panel.view(), t.view(), c1.view());
  blas::apply_q(panel.view(), tau.data(), c2.view(), /*transpose=*/true);
  EXPECT_MATRIX_NEAR(c1, c2, 1e-11);
}

TEST(RowChecksums, InvariantUnderBlockReflector) {
  // rchk(M C) = M rchk(C): the key identity the FT-QR relies on.
  const int m = 32, k = 8, n = 10;
  auto panel = test::random_matrix(m, k, 7);
  std::vector<double> tau(k);
  blas::geqf2(panel.view(), tau.data());
  Matrix<double> t(k, k);
  blas::larft(panel.view(), tau.data(), t.view());

  auto c = test::random_matrix(m, n, 8);
  Matrix<double> rchk(m, kChecksumRows);
  encode_block_rows(c.view(), rchk.view());
  blas::larfb_left_t(panel.view(), t.view(), c.view());
  blas::larfb_left_t(panel.view(), t.view(), rchk.view());
  Matrix<double> expect(m, kChecksumRows);
  encode_block_rows(c.view(), expect.view());
  EXPECT_MATRIX_NEAR(rchk, expect, 1e-10);
}

// ----------------------- the driver ------------------------------------

struct QrOutcome {
  CholeskyResult res;
  double residual = 0.0;
};

QrOutcome run_qr(Variant variant, std::vector<FaultSpec> plan, int n = 96,
                 int k_interval = 1) {
  auto a0 = test::random_matrix(n, n, 77);
  auto a = a0;
  std::vector<double> tau;
  Machine m(small_rig(), ExecutionMode::Numeric);
  QrOptions opt;
  opt.variant = variant;
  opt.verify_interval = k_interval;
  const bool has_faults = !plan.empty();
  Injector inj(std::move(plan));
  QrOutcome out;
  out.res = qr(m, &a, &tau, n, opt, has_faults ? &inj : nullptr);
  if (out.res.success) {
    out.residual = blas::qr_residual(a0.view(), a.view(), tau.data());
  }
  return out;
}

TEST(QrDriver, FaultFreeMatchesReference) {
  const int n = 96;
  auto a0 = test::random_matrix(n, n, 77);
  auto a = a0;
  std::vector<double> tau;
  Machine m(small_rig(), ExecutionMode::Numeric);
  QrOptions opt;
  auto res = qr(m, &a, &tau, n, opt);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(res.errors_detected, 0) << "false positive";
  auto expect = a0;
  std::vector<double> tau_ref(n);
  blas::geqrf(expect.view(), tau_ref.data(), 16);
  EXPECT_MATRIX_NEAR(a, expect, 1e-9);
}

TEST(QrDriver, NoFtSkipsVerification) {
  auto out = run_qr(Variant::NoFt, {});
  ASSERT_TRUE(out.res.success);
  EXPECT_EQ(out.res.verified.total(), 0);
  EXPECT_LT(out.residual, 1e-12);
}

class QrSizes : public ::testing::TestWithParam<int> {};

TEST_P(QrSizes, ArbitraryShapes) {
  const int n = GetParam();
  auto out = run_qr(Variant::EnhancedOnline, {}, n);
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_LT(out.residual, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrSizes,
                         ::testing::Values(16, 17, 50, 96, 31));

TEST(QrFaults, StorageErrorInPanelInputCorrected) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Potf2;
  s.iteration = 2;
  s.block_row = 3;
  s.block_col = 2;
  s.elem_row = 5;
  s.elem_col = 4;
  s.bits = {20, 44, 54};
  auto out = run_qr(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(QrFaults, StorageErrorInReflectorCaughtBeforeTrailingRead) {
  // Corrupt V after the panel returned to device memory: the always-on
  // pre-LARFB verification must repair it, or the trailing update would
  // be consistently wrong (invisible to row checksums).
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Trsm;  // fires before the V/T staging read
  s.iteration = 2;
  s.block_row = 4;
  s.block_col = 2;
  s.elem_row = 3;
  s.elem_col = 6;
  s.bits = {21, 45, 55};
  auto out = run_qr(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(QrFaults, ComputingErrorInTrailingUpdateCorrected) {
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = 1;
  s.block_row = 3;
  s.block_col = 4;
  s.elem_row = 2;
  s.elem_col = 3;
  s.magnitude = 1e5;
  auto out = run_qr(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_EQ(out.res.reruns, 0);
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(QrFaults, StorageErrorOnFinishedRCaughtByFinalSweep) {
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 4;
  s.block_row = 0;  // R block finished at iteration 0
  s.block_col = 2;
  s.elem_row = 1;
  s.elem_col = 2;
  s.bits = {19, 47, 53};
  auto out = run_qr(Variant::EnhancedOnline, {s});
  ASSERT_TRUE(out.res.success) << out.res.note;
  EXPECT_GE(out.res.errors_corrected, 1);
  EXPECT_LT(out.residual, 1e-6);
}

TEST(QrDriver, TimingOnlyParity) {
  const int n = 96;
  QrOptions opt;
  auto a = test::random_matrix(n, n, 77);
  std::vector<double> tau;
  Machine m1(small_rig(), ExecutionMode::Numeric);
  auto r1 = qr(m1, &a, &tau, n, opt);
  Machine m2(small_rig(), ExecutionMode::TimingOnly);
  auto r2 = qr(m2, nullptr, nullptr, n, opt);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_NEAR(r1.seconds, r2.seconds, 1e-9 * std::max(1.0, r1.seconds));
  EXPECT_EQ(r1.verified.total(), r2.verified.total());
}

TEST(QrDriver, OverheadModestAtPaperScale) {
  const int n = 10240;
  const auto profile = sim::bulldozer64();
  QrOptions noft;
  noft.variant = Variant::NoFt;
  QrOptions enh;
  enh.variant = Variant::EnhancedOnline;
  enh.verify_interval = 5;
  Machine m1(profile, ExecutionMode::TimingOnly);
  const double t0 = qr(m1, nullptr, nullptr, n, noft).seconds;
  Machine m2(profile, ExecutionMode::TimingOnly);
  const double t1 = qr(m2, nullptr, nullptr, n, enh).seconds;
  EXPECT_GT(t1, t0);
  EXPECT_LT(t1 / t0 - 1.0, 0.25);
}

}  // namespace
}  // namespace ftla::abft
