// Randomized stress tests for the discrete-event engine: global
// invariants of arbitrary stream/event/kernel/transfer programs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"

namespace ftla::sim {
namespace {

struct Issued {
  int lane = 0;
  double start = 0.0;
  double end = 0.0;
  int units = 0;
};

class SimStress : public ::testing::TestWithParam<int> {};

TEST_P(SimStress, RandomProgramsRespectGlobalInvariants) {
  Rng rng(9000 + GetParam());
  MachineProfile p = test_rig();
  p.sm_count = rng.uniform_int(2, 8);
  p.gpu_peak_gflops = 10.0 * p.sm_count;
  p.coexec_spare_units = rng.uniform_int(0, 2);
  p.max_concurrent_kernels = rng.uniform_int(2, 8);
  Machine m(p, ExecutionMode::TimingOnly);
  m.set_trace_enabled(true);

  std::vector<StreamId> streams{m.default_stream()};
  for (int i = 0; i < rng.uniform_int(1, 5); ++i)
    streams.push_back(m.create_stream());
  std::vector<EventId> events;
  auto buf = m.alloc(1 << 16);

  double issued_work_seconds = 0.0;
  const int ops = 120;
  for (int i = 0; i < ops; ++i) {
    const StreamId s = streams[rng.uniform_int(0, streams.size() - 1)];
    switch (rng.uniform_int(0, 5)) {
      case 0:
      case 1: {  // kernel of random class/size
        const KernelClass classes[] = {KernelClass::Blas3,
                                       KernelClass::Blas3Skinny,
                                       KernelClass::Blas2,
                                       KernelClass::Compare};
        KernelDesc d{"k", classes[rng.uniform_int(0, 3)],
                     static_cast<std::int64_t>(rng.uniform(1e6, 1e9)), 0};
        m.launch(s, d, {});
        break;
      }
      case 2:
        m.memcpy_h2d(buf, 0, nullptr, rng.uniform_int(1, 1 << 14), s);
        break;
      case 3:
        m.memcpy_d2h(nullptr, buf, 0, rng.uniform_int(1, 1 << 14), s);
        break;
      case 4:
        events.push_back(m.record_event(s));
        break;
      case 5:
        if (!events.empty()) {
          m.stream_wait_event(
              s, events[rng.uniform_int(0, events.size() - 1)]);
        } else {
          m.host_compute(KernelDesc{"h", KernelClass::HostChecksum,
                                    static_cast<std::int64_t>(
                                        rng.uniform(1e5, 1e8)),
                                    0},
                         {});
        }
        break;
    }
    (void)issued_work_seconds;
  }
  m.sync_all();

  const double span = m.makespan();
  EXPECT_TRUE(std::isfinite(span));
  EXPECT_GE(span, 0.0);
  EXPECT_DOUBLE_EQ(m.host_now(), span) << "sync_all joins everything";

  // Trace invariants: every op within [0, makespan], non-negative
  // durations, per-lane FIFO (stream ops never overlap within a lane),
  // and SM-pool capacity never exceeded at any event boundary.
  const auto& trace = m.trace();
  std::vector<Issued> gpu_ops;
  std::map<int, double> lane_last_end;
  for (const auto& r : trace) {
    EXPECT_LE(r.start, r.end);
    EXPECT_GE(r.start, 0.0);
    EXPECT_LE(r.end, span + 1e-12);
    if (r.lane >= 0) {
      // Stream lanes are FIFO: each op starts at/after the previous
      // op's end in that stream.
      auto it = lane_last_end.find(r.lane);
      if (it != lane_last_end.end()) {
        EXPECT_GE(r.start, it->second - 1e-12)
            << "stream " << r.lane << " reordered";
      }
      lane_last_end[r.lane] = r.end;
      if (r.units > 0) gpu_ops.push_back({r.lane, r.start, r.end, r.units});
    }
  }
  const int capacity = p.sm_count + p.coexec_spare_units;
  for (const auto& probe : gpu_ops) {
    const double at = probe.start + 1e-12;
    int usage = 0;
    for (const auto& op : gpu_ops) {
      if (op.start <= at && at < op.end) usage += std::min(op.units, capacity);
    }
    EXPECT_LE(usage, capacity) << "SM pool oversubscribed";
  }

  // Utilization is a sane fraction.
  EXPECT_GE(m.gpu_utilization(), 0.0);
  EXPECT_LE(m.gpu_utilization(), 1.0 + 1e-9 * capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimStress, ::testing::Range(0, 25));

TEST(SimStress, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine m(test_rig(), ExecutionMode::TimingOnly);
    auto s1 = m.create_stream();
    auto s2 = m.create_stream();
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
      const StreamId s = rng.next_double() < 0.5 ? s1 : s2;
      m.launch(s, KernelDesc{"k", KernelClass::Blas2,
                             static_cast<std::int64_t>(rng.uniform(1e6, 1e8)),
                             0},
               {});
    }
    m.sync_all();
    return m.host_now();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SimStress, MakespanAtLeastBusiestLane) {
  Machine m(test_rig(), ExecutionMode::TimingOnly);
  m.set_trace_enabled(true);
  auto s1 = m.create_stream();
  for (int i = 0; i < 10; ++i) {
    m.launch(s1, KernelDesc{"k", KernelClass::Blas3, 4'000'000'000LL, 0}, {});
  }
  m.sync_all();
  double busy = 0.0;
  for (const auto& r : m.trace()) busy += r.end - r.start;
  EXPECT_GE(m.makespan() + 1e-12, busy) << "one FIFO lane: span == sum";
  EXPECT_NEAR(m.makespan(), busy, 1e-9);
}

}  // namespace
}  // namespace ftla::sim
