// Tests for the flight recorder: bundle round-trips in process, and —
// the property the recorder exists for — real CLI processes dying with
// each nonzero contract code (1 I/O, 2 usage, 3 fail-stop, 4 SDC)
// leave behind a parseable postmortem bundle that reconciles with the
// metrics report. The exit-3 case kills a campaign mid-flight with
// --abort-after, the "run died partway" acceptance scenario.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/exit_codes.hpp"
#include "fault/campaign.hpp"
#include "obs/event_sink.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"

namespace ftla::obs {
namespace {

Event note_at(double t, const std::string& name) {
  Event e;
  e.kind = EventKind::Note;
  e.time = t;
  e.name = name;
  return e;
}

// ------------------------------ in-process ----------------------------

TEST(FlightRecorder, BundleRoundTripsAndReconciles) {
  RingBufferSink sink;
  MetricsRegistry metrics;
  SpanStore spans;
  sink.post(note_at(0.25, "first"));
  sink.post(note_at(0.75, "second"));
  metrics.counter("test.count") = 42;
  metrics.set_gauge("test.gauge", 1.5);

  FlightRecorder rec;
  rec.attach_events(&sink);
  rec.attach_metrics(&metrics);
  rec.attach_spans(&spans);
  rec.set_meta("tool", "unit");
  rec.note("started");
  rec.note("failed");

  std::ostringstream os;
  rec.write_bundle(os, common::kExitFailStop, "because");
  std::istringstream is(os.str());
  FlightBundle b;
  ASSERT_TRUE(read_flight_bundle(is, &b));
  EXPECT_EQ(b.flight_version, 1);
  EXPECT_EQ(b.exit_code, common::kExitFailStop);
  EXPECT_EQ(b.reason, "because");
  EXPECT_EQ(b.meta.at("tool"), "unit");
  ASSERT_EQ(b.breadcrumbs.size(), 2u);
  EXPECT_EQ(b.breadcrumbs[1], "failed");
  EXPECT_EQ(b.counters.at("test.count"), 42);
  EXPECT_DOUBLE_EQ(b.gauges.at("test.gauge"), 1.5);
  EXPECT_EQ(b.events_posted, 2);
  ASSERT_EQ(b.events.size(), 2u);
  EXPECT_EQ(b.events[0].name, "first");
  EXPECT_DOUBLE_EQ(b.events[1].time, 0.75);
}

TEST(FlightRecorder, TailIsBoundedToNewestEvents) {
  RingBufferSink sink;
  FlightRecorder rec;
  rec.attach_events(&sink);
  rec.set_event_tail(3);
  for (int i = 0; i < 10; ++i) {
    sink.post(note_at(i * 0.1, "e" + std::to_string(i)));
  }
  std::ostringstream os;
  rec.write_bundle(os, 1, "x");
  std::istringstream is(os.str());
  FlightBundle b;
  ASSERT_TRUE(read_flight_bundle(is, &b));
  EXPECT_EQ(b.events_posted, 10);
  ASSERT_EQ(b.events.size(), 3u);
  EXPECT_EQ(b.events.front().name, "e7");
  EXPECT_EQ(b.events.back().name, "e9");
}

TEST(FlightRecorder, DumpIsByteStable) {
  RingBufferSink sink;
  MetricsRegistry metrics;
  sink.post(note_at(0.5, "only"));
  metrics.counter("test.count") = 7;
  FlightRecorder rec;
  rec.attach_events(&sink);
  rec.attach_metrics(&metrics);
  std::ostringstream a;
  std::ostringstream b;
  rec.write_bundle(a, 3, "r");
  rec.write_bundle(b, 3, "r");
  EXPECT_EQ(a.str(), b.str());
}

// ------------------------------ CLI matrix ----------------------------
//
// Each case spawns the real binary (paths injected by CMake), asserts
// the contract exit code, and validates the dumped bundle.

int run_cmd(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "ftla_postmortem_" + name;
}

TEST(CliPostmortem, IoErrorDumpsBundleViaEnv) {
  const std::string bundle = tmp_path("io.json");
  std::remove(bundle.c_str());
  const int code = run_cmd("FTLA_POSTMORTEM=" + bundle + " " +
                           FTLA_CAMPAIGN_BIN +
                           " --replay /nonexistent/plan.txt 2>/dev/null");
  EXPECT_EQ(code, common::kExitIoError);
  FlightBundle b;
  ASSERT_TRUE(read_flight_bundle_file(bundle, &b));
  EXPECT_EQ(b.exit_code, common::kExitIoError);
  EXPECT_EQ(b.meta.at("tool"), "fault_campaign_cli");
}

TEST(CliPostmortem, UsageErrorDumpsBundle) {
  const std::string bundle = tmp_path("usage.json");
  std::remove(bundle.c_str());
  const int code = run_cmd(std::string(FTLA_CLI_BIN) + " --postmortem-out " +
                           bundle + " --bogus-flag 2>/dev/null");
  EXPECT_EQ(code, common::kExitUsage);
  FlightBundle b;
  ASSERT_TRUE(read_flight_bundle_file(bundle, &b));
  EXPECT_EQ(b.exit_code, common::kExitUsage);
  EXPECT_NE(b.reason.find("usage error"), std::string::npos);
}

TEST(CliPostmortem, AbortedCampaignBundleReconcilesWithReport) {
  // The acceptance scenario: a campaign is killed mid-flight
  // (--abort-after), exits fail-stop, and the flight-recorder bundle
  // must agree with the metrics report about how far it got.
  const std::string bundle = tmp_path("abort.json");
  const std::string report = tmp_path("abort_report.json");
  std::remove(bundle.c_str());
  std::remove(report.c_str());
  const int code = run_cmd(std::string(FTLA_CAMPAIGN_BIN) +
                           " --scenarios 12 --abort-after 3 --quiet" +
                           " --report " + report + " --postmortem-out " +
                           bundle + " >/dev/null");
  EXPECT_EQ(code, common::kExitFailStop);

  FlightBundle b;
  ASSERT_TRUE(read_flight_bundle_file(bundle, &b));
  EXPECT_EQ(b.exit_code, common::kExitFailStop);
  EXPECT_NE(b.reason.find("abort"), std::string::npos);
  EXPECT_EQ(b.meta.at("abort_after"), "3");
  ASSERT_FALSE(b.breadcrumbs.empty());
  EXPECT_EQ(b.breadcrumbs.back(), "campaign aborted early");

  MetricsDoc doc;
  ASSERT_TRUE(read_metrics_json_file(report, &doc));
  // Both artifacts agree the campaign stopped after exactly 3 scenarios.
  EXPECT_EQ(b.counters.at("campaign.scenarios"), 3);
  EXPECT_EQ(doc.counters.at("campaign.scenarios"), 3);
  // Every campaign counter in the report appears identically in the
  // bundle: the recorder snapshots the same registry the report is
  // written from.
  for (const auto& [name, value] : doc.counters) {
    ASSERT_TRUE(b.counters.count(name)) << name;
    EXPECT_EQ(b.counters.at(name), value) << name;
  }
}

TEST(CliPostmortem, SdcReplayDumpsBundleViaEnv) {
  // A deterministic SDC: unguarded (NoFt) Cholesky with one planned
  // storage bit-flip nothing detects — small enough to keep the matrix
  // positive definite (the run "succeeds") but far above the oracle's
  // residual threshold. Verified in process first, then replayed
  // through the CLI, which must exit 4 and dump the bundle.
  fault::Scenario sc;
  sc.algo = fault::Algo::Cholesky;
  sc.variant = abft::Variant::NoFt;
  sc.recovery = abft::Recovery::Rerun;
  sc.n = 64;
  sc.block = 16;
  fault::FaultSpec spec;
  spec.type = fault::FaultType::Storage;
  spec.iteration = 1;
  spec.op = fault::Op::Gemm;
  spec.bits = {46};
  sc.plan.push_back(spec);
  const fault::ScenarioResult res = fault::run_scenario(sc);
  ASSERT_EQ(res.verdict, fault::Verdict::Sdc)
      << "scenario no longer yields sdc; residual " << res.residual;

  const std::string plan = tmp_path("sdc_plan.txt");
  {
    std::ofstream out(plan);
    out << fault::format_scenario(sc);
  }
  const std::string bundle = tmp_path("sdc.json");
  std::remove(bundle.c_str());
  const int code =
      run_cmd("FTLA_POSTMORTEM=" + bundle + " " + FTLA_CAMPAIGN_BIN +
              " --replay " + plan + " >/dev/null");
  EXPECT_EQ(code, common::kExitSdc);
  FlightBundle b;
  ASSERT_TRUE(read_flight_bundle_file(bundle, &b));
  EXPECT_EQ(b.exit_code, common::kExitSdc);
  EXPECT_NE(b.reason.find("sdc"), std::string::npos);
}

TEST(CliPostmortem, SuccessfulRunWritesBundleOnlyWhenAsked) {
  // --postmortem-out dumps on success too (exit_code 0); the env-var
  // path must NOT fire for a clean exit.
  const std::string asked = tmp_path("ok.json");
  const std::string env_only = tmp_path("ok_env.json");
  std::remove(asked.c_str());
  std::remove(env_only.c_str());
  int code = run_cmd(std::string(FTLA_CLI_BIN) +
                     " --machine test --n 32 --postmortem-out " + asked +
                     " >/dev/null");
  EXPECT_EQ(code, common::kExitSuccess);
  FlightBundle b;
  ASSERT_TRUE(read_flight_bundle_file(asked, &b));
  EXPECT_EQ(b.exit_code, common::kExitSuccess);
  EXPECT_EQ(b.reason, "success");

  code = run_cmd("FTLA_POSTMORTEM=" + env_only + " " + FTLA_CLI_BIN +
                 " --machine test --n 32 >/dev/null");
  EXPECT_EQ(code, common::kExitSuccess);
  std::ifstream probe(env_only);
  EXPECT_FALSE(probe.good());
}

}  // namespace
}  // namespace ftla::obs
