// Tests for the dynamic footprint sanitizer (src/runtime/sanitizer.*):
// containment and ordering checks on hand-built graphs, the scratch
// read-back idiom, deterministic actionable reports, thread-safe
// recording under the wave-parallel host executor, and the drivers'
// FTLA_DAG_SANITIZE opt-in staying clean with faults armed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "abft/cholesky.hpp"
#include "abft/lu.hpp"
#include "abft/qr.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "runtime/executor.hpp"
#include "runtime/graph.hpp"
#include "runtime/sanitizer.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::runtime {
namespace {

using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

TaskOptions inline_task() {
  TaskOptions o;
  o.where = Where::Inline;
  return o;
}

/// RAII switch for the drivers' FTLA_DAG_SANITIZE opt-in.
class SanitizeEnvGuard {
 public:
  explicit SanitizeEnvGuard(const char* value = "1") {
    ::setenv("FTLA_DAG_SANITIZE", value, 1);
  }
  ~SanitizeEnvGuard() { ::unsetenv("FTLA_DAG_SANITIZE"); }
};

// ------------------------- opt-in switch -------------------------------

TEST(DagSanitizer, EnvSwitchSemantics) {
  {
    SanitizeEnvGuard on("1");
    EXPECT_TRUE(sanitize_env_enabled());
  }
  {
    SanitizeEnvGuard zero("0");
    EXPECT_FALSE(sanitize_env_enabled());
  }
  {
    SanitizeEnvGuard empty("");
    EXPECT_FALSE(sanitize_env_enabled());
  }
  ::unsetenv("FTLA_DAG_SANITIZE");
  EXPECT_FALSE(sanitize_env_enabled());
}

// ------------------------ containment checks ---------------------------

TEST(DagSanitizer, CleanInstrumentedGraphHasNoViolations) {
  TaskGraph g;
  const TileKey a{0, 0, 0};
  const TileKey b{0, 0, 1};
  g.add_task("produce", {write(a)},
             [a](const TaskContext& c) { c.tiles.write(a); }, inline_task());
  g.add_task("consume", {read(a), write(b)},
             [a, b](const TaskContext& c) {
               c.tiles.read(a);
               c.tiles.write(b);
             },
             inline_task());
  AccessTracker t;
  g.set_access_tracker(&t);
  Machine m(small_rig(), ExecutionMode::Numeric);
  run_on_streams(g, m);
  EXPECT_TRUE(t.clean());
  EXPECT_EQ(t.accesses(), 3);
  EXPECT_TRUE(t.report(g).empty());
  EXPECT_EQ(t.schedule_prefix(), (std::vector<int>{0, 1}));
}

// The required meta-test: a task deliberately under-declares its
// footprint; the sanitizer must fire with a deterministic, actionable
// report.
TEST(DagSanitizer, UnderDeclaredFootprintFiresWithDeterministicReport) {
  const TileKey a{0, 0, 0};
  const TileKey b{0, 1, 0};
  const auto run = [&](std::string* report) {
    TaskGraph g;
    g.add_task("init", {write(a)},
               [a](const TaskContext& c) { c.tiles.write(a); },
               inline_task());
    // Deliberately under-declared: the body also reads `a`, so the
    // graph never inferred the RAW edge init -> stencil.
    g.add_task("stencil", {write(b)},
               [a, b](const TaskContext& c) {
                 c.tiles.read(a);
                 c.tiles.write(b);
               },
               inline_task());
    AccessTracker t;
    g.set_access_tracker(&t);
    Machine m(small_rig(), ExecutionMode::Numeric);
    run_on_streams(g, m);
    EXPECT_FALSE(t.clean());
    *report = t.report(g);
    // The missing declaration produces both findings: the read is
    // outside the footprint, and without it the graph never inferred
    // the init -> stencil edge, so the pair is also unordered.
    const std::vector<Violation> vs = t.violations();
    ASSERT_EQ(vs.size(), 2u);
    EXPECT_EQ(vs[0].kind, ViolationKind::UndeclaredRead);
    EXPECT_EQ(vs[0].task, 1);
    EXPECT_TRUE(vs[0].tile == a);
    EXPECT_EQ(vs[1].kind, ViolationKind::Race);
    EXPECT_EQ(std::min(vs[1].task, vs[1].other), 0);
    EXPECT_EQ(std::max(vs[1].task, vs[1].other), 1);
    EXPECT_TRUE(vs[1].tile == a);
  };
  std::string first;
  std::string second;
  run(&first);
  run(&second);
  EXPECT_EQ(first, second) << first;
  // Actionable: the report names the offending task, the tile, the
  // declared footprint, and the witness schedule prefix.
  EXPECT_NE(first.find("undeclared-read"), std::string::npos) << first;
  EXPECT_NE(first.find("task 1 'stencil'"), std::string::npos) << first;
  EXPECT_NE(first.find("tile(0:0,0)"), std::string::npos) << first;
  EXPECT_NE(first.find("declared: write tile(0:1,0)"), std::string::npos)
      << first;
  EXPECT_NE(first.find("init -> stencil"), std::string::npos) << first;
}

TEST(DagSanitizer, UndeclaredWriteCaught) {
  TaskGraph g;
  const TileKey a{0, 0, 0};
  const TileKey b{1, 0, 0};
  g.add_task("sloppy", {read(a)},
             [a, b](const TaskContext& c) {
               c.tiles.read(a);
               c.tiles.write(b);  // not declared
             },
             inline_task());
  AccessTracker t;
  g.set_access_tracker(&t);
  Machine m(small_rig(), ExecutionMode::Numeric);
  run_on_streams(g, m);
  const std::vector<Violation> vs = t.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, ViolationKind::UndeclaredWrite);
  EXPECT_EQ(vs[0].task, 0);
  EXPECT_TRUE(vs[0].tile == b);
  EXPECT_NE(t.report(g).find("undeclared-write"), std::string::npos);
}

TEST(DagSanitizer, ScratchReadBackOfOwnWriteIsAllowed) {
  TaskGraph g;
  const TileKey s{3, 0, 0};
  g.add_task("scratch", {write(s)},
             [s](const TaskContext& c) {
               c.tiles.write(s);
               c.tiles.read(s);  // reading back one's own write is fine
             },
             inline_task());
  AccessTracker t;
  g.set_access_tracker(&t);
  Machine m(small_rig(), ExecutionMode::Numeric);
  run_on_streams(g, m);
  EXPECT_TRUE(t.clean()) << t.report(g);
}

TEST(DagSanitizer, ReadBeforeOwnWriteOnWriteTileIsFlagged) {
  TaskGraph g;
  const TileKey s{3, 0, 0};
  g.add_task("premature", {write(s)},
             [s](const TaskContext& c) {
               c.tiles.read(s);  // nothing of this task's is there yet
               c.tiles.write(s);
             },
             inline_task());
  AccessTracker t;
  g.set_access_tracker(&t);
  Machine m(small_rig(), ExecutionMode::Numeric);
  run_on_streams(g, m);
  const std::vector<Violation> vs = t.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, ViolationKind::UndeclaredRead);
}

// -------------------------- ordering checks ----------------------------

TEST(DagSanitizer, HiddenConflictFlaggedAsRace) {
  TaskGraph g;
  const TileKey mine{0, 0, 0};
  const TileKey yours{0, 1, 0};
  const TileKey shared{2, 0, 0};
  // Disjoint declared footprints => no inferred edge; both bodies also
  // write a shared tile they never declared. That is a race no schedule
  // can be blamed for.
  g.add_task("left", {write(mine)},
             [mine, shared](const TaskContext& c) {
               c.tiles.write(mine);
               c.tiles.write(shared);
             },
             inline_task());
  g.add_task("right", {write(yours)},
             [yours, shared](const TaskContext& c) {
               c.tiles.write(yours);
               c.tiles.write(shared);
             },
             inline_task());
  AccessTracker t;
  g.set_access_tracker(&t);
  Machine m(small_rig(), ExecutionMode::Numeric);
  run_on_streams(g, m);
  int races = 0;
  int undeclared = 0;
  for (const Violation& v : t.violations()) {
    if (v.kind == ViolationKind::Race) {
      ++races;
      EXPECT_EQ(std::min(v.task, v.other), 0);
      EXPECT_EQ(std::max(v.task, v.other), 1);
      EXPECT_TRUE(v.tile == shared);
    } else {
      EXPECT_EQ(v.kind, ViolationKind::UndeclaredWrite);
      ++undeclared;
    }
  }
  EXPECT_EQ(races, 1);  // deduplicated per (pair, tile)
  EXPECT_EQ(undeclared, 2);
  const std::string report = t.report(g);
  EXPECT_NE(report.find("[race]"), std::string::npos) << report;
  EXPECT_NE(report.find("no happens-before order"), std::string::npos)
      << report;
}

TEST(DagSanitizer, DeclaredConflictsAreOrderedAndClean) {
  // A declared RW chain on one tile: every conflicting pair is ordered
  // by the inferred edges, so the order check stays quiet.
  TaskGraph g;
  const TileKey acc{0, 0, 0};
  for (int i = 0; i < 5; ++i) {
    g.add_task("step" + std::to_string(i), {rw(acc)},
               [acc](const TaskContext& c) { c.tiles.rw(acc); },
               inline_task());
  }
  AccessTracker t;
  g.set_access_tracker(&t);
  Machine m(small_rig(), ExecutionMode::Numeric);
  run_on_streams(g, m);
  EXPECT_TRUE(t.clean()) << t.report(g);
  EXPECT_EQ(t.accesses(), 5);
}

// --------------------- host executor integration -----------------------

TEST(DagSanitizer, HostExecutorRecordsAcrossWorkers) {
  // 16 mutually independent tasks run wave-parallel on the pool; each
  // under-declares the same read. Recording must be thread-safe and the
  // violation set exact regardless of interleaving.
  TaskGraph g;
  const TileKey hidden{9, 0, 0};
  for (int i = 0; i < 16; ++i) {
    const TileKey own{0, i, 0};
    g.add_task("w" + std::to_string(i), {write(own)},
               [own, hidden](const TaskContext& c) {
                 c.tiles.write(own);
                 c.tiles.read(hidden);  // undeclared (read/read: no race)
               });
  }
  AccessTracker t;
  g.set_access_tracker(&t);
  run_on_host(g);
  const std::vector<Violation> vs = t.violations();
  EXPECT_EQ(vs.size(), 16u);
  for (const Violation& v : vs) {
    EXPECT_EQ(v.kind, ViolationKind::UndeclaredRead);
    EXPECT_TRUE(v.tile == hidden);
  }
  EXPECT_EQ(t.accesses(), 32);
  EXPECT_EQ(t.schedule_prefix().size(), 16u);
}

TEST(DagSanitizer, BeginRunResetsStateBetweenExecutions) {
  AccessTracker t;
  {
    TaskGraph dirty;
    const TileKey a{0, 0, 0};
    dirty.add_task("offender", {},
                   [a](const TaskContext& c) { c.tiles.write(a); },
                   inline_task());
    dirty.set_access_tracker(&t);
    Machine m(small_rig(), ExecutionMode::Numeric);
    run_on_streams(dirty, m);
    EXPECT_FALSE(t.clean());
  }
  {
    TaskGraph clean;
    const TileKey a{0, 0, 0};
    clean.add_task("fine", {write(a)},
                   [a](const TaskContext& c) { c.tiles.write(a); },
                   inline_task());
    clean.set_access_tracker(&t);
    Machine m(small_rig(), ExecutionMode::Numeric);
    run_on_streams(clean, m);
    EXPECT_TRUE(t.clean()) << t.report(clean);
    EXPECT_EQ(t.accesses(), 1);
  }
}

// ----------------------- driver integration ----------------------------
//
// The three DAG drivers arm the sanitizer from FTLA_DAG_SANITIZE and
// throw with the report if any body strays from its declared footprint.
// With faults armed the verify/correction paths execute too — the whole
// instrumented surface must come back clean.

TEST(DagSanitizerDrivers, CholeskyDagCleanWithFaultsArmed) {
  SanitizeEnvGuard env;
  const int n = 96;
  const auto a0 = test::random_spd(n, 4242);
  auto a = a0;
  fault::FaultSpec s;
  s.type = fault::FaultType::Storage;
  s.op = fault::Op::Syrk;
  s.iteration = 3;
  s.block_row = 3;
  s.block_col = 2;
  s.elem_row = 2;
  s.elem_col = 7;
  s.bits = {20, 44, 54};
  fault::Injector inj({s});
  Machine m(small_rig(), ExecutionMode::Numeric);
  abft::CholeskyOptions opt;
  opt.variant = abft::Variant::EnhancedOnline;
  opt.runtime = abft::RuntimeMode::Dag;
  obs::MetricsRegistry reg;
  opt.metrics = &reg;
  const abft::CholeskyResult res = abft::cholesky(m, &a, n, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(inj.fired_count(), 1);
  EXPECT_GE(res.errors_corrected, 1);
  EXPECT_GT(reg.counter("runtime.sanitize.accesses"), 0);
  EXPECT_EQ(reg.counter("runtime.sanitize.violations"), 0);
}

TEST(DagSanitizerDrivers, LuDagCleanWithFaultsArmed) {
  SanitizeEnvGuard env;
  const int n = 96;
  const auto a0 = test::random_spd(n, 2024);
  auto a = a0;
  fault::FaultSpec s;
  s.type = fault::FaultType::Storage;
  s.op = fault::Op::Potf2;
  s.iteration = 2;
  s.block_row = 3;
  s.block_col = 2;
  s.elem_row = 4;
  s.elem_col = 9;
  s.bits = {20, 44, 54};
  fault::Injector inj({s});
  Machine m(small_rig(), ExecutionMode::Numeric);
  abft::LuOptions opt;
  opt.variant = abft::Variant::EnhancedOnline;
  opt.runtime = abft::RuntimeMode::Dag;
  const abft::CholeskyResult res = abft::lu(m, &a, n, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_GE(inj.fired_count(), 1);
  EXPECT_GE(res.errors_corrected, 1);
}

TEST(DagSanitizerDrivers, QrDagCleanWithFaultsArmed) {
  SanitizeEnvGuard env;
  const int n = 96;
  const auto a0 = test::random_matrix(n, n, 808);
  auto a = a0;
  std::vector<double> tau;
  fault::FaultSpec s;
  s.type = fault::FaultType::Computing;
  s.op = fault::Op::Gemm;
  s.iteration = 1;
  s.block_row = 3;
  s.block_col = 4;
  s.elem_row = 2;
  s.elem_col = 3;
  s.magnitude = 1e5;
  fault::Injector inj({s});
  Machine m(small_rig(), ExecutionMode::Numeric);
  abft::QrOptions opt;
  opt.variant = abft::Variant::EnhancedOnline;
  opt.runtime = abft::RuntimeMode::Dag;
  const abft::CholeskyResult res = abft::qr(m, &a, &tau, n, opt, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_GE(inj.fired_count(), 1);
  EXPECT_GE(res.errors_corrected, 1);
}

}  // namespace
}  // namespace ftla::runtime
