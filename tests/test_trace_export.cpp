// Tests for the trace exporter: Chrome-tracing JSON structure and the
// per-lane ASCII summary.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/trace_export.hpp"

namespace ftla::sim {
namespace {

Machine traced_machine() {
  Machine m(test_rig(), ExecutionMode::Numeric);
  m.set_trace_enabled(true);
  auto buf = m.alloc(64);
  std::vector<double> host(64, 1.0);
  m.memcpy_h2d(buf, 0, host.data(), 64, 0);
  m.launch(0, KernelDesc{"work", KernelClass::Blas3, 40'000'000'000LL, 0},
           {});
  m.host_compute(KernelDesc{"hwork", KernelClass::HostPotf2,
                            10'000'000'000LL, 0},
                 {});
  m.memcpy_d2h(host.data(), buf, 0, 64, 0);
  m.sync_all();
  return m;
}

TEST(ChromeTrace, EmitsValidEventSkeleton) {
  auto m = traced_machine();
  std::ostringstream os;
  write_chrome_trace(m, os);
  const std::string s = os.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '}');
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"hwork\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"h2d\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  // Lane metadata present.
  EXPECT_NE(s.find("host CPU"), std::string::npos);
  EXPECT_NE(s.find("H2D engine"), std::string::npos);
}

TEST(ChromeTrace, BalancedBracesAndQuotes) {
  auto m = traced_machine();
  std::ostringstream os;
  write_chrome_trace(m, os);
  const std::string s = os.str();
  int depth = 0;
  int quotes = 0;
  for (char c : s) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '"') ++quotes;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);
}

TEST(ChromeTrace, FileRoundTrip) {
  auto m = traced_machine();
  const std::string path = ::testing::TempDir() + "/ftla_trace.json";
  ASSERT_TRUE(write_chrome_trace_file(m, path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
}

TEST(ChromeTrace, WriteToBadPathFails) {
  auto m = traced_machine();
  EXPECT_FALSE(write_chrome_trace_file(m, "/nonexistent-dir/x/y.json"));
}

TEST(TraceSummary, ReportsEveryLane) {
  auto m = traced_machine();
  std::ostringstream os;
  print_trace_summary(m, os, 40);
  const std::string s = os.str();
  EXPECT_NE(s.find("host CPU"), std::string::npos);
  EXPECT_NE(s.find("stream 0"), std::string::npos);
  EXPECT_NE(s.find("H2D engine"), std::string::npos);
  EXPECT_NE(s.find("D2H engine"), std::string::npos);
  EXPECT_NE(s.find("makespan"), std::string::npos);
  // Occupancy strips are the requested width.
  const auto pos = s.find('[');
  ASSERT_NE(pos, std::string::npos);
  const auto end = s.find(']', pos);
  EXPECT_EQ(end - pos - 1, 40u);
}

TEST(TraceSummary, EmptyTraceIsSafe) {
  Machine m(test_rig(), ExecutionMode::Numeric);
  m.set_trace_enabled(true);
  std::ostringstream os;
  print_trace_summary(m, os);
  EXPECT_NE(os.str().find("0 ops"), std::string::npos);
}

TEST(Trace, DisabledByDefault) {
  Machine m(test_rig(), ExecutionMode::Numeric);
  m.launch(0, KernelDesc{"k", KernelClass::Blas3, 1000, 0}, {});
  EXPECT_TRUE(m.trace().empty());
}

TEST(TraceCap, DropsBeyondLimitAndCounts) {
  Machine m(test_rig(), ExecutionMode::Numeric);
  m.set_trace_enabled(true);
  m.set_trace_limit(4);
  for (int i = 0; i < 10; ++i) {
    m.launch(0, KernelDesc{"k" + std::to_string(i), KernelClass::Blas3,
                           1000, 0},
             {});
  }
  m.sync_all();
  EXPECT_EQ(m.trace().size(), 4u);
  EXPECT_EQ(m.trace_dropped(), 6u);
  // The earliest records are the ones retained.
  EXPECT_EQ(m.trace()[0].name, "k0");
  EXPECT_EQ(m.trace()[3].name, "k3");
}

TEST(TraceCap, SummaryReportsDroppedRecords) {
  Machine m(test_rig(), ExecutionMode::Numeric);
  m.set_trace_enabled(true);
  m.set_trace_limit(2);
  for (int i = 0; i < 5; ++i) {
    m.launch(0, KernelDesc{"k", KernelClass::Blas3, 1000, 0}, {});
  }
  m.sync_all();
  std::ostringstream os;
  print_trace_summary(m, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("3 records dropped at the trace cap of 2"),
            std::string::npos);
}

TEST(TraceCap, NoDropMessageUnderLimit) {
  auto m = traced_machine();
  std::ostringstream os;
  print_trace_summary(m, os);
  EXPECT_EQ(os.str().find("dropped"), std::string::npos);
}

TEST(ChromeTrace, MergesObsInstantEvents) {
  auto m = traced_machine();
  std::vector<obs::Event> events;
  obs::Event v;
  v.kind = obs::EventKind::Verification;
  v.time = 1e-6;
  v.lane = kHostLane;
  v.op = "syrk";
  v.iteration = 3;
  v.pass = false;
  events.push_back(v);
  std::ostringstream os;
  write_chrome_trace(m, events, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"cat\":\"verification\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(s.find("\"pass\":false"), std::string::npos);
  EXPECT_NE(s.find("\"op\":\"syrk\""), std::string::npos);
  // Machine spans still present alongside the instants.
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeTrace, ObsKernelEventsAreNotDuplicated) {
  // Kernel/Copy obs events mirror the machine's own trace records; the
  // merger must render spans from the trace only.
  auto m = traced_machine();
  std::vector<obs::Event> events;
  obs::Event k;
  k.kind = obs::EventKind::Kernel;
  k.name = "work";
  k.time = 0.0;
  k.end = 1e-3;
  events.push_back(k);
  std::ostringstream os;
  write_chrome_trace(m, events, os);
  const std::string s = os.str();
  std::size_t hits = 0;
  for (auto p = s.find("\"name\":\"work\""); p != std::string::npos;
       p = s.find("\"name\":\"work\"", p + 1)) {
    ++hits;
  }
  EXPECT_EQ(hits, 1u);
}

TEST(ChromeTrace, FlowNeedsInjectionAndDetection) {
  auto m = traced_machine();
  std::vector<obs::Event> events;
  obs::Event inj;
  inj.kind = obs::EventKind::FaultInjected;
  inj.time = 1e-6;
  inj.lane = kHostLane;
  inj.correlation = 0;
  events.push_back(inj);
  // Injection alone: no flow arrows.
  {
    std::ostringstream os;
    write_chrome_trace(m, events, os);
    EXPECT_EQ(os.str().find("\"ph\":\"s\""), std::string::npos);
  }
  obs::Event det;
  det.kind = obs::EventKind::Detection;
  det.time = 2e-6;
  det.lane = kHostLane;
  det.correlation = 0;
  events.push_back(det);
  {
    std::ostringstream os;
    write_chrome_trace(m, events, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(s.find("\"ph\":\"f\""), std::string::npos);
  }
}

}  // namespace
}  // namespace ftla::sim
