// BLAS Level-2 tests: every routine against the naive reference oracle,
// parameterized over shapes, transposes and triangle selections.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "blas/level2.hpp"
#include "blas/reference.hpp"
#include "test_util.hpp"

namespace ftla::blas {
namespace {

using test::random_matrix;

class GemvParam
    : public ::testing::TestWithParam<std::tuple<int, int, Trans, double,
                                                 double>> {};

TEST_P(GemvParam, MatchesReference) {
  const auto [m, n, trans, alpha, beta] = GetParam();
  auto a = random_matrix(m, n, 1);
  const int xlen = trans == Trans::No ? n : m;
  const int ylen = trans == Trans::No ? m : n;
  auto x = random_matrix(xlen, 1, 2);
  auto y = random_matrix(ylen, 1, 3);
  auto y_ref = y;
  gemv(trans, alpha, a.view(), x.data(), 1, beta, y.data(), 1);
  ref::gemv(trans, alpha, a.view(), x.data(), 1, beta, y_ref.data(), 1);
  EXPECT_MATRIX_NEAR(y, y_ref, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvParam,
    ::testing::Combine(::testing::Values(1, 7, 32), ::testing::Values(1, 5, 33),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(1.0, -0.5),
                       ::testing::Values(0.0, 1.0, 2.0)));

TEST(Gemv, StridedVectors) {
  auto a = random_matrix(4, 3, 4);
  std::vector<double> x = {1, 9, 2, 9, 3, 9};   // stride 2
  std::vector<double> y = {0, 7, 0, 7, 0, 7, 0, 7};  // stride 2
  gemv(Trans::No, 1.0, a.view(), x.data(), 2, 0.0, y.data(), 2);
  for (int i = 0; i < 4; ++i) {
    double expect = 0.0;
    for (int j = 0; j < 3; ++j) expect += a(i, j) * x[j * 2];
    EXPECT_NEAR(y[i * 2], expect, 1e-13);
    EXPECT_EQ(y[i * 2 + 1], 7.0);  // gaps untouched
  }
}

TEST(Ger, MatchesManualOuterProduct) {
  auto a = random_matrix(5, 4, 5);
  auto x = random_matrix(5, 1, 6);
  auto y = random_matrix(4, 1, 7);
  auto expect = a;
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 5; ++i) expect(i, j) += 1.5 * x(i, 0) * y(j, 0);
  ger(1.5, x.data(), 1, y.data(), 1, a.view());
  EXPECT_MATRIX_NEAR(a, expect, 1e-13);
}

class TrsvParam
    : public ::testing::TestWithParam<std::tuple<int, Uplo, Trans, Diag>> {};

TEST_P(TrsvParam, SolvesAgainstTrmv) {
  const auto [n, uplo, trans, diag] = TrsvParam::GetParam();
  auto a = random_matrix(n, n, 8);
  for (int i = 0; i < n; ++i) a(i, i) = 4.0 + i * 0.25;  // well-conditioned
  auto x0 = random_matrix(n, 1, 9);
  auto b = x0;
  // b := op(A) x0, then solve and compare with x0.
  trmv(uplo, trans, diag, a.view(), b.data(), 1);
  trsv(uplo, trans, diag, a.view(), b.data(), 1);
  EXPECT_MATRIX_NEAR(b, x0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, TrsvParam,
    ::testing::Combine(::testing::Values(1, 2, 9, 24),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

class TrmvParam
    : public ::testing::TestWithParam<std::tuple<int, Uplo, Trans, Diag>> {};

TEST_P(TrmvParam, MatchesDenseMultiply) {
  const auto [n, uplo, trans, diag] = TrmvParam::GetParam();
  auto a = random_matrix(n, n, 10);
  auto x = random_matrix(n, 1, 11);
  // Build the dense operator explicitly.
  Matrix<double> t(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      int si = i, sj = j;
      if (trans == Trans::Yes) std::swap(si, sj);
      const bool stored = uplo == Uplo::Lower ? si >= sj : si <= sj;
      if (i == j) {
        t(i, j) = diag == Diag::Unit ? 1.0 : a(i, i);
      } else if (stored) {
        t(i, j) = a(si, sj);
      }
    }
  }
  Matrix<double> expect(n, 1, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) expect(i, 0) += t(i, j) * x(j, 0);
  trmv(uplo, trans, diag, a.view(), x.data(), 1);
  EXPECT_MATRIX_NEAR(x, expect, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, TrmvParam,
    ::testing::Combine(::testing::Values(1, 3, 8, 17),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(Syr, UpdatesOnlySelectedTriangle) {
  auto x = random_matrix(6, 1, 12);
  Matrix<double> lo(6, 6, 0.0);
  Matrix<double> up(6, 6, 0.0);
  syr(Uplo::Lower, 2.0, x.data(), 1, lo.view());
  syr(Uplo::Upper, 2.0, x.data(), 1, up.view());
  for (int j = 0; j < 6; ++j) {
    for (int i = 0; i < 6; ++i) {
      const double full = 2.0 * x(i, 0) * x(j, 0);
      EXPECT_DOUBLE_EQ(lo(i, j), i >= j ? full : 0.0);
      EXPECT_DOUBLE_EQ(up(i, j), i <= j ? full : 0.0);
    }
  }
}

TEST(Symv, MatchesDenseGemv) {
  const int n = 12;
  auto a = test::random_spd(n, 13);
  auto x = random_matrix(n, 1, 14);
  auto y = random_matrix(n, 1, 15);
  auto y_ref = y;
  ref::gemv(Trans::No, 0.7, a.view(), x.data(), 1, 0.3, y_ref.data(), 1);
  symv(Uplo::Lower, 0.7, a.view(), x.data(), 1, 0.3, y.data(), 1);
  EXPECT_MATRIX_NEAR(y, y_ref, 1e-11);
}

TEST(Symv, UpperStorageEqualsLowerStorage) {
  const int n = 9;
  auto a = test::random_spd(n, 16);
  auto x = random_matrix(n, 1, 17);
  Matrix<double> y1(n, 1, 0.0), y2(n, 1, 0.0);
  symv(Uplo::Lower, 1.0, a.view(), x.data(), 1, 0.0, y1.data(), 1);
  symv(Uplo::Upper, 1.0, a.view(), x.data(), 1, 0.0, y2.data(), 1);
  EXPECT_MATRIX_NEAR(y1, y2, 1e-12);
}

}  // namespace
}  // namespace ftla::blas
