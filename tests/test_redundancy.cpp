// Tests for the DMR/TMR baselines (paper §I): correctness, detection/
// correction semantics, and the characteristic ~100% / ~200% overheads.
#include <gtest/gtest.h>

#include "abft/cholesky.hpp"
#include "abft/modular_redundancy.hpp"
#include "blas/lapack.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using fault::FaultSpec;
using fault::FaultType;
using fault::Injector;
using fault::Op;
using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

FaultSpec computing_fault(int iter) {
  FaultSpec s;
  s.type = FaultType::Computing;
  s.op = Op::Gemm;
  s.iteration = iter;
  s.magnitude = 1e6;
  return s;
}

TEST(Dmr, FaultFreeProducesCorrectFactor) {
  const int n = 64;
  auto a0 = test::random_spd(n, 1);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  auto res = dmr_cholesky(m, &a, n);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.errors_detected, 0);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

TEST(Dmr, DetectsComputingErrorAndReruns) {
  const int n = 64;
  auto a0 = test::random_spd(n, 2);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  Injector inj({computing_fault(1)});
  auto res = dmr_cholesky(m, &a, n, {}, &inj);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.errors_detected, 1);
  EXPECT_EQ(res.reruns, 1);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

TEST(Tmr, FaultFreeProducesCorrectFactor) {
  const int n = 64;
  auto a0 = test::random_spd(n, 3);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  auto res = tmr_cholesky(m, &a, n);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.reruns, 0);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

TEST(Tmr, CorrectsComputingErrorByVoteWithoutRerun) {
  const int n = 64;
  auto a0 = test::random_spd(n, 4);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  // Mild perturbation: large enough for the vote to flag, small enough
  // that replica 0 stays positive definite (a violent one fail-stops
  // the replica, which is the rerun path tested separately).
  FaultSpec mild = computing_fault(1);
  mild.magnitude = 0.25;
  Injector inj({mild});
  auto res = tmr_cholesky(m, &a, n, {}, &inj);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.reruns, 0);
  EXPECT_GE(res.errors_corrected, 1);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

TEST(Tmr, CorrectsStorageErrorByVote) {
  const int n = 96;
  auto a0 = test::random_spd(n, 5);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Gemm;
  s.iteration = 2;
  s.block_row = 4;
  s.block_col = 1;
  s.bits = {20, 44, 54};
  Injector inj({s});
  auto res = tmr_cholesky(m, &a, n, {}, &inj);
  ASSERT_TRUE(res.success);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

TEST(Tmr, FailStopReplicaTriggersRerun) {
  const int n = 96;
  auto a0 = test::random_spd(n, 6);
  auto a = a0;
  Machine m(small_rig(), ExecutionMode::Numeric);
  // A storage fault on the SYRK path breaks positive definiteness in
  // replica 0; the triple is re-run and succeeds fault-free.
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = Op::Syrk;
  s.iteration = 3;
  s.block_row = 3;
  s.block_col = 2;
  s.bits = {56, 57, 58};  // enormous excursion
  Injector inj({s});
  auto res = tmr_cholesky(m, &a, n, {}, &inj);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

TEST(Redundancy, OverheadsAreRoughly100And200Percent) {
  // Paper §I: DMR ~100% overhead to detect, TMR ~200% to correct. At
  // paper scale on the virtual clock.
  const int n = 10240;
  const auto profile = sim::tardis();
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  double base, dmr, tmr;
  {
    Machine m(profile, ExecutionMode::TimingOnly);
    base = cholesky(m, nullptr, n, noft).seconds;
  }
  {
    Machine m(profile, ExecutionMode::TimingOnly);
    dmr = dmr_cholesky(m, nullptr, n).seconds;
  }
  {
    Machine m(profile, ExecutionMode::TimingOnly);
    tmr = tmr_cholesky(m, nullptr, n).seconds;
  }
  // Replica setup transfers push the ratios slightly above the nominal
  // 2x / 3x (each replica re-stages the matrix on the device).
  EXPECT_GT(dmr / base, 1.95);
  EXPECT_LT(dmr / base, 2.4);
  EXPECT_GT(tmr / base, 2.9);
  EXPECT_LT(tmr / base, 3.6);
}

TEST(Redundancy, AbftIsFarCheaperThanRedundancy) {
  const int n = 10240;
  const auto profile = sim::tardis();
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  CholeskyOptions enhanced;
  enhanced.variant = Variant::EnhancedOnline;
  enhanced.verify_interval = 5;
  enhanced.placement = UpdatePlacement::Cpu;
  double base, enh, tmr;
  {
    Machine m(profile, ExecutionMode::TimingOnly);
    base = cholesky(m, nullptr, n, noft).seconds;
  }
  {
    Machine m(profile, ExecutionMode::TimingOnly);
    enh = cholesky(m, nullptr, n, enhanced).seconds;
  }
  {
    Machine m(profile, ExecutionMode::TimingOnly);
    tmr = tmr_cholesky(m, nullptr, n).seconds;
  }
  // Both correct computing+storage errors; ABFT does it ~20x cheaper.
  EXPECT_LT((enh - base) / base, 0.15);
  EXPECT_GT((tmr - base) / (enh - base), 10.0);
}

}  // namespace
}  // namespace ftla::abft
