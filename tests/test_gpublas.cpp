// Simulated-device BLAS wrapper tests: numerics must match host BLAS,
// and the cost model must be charged with the exact FLOP counts.
#include <gtest/gtest.h>

#include "blas/level3.hpp"
#include "blas/reference.hpp"
#include "sim/gpublas.hpp"
#include "test_util.hpp"

namespace ftla::sim {
namespace {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

struct DeviceFixture : ::testing::Test {
  Machine m{test_rig(), ExecutionMode::Numeric};

  DeviceBuffer upload(const Matrix<double>& h) {
    auto buf = m.alloc(static_cast<std::int64_t>(h.rows()) * h.cols());
    m.memcpy_h2d(buf, 0, h.data(), static_cast<std::int64_t>(h.size()), 0);
    return buf;
  }
  Matrix<double> download(const DeviceBuffer& buf, int rows, int cols) {
    Matrix<double> h(rows, cols);
    m.memcpy_d2h(h.data(), buf, 0, static_cast<std::int64_t>(h.size()), 0);
    return h;
  }
};

TEST_F(DeviceFixture, GemmMatchesHost) {
  auto ha = test::random_matrix(6, 4, 1);
  auto hb = test::random_matrix(4, 5, 2);
  auto hc = test::random_matrix(6, 5, 3);
  auto hc_ref = hc;
  blas::ref::gemm(Trans::No, Trans::No, 2.0, ha.view(), hb.view(), 1.0,
                  hc_ref.view());

  auto da = upload(ha);
  auto db = upload(hb);
  auto dc = upload(hc);
  gpublas::gemm(m, 0, Trans::No, Trans::No, 2.0,
                DConstMat{&da, 0, 6, 4, 6}, DConstMat{&db, 0, 4, 5, 4}, 1.0,
                DMat{&dc, 0, 6, 5, 6});
  auto out = download(dc, 6, 5);
  EXPECT_MATRIX_NEAR(out, hc_ref, 1e-12);
}

TEST_F(DeviceFixture, GemmChargesExactFlops) {
  auto dc = m.alloc(6 * 5);
  auto da = m.alloc(6 * 4);
  auto db = m.alloc(4 * 5);
  gpublas::gemm(m, 0, Trans::No, Trans::No, 1.0, DConstMat{&da, 0, 6, 4, 6},
                DConstMat{&db, 0, 4, 5, 4}, 0.0, DMat{&dc, 0, 6, 5, 6});
  EXPECT_EQ(m.stats().gpu.at(KernelClass::Blas3).flops, 2LL * 6 * 5 * 4);
}

TEST_F(DeviceFixture, SyrkMatchesHost) {
  auto ha = test::random_matrix(5, 7, 4);
  auto hc = test::random_matrix(5, 5, 5);
  auto hc_ref = hc;
  blas::ref::syrk(Uplo::Lower, Trans::No, -1.0, ha.view(), 1.0,
                  hc_ref.view());
  auto da = upload(ha);
  auto dc = upload(hc);
  gpublas::syrk(m, 0, Uplo::Lower, Trans::No, -1.0,
                DConstMat{&da, 0, 5, 7, 5}, 1.0, DMat{&dc, 0, 5, 5, 5});
  auto out = download(dc, 5, 5);
  EXPECT_MATRIX_NEAR(out, hc_ref, 1e-12);
}

TEST_F(DeviceFixture, TrsmMatchesHost) {
  auto ha = test::random_matrix(4, 4, 6);
  for (int i = 0; i < 4; ++i) ha(i, i) = 5.0 + i;
  auto hb = test::random_matrix(6, 4, 7);
  auto hb_ref = hb;
  blas::ref::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
                  ha.view(), hb_ref.view());
  auto da = upload(ha);
  auto db = upload(hb);
  gpublas::trsm(m, 0, Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit,
                1.0, DConstMat{&da, 0, 4, 4, 4}, DMat{&db, 0, 6, 4, 6});
  auto out = download(db, 6, 4);
  EXPECT_MATRIX_NEAR(out, hb_ref, 1e-10);
}

TEST_F(DeviceFixture, ChecksumGemvUnweighted) {
  auto ha = test::random_matrix(8, 3, 8);
  auto da = upload(ha);
  auto dout = m.alloc(3);
  gpublas::checksum_gemv(m, 0, false, DConstMat{&da, 0, 8, 3, 8},
                         DMat{&dout, 0, 1, 3, 1});
  auto out = download(dout, 1, 3);
  for (int j = 0; j < 3; ++j) {
    double expect = 0.0;
    for (int i = 0; i < 8; ++i) expect += ha(i, j);
    EXPECT_NEAR(out(0, j), expect, 1e-13);
  }
}

TEST_F(DeviceFixture, ChecksumGemvWeighted) {
  auto ha = test::random_matrix(8, 3, 9);
  auto da = upload(ha);
  auto dout = m.alloc(3);
  gpublas::checksum_gemv(m, 0, true, DConstMat{&da, 0, 8, 3, 8},
                         DMat{&dout, 0, 1, 3, 1});
  auto out = download(dout, 1, 3);
  for (int j = 0; j < 3; ++j) {
    double expect = 0.0;
    for (int i = 0; i < 8; ++i) expect += (i + 1.0) * ha(i, j);
    EXPECT_NEAR(out(0, j), expect, 1e-12);
  }
}

TEST_F(DeviceFixture, ChecksumGemvIsBlas2Priced) {
  auto da = m.alloc(64);
  auto dout = m.alloc(8);
  gpublas::checksum_gemv(m, 0, false, DConstMat{&da, 0, 8, 8, 8},
                         DMat{&dout, 0, 1, 8, 1});
  EXPECT_EQ(m.stats().gpu.at(KernelClass::Blas2).flops, 2LL * 8 * 8);
}

TEST_F(DeviceFixture, FillSetsRegion) {
  auto da = m.alloc(12);
  gpublas::fill(m, 0, DMat{&da, 0, 3, 4, 3}, 2.5);
  auto out = download(da, 3, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 3; ++i) EXPECT_EQ(out(i, j), 2.5);
}

TEST_F(DeviceFixture, DMatBlockComposition) {
  auto ha = test::random_matrix(8, 8, 10);
  auto da = upload(ha);
  DMat whole{&da, 0, 8, 8, 8};
  DMat sub = whole.block(2, 3, 4, 4);
  DMat subsub = sub.block(1, 1, 2, 2);
  m.launch(0, KernelDesc{"probe", KernelClass::Blas1, 1, 1}, [&] {
    EXPECT_EQ(subsub.view()(0, 0), ha(3, 4));
    EXPECT_EQ(subsub.view()(1, 1), ha(4, 5));
  });
}

TEST_F(DeviceFixture, SkinnyClassOverridePrices) {
  auto dc = m.alloc(6 * 5);
  auto da = m.alloc(6 * 4);
  auto db = m.alloc(4 * 5);
  gpublas::gemm(m, 0, Trans::No, Trans::No, 1.0, DConstMat{&da, 0, 6, 4, 6},
                DConstMat{&db, 0, 4, 5, 4}, 0.0, DMat{&dc, 0, 6, 5, 6},
                KernelClass::Blas3Skinny);
  EXPECT_EQ(m.stats().gpu.count(KernelClass::Blas3), 0u);
  EXPECT_EQ(m.stats().gpu.at(KernelClass::Blas3Skinny).count, 1);
}

}  // namespace
}  // namespace ftla::sim
