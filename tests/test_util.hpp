// Shared helpers for the ftla test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/spd.hpp"
#include "common/thread_pool.hpp"

namespace ftla::test {

/// Root seed for a randomized test. FTLA_TEST_SEED in the environment
/// overrides `def`, so a failure printed by FTLA_SEED_TRACE can be
/// replayed exactly: FTLA_TEST_SEED=<value> ctest -R <test>.
inline std::uint64_t root_seed(std::uint64_t def) {
  if (const char* env = std::getenv("FTLA_TEST_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return def;
}

/// Every assertion failure in scope reports the seed AND the thread
/// count needed to replay the failing case: parallel results are
/// bit-identical by design, but a replay must still pin both knobs to
/// be fully specified (FTLA_THREADS picks the global pool width).
#define FTLA_SEED_TRACE(seed)                                            \
  SCOPED_TRACE("seed=" + std::to_string(seed) + " threads=" +            \
               std::to_string(ftla::common::global_threads()) +          \
               " (replay with FTLA_TEST_SEED=" + std::to_string(seed) +  \
               " FTLA_THREADS=" +                                        \
               std::to_string(ftla::common::global_threads()) + ")")

/// FTLA_SEED_TRACE plus the DAG schedule seed, for tests that fuzz the
/// task-graph issue order: a fuzzer-found schedule is then reproducible
/// from the failure log alone — root seed, thread count, and the
/// dag_schedule_seed that drew the failing permutation.
#define FTLA_SEED_TRACE_DAG(seed, dag_seed)                              \
  SCOPED_TRACE("seed=" + std::to_string(seed) + " threads=" +            \
               std::to_string(ftla::common::global_threads()) +          \
               " dag_schedule_seed=" + std::to_string(dag_seed) +        \
               " (replay with FTLA_TEST_SEED=" + std::to_string(seed) +  \
               " FTLA_THREADS=" +                                        \
               std::to_string(ftla::common::global_threads()) +          \
               " and dag_schedule_seed=" + std::to_string(dag_seed) +    \
               ")")

inline Matrix<double> random_matrix(int rows, int cols, std::uint64_t seed) {
  Matrix<double> m(rows, cols);
  make_uniform(m, seed);
  return m;
}

inline Matrix<double> random_spd(int n, std::uint64_t seed) {
  Matrix<double> m(n, n);
  make_spd_diag_dominant(m, seed);
  return m;
}

/// Max elementwise difference over the lower triangle only.
inline double lower_max_diff(const Matrix<double>& a,
                             const Matrix<double>& b) {
  EXPECT_EQ(a.rows(), b.rows());
  double v = 0.0;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = j; i < a.rows(); ++i)
      v = std::max(v, std::abs(a(i, j) - b(i, j)));
  return v;
}

#define EXPECT_MATRIX_NEAR(a, b, tol)                              \
  do {                                                             \
    const auto& a_ = (a);                                          \
    const auto& b_ = (b);                                          \
    ASSERT_EQ(a_.rows(), b_.rows());                               \
    ASSERT_EQ(a_.cols(), b_.cols());                               \
    double worst = 0.0;                                            \
    for (int j_ = 0; j_ < a_.cols(); ++j_)                         \
      for (int i_ = 0; i_ < a_.rows(); ++i_)                       \
        worst = std::max(worst, std::abs(a_(i_, j_) - b_(i_, j_))); \
    EXPECT_LE(worst, (tol)) << "matrices differ by " << worst;     \
  } while (0)

}  // namespace ftla::test
