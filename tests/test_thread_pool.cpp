// ThreadPool: partitioning, nesting ban, determinism, global pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"

namespace ftla::common {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads < 1 ? 1 : threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, 1000, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForChunksPartitionIsDisjointAndComplete) {
  for (const int threads : {1, 3, 4}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for_chunks(0, 257, [&](std::int64_t lo, std::int64_t hi) {
      EXPECT_LT(lo, hi);
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  pool.parallel_for_chunks(9, 3, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NestedSubmissionRunsInline) {
  ThreadPool pool(4);
  ASSERT_FALSE(ThreadPool::in_parallel_region());
  std::atomic<int> nested_total{0};
  std::atomic<bool> saw_region{false};
  pool.parallel_for(0, 8, [&](std::int64_t) {
    if (ThreadPool::in_parallel_region()) saw_region = true;
    // A submission from a pool body must run inline on this lane (the
    // nesting ban), not deadlock or fan out.
    pool.parallel_for(0, 3, [&](std::int64_t) { nested_total.fetch_add(1); });
  });
  EXPECT_TRUE(saw_region.load());
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  EXPECT_EQ(nested_total.load(), 8 * 3);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  long long total = 0;
  for (int job = 0; job < 50; ++job) {
    std::atomic<long long> sum{0};
    pool.parallel_for(0, 100, [&](std::int64_t i) { sum.fetch_add(i); });
    total += sum.load();
  }
  EXPECT_EQ(total, 50LL * (99 * 100 / 2));
}

TEST(ThreadPool, ChunkResultsAreIdenticalAcrossThreadCounts) {
  // Per-chunk work writes only its own slots, so any partition must
  // produce the same values — the invariant the parallel BLAS rests on.
  const int n = 1003;
  std::vector<double> base(n);
  ThreadPool serial(1);
  serial.parallel_for_chunks(0, n, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      base[static_cast<std::size_t>(i)] = 0.1 * static_cast<double>(i * i);
    }
  });
  for (const int threads : {2, 4, 5}) {
    ThreadPool pool(threads);
    std::vector<double> out(n);
    pool.parallel_for_chunks(0, n, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        out[static_cast<std::size_t>(i)] = 0.1 * static_cast<double>(i * i);
      }
    });
    EXPECT_EQ(out, base);
  }
}

TEST(ThreadPoolGlobal, SetGlobalThreadsReconfigures) {
  set_global_threads(3);
  EXPECT_EQ(global_threads(), 3);
  EXPECT_EQ(global_pool().threads(), 3);
  set_global_threads(1);
  EXPECT_EQ(global_threads(), 1);
}

TEST(ThreadPoolGlobal, ZeroMeansHardwareConcurrency) {
  set_global_threads(0);
  EXPECT_EQ(global_threads(), hardware_threads());
  set_global_threads(1);
}

}  // namespace
}  // namespace ftla::common
