// Cross-module integration tests: end-to-end behaviour on the calibrated
// machine profiles, the CULA-like baseline, the effect of each paper
// optimization on virtual time, and paper-shape sanity checks.
#include <gtest/gtest.h>

#include "abft/cholesky.hpp"
#include "abft/cula_like.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using sim::ExecutionMode;
using sim::Machine;

double timing_run(const sim::MachineProfile& profile, int n,
                  const CholeskyOptions& opt) {
  Machine m(profile, ExecutionMode::TimingOnly);
  auto res = cholesky(m, nullptr, n, opt);
  EXPECT_TRUE(res.success);
  return res.seconds;
}

TEST(CulaLike, ProducesCorrectFactor) {
  const int n = 96;
  auto a0 = test::random_spd(n, 1);
  auto a = a0;
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  Machine m(p, ExecutionMode::Numeric);
  auto res = cula_like_cholesky(m, &a, n);
  ASSERT_TRUE(res.success);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

TEST(CulaLike, FailsOnIndefiniteInput) {
  const int n = 32;
  Matrix<double> a(n, n, 0.0);
  for (int i = 0; i < n; ++i) a(i, i) = i == 5 ? -1.0 : 1.0;
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  Machine m(p, ExecutionMode::Numeric);
  auto res = cula_like_cholesky(m, &a, n);
  EXPECT_FALSE(res.success);
  EXPECT_TRUE(res.fail_stop_observed);
}

TEST(CulaLike, SlowerThanMagmaStyleBaseline) {
  // MAGMA hides POTF2 and transfers behind the GEMM; the synchronous
  // schedule cannot, so it must be measurably slower at paper scale.
  const int n = 10240;
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  const double magma = timing_run(sim::tardis(), n, noft);
  Machine m(sim::tardis(), ExecutionMode::TimingOnly);
  const double cula = cula_like_cholesky(m, nullptr, n).seconds;
  EXPECT_GT(cula, 1.02 * magma);
  EXPECT_LT(cula, 2.0 * magma) << "baseline should still be competitive";
}

TEST(PaperShape, MagmaBaselineGflopsInRightBallpark) {
  // Tardis: the paper's Offline/no-error time for n = 20480 is ~10.45 s
  // (~274 GFLOP/s). Our simulated baseline should land within ~20%.
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  Machine m(sim::tardis(), ExecutionMode::TimingOnly);
  auto res = cholesky(m, nullptr, 20480, noft);
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.gflops, 220.0);
  EXPECT_LT(res.gflops, 330.0);
}

TEST(PaperShape, BulldozerBaselineGflopsInRightBallpark) {
  // Bulldozer64: n = 30720 in ~8.6 s is ~1.1 TFLOP/s.
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  Machine m(sim::bulldozer64(), ExecutionMode::TimingOnly);
  auto res = cholesky(m, nullptr, 30720, noft);
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.gflops, 850.0);
  EXPECT_LT(res.gflops, 1250.0);
}

TEST(Optimization1, ConcurrentRecalcReducesOverheadOnBothMachines) {
  const int n = 10240;
  CholeskyOptions base;
  base.variant = Variant::EnhancedOnline;
  base.placement = UpdatePlacement::Gpu;
  for (const auto& prof : {sim::tardis(), sim::bulldozer64()}) {
    CholeskyOptions off = base;
    off.concurrent_recalc = false;
    CholeskyOptions on = base;
    on.concurrent_recalc = true;
    const double t_off = timing_run(prof, n, off);
    const double t_on = timing_run(prof, n, on);
    EXPECT_LT(t_on, t_off) << prof.name;
  }
}

TEST(Optimization1, GainIsLargerOnKepler) {
  // Paper Figs. 8-9: ~2% on Tardis vs ~10% on Bulldozer64 — the Kepler
  // GPU co-runs more recalc kernels. Check the *relative* gain ordering.
  const int n = 15360;
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  auto gain = [&](const sim::MachineProfile& prof) {
    CholeskyOptions off;
    off.variant = Variant::EnhancedOnline;
    off.placement = UpdatePlacement::Gpu;
    off.concurrent_recalc = false;
    CholeskyOptions on = off;
    on.concurrent_recalc = true;
    const double base = timing_run(prof, n, noft);
    return (timing_run(prof, n, off) - timing_run(prof, n, on)) / base;
  };
  EXPECT_GT(gain(sim::bulldozer64()), gain(sim::tardis()));
}

TEST(Optimization2, OverlappedUpdateBeatsBlocking) {
  const int n = 10240;
  CholeskyOptions blocking;
  blocking.variant = Variant::EnhancedOnline;
  blocking.placement = UpdatePlacement::Blocking;
  // Tardis overlaps on the CPU, Bulldozer64 on the GPU (paper §VII-D).
  CholeskyOptions tardis_opt = blocking;
  tardis_opt.placement = UpdatePlacement::Cpu;
  EXPECT_LT(timing_run(sim::tardis(), n, tardis_opt),
            timing_run(sim::tardis(), n, blocking));
  CholeskyOptions bd_opt = blocking;
  bd_opt.placement = UpdatePlacement::Gpu;
  EXPECT_LT(timing_run(sim::bulldozer64(), n, bd_opt),
            timing_run(sim::bulldozer64(), n, blocking));
}

TEST(Optimization3, OverheadDecreasesWithK) {
  const int n = 10240;
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  const double base = timing_run(sim::tardis(), n, noft);
  double prev = 1e100;
  for (int k : {1, 3, 5}) {
    CholeskyOptions opt;
    opt.variant = Variant::EnhancedOnline;
    opt.verify_interval = k;
    const double overhead = timing_run(sim::tardis(), n, opt) / base - 1.0;
    EXPECT_LT(overhead, prev) << "K=" << k;
    EXPECT_GT(overhead, 0.0);
    prev = overhead;
  }
}

TEST(PaperShape, FullyOptimizedEnhancedOverheadIsSmall) {
  // Paper Figs. 14-15: < 6% overhead on Tardis, < 4% on Bulldozer64 at
  // the largest sizes (with every optimization on, K = 5 and the
  // paper's per-system placement).
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  {
    CholeskyOptions opt;
    opt.variant = Variant::EnhancedOnline;
    opt.verify_interval = 5;
    opt.placement = UpdatePlacement::Cpu;
    const double base = timing_run(sim::tardis(), 20480, noft);
    const double enh = timing_run(sim::tardis(), 20480, opt);
    EXPECT_LT(enh / base - 1.0, 0.06);
  }
  {
    CholeskyOptions opt;
    opt.variant = Variant::EnhancedOnline;
    opt.verify_interval = 5;
    opt.placement = UpdatePlacement::Gpu;
    const double base = timing_run(sim::bulldozer64(), 30720, noft);
    const double enh = timing_run(sim::bulldozer64(), 30720, opt);
    EXPECT_LT(enh / base - 1.0, 0.04);
  }
}

TEST(PaperShape, EnhancedBeatsCulaEvenWithFtOn) {
  // Paper Figs. 16-17: Enhanced Online-ABFT still outperforms CULA.
  const int n = 20480;
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.verify_interval = 5;
  opt.placement = UpdatePlacement::Cpu;
  const double enh = timing_run(sim::tardis(), n, opt);
  Machine m(sim::tardis(), ExecutionMode::TimingOnly);
  const double cula = cula_like_cholesky(m, nullptr, n).seconds;
  EXPECT_LT(enh, cula);
}

TEST(PaperShape, OverheadShrinksWithMatrixSize) {
  // Paper Fig. 14: relative overhead decreases toward a constant as n
  // grows.
  CholeskyOptions noft;
  noft.variant = Variant::NoFt;
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.verify_interval = 3;
  opt.placement = UpdatePlacement::Cpu;
  double prev = 1e100;
  for (int n : {5120, 10240, 20480}) {
    const double overhead =
        timing_run(sim::tardis(), n, opt) / timing_run(sim::tardis(), n, noft) -
        1.0;
    EXPECT_LT(overhead, prev) << "n=" << n;
    prev = overhead;
  }
}

TEST(Solver, LeastSquaresViaNormalEquations) {
  // The quickstart scenario: solve a least-squares problem through the
  // fault-tolerant Cholesky while a storage error strikes.
  const int n = 64;
  Matrix<double> a(n, n);
  make_normal_equations(a, 3 * n, 77);
  auto a0 = a;
  auto x_true = test::random_matrix(n, 1, 78);
  Matrix<double> b(n, 1, 0.0);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, a0.view(), x_true.view(),
             0.0, b.view());

  auto p = sim::test_rig();
  p.magma_block_size = 16;
  Machine m(p, ExecutionMode::Numeric);
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  fault::FaultSpec s;
  s.type = fault::FaultType::Storage;
  s.op = fault::Op::Syrk;
  s.iteration = 2;
  s.block_row = 2;
  s.block_col = 1;
  s.bits = {20, 44, 54};
  fault::Injector inj({s});
  auto res = cholesky_solve(m, &a, b.view(), opt, &inj);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.reruns, 0);
  EXPECT_MATRIX_NEAR(b, x_true, 1e-5);
}

}  // namespace
}  // namespace ftla::abft
