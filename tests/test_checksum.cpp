// Checksum codec tests: the mathematical heart of the ABFT scheme.
//
// Covers encoding, detection/location/correction of single errors,
// checksum self-repair, uncorrectable patterns, and — crucially — the
// invariance of the checksum relation under each of the four update
// rules the paper derives (SYRK, GEMM, POTF2/Algorithm 2, TRSM).
#include <gtest/gtest.h>

#include <cmath>

#include "abft/checksum.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "common/fp.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;
using test::random_matrix;

Matrix<double> encode(const Matrix<double>& a) {
  Matrix<double> chk(kChecksumRows, a.cols());
  encode_block(a.view(), chk.view());
  return chk;
}

double recalc_mismatch(const Matrix<double>& a, const Matrix<double>& chk) {
  Matrix<double> r(kChecksumRows, a.cols());
  encode_block(a.view(), r.view());
  double worst = 0.0;
  for (int j = 0; j < a.cols(); ++j) {
    const double scale = std::max(1.0, std::abs(chk(1, j)));
    worst = std::max(worst, std::abs(r(0, j) - chk(0, j)) / scale);
    worst = std::max(worst, std::abs(r(1, j) - chk(1, j)) / scale);
  }
  return worst;
}

TEST(Encode, WeightsAreOneAndRowIndex) {
  Matrix<double> a(4, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(2, 0) = 3.0;
  a(3, 0) = 4.0;
  a(2, 1) = 5.0;
  auto chk = encode(a);
  EXPECT_DOUBLE_EQ(chk(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(chk(1, 0), 1 + 4 + 9 + 16);
  EXPECT_DOUBLE_EQ(chk(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(chk(1, 1), 15.0);
}

TEST(Verify, CleanBlockHasNoFindings) {
  auto a = random_matrix(16, 16, 1);
  auto chk = encode(a);
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_TRUE(out.clean());
  EXPECT_EQ(out.errors_detected, 0);
}

class SingleErrorParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SingleErrorParam, LocatedAndCorrected) {
  const auto [size, row, col] = GetParam();
  auto a = random_matrix(size, size, 7);
  auto chk = encode(a);
  const double original = a(row, col);
  a(row, col) += 1234.5;
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_detected, 1);
  EXPECT_EQ(out.errors_corrected, 1);
  ASSERT_EQ(out.corrections.size(), 1u);
  EXPECT_EQ(out.corrections[0].row, row);
  EXPECT_EQ(out.corrections[0].col, col);
  EXPECT_NEAR(a(row, col), original, 1e-9 * std::abs(original) + 1e-9);
  EXPECT_FALSE(out.uncorrectable);
}

INSTANTIATE_TEST_SUITE_P(
    Positions, SingleErrorParam,
    ::testing::Values(std::tuple{8, 0, 0}, std::tuple{8, 7, 7},
                      std::tuple{8, 0, 7}, std::tuple{8, 7, 0},
                      std::tuple{16, 5, 11}, std::tuple{32, 31, 0},
                      std::tuple{1, 0, 0}, std::tuple{3, 1, 2}));

TEST(Verify, BitFlipStorageErrorCorrected) {
  auto a = random_matrix(12, 12, 9);
  auto chk = encode(a);
  const double original = a(4, 6);
  a(4, 6) = flip_bit(flip_bit(a(4, 6), 20), 54);  // multi-bit flip
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 1);
  EXPECT_NEAR(a(4, 6), original, 1e-8 * std::max(1.0, std::abs(original)));
}

TEST(Verify, ErrorsInDistinctColumnsAllCorrected) {
  auto a = random_matrix(10, 10, 11);
  auto chk = encode(a);
  Matrix<double> orig = a;
  a(2, 1) += 100.0;
  a(7, 4) -= 55.0;
  a(9, 9) += 3e4;
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 3);
  EXPECT_FALSE(out.uncorrectable);
  EXPECT_LE(test::lower_max_diff(a, orig), 1e-7);
}

TEST(Verify, TwoErrorsInOneColumnAreUncorrectable) {
  auto a = random_matrix(10, 10, 13);
  auto chk = encode(a);
  a(2, 5) += 100.0;
  a(8, 5) += 77.0;
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_TRUE(out.uncorrectable);
}

TEST(Verify, CorruptedChecksumRow1IsRepaired) {
  auto a = random_matrix(8, 8, 15);
  auto chk = encode(a);
  chk(0, 3) += 500.0;  // damage the unweighted checksum itself
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.checksum_repairs, 1);
  EXPECT_EQ(out.errors_corrected, 0);
  EXPECT_FALSE(out.uncorrectable);
  // chk must now be consistent again.
  EXPECT_LT(recalc_mismatch(a, chk), 1e-12);
}

TEST(Verify, CorruptedChecksumRow2IsRepaired) {
  auto a = random_matrix(8, 8, 17);
  auto chk = encode(a);
  chk(1, 6) = flip_bit(chk(1, 6), 55);
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.checksum_repairs, 1);
  EXPECT_LT(recalc_mismatch(a, chk), 1e-12);
}

TEST(Verify, RowOneErrorNotMistakenForChecksumDamage) {
  // delta1 == delta2 when the corrupt element sits in row 1; the decoder
  // must correct the data, not "repair" the checksum.
  auto a = random_matrix(8, 8, 19);
  auto chk = encode(a);
  const double original = a(0, 2);
  a(0, 2) += 250.0;
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 1);
  EXPECT_EQ(out.checksum_repairs, 0);
  EXPECT_NEAR(a(0, 2), original, 1e-9);
}

TEST(Verify, RectangularBlock) {
  auto a = random_matrix(12, 5, 21);
  auto chk = encode(a);
  const double original = a(11, 4);
  a(11, 4) -= 42.0;
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_EQ(out.errors_corrected, 1);
  EXPECT_NEAR(a(11, 4), original, 1e-10);
}

TEST(Verify, ToleranceRejectsRoundoffNoise) {
  // Accumulate legitimate rounding by updating both data and checksums
  // through a long chain of consistent operations.
  const int n = 24;
  auto a = random_matrix(n, n, 23);
  auto chk = encode(a);
  auto u = random_matrix(n, n, 24);
  auto chk_u = encode(u);
  for (int rep = 0; rep < 20; ++rep) {
    // a += u * 0.01 (consistent on data and checksums)
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) a(i, j) += 0.01 * u(i, j);
      chk(0, j) += 0.01 * chk_u(0, j);
      chk(1, j) += 0.01 * chk_u(1, j);
    }
  }
  auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
  EXPECT_TRUE(out.clean());
}

// ---------------------------------------------------------------------
// Checksum invariance under the paper's four update rules (§IV-B)
// ---------------------------------------------------------------------

TEST(UpdateRules, SyrkRule) {
  // A' = A - LC LC^T with chk(A') = chk(A) - chk(LC) LC^T.
  const int b = 16, w = 24;
  auto a = random_matrix(b, b, 31);
  auto lc = random_matrix(b, w, 32);
  auto chk_a = encode(a);
  auto chk_lc = encode(lc);
  blas::gemm(Trans::No, Trans::Yes, -1.0, lc.view(), lc.view(), 1.0,
             a.view());
  blas::gemm(Trans::No, Trans::Yes, -1.0, chk_lc.view(), lc.view(), 1.0,
             chk_a.view());
  EXPECT_LT(recalc_mismatch(a, chk_a), 1e-11);
}

TEST(UpdateRules, GemmRule) {
  // B' = B - LD LC^T with chk(B') = chk(B) - chk(LD) LC^T.
  const int b = 16, w = 24;
  auto bm = random_matrix(b, b, 33);
  auto ld = random_matrix(b, w, 34);
  auto lc = random_matrix(b, w, 35);
  auto chk_b = encode(bm);
  auto chk_ld = encode(ld);
  blas::gemm(Trans::No, Trans::Yes, -1.0, ld.view(), lc.view(), 1.0,
             bm.view());
  blas::gemm(Trans::No, Trans::Yes, -1.0, chk_ld.view(), lc.view(), 1.0,
             chk_b.view());
  EXPECT_LT(recalc_mismatch(bm, chk_b), 1e-11);
}

class Potf2RuleParam : public ::testing::TestWithParam<int> {};

TEST_P(Potf2RuleParam, Algorithm2YieldsChecksumOfL) {
  const int n = GetParam();
  auto a = test::random_spd(n, 37);
  auto chk = encode(a);
  blas::potf2(a.view());
  // Zero the strict upper triangle: the stored block is exactly L.
  for (int c = 1; c < n; ++c)
    for (int r = 0; r < c; ++r) a(r, c) = 0.0;
  potf2_update_checksum(a.view(), chk.view());
  EXPECT_LT(recalc_mismatch(a, chk), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Potf2RuleParam,
                         ::testing::Values(1, 2, 3, 8, 16, 64));

TEST(UpdateRules, TrsmRule) {
  // LB = B' (LA^T)^{-1} with chk(LB) = chk(B') (LA^T)^{-1}.
  const int b = 16;
  auto la = test::random_spd(b, 41);
  blas::potf2(la.view());
  auto bm = random_matrix(b, b, 42);
  auto chk_b = encode(bm);
  blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
             la.view(), bm.view());
  blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
             la.view(), chk_b.view());
  EXPECT_LT(recalc_mismatch(bm, chk_b), 1e-10);
}

TEST(UpdateRules, FullFactorizationKeepsEveryBlockConsistent) {
  // Drive a miniature blocked factorization by hand, maintaining
  // checksums with the four rules, and check consistency block by block.
  const int b = 8, nb = 4, n = b * nb;
  auto a = test::random_spd(n, 43);
  Matrix<double> chk(kChecksumRows * nb, n);
  auto chk_block = [&](int i, int k) {
    return chk.block(kChecksumRows * i, k * b, kChecksumRows, b);
  };
  for (int k = 0; k < nb; ++k)
    for (int i = k; i < nb; ++i)
      encode_block(a.block(i * b, k * b, b, b), chk_block(i, k));

  for (int j = 0; j < nb; ++j) {
    const int w = j * b;
    // SYRK + rule
    if (j > 0) {
      blas::gemm(Trans::No, Trans::Yes, -1.0,
                 ConstMatrixView<double>(a.block(w, 0, b, w)),
                 a.block(w, 0, b, w), 1.0, a.block(w, w, b, b));
      blas::gemm(Trans::No, Trans::Yes, -1.0,
                 ConstMatrixView<double>(
                     chk.block(kChecksumRows * j, 0, kChecksumRows, w)),
                 a.block(w, 0, b, w), 1.0, chk_block(j, j));
      // GEMM + rule
      const int below = n - w - b;
      if (below > 0) {
        blas::gemm(Trans::No, Trans::Yes, -1.0,
                   ConstMatrixView<double>(a.block(w + b, 0, below, w)),
                   a.block(w, 0, b, w), 1.0, a.block(w + b, w, below, b));
        blas::gemm(
            Trans::No, Trans::Yes, -1.0,
            ConstMatrixView<double>(chk.block(kChecksumRows * (j + 1), 0,
                                              kChecksumRows * (nb - j - 1),
                                              w)),
            a.block(w, 0, b, w), 1.0,
            chk.block(kChecksumRows * (j + 1), w,
                      kChecksumRows * (nb - j - 1), b));
      }
    }
    // POTF2 + Algorithm 2
    auto diag = a.block(w, w, b, b);
    blas::potf2(diag);
    for (int c = 1; c < b; ++c)
      for (int r = 0; r < c; ++r) diag(r, c) = 0.0;
    potf2_update_checksum(ConstMatrixView<double>(diag), chk_block(j, j));
    // TRSM + rule
    const int below = n - w - b;
    if (below > 0) {
      blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
                 ConstMatrixView<double>(diag), a.block(w + b, w, below, b));
      blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
                 ConstMatrixView<double>(diag),
                 chk.block(kChecksumRows * (j + 1), w,
                           kChecksumRows * (nb - j - 1), b));
    }
  }

  for (int k = 0; k < nb; ++k) {
    for (int i = k; i < nb; ++i) {
      Matrix<double> blk(b, b);
      copy(ConstMatrixView<double>(a.block(i * b, k * b, b, b)),
           blk.view());
      Matrix<double> cb(kChecksumRows, b);
      copy(ConstMatrixView<double>(chk_block(i, k)), cb.view());
      EXPECT_LT(recalc_mismatch(blk, cb), 1e-9)
          << "block (" << i << ", " << k << ")";
    }
  }
}

TEST(Tolerance, ThresholdScalesWithMagnitude) {
  Tolerance tol{1e-8, 1e-6};
  EXPECT_DOUBLE_EQ(tol.threshold(1e6), 1e-2);
  EXPECT_DOUBLE_EQ(tol.threshold(0.0), 1e-14);  // floor applies
}

}  // namespace
}  // namespace ftla::abft
