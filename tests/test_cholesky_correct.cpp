// Fault-free correctness of the hybrid Cholesky driver across all
// variants, placements and optimization settings: the factor must match
// the reference, no verification may fire falsely, and the Table-I
// verification-count shapes must hold.
#include <gtest/gtest.h>

#include <tuple>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "sim/profile.hpp"
#include "test_util.hpp"

namespace ftla::abft {
namespace {

using sim::ExecutionMode;
using sim::Machine;

sim::MachineProfile small_rig() {
  auto p = sim::test_rig();
  p.magma_block_size = 16;
  return p;
}

CholeskyResult run(Matrix<double>* a, int n, const CholeskyOptions& opt,
                   sim::MachineProfile profile = small_rig()) {
  Machine m(profile, ExecutionMode::Numeric);
  return cholesky(m, a, n, opt);
}

class VariantParam
    : public ::testing::TestWithParam<std::tuple<Variant, UpdatePlacement>> {
};

TEST_P(VariantParam, FactorMatchesReferenceAndResidualSmall) {
  const auto [variant, placement] = GetParam();
  const int n = 96;
  auto a0 = test::random_spd(n, 100);
  auto a = a0;
  CholeskyOptions opt;
  opt.variant = variant;
  opt.placement = placement;
  auto res = run(&a, n, opt);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(res.reruns, 0);
  EXPECT_EQ(res.errors_detected, 0) << "false positive";
  EXPECT_EQ(res.checksum_repairs, 0) << "false checksum repair";
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
  auto l_ref = a0;
  blas::potrf(l_ref.view(), 16);
  EXPECT_LE(test::lower_max_diff(a, l_ref), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAndPlacements, VariantParam,
    ::testing::Combine(
        ::testing::Values(Variant::NoFt, Variant::Offline, Variant::Online,
                          Variant::EnhancedOnline),
        ::testing::Values(UpdatePlacement::Blocking, UpdatePlacement::Gpu,
                          UpdatePlacement::Cpu)));

class SizeParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SizeParam, EnhancedHandlesArbitrarySizes) {
  const auto [n, b] = GetParam();
  auto a0 = test::random_spd(n, 200 + n);
  auto a = a0;
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.block_size = b;
  auto res = run(&a, n, opt);
  ASSERT_TRUE(res.success) << res.note;
  EXPECT_EQ(res.errors_detected, 0);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, SizeParam,
    ::testing::Values(std::tuple{16, 16},   // single block
                      std::tuple{17, 16},   // ragged tail block
                      std::tuple{48, 16},   // exact multiple
                      std::tuple{50, 16},   // ragged
                      std::tuple{96, 32},   // bigger blocks
                      std::tuple{31, 8},    // many ragged blocks
                      std::tuple{8, 16}));  // block larger than matrix

class IntervalParam : public ::testing::TestWithParam<int> {};

TEST_P(IntervalParam, VerifyIntervalPreservesCorrectness) {
  const int k = GetParam();
  const int n = 80;
  auto a0 = test::random_spd(n, 300);
  auto a = a0;
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.verify_interval = k;
  auto res = run(&a, n, opt);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.errors_detected, 0);
  EXPECT_LT(blas::cholesky_residual(a0.view(), a.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(K, IntervalParam, ::testing::Values(1, 2, 3, 5, 7));

TEST(CholeskyOptions, SerializedRecalcMatchesNumerics) {
  const int n = 64;
  auto a0 = test::random_spd(n, 400);
  auto a1 = a0;
  auto a2 = a0;
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.concurrent_recalc = false;  // Opt 1 off
  auto r1 = run(&a1, n, opt);
  opt.concurrent_recalc = true;
  auto r2 = run(&a2, n, opt);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_EQ(a1, a2) << "Opt 1 must not change numerics";
  EXPECT_GE(r1.seconds, r2.seconds) << "concurrent recalc cannot be slower";
}

TEST(VerificationCounters, EnhancedShapesMatchTableI) {
  const int n = 128;
  const int b = 16;  // nb = 8
  const int nb = n / b;
  auto a = test::random_spd(n, 500);
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.block_size = b;
  auto res = run(&a, n, opt);
  ASSERT_TRUE(res.success);
  // SYRK verifies (1 + j) blocks at iteration j.
  long long syrk_expect = 0;
  for (int j = 0; j < nb; ++j) syrk_expect += 1 + j;
  EXPECT_EQ(res.verified.syrk_blocks, syrk_expect);
  // POTF2 verifies the diagonal block once per iteration.
  EXPECT_EQ(res.verified.potf2_blocks, nb);
  // TRSM verifies L plus the panel: (1 + (nb-1-j)) per iteration with a
  // panel present.
  long long trsm_expect = 0;
  for (int j = 0; j < nb - 1; ++j) trsm_expect += 1 + (nb - 1 - j);
  EXPECT_EQ(res.verified.trsm_blocks, trsm_expect);
  // GEMM verifies B + C + D = (nb-1-j) + j + (nb-1-j)*j — O(n^2).
  long long gemm_expect = 0;
  for (int j = 1; j < nb - 1; ++j)
    gemm_expect += (nb - 1 - j) + j + (nb - 1 - j) * j;
  EXPECT_EQ(res.verified.gemm_blocks, gemm_expect);
}

TEST(VerificationCounters, OnlineShapesMatchTableI) {
  const int n = 128;
  const int b = 16;
  const int nb = n / b;
  auto a = test::random_spd(n, 600);
  CholeskyOptions opt;
  opt.variant = Variant::Online;
  opt.block_size = b;
  auto res = run(&a, n, opt);
  ASSERT_TRUE(res.success);
  // Online verifies each op's output: O(1) for SYRK/POTF2, O(n) for
  // GEMM/TRSM.
  EXPECT_EQ(res.verified.syrk_blocks, nb - 1);  // no syrk at j = 0
  EXPECT_EQ(res.verified.potf2_blocks, nb);
  long long panel_expect = 0;
  for (int j = 0; j < nb - 1; ++j) panel_expect += nb - 1 - j;
  EXPECT_EQ(res.verified.trsm_blocks, panel_expect);
  long long gemm_expect = 0;
  for (int j = 1; j < nb - 1; ++j) gemm_expect += nb - 1 - j;
  EXPECT_EQ(res.verified.gemm_blocks, gemm_expect);
}

TEST(VerificationCounters, IntervalReducesGemmVerifications) {
  const int n = 128;
  auto a1 = test::random_spd(n, 700);
  auto a2 = a1;
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.block_size = 16;
  opt.verify_interval = 1;
  auto r1 = run(&a1, n, opt);
  opt.verify_interval = 4;
  auto r2 = run(&a2, n, opt);
  EXPECT_LT(r2.verified.gemm_blocks, r1.verified.gemm_blocks / 2);
  // SYRK is never interval-gated (errors there are unrecoverable).
  EXPECT_EQ(r2.verified.syrk_blocks, r1.verified.syrk_blocks);
}

TEST(Cholesky, NoFtDoesNoVerification) {
  const int n = 64;
  auto a = test::random_spd(n, 800);
  CholeskyOptions opt;
  opt.variant = Variant::NoFt;
  auto res = run(&a, n, opt);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.verified.total(), 0);
}

TEST(Cholesky, FtVariantsCostMoreVirtualTimeThanNoFt) {
  const int n = 96;
  auto a0 = test::random_spd(n, 900);
  double base = 0.0;
  for (auto v : {Variant::NoFt, Variant::Offline, Variant::Online,
                 Variant::EnhancedOnline}) {
    auto a = a0;
    CholeskyOptions opt;
    opt.variant = v;
    auto res = run(&a, n, opt);
    ASSERT_TRUE(res.success);
    if (v == Variant::NoFt) {
      base = res.seconds;
    } else {
      EXPECT_GT(res.seconds, base) << to_string(v);
    }
  }
}

TEST(Cholesky, AutoPlacementResolvesToConcrete) {
  const int n = 64;
  auto a = test::random_spd(n, 1000);
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  opt.placement = UpdatePlacement::Auto;
  auto res = run(&a, n, opt);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(res.chosen_placement == UpdatePlacement::Gpu ||
              res.chosen_placement == UpdatePlacement::Cpu);
}

TEST(Cholesky, TimingOnlyModeIssuesSameSchedule) {
  const int n = 96;
  CholeskyOptions opt;
  opt.variant = Variant::EnhancedOnline;
  // Numeric run.
  auto a = test::random_spd(n, 1100);
  Machine m1(small_rig(), ExecutionMode::Numeric);
  auto r1 = cholesky(m1, &a, n, opt);
  // TimingOnly run, no host matrix at all.
  Machine m2(small_rig(), ExecutionMode::TimingOnly);
  auto r2 = cholesky(m2, nullptr, n, opt);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_NEAR(r1.seconds, r2.seconds, 1e-9 * std::max(r1.seconds, 1.0));
  EXPECT_EQ(r1.verified.total(), r2.verified.total());
}

TEST(Cholesky, GpuTimeDominatedByBlas3) {
  const int n = 128;
  Machine m(small_rig(), ExecutionMode::TimingOnly);
  CholeskyOptions opt;
  opt.variant = Variant::NoFt;
  auto res = cholesky(m, nullptr, n, opt);
  ASSERT_TRUE(res.success);
  const auto& gpu = m.stats().gpu;
  ASSERT_TRUE(gpu.count(sim::KernelClass::Blas3));
  // Factorization FLOPs on the device ~ n^3/3 (minus the POTF2 share).
  const double blas3_flops =
      static_cast<double>(gpu.at(sim::KernelClass::Blas3).flops);
  const double expect = static_cast<double>(n) * n * n / 3.0;
  EXPECT_NEAR(blas3_flops / expect, 1.0, 0.25);
}

TEST(CholeskySolve, SolvesSystem) {
  const int n = 64;
  auto a0 = test::random_spd(n, 1200);
  auto a = a0;
  auto x_true = test::random_matrix(n, 2, 1201);
  Matrix<double> b(n, 2, 0.0);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, a0.view(), x_true.view(),
             0.0, b.view());
  Machine m(small_rig(), ExecutionMode::Numeric);
  CholeskyOptions opt;
  auto res = cholesky_solve(m, &a, b.view(), opt);
  ASSERT_TRUE(res.success);
  EXPECT_MATRIX_NEAR(b, x_true, 1e-7);
}

TEST(ResolveBlockSize, UsesProfileDefault) {
  CholeskyOptions opt;
  EXPECT_EQ(resolve_block_size(sim::tardis(), opt), 256);
  EXPECT_EQ(resolve_block_size(sim::bulldozer64(), opt), 512);
  opt.block_size = 64;
  EXPECT_EQ(resolve_block_size(sim::tardis(), opt), 64);
}

}  // namespace
}  // namespace ftla::abft
