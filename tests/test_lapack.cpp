// LAPACK-subset tests: POTF2/POTRF correctness, failure behaviour on
// non-SPD input, solves, norms and residual helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "blas/reference.hpp"
#include "common/error.hpp"
#include "test_util.hpp"

namespace ftla::blas {
namespace {

using test::random_matrix;
using test::random_spd;

class PotrfSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PotrfSizes, MatchesUnblockedReference) {
  const auto [n, nb] = GetParam();
  auto a = random_spd(n, n);
  auto l_ref = a;
  ref::potrf(l_ref.view());
  auto l = a;
  potrf(l.view(), nb);
  EXPECT_LE(test::lower_max_diff(l, l_ref), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, PotrfSizes,
    ::testing::Combine(::testing::Values(1, 2, 7, 64, 130),
                       ::testing::Values(1, 8, 64)));

TEST(Potf2, SmallResidual) {
  const int n = 96;
  auto a = random_spd(n, 1);
  auto l = a;
  potf2(l.view());
  EXPECT_LT(cholesky_residual(a.view(), l.view()), 1e-13);
}

TEST(Potf2, ThrowsOnIndefiniteMatrix) {
  Matrix<double> a(3, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;  // indefinite
  a(2, 2) = 1.0;
  try {
    potf2(a.view());
    FAIL() << "expected NotPositiveDefiniteError";
  } catch (const NotPositiveDefiniteError& e) {
    EXPECT_EQ(e.column(), 1);
  }
}

TEST(Potf2, ThrowsOnNanInput) {
  auto a = random_spd(8, 2);
  a(4, 4) = std::nan("");
  EXPECT_THROW(potf2(a.view()), NotPositiveDefiniteError);
}

TEST(Potrf, ThrowsOnSemidefinite) {
  // Rank-1 matrix: PSD but singular.
  Matrix<double> a(4, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) a(i, j) = (i + 1.0) * (j + 1.0);
  EXPECT_THROW(potrf(a.view(), 2), NotPositiveDefiniteError);
}

TEST(Potrs, SolvesLinearSystem) {
  const int n = 40;
  auto a = random_spd(n, 3);
  auto x_true = random_matrix(n, 3, 4);
  // b = A x
  Matrix<double> b(n, 3, 0.0);
  gemm(Trans::No, Trans::No, 1.0, a.view(), x_true.view(), 0.0, b.view());
  auto l = a;
  potrf(l.view(), 8);
  potrs(ConstMatrixView<double>(l.view()), b.view());
  EXPECT_MATRIX_NEAR(b, x_true, 1e-8);
}

TEST(Lange, KnownValues) {
  Matrix<double> a(2, 3, 0.0);
  a(0, 0) = 1.0;
  a(1, 0) = -2.0;
  a(0, 1) = 3.0;
  a(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(lange(Norm::Max, a.view()), 4.0);
  EXPECT_DOUBLE_EQ(lange(Norm::One, a.view()), 4.0);   // max col sum
  EXPECT_DOUBLE_EQ(lange(Norm::Inf, a.view()), 6.0);   // max row sum
  EXPECT_NEAR(lange(Norm::Fro, a.view()), std::sqrt(1 + 4 + 9 + 16), 1e-14);
}

TEST(Lange, FroOverflowSafe) {
  Matrix<double> a(2, 2, 1e200);
  EXPECT_NEAR(lange(Norm::Fro, a.view()) / 2e200, 1.0, 1e-12);
}

TEST(CholeskyResidual, ZeroForExactFactor) {
  Matrix<double> l(3, 3, 0.0);
  l(0, 0) = 2.0;
  l(1, 0) = 1.0;
  l(1, 1) = 3.0;
  l(2, 0) = 0.5;
  l(2, 1) = -1.0;
  l(2, 2) = 1.5;
  // A = L L^T, computed exactly.
  Matrix<double> a(3, 3, 0.0);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j <= i; ++j) {
      double s = 0.0;
      for (int k = 0; k <= j; ++k) s += l(i, k) * l(j, k);
      a(i, j) = s;
      a(j, i) = s;
    }
  EXPECT_LT(cholesky_residual(a.view(), l.view()), 1e-15);
}

TEST(CholeskyResidual, DetectsCorruptedFactor) {
  const int n = 24;
  auto a = random_spd(n, 5);
  auto l = a;
  potrf(l.view());
  l(10, 3) += 1.0;
  EXPECT_GT(cholesky_residual(a.view(), l.view()), 1e-4);
}

TEST(MaxAbsDiff, Basics) {
  auto a = random_matrix(4, 4, 6);
  auto b = a;
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 0.0);
  b(2, 2) += 0.25;
  EXPECT_DOUBLE_EQ(max_abs_diff(a.view(), b.view()), 0.25);
}

TEST(Potrf, AgreesWithGramConstruction) {
  // Factor G G^T + nI and check L L^T reproduces it.
  const int n = 48;
  Matrix<double> a(n, n);
  make_spd(a, 7);
  auto l = a;
  potrf(l.view(), 16);
  EXPECT_LT(cholesky_residual(a.view(), l.view()), 1e-12);
}

}  // namespace
}  // namespace ftla::blas
