// Extension experiment: composing ABFT with periodic checkpointing
// (paper citation [11]). Measures, with real numerics and injected
// storage faults, how recovery cost depends on the strategy:
//   * Enhanced Online-ABFT corrects in place (no recovery needed),
//   * Online-ABFT + rerun pays the paper's ~2x,
//   * Online-ABFT + checkpoint/rollback pays only the replay window,
//     which shrinks as the checkpoint interval tightens (while the
//     fault-free overhead of snapshotting grows).
#include <iostream>

#include "bench_util.hpp"
#include "blas/lapack.hpp"
#include "common/spd.hpp"
#include "fault/fault.hpp"

int main() {
  using namespace ftla;
  using namespace ftla::bench;

  const int n = 1024;
  const int block = 64;
  const int nb = n / block;
  const auto profile = sim::tardis();

  Matrix<double> a0(n, n);
  make_spd_diag_dominant(a0, 7);

  fault::FaultSpec late;
  late.type = fault::FaultType::Storage;
  late.op = fault::Op::Syrk;
  late.iteration = (3 * nb) / 4;  // late fault: rerun hurts the most
  late.block_row = late.iteration;
  late.block_col = late.iteration - 1;
  late.bits = {20, 44, 54};

  print_header("Checkpoint/rollback vs rerun recovery",
               "Real numerics, n = 1024, B = 64 on the Tardis profile. A "
               "multi-bit storage error strikes at 3/4 of the run; times "
               "are virtual seconds (and relative to each scheme's own "
               "fault-free run).");

  auto run_case = [&](abft::Variant v, abft::Recovery rec, int interval,
                      bool with_fault) {
    auto a = a0;
    sim::Machine m(profile, sim::ExecutionMode::Numeric);
    abft::CholeskyOptions opt;
    opt.variant = v;
    opt.block_size = block;
    opt.recovery = rec;
    opt.checkpoint_interval = interval;
    fault::Injector inj(with_fault ? std::vector<fault::FaultSpec>{late}
                                   : std::vector<fault::FaultSpec>{});
    auto res = abft::cholesky(m, &a, n, opt, &inj);
    if (!res.success ||
        blas::cholesky_residual(a0.view(), a.view()) > 1e-8) {
      std::cerr << "case failed to produce a clean factor\n";
      std::exit(1);
    }
    return res;
  };

  Table t({"scheme + recovery", "fault-free (s)", "with storage fault (s)",
           "penalty", "rollbacks/reruns"});
  auto add = [&](const std::string& name, abft::Variant v,
                 abft::Recovery rec, int interval) {
    auto clean = run_case(v, rec, interval, false);
    auto faulty = run_case(v, rec, interval, true);
    t.add_row({name, Table::num(clean.seconds, 5),
               Table::num(faulty.seconds, 5),
               Table::pct(faulty.seconds / clean.seconds - 1.0),
               std::to_string(faulty.rollbacks) + "/" +
                   std::to_string(faulty.reruns)});
  };
  add("enhanced (in-place)", abft::Variant::EnhancedOnline,
      abft::Recovery::Rerun, 4);
  add("online + rerun", abft::Variant::Online, abft::Recovery::Rerun, 4);
  add("online + ckpt every 8", abft::Variant::Online,
      abft::Recovery::Checkpoint, 8);
  add("online + ckpt every 4", abft::Variant::Online,
      abft::Recovery::Checkpoint, 4);
  add("online + ckpt every 2", abft::Variant::Online,
      abft::Recovery::Checkpoint, 2);
  print_table(t);

  std::cout
      << "Expected ordering of the fault penalty: enhanced ~0% < "
         "checkpointing (replay window + snapshot cost) < rerun ~100%.\n";
  return 0;
}
