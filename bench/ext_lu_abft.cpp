// Extension experiment: Enhanced Online-ABFT carried to LU
// factorization (right-looking, no pivoting) on the same simulated
// testbeds — overhead sweep plus a miniature fault-capability table.
#include <iostream>

#include "abft/lu.hpp"
#include "bench_util.hpp"
#include "blas/lapack.hpp"
#include "common/spd.hpp"

namespace {

using namespace ftla;
using namespace ftla::bench;

double lu_timing(const sim::MachineProfile& profile, int n,
                 const abft::LuOptions& opt) {
  sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
  auto res = abft::lu(m, nullptr, n, opt);
  if (!res.success) std::exit(1);
  return res.seconds;
}

void overhead_sweep(const sim::MachineProfile& profile,
                    const std::vector<int>& sizes) {
  print_header("LU extension — relative overhead on " + profile.name,
               "Enhanced Online-ABFT LU (column checksums for L, row "
               "checksums for U, final sweep) vs the NoFT hybrid LU.");
  Table t({"n", "K=1", "K=3", "K=5"});
  for (int n : sizes) {
    abft::LuOptions noft;
    noft.variant = abft::Variant::NoFt;
    const double base = lu_timing(profile, n, noft);
    std::vector<std::string> row{std::to_string(n)};
    for (int k : {1, 3, 5}) {
      abft::LuOptions opt;
      opt.variant = abft::Variant::EnhancedOnline;
      opt.verify_interval = k;
      row.push_back(Table::pct(lu_timing(profile, n, opt) / base - 1.0));
    }
    t.add_row(row);
  }
  print_table(t);
}

void fault_table() {
  print_header("LU extension — fault capability (real numerics, n = 768, "
               "B = 128, Tardis profile)",
               "One multi-bit storage error per scenario; 'panel' strikes "
               "an input of the panel factorization, 'u-row' a block the "
               "trailing update reads via row checksums, 'finished' a "
               "factor block after its last use (final-sweep territory).");
  const int n = 768;
  const int block = 128;
  Matrix<double> a0(n, n);
  make_spd_diag_dominant(a0, 9);

  Table t({"scenario", "corrected", "reruns", "residual"});
  auto run_one = [&](const std::string& name, fault::FaultSpec s) {
    auto a = a0;
    auto profile = sim::tardis();
    sim::Machine m(profile, sim::ExecutionMode::Numeric);
    abft::LuOptions opt;
    opt.block_size = block;
    fault::Injector inj({s});
    auto res = abft::lu(m, &a, n, opt, &inj);
    const double resid =
        res.success ? blas::lu_residual(a0.view(), a.view()) : 1.0;
    t.add_row({name, std::to_string(res.errors_corrected),
               std::to_string(res.reruns), Table::num(resid, 3)});
  };

  fault::FaultSpec panel;
  panel.type = fault::FaultType::Storage;
  panel.op = fault::Op::Potf2;
  panel.iteration = 3;
  panel.block_row = 4;
  panel.block_col = 3;
  panel.bits = {20, 44, 54};
  run_one("panel input", panel);

  fault::FaultSpec urow;
  urow.type = fault::FaultType::Storage;
  urow.op = fault::Op::Gemm;
  urow.iteration = 2;
  urow.block_row = 2;
  urow.block_col = 4;
  urow.bits = {21, 45, 55};
  run_one("u-row input", urow);

  fault::FaultSpec finished;
  finished.type = fault::FaultType::Storage;
  finished.op = fault::Op::Trsm;
  finished.iteration = 4;
  finished.block_row = 0;
  finished.block_col = 3;
  finished.bits = {19, 47, 53};
  run_one("finished factor", finished);

  print_table(t, /*csv=*/false);
}

}  // namespace

int main() {
  overhead_sweep(sim::tardis(), {5120, 10240, 20480});
  overhead_sweep(sim::bulldozer64(), {10240, 20480, 30720});
  fault_table();
  std::cout << "All scenarios must end with residual at rounding level and "
               "zero reruns: pre-read verification plus the final sweep "
               "covers every window.\n";
  return 0;
}
