// Raw wall-clock microbenchmarks (google-benchmark) of the host BLAS /
// LAPACK substrate that executes every simulated kernel's numerics.
#include <benchmark/benchmark.h>

#include "blas/lapack.hpp"
#include "blas/level2.hpp"
#include "blas/level3.hpp"
#include "common/matrix.hpp"
#include "common/spd.hpp"

namespace {

using namespace ftla;
using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix<double> a(n, n), b(n, n), c(n, n);
  make_uniform(a, 1);
  make_uniform(b, 2);
  for (auto _ : state) {
    blas::gemm(Trans::No, Trans::Yes, -1.0, a.view(), b.view(), 1.0,
               c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Syrk(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix<double> a(n, 2 * n), c(n, n);
  make_uniform(a, 3);
  for (auto _ : state) {
    blas::syrk(Uplo::Lower, Trans::No, -1.0, a.view(), 1.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          blas::syrk_flops(n, 2 * n));
}
BENCHMARK(BM_Syrk)->Arg(64)->Arg(128)->Arg(256);

void BM_Trsm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix<double> a(n, n), b(4 * n, n);
  make_uniform(a, 4);
  for (int i = 0; i < n; ++i) a(i, i) = n + i;
  make_uniform(b, 5);
  for (auto _ : state) {
    blas::trsm(Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 1.0,
               a.view(), b.view());
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          blas::trsm_flops(Side::Right, 4 * n, n));
}
BENCHMARK(BM_Trsm)->Arg(64)->Arg(128);

void BM_Potf2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix<double> a(n, n);
  make_spd_diag_dominant(a, 6);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix<double> work = a;
    state.ResumeTiming();
    blas::potf2(work.view());
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * blas::potf2_flops(n));
}
BENCHMARK(BM_Potf2)->Arg(64)->Arg(128)->Arg(256);

void BM_PotrfBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix<double> a(n, n);
  make_spd_diag_dominant(a, 7);
  for (auto _ : state) {
    state.PauseTiming();
    Matrix<double> work = a;
    state.ResumeTiming();
    blas::potrf(work.view(), 64);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * blas::potrf_flops(n));
}
BENCHMARK(BM_PotrfBlocked)->Arg(256)->Arg(512);

void BM_Gemv(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix<double> a(n, n), x(n, 1), y(n, 1);
  make_uniform(a, 8);
  make_uniform(x, 9);
  for (auto _ : state) {
    blas::gemv(Trans::Yes, 1.0, a.view(), x.data(), 1, 0.0, y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * blas::gemv_flops(n, n));
}
BENCHMARK(BM_Gemv)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
