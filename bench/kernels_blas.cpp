// Raw wall-clock throughput of the host level-3 BLAS substrate that
// executes every simulated kernel's numerics: GFLOP/s per kernel x size
// x thread count, plus the naive reference GEMM as the speedup baseline.
//
// Usage:
//   kernels_blas [--sizes 256,512,1024] [--threads 1,2,4]
//                [--metrics-out FILE]   (default BENCH_kernels_blas.json)
//
// Each measurement reports the fastest repetition; gauges are named
// bench.<kernel>.n<size>.t<threads>.gflops.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "blas/lapack.hpp"
#include "blas/level3.hpp"
#include "blas/reference.hpp"
#include "common/matrix.hpp"
#include "common/spd.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace ftla;
using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int v = std::stoi(tok);
    if (v > 0) out.push_back(v);
  }
  return out;
}

std::string flag_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return {};
}

std::string join(const std::vector<int>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

/// Best-of-N wall time of `body` (seconds); repetitions adapt to the
/// cost of one call so each cell measures for roughly a quarter second.
template <typename Fn>
double best_seconds(Fn&& body) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  body();  // warmup, also sizes the repetition count
  const double once =
      std::chrono::duration<double>(clock::now() - t0).count();
  const int reps =
      std::clamp(static_cast<int>(0.25 / std::max(once, 1e-4)), 1, 50);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t1 = clock::now();
    body();
    const double dt =
        std::chrono::duration<double>(clock::now() - t1).count();
    best = std::min(best, dt);
  }
  return best;
}

struct Cell {
  std::string kernel;
  int n;
  int threads;
  double gflops;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {256, 512, 1024};
  std::vector<int> threads = {1, 2, 4};
  if (const std::string s = flag_value(argc, argv, "--sizes"); !s.empty()) {
    sizes = parse_int_list(s);
  }
  if (const std::string s = flag_value(argc, argv, "--threads"); !s.empty()) {
    threads = parse_int_list(s);
  }
  std::string out = ftla::bench::metrics_out_path(argc, argv);
  if (out.empty()) out = "BENCH_kernels_blas.json";

  bench::print_header(
      "kernels_blas",
      "Host level-3 BLAS GFLOP/s (best repetition); gemm_naive is the "
      "single-threaded reference-kernel baseline.");

  std::vector<Cell> cells;
  for (const int n : sizes) {
    Matrix<double> a(n, n), b(n, n);
    make_uniform(a, 1);
    make_uniform(b, 2);
    Matrix<double> tri(n, n);
    make_uniform(tri, 3);
    for (int i = 0; i < n; ++i) tri(i, i) = n + i;

    // Naive baseline: blas/reference.cpp GEMM, inherently single-thread.
    {
      Matrix<double> c(n, n);
      const double sec = best_seconds([&] {
        blas::ref::gemm(Trans::No, Trans::Yes, -1.0, a.view(), b.view(), 1.0,
                        c.view());
      });
      cells.push_back({"gemm_naive", n, 1, 2.0 * n * n * n / sec / 1e9});
    }

    for (const int t : threads) {
      common::set_global_threads(t);
      {
        Matrix<double> c(n, n);
        const double sec = best_seconds([&] {
          blas::gemm(Trans::No, Trans::Yes, -1.0, a.view(), b.view(), 1.0,
                     c.view());
        });
        cells.push_back({"gemm", n, t, 2.0 * n * n * n / sec / 1e9});
      }
      {
        Matrix<double> c(n, n);
        const double sec = best_seconds([&] {
          blas::syrk(Uplo::Lower, Trans::No, -1.0, a.view(), 1.0, c.view());
        });
        cells.push_back(
            {"syrk", n, t,
             static_cast<double>(blas::syrk_flops(n, n)) / sec / 1e9});
      }
      {
        Matrix<double> x(n, n);
        make_uniform(x, 4);
        Matrix<double> work = x;
        const double sec = best_seconds([&] {
          work = x;
          blas::trsm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0,
                     tri.view(), work.view());
        });
        cells.push_back(
            {"trsm", n, t,
             static_cast<double>(blas::trsm_flops(Side::Left, n, n)) / sec /
                 1e9});
      }
      {
        // Side::Right exercises the column-blocked right-side path.
        Matrix<double> x(n, n);
        make_uniform(x, 5);
        Matrix<double> work = x;
        const double sec = best_seconds([&] {
          work = x;
          blas::trmm(Side::Right, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0,
                     tri.view(), work.view());
        });
        cells.push_back(
            {"trmm", n, t,
             static_cast<double>(blas::trsm_flops(Side::Right, n, n)) / sec /
                 1e9});
      }
    }
  }
  common::set_global_threads(1);

  Table table({"kernel", "n", "threads", "GFLOP/s"});
  obs::MetricsRegistry metrics;
  for (const Cell& c : cells) {
    table.add_row({c.kernel, std::to_string(c.n), std::to_string(c.threads),
                   Table::num(c.gflops)});
    metrics.set_gauge("bench." + c.kernel + ".n" + std::to_string(c.n) +
                          ".t" + std::to_string(c.threads) + ".gflops",
                      c.gflops);
  }
  bench::print_table(table);

  bench::write_bench_report(out, "kernels_blas",
                            {{"sizes", join(sizes)},
                             {"threads", join(threads)},
                             {"timer", "best-of-reps steady_clock"}},
                            metrics);
  return 0;
}
