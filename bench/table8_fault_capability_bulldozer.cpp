// Paper Table VIII: fault-tolerance capability on BULLDOZER64 with a
// 30720 x 30720 Cholesky decomposition.
#include "fault_capability.hpp"

int main(int argc, char** argv) {
  ftla::bench::run_fault_capability(
      ftla::sim::bulldozer64(), 30720,
      /*reduced_n=*/1024,
      /*reduced_block=*/128, ftla::bench::profile_out_path(argc, argv));
  return 0;
}
