// Ablation: block size B versus fault-tolerance overhead.
//
// The paper fixes B to MAGMA's per-GPU default (256 Fermi / 512 Kepler)
// and notes (§VI) that both the space overhead (2/B) and the asymptotic
// runtime overhead ((2K+2)/BK) shrink with B, while smaller blocks give
// denser protection (more checksums per element). This sweep measures
// the trade-off on the simulator and compares with the analytic model.
#include <iostream>

#include "abft/overhead_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace ftla;
  using namespace ftla::bench;

  const int n = 10240;

  for (const auto& profile : {sim::tardis(), sim::bulldozer64()}) {
    print_header("Block-size ablation on " + profile.name,
                 "Enhanced Online-ABFT, K = 1, n = 10240. Model = paper "
                 "Table VI; measured = virtual-clock overhead vs a NoFT "
                 "baseline at the same B.");
    Table t({"B", "measured overhead", "model overhead", "space overhead",
             "baseline GFLOP/s"});
    for (int b : {64, 128, 256, 512, 1024}) {
      abft::CholeskyOptions noft;
      noft.variant = abft::Variant::NoFt;
      noft.block_size = b;
      abft::CholeskyOptions enh = enhanced_options(profile, 1);
      enh.block_size = b;
      const double base = timing_run(profile, n, noft);
      const double t_enh = timing_run(profile, n, enh);
      const double flops = static_cast<double>(n) * n * n / 3.0 / 1e9;
      t.add_row({std::to_string(b), Table::pct(t_enh / base - 1.0),
                 Table::pct(abft::enhanced_relative_overhead(n, b, 1)),
                 Table::pct(2.0 / b), Table::num(flops / base, 5)});
    }
    print_table(t);
  }
  std::cout << "Expected: measured overhead falls with B (tracking the "
               "2K+2/BK model term plus per-kernel overheads), confirming "
               "why MAGMA's large default blocks also suit ABFT.\n";
  return 0;
}
