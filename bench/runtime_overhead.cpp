// Task-graph runtime vs bulk-synchronous oracle: simulated makespan of
// the Enhanced Online-ABFT Cholesky under both execution structures
// (docs/runtime.md), on both testbeds, at CI-tractable sizes.
//
// The DAG runtime issues the same kernels as bulk (bit-identical
// numerics — tests/test_runtime_drivers.cpp) but replaces the bulk
// verify-batch barriers with per-block dependencies, so verification
// hides in compute/transfer slack and iterations overlap. This bench
// *asserts* the makespan is strictly shorter at every measured point
// and exits nonzero otherwise, making the win a regression-gated
// invariant rather than a claim.
//
// Flags: `--sizes N1,N2,...` replaces the pinned sizes,
// `--metrics-out FILE` dumps every measurement (byte-stable JSON; the
// perf gate compares it against bench/baselines/BENCH_runtime.json).
//
// Placement is pinned to Gpu on both machines: the Cpu-mirror placement
// keeps checksum updates on the host and falls back to bulk by design,
// so it cannot exercise the graph path.
#include <iostream>

#include "bench_util.hpp"

namespace {

bool sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes,
           ftla::obs::MetricsRegistry* metrics) {
  using namespace ftla;
  using namespace ftla::bench;

  print_header("Task-graph runtime — makespan vs bulk on " + profile.name,
               "Enhanced Online-ABFT, K = 1, placement Gpu, concurrent "
               "recalc. delta = 1 - dag/bulk (positive = DAG shorter).");
  Table t({"n", "bulk (s)", "dag (s)", "delta"});
  bool strictly_shorter = true;
  for (int n : sizes) {
    abft::CholeskyOptions opt;
    opt.variant = abft::Variant::EnhancedOnline;
    opt.placement = abft::UpdatePlacement::Gpu;
    opt.runtime = abft::RuntimeMode::Bulk;
    const double bulk = timing_run(profile, n, opt);
    opt.runtime = abft::RuntimeMode::Dag;
    const double dag = timing_run(profile, n, opt);
    const double delta = 1.0 - dag / bulk;
    strictly_shorter &= dag < bulk;
    t.add_row({std::to_string(n), Table::num(bulk, 6), Table::num(dag, 6),
               Table::pct(delta)});
    if (metrics != nullptr) {
      const std::string key =
          "bench.runtime." + profile.name + ".n" + std::to_string(n) + ".";
      metrics->set_gauge(key + "bulk_s", bulk);
      metrics->set_gauge(key + "dag_s", dag);
      metrics->set_gauge(key + "delta", delta);
    }
  }
  print_table(t);
  std::cout << "DAG strictly shorter at every size: "
            << (strictly_shorter ? "yes" : "NO") << " (required)\n";
  return strictly_shorter;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftla;
  using namespace ftla::bench;

  const std::string metrics_path = metrics_out_path(argc, argv);
  const std::vector<int> sizes = sizes_override(argc, argv, {2048, 4096});

  obs::MetricsRegistry metrics;
  obs::MetricsRegistry* mp = metrics_path.empty() ? nullptr : &metrics;
  bool ok = sweep(sim::tardis(), sizes, mp);
  ok &= sweep(sim::bulldozer64(), sizes, mp);

  write_bench_report(metrics_path, "runtime_overhead",
                     {{"variant", "enhanced"},
                      {"placement", "gpu"},
                      {"k", "1"},
                      {"max_n", std::to_string(sizes.back())}},
                     metrics);
  if (!ok) {
    std::cerr << "FAIL: DAG makespan not strictly below bulk\n";
    return 1;
  }
  return 0;
}
