// Quantifies the paper's §I motivation: general-purpose modular
// redundancy (DMR ~100% overhead to detect, TMR ~200% to correct) versus
// ABFT's few percent — on the same simulated machines, same workload.
#include <iostream>

#include "abft/modular_redundancy.hpp"
#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes) {
  using namespace ftla;
  using namespace ftla::bench;

  print_header("Modular redundancy vs ABFT on " + profile.name,
               "Relative overhead over the NoFT baseline. DMR detects "
               "only; TMR and Enhanced Online-ABFT both *correct* "
               "computing and storage errors.");
  Table t({"n", "dmr (detect)", "tmr (correct)", "offline-abft",
           "online-abft", "enhanced (K=5)"});
  for (int n : sizes) {
    const double base = timing_run(profile, n, noft_options());
    double dmr, tmr;
    {
      sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
      dmr = abft::dmr_cholesky(m, nullptr, n).seconds;
    }
    {
      sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
      tmr = abft::tmr_cholesky(m, nullptr, n).seconds;
    }
    const double off =
        timing_run(profile, n, variant_options(profile, abft::Variant::Offline));
    const double onl =
        timing_run(profile, n, variant_options(profile, abft::Variant::Online));
    const double enh = timing_run(profile, n, enhanced_options(profile, 5));
    t.add_row({std::to_string(n), Table::pct(dmr / base - 1.0),
               Table::pct(tmr / base - 1.0), Table::pct(off / base - 1.0),
               Table::pct(onl / base - 1.0), Table::pct(enh / base - 1.0)});
  }
  print_table(t);
}

}  // namespace

int main() {
  sweep(ftla::sim::tardis(), {5120, 10240, 20480});
  sweep(ftla::sim::bulldozer64(), {10240, 20480, 30720});
  std::cout << "Paper §I: DMR costs ~100% and only detects; TMR costs "
               "~200%; ABFT corrects the same faults for a few percent.\n";
  return 0;
}
