// Paper Table VII: fault-tolerance capability on TARDIS with a
// 20480 x 20480 Cholesky decomposition.
#include "fault_capability.hpp"

int main(int argc, char** argv) {
  ftla::bench::run_fault_capability(
      ftla::sim::tardis(), 20480,
      /*reduced_n=*/1024,
      /*reduced_block=*/128, ftla::bench::profile_out_path(argc, argv));
  return 0;
}
