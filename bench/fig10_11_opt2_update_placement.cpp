// Paper Figures 10 and 11: Optimization 2 — relative overhead before
// (checksum updating blocking the compute stream) and after (updating
// overlapped on the CPU for Tardis, on a concurrent GPU stream for
// Bulldozer64, as the paper's model decides).
//
// Flags: `--sizes N1,N2,...` replaces the paper-scale sweeps;
// `--profile-out FILE` saves the simulated-time profile of the
// largest-size after-Opt-2 run on Tardis (perf-regression gate input).
#include <iostream>

#include "abft/opt2_model.hpp"
#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig,
           ftla::obs::ProfileReport* prof) {
  using namespace ftla;
  using namespace ftla::bench;

  const auto placement = paper_placement(profile);
  print_header(std::string("Figure ") + fig +
                   " — Opt 2 (checksum update placement) on " + profile.name,
               std::string("After-curve places updates on the ") +
                   (placement == abft::UpdatePlacement::Cpu ? "CPU"
                                                            : "GPU") +
                   " (paper §VII-D); Enhanced Online-ABFT, K = 1, "
                   "concurrent recalc on.");
  Table t({"n", "overhead before opt2", "overhead after opt2",
           "reduction (abs)", "model picks"});
  for (int n : sizes) {
    const double base = timing_run(profile, n, noft_options());
    abft::CholeskyOptions before = enhanced_options(profile);
    before.placement = abft::UpdatePlacement::Blocking;
    abft::CholeskyOptions after = enhanced_options(profile);
    after.placement = placement;
    const double ovh_before = timing_run(profile, n, before) / base - 1.0;
    const bool capture = prof != nullptr && n == sizes.back();
    const double ovh_after =
        (capture ? timing_run_profiled(profile, n, after, prof)
                 : timing_run(profile, n, after)) /
            base -
        1.0;
    const auto model = abft::opt2_decide(profile, n, profile.magma_block_size,
                                         1);
    t.add_row({std::to_string(n), Table::pct(ovh_before),
               Table::pct(ovh_after), Table::pct(ovh_before - ovh_after),
               to_string(model.decision)});
  }
  print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftla;
  using namespace ftla::bench;

  const std::string profile_path = profile_out_path(argc, argv);
  const auto t_sizes = sizes_override(argc, argv, tardis_sizes());
  const auto b_sizes = sizes_override(argc, argv, bulldozer_sizes());

  obs::ProfileReport prof;
  sweep(sim::tardis(), t_sizes, "10", profile_path.empty() ? nullptr : &prof);
  sweep(sim::bulldozer64(), b_sizes, "11", nullptr);
  std::cout << "Paper: Opt 2 reduces relative overhead by ~5% on Tardis "
               "(CPU updating) and ~8% on Bulldozer64 (GPU updating).\n";
  write_bench_profile(profile_path, "fig10_11_opt2_update_placement",
                      {{"machine", "tardis"},
                       {"variant", "enhanced"},
                       {"n", std::to_string(t_sizes.back())},
                       {"k", "1"}},
                      prof);
  return 0;
}
