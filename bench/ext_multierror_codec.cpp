// Extension experiment: correction capability vs checksum redundancy
// (paper §IV-A: "m+1 column checksums could locate and correct up to m
// errors per column").
//
// For each redundancy R and error count E, plant E random errors in one
// block column and attempt decode: the success region demonstrates the
// floor(R/2) law (unknown locations need 2m syndromes), and the cost
// columns show what the extra protection costs in checksum space and
// encode/recalc FLOPs.
#include <algorithm>
#include <iostream>

#include "abft/wcodec.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/spd.hpp"

int main() {
  using namespace ftla;
  using namespace ftla::bench;

  const int block = 64;
  const int trials = 200;

  print_header("Multi-error checksum codec — correction capability",
               "Success rate over 200 random trials per cell; block 64, "
               "errors uniformly placed in one column with magnitudes in "
               "[1e2, 1e5].");

  Table t({"redundancy R", "capacity", "1 error", "2 errors", "3 errors",
           "4 errors", "space ovh (B=256)", "recalc flops x"});
  for (int r : {2, 3, 4, 6, 8}) {
    abft::WeightedCodec codec(r);
    std::vector<std::string> row{std::to_string(r),
                                 std::to_string(codec.max_correctable())};
    Rng rng(1000 + r);
    for (int nerr = 1; nerr <= 4; ++nerr) {
      int ok = 0;
      for (int trial = 0; trial < trials; ++trial) {
        Matrix<double> a(block, 4);
        make_uniform(a, 10'000 + r * 100 + nerr * 10 + trial);
        const Matrix<double> orig = a;
        Matrix<double> chk(r, 4);
        codec.encode(a.view(), chk.view());
        std::vector<int> rows;
        while (static_cast<int>(rows.size()) < nerr) {
          const int candidate = rng.uniform_int(0, block - 1);
          if (std::find(rows.begin(), rows.end(), candidate) == rows.end())
            rows.push_back(candidate);
        }
        for (int er : rows) {
          a(er, 1) += rng.uniform(1e2, 1e5) *
                      (rng.next_double() < 0.5 ? -1.0 : 1.0);
        }
        auto out = codec.verify_host(a.view(), chk.view(), abft::Tolerance{});
        bool good = !out.uncorrectable && out.errors_corrected == nerr;
        if (good) {
          for (int i = 0; i < block; ++i) {
            if (std::abs(a(i, 1) - orig(i, 1)) >
                1e-4 * std::max(1.0, std::abs(orig(i, 1)))) {
              good = false;
              break;
            }
          }
        }
        ok += good;
      }
      row.push_back(Table::pct(static_cast<double>(ok) / trials, 0));
    }
    // Space overhead R/B; encode/recalc work scales linearly with R.
    row.push_back(Table::pct(static_cast<double>(r) / 256.0));
    row.push_back(Table::num(r / 2.0, 2) + "x");
    t.add_row(row);
  }
  print_table(t);

  std::cout
      << "Expected: each row corrects up to floor(R/2) errors at ~100% and\n"
         "fails (flagged uncorrectable, never silently mis-corrected)\n"
         "beyond — the real-field Reed-Solomon law behind the paper's\n"
         "m+1-checksum remark. Extra redundancy costs linearly more\n"
         "checksum space and recalculation work.\n";
  return 0;
}
