// Shared implementation of paper Tables VII/VIII: fault-tolerance
// capability under injected computing and storage errors.
//
// Method: the error behaviour (corrected in place vs full re-run) is
// measured with REAL numerics and REAL injected faults at a reduced
// matrix size on the same machine profile; the resulting time ratios are
// then applied to the paper-scale no-error virtual times (TimingOnly).
// This keeps the expensive numerics tractable while reporting the table
// at the paper's matrix sizes.
#pragma once

#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "blas/lapack.hpp"
#include "common/spd.hpp"
#include "fault/fault.hpp"

namespace ftla::bench {

struct CapabilityCell {
  double reduced_seconds = 0.0;
  double scaled_seconds = 0.0;  // paper-scale estimate
  int reruns = 0;
  int corrected = 0;
  bool success = false;
};

/// `profile_out`, when non-empty, additionally replays the Enhanced /
/// memory-error scenario under the simulated-time profiler and writes
/// its ProfileReport there — the recovery path (Verify + Recover
/// phases) is this table's signature workload.
inline void run_fault_capability(const sim::MachineProfile& profile,
                                 int paper_n, int reduced_n,
                                 int reduced_block,
                                 const std::string& profile_out = "") {
  using abft::Variant;
  const int nb = reduced_n / reduced_block;

  print_header(
      "Table " + std::string(profile.name == "tardis" ? "VII" : "VIII") +
          " — fault tolerance capability on " + profile.name,
      "Behaviour measured with real numerics + injected faults at n = " +
      std::to_string(reduced_n) + " (B = " + std::to_string(reduced_block) +
      "); times scaled to the paper's n = " + std::to_string(paper_n) +
      " via the no-error virtual time of each scheme.");

  // Paper scenarios: one computing error in a GEMM output mid-run, one
  // multi-bit storage error in a decomposed block SYRK is about to read.
  auto make_plan = [&](const std::string& scenario) {
    std::vector<fault::FaultSpec> plan;
    if (scenario == "computing") {
      fault::FaultSpec s;
      s.type = fault::FaultType::Computing;
      s.op = fault::Op::Gemm;
      s.iteration = nb / 3;
      s.magnitude = 1e6;
      plan.push_back(s);
    } else if (scenario == "memory") {
      fault::FaultSpec s;
      s.type = fault::FaultType::Storage;
      s.op = fault::Op::Syrk;
      s.iteration = nb / 2;
      s.block_row = nb / 2;
      s.block_col = nb / 2 - 1;
      s.elem_row = 2;
      s.elem_col = 3;
      s.bits = {20, 44, 54};
      plan.push_back(s);
    }
    return plan;
  };

  Matrix<double> a0(reduced_n, reduced_n);
  make_spd_diag_dominant(a0, 20480);

  auto reduced_cell = [&](Variant v, const std::string& scenario) {
    CapabilityCell cell;
    auto a = a0;
    sim::Machine m(profile, sim::ExecutionMode::Numeric);
    abft::CholeskyOptions opt = variant_options(profile, v);
    opt.block_size = reduced_block;
    fault::Injector inj(make_plan(scenario));
    auto res = abft::cholesky(m, &a, reduced_n, opt, &inj);
    cell.reduced_seconds = res.seconds;
    cell.reruns = res.reruns;
    cell.corrected = res.errors_corrected;
    cell.success = res.success;
    if (res.success) {
      const double resid = blas::cholesky_residual(a0.view(), a.view());
      if (resid > 1e-6) cell.success = false;  // silently wrong counts as failure
    }
    return cell;
  };

  const char* scenarios[] = {"none", "computing", "memory"};
  const Variant variants[] = {Variant::EnhancedOnline, Variant::Online,
                              Variant::Offline};

  Table t({"scheme", "no error (s)", "computing error (s)",
           "memory error (s)", "reruns (comp/mem)", "corrected (comp/mem)"});
  for (Variant v : variants) {
    CapabilityCell cells[3];
    for (int s = 0; s < 3; ++s) cells[s] = reduced_cell(v, scenarios[s]);
    // Paper-scale no-error baseline for this scheme.
    const double paper_base =
        timing_run(profile, paper_n, [&] {
          abft::CholeskyOptions opt = variant_options(profile, v);
          return opt;
        }());
    for (int s = 0; s < 3; ++s) {
      const double ratio =
          cells[s].reduced_seconds / cells[0].reduced_seconds;
      cells[s].scaled_seconds = paper_base * ratio;
      if (!cells[s].success) {
        std::cerr << "warning: " << to_string(v) << "/" << scenarios[s]
                  << " did not produce a correct factor\n";
      }
    }
    t.add_row({to_string(v), Table::num(cells[0].scaled_seconds, 6),
               Table::num(cells[1].scaled_seconds, 6),
               Table::num(cells[2].scaled_seconds, 6),
               std::to_string(cells[1].reruns) + "/" +
                   std::to_string(cells[2].reruns),
               std::to_string(cells[1].corrected) + "/" +
                   std::to_string(cells[2].corrected)});
  }
  print_table(t);

  std::cout
      << "Expected shape (paper): all schemes match on 'no error'; the\n"
         "computing-error column doubles Offline only; the memory-error\n"
         "column doubles both Offline and Online; Enhanced stays flat in\n"
         "every column because it corrects both error types in place.\n";

  if (!profile_out.empty()) {
    auto a = a0;
    sim::Machine m(profile, sim::ExecutionMode::Numeric);
    obs::SpanStore spans;
    m.set_span_store(&spans);
    abft::CholeskyOptions opt =
        variant_options(profile, Variant::EnhancedOnline);
    opt.block_size = reduced_block;
    opt.profile = &spans;
    fault::Injector inj(make_plan("memory"));
    abft::cholesky(m, &a, reduced_n, opt, &inj);
    write_bench_profile(profile_out, "fault_capability",
                        {{"machine", profile.name},
                         {"variant", "enhanced"},
                         {"scenario", "memory"},
                         {"n", std::to_string(reduced_n)},
                         {"k", "1"}},
                        sim::build_profile(m, spans));
  }
}

}  // namespace ftla::bench
