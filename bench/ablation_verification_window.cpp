// Ablation (beyond the paper's tables): how the verification *point*
// determines the fate of a storage error.
//
// A multi-bit storage error is injected into a decomposed slate block at
// every (iteration, consumer-op) combination of a factorization, and
// each scheme's outcome is classified:
//   corrected  — repaired in place, clean factor, no re-run
//   rerun      — detected as unrecoverable, recovered by restarting
//   silent     — run "succeeded" but the factor is wrong (the failure
//                mode the paper's pre-read verification eliminates)
//   fail-stop  — positive-definiteness broke and recovery was exhausted
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "blas/lapack.hpp"
#include "common/spd.hpp"
#include "fault/fault.hpp"

int main() {
  using namespace ftla;
  using namespace ftla::bench;
  using abft::Variant;

  const int n = 512;
  const int block = 64;
  const int nb = n / block;
  auto profile = sim::tardis();

  print_header("Ablation — verification window vs storage-error fate",
               "One multi-bit storage fault per run, swept over every "
               "(iteration, consumer) hook; n = 512, B = 64, Tardis "
               "profile, real numerics. 'silent' = wrong factor reported "
               "as success.");

  Matrix<double> a0(n, n);
  make_spd_diag_dominant(a0, 99);

  struct Counts {
    int corrected = 0, rerun = 0, silent = 0, fail_stop = 0, runs = 0;
  };
  std::map<Variant, Counts> table;

  Rng rng(7);
  for (Variant v :
       {Variant::EnhancedOnline, Variant::Online, Variant::Offline}) {
    for (int iter = 1; iter < nb; ++iter) {
      for (auto op : {fault::Op::Syrk, fault::Op::Gemm}) {
        if (op == fault::Op::Gemm && iter + 1 >= nb) continue;
        fault::FaultSpec s;
        s.type = fault::FaultType::Storage;
        s.op = op;
        s.iteration = iter;
        s.block_col = rng.uniform_int(0, iter - 1);
        s.block_row = op == fault::Op::Syrk
                          ? iter
                          : rng.uniform_int(iter + 1, nb - 1);
        s.elem_row = rng.uniform_int(0, block - 1);
        s.elem_col = rng.uniform_int(0, block - 1);
        s.bits = {20, 44, 54};

        auto a = a0;
        sim::Machine m(profile, sim::ExecutionMode::Numeric);
        abft::CholeskyOptions opt = variant_options(profile, v);
        opt.block_size = block;
        fault::Injector inj({s});
        auto res = abft::cholesky(m, &a, n, opt, &inj);

        auto& c = table[v];
        ++c.runs;
        if (!res.success) {
          ++c.fail_stop;
        } else if (res.reruns > 0) {
          ++c.rerun;
        } else if (blas::cholesky_residual(a0.view(), a.view()) > 1e-6) {
          ++c.silent;
        } else {
          ++c.corrected;
        }
      }
    }
  }

  Table t({"scheme", "runs", "corrected in place", "recovered by rerun",
           "SILENT corruption", "fail-stop"});
  for (const auto& [v, c] : table) {
    t.add_row({to_string(v), std::to_string(c.runs),
               std::to_string(c.corrected), std::to_string(c.rerun),
               std::to_string(c.silent), std::to_string(c.fail_stop)});
  }
  print_table(t);

  std::cout
      << "Expected: Enhanced corrects 100% in place. Online/Offline split\n"
         "between rerun recovery (diagonal-path errors break the checksum\n"
         "relation loudly) and SILENT corruption (GEMM-path slate errors\n"
         "poison downstream blocks while leaving their checksums\n"
         "consistent) — the paper's motivating failure mode for pre-read\n"
         "verification.\n";
  return 0;
}
