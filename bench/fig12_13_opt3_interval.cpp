// Paper Figures 12 and 13: Optimization 3 — relative overhead of
// Enhanced Online-ABFT as the verification interval K is adjusted
// (K = 1, 3, 5), with Opts 1-2 enabled.
//
// Flags: `--sizes N1,N2,...` replaces the paper-scale sweeps;
// `--profile-out FILE` saves the simulated-time profile of the
// largest-size K = 5 run on Tardis (perf-regression gate input).
#include <iostream>

#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig,
           ftla::obs::ProfileReport* prof) {
  using namespace ftla;
  using namespace ftla::bench;

  print_header(std::string("Figure ") + fig +
                   " — Opt 3 (verification interval K) on " + profile.name,
               "Relative overhead vs NoFT baseline; K gates GEMM/TRSM-panel "
               "input verification (SYRK inputs always verified).");
  Table t({"n", "K=1", "K=3", "K=5"});
  for (int n : sizes) {
    const double base = timing_run(profile, n, noft_options());
    std::vector<std::string> row{std::to_string(n)};
    for (int k : {1, 3, 5}) {
      const bool capture = prof != nullptr && n == sizes.back() && k == 5;
      const double seconds =
          capture ? timing_run_profiled(profile, n,
                                        enhanced_options(profile, k), prof)
                  : timing_run(profile, n, enhanced_options(profile, k));
      row.push_back(Table::pct(seconds / base - 1.0));
    }
    t.add_row(row);
  }
  print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftla;
  using namespace ftla::bench;

  const std::string profile_path = profile_out_path(argc, argv);
  const auto t_sizes = sizes_override(argc, argv, tardis_sizes());
  const auto b_sizes = sizes_override(argc, argv, bulldozer_sizes());

  obs::ProfileReport prof;
  sweep(sim::tardis(), t_sizes, "12", profile_path.empty() ? nullptr : &prof);
  sweep(sim::bulldozer64(), b_sizes, "13", nullptr);
  std::cout << "Paper: overhead drops significantly from K = 1 to K = 5 on "
               "both systems.\n";
  write_bench_profile(profile_path, "fig12_13_opt3_interval",
                      {{"machine", "tardis"},
                       {"variant", "enhanced"},
                       {"n", std::to_string(t_sizes.back())},
                       {"k", "5"}},
                      prof);
  return 0;
}
