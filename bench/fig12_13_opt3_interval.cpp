// Paper Figures 12 and 13: Optimization 3 — relative overhead of
// Enhanced Online-ABFT as the verification interval K is adjusted
// (K = 1, 3, 5), with Opts 1-2 enabled.
#include <iostream>

#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig) {
  using namespace ftla;
  using namespace ftla::bench;

  print_header(std::string("Figure ") + fig +
                   " — Opt 3 (verification interval K) on " + profile.name,
               "Relative overhead vs NoFT baseline; K gates GEMM/TRSM-panel "
               "input verification (SYRK inputs always verified).");
  Table t({"n", "K=1", "K=3", "K=5"});
  for (int n : sizes) {
    const double base = timing_run(profile, n, noft_options());
    std::vector<std::string> row{std::to_string(n)};
    for (int k : {1, 3, 5}) {
      const double ovh =
          timing_run(profile, n, enhanced_options(profile, k)) / base - 1.0;
      row.push_back(Table::pct(ovh));
    }
    t.add_row(row);
  }
  print_table(t);
}

}  // namespace

int main() {
  sweep(ftla::sim::tardis(), ftla::bench::tardis_sizes(), "12");
  sweep(ftla::sim::bulldozer64(), ftla::bench::bulldozer_sizes(), "13");
  std::cout << "Paper: overhead drops significantly from K = 1 to K = 5 on "
               "both systems.\n";
  return 0;
}
