// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure of the paper. The
// figure benches sweep paper-scale matrix sizes in TimingOnly mode (the
// full call schedule is priced on the virtual clock without numeric
// payloads); the fault-capability tables run full numerics with real
// injected faults at a reduced size and combine the measured behaviour
// ratios with paper-scale baseline times.
// Every bench accepts `--metrics-out FILE` to additionally dump its
// measurements as a schema-versioned MetricsReport (see
// docs/observability.md), so table regeneration is machine-diffable,
// and `--profile-out FILE` to save the simulated-time profile of one
// representative run (the largest fully optimized configuration) as a
// schema-versioned ProfileReport for the perf-regression gate. The
// performance bench also accepts `--timeseries-out FILE` for a
// windowed occupancy TimeSeriesReport of that representative run. All
// three artifacts are inputs to ftla_report_cli, which fuses them into
// the self-contained HTML run report.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "abft/cholesky.hpp"
#include "abft/cula_like.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "obs/profile_report.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/profiler.hpp"

namespace ftla::bench {

/// The paper's sweep for each testbed (Section VII-A).
inline std::vector<int> tardis_sizes() {
  return {5120, 7680, 10240, 12800, 15360, 17920, 20480, 23040};
}
inline std::vector<int> bulldozer_sizes() {
  return {5120, 10240, 15360, 20480, 25600, 30720};
}

/// Virtual seconds of one TimingOnly factorization.
inline double timing_run(const sim::MachineProfile& profile, int n,
                         const abft::CholeskyOptions& opt) {
  sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
  auto res = abft::cholesky(m, nullptr, n, opt);
  if (!res.success) {
    std::cerr << "timing run failed: " << res.note << "\n";
    std::exit(1);
  }
  return res.seconds;
}

/// Like timing_run, but with the simulated-time profiler attached:
/// `*out` receives the analyzed ProfileReport of the run.
inline double timing_run_profiled(const sim::MachineProfile& profile, int n,
                                  abft::CholeskyOptions opt,
                                  obs::ProfileReport* out) {
  sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
  obs::SpanStore spans;
  m.set_span_store(&spans);
  opt.profile = &spans;
  auto res = abft::cholesky(m, nullptr, n, opt);
  if (!res.success) {
    std::cerr << "timing run failed: " << res.note << "\n";
    std::exit(1);
  }
  *out = sim::build_profile(m, spans);
  return res.seconds;
}

inline abft::CholeskyOptions noft_options() {
  abft::CholeskyOptions opt;
  opt.variant = abft::Variant::NoFt;
  return opt;
}

/// The per-system Opt-2 placement the paper uses (§VII-D).
inline abft::UpdatePlacement paper_placement(
    const sim::MachineProfile& profile) {
  return profile.name == "tardis" ? abft::UpdatePlacement::Cpu
                                  : abft::UpdatePlacement::Gpu;
}

/// Fully optimized Enhanced Online-ABFT configuration for a system.
inline abft::CholeskyOptions enhanced_options(
    const sim::MachineProfile& profile, int verify_interval = 1) {
  abft::CholeskyOptions opt;
  opt.variant = abft::Variant::EnhancedOnline;
  opt.verify_interval = verify_interval;
  opt.concurrent_recalc = true;
  opt.placement = paper_placement(profile);
  return opt;
}

inline abft::CholeskyOptions variant_options(
    const sim::MachineProfile& profile, abft::Variant v,
    int verify_interval = 1) {
  abft::CholeskyOptions opt = enhanced_options(profile, verify_interval);
  opt.variant = v;
  return opt;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "\n=== " << title << " ===\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "\n";
}

inline void print_table(const Table& t, bool csv = true) {
  t.print(std::cout);
  if (csv) {
    std::cout << "\ncsv:\n";
    t.print_csv(std::cout);
  }
  std::cout << std::endl;
}

/// Returns the value of `--metrics-out FILE` from a bench's argv, or ""
/// when absent.
inline std::string metrics_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0) return argv[i + 1];
  }
  return {};
}

/// Returns the value of `--profile-out FILE` from a bench's argv, or ""
/// when absent.
inline std::string profile_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--profile-out") == 0) return argv[i + 1];
  }
  return {};
}

/// Returns the value of `--timeseries-out FILE` from a bench's argv, or
/// "" when absent.
inline std::string timeseries_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--timeseries-out") == 0) return argv[i + 1];
  }
  return {};
}

/// Returns the RuntimeMode selected by `--runtime bulk|dag` from a
/// bench's argv (docs/runtime.md), defaulting to Bulk when absent.
inline abft::RuntimeMode runtime_override(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--runtime") != 0) continue;
    if (std::strcmp(argv[i + 1], "dag") == 0) return abft::RuntimeMode::Dag;
    if (std::strcmp(argv[i + 1], "bulk") == 0) return abft::RuntimeMode::Bulk;
    std::cerr << "unknown --runtime " << argv[i + 1] << "\n";
    std::exit(2);
  }
  return abft::RuntimeMode::Bulk;
}

/// Returns the comma-separated list of `--sizes N1,N2,...` from a
/// bench's argv, or `fallback` when the flag is absent. Lets CI rerun a
/// paper-scale sweep at tractable sizes.
inline std::vector<int> sizes_override(int argc, char** argv,
                                       std::vector<int> fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--sizes") != 0) continue;
    std::vector<int> sizes;
    std::stringstream ss(argv[i + 1]);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const int n = std::atoi(item.c_str());
      if (n > 0) sizes.push_back(n);
    }
    if (!sizes.empty()) return sizes;
  }
  return fallback;
}

/// Writes a MetricsReport for a bench run when `path` is non-empty.
/// `meta` pairs describe the experiment (table name, machine, sizes...).
inline void write_bench_report(
    const std::string& path, const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const obs::MetricsRegistry& metrics) {
  if (path.empty()) return;
  obs::MetricsReport report;
  report.add_meta("bench", bench);
  for (const auto& [k, v] : meta) report.add_meta(k, v);
  report.metrics = metrics;
  if (obs::write_metrics_json_file(report, path)) {
    std::cout << "metrics report: " << path << "\n";
  } else {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
}

/// Re-runs one configuration with tracing enabled and writes the
/// windowed time-series report (resource occupancy over virtual time;
/// obs/timeseries.hpp) when `path` is non-empty. The rollup window is
/// makespan / 20, matching ftla_cli's --timeseries-out default, so
/// bench exports render side by side with run exports in
/// ftla_report_cli.
inline void write_bench_timeseries(
    const std::string& path, const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const sim::MachineProfile& profile, int n,
    const abft::CholeskyOptions& opt) {
  if (path.empty()) return;
  sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
  m.set_trace_enabled(true);
  auto res = abft::cholesky(m, nullptr, n, opt);
  if (!res.success) {
    std::cerr << "timeseries run failed: " << res.note << "\n";
    std::exit(1);
  }
  obs::TimeSeriesStore store;
  sim::append_machine_timeseries(m, &store);
  obs::TimeSeriesReport report =
      obs::build_timeseries_report(store, m.makespan() / 20.0);
  report.meta["bench"] = bench;
  for (const auto& [k, v] : meta) report.meta[k] = v;
  if (obs::write_timeseries_json_file(report, path)) {
    std::cout << "timeseries report: " << path << "\n";
  } else {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
}

/// Writes a bench's captured ProfileReport when `path` is non-empty.
/// `meta` pairs describe the profiled configuration (machine, n, K...).
inline void write_bench_profile(
    const std::string& path, const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& meta,
    obs::ProfileReport report) {
  if (path.empty()) return;
  report.meta["bench"] = bench;
  for (const auto& [k, v] : meta) report.meta[k] = v;
  if (obs::write_profile_json_file(report, path)) {
    std::cout << "profile report: " << path << "\n";
  } else {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
}

}  // namespace ftla::bench
