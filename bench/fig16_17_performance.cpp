// Paper Figures 16 and 17: performance (GFLOP/s) of the original
// MAGMA-style Cholesky, the CULA-like vendor baseline, and the three
// ABFT schemes, across the matrix-size sweep on both testbeds.
#include <iostream>

#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig) {
  using namespace ftla;
  using namespace ftla::bench;

  print_header(std::string("Figure ") + fig + " — performance on " +
                   profile.name,
               "GFLOP/s = (n^3/3) / virtual seconds. Enhanced is fully "
               "optimized (K = 5).");
  Table t({"n", "magma (no-ft)", "cula-like", "offline-abft", "online-abft",
           "enhanced-online-abft"});
  bool enhanced_always_beats_cula = true;
  for (int n : sizes) {
    const double flops = static_cast<double>(n) * n * n / 3.0 / 1e9;
    auto gf = [&](double seconds) { return flops / seconds; };
    const double magma = gf(timing_run(profile, n, noft_options()));
    sim::Machine mc(profile, sim::ExecutionMode::TimingOnly);
    const double cula =
        gf(abft::cula_like_cholesky(mc, nullptr, n).seconds);
    const double off = gf(timing_run(
        profile, n, variant_options(profile, abft::Variant::Offline)));
    const double onl = gf(timing_run(
        profile, n, variant_options(profile, abft::Variant::Online)));
    const double enh = gf(timing_run(profile, n, enhanced_options(profile, 5)));
    if (enh <= cula) enhanced_always_beats_cula = false;
    t.add_row({std::to_string(n), Table::num(magma, 5), Table::num(cula, 5),
               Table::num(off, 5), Table::num(onl, 5), Table::num(enh, 5)});
  }
  print_table(t);
  std::cout << "Enhanced > CULA at every size: "
            << (enhanced_always_beats_cula ? "yes" : "NO") << " (paper: yes)\n";
}

}  // namespace

int main() {
  sweep(ftla::sim::tardis(), ftla::bench::tardis_sizes(), "16");
  sweep(ftla::sim::bulldozer64(), ftla::bench::bulldozer_sizes(), "17");
  return 0;
}
