// Paper Figures 16 and 17: performance (GFLOP/s) of the original
// MAGMA-style Cholesky, the CULA-like vendor baseline, and the three
// ABFT schemes, across the matrix-size sweep on both testbeds.
//
// Flags: `--sizes N1,N2,...` replaces the paper-scale sweeps;
// `--runtime bulk|dag` selects the execution structure (docs/runtime.md);
// `--profile-out FILE` saves the simulated-time profile of the
// largest-size enhanced run on Tardis (perf-regression gate input);
// `--timeseries-out FILE` saves the windowed occupancy time-series of
// that same configuration (HTML report input).
#include <iostream>

#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig,
           ftla::abft::RuntimeMode runtime,
           ftla::obs::ProfileReport* prof) {
  using namespace ftla;
  using namespace ftla::bench;

  auto with_rt = [runtime](abft::CholeskyOptions o) {
    o.runtime = runtime;
    return o;
  };

  print_header(std::string("Figure ") + fig + " — performance on " +
                   profile.name,
               "GFLOP/s = (n^3/3) / virtual seconds. Enhanced is fully "
               "optimized (K = 5).");
  Table t({"n", "magma (no-ft)", "cula-like", "offline-abft", "online-abft",
           "enhanced-online-abft"});
  bool enhanced_always_beats_cula = true;
  for (int n : sizes) {
    const double flops = static_cast<double>(n) * n * n / 3.0 / 1e9;
    auto gf = [&](double seconds) { return flops / seconds; };
    const double magma = gf(timing_run(profile, n, with_rt(noft_options())));
    sim::Machine mc(profile, sim::ExecutionMode::TimingOnly);
    const double cula =
        gf(abft::cula_like_cholesky(mc, nullptr, n).seconds);
    const double off = gf(timing_run(
        profile, n, with_rt(variant_options(profile, abft::Variant::Offline))));
    const double onl = gf(timing_run(
        profile, n, with_rt(variant_options(profile, abft::Variant::Online))));
    const bool capture = prof != nullptr && n == sizes.back();
    const double enh =
        gf(capture
               ? timing_run_profiled(profile, n,
                                     with_rt(enhanced_options(profile, 5)),
                                     prof)
               : timing_run(profile, n, with_rt(enhanced_options(profile, 5))));
    if (enh <= cula) enhanced_always_beats_cula = false;
    t.add_row({std::to_string(n), Table::num(magma, 5), Table::num(cula, 5),
               Table::num(off, 5), Table::num(onl, 5), Table::num(enh, 5)});
  }
  print_table(t);
  std::cout << "Enhanced > CULA at every size: "
            << (enhanced_always_beats_cula ? "yes" : "NO") << " (paper: yes)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftla;
  using namespace ftla::bench;

  const std::string profile_path = profile_out_path(argc, argv);
  const auto t_sizes = sizes_override(argc, argv, tardis_sizes());
  const auto b_sizes = sizes_override(argc, argv, bulldozer_sizes());

  const abft::RuntimeMode runtime = runtime_override(argc, argv);
  obs::ProfileReport prof;
  sweep(sim::tardis(), t_sizes, "16", runtime,
        profile_path.empty() ? nullptr : &prof);
  sweep(sim::bulldozer64(), b_sizes, "17", runtime, nullptr);
  write_bench_profile(profile_path, "fig16_17_performance",
                      {{"machine", "tardis"},
                       {"variant", "enhanced"},
                       {"n", std::to_string(t_sizes.back())},
                       {"k", "5"}},
                      prof);
  write_bench_timeseries(timeseries_out_path(argc, argv),
                         "fig16_17_performance",
                         {{"machine", "tardis"},
                          {"variant", "enhanced"},
                          {"n", std::to_string(t_sizes.back())},
                          {"k", "5"}},
                         sim::tardis(), t_sizes.back(), [&] {
                           abft::CholeskyOptions o =
                               enhanced_options(sim::tardis(), 5);
                           o.runtime = runtime;
                           return o;
                         }());
  return 0;
}
