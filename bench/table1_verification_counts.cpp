// Reproduces paper Table I: the number of blocks each operation's
// verification touches per scheme, measured by instrumenting one
// factorization of each variant.
//
// Paper claim: Online-ABFT verifies O(1) blocks for POTF2/SYRK and O(n)
// for TRSM/GEMM per iteration; Enhanced Online-ABFT verifies O(1), O(n),
// O(n) and O(n^2) respectively, because inputs (not outputs) are checked.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ftla;
  using namespace ftla::bench;
  const std::string metrics_path = metrics_out_path(argc, argv);
  const std::string profile_path = profile_out_path(argc, argv);

  print_header(
      "Table I — verification comparison (measured block counts)",
      "One TimingOnly factorization per scheme on Tardis, n = 10240, "
      "B = 256 (40 block columns), K = 1.");

  const auto profile = sim::tardis();
  const int n = 10240;
  const int nb = n / 256;

  abft::VerificationCounters online;
  abft::VerificationCounters enhanced;
  obs::MetricsRegistry online_metrics;
  obs::MetricsRegistry enhanced_metrics;
  {
    sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
    auto opt = variant_options(profile, abft::Variant::Online);
    opt.metrics = &online_metrics;
    auto res = abft::cholesky(m, nullptr, n, opt);
    online = res.verified;
  }
  obs::ProfileReport prof;
  {
    sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
    obs::SpanStore spans;
    if (!profile_path.empty()) m.set_span_store(&spans);
    auto opt = variant_options(profile, abft::Variant::EnhancedOnline);
    opt.metrics = &enhanced_metrics;
    if (!profile_path.empty()) opt.profile = &spans;
    auto res = abft::cholesky(m, nullptr, n, opt);
    enhanced = res.verified;
    if (!profile_path.empty()) prof = sim::build_profile(m, spans);
  }

  auto per_iter = [&](long long total) {
    return Table::num(static_cast<double>(total) / nb, 4);
  };
  Table t({"operation", "online verify", "online blocks (total)",
           "online blocks/iter", "enhanced verify",
           "enhanced blocks (total)", "enhanced blocks/iter"});
  t.add_row({"POTF2", "L", std::to_string(online.potf2_blocks),
             per_iter(online.potf2_blocks), "A",
             std::to_string(enhanced.potf2_blocks),
             per_iter(enhanced.potf2_blocks)});
  t.add_row({"TRSM", "B", std::to_string(online.trsm_blocks),
             per_iter(online.trsm_blocks), "L, B",
             std::to_string(enhanced.trsm_blocks),
             per_iter(enhanced.trsm_blocks)});
  t.add_row({"SYRK", "A", std::to_string(online.syrk_blocks),
             per_iter(online.syrk_blocks), "A, C",
             std::to_string(enhanced.syrk_blocks),
             per_iter(enhanced.syrk_blocks)});
  t.add_row({"GEMM", "B", std::to_string(online.gemm_blocks),
             per_iter(online.gemm_blocks), "B, C, D",
             std::to_string(enhanced.gemm_blocks),
             per_iter(enhanced.gemm_blocks)});
  print_table(t);

  std::cout << "Paper's orders per iteration — Online: O(1), O(n), O(1), "
               "O(n); Enhanced: O(1), O(n), O(n), O(n^2).\n"
            << "Measured blocks/iter above: POTF2 ~1, TRSM ~nb/2, SYRK ~1 "
               "(online) vs ~nb/2 (enhanced), GEMM ~nb/2 (online) vs "
               "~nb^2/6 (enhanced) — the Table I shapes.\n";

  // Optional machine-readable export: the enhanced run's registry with
  // the online run's counters folded in under a distinct prefix.
  obs::MetricsRegistry combined;
  for (const auto& [name, v] : online_metrics.counters()) {
    combined.counter("online." + name) = v;
  }
  for (const auto& [name, v] : enhanced_metrics.counters()) {
    combined.counter("enhanced." + name) = v;
  }
  write_bench_report(metrics_path, "table1_verification_counts",
                     {{"machine", profile.name},
                      {"n", std::to_string(n)},
                      {"nb", std::to_string(nb)}},
                     combined);
  write_bench_profile(profile_path, "table1_verification_counts",
                      {{"machine", profile.name},
                       {"variant", "enhanced"},
                       {"n", std::to_string(n)},
                       {"k", "1"}},
                      prof);
  return 0;
}
