// Extension experiment: Enhanced Online-ABFT carried to Householder QR
// on the simulated testbeds — overhead sweep plus a fault-capability
// mini-table exercising the row-checksum-under-reflector invariant.
#include <iostream>

#include "abft/qr.hpp"
#include "bench_util.hpp"
#include "blas/qr.hpp"
#include "common/spd.hpp"

namespace {

using namespace ftla;
using namespace ftla::bench;

double qr_timing(const sim::MachineProfile& profile, int n,
                 const abft::QrOptions& opt) {
  sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
  auto res = abft::qr(m, nullptr, nullptr, n, opt);
  if (!res.success) std::exit(1);
  return res.seconds;
}

void overhead_sweep(const sim::MachineProfile& profile,
                    const std::vector<int>& sizes) {
  print_header("QR extension — relative overhead on " + profile.name,
               "Enhanced Online-ABFT QR (row checksums ride through the "
               "block reflectors) vs the NoFT hybrid QR.");
  Table t({"n", "K=1", "K=3", "K=5"});
  for (int n : sizes) {
    abft::QrOptions noft;
    noft.variant = abft::Variant::NoFt;
    const double base = qr_timing(profile, n, noft);
    std::vector<std::string> row{std::to_string(n)};
    for (int k : {1, 3, 5}) {
      abft::QrOptions opt;
      opt.variant = abft::Variant::EnhancedOnline;
      opt.verify_interval = k;
      row.push_back(Table::pct(qr_timing(profile, n, opt) / base - 1.0));
    }
    t.add_row(row);
  }
  print_table(t);
}

void fault_table() {
  print_header("QR extension — fault capability (real numerics, n = 512, "
               "B = 64, Tardis profile)",
               "'panel' strikes a panel input; 'reflector' strikes V after "
               "it returned to device memory (the window only the "
               "pre-LARFB verification covers); 'finished R' strikes a "
               "finished factor block (final-sweep territory).");
  const int n = 512;
  const int block = 64;
  Matrix<double> a0(n, n);
  make_uniform(a0, 13);

  Table t({"scenario", "corrected", "reruns", "residual"});
  auto run_one = [&](const std::string& name, fault::FaultSpec s) {
    auto a = a0;
    std::vector<double> tau;
    sim::Machine m(sim::tardis(), sim::ExecutionMode::Numeric);
    abft::QrOptions opt;
    opt.block_size = block;
    fault::Injector inj({s});
    auto res = abft::qr(m, &a, &tau, n, opt, &inj);
    const double resid =
        res.success ? blas::qr_residual(a0.view(), a.view(), tau.data())
                    : 1.0;
    t.add_row({name, std::to_string(res.errors_corrected),
               std::to_string(res.reruns), Table::num(resid, 3)});
  };

  fault::FaultSpec panel;
  panel.type = fault::FaultType::Storage;
  panel.op = fault::Op::Potf2;
  panel.iteration = 3;
  panel.block_row = 4;
  panel.block_col = 3;
  panel.bits = {20, 44, 54};
  run_one("panel input", panel);

  fault::FaultSpec refl;
  refl.type = fault::FaultType::Storage;
  refl.op = fault::Op::Trsm;
  refl.iteration = 2;
  refl.block_row = 5;
  refl.block_col = 2;
  refl.bits = {21, 45, 55};
  run_one("reflector (V)", refl);

  fault::FaultSpec finished;
  finished.type = fault::FaultType::Storage;
  finished.op = fault::Op::Gemm;
  finished.iteration = 5;
  finished.block_row = 0;
  finished.block_col = 2;
  finished.bits = {19, 47, 53};
  run_one("finished R", finished);

  print_table(t, /*csv=*/false);
}

}  // namespace

int main() {
  overhead_sweep(sim::tardis(), {5120, 10240, 20480});
  overhead_sweep(sim::bulldozer64(), {10240, 20480, 30720});
  fault_table();
  std::cout << "All scenarios must end with residual at rounding level and "
               "zero reruns.\n";
  return 0;
}
