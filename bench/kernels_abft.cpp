// Raw wall-clock microbenchmarks (google-benchmark) of the ABFT
// primitives: checksum encoding, verification, correction and the POTF2
// checksum transform.
#include <benchmark/benchmark.h>

#include "abft/checksum.hpp"
#include "blas/lapack.hpp"
#include "common/matrix.hpp"
#include "common/spd.hpp"

namespace {

using namespace ftla;
using namespace ftla::abft;

void BM_EncodeBlock(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix<double> a(b, b);
  make_uniform(a, 1);
  Matrix<double> chk(kChecksumRows, b);
  for (auto _ : state) {
    encode_block(a.view(), chk.view());
    benchmark::DoNotOptimize(chk.data());
  }
  state.SetItemsProcessed(state.iterations() * 4LL * b * b);
}
BENCHMARK(BM_EncodeBlock)->Arg(128)->Arg(256)->Arg(512);

void BM_VerifyCleanBlock(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix<double> a(b, b);
  make_uniform(a, 2);
  Matrix<double> chk(kChecksumRows, b);
  encode_block(a.view(), chk.view());
  for (auto _ : state) {
    auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
    benchmark::DoNotOptimize(out.errors_detected);
  }
  state.SetItemsProcessed(state.iterations() * 4LL * b * b);
}
BENCHMARK(BM_VerifyCleanBlock)->Arg(128)->Arg(256)->Arg(512);

void BM_VerifyAndCorrect(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix<double> a(b, b);
  make_uniform(a, 3);
  Matrix<double> chk(kChecksumRows, b);
  encode_block(a.view(), chk.view());
  for (auto _ : state) {
    a(b / 2, b / 3) += 1e6;  // plant an error, verification removes it
    auto out = verify_block_host(a.view(), chk.view(), Tolerance{});
    benchmark::DoNotOptimize(out.errors_corrected);
  }
}
BENCHMARK(BM_VerifyAndCorrect)->Arg(128)->Arg(256);

void BM_Potf2ChecksumTransform(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  Matrix<double> l(b, b);
  make_spd_diag_dominant(l, 4);
  blas::potf2(l.view());
  Matrix<double> chk(kChecksumRows, b);
  make_uniform(chk, 5);
  for (auto _ : state) {
    Matrix<double> work = chk;
    potf2_update_checksum(l.view(), work.view());
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * b * b);
}
BENCHMARK(BM_Potf2ChecksumTransform)->Arg(128)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
