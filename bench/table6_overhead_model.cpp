// Reproduces paper Tables II-VI: the analytic overhead model, validated
// against instrumented FLOP counters from the simulator.
//
// For each scheme the closed forms (encode 2n^2; updates Table III;
// recalculation Tables IV/V; overall Table VI) are evaluated and compared
// with the FLOPs the driver actually charged per kernel class.
#include <iostream>

#include "abft/overhead_model.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ftla;
  using namespace ftla::bench;

  const std::string profile_path = profile_out_path(argc, argv);
  const auto profile = sim::tardis();
  const int n = 20480;
  const int b = 256;

  print_header("Tables II-VI — analytic overhead model vs instrumented FLOPs",
               "Tardis, n = 20480, B = 256. 'measured' sums the FLOPs the "
               "simulator charged for checksum work (GPU blas2 recalc + "
               "skinny/host updates); 'model' is the paper's closed form.");

  auto measure = [&](abft::Variant v, int k) {
    sim::Machine m(profile, sim::ExecutionMode::TimingOnly);
    abft::CholeskyOptions opt = variant_options(profile, v, k);
    auto res = abft::cholesky(m, nullptr, n, opt);
    if (!res.success) std::exit(1);
    const auto& st = m.stats();
    double recalc = 0.0, update = 0.0;
    if (auto it = st.gpu.find(sim::KernelClass::Blas2); it != st.gpu.end())
      recalc += static_cast<double>(it->second.flops);
    if (auto it = st.gpu.find(sim::KernelClass::Blas3Skinny);
        it != st.gpu.end())
      update += static_cast<double>(it->second.flops);
    for (const auto& [cls, cs] : st.host) {
      if (cls == sim::KernelClass::HostChecksum)
        update += static_cast<double>(cs.flops);
    }
    return std::pair{recalc, update};
  };

  const double n3 = abft::cholesky_flops_model(n);

  {
    Table t({"scheme", "K", "model recalc+update+encode", "measured",
             "model rel ovh", "measured rel ovh"});
    for (int k : {1, 3, 5}) {
      auto model = abft::enhanced_abft_overhead(n, b, k);
      auto [recalc, update] = measure(abft::Variant::EnhancedOnline, k);
      const double measured = recalc + update;  // encode folded into blas2
      t.add_row({"enhanced", std::to_string(k),
                 Table::num(model.flops_total(), 5), Table::num(measured, 5),
                 Table::pct(model.flops_total() / n3),
                 Table::pct(measured / n3)});
    }
    auto model = abft::online_abft_overhead(n, b);
    auto [recalc, update] = measure(abft::Variant::Online, 1);
    t.add_row({"online", "-", Table::num(model.flops_total(), 5),
               Table::num(recalc + update, 5),
               Table::pct(model.flops_total() / n3),
               Table::pct((recalc + update) / n3)});
    print_table(t);
  }

  {
    print_header("Table VI — overall relative overhead (n -> infinity: "
                 "2/B online, (2K+2)/BK enhanced)",
                 "");
    Table t({"scheme", "K", "n=5120", "n=10240", "n=20480", "n->inf"});
    t.add_row({"online", "-", Table::pct(abft::online_relative_overhead(5120, b)),
               Table::pct(abft::online_relative_overhead(10240, b)),
               Table::pct(abft::online_relative_overhead(20480, b)),
               Table::pct(2.0 / b)});
    for (int k : {1, 3, 5}) {
      t.add_row({"enhanced", std::to_string(k),
                 Table::pct(abft::enhanced_relative_overhead(5120, b, k)),
                 Table::pct(abft::enhanced_relative_overhead(10240, b, k)),
                 Table::pct(abft::enhanced_relative_overhead(20480, b, k)),
                 Table::pct((2.0 * k + 2.0) / (b * k))});
    }
    print_table(t);
  }

  {
    print_header("Table III/V detail — per-operation breakdown (enhanced, K=1)",
                 "FLOP counts from the closed forms.");
    auto o = abft::enhanced_abft_overhead(n, b, 1);
    Table t({"operation", "update flops", "recalc flops"});
    t.add_row({"POTF2", Table::num(o.update_potf2, 4),
               Table::num(o.recalc_potf2, 4)});
    t.add_row({"TRSM", Table::num(o.update_trsm, 4),
               Table::num(o.recalc_trsm, 4)});
    t.add_row({"SYRK", Table::num(o.update_syrk, 4),
               Table::num(o.recalc_syrk, 4)});
    t.add_row({"GEMM", Table::num(o.update_gemm, 4),
               Table::num(o.recalc_gemm, 4)});
    print_table(t, /*csv=*/false);
  }

  if (!profile_path.empty()) {
    obs::ProfileReport prof;
    timing_run_profiled(
        profile, n, variant_options(profile, abft::Variant::EnhancedOnline, 1),
        &prof);
    write_bench_profile(profile_path, "table6_overhead_model",
                        {{"machine", profile.name},
                         {"variant", "enhanced"},
                         {"n", std::to_string(n)},
                         {"k", "1"}},
                        prof);
  }
  return 0;
}
