// Extension experiment: projecting Enhanced Online-ABFT a GPU
// generation forward.
//
// The paper's overheads shrink as n grows because checksum work is
// O(n^3/B) against O(n^3) compute. But GPU compute has since grown
// ~7-9x while kernel-launch latency and PCIe latency have barely moved
// — the fixed costs the paper's FLOP-only model ignores. This bench
// runs the identical experiment on an Ampere-class profile and shows
// where the scheme stands a generation later, and how the optimal K
// shifts.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace ftla;
  using namespace ftla::bench;

  const auto machines = {sim::tardis(), sim::bulldozer64(), sim::ampere()};

  print_header("Projection — Enhanced Online-ABFT across GPU generations",
               "Relative overhead vs each machine's own NoFT baseline "
               "(GPU placement, Opt 1 on). The A100-class profile uses "
               "B = 1024.");
  Table t({"machine", "n", "baseline GFLOP/s", "K=1", "K=3", "K=5"});
  for (const auto& profile : machines) {
    // Largest size each GPU's memory holds (the M2075 caps at 23040).
    const std::vector<int> sizes =
        profile.name == "tardis" ? std::vector<int>{10240, 20480, 23040}
                                 : std::vector<int>{10240, 20480, 30720};
    for (int n : sizes) {
      abft::CholeskyOptions noft = noft_options();
      const double base = timing_run(profile, n, noft);
      const double flops = static_cast<double>(n) * n * n / 3.0 / 1e9;
      std::vector<std::string> row{profile.name, std::to_string(n),
                                   Table::num(flops / base, 5)};
      for (int k : {1, 3, 5}) {
        abft::CholeskyOptions opt;
        opt.variant = abft::Variant::EnhancedOnline;
        opt.verify_interval = k;
        opt.placement = abft::UpdatePlacement::Gpu;
        row.push_back(Table::pct(timing_run(profile, n, opt) / base - 1.0));
      }
      t.add_row(row);
    }
  }
  print_table(t);

  std::cout
      << "Reading: on faster GPUs the same matrix factorizes in a fraction\n"
         "of the time, so the fixed per-verification costs (launches, \n"
         "synchronization) eat a larger share — the overhead percentage\n"
         "does not automatically improve with hardware, which keeps the\n"
         "paper's Opt 1-3 relevant a decade later.\n";
  return 0;
}
