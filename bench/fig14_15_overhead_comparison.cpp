// Paper Figures 14 and 15: relative overhead of Offline-ABFT,
// Online-ABFT and the fully optimized Enhanced Online-ABFT across the
// matrix-size sweep on both testbeds.
#include <iostream>

#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig) {
  using namespace ftla;
  using namespace ftla::bench;

  print_header(std::string("Figure ") + fig + " — overhead comparison on " +
                   profile.name,
               "Relative overhead vs NoFT baseline. Enhanced uses all three "
               "optimizations (K = 5, paper placement, concurrent recalc).");
  Table t({"n", "offline-abft", "online-abft", "enhanced-online-abft"});
  double last_enhanced = 0.0;
  for (int n : sizes) {
    const double base = timing_run(profile, n, noft_options());
    const double off =
        timing_run(profile, n,
                   variant_options(profile, abft::Variant::Offline)) /
            base -
        1.0;
    const double onl =
        timing_run(profile, n,
                   variant_options(profile, abft::Variant::Online)) /
            base -
        1.0;
    const double enh =
        timing_run(profile, n, enhanced_options(profile, 5)) / base - 1.0;
    last_enhanced = enh;
    t.add_row({std::to_string(n), Table::pct(off), Table::pct(onl),
               Table::pct(enh)});
  }
  print_table(t);
  std::cout << "Largest-size enhanced overhead: "
            << Table::pct(last_enhanced) << " (paper: < "
            << (profile.name == "tardis" ? "6%" : "4%") << ")\n";
}

}  // namespace

int main() {
  sweep(ftla::sim::tardis(), ftla::bench::tardis_sizes(), "14");
  sweep(ftla::sim::bulldozer64(), ftla::bench::bulldozer_sizes(), "15");
  return 0;
}
