// Paper Figures 14 and 15: relative overhead of Offline-ABFT,
// Online-ABFT and the fully optimized Enhanced Online-ABFT across the
// matrix-size sweep on both testbeds.
//
// Flags: `--sizes N1,N2,...` replaces both testbeds' paper-scale sweeps
// (CI uses this to emit BENCH_overhead.json at tractable sizes),
// `--runtime bulk|dag` selects the execution structure (docs/runtime.md),
// `--metrics-out FILE` dumps every overhead ratio as gauges, and
// `--profile-out FILE` saves the simulated-time profile of the
// largest-size enhanced run on Tardis for the perf-regression gate.
#include <iostream>

#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig,
           ftla::abft::RuntimeMode runtime,
           ftla::obs::MetricsRegistry* metrics,
           ftla::obs::ProfileReport* prof) {
  using namespace ftla;
  using namespace ftla::bench;

  // `--runtime dag` reruns the sweep on the task-graph runtime
  // (docs/runtime.md); the default replays the bulk-synchronous oracle.
  auto with_rt = [runtime](abft::CholeskyOptions o) {
    o.runtime = runtime;
    return o;
  };

  print_header(std::string("Figure ") + fig + " — overhead comparison on " +
                   profile.name,
               "Relative overhead vs NoFT baseline. Enhanced uses all three "
               "optimizations (K = 5, paper placement, concurrent recalc).");
  Table t({"n", "offline-abft", "online-abft", "enhanced-online-abft"});
  double last_enhanced = 0.0;
  for (int n : sizes) {
    const double base = timing_run(profile, n, with_rt(noft_options()));
    const double off =
        timing_run(profile, n,
                   with_rt(variant_options(profile, abft::Variant::Offline))) /
            base -
        1.0;
    const double onl =
        timing_run(profile, n,
                   with_rt(variant_options(profile, abft::Variant::Online))) /
            base -
        1.0;
    // The largest enhanced run doubles as the profiled representative.
    const bool capture = prof != nullptr && n == sizes.back();
    const double enh_seconds =
        capture
            ? timing_run_profiled(profile, n,
                                  with_rt(enhanced_options(profile, 5)), prof)
            : timing_run(profile, n, with_rt(enhanced_options(profile, 5)));
    const double enh = enh_seconds / base - 1.0;
    last_enhanced = enh;
    t.add_row({std::to_string(n), Table::pct(off), Table::pct(onl),
               Table::pct(enh)});
    if (metrics != nullptr) {
      const std::string key =
          "bench.overhead." + profile.name + ".n" + std::to_string(n) + ".";
      metrics->set_gauge(key + "baseline_s", base);
      metrics->set_gauge(key + "offline", off);
      metrics->set_gauge(key + "online", onl);
      metrics->set_gauge(key + "enhanced", enh);
    }
  }
  print_table(t);
  std::cout << "Largest-size enhanced overhead: "
            << Table::pct(last_enhanced) << " (paper: < "
            << (profile.name == "tardis" ? "6%" : "4%") << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftla;
  using namespace ftla::bench;

  const std::string metrics_path = metrics_out_path(argc, argv);
  const std::string profile_path = profile_out_path(argc, argv);
  const auto t_sizes = sizes_override(argc, argv, tardis_sizes());
  const auto b_sizes = sizes_override(argc, argv, bulldozer_sizes());

  obs::MetricsRegistry metrics;
  obs::MetricsRegistry* mp = metrics_path.empty() ? nullptr : &metrics;
  const abft::RuntimeMode runtime = runtime_override(argc, argv);
  obs::ProfileReport prof;
  sweep(sim::tardis(), t_sizes, "14", runtime, mp,
        profile_path.empty() ? nullptr : &prof);
  sweep(sim::bulldozer64(), b_sizes, "15", runtime, mp, nullptr);

  write_bench_report(metrics_path, "fig14_15_overhead_comparison",
                     {{"k", "5"},
                      {"runtime", abft::to_string(runtime)},
                      {"tardis_max_n", std::to_string(t_sizes.back())},
                      {"bulldozer_max_n", std::to_string(b_sizes.back())}},
                     metrics);
  write_bench_profile(profile_path, "fig14_15_overhead_comparison",
                      {{"machine", "tardis"},
                       {"variant", "enhanced"},
                       {"n", std::to_string(t_sizes.back())},
                       {"k", "5"}},
                      prof);
  return 0;
}
