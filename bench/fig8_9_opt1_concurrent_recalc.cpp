// Paper Figures 8 and 9: Optimization 1 — relative overhead of Enhanced
// Online-ABFT before and after enabling concurrent checksum
// recalculation on multiple CUDA streams. One series per testbed.
//
// Flags: `--sizes N1,N2,...` replaces the paper-scale sweeps;
// `--profile-out FILE` saves the simulated-time profile of the
// largest-size after-Opt-1 run on Tardis (perf-regression gate input).
#include <iostream>

#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig,
           ftla::obs::ProfileReport* prof) {
  using namespace ftla;
  using namespace ftla::bench;

  print_header(std::string("Figure ") + fig +
                   " — Opt 1 (concurrent checksum recalculation) on " +
                   profile.name,
               "Relative overhead vs the NoFT MAGMA-style baseline, "
               "Enhanced Online-ABFT with K = 1, paper placement.");
  Table t({"n", "overhead before opt1", "overhead after opt1",
           "reduction (abs)"});
  for (int n : sizes) {
    const double base = timing_run(profile, n, noft_options());
    abft::CholeskyOptions before = enhanced_options(profile);
    before.concurrent_recalc = false;
    abft::CholeskyOptions after = enhanced_options(profile);
    const double ovh_before = timing_run(profile, n, before) / base - 1.0;
    const bool capture = prof != nullptr && n == sizes.back();
    const double ovh_after =
        (capture ? timing_run_profiled(profile, n, after, prof)
                 : timing_run(profile, n, after)) /
            base -
        1.0;
    t.add_row({std::to_string(n), Table::pct(ovh_before),
               Table::pct(ovh_after), Table::pct(ovh_before - ovh_after)});
  }
  print_table(t);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftla;
  using namespace ftla::bench;

  const std::string profile_path = profile_out_path(argc, argv);
  const auto t_sizes = sizes_override(argc, argv, tardis_sizes());
  const auto b_sizes = sizes_override(argc, argv, bulldozer_sizes());

  obs::ProfileReport prof;
  sweep(sim::tardis(), t_sizes, "8", profile_path.empty() ? nullptr : &prof);
  sweep(sim::bulldozer64(), b_sizes, "9", nullptr);
  std::cout << "Paper: Opt 1 reduces relative overhead by ~2% on Tardis and "
               "~10% on Bulldozer64 (the Kepler GPU co-runs more recalc "
               "kernels).\n";
  write_bench_profile(profile_path, "fig8_9_opt1_concurrent_recalc",
                      {{"machine", "tardis"},
                       {"variant", "enhanced"},
                       {"n", std::to_string(t_sizes.back())},
                       {"k", "1"}},
                      prof);
  return 0;
}
