// Paper Figures 8 and 9: Optimization 1 — relative overhead of Enhanced
// Online-ABFT before and after enabling concurrent checksum
// recalculation on multiple CUDA streams. One series per testbed.
#include <iostream>

#include "bench_util.hpp"

namespace {

void sweep(const ftla::sim::MachineProfile& profile,
           const std::vector<int>& sizes, const char* fig) {
  using namespace ftla;
  using namespace ftla::bench;

  print_header(std::string("Figure ") + fig +
                   " — Opt 1 (concurrent checksum recalculation) on " +
                   profile.name,
               "Relative overhead vs the NoFT MAGMA-style baseline, "
               "Enhanced Online-ABFT with K = 1, paper placement.");
  Table t({"n", "overhead before opt1", "overhead after opt1",
           "reduction (abs)"});
  for (int n : sizes) {
    const double base = timing_run(profile, n, noft_options());
    abft::CholeskyOptions before = enhanced_options(profile);
    before.concurrent_recalc = false;
    abft::CholeskyOptions after = enhanced_options(profile);
    const double ovh_before = timing_run(profile, n, before) / base - 1.0;
    const double ovh_after = timing_run(profile, n, after) / base - 1.0;
    t.add_row({std::to_string(n), Table::pct(ovh_before),
               Table::pct(ovh_after), Table::pct(ovh_before - ovh_after)});
  }
  print_table(t);
}

}  // namespace

int main() {
  sweep(ftla::sim::tardis(), ftla::bench::tardis_sizes(), "8");
  sweep(ftla::sim::bulldozer64(), ftla::bench::bulldozer_sizes(), "9");
  std::cout << "Paper: Opt 1 reduces relative overhead by ~2% on Tardis and "
               "~10% on Bulldozer64 (the Kepler GPU co-runs more recalc "
               "kernels).\n";
  return 0;
}
