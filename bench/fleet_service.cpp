// Service-level resilience bench (docs/fleet.md): virtual-time job
// latency (p50/p99 of the service.job_latency_s histogram) and
// throughput (jobs per virtual second) of the resilient factorization
// service, fault-free versus under fault pressure — a device loss, a
// stall window, a degraded device and per-job soft-error arrivals on
// the same fixed 12-job workload.
//
// Usage:
//   fleet_service [--metrics-out FILE]   (default BENCH_fleet.json)
//
// Everything is measured on the simulated clock, so the emitted report
// is byte-stable run to run; bench/baselines/BENCH_fleet.json pins it
// and the CI perf gate cmp's against the pin — any drift is a real
// scheduling/recovery-cost change, not noise.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "fault/fault.hpp"
#include "service/service.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace ftla;

constexpr int kDevices = 3;
constexpr int kJobs = 12;
constexpr int kBlock = 16;

/// The fixed workload both configurations run: a deterministic mix of
/// sizes and verify cadences, seeded per job.
std::vector<service::JobSpec> workload(double mtbf_s) {
  std::vector<service::JobSpec> jobs;
  jobs.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    service::JobSpec spec;
    spec.id = j;
    spec.block = kBlock;
    spec.n = kBlock * (6 + 2 * (j % 4));  // 96..192
    spec.matrix_seed = 1000u + 7919u * static_cast<unsigned>(j);
    spec.verify_interval = (j % 3 == 0) ? 2 : 1;
    spec.mtbf_s = mtbf_s;
    spec.fault_seed = 17u + static_cast<unsigned>(j);
    spec.max_arrivals = 6;
    jobs.push_back(spec);
  }
  return jobs;
}

struct RunStats {
  double p50 = 0.0;
  double p99 = 0.0;
  double jobs_per_s = 0.0;
  long long migrations = 0;
  long long losses = 0;
  long long retries = 0;
};

RunStats run_workload(const std::vector<fault::DeviceFaultSpec>& plan,
                      double mtbf_s, double* makespan_out) {
  sim::FleetProfile fp;
  fp.device = sim::test_rig();
  fp.devices = kDevices;
  fp.link_capacity = 1;
  sim::Fleet fleet(fp, sim::ExecutionMode::Numeric);

  obs::MetricsRegistry metrics;
  // Pre-create the latency histogram with fine log-spaced edges (~2%
  // resolution): the default decade buckets would collapse p50 and p99
  // of a 12-job run into one bucket.
  {
    std::vector<double> edges;
    for (double e = 1.0e-5; e < 1.0; e *= 1.02) edges.push_back(e);
    metrics.histogram("service.job_latency_s", edges);
  }
  service::ServiceOptions sopt;
  sopt.metrics = &metrics;
  service::FactorizationService svc(fleet, sopt);
  for (const auto& spec : workload(mtbf_s)) svc.submit(spec);
  svc.apply(plan);

  const std::vector<service::JobResult> results = svc.drain();
  for (const auto& r : results) {
    if (!r.success || r.sdc) {
      std::cerr << "job " << r.job_id << " did not finish cleanly ("
                << service::to_string(r.outcome) << ")\n";
      std::exit(1);
    }
  }

  RunStats s;
  const auto& lat = metrics.histogram("service.job_latency_s");
  s.p50 = lat.p50();
  s.p99 = lat.p99();
  const double makespan = fleet.makespan();
  s.jobs_per_s = static_cast<double>(results.size()) / makespan;
  s.migrations = metrics.counter("service.migrations");
  s.losses = metrics.counter("fleet.device_losses");
  s.retries = metrics.counter("service.retries");
  if (makespan_out != nullptr) *makespan_out = makespan;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using ftla::bench::print_header;
  using ftla::bench::print_table;

  std::string out = ftla::bench::metrics_out_path(argc, argv);
  if (out.empty()) out = "BENCH_fleet.json";

  print_header(
      "fleet_service",
      "Resilient factorization service on a 3-device test_rig fleet: "
      "virtual-time job latency and throughput for the same 12-job "
      "workload, fault-free vs under fault pressure (1 device loss + "
      "1 stall + 1 degrade + soft-error arrivals).");

  // Fault-free pass fixes the horizon the device-fault plan is sampled
  // against, so the loss lands mid-workload.
  double horizon = 0.0;
  const RunStats clean = run_workload({}, 0.0, &horizon);

  fault::DeviceFaultPlanConfig pc;
  pc.devices = kDevices;
  pc.loss_count = 1;
  pc.stall_count = 1;
  pc.degrade_count = 1;
  pc.horizon_s = horizon;
  pc.seed = 20260808;
  const std::vector<fault::DeviceFaultSpec> plan =
      fault::sample_device_faults(pc);
  const double mtbf_s = horizon / 48.0;  // a few arrivals per job
  const RunStats faulty = run_workload(plan, mtbf_s, nullptr);

  if (faulty.losses < 1 || faulty.migrations < 1) {
    std::cerr << "fault pressure did not exercise migration\n";
    return 1;
  }

  ftla::Table t({"configuration", "latency p50 (s)", "latency p99 (s)",
                 "jobs/s", "losses", "migrations", "retries"});
  auto add = [&](const std::string& name, const RunStats& s) {
    t.add_row({name, ftla::Table::num(s.p50, 6), ftla::Table::num(s.p99, 6),
               ftla::Table::num(s.jobs_per_s, 3), std::to_string(s.losses),
               std::to_string(s.migrations), std::to_string(s.retries)});
  };
  add("fault-free", clean);
  add("fault pressure", faulty);
  print_table(t);

  std::cout << "Latency tail and throughput costs of recovery are pinned "
               "in bench/baselines/BENCH_fleet.json; virtual time makes "
               "any drift a real modeling change.\n";

  obs::MetricsRegistry metrics;
  metrics.set_gauge("bench.fleet.faultfree.job_latency_p50_s", clean.p50);
  metrics.set_gauge("bench.fleet.faultfree.job_latency_p99_s", clean.p99);
  metrics.set_gauge("bench.fleet.faultfree.jobs_per_s", clean.jobs_per_s);
  metrics.set_gauge("bench.fleet.faulty.job_latency_p50_s", faulty.p50);
  metrics.set_gauge("bench.fleet.faulty.job_latency_p99_s", faulty.p99);
  metrics.set_gauge("bench.fleet.faulty.jobs_per_s", faulty.jobs_per_s);
  metrics.counter("bench.fleet.faulty.device_losses") = faulty.losses;
  metrics.counter("bench.fleet.faulty.migrations") = faulty.migrations;
  metrics.counter("bench.fleet.faulty.retries") = faulty.retries;

  ftla::bench::write_bench_report(
      out, "fleet_service",
      {{"devices", std::to_string(kDevices)},
       {"jobs", std::to_string(kJobs)},
       {"block", std::to_string(kBlock)},
       {"machine", "test_rig"},
       {"plan", "1 loss + 1 stall + 1 degrade"},
       {"timer", "virtual clock"}},
      metrics);
  return 0;
}
