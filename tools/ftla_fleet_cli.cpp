// ftla_fleet_cli — fleet-wide fault campaigns over the resilient
// factorization service (docs/fleet.md).
//
// Campaign mode (default): run N randomized fleet scenarios (device
// count, workload, device-loss/stall/degrade plans, soft-error
// pressure), classify every job, print the verdict table, and fail on
// any violated campaign invariant (SDC or a dropped job).
//
// Replay mode (--replay FILE): run one fleet scenario from a file
// written by --failures-out (format_fleet_scenario text); every random
// choice inside a scenario derives from its seed, so the replay is
// byte-for-byte the campaign's run.
//
// Every campaign also evaluates the fleet SLOs (availability, p99 job
// latency, zero SDC) over the virtual clock, accounts per-tenant usage,
// and — with --trace-out — writes the merged causal-trace file, byte-
// identical at any --threads (docs/observability.md).
//
// With FTLA_POSTMORTEM=FILE.json in the environment (or
// --postmortem-out), the flight-recorder bundle is dumped on exit
// (docs/observability.md, "Analytics & postmortems").
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/exit_codes.hpp"
#include "obs/event_sink.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "service/fleet_campaign.hpp"

namespace {

using namespace ftla;

obs::FlightRecorder g_recorder;
std::string g_postmortem_path;

/// The single exit gate: dumps the flight-recorder bundle to
/// --postmortem-out (always) or $FTLA_POSTMORTEM (nonzero exits only),
/// then hands the code back. Best-effort — a failed dump never changes
/// the exit code.
int finish(int code, const std::string& reason) {
  if (!g_postmortem_path.empty()) {
    g_recorder.dump_file(g_postmortem_path, code, reason);
  } else if (const char* env = std::getenv("FTLA_POSTMORTEM");
             env != nullptr && code != common::kExitSuccess) {
    g_recorder.dump_file(env, code, reason);
  }
  return code;
}

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: ftla_fleet_cli [options]\n"
      "  --scenarios N        randomized fleet scenarios (default 500)\n"
      "  --seed S             campaign seed (default 1)\n"
      "  --devices LO:HI      fleet-size range (default 2:4)\n"
      "  --jobs LO:HI         jobs per scenario (default 1:3)\n"
      "  --max-losses N       device losses per scenario at most N\n"
      "                       (default 2; always capped at devices-1)\n"
      "  --threads N          run scenarios on N worker threads\n"
      "                       (0 = all cores; default 1). The summary is\n"
      "                       bit-identical to a serial campaign\n"
      "  --report FILE.json   write the campaign metrics report\n"
      "  --trace-out FILE.json\n"
      "                       write the merged causal-trace file (byte-\n"
      "                       identical at any --threads; inspect with\n"
      "                       ftla_trace_cli)\n"
      "  --slo-latency S      p99 job-latency SLO threshold in virtual\n"
      "                       seconds (default 0.05)\n"
      "  --abort-after N      stop after N scenarios (deterministic\n"
      "                       truncation; exits 3 to flag the abort)\n"
      "  --postmortem-out FILE write the flight-recorder bundle at exit\n"
      "  --failures-out FILE  write failing scenarios (replayable)\n"
      "  --replay FILE        run one fleet scenario from FILE instead\n"
      "                       of a campaign; exits by its outcome\n"
      "  --quiet              suppress progress lines\n"
      "\n"
      "exit codes:\n"
      "  0  campaign clean (zero SDC, zero dropped jobs)\n"
      "  1  I/O error (could not read or write a file)\n"
      "  2  usage error\n"
      "  3  fail-stop (a dropped job, or --abort-after cut the campaign\n"
      "     short)\n"
      "  4  silent data corruption (any job whose claimed success fails\n"
      "     the independent residual oracle)\n");
  std::exit(finish(common::kExitUsage,
                   msg != nullptr ? std::string("usage error: ") + msg
                                  : std::string("usage error")));
}

void print_result(const service::FleetScenarioResult& res) {
  std::printf("jobs      : %d admitted, %d dropped\n", res.jobs_admitted,
              res.dropped);
  std::printf("fleet     : %d device loss(es), %d migration(s), "
              "%d retr(ies)\n",
              res.device_losses, res.migrations, res.retries_spent);
  std::printf("faults    : %lld fired, %lld detected\n", res.faults_fired,
              res.faults_detected);
  std::printf("horizon   : %.3e s (dry), %.3e s (faulted)\n", res.horizon_s,
              res.makespan_s);
  for (const auto& job : res.jobs) {
    std::printf("  job %d: %s device=%d attempts=%d migrations=%d "
                "resumed=%d latency=%.3e residual=%.3e%s\n",
                job.job_id, service::to_string(job.outcome), job.device,
                job.attempts, job.migrations, job.resumed_iterations,
                job.latency(), job.residual, job.sdc ? " SDC" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  service::FleetCampaignOptions opt;
  std::string report_path;
  std::string failures_path;
  std::string replay_path;
  std::string trace_path;
  double slo_latency_s = 0.05;
  bool quiet = false;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenarios") opt.scenarios = std::atoi(need(i));
    else if (arg == "--seed") opt.seed = std::strtoull(need(i), nullptr, 10);
    else if (arg == "--threads") opt.threads = std::atoi(need(i));
    else if (arg == "--devices") {
      const std::string v = need(i);
      if (std::sscanf(v.c_str(), "%d:%d", &opt.min_devices,
                      &opt.max_devices) != 2) {
        usage("--devices expects LO:HI");
      }
    } else if (arg == "--jobs") {
      const std::string v = need(i);
      if (std::sscanf(v.c_str(), "%d:%d", &opt.min_jobs, &opt.max_jobs) !=
          2) {
        usage("--jobs expects LO:HI");
      }
    } else if (arg == "--max-losses") opt.max_losses = std::atoi(need(i));
    else if (arg == "--report") report_path = need(i);
    else if (arg == "--trace-out") trace_path = need(i);
    else if (arg == "--slo-latency") slo_latency_s = std::atof(need(i));
    else if (arg == "--abort-after") opt.abort_after = std::atoi(need(i));
    else if (arg == "--postmortem-out") g_postmortem_path = need(i);
    else if (arg == "--failures-out") failures_path = need(i);
    else if (arg == "--replay") replay_path = need(i);
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  if (opt.scenarios <= 0) usage("--scenarios must be positive");
  if (opt.threads < 0) usage("--threads must be >= 0");
  if (opt.min_devices < 1 || opt.max_devices < opt.min_devices) {
    usage("--devices range is empty");
  }
  if (opt.min_jobs < 1 || opt.max_jobs < opt.min_jobs) {
    usage("--jobs range is empty");
  }
  if (opt.max_losses < 0) usage("--max-losses must be >= 0");
  if (slo_latency_s <= 0.0) usage("--slo-latency must be positive");

  g_recorder.set_meta("tool", "ftla_fleet_cli");
  g_recorder.set_meta("scenarios", std::to_string(opt.scenarios));
  g_recorder.set_meta("seed", std::to_string(opt.seed));
  g_recorder.set_meta("threads", std::to_string(opt.threads));
  if (opt.abort_after > 0) {
    g_recorder.set_meta("abort_after", std::to_string(opt.abort_after));
  }
  g_recorder.note("args parsed");

  if (!replay_path.empty()) {
    g_recorder.set_meta("replay", replay_path);
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replay_path.c_str());
      return finish(common::kExitIoError, "cannot read replay file");
    }
    std::ostringstream text;
    text << in.rdbuf();
    service::FleetScenario sc;
    std::string err;
    if (!service::parse_fleet_scenario(text.str(), &sc, &err)) {
      std::fprintf(stderr, "%s: %s\n", replay_path.c_str(), err.c_str());
      return finish(common::kExitUsage, "unparsable replay scenario");
    }
    const service::FleetScenarioResult res = service::run_fleet_scenario(sc);
    print_result(res);
    if (res.sdc_jobs > 0) {
      return finish(common::kExitSdc, "replayed scenario saw sdc");
    }
    if (res.dropped != 0) {
      return finish(common::kExitFailStop, "replayed scenario dropped jobs");
    }
    return finish(common::kExitSuccess, "replayed scenario clean");
  }

  obs::MetricsRegistry metrics;
  obs::RingBufferSink events;
  g_recorder.attach_metrics(&metrics);
  g_recorder.attach_events(&events);
  // SLO records and trace spans both fold in draw order inside the
  // campaign, so everything below is byte-stable at any --threads.
  obs::SloEngine slo;
  slo.set_event_sink(&events);
  for (const auto& spec : obs::SloEngine::default_fleet_slos(slo_latency_s)) {
    slo.add(spec);
  }
  obs::TraceStore trace;
  const service::FleetCampaignSummary sum = service::run_fleet_campaign(
      opt, &metrics, quiet ? nullptr : &std::cout, 100,
      trace_path.empty() ? nullptr : &trace, &slo);
  g_recorder.note(sum.aborted ? "campaign aborted early"
                              : "campaign complete");

  std::printf("scenarios : %d\n", sum.scenarios_run);
  std::printf("jobs      : %lld admitted, %lld dropped, %lld sdc\n",
              sum.jobs_admitted, sum.dropped_jobs, sum.sdc_jobs);
  std::printf("fleet     : %lld device losses, %lld migrations, "
              "%lld retries\n",
              sum.device_losses, sum.migrations, sum.retries_spent);
  std::printf("faults    : %lld fired, %lld detected\n", sum.faults_fired,
              sum.faults_detected);
  std::printf("%-18s %9s\n", "verdict", "jobs");
  for (int v = 0; v < service::kFleetVerdictCount; ++v) {
    std::printf("%-18s %9lld\n",
                service::to_string(static_cast<service::FleetVerdict>(v)),
                sum.verdicts[static_cast<std::size_t>(v)]);
  }
  if (!sum.tenants.empty()) {
    std::printf("%-10s %6s %8s %11s %17s %15s\n", "tenant", "jobs",
                "retries", "migrations", "device_seconds",
                "checkpoint_B");
    for (const auto& [name, t] : sum.tenants) {
      std::printf("%-10s %6lld %8lld %11lld %17.9e %15lld\n", name.c_str(),
                  t.jobs, t.retries, t.migrations, t.device_seconds,
                  t.checkpoint_bytes);
    }
  }
  std::printf("%-14s %9s %6s %6s %12s %s\n", "slo", "objective", "total",
              "bad", "burn_rate", "state");
  for (const auto& st : slo.states()) {
    std::printf("%-14s %9.4f %6lld %6lld %12.4e %s\n",
                st.spec.name.c_str(), st.spec.objective, st.total, st.bad,
                st.burn_rate(), st.alerting ? "ALERTING" : "ok");
  }
  std::printf("slo p99   : %.9e s (%lld alert(s))\n", slo.latency_p99(),
              slo.alerts_fired());

  if (!sum.failures.empty()) {
    std::printf("\n%zu invariant violation(s):\n", sum.failures.size());
    for (const auto& f : sum.failures) {
      std::printf("--- reason=%s sdc_jobs=%d dropped=%d\n",
                  f.reason.c_str(), f.result.sdc_jobs, f.result.dropped);
      std::fputs(service::format_fleet_scenario(f.scenario).c_str(), stdout);
    }
  }

  if (!failures_path.empty() && !sum.failures.empty()) {
    std::ofstream out(failures_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", failures_path.c_str());
      return finish(common::kExitIoError, "cannot write failures file");
    }
    for (const auto& f : sum.failures) {
      out << "# reason=" << f.reason << "\n"
          << service::format_fleet_scenario(f.scenario) << "\n";
    }
  }

  if (!trace_path.empty()) {
    const obs::TraceReport tr = obs::TraceReport::build(trace);
    if (!tr.write_file(trace_path)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return finish(common::kExitIoError, "failed to write trace file");
    }
    std::printf("trace     : %s (%zu spans)\n", trace_path.c_str(),
                tr.spans.size());
    g_recorder.note("trace written");
  }

  if (!report_path.empty()) {
    obs::MetricsReport report;
    report.add_meta("tool", "ftla_fleet_cli");
    report.add_meta("scenarios", std::to_string(opt.scenarios));
    report.add_meta("seed", std::to_string(opt.seed));
    report.add_meta("threads", std::to_string(opt.threads));
    report.metrics = metrics;
    if (!obs::write_metrics_json_file(report, report_path)) {
      std::fprintf(stderr, "failed to write %s\n", report_path.c_str());
      return finish(common::kExitIoError, "failed to write report");
    }
    std::printf("report    : %s\n", report_path.c_str());
  }

  if (sum.sdc_jobs > 0) {
    return finish(common::kExitSdc, "campaign saw sdc jobs");
  }
  if (sum.dropped_jobs != 0) {
    return finish(common::kExitFailStop, "campaign dropped jobs");
  }
  if (sum.aborted) {
    return finish(common::kExitFailStop,
                  "campaign aborted by --abort-after");
  }
  return finish(common::kExitSuccess, "campaign clean");
}
