#include "report/html_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace ftla::report {

namespace {

/// One deterministic number formatter for everything user-visible: 6
/// significant digits, locale-independent.
std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

void html_escape(const std::string& s, std::ostream& os) {
  for (const char c : s) {
    switch (c) {
      case '&': os << "&amp;"; break;
      case '<': os << "&lt;"; break;
      case '>': os << "&gt;"; break;
      case '"': os << "&quot;"; break;
      default: os << c; break;
    }
  }
}

/// Fixed palettes keyed by name so colors are stable across reports.
const char* phase_color(const std::string& phase) {
  if (phase == "base") return "#7b8a9a";
  if (phase == "encode") return "#d9a441";
  if (phase == "recalc") return "#c75b5b";
  if (phase == "update") return "#6faa6f";
  if (phase == "verify") return "#5b82c7";
  if (phase == "recover") return "#9a6fc7";
  return "#b0b0b0";
}

const char* verdict_color(int verdict) {
  switch (verdict) {
    case 0: return "#4c9a4c";  // corrected
    case 1: return "#4c9a8a";  // rolled_back
    case 2: return "#c7a341";  // rerun
    case 3: return "#c7744c";  // fail_stop
    case 4: return "#c74c4c";  // sdc
    default: return "#b0b0b0";
  }
}

constexpr double kChartWidth = 640.0;

void meta_table(const std::map<std::string, std::string>& meta,
                std::ostream& os) {
  if (meta.empty()) return;
  os << "<table class=\"meta\">";
  for (const auto& [k, v] : meta) {
    os << "<tr><th>";
    html_escape(k, os);
    os << "</th><td>";
    html_escape(v, os);
    os << "</td></tr>";
  }
  os << "</table>\n";
}

/// A horizontal stacked bar: (label, value, color) segments scaled to
/// the row total across kChartWidth pixels.
void stacked_bar(
    const std::vector<std::tuple<std::string, double, std::string>>& segments,
    std::ostream& os) {
  double total = 0.0;
  for (const auto& [label, value, color] : segments) total += value;
  os << "<svg width=\"" << fmt(kChartWidth)
     << "\" height=\"26\" role=\"img\">";
  if (total > 0.0) {
    double x = 0.0;
    for (const auto& [label, value, color] : segments) {
      if (value <= 0.0) continue;
      const double w = value / total * kChartWidth;
      os << "<rect x=\"" << fmt(x) << "\" y=\"2\" width=\"" << fmt(w)
         << "\" height=\"22\" fill=\"" << color << "\"><title>";
      html_escape(label, os);
      os << ": " << fmt(value) << " (" << fmt_pct(value / total)
         << ")</title></rect>";
      x += w;
    }
  }
  os << "</svg>\n";
}

void legend(
    const std::vector<std::tuple<std::string, double, std::string>>& segments,
    std::ostream& os) {
  os << "<p class=\"legend\">";
  bool first = true;
  for (const auto& [label, value, color] : segments) {
    if (value <= 0.0) continue;
    if (!first) os << " &middot; ";
    first = false;
    os << "<span class=\"swatch\" style=\"background:" << color
       << "\"></span>";
    html_escape(label, os);
    os << " " << fmt(value);
  }
  os << "</p>\n";
}

void profile_section(const std::string& label, const obs::ProfileReport& p,
                     std::ostream& os) {
  os << "<section><h2>Profile: ";
  html_escape(label, os);
  os << "</h2>\n";
  meta_table(p.meta, os);
  os << "<p>makespan <b>" << fmt(p.makespan_seconds)
     << " s</b>, ABFT on critical path <b>"
     << fmt(p.abft_critical_seconds) << " s</b>";
  if (p.makespan_seconds > 0.0) {
    os << " (" << fmt_pct(p.abft_critical_seconds / p.makespan_seconds)
       << ")";
  }
  os << ", projected without ABFT <b>" << fmt(p.projected_no_abft_seconds)
     << " s</b></p>\n";

  std::vector<std::tuple<std::string, double, std::string>> segments;
  for (const auto& [name, ph] : p.phases) {
    segments.emplace_back(name, ph.critical_seconds, phase_color(name));
  }
  segments.emplace_back("idle", p.idle_critical_seconds, "#e3e3e3");
  os << "<h3>Critical path by phase</h3>\n";
  stacked_bar(segments, os);
  legend(segments, os);

  os << "<h3>Phases</h3>\n<table><tr><th>phase</th><th>spans</th>"
        "<th>busy s</th><th>critical s</th></tr>";
  for (const auto& [name, ph] : p.phases) {
    os << "<tr><td>";
    html_escape(name, os);
    os << "</td><td>" << ph.spans << "</td><td>" << fmt(ph.busy_seconds)
       << "</td><td>" << fmt(ph.critical_seconds) << "</td></tr>";
  }
  os << "</table>\n";

  os << "<h3>Resource utilization</h3>\n";
  for (const auto& [name, r] : p.resources) {
    const double denom = r.capacity_units * p.makespan_seconds;
    const double util =
        denom > 0.0 ? std::min(1.0, r.busy_unit_seconds / denom) : 0.0;
    os << "<div class=\"util\"><span class=\"util-name\">";
    html_escape(name, os);
    os << "</span><svg width=\"" << fmt(kChartWidth)
       << "\" height=\"14\"><rect x=\"0\" y=\"1\" width=\""
       << fmt(kChartWidth) << "\" height=\"12\" fill=\"#eee\"/>"
       << "<rect x=\"0\" y=\"1\" width=\"" << fmt(util * kChartWidth)
       << "\" height=\"12\" fill=\"#5b82c7\"/></svg><span>"
       << fmt_pct(util) << "</span></div>\n";
  }
  os << "</section>\n";
}

void analytics_section(const std::string& label,
                       const fault::CampaignAnalytics& a, std::ostream& os) {
  os << "<section><h2>Campaign analytics: ";
  html_escape(label, os);
  os << "</h2>\n";
  meta_table(a.meta, os);
  os << "<p>" << a.scenarios << " scenarios aggregated</p>\n";

  os << "<h3>Verdicts by algo/variant/recovery</h3>\n";
  for (const auto& [key, row] : a.verdicts) {
    std::vector<std::tuple<std::string, double, std::string>> segments;
    for (int i = 0; i < fault::kVerdictCount; ++i) {
      segments.emplace_back(
          fault::to_string(static_cast<fault::Verdict>(i)),
          static_cast<double>(row[static_cast<std::size_t>(i)]),
          verdict_color(i));
    }
    os << "<div class=\"row-label\">";
    html_escape(key, os);
    os << "</div>\n";
    stacked_bar(segments, os);
  }
  {
    // One legend for all verdict rows.
    std::vector<std::tuple<std::string, double, std::string>> segments;
    for (int i = 0; i < fault::kVerdictCount; ++i) {
      segments.emplace_back(
          fault::to_string(static_cast<fault::Verdict>(i)), 1.0,
          verdict_color(i));
    }
    os << "<p class=\"legend\">";
    bool first = true;
    for (const auto& [name, value, color] : segments) {
      if (!first) os << " &middot; ";
      first = false;
      os << "<span class=\"swatch\" style=\"background:" << color
         << "\"></span>";
      html_escape(name, os);
    }
    os << "</p>\n";
  }

  os << "<h3>Detection latency (virtual seconds)</h3>\n";
  for (const auto& [type, h] : a.detection_latency) {
    os << "<div class=\"row-label\">";
    html_escape(type, os);
    os << " &mdash; " << h.count << " detections, p50 " << fmt(h.p50)
       << " s, p99 " << fmt(h.p99) << " s</div>\n";
    // Bucket bar chart: equal-width bars (the buckets are log-spaced),
    // heights scaled to the fullest bucket.
    std::vector<std::pair<double, long long>> nonempty;
    for (const auto& b : h.buckets) {
      if (b.second > 0) nonempty.push_back(b);
    }
    long long peak = 1;
    for (const auto& b : nonempty) peak = std::max(peak, b.second);
    const double bar_w =
        nonempty.empty()
            ? 0.0
            : kChartWidth / static_cast<double>(nonempty.size());
    os << "<svg width=\"" << fmt(kChartWidth) << "\" height=\"80\">";
    for (std::size_t i = 0; i < nonempty.size(); ++i) {
      const double frac = static_cast<double>(nonempty[i].second) /
                          static_cast<double>(peak);
      const double bh = frac * 70.0;
      os << "<rect x=\"" << fmt(static_cast<double>(i) * bar_w + 1.0)
         << "\" y=\"" << fmt(75.0 - bh) << "\" width=\""
         << fmt(bar_w - 2.0) << "\" height=\"" << fmt(bh)
         << "\" fill=\"#5b82c7\"><title>&le; "
         << (std::isinf(nonempty[i].first) ? std::string("inf")
                                           : fmt(nonempty[i].first))
         << " s: " << nonempty[i].second << "</title></rect>";
    }
    os << "</svg>\n";
  }

  os << "<h3>ABFT overhead ratio (vs fault-free NoFt)</h3>\n"
        "<table><tr><th>algo/variant</th><th>samples</th><th>min</th>"
        "<th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>max</th>"
        "</tr>";
  for (const auto& [key, st] : a.overhead) {
    os << "<tr><td>";
    html_escape(key, os);
    os << "</td><td>" << st.samples << "</td><td>" << fmt(st.min)
       << "</td><td>" << fmt(st.mean) << "</td><td>" << fmt(st.p50)
       << "</td><td>" << fmt(st.p95) << "</td><td>" << fmt(st.p99)
       << "</td><td>" << fmt(st.max) << "</td></tr>";
  }
  os << "</table>\n</section>\n";
}

void timeseries_section(const std::string& label,
                        const obs::TimeSeriesReport& ts, std::ostream& os) {
  os << "<section><h2>Time series: ";
  html_escape(label, os);
  os << "</h2>\n";
  meta_table(ts.meta, os);
  os << "<p>window " << fmt(ts.window_seconds) << " s, "
     << ts.samples_recorded << " samples recorded, " << ts.samples_dropped
     << " dropped</p>\n";
  for (const auto& [name, rollup] : ts.series) {
    if (rollup.windows.empty()) continue;
    double t0 = rollup.windows.front().start;
    double t1 = rollup.windows.back().end;
    double vmax = 0.0;
    for (const auto& w : rollup.windows) vmax = std::max(vmax, w.max);
    if (t1 <= t0) t1 = t0 + 1.0;
    if (vmax <= 0.0) vmax = 1.0;
    const double h = 110.0;
    const auto px = [&](double t) {
      return (t - t0) / (t1 - t0) * kChartWidth;
    };
    const auto py = [&](double v) { return h - 5.0 - v / vmax * (h - 15.0); };

    os << "<div class=\"row-label\">";
    html_escape(name, os);
    os << " &mdash; " << rollup.samples << " samples, peak " << fmt(vmax)
       << "</div>\n<svg width=\"" << fmt(kChartWidth) << "\" height=\""
       << fmt(h) << "\">";
    // max envelope (light) then mean (solid): step per window.
    for (const int pass : {0, 1}) {
      os << "<polyline fill=\"none\" stroke=\""
         << (pass == 0 ? "#b9c8dd" : "#2d5ba9")
         << "\" stroke-width=\"1.5\" points=\"";
      bool first = true;
      for (const auto& w : rollup.windows) {
        const double v = pass == 0 ? w.max : w.mean;
        if (!first) os << ' ';
        first = false;
        os << fmt(px(w.start)) << ',' << fmt(py(v)) << ' ' << fmt(px(w.end))
           << ',' << fmt(py(v));
      }
      os << "\"/>";
    }
    os << "</svg>\n";
  }
  os << "</section>\n";
}

/// SLO burn panel: one bar per SLO found in the document's `slo.`
/// gauges (ftla_fleet_cli --report), scaled to the hottest burn rate,
/// red once the alert latch is set. Skipped when the document carries
/// no SLO export.
void slo_burn_panel(const obs::MetricsDoc& doc, std::ostream& os) {
  struct Row {
    std::string name;
    double burn = 0.0;
    double objective = 0.0;
    bool alerting = false;
  };
  std::vector<Row> rows;
  const std::string suffix = ".burn_rate";
  for (const auto& [key, value] : doc.gauges) {
    if (key.rfind("slo.", 0) != 0 || key.size() <= 4 + suffix.size() ||
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    Row row;
    row.name = key.substr(4, key.size() - 4 - suffix.size());
    row.burn = value;
    const auto obj = doc.gauges.find("slo." + row.name + ".objective");
    if (obj != doc.gauges.end()) row.objective = obj->second;
    const auto alerting = doc.gauges.find("slo." + row.name + ".alerting");
    row.alerting = alerting != doc.gauges.end() && alerting->second != 0.0;
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return;

  double peak = 1.0;  // burn rate 1.0 == budget consumed exactly on pace
  for (const auto& row : rows) peak = std::max(peak, row.burn);
  os << "<h3>SLO error-budget burn</h3>\n";
  for (const auto& row : rows) {
    const double frac = std::min(1.0, row.burn / peak);
    os << "<div class=\"util\"><span class=\"util-name\">";
    html_escape(row.name, os);
    os << "</span><svg width=\"" << fmt(kChartWidth)
       << "\" height=\"14\"><rect x=\"0\" y=\"1\" width=\""
       << fmt(kChartWidth) << "\" height=\"12\" fill=\"#eee\"/>"
       << "<rect x=\"0\" y=\"1\" width=\"" << fmt(frac * kChartWidth)
       << "\" height=\"12\" fill=\""
       << (row.alerting ? "#c74c4c" : "#6faa6f") << "\"/></svg><span>"
       << fmt(row.burn) << "&times; (obj " << fmt(row.objective) << ")"
       << (row.alerting ? " ALERTING" : "") << "</span></div>\n";
  }
  const auto p99 = doc.gauges.find("slo.latency_p99_s");
  const auto alerts = doc.counters.find("slo.alerts");
  os << "<p class=\"legend\">";
  if (p99 != doc.gauges.end()) {
    os << "p99 job latency " << fmt(p99->second) << " s";
  }
  if (alerts != doc.counters.end()) {
    if (p99 != doc.gauges.end()) os << " &middot; ";
    os << alerts->second << " alert(s) fired";
  }
  os << "</p>\n";
}

void trace_section(const std::string& label, const obs::TraceReport& report,
                   std::ostream& os) {
  os << "<section><h2>Causal traces: ";
  html_escape(label, os);
  os << "</h2>\n<p>" << report.spans.size() << " span(s)";
  if (report.dropped > 0) {
    os << ", <b>" << report.dropped << " dropped at store capacity</b>";
  }
  os << "</p>\n";

  const std::vector<obs::TraceTree> trees = obs::assemble_traces(report);
  os << "<table><tr><th>trace</th><th>spans</th><th>tenant</th>"
        "<th>status</th><th>duration s</th></tr>";
  for (const auto& tree : trees) {
    std::size_t spans = 0;
    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    std::vector<const obs::TraceNode*> stack;
    for (const auto& root : tree.roots) stack.push_back(&root);
    while (!stack.empty()) {
      const obs::TraceNode* node = stack.back();
      stack.pop_back();
      ++spans;
      if (first || node->span->start < lo) lo = node->span->start;
      if (first || node->span->end > hi) hi = node->span->end;
      first = false;
      for (const auto& child : node->children) stack.push_back(&child);
    }
    const obs::TraceSpan* root =
        tree.roots.empty() ? nullptr : tree.roots.front().span;
    os << "<tr><td>" << obs::format_trace_id(tree.trace_id) << "</td><td>"
       << spans << "</td><td>";
    html_escape(root != nullptr ? root->tenant : std::string(), os);
    os << "</td><td>";
    html_escape(root != nullptr ? root->status : std::string(), os);
    if (tree.missing_parents > 0) os << " (missing parents)";
    os << "</td><td>" << fmt(hi - lo) << "</td></tr>";
  }
  os << "</table>\n";

  // Waterfalls for the first few traces only — a campaign trace file
  // holds hundreds; the cap is stated so the cut is never silent.
  constexpr std::size_t kMaxWaterfalls = 4;
  const std::size_t shown = std::min(trees.size(), kMaxWaterfalls);
  if (shown < trees.size()) {
    os << "<p class=\"legend\">waterfalls for the first " << shown
       << " of " << trees.size()
       << " traces (use ftla_trace_cli for the rest)</p>\n";
  }
  for (std::size_t i = 0; i < shown; ++i) {
    obs::TraceFilter filter;
    filter.trace_id = trees[i].trace_id;
    os << "<pre>";
    html_escape(obs::render_waterfall(obs::filter_trace(report, filter)),
                os);
    os << "</pre>\n";
  }
  os << "</section>\n";
}

void metrics_section(const std::string& label, const obs::MetricsDoc& doc,
                     std::ostream& os) {
  os << "<section><h2>Metrics: ";
  html_escape(label, os);
  os << "</h2>\n";
  slo_burn_panel(doc, os);
  if (!doc.meta.empty()) {
    os << "<table class=\"meta\">";
    for (const auto& [k, v] : doc.meta) {
      os << "<tr><th>";
      html_escape(k, os);
      os << "</th><td>";
      html_escape(v, os);
      os << "</td></tr>";
    }
    os << "</table>\n";
  }
  if (!doc.counters.empty()) {
    os << "<h3>Counters</h3>\n<table><tr><th>name</th><th>value</th></tr>";
    for (const auto& [name, v] : doc.counters) {
      os << "<tr><td>";
      html_escape(name, os);
      os << "</td><td>" << v << "</td></tr>";
    }
    os << "</table>\n";
  }
  if (!doc.gauges.empty()) {
    os << "<h3>Gauges</h3>\n<table><tr><th>name</th><th>value</th></tr>";
    for (const auto& [name, v] : doc.gauges) {
      os << "<tr><td>";
      html_escape(name, os);
      os << "</td><td>" << fmt(v) << "</td></tr>";
    }
    os << "</table>\n";
  }
  if (!doc.histograms.empty()) {
    os << "<h3>Histograms</h3>\n<table><tr><th>name</th><th>count</th>"
          "<th>min</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th>"
          "<th>max</th></tr>";
    for (const auto& [name, h] : doc.histograms) {
      os << "<tr><td>";
      html_escape(name, os);
      os << "</td><td>" << h.count << "</td><td>" << fmt(h.min)
         << "</td><td>" << fmt(h.mean) << "</td><td>" << fmt(h.p50)
         << "</td><td>" << fmt(h.p95) << "</td><td>" << fmt(h.p99)
         << "</td><td>" << fmt(h.max) << "</td></tr>";
    }
    os << "</table>\n";
  }
  os << "</section>\n";
}

}  // namespace

void write_html_report(const ReportInputs& inputs, std::ostream& os) {
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n<title>";
  html_escape(inputs.title, os);
  os << "</title>\n<style>\n"
        "body{font:14px/1.5 system-ui,sans-serif;margin:24px auto;"
        "max-width:720px;color:#222}\n"
        "h1{font-size:22px}h2{font-size:18px;border-bottom:1px solid #ddd;"
        "padding-bottom:4px}h3{font-size:15px}\n"
        "section{margin-bottom:32px}\n"
        "table{border-collapse:collapse;margin:8px 0}\n"
        "th,td{border:1px solid #ddd;padding:3px 8px;text-align:left;"
        "font-variant-numeric:tabular-nums}\n"
        "table.meta th{background:#f5f5f5;font-weight:600}\n"
        ".legend{font-size:12px;color:#555}\n"
        ".swatch{display:inline-block;width:10px;height:10px;"
        "margin-right:4px;border-radius:2px}\n"
        ".row-label{font-size:13px;margin-top:10px}\n"
        ".util{display:flex;gap:8px;align-items:center;margin:2px 0}\n"
        ".util-name{width:90px;font-size:13px}\n"
        ".banner{background:#fff3cd;border:1px solid #d9a441;"
        "padding:8px 12px;border-radius:4px;font-size:13px}\n"
        "pre{font:11px/1.35 ui-monospace,monospace;overflow-x:auto;"
        "background:#f8f8f8;padding:6px;border:1px solid #eee}\n"
        "</style>\n</head>\n<body>\n<h1>";
  html_escape(inputs.title, os);
  os << "</h1>\n";

  if (!inputs.missing_inputs.empty()) {
    os << "<p class=\"banner\"><b>Inputs not provided:</b> ";
    bool first = true;
    for (const auto& kind : inputs.missing_inputs) {
      if (!first) os << ", ";
      first = false;
      html_escape(kind, os);
    }
    os << " &mdash; those sections are absent, not empty.</p>\n";
  }

  for (const auto& [label, p] : inputs.profiles) {
    profile_section(label, p, os);
  }
  for (const auto& [label, a] : inputs.analytics) {
    analytics_section(label, a, os);
  }
  for (const auto& [label, ts] : inputs.timeseries) {
    timeseries_section(label, ts, os);
  }
  for (const auto& [label, doc] : inputs.metrics) {
    metrics_section(label, doc, os);
  }
  for (const auto& [label, tr] : inputs.traces) {
    trace_section(label, tr, os);
  }

  os << "</body>\n</html>\n";
}

bool write_html_report_file(const ReportInputs& inputs,
                            const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_html_report(inputs, os);
  return static_cast<bool>(os);
}

}  // namespace ftla::report
