// Self-contained HTML run report: fuses profile JSON, campaign
// analytics, time-series rollups and metrics documents (ftla_cli
// --metrics-out, BENCH_*.json) into one dependency-free dashboard.
//
// Constraints, in priority order:
//   * byte-stable — same inputs produce the identical file, so CI can
//     diff two invocations; no timestamps, no environment probes, all
//     numbers through one deterministic snprintf formatter;
//   * no external assets — CSS and charts (plain inline SVG) are
//     generated inline, so the file works from an artifact store or an
//     air-gapped mail attachment;
//   * honest about inputs — each section is labeled with the caller's
//     label (the CLI uses file basenames) and sections render in the
//     order given.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "fault/analytics.hpp"
#include "obs/profile_report.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace ftla::report {

struct ReportInputs {
  std::string title = "FTLA run report";
  std::vector<std::pair<std::string, obs::ProfileReport>> profiles;
  std::vector<std::pair<std::string, fault::CampaignAnalytics>> analytics;
  std::vector<std::pair<std::string, obs::TimeSeriesReport>> timeseries;
  std::vector<std::pair<std::string, obs::MetricsDoc>> metrics;
  /// Causal-trace files (ftla_fleet_cli --trace-out).
  std::vector<std::pair<std::string, obs::TraceReport>> traces;
  /// Optional input kinds the caller skipped ("profile", "trace", ...);
  /// rendered as a visible banner so a thin report is never mistaken
  /// for a complete one.
  std::vector<std::string> missing_inputs;
};

/// Renders the dashboard. Deterministic: byte-identical output for
/// equal inputs.
void write_html_report(const ReportInputs& inputs, std::ostream& os);

/// write_html_report to `path`; returns false on I/O failure.
bool write_html_report_file(const ReportInputs& inputs,
                            const std::string& path);

}  // namespace ftla::report
