// ftla_trace_cli — inspect, filter, and diff causal-trace files
// (docs/observability.md, "Causal tracing & SLOs").
//
// Default mode renders each reassembled trace as a text waterfall: one
// line per span, indented by causal depth, with a bar on the shared
// virtual-time axis. Filters narrow the view to one trace id, one
// tenant, or one device before rendering.
//
// Diff mode (--diff / --check-against) compares two trace files
// *structurally*: traces are matched by trace id and their span trees
// compared recursively on name / kind / device / tenant / status and
// child order, ignoring absolute time stamps. Two runs of the same seed
// therefore compare clean whatever the thread count or clock origin; a
// perturbed run (different placement, extra retry, missing checkpoint)
// is rejected with the fail-stop exit code, which is what lets CI gate
// on trace stability.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/exit_codes.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ftla;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: ftla_trace_cli FILE.json [options]\n"
      "  --trace HEX          only the trace with this 16-hex-digit id\n"
      "  --tenant NAME        only spans of this tenant\n"
      "  --device N           only spans on device N (-1 = host/service)\n"
      "  --summary            per-trace span counts instead of waterfalls\n"
      "  --width N            waterfall bar width (default 48)\n"
      "  --diff OTHER.json    structural diff against OTHER; prints every\n"
      "                       difference, exits 3 when the files diverge\n"
      "  --check-against OTHER.json\n"
      "                       like --diff but prints only the verdict —\n"
      "                       the CI trace-stability gate\n"
      "\n"
      "exit codes:\n"
      "  0  traces rendered, or diff found the files structurally equal\n"
      "  1  I/O error (a trace file could not be read)\n"
      "  2  usage error\n"
      "  3  structural drift between the two trace files\n");
  std::exit(common::kExitUsage);
}

bool load(const std::string& path, obs::TraceReport* out) {
  std::string err;
  if (!obs::TraceReport::read_file(path, out, &err)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string other_path;
  bool check_only = false;
  bool summary = false;
  int width = 48;
  obs::TraceFilter filter;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (!obs::parse_trace_id(need(i), &filter.trace_id)) {
        usage("--trace expects a 16-hex-digit id");
      }
    } else if (arg == "--tenant") {
      filter.tenant = need(i);
    } else if (arg == "--device") {
      filter.device = std::atoi(need(i));
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--width") {
      width = std::atoi(need(i));
    } else if (arg == "--diff") {
      other_path = need(i);
      check_only = false;
    } else if (arg == "--check-against") {
      other_path = need(i);
      check_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      usage(("unknown option " + arg).c_str());
    } else if (path.empty()) {
      path = arg;
    } else {
      usage("more than one trace file; use --diff for comparisons");
    }
  }
  if (path.empty()) usage("no trace file given");
  if (width < 8) usage("--width must be >= 8");

  obs::TraceReport report;
  if (!load(path, &report)) return common::kExitIoError;

  if (!other_path.empty()) {
    obs::TraceReport other;
    if (!load(other_path, &other)) return common::kExitIoError;
    const obs::TraceDiffResult diff = obs::diff_traces(report, other);
    if (diff.identical()) {
      std::printf("trace check: OK (%zu spans, structurally equal)\n",
                  report.spans.size());
      return common::kExitSuccess;
    }
    if (check_only) {
      std::printf("trace check: DRIFT (%zu difference(s))\n",
                  diff.differences.size());
    } else {
      for (const auto& d : diff.differences) {
        std::printf("%s\n", d.c_str());
      }
    }
    return common::kExitFailStop;
  }

  const obs::TraceReport view = obs::filter_trace(report, filter);
  if (view.spans.empty()) {
    std::printf("no spans match the filter (%zu in file)\n",
                report.spans.size());
    return common::kExitSuccess;
  }
  if (summary) {
    for (const auto& tree : obs::assemble_traces(view)) {
      std::size_t spans = 0;
      double lo = 0.0;
      double hi = 0.0;
      bool first = true;
      for (const auto& root : tree.roots) {
        // Roots cover their subtrees' windows by construction; counting
        // still needs the whole tree.
        std::vector<const obs::TraceNode*> stack{&root};
        while (!stack.empty()) {
          const obs::TraceNode* node = stack.back();
          stack.pop_back();
          ++spans;
          if (first || node->span->start < lo) lo = node->span->start;
          if (first || node->span->end > hi) hi = node->span->end;
          first = false;
          for (const auto& child : node->children) stack.push_back(&child);
        }
      }
      std::printf("trace %s: %zu span(s), %d root(s), window %.9e..%.9e%s\n",
                  obs::format_trace_id(tree.trace_id).c_str(), spans,
                  static_cast<int>(tree.roots.size()), lo, hi,
                  tree.missing_parents > 0 ? " [missing parents]" : "");
    }
  } else {
    std::fputs(obs::render_waterfall(view, width).c_str(), stdout);
  }
  if (view.dropped > 0) {
    std::printf("(store dropped %lld span(s) at capacity)\n",
                static_cast<long long>(view.dropped));
  }
  return common::kExitSuccess;
}
