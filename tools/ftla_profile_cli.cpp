// ftla_profile_cli — inspect and gate simulated-time profiles.
//
// Sources (pick one):
//   run mode (default)   run one factorization under the profiler and
//                        analyze it in place
//   --from FILE.json     load a profile previously written by a
//                        --profile-out flag (ftla_cli, the benches)
//
// Run-mode options (a subset of ftla_cli's):
//   --machine tardis|bulldozer64|test   simulated node (default tardis)
//   --n N                               matrix size (default 2048)
//   --block B                           block size (default: MAGMA's)
//   --algo cholesky|lu|qr               factorization (default cholesky)
//   --variant enhanced|online|offline|noft
//   --k K                               Opt-3 verification interval
//   --placement auto|cpu|gpu|blocking   Opt-2 placement (cholesky)
//   --mode timing|numeric               execution mode (default timing:
//                                       virtual time is identical and
//                                       TimingOnly runs are much faster)
//   --threads N                         host BLAS worker threads
//   --seed S                            matrix seed (numeric mode)
//   --top K                             span aggregates to keep (12)
//
// Outputs:
//   (default)            human-readable phase/resource/critical-path
//                        tables on stdout
//   --json-out FILE      byte-stable schema-v1 profile JSON
//
// Regression gate:
//   --check-against BASELINE.json [--tolerance T]
//     compares the current profile (run or --from) against a checked-in
//     baseline: relative makespan drift plus absolute drift of each
//     phase's critical-path and busy fractions. Findings are printed
//     and the process exits with the findings-reported code.
//
// exit codes: 0 success / within tolerance, 1 I/O error, 2 usage error,
// 3 drift beyond tolerance (kExitFailStop doubles as "findings").
//
// With FTLA_POSTMORTEM=FILE.json in the environment (or --postmortem-out),
// the flight-recorder bundle is dumped on exit (docs/observability.md,
// "Analytics & postmortems").
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "abft/cholesky.hpp"
#include "abft/lu.hpp"
#include "abft/qr.hpp"
#include "common/exit_codes.hpp"
#include "common/spd.hpp"
#include "common/thread_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profile_report.hpp"
#include "obs/span.hpp"
#include "sim/profile.hpp"
#include "sim/profiler.hpp"

namespace {

using namespace ftla;

// Flight recorder shared with usage(): whatever was attached by the
// time the tool exits is what the postmortem bundle shows.
obs::FlightRecorder g_recorder;
std::string g_postmortem_path;

/// The single exit gate: dumps the flight-recorder bundle to
/// --postmortem-out (always) or $FTLA_POSTMORTEM (nonzero exits only),
/// then hands the code back. Best-effort — a failed dump never changes
/// the exit code.
int finish(int code, const std::string& reason) {
  if (!g_postmortem_path.empty()) {
    g_recorder.dump_file(g_postmortem_path, code, reason);
  } else if (const char* env = std::getenv("FTLA_POSTMORTEM");
             env != nullptr && code != common::kExitSuccess) {
    g_recorder.dump_file(env, code, reason);
  }
  return code;
}

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: ftla_profile_cli [--from FILE.json]\n"
      "  [--machine tardis|bulldozer64|test] [--n N] [--block B]\n"
      "  [--algo cholesky|lu|qr] [--variant enhanced|online|offline|noft]\n"
      "  [--k K] [--placement auto|cpu|gpu|blocking]\n"
      "  [--mode timing|numeric] [--threads N] [--seed S] [--top K]\n"
      "  [--json-out FILE.json] [--postmortem-out FILE.json]\n"
      "  [--check-against BASELINE.json] [--tolerance T]\n"
      "\n"
      "Without --from, runs one factorization under the simulated-time\n"
      "profiler; with it, analyzes a saved profile document instead.\n"
      "--check-against turns the tool into the perf-regression gate:\n"
      "drift beyond the tolerance exits with the findings code.\n"
      "\n"
      "exit codes:\n"
      "  0  success / within tolerance\n"
      "  1  I/O error (unreadable or unwritable profile file)\n"
      "  2  usage error\n"
      "  3  drift beyond tolerance (findings reported)\n");
  std::exit(finish(common::kExitUsage,
                   msg != nullptr ? std::string("usage error: ") + msg
                                  : std::string("usage error")));
}

struct Args {
  std::string from_path;
  std::string machine = "tardis";
  std::string algo = "cholesky";
  std::string variant = "enhanced";
  std::string placement = "auto";
  std::string mode = "timing";
  int n = 2048;
  int block = 0;
  int k = 1;
  int threads = 1;
  int top = 12;
  std::uint64_t seed = 42;
  std::string json_path;
  std::string baseline_path;
  double tolerance = 0.01;
};

Args parse(int argc, char** argv) {
  Args a;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    if (opt == "--from") a.from_path = need(i);
    else if (opt == "--machine") a.machine = need(i);
    else if (opt == "--algo") a.algo = need(i);
    else if (opt == "--variant") a.variant = need(i);
    else if (opt == "--placement") a.placement = need(i);
    else if (opt == "--mode") a.mode = need(i);
    else if (opt == "--n") a.n = std::atoi(need(i));
    else if (opt == "--block") a.block = std::atoi(need(i));
    else if (opt == "--k") a.k = std::atoi(need(i));
    else if (opt == "--threads") a.threads = std::atoi(need(i));
    else if (opt == "--top") a.top = std::atoi(need(i));
    else if (opt == "--seed") a.seed = std::strtoull(need(i), nullptr, 10);
    else if (opt == "--json-out") a.json_path = need(i);
    else if (opt == "--postmortem-out") g_postmortem_path = need(i);
    else if (opt == "--check-against") a.baseline_path = need(i);
    else if (opt == "--tolerance") a.tolerance = std::atof(need(i));
    else if (opt == "--help" || opt == "-h") usage();
    else usage(("unknown option " + opt).c_str());
  }
  if (a.n <= 0) usage("--n must be positive");
  if (a.k <= 0) usage("--k must be positive");
  if (a.threads < 0) usage("--threads must be >= 0");
  if (a.top < 0) usage("--top must be >= 0");
  if (a.tolerance < 0.0) usage("--tolerance must be >= 0");
  if (a.mode != "timing" && a.mode != "numeric") usage("unknown --mode");
  return a;
}

/// Runs one factorization with the profiler attached and analyzes it.
obs::ProfileReport run_and_profile(const Args& args) {
  common::set_global_threads(args.threads);

  sim::MachineProfile profile;
  if (args.machine == "tardis") profile = sim::tardis();
  else if (args.machine == "bulldozer64") profile = sim::bulldozer64();
  else if (args.machine == "test") profile = sim::test_rig();
  else usage("unknown --machine");

  const bool numeric = args.mode == "numeric";
  sim::Machine machine(profile, numeric ? sim::ExecutionMode::Numeric
                                        : sim::ExecutionMode::TimingOnly);
  obs::SpanStore spans;
  machine.set_span_store(&spans);

  Matrix<double> a;
  if (numeric) {
    a = Matrix<double>(args.n, args.n);
    make_spd_diag_dominant(a, args.seed);
  }
  Matrix<double>* ap = numeric ? &a : nullptr;

  auto variant = [&]() -> abft::Variant {
    if (args.variant == "enhanced") return abft::Variant::EnhancedOnline;
    if (args.variant == "online") return abft::Variant::Online;
    if (args.variant == "offline") return abft::Variant::Offline;
    if (args.variant == "noft") return abft::Variant::NoFt;
    usage("unknown --variant");
  };

  if (args.algo == "cholesky") {
    abft::CholeskyOptions opt;
    opt.variant = variant();
    opt.block_size = args.block;
    opt.verify_interval = args.k;
    if (args.placement == "auto") opt.placement = abft::UpdatePlacement::Auto;
    else if (args.placement == "cpu") opt.placement = abft::UpdatePlacement::Cpu;
    else if (args.placement == "gpu") opt.placement = abft::UpdatePlacement::Gpu;
    else if (args.placement == "blocking")
      opt.placement = abft::UpdatePlacement::Blocking;
    else usage("unknown --placement");
    opt.profile = &spans;
    abft::cholesky(machine, ap, args.n, opt);
  } else if (args.algo == "lu") {
    if (args.variant != "enhanced" && args.variant != "noft") {
      usage("--algo lu supports --variant enhanced|noft");
    }
    abft::LuOptions opt;
    opt.variant = variant();
    opt.block_size = args.block;
    opt.verify_interval = args.k;
    opt.profile = &spans;
    abft::lu(machine, ap, args.n, opt);
  } else if (args.algo == "qr") {
    if (args.variant != "enhanced" && args.variant != "noft") {
      usage("--algo qr supports --variant enhanced|noft");
    }
    abft::QrOptions opt;
    opt.variant = variant();
    opt.block_size = args.block;
    opt.verify_interval = args.k;
    opt.profile = &spans;
    std::vector<double> tau;
    abft::qr(machine, ap, numeric ? &tau : nullptr, args.n, opt);
  } else {
    usage("unknown --algo");
  }

  obs::ProfileReport report = sim::build_profile(machine, spans, args.top);
  report.meta["machine"] = profile.name;
  report.meta["mode"] = args.mode;
  report.meta["algo"] = args.algo;
  report.meta["variant"] = args.variant;
  report.meta["n"] = std::to_string(args.n);
  report.meta["k"] = std::to_string(args.k);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  g_recorder.set_meta("tool", "ftla_profile_cli");
  g_recorder.set_meta(
      "source", args.from_path.empty() ? std::string("run") : args.from_path);
  g_recorder.note("args parsed");

  obs::ProfileReport report;
  if (!args.from_path.empty()) {
    if (!obs::read_profile_json_file(args.from_path, &report)) {
      std::fprintf(stderr, "cannot read profile %s\n", args.from_path.c_str());
      return finish(common::kExitIoError, "cannot read profile");
    }
  } else {
    report = run_and_profile(args);
    g_recorder.note("profiled run complete");
  }

  if (!args.json_path.empty()) {
    if (!obs::write_profile_json_file(report, args.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return finish(common::kExitIoError, "failed to write profile");
    }
    std::printf("profile report    : %s\n", args.json_path.c_str());
  }

  if (!args.baseline_path.empty()) {
    obs::ProfileReport baseline;
    if (!obs::read_profile_json_file(args.baseline_path, &baseline)) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   args.baseline_path.c_str());
      return finish(common::kExitIoError, "cannot read baseline");
    }
    const std::vector<std::string> findings =
        obs::compare_profiles(baseline, report, args.tolerance);
    if (findings.empty()) {
      std::printf("perf gate: within tolerance %g of %s\n", args.tolerance,
                  args.baseline_path.c_str());
      return finish(common::kExitSuccess, "within tolerance");
    }
    std::printf("perf gate: %zu finding(s) against %s (tolerance %g)\n",
                findings.size(), args.baseline_path.c_str(), args.tolerance);
    for (const std::string& f : findings) {
      g_recorder.note(f);
      std::printf("  %s\n", f.c_str());
    }
    return finish(common::kExitFailStop, "drift beyond tolerance");
  }

  obs::write_profile_text(report, std::cout);
  return finish(common::kExitSuccess, "success");
}
