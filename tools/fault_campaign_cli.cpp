// fault_campaign_cli — stochastic fault-injection campaigns with an
// independent SDC oracle (docs/fault-model.md).
//
// Campaign mode (default): run N randomized scenarios across the four
// Cholesky variants (plus the LU/QR extensions) and both recovery
// policies, classify each end to end, print the verdict table, and
// shrink any unexpected outcome to a minimal replayable plan.
//
// Replay mode (--replay FILE): run one scenario from a file written by
// --failures-out (format_scenario text), exit by the verdict.
//
// With FTLA_POSTMORTEM=FILE.json in the environment (or --postmortem-out),
// the flight-recorder bundle is dumped on exit (docs/observability.md,
// "Analytics & postmortems").
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fault/analytics.hpp"
#include "fault/campaign.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace {

using namespace ftla;

// Flight recorder shared with usage(): whatever was attached by the
// time the tool exits is what the postmortem bundle shows.
obs::FlightRecorder g_recorder;
std::string g_postmortem_path;

/// The single exit gate: dumps the flight-recorder bundle to
/// --postmortem-out (always) or $FTLA_POSTMORTEM (nonzero exits only),
/// then hands the code back. Best-effort — a failed dump never changes
/// the exit code.
int finish(int code, const std::string& reason) {
  if (!g_postmortem_path.empty()) {
    g_recorder.dump_file(g_postmortem_path, code, reason);
  } else if (const char* env = std::getenv("FTLA_POSTMORTEM");
             env != nullptr && code != fault::kExitSuccess) {
    g_recorder.dump_file(env, code, reason);
  }
  return code;
}

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: fault_campaign_cli [options]\n"
      "  --scenarios N        randomized scenarios to run (default 200)\n"
      "  --seed S             campaign seed (default 1)\n"
      "  --blocks LO:HI       matrix size range in 16-wide blocks "
      "(default 3:7)\n"
      "  --threads N          run scenarios on N worker threads\n"
      "                       (0 = all cores; default 1). Verdicts and\n"
      "                       fired plans are bit-identical to serial\n"
      "  --report FILE.json   write the campaign metrics report\n"
      "  --analytics-out FILE write cross-scenario analytics JSON\n"
      "                       (detection-latency histograms per fault\n"
      "                       type, verdict breakdowns, overhead\n"
      "                       percentiles; render with ftla_report_cli)\n"
      "  --abort-after N      stop after N scenarios (deterministic\n"
      "                       truncation; exits 3 to flag the abort)\n"
      "  --postmortem-out FILE write the flight-recorder bundle at exit\n"
      "  --failures-out FILE  write shrunk failure plans (replayable)\n"
      "  --replay FILE        run one scenario from FILE instead of a\n"
      "                       campaign; exits by its verdict\n"
      "  --no-shrink          skip minimization of failing scenarios\n"
      "  --quiet              suppress progress lines\n"
      "\n"
      "exit codes:\n"
      "  0  campaign clean / replay finished with a clean result\n"
      "  1  I/O error (could not read or write a file)\n"
      "  2  usage error\n"
      "  3  fail-stop (replay: run gave up; campaign: unexpected\n"
      "     fail-stop with zero faults fired, or --abort-after cut the\n"
      "     campaign short)\n"
      "  4  silent data corruption (replay: corrupt result claimed as\n"
      "     success; campaign: any sdc verdict for the guarded variant)\n");
  std::exit(finish(fault::kExitUsage,
                   msg != nullptr ? std::string("usage error: ") + msg
                                  : std::string("usage error")));
}

int replay_exit_code(fault::Verdict v) {
  switch (v) {
    case fault::Verdict::FailStop: return fault::kExitFailStop;
    case fault::Verdict::Sdc: return fault::kExitSdc;
    default: return fault::kExitSuccess;
  }
}

}  // namespace

int main(int argc, char** argv) {
  fault::CampaignOptions opt;
  std::string report_path;
  std::string analytics_path;
  std::string failures_path;
  std::string replay_path;
  bool quiet = false;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenarios") opt.scenarios = std::atoi(need(i));
    else if (arg == "--seed") opt.seed = std::strtoull(need(i), nullptr, 10);
    else if (arg == "--threads") opt.threads = std::atoi(need(i));
    else if (arg == "--blocks") {
      const std::string v = need(i);
      if (std::sscanf(v.c_str(), "%d:%d", &opt.min_blocks,
                      &opt.max_blocks) != 2) {
        usage("--blocks expects LO:HI");
      }
    } else if (arg == "--report") report_path = need(i);
    else if (arg == "--analytics-out") analytics_path = need(i);
    else if (arg == "--abort-after") opt.abort_after = std::atoi(need(i));
    else if (arg == "--postmortem-out") g_postmortem_path = need(i);
    else if (arg == "--failures-out") failures_path = need(i);
    else if (arg == "--replay") replay_path = need(i);
    else if (arg == "--no-shrink") opt.shrink_failures = false;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") usage();
    else usage(("unknown option " + arg).c_str());
  }
  if (opt.scenarios <= 0) usage("--scenarios must be positive");
  if (opt.threads < 0) usage("--threads must be >= 0");
  if (opt.min_blocks < 1 || opt.max_blocks < opt.min_blocks) {
    usage("--blocks range is empty");
  }
  if (!analytics_path.empty()) opt.collect_observations = true;

  g_recorder.set_meta("tool", "fault_campaign_cli");
  g_recorder.set_meta("scenarios", std::to_string(opt.scenarios));
  g_recorder.set_meta("seed", std::to_string(opt.seed));
  g_recorder.set_meta("threads", std::to_string(opt.threads));
  if (opt.abort_after > 0) {
    g_recorder.set_meta("abort_after", std::to_string(opt.abort_after));
  }
  g_recorder.note("args parsed");

  if (!replay_path.empty()) {
    g_recorder.set_meta("replay", replay_path);
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replay_path.c_str());
      return finish(fault::kExitIoError, "cannot read replay file");
    }
    std::ostringstream text;
    text << in.rdbuf();
    fault::Scenario sc;
    std::string err;
    if (!fault::parse_scenario(text.str(), &sc, &err)) {
      std::fprintf(stderr, "%s: %s\n", replay_path.c_str(), err.c_str());
      return finish(fault::kExitUsage, "unparsable replay scenario");
    }
    const fault::ScenarioResult res = fault::run_scenario(sc);
    std::printf("verdict   : %s\n", fault::to_string(res.verdict));
    std::printf("residual  : %.3e\n", res.residual);
    std::printf("faults    : %d fired, %d detected, %d via transfer, "
                "%d ECC-absorbed\n",
                res.faults_fired, res.faults_detected, res.transfer_faults,
                res.ecc_absorbed);
    std::printf("recovery  : %lld corrected, %d rollbacks, %d reruns\n",
                res.errors_corrected, res.rollbacks, res.reruns);
    if (!res.note.empty()) std::printf("note      : %s\n", res.note.c_str());
    for (const auto& rec : res.records) {
      std::printf("  [%lld] t=%.3e %s op=%s iter=%d block=%d,%d "
                  "elem=%d,%d xfer=%lld -> %s",
                  static_cast<long long>(rec.id), rec.inject_time,
                  fault::to_string(rec.spec.type),
                  fault::to_string(rec.spec.op), rec.spec.iteration,
                  rec.spec.block_row, rec.spec.block_col,
                  rec.spec.elem_row, rec.spec.elem_col,
                  static_cast<long long>(rec.spec.transfer_index),
                  rec.detected() ? "detected" : "LATENT");
      if (rec.detected()) {
        std::printf(" (latency %.3e s)", rec.detection_latency());
      }
      std::printf("\n");
    }
    const int code = replay_exit_code(res.verdict);
    return finish(code, std::string("replay verdict: ") +
                            fault::to_string(res.verdict));
  }

  obs::MetricsRegistry metrics;
  g_recorder.attach_metrics(&metrics);
  const fault::CampaignSummary sum = fault::run_campaign(
      opt, &metrics, quiet ? nullptr : &std::cout, 100);
  g_recorder.note(sum.aborted ? "campaign aborted early"
                              : "campaign complete");

  std::printf("scenarios : %d\n", sum.scenarios_run);
  std::printf("faults    : %lld fired, %lld detected, %lld via transfer, "
              "%lld ECC-absorbed\n",
              sum.faults_fired, sum.faults_detected, sum.transfer_faults,
              sum.ecc_absorbed);
  std::printf("%-36s %9s %11s %7s %9s %5s\n", "algo/variant", "corrected",
              "rolled_back", "rerun", "fail_stop", "sdc");
  for (const auto& [key, row] : sum.verdicts) {
    std::printf("%-36s %9lld %11lld %7lld %9lld %5lld\n", key.c_str(),
                row[0], row[1], row[2], row[3], row[4]);
  }
  if (!sum.failures.empty()) {
    std::printf("\n%zu unexpected outcome(s):\n", sum.failures.size());
    for (const auto& f : sum.failures) {
      std::printf("--- verdict=%s reproduced=%s shrunk_to=%zu fault(s) "
                  "(%d shrink runs)\n",
                  fault::to_string(f.result.verdict),
                  f.reproduced ? "yes" : "no", f.shrunk.plan.size(),
                  f.shrink_runs);
      std::fputs(fault::format_scenario(f.shrunk).c_str(), stdout);
      if (!f.reproduced) {
        // The twin diverged; the seeded stochastic original is still
        // replayable verbatim — print it for offline debugging.
        std::printf("original (stochastic, replayable):\n");
        std::fputs(fault::format_scenario(f.scenario).c_str(), stdout);
      }
    }
  }

  if (!failures_path.empty() && !sum.failures.empty()) {
    std::ofstream out(failures_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", failures_path.c_str());
      return finish(fault::kExitIoError, "cannot write failures file");
    }
    for (const auto& f : sum.failures) {
      out << "# verdict=" << fault::to_string(f.result.verdict)
          << " reproduced=" << (f.reproduced ? "yes" : "no") << "\n"
          << fault::format_scenario(f.shrunk) << "\n";
    }
  }

  if (!report_path.empty()) {
    obs::MetricsReport report;
    report.add_meta("tool", "fault_campaign_cli");
    report.add_meta("scenarios", std::to_string(opt.scenarios));
    report.add_meta("seed", std::to_string(opt.seed));
    report.add_meta("threads", std::to_string(opt.threads));
    report.add_meta("guarded_variant", abft::to_string(opt.guarded));
    report.metrics = metrics;
    if (!obs::write_metrics_json_file(report, report_path)) {
      std::fprintf(stderr, "failed to write %s\n", report_path.c_str());
      return finish(fault::kExitIoError, "failed to write report");
    }
    std::printf("report    : %s\n", report_path.c_str());
  }

  if (!analytics_path.empty()) {
    fault::CampaignAnalytics analytics = fault::aggregate_campaign(sum);
    analytics.meta["tool"] = "fault_campaign_cli";
    analytics.meta["scenarios"] = std::to_string(opt.scenarios);
    analytics.meta["seed"] = std::to_string(opt.seed);
    analytics.meta["threads"] = std::to_string(opt.threads);
    analytics.meta["guarded_variant"] = abft::to_string(opt.guarded);
    if (!fault::write_analytics_json_file(analytics, analytics_path)) {
      std::fprintf(stderr, "failed to write %s\n", analytics_path.c_str());
      return finish(fault::kExitIoError, "failed to write analytics");
    }
    std::printf("analytics : %s (render with ftla_report_cli)\n",
                analytics_path.c_str());
  }

  // --abort-after truncation is reported as a fail-stop: the campaign
  // did not finish, and scripts must not read a clean verdict into a
  // partial run.
  if (sum.guarded_sdc > 0) {
    return finish(fault::kExitSdc, "guarded variant saw sdc");
  }
  if (sum.unexpected_fail_stop > 0) {
    return finish(fault::kExitFailStop, "unexpected fail-stop");
  }
  if (sum.aborted) {
    return finish(fault::kExitFailStop, "campaign aborted by --abort-after");
  }
  return finish(fault::kExitSuccess, "campaign clean");
}
