// The ftla_lint rule implementations. Each rule is a pure function from
// a scanned SourceFile (+ its RuleConfig) to findings; lint_file owns
// scoping, enablement and suppression so the rules stay oblivious to
// configuration mechanics.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "lint/lint.hpp"

namespace ftla::lint {

namespace {

// ----- shared helpers -------------------------------------------------

/// True when `path` equals `prefix` or lies underneath it.
bool path_under(const std::string& path, const std::string& prefix) {
  if (path == prefix) return true;
  return path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
         path[prefix.size()] == '/';
}

bool path_in_any(const std::string& path, const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(), [&](const std::string& p) {
    return path_under(path, p);
  });
}

/// A word-ish token occurrence: preceding char is not part of an
/// identifier. (The token itself may end in '_' to act as a prefix
/// match, e.g. "format_".)
bool contains_token(const std::string& line, const std::string& token) {
  std::size_t at = 0;
  while ((at = line.find(token, at)) != std::string::npos) {
    const bool word_start =
        std::isalnum(static_cast<unsigned char>(token.front())) != 0 ||
        token.front() == '_';
    if (!word_start) return true;  // operator tokens like "<<"
    if (at == 0 || (!std::isalnum(static_cast<unsigned char>(line[at - 1])) &&
                    line[at - 1] != '_')) {
      const std::size_t end = at + token.size();
      if (token.back() == '_' || end >= line.size() ||
          (!std::isalnum(static_cast<unsigned char>(line[end])) &&
           line[end] != '_')) {
        return true;
      }
    }
    ++at;
  }
  return false;
}

// ----- function-region segmentation -----------------------------------

/// A brace-delimited body whose header looks like a function (or
/// lambda) signature: `)` before `{`, not a control/type/namespace
/// keyword. Lines are 0-based and inclusive.
struct Region {
  int begin = 0;
  int end = 0;
  std::string header;
};

bool looks_like_function_header(const std::string& header) {
  static const std::regex kNotFunction(
      R"((^|[^A-Za-z0-9_])(if|for|while|switch|catch|class|struct|enum|union|namespace)($|[^A-Za-z0-9_]))");
  if (header.find('(') == std::string::npos ||
      header.find(')') == std::string::npos) {
    return false;
  }
  return !std::regex_search(header, kNotFunction);
}

std::vector<Region> function_regions(const SourceFile& f) {
  std::vector<Region> regions;
  int depth = 0;
  bool in_fn = false;
  int fn_depth = 0;
  int fn_start = 0;
  std::string fn_header;
  std::string header;  // text accumulated since the last ; { or }
  bool continued_directive = false;

  for (int ln = 0; ln < static_cast<int>(f.code.size()); ++ln) {
    const std::string& line = f.code[static_cast<std::size_t>(ln)];
    // Preprocessor lines (and their \-continuations) can carry
    // unbalanced braces; keep them out of the depth count.
    const auto first = line.find_first_not_of(" \t");
    const bool directive =
        continued_directive || (first != std::string::npos && line[first] == '#');
    const std::string& raw_line = f.raw[static_cast<std::size_t>(ln)];
    continued_directive = directive && !raw_line.empty() && raw_line.back() == '\\';
    if (directive) continue;

    for (const char c : line) {
      if (in_fn) {
        if (c == '{') {
          ++depth;
        } else if (c == '}') {
          --depth;
          if (depth == fn_depth) {
            regions.push_back({fn_start, ln, fn_header});
            in_fn = false;
            header.clear();
          }
        }
        continue;
      }
      if (c == '{') {
        if (looks_like_function_header(header)) {
          in_fn = true;
          fn_depth = depth;
          fn_start = ln;
          fn_header = header;
        }
        header.clear();
        ++depth;
      } else if (c == '}') {
        --depth;
        header.clear();
      } else if (c == ';') {
        header.clear();
      } else {
        header += c;
      }
    }
    if (!in_fn) header += ' ';
  }
  return regions;
}

// ----- rule: no-wall-clock --------------------------------------------

void rule_no_wall_clock(const SourceFile& f, const RuleConfig&,
                        std::vector<Finding>* out) {
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\bsystem_clock\b)"), "std::chrono::system_clock"},
      {std::regex(R"(\bsteady_clock\b)"), "std::chrono::steady_clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "std::chrono::high_resolution_clock"},
      {std::regex(R"(\btime\s*\()"), "time()"},
      {std::regex(R"(\bclock\s*\()"), "clock()"},
      {std::regex(R"(\bgettimeofday\s*\()"), "gettimeofday()"},
      {std::regex(R"(\bclock_gettime\b)"), "clock_gettime()"},
      {std::regex(R"(\blocaltime\b)"), "localtime()"},
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const Pattern& p : kBanned) {
      if (std::regex_search(f.code[i], p.re)) {
        out->push_back({f.path, static_cast<int>(i) + 1, "no-wall-clock",
                        std::string("wall-clock source ") + p.what +
                            " in simulated code; all timing must flow "
                            "through sim::Machine's virtual clock"});
        break;
      }
    }
  }
}

// ----- rule: no-raw-randomness ----------------------------------------

void rule_no_raw_randomness(const SourceFile& f, const RuleConfig&,
                            std::vector<Finding>* out) {
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> kBanned = {
      {std::regex(R"(\brand\s*\()"), "rand()"},
      {std::regex(R"(\bsrand\s*\()"), "srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\bdrand48\b)"), "drand48()"},
      {std::regex(R"(\blrand48\b)"), "lrand48()"},
  };
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const Pattern& p : kBanned) {
      if (std::regex_search(f.code[i], p.re)) {
        out->push_back({f.path, static_cast<int>(i) + 1, "no-raw-randomness",
                        std::string("unseeded randomness source ") + p.what +
                            "; draw from a seeded ftla::Rng "
                            "(src/common/rng.hpp) so runs replay"});
        break;
      }
    }
  }
}

// ----- rule: deterministic-serialization ------------------------------

/// Names of variables declared (anywhere in the file) with an
/// std::unordered_{map,set,multimap,multiset} type.
std::set<std::string> unordered_variable_names(const SourceFile& f) {
  std::set<std::string> names;
  std::string joined;
  for (const std::string& line : f.code) {
    joined += line;
    joined += ' ';
  }
  static const std::regex kDecl(
      R"(\bunordered_(?:multi)?(?:map|set)\s*<)");
  for (auto it = std::sregex_iterator(joined.begin(), joined.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    // Balance the template argument list, then read the declared name.
    std::size_t pos = static_cast<std::size_t>(it->position()) + it->length();
    int angle = 1;
    while (pos < joined.size() && angle > 0) {
      if (joined[pos] == '<') ++angle;
      if (joined[pos] == '>') --angle;
      ++pos;
    }
    while (pos < joined.size() &&
           (joined[pos] == ' ' || joined[pos] == '&' || joined[pos] == '*' ||
            joined[pos] == ':')) {
      ++pos;
    }
    std::string name;
    while (pos < joined.size() &&
           (std::isalnum(static_cast<unsigned char>(joined[pos])) != 0 ||
            joined[pos] == '_')) {
      name += joined[pos++];
    }
    if (!name.empty() && name != "const") names.insert(name);
  }
  return names;
}

void rule_deterministic_serialization(const SourceFile& f,
                                      const RuleConfig& cfg,
                                      std::vector<Finding>* out) {
  static const std::vector<std::string> kDefaultSinks = {
      "<<", "fprintf", "printf", "to_json", "write", "serialize", "format_"};
  const std::vector<std::string>& sinks =
      cfg.extra.empty() ? kDefaultSinks : cfg.extra;

  const std::set<std::string> unordered = unordered_variable_names(f);
  static const std::regex kRangeFor(R"(:\s*([A-Za-z_][A-Za-z0-9_]*)\s*\))");
  static const std::regex kBegin(R"(\b([A-Za-z_][A-Za-z0-9_]*)\.begin\s*\()");
  static const std::regex kInlineIter(R"(\bfor\b[^;]*\bunordered_)");

  for (const Region& r : function_regions(f)) {
    bool serializes = false;
    for (int ln = r.begin; ln <= r.end && !serializes; ++ln) {
      for (const std::string& s : sinks) {
        if (contains_token(f.code[static_cast<std::size_t>(ln)], s)) {
          serializes = true;
          break;
        }
      }
    }
    if (!serializes) continue;

    for (int ln = r.begin; ln <= r.end; ++ln) {
      const std::string& line = f.code[static_cast<std::size_t>(ln)];
      std::string culprit;
      std::smatch m;
      if (std::regex_search(line, m, kRangeFor) &&
          unordered.count(m[1].str()) > 0) {
        culprit = m[1].str();
      } else if (std::regex_search(line, m, kBegin) &&
                 unordered.count(m[1].str()) > 0) {
        culprit = m[1].str();
      } else if (std::regex_search(line, kInlineIter)) {
        culprit = "<unordered container>";
      }
      if (!culprit.empty()) {
        out->push_back(
            {f.path, ln + 1, "deterministic-serialization",
             "iterating unordered container '" + culprit +
                 "' in a function that writes serialized output; iterate "
                 "a sorted copy (or use std::map) so bytes are "
                 "reproducible"});
      }
    }
  }
}

// ----- rule: exit-code-contract ---------------------------------------

void rule_exit_code_contract(const SourceFile& f, const RuleConfig&,
                             std::vector<Finding>* out) {
  // Only CLI translation units carry the process exit contract.
  if (f.path.size() < 8 ||
      f.path.compare(f.path.size() - 8, 8, "_cli.cpp") != 0) {
    return;
  }
  static const std::regex kExitCall(
      R"(\b(?:std\s*::\s*)?exit\s*\(\s*(?:[0-9]+|EXIT_SUCCESS|EXIT_FAILURE)\s*\))");
  static const std::regex kMacroReturn(
      R"(\breturn\s+(?:EXIT_SUCCESS|EXIT_FAILURE)\s*;)");
  static const std::regex kNumericReturn(R"(\breturn\s+[0-9]+\s*;)");
  static const std::regex kMain(R"(\bmain\s*\()");

  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (std::regex_search(f.code[i], kExitCall) ||
        std::regex_search(f.code[i], kMacroReturn)) {
      out->push_back({f.path, static_cast<int>(i) + 1, "exit-code-contract",
                      "raw process exit status; use the shared "
                      "ftla::common::kExit* contract "
                      "(src/common/exit_codes.hpp)"});
    }
  }

  int main_line = -1;
  for (const Region& r : function_regions(f)) {
    if (!std::regex_search(r.header, kMain)) continue;
    main_line = r.begin;
    for (int ln = r.begin; ln <= r.end; ++ln) {
      if (std::regex_search(f.code[static_cast<std::size_t>(ln)],
                            kNumericReturn)) {
        out->push_back({f.path, ln + 1, "exit-code-contract",
                        "numeric exit literal returned from main; use the "
                        "shared ftla::common::kExit* contract "
                        "(src/common/exit_codes.hpp)"});
      }
    }
  }

  bool mentions_contract = false;
  for (const std::string& line : f.code) {
    if (line.find("kExit") != std::string::npos) {
      mentions_contract = true;
      break;
    }
  }
  if (main_line >= 0 && !mentions_contract) {
    out->push_back({f.path, main_line + 1, "exit-code-contract",
                    "CLI main never references the shared exit-code "
                    "contract; return ftla::common::kExit* values "
                    "(src/common/exit_codes.hpp)"});
  }
}

// ----- rule: metrics-naming -------------------------------------------

bool valid_metric_name(const std::string& name) {
  static const std::regex kName(
      R"(^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$)");
  return std::regex_match(name, kName);
}

/// The subsystem prefixes exporters and dashboards route by. `extra`
/// overrides the list (same pattern as include-hygiene's banned set:
/// empty means "use the built-in default").
const std::vector<std::string>& metric_namespaces(const RuleConfig& cfg) {
  static const std::vector<std::string> kDefault = {
      "abft", "bench", "campaign", "faults", "fleet", "obs", "profile",
      "run", "runtime", "service", "sim", "slo", "tenant", "test",
      "timeseries", "trace"};
  return cfg.extra.empty() ? kDefault : cfg.extra;
}

void rule_metrics_naming(const SourceFile& f, const RuleConfig& cfg,
                         std::vector<Finding>* out) {
  // Only full-literal first arguments are judged: a closing quote that
  // is not directly followed by ',' or ')' means the name is assembled
  // at runtime and out of this rule's reach.
  static const std::regex kCall(
      R"re(\b(add_counter|set_gauge|record_histogram|counter|gauge|histogram|sample_counter|sample_gauge)\s*\(\s*"([^"]*)"\s*[,\)])re");
  for (std::size_t i = 0; i < f.nocomment.size(); ++i) {
    const std::string& line = f.nocomment[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[2].str();
      if (!valid_metric_name(name)) {
        out->push_back({f.path, static_cast<int>(i) + 1, "metrics-naming",
                        "metric name \"" + name +
                            "\" violates the subsystem.noun[_unit] "
                            "convention (lowercase dotted segments, e.g. "
                            "\"abft.verify.dgemm_blocks\")"});
        continue;
      }
      const std::string ns = name.substr(0, name.find('.'));
      const std::vector<std::string>& allowed = metric_namespaces(cfg);
      if (std::find(allowed.begin(), allowed.end(), ns) == allowed.end()) {
        std::string list;
        for (const std::string& a : allowed) {
          if (!list.empty()) list += ", ";
          list += a;
        }
        out->push_back({f.path, static_cast<int>(i) + 1, "metrics-naming",
                        "metric name \"" + name + "\" uses unknown "
                            "namespace \"" + ns +
                            "\" (known subsystem prefixes: " + list +
                            "; extend via extra in .ftla_lint.toml)"});
      }
    }
  }
}

// ----- rule: include-hygiene ------------------------------------------

void rule_include_hygiene(const SourceFile& f, const RuleConfig& cfg,
                          std::vector<Finding>* out) {
  if (!f.is_header()) return;
  static const std::vector<std::string> kDefaultBanned = {
      "iostream", "fstream", "regex", "filesystem"};
  const std::vector<std::string>& banned =
      cfg.extra.empty() ? kDefaultBanned : cfg.extra;
  static const std::regex kInclude(
      R"(^\s*#\s*include\s*[<"]([^>"]+)[>"])");
  for (std::size_t i = 0; i < f.nocomment.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(f.nocomment[i], m, kInclude)) continue;
    const std::string target = m[1].str();
    if (std::find(banned.begin(), banned.end(), target) != banned.end()) {
      out->push_back({f.path, static_cast<int>(i) + 1, "include-hygiene",
                      "header includes <" + target +
                          ">; heavyweight includes belong in .cpp files "
                          "(use <iosfwd> / forward declarations in "
                          "headers)"});
    }
  }
}

// ----- DAG rules: shared add_task call-site walker ---------------------

std::string trim_copy(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// One `.add_task(...)` / `->add_task(...)` call site: the 0-based line
/// of the token, the per-line argument text (inside the outer parens),
/// and the arguments split at top-level commas. Out-of-line
/// definitions (`TaskGraph::add_task`) are not calls and are skipped.
struct AddTaskCall {
  int line = 0;
  std::vector<std::pair<int, std::string>> extent;
  std::vector<std::string> args;
};

std::vector<AddTaskCall> add_task_calls(const SourceFile& f) {
  static const std::string kToken = "add_task";
  std::vector<AddTaskCall> calls;
  for (int ln = 0; ln < static_cast<int>(f.code.size()); ++ln) {
    const std::string& line = f.code[static_cast<std::size_t>(ln)];
    std::size_t at = 0;
    while ((at = line.find(kToken, at)) != std::string::npos) {
      const std::size_t tok_end = at + kToken.size();
      const bool member =
          at > 0 && (line[at - 1] == '.' || line[at - 1] == '>');
      std::size_t open = tok_end;
      while (open < line.size() && line[open] == ' ') ++open;
      if (!member || open >= line.size() || line[open] != '(') {
        at = tok_end;
        continue;
      }

      AddTaskCall call;
      call.line = ln;
      int pd = 0;  // parens, 1 inside the call's own list
      int bd = 0;  // braces (footprint / designated initializers)
      int kd = 0;  // brackets (lambda captures, subscripts)
      std::string cur;
      bool done = false;
      int l = ln;
      std::size_t p = open;
      while (l < static_cast<int>(f.code.size()) && !done) {
        const std::string& s = f.code[static_cast<std::size_t>(l)];
        std::string seg;
        for (; p < s.size(); ++p) {
          const char c = s[p];
          if (c == '(' && pd == 0) {
            pd = 1;
            continue;
          }
          if (c == '(') {
            ++pd;
          } else if (c == ')') {
            --pd;
            if (pd == 0) {
              done = true;
              break;
            }
          } else if (c == '{') {
            ++bd;
          } else if (c == '}') {
            --bd;
          } else if (c == '[') {
            ++kd;
          } else if (c == ']') {
            --kd;
          }
          if (c == ',' && pd == 1 && bd == 0 && kd == 0) {
            call.args.push_back(cur);
            cur.clear();
          } else {
            cur += c;
          }
          seg += c;
        }
        if (!seg.empty()) call.extent.emplace_back(l, seg);
        if (!done) {
          ++l;
          p = 0;
          cur += ' ';
        }
      }
      if (done) call.args.push_back(cur);
      calls.push_back(std::move(call));
      at = tok_end;
    }
  }
  return calls;
}

// ----- rule: dag-footprint-helpers ------------------------------------

void rule_dag_footprint_helpers(const SourceFile& f, const RuleConfig&,
                                std::vector<Finding>* out) {
  static const std::regex kRawAccess(R"(\bAccess\s*::)");
  static const std::regex kBraceFootprint(R"(\bFootprint\s*\{)");
  static const std::regex kTypeDecl(R"(\b(?:struct|class)\s+Footprint\b)");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (std::regex_search(line, kRawAccess)) {
      out->push_back({f.path, static_cast<int>(i) + 1,
                      "dag-footprint-helpers",
                      "raw runtime::Access value in DAG code; declare "
                      "footprints with the runtime::read/write/rw helpers "
                      "so access modes stay auditable"});
      continue;
    }
    if (std::regex_search(line, kBraceFootprint) &&
        !std::regex_search(line, kTypeDecl)) {
      out->push_back({f.path, static_cast<int>(i) + 1,
                      "dag-footprint-helpers",
                      "brace-built runtime::Footprint entry; use the "
                      "runtime::read/write/rw helpers instead of aggregate "
                      "construction"});
    }
  }
}

// ----- rule: dag-task-phase -------------------------------------------

void rule_dag_task_phase(const SourceFile& f, const RuleConfig&,
                         std::vector<Finding>* out) {
  const std::vector<AddTaskCall> calls = add_task_calls(f);
  if (calls.empty()) return;
  const std::vector<Region> regions = function_regions(f);
  static const std::regex kIdentifier(R"(^[A-Za-z_][A-Za-z0-9_]*$)");

  for (const AddTaskCall& call : calls) {
    const std::string last =
        call.args.empty() ? std::string() : trim_copy(call.args.back());
    if (std::regex_match(last, kIdentifier)) {
      // Named TaskOptions: `<name>.phase` must be assigned somewhere in
      // the enclosing function (the whole file when no region matches —
      // e.g. options populated by a helper).
      int begin = 0;
      int end = static_cast<int>(f.code.size()) - 1;
      for (const Region& r : regions) {
        if (r.begin <= call.line && call.line <= r.end) {
          begin = r.begin;
          end = r.end;
          break;
        }
      }
      const std::string needle = last + ".phase";
      bool sets_phase = false;
      for (int ln = begin; ln <= end && !sets_phase; ++ln) {
        sets_phase = contains_token(f.code[static_cast<std::size_t>(ln)],
                                    needle);
      }
      if (!sets_phase) {
        out->push_back({f.path, call.line + 1, "dag-task-phase",
                        "TaskOptions '" + last +
                            "' passed to add_task never sets .phase; every "
                            "DAG task names its observability phase so "
                            "telemetry and the profiler can attribute it"});
      }
    } else if (last.find(".phase") == std::string::npos) {
      out->push_back({f.path, call.line + 1, "dag-task-phase",
                      "add_task call site without a phase-bearing "
                      "TaskOptions argument; pass options with .phase set "
                      "so telemetry and the profiler can attribute the "
                      "task"});
    }
  }
}

// ----- rule: dag-capture-hygiene --------------------------------------

void rule_dag_capture_hygiene(const SourceFile& f, const RuleConfig&,
                              std::vector<Finding>* out) {
  static const std::regex kDefaultCapture(R"(\[\s*[&=]\s*[,\]])");
  for (const AddTaskCall& call : add_task_calls(f)) {
    for (const auto& [ln, seg] : call.extent) {
      if (std::regex_search(seg, kDefaultCapture)) {
        out->push_back({f.path, ln + 1, "dag-capture-hygiene",
                        "default lambda capture ([&] / [=]) in an add_task "
                        "argument; capture tiles and indices explicitly so "
                        "the body provably touches only the declared "
                        "footprint"});
      }
    }
  }
}

}  // namespace

// ----- catalog and defaults -------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"no-wall-clock",
       "simulated code must use the virtual clock, never the host's"},
      {"no-raw-randomness",
       "all randomness flows through seeded ftla::Rng so runs replay"},
      {"deterministic-serialization",
       "serializing functions must not iterate unordered containers"},
      {"exit-code-contract",
       "CLI exit paths use the shared ftla::common::kExit* codes"},
      {"metrics-naming",
       "metric names follow the dotted subsystem.noun[_unit] convention"},
      {"include-hygiene",
       "headers under src/ avoid heavyweight standard includes"},
      {"dag-footprint-helpers",
       "DAG footprints come from the read/write/rw helpers, never raw "
       "Access values"},
      {"dag-task-phase",
       "every add_task call site names its observability phase"},
      {"dag-capture-hygiene",
       "add_task lambdas capture explicitly — no [&] or [=] defaults"},
  };
  return kCatalog;
}

Config default_config() {
  Config cfg;
  cfg.exclude = {"tests/lint_fixtures"};

  RuleConfig wall_clock;
  wall_clock.paths = {"src/sim", "src/fault", "src/abft"};
  cfg.rules["no-wall-clock"] = wall_clock;

  RuleConfig randomness;
  randomness.exempt = {"src/common/rng.hpp"};
  cfg.rules["no-raw-randomness"] = randomness;

  cfg.rules["deterministic-serialization"] = RuleConfig{};

  RuleConfig exit_codes;
  exit_codes.paths = {"tools"};
  cfg.rules["exit-code-contract"] = exit_codes;

  cfg.rules["metrics-naming"] = RuleConfig{};

  RuleConfig includes;
  includes.paths = {"src"};
  cfg.rules["include-hygiene"] = includes;

  RuleConfig dag_footprint;
  dag_footprint.paths = {"src/abft", "src/runtime"};
  dag_footprint.exempt = {"src/runtime/graph.hpp", "src/runtime/graph.cpp",
                          "src/runtime/sanitizer.hpp",
                          "src/runtime/sanitizer.cpp"};
  cfg.rules["dag-footprint-helpers"] = dag_footprint;

  RuleConfig dag_phase;
  dag_phase.paths = {"src/abft", "src/runtime"};
  cfg.rules["dag-task-phase"] = dag_phase;

  RuleConfig dag_capture;
  dag_capture.paths = {"src/abft", "src/runtime"};
  cfg.rules["dag-capture-hygiene"] = dag_capture;

  return cfg;
}

// ----- driver ---------------------------------------------------------

std::vector<Finding> lint_file(const SourceFile& file, const Config& config) {
  using RuleFn = void (*)(const SourceFile&, const RuleConfig&,
                          std::vector<Finding>*);
  static const std::map<std::string, RuleFn> kRules = {
      {"no-wall-clock", rule_no_wall_clock},
      {"no-raw-randomness", rule_no_raw_randomness},
      {"deterministic-serialization", rule_deterministic_serialization},
      {"exit-code-contract", rule_exit_code_contract},
      {"metrics-naming", rule_metrics_naming},
      {"include-hygiene", rule_include_hygiene},
      {"dag-footprint-helpers", rule_dag_footprint_helpers},
      {"dag-task-phase", rule_dag_task_phase},
      {"dag-capture-hygiene", rule_dag_capture_hygiene},
  };

  std::vector<Finding> findings;
  for (const RuleInfo& info : rule_catalog()) {
    const RuleConfig& rc = config.rule(info.name);
    if (!rc.enabled) continue;
    if (!rc.paths.empty() && !path_in_any(file.path, rc.paths)) continue;
    if (path_in_any(file.path, rc.exempt)) continue;

    std::vector<Finding> raw;
    kRules.at(info.name)(file, rc, &raw);
    for (Finding& fnd : raw) {
      if (!file.suppressed(fnd.line, fnd.rule)) {
        findings.push_back(std::move(fnd));
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& roots,
                                const std::string& root, const Config& config,
                                std::vector<std::string>* io_errors) {
  namespace fs = std::filesystem;
  const auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".cpp" ||
           ext == ".cc";
  };
  const auto skip_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == ".git" || name.rfind("build", 0) == 0 ||
           (!name.empty() && name.front() == '.');
  };

  std::set<std::string> files;  // relative paths, sorted + deduped
  for (const std::string& r : roots) {
    fs::path base = fs::path(root) / r;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.insert(fs::relative(base, root, ec).generic_string());
      continue;
    }
    if (!fs::is_directory(base, ec)) {
      if (io_errors != nullptr) {
        io_errors->push_back("no such file or directory: " + r);
      }
      continue;
    }
    std::error_code walk_ec;
    fs::recursive_directory_iterator it(
        base, fs::directory_options::skip_permission_denied, walk_ec);
    if (walk_ec) {
      if (io_errors != nullptr) {
        io_errors->push_back("cannot walk " + r + ": " + walk_ec.message());
      }
      continue;
    }
    while (it != fs::recursive_directory_iterator()) {
      const fs::directory_entry entry = *it;
      if (entry.is_directory(walk_ec) && skip_dir(entry.path())) {
        it.disable_recursion_pending();
      } else if (entry.is_regular_file(walk_ec) && lintable(entry.path())) {
        std::error_code rel_ec;
        files.insert(
            fs::relative(entry.path(), root, rel_ec).generic_string());
      }
      it.increment(walk_ec);
      if (walk_ec) {
        if (io_errors != nullptr) {
          io_errors->push_back("walk error under " + r + ": " +
                               walk_ec.message());
        }
        break;
      }
    }
  }

  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    if (path_in_any(rel, config.exclude)) continue;
    // A directory component may also be excluded mid-path.
    bool skip = false;
    fs::path parts(rel);
    for (const auto& part : parts) {
      if (skip_dir(part)) skip = true;
    }
    if (skip) continue;

    std::ifstream in(fs::path(root) / rel);
    if (!in) {
      if (io_errors != nullptr) io_errors->push_back("cannot read " + rel);
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const SourceFile scanned = scan_source(rel, buf.str());
    std::vector<Finding> file_findings = lint_file(scanned, config);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace ftla::lint
