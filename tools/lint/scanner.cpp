// Source scanning for ftla_lint: a character-level state machine that
// strips comments and string literals so the rule regexes never match
// inside either, plus the suppression-comment lookup.
//
// The scanner produces two parallel views of each line:
//   * `code`      — comments blanked, string/char *contents* blanked
//                   (quotes kept, so "..." still reads as one token);
//   * `nocomment` — comments blanked, string literals intact, for rules
//                   that inspect literal contents (#include targets,
//                   metric names).
// Blanking replaces characters with spaces, never removes them, so
// column positions line up with the raw text.
#include <cctype>
#include <cstddef>

#include "lint/lint.hpp"

namespace ftla::lint {

namespace {

enum class State {
  kCode,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

/// Splits on '\n'; a trailing newline does not add an empty last line.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    std::string line = text.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    start = nl + 1;
  }
  if (lines.empty()) lines.emplace_back();
  return lines;
}

}  // namespace

bool SourceFile::is_header() const {
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".hpp" || ext == ".h" || ext == ".hh";
}

bool SourceFile::suppressed(int line, const std::string& rule) const {
  const std::string needle = "ftla-lint: allow(";
  // The allow comment counts on the flagged line and the line above.
  for (int l = line - 1; l >= line - 2; --l) {
    if (l < 0 || l >= static_cast<int>(raw.size())) continue;
    const std::string& text = raw[static_cast<std::size_t>(l)];
    const auto at = text.find(needle);
    if (at == std::string::npos) continue;
    const auto open = at + needle.size() - 1;
    const auto close = text.find(')', open);
    if (close == std::string::npos) continue;
    // Comma/space-separated rule list inside the parens.
    std::string list = text.substr(open + 1, close - open - 1);
    std::size_t pos = 0;
    while (pos < list.size()) {
      const auto end = list.find_first_of(", \t", pos);
      const std::string name = list.substr(
          pos, end == std::string::npos ? std::string::npos : end - pos);
      if (name == rule || name == "*") return true;
      if (end == std::string::npos) break;
      pos = end + 1;
    }
  }
  return false;
}

SourceFile scan_source(std::string path, const std::string& contents) {
  SourceFile f;
  f.path = std::move(path);
  f.raw = split_lines(contents);
  f.code.reserve(f.raw.size());
  f.nocomment.reserve(f.raw.size());

  State state = State::kCode;
  std::string raw_delim;  // raw-string delimiter, e.g. )foo"

  for (const std::string& line : f.raw) {
    std::string code(line.size(), ' ');
    std::string nocom(line.size(), ' ');
    std::size_t i = 0;
    const std::size_t n = line.size();

    while (i < n) {
      const char c = line[i];
      const char next = i + 1 < n ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = n;  // line comment: rest of line stays blank in both views
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            i += 2;
          } else if (c == '"') {
            // R"delim( ... )delim" — the delimiter may be empty.
            if (i >= 1 && line[i - 1] == 'R' &&
                (i < 2 || (!std::isalnum(static_cast<unsigned char>(
                               line[i - 2])) &&
                           line[i - 2] != '_'))) {
              const auto paren = line.find('(', i + 1);
              if (paren != std::string::npos) {
                raw_delim = ")" + line.substr(i + 1, paren - i - 1) + "\"";
                state = State::kRawString;
                for (std::size_t k = i; k <= paren; ++k) {
                  code[k] = k == i ? '"' : ' ';
                  nocom[k] = line[k];
                }
                i = paren + 1;
                break;
              }
            }
            code[i] = '"';
            nocom[i] = '"';
            state = State::kString;
            ++i;
          } else if (c == '\'') {
            // Skip digit separators (1'000'000) — not a char literal.
            if (i >= 1 && std::isdigit(static_cast<unsigned char>(
                              line[i - 1]))) {
              code[i] = c;
              nocom[i] = c;
              ++i;
            } else {
              code[i] = '\'';
              nocom[i] = '\'';
              state = State::kChar;
              ++i;
            }
          } else {
            code[i] = c;
            nocom[i] = c;
            ++i;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            i += 2;
          } else {
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\' && i + 1 < n) {
            nocom[i] = c;
            nocom[i + 1] = next;
            i += 2;
          } else if (c == '"') {
            code[i] = '"';
            nocom[i] = '"';
            state = State::kCode;
            ++i;
          } else {
            nocom[i] = c;
            ++i;
          }
          break;
        case State::kChar:
          if (c == '\\' && i + 1 < n) {
            nocom[i] = c;
            nocom[i + 1] = next;
            i += 2;
          } else if (c == '\'') {
            code[i] = '\'';
            nocom[i] = '\'';
            state = State::kCode;
            ++i;
          } else {
            nocom[i] = c;
            ++i;
          }
          break;
        case State::kRawString: {
          const auto end = line.find(raw_delim, i);
          if (end == std::string::npos) {
            for (std::size_t k = i; k < n; ++k) nocom[k] = line[k];
            i = n;
          } else {
            for (std::size_t k = i; k < end + raw_delim.size(); ++k) {
              nocom[k] = line[k];
            }
            code[end + raw_delim.size() - 1] = '"';
            i = end + raw_delim.size();
            state = State::kCode;
          }
          break;
        }
      }
    }

    // Unterminated ordinary string/char literals do not span lines
    // (line continuations are rare enough to ignore); resync.
    if (state == State::kString || state == State::kChar) {
      state = State::kCode;
    }
    f.code.push_back(std::move(code));
    f.nocomment.push_back(std::move(nocom));
  }
  return f;
}

}  // namespace ftla::lint
