// ftla_lint — the project-invariant static analyzer.
//
// The Enhanced Online-ABFT correctness argument rests on invariants the
// compiler never sees: all timing flows through the simulator's virtual
// clock, all randomness through seeded ftla::Rng, serialized output is
// deterministically ordered, CLI exit codes follow the shared 0..4
// contract, and metric names follow the dotted convention exporters and
// dashboards parse. ftla_lint enforces those invariants as named,
// suppressible rules over a lightweight token scan (comment/string
// stripping + regex + brace tracking — no libclang), so they are
// machine-checked on every PR instead of enforced by convention.
//
// Rule catalog, suppression syntax and the how-to-add-a-rule guide live
// in docs/static-analysis.md. Configuration comes from .ftla_lint.toml
// (a small TOML subset, see parse_config below).
//
// Suppressing one finding:
//   double t = clock();  // ftla-lint: allow(no-wall-clock) calibration
// or on the line directly above the violating one.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ftla::lint {

// ----- configuration --------------------------------------------------

/// Per-rule switches. `paths`/`exempt` are project-relative path
/// prefixes ('/'-separated); an empty `paths` means "everywhere the
/// tool is pointed at". `extra` is the rule-specific list (banned
/// headers for include-hygiene, sink tokens for
/// deterministic-serialization).
struct RuleConfig {
  bool enabled = true;
  std::vector<std::string> paths;
  std::vector<std::string> exempt;
  std::vector<std::string> extra;

  friend bool operator==(const RuleConfig&, const RuleConfig&) = default;
};

struct Config {
  int version = 1;
  /// Paths skipped entirely (fixture corpora, generated code).
  std::vector<std::string> exclude;
  /// Keyed by rule name; rules absent from the map run with their
  /// built-in defaults.
  std::map<std::string, RuleConfig> rules;

  friend bool operator==(const Config&, const Config&) = default;

  /// Effective config for `rule` (the entry, or the built-in default).
  [[nodiscard]] const RuleConfig& rule(const std::string& name) const;
};

/// Built-in defaults: every rule enabled with the path scopes described
/// in docs/static-analysis.md (mirrored by the checked-in
/// .ftla_lint.toml).
Config default_config();

/// Parses the .ftla_lint.toml subset:
///   version = 1
///   exclude = ["tests/lint_fixtures"]
///   [rule.<name>]
///   enabled = true
///   paths = ["src/sim", "src/fault"]
///   exempt = ["src/sim/generated"]
///   extra = ["iostream"]
/// Comments (#) and blank lines are ignored. Unknown rule names and
/// unknown keys are errors (they are always typos). Round-trips with
/// format_config.
bool parse_config(const std::string& text, Config* out, std::string* error);

/// Serializes a Config in the exact shape parse_config accepts.
std::string format_config(const Config& config);

/// Reads and parses a config file; `error` gets I/O or parse detail.
bool load_config(const std::string& path, Config* out, std::string* error);

// ----- scanning -------------------------------------------------------

/// One source file preprocessed for rule matching. Line vectors are
/// parallel and 0-indexed; findings report 1-based lines.
struct SourceFile {
  std::string path;  ///< project-relative, '/'-separated
  /// Original text, for suppression comments.
  std::vector<std::string> raw;
  /// Comments blanked, string/char literal *contents* blanked (the
  /// quotes remain). Token rules match against this.
  std::vector<std::string> code;
  /// Comments blanked, string literals intact — for rules that read
  /// literal contents (#include targets, metric names).
  std::vector<std::string> nocomment;

  [[nodiscard]] bool is_header() const;

  /// True when the finding at 1-based `line` for `rule` is silenced by
  /// an `// ftla-lint: allow(<rules>)` comment on that line or the one
  /// directly above it.
  [[nodiscard]] bool suppressed(int line, const std::string& rule) const;
};

/// Strips comments/strings and indexes suppression comments.
/// `path` should already be project-relative.
SourceFile scan_source(std::string path, const std::string& contents);

// ----- rules ----------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

/// Every rule the binary knows, in reporting order.
const std::vector<RuleInfo>& rule_catalog();

/// Runs every enabled rule over one scanned file. Suppressed findings
/// are already removed.
std::vector<Finding> lint_file(const SourceFile& file, const Config& config);

// ----- driver ---------------------------------------------------------

/// Walks `roots` (files or directories) under project root `root`,
/// scans every *.hpp/*.h/*.cpp/*.cc not excluded by the config, and
/// lints each. Files are visited in sorted path order so output is
/// deterministic. Unreadable paths are reported through `io_errors`.
std::vector<Finding> lint_paths(const std::vector<std::string>& roots,
                                const std::string& root, const Config& config,
                                std::vector<std::string>* io_errors);

}  // namespace ftla::lint
