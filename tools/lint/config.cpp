// Config parsing/serialization for ftla_lint: a deliberately small TOML
// subset (integer, boolean and string-array values; [rule.<name>]
// sections) so the tool stays dependency-free. format_config and
// parse_config round-trip exactly — a property tests/test_lint.cpp
// holds them to.
#include <fstream>
#include <sstream>

#include "lint/lint.hpp"

namespace ftla::lint {

namespace {

/// Built-in fallback for rules with no config entry.
const RuleConfig& fallback_rule_config(const std::string& name) {
  static const std::map<std::string, RuleConfig>& defaults =
      default_config().rules;
  static const RuleConfig enabled_everywhere;
  const auto it = defaults.find(name);
  return it == defaults.end() ? enabled_everywhere : it->second;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Parses `"a", "b"` (the inside of a string array).
bool parse_string_list(const std::string& body, std::vector<std::string>* out,
                       std::string* error) {
  out->clear();
  std::string rest = trim(body);
  while (!rest.empty()) {
    if (rest.front() != '"') {
      *error = "expected quoted string in list near '" + rest + "'";
      return false;
    }
    const auto close = rest.find('"', 1);
    if (close == std::string::npos) {
      *error = "unterminated string in list";
      return false;
    }
    out->push_back(rest.substr(1, close - 1));
    rest = trim(rest.substr(close + 1));
    if (rest.empty()) break;
    if (rest.front() != ',') {
      *error = "expected ',' between list entries near '" + rest + "'";
      return false;
    }
    rest = trim(rest.substr(1));
  }
  return true;
}

// Always written, even when empty: a parsed section starts from the
// rule's built-in default, so an explicit `paths = []` is how "scope to
// everything" round-trips without being re-defaulted.
void write_string_list(std::ostringstream& os, const char* key,
                       const std::vector<std::string>& values) {
  os << key << " = [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << values[i] << '"';
  }
  os << "]\n";
}

bool known_rule(const std::string& name) {
  for (const RuleInfo& r : rule_catalog()) {
    if (name == r.name) return true;
  }
  return false;
}

}  // namespace

const RuleConfig& Config::rule(const std::string& name) const {
  const auto it = rules.find(name);
  return it == rules.end() ? fallback_rule_config(name) : it->second;
}

bool parse_config(const std::string& text, Config* out, std::string* error) {
  Config cfg;
  cfg.exclude.clear();
  RuleConfig* section = nullptr;  // null = top level
  std::string section_name;

  std::istringstream lines(text);
  std::string raw_line;
  int lineno = 0;
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineno) + ": " + msg;
    }
    return false;
  };

  while (std::getline(lines, raw_line)) {
    ++lineno;
    std::string line = raw_line;
    // Strip comments; the value grammar has no '#' inside strings.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') return fail("unterminated section header");
      const std::string name = trim(line.substr(1, line.size() - 2));
      constexpr const char* kPrefix = "rule.";
      if (name.rfind(kPrefix, 0) != 0) {
        return fail("unknown section '" + name +
                    "' (only [rule.<name>] sections exist)");
      }
      section_name = name.substr(5);
      if (!known_rule(section_name)) {
        return fail("unknown rule '" + section_name + "'");
      }
      // Start from the rule's built-in default so a section that only
      // says `enabled = false` keeps its default scoping.
      cfg.rules[section_name] = fallback_rule_config(section_name);
      section = &cfg.rules[section_name];
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    std::string list_error;

    if (section == nullptr) {
      if (key == "version") {
        cfg.version = std::atoi(value.c_str());
        if (cfg.version != 1) return fail("unsupported version " + value);
      } else if (key == "exclude") {
        if (value.size() < 2 || value.front() != '[' || value.back() != ']') {
          return fail("exclude must be a [\"...\"] list");
        }
        if (!parse_string_list(value.substr(1, value.size() - 2),
                               &cfg.exclude, &list_error)) {
          return fail(list_error);
        }
      } else {
        return fail("unknown top-level key '" + key + "'");
      }
      continue;
    }

    if (key == "enabled") {
      if (value != "true" && value != "false") {
        return fail("enabled must be true or false");
      }
      section->enabled = value == "true";
    } else if (key == "paths" || key == "exempt" || key == "extra") {
      if (value.size() < 2 || value.front() != '[' || value.back() != ']') {
        return fail(key + " must be a [\"...\"] list");
      }
      std::vector<std::string>* dst = key == "paths"    ? &section->paths
                                      : key == "exempt" ? &section->exempt
                                                        : &section->extra;
      if (!parse_string_list(value.substr(1, value.size() - 2), dst,
                             &list_error)) {
        return fail(list_error);
      }
    } else {
      return fail("unknown rule key '" + key + "' in [rule." + section_name +
                  "]");
    }
  }

  *out = cfg;
  return true;
}

std::string format_config(const Config& config) {
  std::ostringstream os;
  os << "# ftla_lint configuration — rule catalog and suppression syntax\n"
        "# in docs/static-analysis.md.\n";
  os << "version = " << config.version << "\n";
  write_string_list(os, "exclude", config.exclude);
  for (const auto& [name, rule] : config.rules) {
    os << "\n[rule." << name << "]\n";
    os << "enabled = " << (rule.enabled ? "true" : "false") << "\n";
    write_string_list(os, "paths", rule.paths);
    write_string_list(os, "exempt", rule.exempt);
    write_string_list(os, "extra", rule.extra);
  }
  return os.str();
}

bool load_config(const std::string& path, Config* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open config file '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parse_config(buf.str(), out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

}  // namespace ftla::lint
