// ftla_lint — command-line driver for the project-invariant linter.
//
// Usage:
//   ftla_lint [--config FILE] [--root DIR] [--quiet] PATH...
//   ftla_lint --list-rules
//
// Paths are files or directories, resolved relative to --root (default:
// the current directory). Exit codes follow the shared contract:
// kExitSuccess when the tree is clean, kExitFailStop when findings were
// reported, kExitUsage for bad flags, kExitIoError when inputs could
// not be read.
#include <cstdio>
#include <string>
#include <vector>

#include "common/exit_codes.hpp"
#include "lint/lint.hpp"

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: ftla_lint [--config FILE] [--root DIR] [--quiet] PATH...\n"
      "       ftla_lint --list-rules\n"
      "       ftla_lint --dump-config\n"
      "\n"
      "Lints C++ sources under each PATH against the project's domain\n"
      "invariants (see docs/static-analysis.md). Exits %d when clean,\n"
      "%d when findings were reported.\n",
      ftla::common::kExitSuccess, ftla::common::kExitFailStop);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftla;

  std::string config_path;
  std::string root = ".";
  bool quiet = false;
  bool list_rules = false;
  bool dump_config = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return common::kExitSuccess;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--dump-config") {
      dump_config = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--config") {
      if (++i >= argc) {
        std::fprintf(stderr, "ftla_lint: --config needs a file argument\n");
        return common::kExitUsage;
      }
      config_path = argv[i];
    } else if (arg == "--root") {
      if (++i >= argc) {
        std::fprintf(stderr, "ftla_lint: --root needs a directory argument\n");
        return common::kExitUsage;
      }
      root = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ftla_lint: unknown flag '%s'\n", arg.c_str());
      print_usage(stderr);
      return common::kExitUsage;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const lint::RuleInfo& r : lint::rule_catalog()) {
      std::printf("%-28s %s\n", r.name, r.summary);
    }
    return common::kExitSuccess;
  }

  lint::Config config = lint::default_config();
  if (!config_path.empty()) {
    std::string error;
    if (!lint::load_config(config_path, &config, &error)) {
      std::fprintf(stderr, "ftla_lint: %s\n", error.c_str());
      return common::kExitIoError;
    }
  }

  if (dump_config) {
    std::fputs(lint::format_config(config).c_str(), stdout);
    return common::kExitSuccess;
  }

  if (paths.empty()) {
    std::fprintf(stderr, "ftla_lint: no paths given\n");
    print_usage(stderr);
    return common::kExitUsage;
  }

  std::vector<std::string> io_errors;
  const std::vector<lint::Finding> findings =
      lint::lint_paths(paths, root, config, &io_errors);

  for (const std::string& err : io_errors) {
    std::fprintf(stderr, "ftla_lint: %s\n", err.c_str());
  }
  if (!quiet) {
    for (const lint::Finding& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  if (!findings.empty() && !quiet) {
    std::printf("ftla_lint: %zu finding%s\n", findings.size(),
                findings.size() == 1 ? "" : "s");
  }

  if (!io_errors.empty()) return common::kExitIoError;
  return findings.empty() ? common::kExitSuccess : common::kExitFailStop;
}
