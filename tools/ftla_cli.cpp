// ftla_cli — run one fault-tolerant factorization from the command line.
//
//   ftla_cli [options]
//     --machine tardis|bulldozer64|test   simulated node (default tardis)
//     --n N                               matrix size (default 2048)
//     --block B                           block size (default: MAGMA's)
//     --algo cholesky|lu|qr               factorization (default cholesky)
//     --variant enhanced|online|offline|noft|cula|dmr|tmr
//     --k K                               Opt-3 verification interval
//     --recovery rerun|checkpoint         recovery strategy
//     --ckpt-interval N                   iterations between snapshots
//     --placement auto|cpu|gpu|blocking   Opt-2 placement
//     --no-opt1                           serialize checksum recalcs
//     --mode numeric|timing               execution mode
//     --threads N                         host BLAS worker threads
//                                         (0 = all cores; default 1)
//     --faults N                          random faults to inject (numeric)
//     --fault-seed S                      fault plan seed
//     --seed S                            matrix seed
//     --trace-out FILE.json               write a fault-annotated Chrome
//                                         trace (--trace is an alias)
//     --metrics-out FILE.json             write the metrics report
//                                         (schema docs/observability.md)
//     --profile-out FILE.json             write the simulated-time profile
//                                         (phase decomposition + critical
//                                         path; ftla_profile_cli reads it)
//     --timeseries-out FILE.json          write windowed time-series rollups
//                                         (resource occupancy + verification
//                                         progress over virtual time)
//     --timeseries-window W               rollup window in virtual seconds
//                                         (default: makespan / 20)
//     --postmortem-out FILE.json          write the flight-recorder bundle
//                                         at exit (any exit code)
//     --summary                           print per-lane trace summary
//
// With FTLA_POSTMORTEM=FILE.json in the environment, the flight-recorder
// bundle is dumped to FILE on any nonzero exit (the shared exit-code
// contract; see docs/observability.md, "Analytics & postmortems").
//
// Examples:
//   ftla_cli --machine bulldozer64 --n 30720 --mode timing --variant enhanced --k 5
//   ftla_cli --n 1024 --faults 3 --variant online --trace-out run.json
//   ftla_cli --n 1024 --faults 2 --trace-out run.json --metrics-out m.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "abft/cholesky.hpp"
#include "abft/lu.hpp"
#include "abft/qr.hpp"
#include "abft/cula_like.hpp"
#include "abft/modular_redundancy.hpp"
#include "blas/lapack.hpp"
#include "fault/campaign.hpp"
#include "blas/qr.hpp"
#include "common/spd.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "obs/event_sink.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profile_report.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "sim/profile.hpp"
#include "sim/profiler.hpp"
#include "sim/trace_export.hpp"

namespace {

using namespace ftla;

// Flight recorder shared with usage(): whatever was attached by the
// time the tool exits is what the postmortem bundle shows.
obs::FlightRecorder g_recorder;
std::string g_postmortem_path;

/// The single exit gate: dumps the flight-recorder bundle to
/// --postmortem-out (always) or $FTLA_POSTMORTEM (nonzero exits only),
/// then hands the code back. Best-effort — a failed dump never changes
/// the exit code.
int finish(int code, const std::string& reason) {
  if (!g_postmortem_path.empty()) {
    g_recorder.dump_file(g_postmortem_path, code, reason);
  } else if (const char* env = std::getenv("FTLA_POSTMORTEM");
             env != nullptr && code != fault::kExitSuccess) {
    g_recorder.dump_file(env, code, reason);
  }
  return code;
}

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: ftla_cli [--machine tardis|bulldozer64|test] [--n N]\n"
               "  [--block B] [--variant enhanced|online|offline|noft|cula|"
               "dmr|tmr]\n"
               "  [--k K] [--placement auto|cpu|gpu|blocking] [--no-opt1]\n"
               "  [--runtime bulk|dag]\n"
               "  [--mode numeric|timing] [--threads N] [--faults N]\n"
               "  [--fault-seed S]\n"
               "  [--seed S] [--trace-out FILE.json] [--metrics-out "
               "FILE.json]\n"
               "  [--profile-out FILE.json] [--timeseries-out FILE.json]\n"
               "  [--timeseries-window W] [--postmortem-out FILE.json]\n"
               "  [--summary]\n"
               "\n"
               "  --runtime bulk|dag  execution structure: bulk-synchronous\n"
               "                      phases (the conformance oracle) or the\n"
               "                      dependency-driven task graph\n"
               "                      (docs/runtime.md)\n"
               "  --trace-out FILE    Chrome trace with fault annotations\n"
               "                      (instant events + injection->detection\n"
               "                      flow arrows); --trace is an alias\n"
               "  --metrics-out FILE  metrics report JSON (counters, gauges,\n"
               "                      detection-latency histogram); schema in\n"
               "                      docs/observability.md\n"
               "  --profile-out FILE  simulated-time profile JSON (per-phase\n"
               "                      overhead decomposition, critical path,\n"
               "                      resource utilization); inspect or gate\n"
               "                      with ftla_profile_cli\n"
               "  --timeseries-out FILE  windowed time-series rollups JSON\n"
               "                      (resource occupancy + verification\n"
               "                      progress over virtual time)\n"
               "  --postmortem-out FILE  flight-recorder bundle at exit;\n"
               "                      FTLA_POSTMORTEM=FILE in the environment\n"
               "                      dumps on any nonzero exit instead\n"
               "\n"
               "exit codes:\n"
               "  0  success (clean result)\n"
               "  1  I/O error (could not write trace/metrics file)\n"
               "  2  usage error\n"
               "  3  fail-stop (run gave up; the honest failure mode)\n"
               "  4  silent data corruption (claimed success, residual "
               "corrupt)\n");
  std::exit(finish(ftla::fault::kExitUsage,
                   msg != nullptr ? std::string("usage error: ") + msg
                                  : std::string("usage error")));
}

struct Args {
  std::string machine = "tardis";
  std::string algo = "cholesky";
  std::string recovery = "rerun";
  int ckpt_interval = 8;
  int n = 2048;
  int block = 0;
  std::string variant = "enhanced";
  int k = 1;
  std::string placement = "auto";
  std::string runtime = "bulk";
  bool opt1 = true;
  std::string mode = "numeric";
  int threads = 1;
  int faults = 0;
  std::uint64_t fault_seed = 1;
  std::uint64_t seed = 42;
  std::string trace_path;
  std::string metrics_path;
  std::string profile_path;
  std::string timeseries_path;
  double timeseries_window = 0.0;  ///< <= 0: makespan / 20
  bool summary = false;
};

Args parse(int argc, char** argv) {
  Args a;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    if (opt == "--machine") a.machine = need(i);
    else if (opt == "--algo") a.algo = need(i);
    else if (opt == "--recovery") a.recovery = need(i);
    else if (opt == "--ckpt-interval") a.ckpt_interval = std::atoi(need(i));
    else if (opt == "--n") a.n = std::atoi(need(i));
    else if (opt == "--block") a.block = std::atoi(need(i));
    else if (opt == "--variant") a.variant = need(i);
    else if (opt == "--k") a.k = std::atoi(need(i));
    else if (opt == "--placement") a.placement = need(i);
    else if (opt == "--runtime") a.runtime = need(i);
    else if (opt == "--no-opt1") a.opt1 = false;
    else if (opt == "--mode") a.mode = need(i);
    else if (opt == "--threads") a.threads = std::atoi(need(i));
    else if (opt == "--faults") a.faults = std::atoi(need(i));
    else if (opt == "--fault-seed") a.fault_seed = std::strtoull(need(i), nullptr, 10);
    else if (opt == "--seed") a.seed = std::strtoull(need(i), nullptr, 10);
    else if (opt == "--trace" || opt == "--trace-out") a.trace_path = need(i);
    else if (opt == "--metrics-out") a.metrics_path = need(i);
    else if (opt == "--profile-out") a.profile_path = need(i);
    else if (opt == "--timeseries-out") a.timeseries_path = need(i);
    else if (opt == "--timeseries-window")
      a.timeseries_window = std::atof(need(i));
    else if (opt == "--postmortem-out") g_postmortem_path = need(i);
    else if (opt == "--summary") a.summary = true;
    else if (opt == "--help" || opt == "-h") usage();
    else usage(("unknown option " + opt).c_str());
  }
  if (a.n <= 0) usage("--n must be positive");
  if (a.threads < 0) usage("--threads must be >= 0");
  if (a.k <= 0) usage("--k must be positive");
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  common::set_global_threads(args.threads);

  // Postmortem capture is active when explicitly requested or armed via
  // the environment; it implies event + metrics recording so a failing
  // run always has a tail to dump.
  const bool want_postmortem = !g_postmortem_path.empty() ||
                               std::getenv("FTLA_POSTMORTEM") != nullptr;
  g_recorder.set_meta("tool", "ftla_cli");
  g_recorder.set_meta("machine", args.machine);
  g_recorder.set_meta("algo", args.algo);
  g_recorder.set_meta("variant", args.variant);
  g_recorder.set_meta("mode", args.mode);
  g_recorder.set_meta("runtime", args.runtime);
  g_recorder.set_meta("n", std::to_string(args.n));
  g_recorder.set_meta("faults", std::to_string(args.faults));
  g_recorder.note("args parsed");

  sim::MachineProfile profile;
  if (args.machine == "tardis") profile = sim::tardis();
  else if (args.machine == "bulldozer64") profile = sim::bulldozer64();
  else if (args.machine == "test") profile = sim::test_rig();
  else usage("unknown --machine");

  const bool numeric = args.mode == "numeric";
  if (!numeric && args.mode != "timing") usage("unknown --mode");
  if (!numeric && args.faults > 0) usage("--faults requires --mode numeric");

  sim::Machine machine(profile, numeric ? sim::ExecutionMode::Numeric
                                        : sim::ExecutionMode::TimingOnly);
  const bool want_timeseries = !args.timeseries_path.empty();
  const bool want_trace =
      !args.trace_path.empty() || args.summary || want_timeseries;
  machine.set_trace_enabled(want_trace);

  // Telemetry capture: one event sink + metrics registry shared by the
  // simulator, the fault injector and the ABFT driver.
  const bool want_obs = !args.trace_path.empty() ||
                        !args.metrics_path.empty() || want_postmortem;
  obs::RingBufferSink sink;
  obs::MetricsRegistry metrics;
  if (want_obs) machine.set_event_sink(&sink);
  if (want_postmortem) {
    g_recorder.attach_events(&sink);
    g_recorder.attach_metrics(&metrics);
  }

  // Profiler capture: the span store collects every simulated activity
  // from the machine while the driver tags ABFT phases and iterations
  // on the same store (the wiring convention of docs/observability.md).
  const bool want_profile = !args.profile_path.empty();
  obs::SpanStore spans;
  if (want_profile) {
    machine.set_span_store(&spans);
    g_recorder.attach_spans(&spans);
  }

  // Time-series capture: verification progress from the telemetry layer
  // lands here during the run; resource occupancy is derived from the
  // trace afterwards.
  obs::TimeSeriesStore timeseries;

  Matrix<double> a;
  Matrix<double> a0;
  if (numeric) {
    a = Matrix<double>(args.n, args.n);
    make_spd_diag_dominant(a, args.seed);
    a0 = a;
  }
  Matrix<double>* ap = numeric ? &a : nullptr;

  abft::CholeskyOptions opt;
  opt.block_size = args.block;
  opt.verify_interval = args.k;
  opt.concurrent_recalc = args.opt1;
  opt.checkpoint_interval = args.ckpt_interval;
  if (args.recovery == "rerun") opt.recovery = abft::Recovery::Rerun;
  else if (args.recovery == "checkpoint")
    opt.recovery = abft::Recovery::Checkpoint;
  else usage("unknown --recovery");
  if (args.placement == "auto") opt.placement = abft::UpdatePlacement::Auto;
  else if (args.placement == "cpu") opt.placement = abft::UpdatePlacement::Cpu;
  else if (args.placement == "gpu") opt.placement = abft::UpdatePlacement::Gpu;
  else if (args.placement == "blocking")
    opt.placement = abft::UpdatePlacement::Blocking;
  else usage("unknown --placement");
  abft::RuntimeMode runtime_mode;
  if (args.runtime == "bulk") runtime_mode = abft::RuntimeMode::Bulk;
  else if (args.runtime == "dag") runtime_mode = abft::RuntimeMode::Dag;
  else usage("unknown --runtime");
  opt.runtime = runtime_mode;
  if (want_obs) {
    opt.event_sink = &sink;
    opt.metrics = &metrics;
  }
  if (want_profile) opt.profile = &spans;
  if (want_timeseries) opt.timeseries = &timeseries;

  const int block = abft::resolve_block_size(profile, opt);
  const int nb = (args.n + block - 1) / block;
  std::vector<fault::FaultSpec> plan =
      args.faults > 0 ? fault::random_plan(args.faults, nb, args.fault_seed)
                      : std::vector<fault::FaultSpec>{};
  if (args.algo == "lu" || args.algo == "qr") {
    // Retarget the Cholesky-phrased plan to LU/QR program points.
    for (auto& spec : plan) {
      if (spec.op == fault::Op::Syrk) spec.op = fault::Op::Gemm;
      spec.block_row = -1;
      spec.block_col = -1;
    }
  }
  fault::Injector injector(std::move(plan));
  fault::Injector* inj = args.faults > 0 ? &injector : nullptr;

  abft::CholeskyResult res;
  std::vector<double> tau;
  if (args.algo == "qr") {
    if (args.variant != "enhanced" && args.variant != "noft") {
      usage("--algo qr supports --variant enhanced|noft");
    }
    abft::QrOptions qopt;
    qopt.variant = args.variant == "enhanced" ? abft::Variant::EnhancedOnline
                                              : abft::Variant::NoFt;
    qopt.block_size = args.block;
    qopt.verify_interval = args.k;
    qopt.concurrent_recalc = args.opt1;
    qopt.runtime = runtime_mode;
    if (want_obs) {
      qopt.event_sink = &sink;
      qopt.metrics = &metrics;
    }
    if (want_profile) qopt.profile = &spans;
    if (want_timeseries) qopt.timeseries = &timeseries;
    res = abft::qr(machine, ap, numeric ? &tau : nullptr, args.n, qopt, inj);
  } else if (args.algo == "lu") {
    if (args.variant != "enhanced" && args.variant != "noft") {
      usage("--algo lu supports --variant enhanced|noft");
    }
    abft::LuOptions lopt;
    lopt.variant = args.variant == "enhanced" ? abft::Variant::EnhancedOnline
                                              : abft::Variant::NoFt;
    lopt.block_size = args.block;
    lopt.verify_interval = args.k;
    lopt.concurrent_recalc = args.opt1;
    lopt.runtime = runtime_mode;
    if (want_obs) {
      lopt.event_sink = &sink;
      lopt.metrics = &metrics;
    }
    if (want_profile) lopt.profile = &spans;
    if (want_timeseries) lopt.timeseries = &timeseries;
    res = abft::lu(machine, ap, args.n, lopt, inj);
  } else if (args.algo != "cholesky") {
    usage("unknown --algo");
  } else if (args.variant == "enhanced") {
    opt.variant = abft::Variant::EnhancedOnline;
    res = abft::cholesky(machine, ap, args.n, opt, inj);
  } else if (args.variant == "online") {
    opt.variant = abft::Variant::Online;
    res = abft::cholesky(machine, ap, args.n, opt, inj);
  } else if (args.variant == "offline") {
    opt.variant = abft::Variant::Offline;
    res = abft::cholesky(machine, ap, args.n, opt, inj);
  } else if (args.variant == "noft") {
    opt.variant = abft::Variant::NoFt;
    res = abft::cholesky(machine, ap, args.n, opt, inj);
  } else if (args.variant == "cula") {
    res = abft::cula_like_cholesky(machine, ap, args.n, args.block);
  } else if (args.variant == "dmr") {
    abft::RedundancyOptions ropt;
    ropt.block_size = args.block;
    res = abft::dmr_cholesky(machine, ap, args.n, ropt, inj);
  } else if (args.variant == "tmr") {
    abft::RedundancyOptions ropt;
    ropt.block_size = args.block;
    res = abft::tmr_cholesky(machine, ap, args.n, ropt, inj);
  } else {
    usage("unknown --variant");
  }
  g_recorder.note("factorization returned");

  std::printf("machine           : %s (%s mode)\n", profile.name.c_str(),
              numeric ? "numeric" : "timing-only");
  std::printf("problem           : n = %d, block = %d, variant = %s, K = %d, "
              "runtime = %s\n",
              args.n, block, args.variant.c_str(), args.k,
              args.runtime.c_str());
  std::printf("success           : %s%s%s\n", res.success ? "yes" : "no",
              res.note.empty() ? "" : " — ", res.note.c_str());
  std::printf("virtual time      : %.6f s (%.2f GFLOP/s)\n", res.seconds,
              res.gflops);
  std::printf("detected/corrected: %d / %d (checksum repairs %d, reruns %d)\n",
              res.errors_detected, res.errors_corrected,
              res.checksum_repairs, res.reruns);
  if (inj != nullptr) {
    std::printf("faults fired      : %d (ECC absorbed %d, pending %d)\n",
                injector.fired_count(), injector.ecc_absorbed_count(),
                injector.pending_count());
  }
  if (res.verified.total() > 0) {
    std::printf("verified blocks   : potf2 %lld, trsm %lld, syrk %lld, "
                "gemm %lld\n",
                res.verified.potf2_blocks, res.verified.trsm_blocks,
                res.verified.syrk_blocks, res.verified.gemm_blocks);
  }
  // Exit-code contract (see --help): distinguish the honest failure
  // mode (fail-stop, 3) from the dangerous one (SDC, 4) so scripts and
  // CI can tell them apart.
  int exit_code = res.success ? fault::kExitSuccess : fault::kExitFailStop;
  if (numeric && res.success) {
    double resid;
    if (args.algo == "lu") {
      resid = blas::lu_residual(a0.view(), a.view());
    } else if (args.algo == "qr") {
      resid = blas::qr_residual(a0.view(), a.view(), tau.data());
    } else {
      resid = blas::cholesky_residual(a0.view(), a.view());
    }
    std::printf("residual          : %.3e %s\n", resid,
                resid < 1e-8 ? "(clean)" : "(CORRUPTED)");
    // NaN-safe: a NaN residual must classify as corrupt.
    if (!(resid < 1e-6)) exit_code = fault::kExitSdc;
  }
  if (args.summary) sim::print_trace_summary(machine, std::cout);
  if (!args.trace_path.empty()) {
    if (sim::write_chrome_trace_file(machine, sink.events(),
                                     args.trace_path)) {
      std::printf("chrome trace      : %s (open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  args.trace_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", args.trace_path.c_str());
      return finish(fault::kExitIoError, "failed to write trace");
    }
  }
  if (want_timeseries) {
    sim::append_machine_timeseries(machine, &timeseries);
    const double window = args.timeseries_window > 0.0
                              ? args.timeseries_window
                              : machine.makespan() / 20.0;
    obs::TimeSeriesReport ts = obs::build_timeseries_report(timeseries, window);
    ts.meta["machine"] = profile.name;
    ts.meta["mode"] = numeric ? "numeric" : "timing";
    ts.meta["algo"] = args.algo;
    ts.meta["variant"] = args.variant;
    ts.meta["n"] = std::to_string(args.n);
    ts.meta["block"] = std::to_string(block);
    ts.meta["k"] = std::to_string(args.k);
    if (obs::write_timeseries_json_file(ts, args.timeseries_path)) {
      std::printf("timeseries report : %s (render with ftla_report_cli)\n",
                  args.timeseries_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n",
                   args.timeseries_path.c_str());
      return finish(fault::kExitIoError, "failed to write timeseries");
    }
  }
  obs::ProfileReport prof;
  if (want_profile) {
    prof = sim::build_profile(machine, spans);
    prof.meta["machine"] = profile.name;
    prof.meta["mode"] = numeric ? "numeric" : "timing";
    prof.meta["algo"] = args.algo;
    prof.meta["variant"] = args.variant;
    prof.meta["n"] = std::to_string(args.n);
    prof.meta["block"] = std::to_string(block);
    prof.meta["k"] = std::to_string(args.k);
    if (obs::write_profile_json_file(prof, args.profile_path)) {
      std::printf("profile report    : %s (inspect with ftla_profile_cli)\n",
                  args.profile_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", args.profile_path.c_str());
      return finish(fault::kExitIoError, "failed to write profile");
    }
  }
  if (want_obs) {
    // Run-level result counters and gauges alongside the driver's
    // telemetry so one file answers "what happened". Folded into the
    // live registry (not a report-local copy) so the flight recorder's
    // postmortem snapshot reconciles exactly with the metrics report.
    auto& m = metrics;
    m.set_gauge("run.seconds", res.seconds);
    m.set_gauge("run.gflops", res.gflops);
    m.counter("run.errors_detected") = res.errors_detected;
    m.counter("run.errors_corrected") = res.errors_corrected;
    m.counter("run.checksum_repairs") = res.checksum_repairs;
    m.counter("run.reruns") = res.reruns;
    m.counter("run.rollbacks") = res.rollbacks;
    m.counter("run.verified.potf2_blocks") = res.verified.potf2_blocks;
    m.counter("run.verified.trsm_blocks") = res.verified.trsm_blocks;
    m.counter("run.verified.syrk_blocks") = res.verified.syrk_blocks;
    m.counter("run.verified.gemm_blocks") = res.verified.gemm_blocks;
    if (inj != nullptr) {
      m.counter("faults.fired") = injector.fired_count();
      m.counter("faults.detected") = injector.detected_count();
      m.counter("faults.ecc_absorbed") = injector.ecc_absorbed_count();
      m.counter("faults.pending") = injector.pending_count();
    }
    m.set_gauge("sim.makespan_s", machine.makespan());
    m.counter("sim.trace_records") =
        static_cast<long long>(machine.trace().size());
    m.counter("sim.trace_dropped") =
        static_cast<long long>(machine.trace_dropped());
    m.counter("obs.events_posted") = sink.posted();
    m.counter("obs.events_dropped") = static_cast<long long>(sink.dropped());
    if (want_profile) {
      // The profiler's headline numbers, so the metrics trajectory can
      // chart overhead without parsing the profile document.
      m.set_gauge("profile.critical_path_s", prof.critical_path_seconds);
      m.set_gauge("profile.abft_critical_s", prof.abft_critical_seconds);
      m.set_gauge("profile.idle_critical_s", prof.idle_critical_seconds);
      m.set_gauge("profile.projected_no_abft_s",
                  prof.projected_no_abft_seconds);
      m.counter("profile.spans_recorded") = prof.span_count;
      m.counter("profile.spans_dropped") = prof.spans_dropped;
    }
  }
  if (!args.metrics_path.empty()) {
    obs::MetricsReport report;
    report.add_meta("machine", profile.name);
    report.add_meta("mode", numeric ? "numeric" : "timing");
    report.add_meta("algo", args.algo);
    report.add_meta("variant", args.variant);
    report.add_meta("n", std::to_string(args.n));
    report.add_meta("block", std::to_string(block));
    report.add_meta("k", std::to_string(args.k));
    report.add_meta("placement", to_string(res.chosen_placement));
    report.metrics = metrics;
    if (obs::write_metrics_json_file(report, args.metrics_path)) {
      std::printf("metrics report    : %s\n", args.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", args.metrics_path.c_str());
      return finish(fault::kExitIoError, "failed to write metrics");
    }
  }
  return finish(exit_code, exit_code == fault::kExitSuccess ? "success"
                           : exit_code == fault::kExitSdc
                               ? "silent data corruption"
                               : "fail-stop");
}
