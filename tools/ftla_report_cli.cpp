// ftla_report_cli — fuse observability exports into one self-contained
// HTML dashboard.
//
// Inputs (each flag repeatable; sections render in the order given):
//   --profile FILE.json      profile_version-1 document (ftla_cli
//                            --profile-out, ftla_profile_cli --json-out,
//                            BENCH_*_profile.json)
//   --analytics FILE.json    campaign analytics (fault_campaign_cli
//                            --analytics-out)
//   --timeseries FILE.json   time-series rollups (ftla_cli
//                            --timeseries-out)
//   --metrics FILE.json      schema_version-1 metrics documents
//                            (ftla_cli --metrics-out, fault_campaign_cli
//                            --report, BENCH_*.json)
//   --trace FILE.json        causal-trace files (ftla_fleet_cli
//                            --trace-out)
//
// Optional input kinds that were not provided are listed in a visible
// banner at the top of the page, so a thin report is never mistaken
// for a complete one.
//
// Output:
//   --out FILE.html          the dashboard (default: stdout)
//   --title STR              page title
//
// The output is byte-stable: same inputs, identical file — CI renders it
// twice and diffs. No external assets, no timestamps; charts are inline
// SVG (docs/observability.md, "Analytics & postmortems").
//
// exit codes: 0 success, 1 I/O error (unreadable input or unwritable
// output), 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/exit_codes.hpp"
#include "fault/analytics.hpp"
#include "obs/profile_report.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "report/html_report.hpp"

namespace {

using namespace ftla;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: ftla_report_cli [--title STR] [--out FILE.html]\n"
      "  [--profile FILE.json]... [--analytics FILE.json]...\n"
      "  [--timeseries FILE.json]... [--metrics FILE.json]...\n"
      "  [--trace FILE.json]...\n"
      "\n"
      "Fuses profile, campaign-analytics, time-series, metrics and\n"
      "causal-trace JSON exports into one dependency-free, byte-stable\n"
      "HTML dashboard (inline SVG, no external assets). At least one\n"
      "input required; skipped input kinds are listed in a banner.\n"
      "\n"
      "exit codes:\n"
      "  0  success\n"
      "  1  I/O error (unreadable input or unwritable output)\n"
      "  2  usage error\n");
  std::exit(common::kExitUsage);
}

/// Section label for an input path: the basename, extension stripped.
std::string label_for(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<char, std::string>> inputs;  // (kind, path)
  std::string out_path;
  std::string title = "FTLA run report";

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    if (opt == "--profile") inputs.emplace_back('p', need(i));
    else if (opt == "--analytics") inputs.emplace_back('a', need(i));
    else if (opt == "--timeseries") inputs.emplace_back('t', need(i));
    else if (opt == "--metrics") inputs.emplace_back('m', need(i));
    else if (opt == "--trace") inputs.emplace_back('r', need(i));
    else if (opt == "--out") out_path = need(i);
    else if (opt == "--title") title = need(i);
    else if (opt == "--help" || opt == "-h") usage();
    else usage(("unknown option " + opt).c_str());
  }
  if (inputs.empty()) usage("at least one input document required");

  report::ReportInputs report;
  report.title = title;
  for (const auto& [kind, path] : inputs) {
    const std::string label = label_for(path);
    bool ok = false;
    switch (kind) {
      case 'p': {
        obs::ProfileReport p;
        ok = obs::read_profile_json_file(path, &p);
        if (ok) report.profiles.emplace_back(label, std::move(p));
        break;
      }
      case 'a': {
        fault::CampaignAnalytics a;
        ok = fault::read_analytics_json_file(path, &a);
        if (ok) report.analytics.emplace_back(label, std::move(a));
        break;
      }
      case 't': {
        obs::TimeSeriesReport ts;
        ok = obs::read_timeseries_json_file(path, &ts);
        if (ok) report.timeseries.emplace_back(label, std::move(ts));
        break;
      }
      case 'm': {
        obs::MetricsDoc doc;
        ok = obs::read_metrics_json_file(path, &doc);
        if (ok) report.metrics.emplace_back(label, std::move(doc));
        break;
      }
      case 'r': {
        obs::TraceReport tr;
        ok = obs::TraceReport::read_file(path, &tr);
        if (ok) report.traces.emplace_back(label, std::move(tr));
        break;
      }
      default: break;
    }
    if (!ok) {
      std::fprintf(stderr, "error: cannot read or parse %s\n",
                   path.c_str());
      return common::kExitIoError;
    }
  }

  if (report.profiles.empty()) report.missing_inputs.push_back("profile");
  if (report.analytics.empty()) report.missing_inputs.push_back("analytics");
  if (report.timeseries.empty()) {
    report.missing_inputs.push_back("timeseries");
  }
  if (report.metrics.empty()) report.missing_inputs.push_back("metrics");
  if (report.traces.empty()) report.missing_inputs.push_back("trace");

  if (out_path.empty()) {
    report::write_html_report(report, std::cout);
  } else if (!report::write_html_report_file(report, out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return common::kExitIoError;
  }
  return common::kExitSuccess;
}
