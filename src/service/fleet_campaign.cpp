#include "service/fleet_campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "obs/slo.hpp"
#include "sim/fleet.hpp"
#include "sim/profile.hpp"

namespace ftla::service {
namespace {

FleetVerdict classify(const JobResult& r) {
  // The oracle outranks the service's own claim: a wrong result sold as
  // success is sdc no matter how cleanly the job appeared to finish.
  if (r.sdc) return FleetVerdict::Sdc;
  switch (r.outcome) {
    case JobOutcome::Completed: return FleetVerdict::Completed;
    case JobOutcome::Migrated: return FleetVerdict::Migrated;
    case JobOutcome::Degraded: return FleetVerdict::Degraded;
    case JobOutcome::ExhaustedRetries: return FleetVerdict::ExhaustedRetries;
    case JobOutcome::FailStop: return FleetVerdict::FailStop;
  }
  return FleetVerdict::FailStop;
}

/// Derives the scenario's job list from its master seed. Shared by the
/// dry (TimingOnly) horizon run and the faulted numeric run so both see
/// the identical workload.
std::vector<JobSpec> draw_jobs(const FleetScenario& sc) {
  Rng rng(sc.seed != 0 ? sc.seed : 1);
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(sc.jobs));
  for (int j = 0; j < sc.jobs; ++j) {
    JobSpec spec;
    spec.id = j;
    spec.block = sc.block;
    spec.n = sc.block * rng.uniform_int(sc.min_blocks, sc.max_blocks);
    spec.matrix_seed = rng.next_u64() | 1ULL;
    spec.fault_seed = rng.next_u64() | 1ULL;
    // Accounting principal derived from an already-drawn seed: no extra
    // RNG draw, so traces and tenancy leave every prior replay intact.
    static const char* const kTenants[3] = {"alpha", "beta", "gamma"};
    spec.tenant = kTenants[spec.matrix_seed % 3];
    // The guarded variant only: the campaign certifies recovery under
    // device faults, so every job must be SDC-free by construction.
    spec.variant = abft::Variant::EnhancedOnline;
    spec.recovery = rng.uniform_int(0, 2) == 0 ? abft::Recovery::Checkpoint
                                               : abft::Recovery::Rerun;
    switch (rng.uniform_int(0, 3)) {
      case 0: spec.placement = abft::UpdatePlacement::Blocking; break;
      case 1: spec.placement = abft::UpdatePlacement::Gpu; break;
      case 2: spec.placement = abft::UpdatePlacement::Cpu; break;
      default: spec.placement = abft::UpdatePlacement::Auto; break;
    }
    spec.verify_interval = rng.uniform_int(0, 3) == 0 ? 2 : 1;
    spec.transfer_guard = true;
    spec.ecc = rng.uniform_int(0, 3) == 0;
    spec.mtbf_s = sc.mtbf_s;
    spec.max_arrivals = sc.max_arrivals;
    jobs.push_back(spec);
  }
  return jobs;
}

double run_fleet_once(const FleetScenario& sc,
                      const std::vector<JobSpec>& jobs,
                      const std::vector<fault::DeviceFaultSpec>& plan,
                      sim::ExecutionMode mode, FleetScenarioResult* out,
                      bool collect_trace) {
  sim::FleetProfile fp;
  fp.device = sim::test_rig();
  fp.devices = sc.devices;
  fp.link_capacity = sc.link_capacity;
  sim::Fleet fleet(fp, mode);

  // Per-scenario store: trace ids derive from the scenario seed and the
  // admission sequence, so the spans are schedule-independent and the
  // campaign can merge them in draw order.
  obs::TraceStore trace;
  ServiceOptions so;
  so.max_retries = sc.max_retries;
  so.checkpoint_interval = 2;
  if (collect_trace) {
    so.trace = &trace;
    so.trace_seed = sc.seed;
  }
  FactorizationService svc(fleet, so);
  svc.apply(plan);
  for (const auto& spec : jobs) svc.submit(spec);
  std::vector<JobResult> results = svc.drain();

  if (out != nullptr) {
    out->jobs_admitted = static_cast<int>(jobs.size());
    out->dropped =
        static_cast<int>(jobs.size()) - static_cast<int>(results.size());
    out->device_losses = fleet.losses_discovered();
    out->makespan_s = fleet.makespan();
    for (const auto& r : results) {
      const FleetVerdict v = classify(r);
      out->verdicts[static_cast<std::size_t>(v)] += 1;
      if (r.sdc) ++out->sdc_jobs;
      out->migrations += r.migrations;
      out->retries_spent += std::max(0, r.attempts - 1);
      out->faults_fired += r.faults_fired;
      out->faults_detected += r.faults_detected;
      if (!r.tenant.empty()) {
        TenantUsage& t = out->tenants[r.tenant];
        t.jobs += 1;
        t.retries += std::max(0, r.attempts - 1);
        t.migrations += r.migrations;
        t.device_seconds += r.device_seconds;
        t.checkpoint_bytes += r.checkpoint_bytes;
      }
    }
    out->jobs = std::move(results);
    if (collect_trace) out->trace_spans = trace.snapshot();
  }
  return fleet.makespan();
}

}  // namespace

const char* to_string(FleetVerdict v) {
  switch (v) {
    case FleetVerdict::Completed: return "completed";
    case FleetVerdict::Migrated: return "migrated";
    case FleetVerdict::Degraded: return "degraded";
    case FleetVerdict::ExhaustedRetries: return "exhausted_retries";
    case FleetVerdict::FailStop: return "fail_stop";
    case FleetVerdict::Sdc: return "sdc";
  }
  return "?";
}

FleetScenarioResult run_fleet_scenario(const FleetScenario& sc,
                                       bool collect_trace) {
  FTLA_CHECK(sc.devices >= 1 && sc.jobs >= 1);
  const std::vector<JobSpec> jobs = draw_jobs(sc);

  // Dry run on a pristine twin fleet: its makespan is the horizon the
  // device-fault plan is sampled against, so losses land mid-workload.
  const double horizon = run_fleet_once(
      sc, jobs, {}, sim::ExecutionMode::TimingOnly, nullptr, false);

  fault::DeviceFaultPlanConfig pc;
  pc.devices = sc.devices;
  pc.loss_count = sc.loss_count;
  pc.stall_count = sc.stall_count;
  pc.degrade_count = sc.degrade_count;
  pc.horizon_s = std::max(horizon, 1.0e-12);
  pc.seed = sc.seed;
  const std::vector<fault::DeviceFaultSpec> plan =
      fault::sample_device_faults(pc);

  FleetScenarioResult out;
  out.horizon_s = horizon;
  run_fleet_once(sc, jobs, plan, sim::ExecutionMode::Numeric, &out,
                 collect_trace);
  return out;
}

FleetScenario random_fleet_scenario(Rng& rng,
                                    const FleetCampaignOptions& opt) {
  FleetScenario sc;
  sc.devices = rng.uniform_int(opt.min_devices, opt.max_devices);
  sc.link_capacity = rng.uniform_int(0, 2) == 0 ? 2 : 1;
  sc.jobs = rng.uniform_int(opt.min_jobs, opt.max_jobs);
  sc.loss_count = rng.uniform(0.0, 1.0) < opt.loss_share
                      ? rng.uniform_int(1, std::max(1, opt.max_losses))
                      : 0;
  sc.stall_count = rng.uniform(0.0, 1.0) < opt.stall_share ? 1 : 0;
  sc.degrade_count = rng.uniform(0.0, 1.0) < opt.degrade_share ? 1 : 0;
  sc.block = opt.block;
  sc.min_blocks = opt.min_blocks;
  sc.max_blocks = opt.max_blocks;
  // Same calibration as the single-node campaign: log-uniform MTBF that
  // yields a handful of arrivals per job at test_rig makespans.
  sc.mtbf_s = rng.uniform(0.0, 1.0) < opt.mtbf_share
                  ? std::pow(10.0, rng.uniform(-5.0, -3.9))
                  : 0.0;
  sc.max_arrivals = 6;
  sc.max_retries = opt.max_retries;
  sc.seed = rng.next_u64() | 1ULL;
  return sc;
}

namespace {

/// Folds one finished scenario into the summary, in draw order — with a
/// parallel campaign this runs only in the serial merge phase, so the
/// summary is independent of the worker schedule.
void merge_one(FleetCampaignSummary& sum, const FleetScenario& sc,
               const FleetScenarioResult& res, obs::TraceStore* trace,
               obs::SloEngine* slo) {
  ++sum.scenarios_run;
  sum.jobs_admitted += res.jobs_admitted;
  sum.sdc_jobs += res.sdc_jobs;
  sum.dropped_jobs += res.dropped;
  for (int v = 0; v < kFleetVerdictCount; ++v) {
    sum.verdicts[static_cast<std::size_t>(v)] +=
        res.verdicts[static_cast<std::size_t>(v)];
  }
  sum.device_losses += res.device_losses;
  sum.migrations += res.migrations;
  sum.retries_spent += res.retries_spent;
  sum.faults_fired += res.faults_fired;
  sum.faults_detected += res.faults_detected;
  for (const auto& [name, usage] : res.tenants) {
    TenantUsage& t = sum.tenants[name];
    t.jobs += usage.jobs;
    t.retries += usage.retries;
    t.migrations += usage.migrations;
    t.device_seconds += usage.device_seconds;
    t.checkpoint_bytes += usage.checkpoint_bytes;
  }
  // Traces and SLO records fold here — draw order — never on the
  // workers, so both are byte-identical at any thread count.
  if (trace != nullptr) trace->append(res.trace_spans);
  if (slo != nullptr) {
    for (const auto& r : res.jobs) {
      slo->record_job(r.end_time, r.success, r.sdc, r.latency());
    }
  }

  if (res.sdc_jobs > 0 || res.dropped != 0) {
    FleetCampaignFailure f;
    f.scenario = sc;
    f.result = res;
    f.reason = res.sdc_jobs > 0 ? "sdc" : "dropped_jobs";
    sum.failures.push_back(std::move(f));
  }
}

}  // namespace

FleetCampaignSummary run_fleet_campaign(const FleetCampaignOptions& opt,
                                        obs::MetricsRegistry* metrics,
                                        std::ostream* progress,
                                        int progress_every,
                                        obs::TraceStore* trace,
                                        obs::SloEngine* slo) {
  FleetCampaignSummary sum;
  Rng rng(opt.seed != 0 ? opt.seed : 1);
  const bool collect_trace = trace != nullptr;

  const int limit = opt.abort_after > 0
                        ? std::min(opt.scenarios, opt.abort_after)
                        : opt.scenarios;
  sum.aborted = limit < opt.scenarios;

  if (opt.threads == 1 || limit <= 1) {
    for (int i = 0; i < limit; ++i) {
      const FleetScenario sc = random_fleet_scenario(rng, opt);
      const FleetScenarioResult res = run_fleet_scenario(sc, collect_trace);
      merge_one(sum, sc, res, trace, slo);
      if (progress != nullptr && progress_every > 0 &&
          (i + 1) % progress_every == 0) {
        *progress << "[fleet] " << (i + 1) << "/" << limit << " scenarios, "
                  << sum.device_losses << " losses, " << sum.migrations
                  << " migrations, " << sum.failures.size() << " failures\n";
      }
    }
  } else {
    // Identical pre-draw / grain-1 pool / draw-order merge as
    // fault::run_campaign: per-scenario results are self-contained
    // (own fleets, matrices, injectors), so the parallel campaign's
    // summary is bit-identical to the serial one.
    std::vector<FleetScenario> scenarios;
    scenarios.reserve(static_cast<std::size_t>(limit));
    for (int i = 0; i < limit; ++i) {
      scenarios.push_back(random_fleet_scenario(rng, opt));
    }
    std::vector<FleetScenarioResult> results(scenarios.size());
    common::ThreadPool pool(opt.threads);
    common::Mutex progress_mu;
    int completed = 0;
    pool.parallel_for(0, limit, [&](std::int64_t i) {
      results[static_cast<std::size_t>(i)] = run_fleet_scenario(
          scenarios[static_cast<std::size_t>(i)], collect_trace);
      if (progress != nullptr && progress_every > 0) {
        common::MutexLock lk(progress_mu);
        ++completed;
        if (completed % progress_every == 0) {
          *progress << "[fleet] " << completed << "/" << limit
                    << " scenarios completed\n";
        }
      }
    });
    for (int i = 0; i < limit; ++i) {
      merge_one(sum, scenarios[static_cast<std::size_t>(i)],
                results[static_cast<std::size_t>(i)], trace, slo);
    }
  }

  if (metrics != nullptr) {
    metrics->add_counter("fleet.scenarios", sum.scenarios_run);
    metrics->add_counter("fleet.jobs.admitted", sum.jobs_admitted);
    metrics->add_counter("fleet.jobs.sdc", sum.sdc_jobs);
    metrics->add_counter("fleet.jobs.dropped", sum.dropped_jobs);
    metrics->add_counter("fleet.device_losses", sum.device_losses);
    metrics->add_counter("fleet.migrations", sum.migrations);
    metrics->add_counter("fleet.retries", sum.retries_spent);
    metrics->add_counter("fleet.faults.fired", sum.faults_fired);
    metrics->add_counter("fleet.faults.detected", sum.faults_detected);
    metrics->add_counter("fleet.failures",
                         static_cast<long long>(sum.failures.size()));
    for (int v = 0; v < kFleetVerdictCount; ++v) {
      const long long c = sum.verdicts[static_cast<std::size_t>(v)];
      if (c == 0) continue;
      metrics->add_counter(std::string("fleet.verdict.") +
                               to_string(static_cast<FleetVerdict>(v)),
                           c);
    }
    for (const auto& [name, t] : sum.tenants) {
      const std::string prefix = "tenant." + name + ".";
      metrics->add_counter(prefix + "jobs", t.jobs);
      metrics->add_counter(prefix + "retries", t.retries);
      metrics->add_counter(prefix + "migrations", t.migrations);
      metrics->add_counter(prefix + "checkpoint_bytes", t.checkpoint_bytes);
      metrics->set_gauge(prefix + "device_seconds", t.device_seconds);
    }
    if (slo != nullptr) slo->export_metrics(metrics);
  }
  return sum;
}

namespace {

/// Splits "key=value"; returns false when '=' is missing.
bool split_kv(const std::string& tok, std::string* key, std::string* val) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = tok.substr(0, eq);
  *val = tok.substr(eq + 1);
  return true;
}

}  // namespace

std::string format_fleet_scenario(const FleetScenario& sc) {
  std::ostringstream os;
  // Round-trip precision: mtbf feeds the seeded arrival process, so a
  // lossy print would make the replay diverge.
  os << std::setprecision(17);
  os << "fleet_scenario devices=" << sc.devices
     << " link=" << sc.link_capacity << " jobs=" << sc.jobs
     << " losses=" << sc.loss_count << " stalls=" << sc.stall_count
     << " degrades=" << sc.degrade_count << " block=" << sc.block
     << " min_blocks=" << sc.min_blocks << " max_blocks=" << sc.max_blocks
     << " mtbf=" << sc.mtbf_s << " max_arrivals=" << sc.max_arrivals
     << " max_retries=" << sc.max_retries << " seed=" << sc.seed << "\n";
  return os.str();
}

bool parse_fleet_scenario(const std::string& text, FleetScenario* out,
                          std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  FleetScenario sc;
  bool saw_header = false;

  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream toks(line);
    std::string head;
    if (!(toks >> head) || head.empty() || head[0] == '#') continue;

    const auto where = [&] {
      return "line " + std::to_string(lineno) + ": ";
    };
    if (head != "fleet_scenario") {
      return fail(where() + "expected 'fleet_scenario', got '" + head + "'");
    }
    saw_header = true;
    std::string tok;
    while (toks >> tok) {
      std::string key;
      std::string val;
      if (!split_kv(tok, &key, &val)) {
        return fail(where() + "expected key=value, got '" + tok + "'");
      }
      if (key == "devices") {
        sc.devices = std::atoi(val.c_str());
      } else if (key == "link") {
        sc.link_capacity = std::atoi(val.c_str());
      } else if (key == "jobs") {
        sc.jobs = std::atoi(val.c_str());
      } else if (key == "losses") {
        sc.loss_count = std::atoi(val.c_str());
      } else if (key == "stalls") {
        sc.stall_count = std::atoi(val.c_str());
      } else if (key == "degrades") {
        sc.degrade_count = std::atoi(val.c_str());
      } else if (key == "block") {
        sc.block = std::atoi(val.c_str());
      } else if (key == "min_blocks") {
        sc.min_blocks = std::atoi(val.c_str());
      } else if (key == "max_blocks") {
        sc.max_blocks = std::atoi(val.c_str());
      } else if (key == "mtbf") {
        sc.mtbf_s = std::atof(val.c_str());
      } else if (key == "max_arrivals") {
        sc.max_arrivals = std::atoi(val.c_str());
      } else if (key == "max_retries") {
        sc.max_retries = std::atoi(val.c_str());
      } else if (key == "seed") {
        sc.seed = std::strtoull(val.c_str(), nullptr, 10);
      } else {
        return fail(where() + "unknown fleet_scenario key '" + key + "'");
      }
    }
    if (sc.devices < 1 || sc.jobs < 1 || sc.block < 1) {
      return fail(where() + "devices, jobs and block must be positive");
    }
  }

  if (!saw_header) return fail("no 'fleet_scenario' header line found");
  *out = sc;
  return true;
}

}  // namespace ftla::service
