// Fleet-wide fault-campaign engine (docs/fleet.md).
//
// A *fleet scenario* is one service run end to end: an N-device fleet,
// a FIFO workload of factorization jobs, a device-fault plan (losses /
// stalls / degradations sampled against the workload's fault-free
// makespan) and optional element-level soft-error pressure. The engine
// runs the scenario twice —
//
//   1. a TimingOnly dry run of the same workload on a pristine twin
//      fleet, whose makespan is the horizon device faults are sampled
//      against (losses land mid-run, not after everything finished);
//   2. the Numeric run with the plan armed, classified per job.
//
// Per-job verdicts extend the service outcomes with the oracle's view:
// a job whose claimed success fails the independent residual check is
// `sdc`, whatever the service thought. The campaign-level invariants —
// what the CI smoke job and the certification test enforce — are:
//
//   * zero SDC: every claimed success has a clean residual;
//   * zero dropped jobs: every admitted job is accounted with exactly
//     one outcome, reconciled between summary, metrics and report.
//
// Determinism matches fault::run_campaign: scenarios are pre-drawn
// serially from the campaign seed, executed on a thread pool with a
// grain of 1, and merged in draw order, so a parallel campaign's
// summary is byte-identical to the serial one. A failing scenario is
// replayable from its one-line serialization (format_fleet_scenario):
// every random choice inside a scenario derives from its own seed.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/exit_codes.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"

namespace ftla::obs {
class SloEngine;
}  // namespace ftla::obs

namespace ftla::service {

/// Per-tenant accounting rollup (jobs, device-seconds, checkpoint
/// bytes, retries) — the campaign aggregates one per tenant name.
struct TenantUsage {
  long long jobs = 0;
  long long retries = 0;
  long long migrations = 0;
  double device_seconds = 0.0;
  long long checkpoint_bytes = 0;
};

/// Per-job verdict: the service outcome, overridden by the oracle.
enum class FleetVerdict {
  Completed,
  Migrated,
  Degraded,
  ExhaustedRetries,
  FailStop,
  Sdc,
};
inline constexpr int kFleetVerdictCount = 6;
[[nodiscard]] const char* to_string(FleetVerdict v);

/// One fleet-campaign scenario, fully seed-determined and replayable.
struct FleetScenario {
  int devices = 3;
  int link_capacity = 1;
  int jobs = 2;
  /// Device-fault plan shape (losses are capped at devices - 1).
  int loss_count = 1;
  int stall_count = 0;
  int degrade_count = 0;
  /// Job-size distribution: n = block * uniform[min_blocks, max_blocks].
  int block = 16;
  int min_blocks = 3;
  int max_blocks = 5;
  /// Soft-error pressure per job (<= 0 disables the arrival process).
  double mtbf_s = 0.0;
  int max_arrivals = 6;
  int max_retries = 3;
  /// Master seed: job shapes, matrix/fault seeds and the device-fault
  /// plan all derive from it.
  std::uint64_t seed = 1;
};

struct FleetScenarioResult {
  int jobs_admitted = 0;
  /// admitted - accounted; the zero-dropped invariant says 0, always.
  int dropped = 0;
  int sdc_jobs = 0;
  std::array<long long, kFleetVerdictCount> verdicts{};
  int device_losses = 0;
  int migrations = 0;
  int retries_spent = 0;
  long long faults_fired = 0;
  long long faults_detected = 0;
  /// Fault-free makespan of the dry run (the fault-sampling horizon).
  double horizon_s = 0.0;
  /// Makespan of the faulted numeric run.
  double makespan_s = 0.0;
  std::vector<JobResult> jobs;
  /// Per-tenant rollup of the numeric run.
  std::map<std::string, TenantUsage> tenants;
  /// Causal-trace spans of the numeric run (collect_trace only) — the
  /// campaign merges them into one store in draw order, so the merged
  /// trace is byte-identical serial vs parallel.
  std::vector<obs::TraceSpan> trace_spans;
};

/// Runs one fleet scenario end to end (dry horizon run + faulted run).
/// With collect_trace, the numeric run records causal-trace spans
/// (trace ids derived from the scenario seed + job sequence) into
/// FleetScenarioResult::trace_spans.
FleetScenarioResult run_fleet_scenario(const FleetScenario& sc,
                                       bool collect_trace = false);

struct FleetCampaignOptions {
  int scenarios = 500;
  std::uint64_t seed = 1;
  /// Scenario axes: fleet size, workload size, fault-plan shape.
  int min_devices = 2;
  int max_devices = 4;
  int min_jobs = 1;
  int max_jobs = 3;
  int max_losses = 2;
  /// Share of scenarios with at least one device loss.
  double loss_share = 0.75;
  double stall_share = 0.25;
  double degrade_share = 0.25;
  /// Share of scenarios that also run soft-error pressure.
  double mtbf_share = 0.5;
  int block = 16;
  int min_blocks = 3;
  int max_blocks = 5;
  int max_retries = 3;
  /// Scenario-level parallelism (see fault::CampaignOptions::threads);
  /// the summary is bit-identical to the serial campaign.
  int threads = 1;
  /// Stop after this many scenarios (0 = run all); the completed prefix
  /// equals the same-seed full campaign's.
  int abort_after = 0;
};

/// Draws a randomized fleet scenario from the campaign distribution.
FleetScenario random_fleet_scenario(Rng& rng,
                                    const FleetCampaignOptions& opt);

/// A scenario that violated a campaign invariant, replayable as-is.
struct FleetCampaignFailure {
  FleetScenario scenario;
  FleetScenarioResult result;
  std::string reason;  ///< "sdc" or "dropped_jobs"
};

struct FleetCampaignSummary {
  int scenarios_run = 0;
  long long jobs_admitted = 0;
  long long sdc_jobs = 0;
  long long dropped_jobs = 0;
  std::array<long long, kFleetVerdictCount> verdicts{};
  long long device_losses = 0;
  long long migrations = 0;
  long long retries_spent = 0;
  long long faults_fired = 0;
  long long faults_detected = 0;
  std::map<std::string, TenantUsage> tenants;
  std::vector<FleetCampaignFailure> failures;
  bool aborted = false;

  [[nodiscard]] bool clean() const noexcept { return failures.empty(); }
};

/// Runs the fleet campaign. When `metrics` is given, totals, verdict
/// counters and per-tenant rollups are exported under "fleet.*" /
/// "tenant.*" (docs/fleet.md). `progress`, when non-null, receives one
/// line every `progress_every` scenarios. When `trace` is given, every
/// scenario's numeric run records causal-trace spans, merged in draw
/// order — the merged trace is byte-identical at any thread count. When
/// `slo` is given, every drained job feeds it in draw order (virtual
/// end-time stamps), again thread-count independent.
FleetCampaignSummary run_fleet_campaign(const FleetCampaignOptions& opt,
                                        obs::MetricsRegistry* metrics = nullptr,
                                        std::ostream* progress = nullptr,
                                        int progress_every = 100,
                                        obs::TraceStore* trace = nullptr,
                                        obs::SloEngine* slo = nullptr);

/// One-line key=value serialization; round-trips via
/// parse_fleet_scenario, so a failing scenario replays byte-for-byte.
std::string format_fleet_scenario(const FleetScenario& sc);
bool parse_fleet_scenario(const std::string& text, FleetScenario* out,
                          std::string* error);

}  // namespace ftla::service
