// Resilient factorization service over a simulated device fleet
// (docs/fleet.md).
//
// The service owns a deterministic FIFO queue of factorization jobs and
// drives them to completion on a sim::Fleet under device-level faults:
//
//   * placement    — least-loaded: the device with the earliest virtual
//                    clock (lowest id tie-break) among devices not yet
//                    discovered lost;
//   * checkpoints  — the ABFT driver streams completed panel columns
//                    into a host-side abft::PanelCheckpoint every
//                    checkpoint_interval iterations (host memory, so it
//                    survives the device);
//   * migration    — a sim::DeviceLostError unwinding out of a job
//                    marks the device lost and re-places the job on a
//                    surviving device, resuming from the checkpoint
//                    instead of restarting cold;
//   * retry        — re-placements after mid-run losses are bounded
//                    (max_retries) with deterministic exponential
//                    backoff on the virtual clock;
//   * degradation  — jobs admitted on an already-shrunken fleet report
//                    the Degraded outcome; devices marked degraded run
//                    with an elevated per-device soft-error rate
//                    (fault::FaultProcess rate multiplier).
//
// Every decision is emitted through the observability layer
// (obs::EventKind::Note events, service.* / fleet.* metrics,
// time-series samples), and every admitted job ends in exactly one
// JobOutcome — the zero-dropped-jobs invariant the fleet campaign
// certifies (fleet_campaign.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "abft/options.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sim/fleet.hpp"

namespace ftla::obs {
class EventSink;
class FlightRecorder;
class MetricsRegistry;
class SloEngine;
class TimeSeriesStore;
}  // namespace ftla::obs

namespace ftla::service {

/// One factorization request. Everything is seeded, so a job (and the
/// whole service run) is deterministic and replayable.
struct JobSpec {
  int id = 0;
  int n = 64;
  int block = 16;
  std::uint64_t matrix_seed = 1;
  /// Accounting principal. Empty = untenanted (no tenant.* metrics).
  std::string tenant;
  /// Causal-trace context (docs/observability.md). Zero trace_id +
  /// tracing enabled on the service = derive one from
  /// ServiceOptions::trace_seed and the admission sequence.
  obs::TraceContext trace;

  abft::Variant variant = abft::Variant::EnhancedOnline;
  abft::Recovery recovery = abft::Recovery::Rerun;
  abft::UpdatePlacement placement = abft::UpdatePlacement::Auto;
  int verify_interval = 1;
  /// Close the PCIe windows so stochastic transfer faults stay
  /// detectable (the fleet campaign's zero-SDC invariant needs it).
  bool transfer_guard = true;
  bool ecc = false;

  /// Soft-error pressure while the job runs: mean time between faults
  /// in virtual seconds (<= 0 disables the arrival process). Degraded
  /// devices multiply the arrival rate per fault::ProcessConfig.
  double mtbf_s = 0.0;
  std::uint64_t fault_seed = 1;
  int max_arrivals = 8;

  [[nodiscard]] int nblocks() const { return (n + block - 1) / block; }
};

/// Exactly one per admitted job (the zero-dropped invariant).
enum class JobOutcome {
  Completed,        ///< finished on the first device it started on
  Migrated,         ///< lost >= 1 device mid-run, finished elsewhere
  Degraded,         ///< admitted on a shrunken fleet, still finished
  ExhaustedRetries, ///< device losses outran the retry budget
  FailStop,         ///< the factorization itself failed (honest failure)
};
inline constexpr int kJobOutcomeCount = 5;
[[nodiscard]] const char* to_string(JobOutcome o);

struct JobResult {
  int job_id = 0;
  JobOutcome outcome = JobOutcome::FailStop;
  bool success = false;
  /// Independent oracle residual (Numeric mode; NaN in TimingOnly).
  double residual = 0.0;
  /// Oracle disagreed with a claimed success — silent data corruption.
  bool sdc = false;

  int attempts = 0;    ///< factorization attempts actually started
  int device = -1;     ///< device of the final attempt
  int migrations = 0;  ///< mid-run device losses survived
  /// Outer iterations the final attempt skipped by resuming from the
  /// panel checkpoint (0 = cold start).
  int resumed_iterations = 0;

  double submit_time = 0.0;  ///< virtual admission instant
  double start_time = 0.0;   ///< first attempt's start
  double end_time = 0.0;     ///< completion (or give-up) instant
  /// Queue + service latency on the virtual clock.
  [[nodiscard]] double latency() const noexcept {
    return end_time - submit_time;
  }
  /// Virtual seconds of the final attempt (driver-reported makespan).
  double seconds = 0.0;

  int faults_fired = 0;  ///< element-level faults landed (all attempts)
  int faults_detected = 0;
  int reruns = 0;
  int rollbacks = 0;
  std::string note;

  std::string tenant;          ///< copied from the spec (accounting key)
  obs::TraceId trace_id = 0;   ///< 0 when tracing was off
  /// Device-occupancy seconds across every attempt (virtual clock):
  /// the per-tenant device-seconds accounting unit.
  double device_seconds = 0.0;
  /// Bytes streamed into the host panel checkpoint, all attempts.
  std::int64_t checkpoint_bytes = 0;
};

struct ServiceOptions {
  /// Re-placements allowed after mid-run device losses; attempt count
  /// is bounded by 1 + max_retries.
  int max_retries = 3;
  /// Backoff before a retry: the migrated attempt starts no earlier
  /// than loss_time + backoff_base_s * 2^(attempts-1). Virtual seconds,
  /// so backoff is deterministic and shows up in job latency.
  double backoff_base_s = 1.0e-5;
  /// Panel-checkpoint cadence in outer iterations (also the driver's
  /// device-snapshot cadence for Recovery::Checkpoint).
  int checkpoint_interval = 2;
  /// When false, retries restart cold (no panel checkpoint is kept) —
  /// the baseline the recovered-makespan acceptance test compares
  /// against.
  bool checkpoint_resume = true;

  /// Observability hooks (optional, not owned).
  obs::EventSink* event_sink = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TimeSeriesStore* timeseries = nullptr;
  /// Causal-trace store; with it set, every job records a span tree
  /// (submit → queue → attempts → driver → complete) and propagates its
  /// context into the ABFT driver (docs/observability.md).
  obs::TraceStore* trace = nullptr;
  /// Seed trace ids derive from (with the admission sequence) when a
  /// submitted spec does not carry one.
  std::uint64_t trace_seed = 1;
  /// SLO engine fed one record per drained job (availability, latency,
  /// zero-SDC), evaluated on the virtual clock.
  obs::SloEngine* slo = nullptr;
  /// Flight recorder for breadcrumbs along the recovery paths
  /// (place → device_lost → migrate → resume), reconcilable with the
  /// postmortem bundle.
  obs::FlightRecorder* recorder = nullptr;
};

class FactorizationService {
 public:
  FactorizationService(sim::Fleet& fleet, ServiceOptions options);

  /// Admits a job at the current fleet instant (FIFO order).
  void submit(JobSpec spec);
  [[nodiscard]] int queued() const noexcept {
    return static_cast<int>(queue_.size());
  }

  /// Arms a device-fault plan (fail-stop / stall / degrade) on the
  /// fleet. Degrade specs take effect immediately; losses and stalls
  /// fire when a device's clock reaches them.
  void apply(const std::vector<fault::DeviceFaultSpec>& plan);

  /// Runs every queued job to completion, in admission order. Returns
  /// one JobResult per admitted job — drained jobs are never dropped,
  /// whatever the fleet does.
  std::vector<JobResult> drain();

 private:
  struct QueuedJob {
    JobSpec spec;
    double submit_time = 0.0;
  };

  JobResult run_job(const JobSpec& spec, double submit_time);
  /// Least-loaded usable device, or -1 when the whole fleet is lost.
  [[nodiscard]] int pick_device() const;
  /// Records the scheduler-side discovery of a device loss (idempotent).
  void discover_loss(int device, double time, int job_id,
                     const char* where);
  void note(double time, const std::string& name,
            const std::string& detail);
  void counter(const std::string& name, long long delta);
  /// Records one causal-trace span (no-op when tracing is off).
  void span(obs::TraceId trace_id, obs::SpanId id, obs::SpanId parent,
            const std::string& name, const char* kind, int device,
            const std::string& tenant, double start, double end,
            const char* status, const std::string& detail);
  /// Per-tenant accounting folded after each drained job.
  void account(const JobResult& r);

  sim::Fleet& fleet_;
  ServiceOptions opt_;
  std::deque<QueuedJob> queue_;
  int admitted_ = 0;
  /// Running per-tenant device-seconds, exported as gauges at drain end
  /// (counters are integral; occupancy is a double).
  std::map<std::string, double> tenant_device_seconds_;
};

}  // namespace ftla::service
