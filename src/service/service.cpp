#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "abft/cholesky.hpp"
#include "blas/lapack.hpp"
#include "common/error.hpp"
#include "common/fp.hpp"
#include "common/spd.hpp"
#include "fault/process.hpp"
#include "obs/event_sink.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/machine.hpp"

namespace ftla::service {
namespace {

/// Same oracle line as the fault campaign: injected corruption is
/// macroscopic, so anything uncorrected lands far above this.
constexpr double kResidualThreshold = 1.0e-6;

// Child-index layout of a job's trace (docs/observability.md). Root
// children: fixed slots for the markers, then attempts from
// kAttemptChildBase and re-placement / migration markers in their own
// ranges so ids never collide however recovery interleaves.
constexpr std::uint64_t kSubmitChild = 1;
constexpr std::uint64_t kQueueChild = 2;
constexpr std::uint64_t kCompleteChild = 3;
constexpr std::uint64_t kAttemptChildBase = 16;
constexpr std::uint64_t kPlaceLossChildBase = 4096;
constexpr std::uint64_t kMigrateChildBase = 8192;
// Attempt children: the place marker, the loss marker; the driver roots
// its factorize span at obs::kTraceDriverChild.
constexpr std::uint64_t kPlaceChild = 1;
constexpr std::uint64_t kLossChild = 3;

/// Clears the per-attempt transfer hook even when the attempt unwinds
/// via DeviceLostError — the machine outlives the job.
struct TransferHookGuard {
  explicit TransferHookGuard(sim::Machine& machine) : m(machine) {}
  TransferHookGuard(const TransferHookGuard&) = delete;
  TransferHookGuard& operator=(const TransferHookGuard&) = delete;
  ~TransferHookGuard() { m.set_transfer_hook({}); }
  sim::Machine& m;
};

}  // namespace

const char* to_string(JobOutcome o) {
  switch (o) {
    case JobOutcome::Completed: return "completed";
    case JobOutcome::Migrated: return "migrated";
    case JobOutcome::Degraded: return "degraded";
    case JobOutcome::ExhaustedRetries: return "exhausted_retries";
    case JobOutcome::FailStop: return "fail_stop";
  }
  return "?";
}

FactorizationService::FactorizationService(sim::Fleet& fleet,
                                           ServiceOptions options)
    : fleet_(fleet), opt_(std::move(options)) {
  FTLA_CHECK(opt_.max_retries >= 0);
  FTLA_CHECK(opt_.backoff_base_s >= 0.0);
  FTLA_CHECK(opt_.checkpoint_interval >= 1);
}

void FactorizationService::submit(JobSpec spec) {
  FTLA_CHECK(spec.n >= 1 && spec.block >= 1);
  const double now = fleet_.now();
  if (opt_.trace != nullptr) {
    if (spec.trace.trace_id == 0) {
      // The root span's id is the trace id itself; the admission
      // sequence (not wall clock, not thread order) picks it.
      spec.trace.trace_id = obs::derive_trace_id(
          opt_.trace_seed, static_cast<std::uint64_t>(admitted_));
      spec.trace.span_id = spec.trace.trace_id;
    }
    spec.trace.tenant = spec.tenant;
    span(spec.trace.trace_id,
         obs::derive_span_id(spec.trace.span_id, kSubmitChild),
         spec.trace.span_id, "submit", "marker", -1, spec.tenant, now, now,
         "ok", "job=" + std::to_string(spec.id));
  }
  QueuedJob q;
  q.spec = spec;
  q.submit_time = now;
  queue_.push_back(std::move(q));
  ++admitted_;
  counter("service.jobs.admitted", 1);
  note(now, "service:admit",
       "job=" + std::to_string(spec.id) + " n=" + std::to_string(spec.n));
}

void FactorizationService::apply(
    const std::vector<fault::DeviceFaultSpec>& plan) {
  for (const auto& s : plan) {
    FTLA_CHECK(s.device >= 0 && s.device < fleet_.size());
    switch (s.kind) {
      case fault::DeviceFaultKind::FailStop:
        fleet_.arm_loss(s.device, s.time);
        break;
      case fault::DeviceFaultKind::Stall:
        fleet_.arm_stall(s.device, s.time, s.time + s.duration);
        break;
      case fault::DeviceFaultKind::Degrade:
        fleet_.mark_degraded(s.device, s.rate_multiplier);
        counter("fleet.devices_degraded", 1);
        break;
    }
  }
}

std::vector<JobResult> FactorizationService::drain() {
  std::vector<JobResult> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    QueuedJob q = std::move(queue_.front());
    queue_.pop_front();
    JobResult r = run_job(q.spec, q.submit_time);
    counter(std::string("service.jobs.") + to_string(r.outcome), 1);
    if (r.sdc) counter("service.jobs.sdc", 1);
    if (opt_.metrics != nullptr) {
      opt_.metrics->record_histogram("service.job_latency_s", r.latency());
    }
    if (opt_.timeseries != nullptr) {
      opt_.timeseries->sample_counter("service.jobs_finished", r.end_time,
                                      1.0);
    }
    if (opt_.slo != nullptr) {
      opt_.slo->record_job(r.end_time, r.success, r.sdc, r.latency());
    }
    account(r);
    note(r.end_time, "service:finish",
         "job=" + std::to_string(r.job_id) + " outcome=" +
             to_string(r.outcome) + " attempts=" +
             std::to_string(r.attempts));
    out.push_back(std::move(r));
  }
  if (opt_.metrics != nullptr) {
    opt_.metrics->set_gauge("fleet.devices",
                            static_cast<double>(fleet_.size()));
    opt_.metrics->set_gauge("fleet.devices_usable",
                            static_cast<double>(fleet_.usable_count()));
    for (const auto& [tenant, seconds] : tenant_device_seconds_) {
      opt_.metrics->set_gauge("tenant." + tenant + ".device_seconds",
                              seconds);
    }
  }
  return out;
}

int FactorizationService::pick_device() const {
  int best = -1;
  double best_now = 0.0;
  for (int d = 0; d < fleet_.size(); ++d) {
    if (fleet_.state(d) == sim::DeviceState::Lost) continue;
    const double now = fleet_.device(d).host_now();
    if (best < 0 || now < best_now) {
      best = d;
      best_now = now;
    }
  }
  return best;
}

void FactorizationService::discover_loss(int device, double time, int job_id,
                                         const char* where) {
  if (fleet_.state(device) == sim::DeviceState::Lost) return;
  fleet_.mark_lost(device);
  counter("fleet.device_losses", 1);
  if (opt_.timeseries != nullptr) {
    opt_.timeseries->sample_gauge("fleet.devices_usable", time,
                                  static_cast<double>(fleet_.usable_count()));
  }
  note(time, "service:device_lost",
       "device=" + std::to_string(device) + " job=" +
           std::to_string(job_id) + " at=" + where);
}

void FactorizationService::note(double time, const std::string& name,
                                const std::string& detail) {
  // The breadcrumb mirror gives the flight recorder the same recovery
  // chain (place → device_lost → migrate → resume) the event stream
  // carries, so a postmortem bundle reconciles without the ring buffer.
  if (opt_.recorder != nullptr) opt_.recorder->note(name + " " + detail);
  if (opt_.event_sink == nullptr) return;
  obs::Event e;
  e.kind = obs::EventKind::Note;
  e.time = time;
  e.end = time;
  e.name = name;
  e.detail = detail;
  opt_.event_sink->post(e);
}

void FactorizationService::counter(const std::string& name,
                                   long long delta) {
  if (opt_.metrics != nullptr) opt_.metrics->add_counter(name, delta);
}

void FactorizationService::span(obs::TraceId trace_id, obs::SpanId id,
                                obs::SpanId parent, const std::string& name,
                                const char* kind, int device,
                                const std::string& tenant, double start,
                                double end, const char* status,
                                const std::string& detail) {
  if (opt_.trace == nullptr || trace_id == 0) return;
  obs::TraceSpan s;
  s.trace_id = trace_id;
  s.span_id = id;
  s.parent_span = parent;
  s.name = name;
  s.kind = kind;
  s.device = device;
  s.tenant = tenant;
  s.start = start;
  s.end = end;
  s.status = status;
  s.detail = detail;
  opt_.trace->record(s);
}

void FactorizationService::account(const JobResult& r) {
  if (r.tenant.empty()) return;
  const std::string base = "tenant." + r.tenant;
  counter(base + ".jobs", 1);
  counter(base + ".retries", std::max(0, r.attempts - 1));
  counter(base + ".migrations", r.migrations);
  counter(base + ".checkpoint_bytes", r.checkpoint_bytes);
  if (r.sdc) counter(base + ".sdc", 1);
  tenant_device_seconds_[r.tenant] += r.device_seconds;
}

JobResult FactorizationService::run_job(const JobSpec& spec,
                                        double submit_time) {
  JobResult r;
  r.job_id = spec.id;
  r.submit_time = submit_time;
  r.tenant = spec.tenant;
  r.trace_id = spec.trace.trace_id;

  const bool tracing = opt_.trace != nullptr && spec.trace.valid();
  const obs::SpanId root = spec.trace.span_id;
  int place_losses = 0;

  const bool numeric = fleet_.numeric();
  const int n = spec.n;

  // The pristine input regenerates each attempt's working copy: a dead
  // attempt may leave partially factored state behind, and the oracle
  // needs the original anyway.
  Matrix<double> pristine;
  if (numeric) {
    pristine = Matrix<double>(n, n);
    make_spd_diag_dominant(pristine, spec.matrix_seed);
  }

  // Host-side panel checkpoint: lives with the job, not the device, so
  // it survives a loss and seeds the migrated attempt.
  abft::PanelCheckpoint ck;

  // One soft-error process for the whole job, with an independent
  // arrival stream per device: a fault storm on the device that dies
  // does not consume the replacement device's budget.
  std::unique_ptr<fault::FaultProcess> proc;
  if (numeric && spec.mtbf_s > 0.0) {
    fault::ProcessConfig pc;
    pc.mtbf_s = spec.mtbf_s;
    pc.seed = spec.fault_seed;
    pc.max_arrivals = spec.max_arrivals;
    pc.devices = fleet_.size();
    proc = std::make_unique<fault::FaultProcess>(pc, spec.nblocks());
    for (int d = 0; d < fleet_.size(); ++d) {
      if (fleet_.degrade_factor(d) > 1.0) {
        proc->set_rate_multiplier(d, fleet_.degrade_factor(d));
      }
    }
  }

  const bool admitted_degraded = fleet_.usable_count() < fleet_.size();
  double earliest = submit_time;

  for (;;) {
    const int dev = pick_device();
    if (dev < 0) {
      r.outcome = JobOutcome::FailStop;
      r.end_time = fleet_.now();
      r.note = "no usable devices";
      break;
    }
    sim::Machine& m = fleet_.device(dev);

    // Clock catch-up to the job's earliest start. A loss discovered
    // here means the device died before this job began there: that is
    // a re-placement, not a migration, and costs no retry.
    try {
      if (m.host_now() < earliest) m.host_advance(earliest - m.host_now());
    } catch (const sim::DeviceLostError& e) {
      discover_loss(dev, e.at(), spec.id, "placement");
      if (tracing) {
        ++place_losses;
        span(r.trace_id,
             obs::derive_span_id(
                 root, kPlaceLossChildBase +
                           static_cast<std::uint64_t>(place_losses)),
             root, "loss", "marker", dev, spec.tenant, e.at(), e.at(),
             "loss", "at=placement device=" + std::to_string(dev));
      }
      continue;
    }

    ++r.attempts;
    r.device = dev;
    const double t0 = m.host_now();
    if (r.attempts == 1) r.start_time = t0;
    const obs::SpanId attempt_id = obs::derive_span_id(
        root, kAttemptChildBase + static_cast<std::uint64_t>(r.attempts));
    if (tracing) {
      if (r.attempts == 1) {
        span(r.trace_id, obs::derive_span_id(root, kQueueChild), root,
             "queue", "queue", -1, spec.tenant, submit_time, t0, "ok", "");
      }
      span(r.trace_id, obs::derive_span_id(attempt_id, kPlaceChild),
           attempt_id, "place", "marker", dev, spec.tenant, t0, t0, "ok",
           "attempt=" + std::to_string(r.attempts));
    }
    note(t0, "service:place",
         "job=" + std::to_string(spec.id) + " device=" +
             std::to_string(dev) + " attempt=" +
             std::to_string(r.attempts));
    if (ck.usable(spec.n, spec.block)) {
      note(t0, "service:resume",
           "job=" + std::to_string(spec.id) + " iterations=" +
               std::to_string(ck.iterations));
    }
    const int ck_iters_before = ck.iterations;

    Matrix<double> a;
    if (numeric) a = pristine;

    fault::Injector inj({}, fault::EccModel{spec.ecc});
    inj.set_clock([&m] { return m.host_now(); });
    if (proc != nullptr) {
      proc->set_active_device(dev);
      inj.attach_process(proc.get());
    }

    // Transfer-corruption hook, campaign-style: process arrivals come
    // back as skeletons concretized from the in-flight copy's shape.
    Rng xfer_rng(spec.fault_seed ^ 0x7f4a7c15ULL ^
                 static_cast<std::uint64_t>(r.attempts));
    TransferHookGuard hook_guard(m);
    if (proc != nullptr) {
      m.set_transfer_hook([&](const sim::TransferCtx& ctx) {
        auto specs = inj.take_transfer(ctx.seq, ctx.end, ctx.armed);
        if (specs.empty() || ctx.data == nullptr || ctx.rows <= 0 ||
            ctx.cols <= 0) {
          return;
        }
        for (fault::FaultSpec fs : specs) {
          int fr = 0;
          int fc = 0;
          if (fs.elem_row >= 0) {
            fr = std::min(fs.elem_row, ctx.rows - 1);
            fc = std::min(fs.elem_col, ctx.cols - 1);
          } else {
            fr = xfer_rng.uniform_int(0, ctx.rows - 1);
            fc = xfer_rng.uniform_int(0, ctx.cols - 1);
            fs.elem_row = fr;
            fs.elem_col = fc;
            fs.bits = proc->sample_bits();
          }
          double* p = ctx.data + static_cast<std::int64_t>(fc) * ctx.ld + fr;
          const double old_value = *p;
          double v = old_value;
          for (int b : fs.bits) v = flip_bit(v, b);
          *p = v;
          int grow = -1;
          int gcol = -1;
          if (ctx.dev_off >= 0 && ctx.ld == n) {
            grow = static_cast<int>(ctx.dev_off % n) + fr;
            gcol = static_cast<int>(ctx.dev_off / n) + fc;
          }
          inj.record(fs, old_value, v, grow, gcol);
        }
      });
    }

    // A scratch registry activates the driver's telemetry layer, which
    // is what correlates corrections back to injections.
    obs::MetricsRegistry scratch_metrics;

    abft::CholeskyOptions o;
    o.variant = spec.variant;
    o.block_size = spec.block;
    o.verify_interval = spec.verify_interval;
    o.placement = spec.placement;
    o.recovery = spec.recovery;
    o.checkpoint_interval = opt_.checkpoint_interval;
    o.transfer_guard = spec.transfer_guard;
    o.metrics = &scratch_metrics;
    if (numeric && opt_.checkpoint_resume) o.panel_checkpoint = &ck;
    if (tracing) {
      o.trace = opt_.trace;
      o.trace_ctx = spec.trace;
      o.trace_ctx.span_id = attempt_id;
      o.trace_ctx.device = dev;
    }

    abft::CholeskyResult res;
    try {
      res = abft::cholesky(m, numeric ? &a : nullptr, n, o,
                           numeric ? &inj : nullptr);
    } catch (const sim::DeviceLostError& e) {
      discover_loss(dev, e.at(), spec.id, "mid-run");
      r.faults_fired += inj.fired_count();
      r.faults_detected += inj.detected_count();
      r.device_seconds += e.at() - t0;
      // The lost attempt's driver result unwound with the exception;
      // the checkpoint's growth is the bytes it shipped before dying.
      r.checkpoint_bytes +=
          static_cast<std::int64_t>(ck.iterations - ck_iters_before) *
          spec.block * n * static_cast<int>(sizeof(double));
      ++r.migrations;
      counter("service.migrations", 1);
      if (tracing) {
        span(r.trace_id, obs::derive_span_id(attempt_id, kLossChild),
             attempt_id, "loss", "marker", dev, spec.tenant, e.at(), e.at(),
             "loss", "at=mid-run");
        span(r.trace_id, attempt_id, root, "attempt", "attempt", dev,
             spec.tenant, t0, e.at(), "loss",
             "attempt=" + std::to_string(r.attempts));
      }
      if (r.attempts >= 1 + opt_.max_retries) {
        r.outcome = JobOutcome::ExhaustedRetries;
        r.end_time = e.at();
        r.note = "retry budget exhausted after device loss";
        break;
      }
      counter("service.retries", 1);
      // Deterministic exponential backoff on the virtual clock.
      earliest =
          e.at() + opt_.backoff_base_s * std::ldexp(1.0, r.attempts - 1);
      if (tracing) {
        span(r.trace_id,
             obs::derive_span_id(
                 root, kMigrateChildBase +
                           static_cast<std::uint64_t>(r.migrations)),
             root, "migrate", "migrate", -1, spec.tenant, e.at(), earliest,
             "ok",
             "from=" + std::to_string(dev) + " resume_iterations=" +
                 std::to_string(ck.iterations));
      }
      note(e.at(), "service:migrate",
           "job=" + std::to_string(spec.id) + " from=" +
               std::to_string(dev) + " resume_iters=" +
               std::to_string(ck.iterations) + " not_before=" +
               std::to_string(earliest));
      continue;
    }

    r.end_time = m.host_now();
    r.seconds = res.seconds;
    r.resumed_iterations = res.resumed_iterations;
    r.reruns += res.reruns;
    r.rollbacks += res.rollbacks;
    r.faults_fired += inj.fired_count();
    r.faults_detected += inj.detected_count();
    r.device_seconds += r.end_time - t0;
    r.checkpoint_bytes += res.checkpoint_bytes;
    if (tracing) {
      span(r.trace_id, attempt_id, root, "attempt", "attempt", dev,
           spec.tenant, t0, r.end_time, res.success ? "ok" : "error",
           "attempt=" + std::to_string(r.attempts));
    }
    r.note = res.note;
    if (!res.success) {
      r.outcome = JobOutcome::FailStop;
    } else {
      r.success = true;
      if (numeric) {
        r.residual = blas::cholesky_residual(pristine.view(), a.view());
        // NaN-safe: a NaN residual must read as corrupt.
        r.sdc = !(r.residual < kResidualThreshold);
      }
      r.outcome = r.migrations > 0      ? JobOutcome::Migrated
                  : admitted_degraded   ? JobOutcome::Degraded
                                        : JobOutcome::Completed;
    }
    break;
  }
  if (tracing) {
    span(r.trace_id, obs::derive_span_id(root, kCompleteChild), root,
         "complete", "marker", r.device, spec.tenant, r.end_time, r.end_time,
         to_string(r.outcome), "");
    span(r.trace_id, root, 0, "job", "job", r.device, spec.tenant,
         submit_time, r.end_time, r.success ? "ok" : "error",
         "job=" + std::to_string(spec.id));
  }
  return r;
}

}  // namespace ftla::service
