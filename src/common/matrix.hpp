// Column-major dense matrix container and non-owning views.
//
// All of ftla uses LAPACK conventions: column-major storage with a
// leading dimension (ld >= rows), so a view of any sub-block of a matrix
// is itself a valid view. Element (i, j) of a view v lives at
// v.data()[i + j * v.ld()].
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace ftla {

/// Non-owning mutable view of a column-major block.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FTLA_CHECK(rows >= 0 && cols >= 0 && ld >= std::max(rows, 1));
  }

  [[nodiscard]] T* data() const noexcept { return data_; }
  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] T& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(j) * ld_ + i];
  }

  /// Sub-block view of `r x c` elements starting at element (i, j).
  [[nodiscard]] MatrixView block(int i, int j, int r, int c) const {
    FTLA_CHECK(i >= 0 && j >= 0 && r >= 0 && c >= 0 && i + r <= rows_ &&
               j + c <= cols_);
    return MatrixView(data_ + static_cast<std::size_t>(j) * ld_ + i, r, c,
                      ld_);
  }

  [[nodiscard]] MatrixView col(int j) const { return block(0, j, rows_, 1); }
  [[nodiscard]] MatrixView row(int i) const { return block(i, 0, 1, cols_); }

 private:
  T* data_ = nullptr;
  int rows_ = 0;
  int cols_ = 0;
  int ld_ = 0;
};

/// Non-owning read-only view of a column-major block.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FTLA_CHECK(rows >= 0 && cols >= 0 && ld >= std::max(rows, 1));
  }
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors T* -> const T*.
  ConstMatrixView(MatrixView<T> v)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int ld() const noexcept { return ld_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] const T& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(j) * ld_ + i];
  }

  [[nodiscard]] ConstMatrixView block(int i, int j, int r, int c) const {
    FTLA_CHECK(i >= 0 && j >= 0 && r >= 0 && c >= 0 && i + r <= rows_ &&
               j + c <= cols_);
    return ConstMatrixView(data_ + static_cast<std::size_t>(j) * ld_ + i, r,
                           c, ld_);
  }

 private:
  const T* data_ = nullptr;
  int rows_ = 0;
  int cols_ = 0;
  int ld_ = 0;
};

/// Owning column-major matrix with ld == rows.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, T fill = T{})
      : rows_(rows),
        cols_(cols),
        storage_(static_cast<std::size_t>(rows) * cols, fill) {
    FTLA_CHECK(rows >= 0 && cols >= 0);
  }

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }
  [[nodiscard]] int ld() const noexcept { return rows_; }
  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] T* data() noexcept { return storage_.data(); }
  [[nodiscard]] const T* data() const noexcept { return storage_.data(); }

  [[nodiscard]] T& operator()(int i, int j) {
    return storage_[static_cast<std::size_t>(j) * rows_ + i];
  }
  [[nodiscard]] const T& operator()(int i, int j) const {
    return storage_[static_cast<std::size_t>(j) * rows_ + i];
  }

  [[nodiscard]] MatrixView<T> view() {
    return MatrixView<T>(data(), rows_, cols_, std::max(rows_, 1));
  }
  [[nodiscard]] ConstMatrixView<T> view() const {
    return ConstMatrixView<T>(data(), rows_, cols_, std::max(rows_, 1));
  }
  [[nodiscard]] MatrixView<T> block(int i, int j, int r, int c) {
    return view().block(i, j, r, c);
  }
  [[nodiscard]] ConstMatrixView<T> block(int i, int j, int r, int c) const {
    return view().block(i, j, r, c);
  }

  void fill(T value) { std::fill(storage_.begin(), storage_.end(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.storage_ == b.storage_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> storage_;
};

/// Copies `src` into `dst`; shapes must match (views may have distinct ld).
template <typename T>
void copy(ConstMatrixView<T> src, MatrixView<T> dst) {
  FTLA_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (int j = 0; j < src.cols(); ++j) {
    const T* s = &src(0, j);
    T* d = &dst(0, j);
    std::copy(s, s + src.rows(), d);
  }
}

}  // namespace ftla
