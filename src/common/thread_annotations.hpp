// Clang thread-safety annotations behind portability macros, plus the
// annotated synchronization primitives the concurrency layer builds on.
//
// Under clang, `-Wthread-safety` statically checks that every access to
// a `FTLA_GUARDED_BY(mu)` member happens while `mu` is held and that
// `FTLA_REQUIRES(mu)` functions are only called with the lock taken —
// the machine-checked version of the "thread safety" comment blocks in
// thread_pool.hpp, metrics.hpp, event_sink.hpp and telemetry.hpp. Under
// other compilers every macro expands to nothing.
//
// libstdc++'s std::mutex carries no capability attributes, so the
// analysis cannot see through it. `ftla::common::Mutex` / `MutexLock` /
// `CondVar` are thin annotated wrappers (zero overhead beyond the
// underlying std types) that make the lock structure visible to the
// analysis; annotated code uses them instead of raw std::mutex.
//
// Two deliberate escape hatches, used sparingly and always with a
// comment at the use site:
//   * FTLA_NO_THREAD_SAFETY_ANALYSIS — for protocols the static
//     analysis cannot model (the thread pool's seq/cond-var handshake,
//     two-registry scoped locking);
//   * CondVar::wait models the capability as continuously held across
//     the wait, which is sound for the predicate re-check idiom
//     (`while (!cond) cv.wait(mu);`) it is meant for.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define FTLA_TS_ATTR(x) __attribute__((x))
#else
#define FTLA_TS_ATTR(x)  // no-op outside clang
#endif

#define FTLA_CAPABILITY(x) FTLA_TS_ATTR(capability(x))
#define FTLA_SCOPED_CAPABILITY FTLA_TS_ATTR(scoped_lockable)
#define FTLA_GUARDED_BY(x) FTLA_TS_ATTR(guarded_by(x))
#define FTLA_PT_GUARDED_BY(x) FTLA_TS_ATTR(pt_guarded_by(x))
#define FTLA_ACQUIRE(...) FTLA_TS_ATTR(acquire_capability(__VA_ARGS__))
#define FTLA_RELEASE(...) FTLA_TS_ATTR(release_capability(__VA_ARGS__))
#define FTLA_TRY_ACQUIRE(...) FTLA_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define FTLA_REQUIRES(...) FTLA_TS_ATTR(requires_capability(__VA_ARGS__))
#define FTLA_EXCLUDES(...) FTLA_TS_ATTR(locks_excluded(__VA_ARGS__))
#define FTLA_RETURN_CAPABILITY(x) FTLA_TS_ATTR(lock_returned(x))
#define FTLA_ASSERT_CAPABILITY(x) FTLA_TS_ATTR(assert_capability(x))
#define FTLA_NO_THREAD_SAFETY_ANALYSIS FTLA_TS_ATTR(no_thread_safety_analysis)

namespace ftla::common {

/// std::mutex with the capability attribute the analysis needs.
class FTLA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FTLA_ACQUIRE() { m_.lock(); }
  void unlock() FTLA_RELEASE() { m_.unlock(); }
  bool try_lock() FTLA_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock for Mutex (the annotated std::lock_guard analogue).
class FTLA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FTLA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FTLA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. `wait` atomically releases the
/// mutex while blocking and reacquires it before returning; callers use
/// the predicate-loop idiom directly so every guarded read in the
/// predicate is visibly under the lock:
///
///   MutexLock lk(mu);
///   while (!ready) cv.wait(mu);   // ready is FTLA_GUARDED_BY(mu)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu`; it is released for the duration of the
  /// block and held again on return (the analysis treats it as held
  /// throughout, which is sound for the predicate-loop idiom).
  void wait(Mutex& mu) FTLA_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
    // The predicate loop lives at every call site by the contract
    // above; this wrapper is the loop body, not the loop.
    cv_.wait(lk);  // NOLINT(bugprone-spuriously-wake-up-functions)
    lk.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ftla::common
