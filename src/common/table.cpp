#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace ftla {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FTLA_CHECK(!header_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  FTLA_CHECK_MSG(cells.size() == header_.size(),
                 "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
  return buf;
}

std::string Table::pct(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "+";
    }
    os << '\n';
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ftla
