#include "common/fp.hpp"

namespace ftla {

namespace {
// Maps the double bit pattern onto a monotone integer line so that
// adjacent representable doubles differ by exactly 1.
std::int64_t monotone_key(double x) {
  const auto bits = static_cast<std::int64_t>(double_to_bits(x));
  return bits >= 0 ? bits
                   : std::numeric_limits<std::int64_t>::min() - bits;
}
}  // namespace

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::int64_t ka = monotone_key(a);
  const std::int64_t kb = monotone_key(b);
  return ka >= kb ? static_cast<std::uint64_t>(ka) - static_cast<std::uint64_t>(kb)
                  : static_cast<std::uint64_t>(kb) - static_cast<std::uint64_t>(ka);
}

}  // namespace ftla
