// Process exit-code contract shared by every ftla command-line tool.
//
// Shell scripts and CI jobs branch on these values to tell the honest
// failure mode (fail-stop) from the dangerous one (silent data
// corruption), so every `return` path in a tools/*_cli.cpp main must go
// through one of these constants — a project invariant machine-checked
// by ftla_lint's exit-code-contract rule (docs/static-analysis.md).
//
// Tools whose domain has no fail-stop/SDC axis (e.g. ftla_lint itself)
// still use the shared scale: kExitFailStop doubles as "the tool did its
// job and the verdict is bad" (lint findings, failed replay), keeping
// "4" reserved for SDC everywhere.
#pragma once

namespace ftla::common {

inline constexpr int kExitSuccess = 0;   ///< clean (or expected) outcome
inline constexpr int kExitIoError = 1;   ///< could not read/write a file
inline constexpr int kExitUsage = 2;     ///< bad command line
inline constexpr int kExitFailStop = 3;  ///< run ended in fail-stop /
                                         ///< findings reported
inline constexpr int kExitSdc = 4;       ///< silent data corruption

}  // namespace ftla::common
