// IEEE-754 double utilities: bit-level access (for fault injection),
// ULP distances and tolerance helpers used by the ABFT detectors.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace ftla {

/// Reinterprets a double as its 64-bit pattern.
inline std::uint64_t double_to_bits(double x) {
  return std::bit_cast<std::uint64_t>(x);
}

/// Reinterprets a 64-bit pattern as a double.
inline double bits_to_double(std::uint64_t b) {
  return std::bit_cast<double>(b);
}

/// Flips bit `bit` (0 = LSB of the mantissa, 63 = sign) of `x`.
inline double flip_bit(double x, int bit) {
  FTLA_CHECK(bit >= 0 && bit < 64);
  return bits_to_double(double_to_bits(x) ^ (1ULL << bit));
}

/// Number of representable doubles strictly between a and b (saturating),
/// or UINT64_MAX if either input is NaN.
std::uint64_t ulp_distance(double a, double b);

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
inline bool approx_equal(double a, double b, double rtol,
                         double atol = 0.0) {
  const double diff = std::abs(a - b);
  return diff <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

/// Machine epsilon for double.
inline constexpr double kEps = std::numeric_limits<double>::epsilon();

}  // namespace ftla
