#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

namespace ftla::common {

namespace {
thread_local bool t_in_pool_body = false;
}  // namespace

struct ThreadPool::Impl {
  // Job state: one job at a time, guarded by submit_mu. Workers claim
  // [next, next+grain) slices with a fetch_add; a lane that claimed a
  // slice holds `working` until its body calls return. Claims are
  // impossible once next >= end, so a late-waking worker can never
  // touch a job whose submitter already returned.
  Mutex mu;
  CondVar cv_work;
  CondVar cv_done;
  Mutex submit_mu;

  // body/end/grain are published under `mu` before `seq` is bumped and
  // stay frozen until the submitter has seen every lane drain (cv_done
  // under `mu`), which is why run_slices may read them lock-free.
  const std::function<void(std::int64_t, std::int64_t)>* body
      FTLA_GUARDED_BY(mu) = nullptr;
  std::int64_t end FTLA_GUARDED_BY(mu) = 0;
  std::int64_t grain FTLA_GUARDED_BY(mu) = 1;
  std::atomic<std::int64_t> next{0};
  std::atomic<int> working{0};
  std::uint64_t seq FTLA_GUARDED_BY(mu) = 0;
  bool stop FTLA_GUARDED_BY(mu) = false;

  std::vector<std::thread> workers;

  // Reads body/end/grain without holding `mu`: safe under the publish
  // protocol above (acquire via the seq handshake, frozen until every
  // lane drained), but outside what the static analysis can model.
  void run_slices() FTLA_NO_THREAD_SAFETY_ANALYSIS {
    t_in_pool_body = true;
    for (;;) {
      const std::int64_t lo = next.fetch_add(grain);
      if (lo >= end) break;
      const std::int64_t hi = lo + grain < end ? lo + grain : end;
      (*body)(lo, hi);
    }
    t_in_pool_body = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        MutexLock lk(mu);
        while (!stop && seq == seen) cv_work.wait(mu);
        if (stop) return;
        seen = seq;
        if (next.load(std::memory_order_relaxed) >= end) continue;
        working.fetch_add(1, std::memory_order_relaxed);
      }
      run_slices();
      {
        MutexLock lk(mu);
        if (working.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          cv_done.notify_all();
        }
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = hardware_threads();
  lanes_ = threads < 1 ? 1 : threads;
  impl_ = new Impl;
  for (int i = 1; i < lanes_; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

bool ThreadPool::in_parallel_region() noexcept { return t_in_pool_body; }

void ThreadPool::parallel_for_chunks(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (end <= begin) return;
  // Nesting ban: a submission from inside any pool body runs inline so
  // nested parallelism can neither oversubscribe nor deadlock.
  if (lanes_ <= 1 || t_in_pool_body) {
    body(begin, end);
    return;
  }
  const std::int64_t count = end - begin;
  const std::int64_t grain = (count + lanes_ - 1) / lanes_;

  MutexLock submit(impl_->submit_mu);
  {
    MutexLock lk(impl_->mu);
    impl_->body = &body;
    impl_->end = end;
    impl_->grain = grain;
    impl_->next.store(begin, std::memory_order_relaxed);
    ++impl_->seq;
  }
  impl_->cv_work.notify_all();
  impl_->run_slices();  // the caller is a lane too
  {
    MutexLock lk(impl_->mu);
    while (impl_->next.load(std::memory_order_relaxed) < impl_->end ||
           impl_->working.load(std::memory_order_acquire) != 0) {
      impl_->cv_done.wait(impl_->mu);
    }
    impl_->body = nullptr;
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t)>& body) {
  if (end <= begin) return;
  if (lanes_ <= 1 || t_in_pool_body) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Grain of 1: indices are claimed one at a time, which load-balances
  // tasks of very uneven cost (fault-campaign scenarios).
  const std::function<void(std::int64_t, std::int64_t)> chunk =
      [&body](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      };
  MutexLock submit(impl_->submit_mu);
  {
    MutexLock lk(impl_->mu);
    impl_->body = &chunk;
    impl_->end = end;
    impl_->grain = 1;
    impl_->next.store(begin, std::memory_order_relaxed);
    ++impl_->seq;
  }
  impl_->cv_work.notify_all();
  impl_->run_slices();
  {
    MutexLock lk(impl_->mu);
    while (impl_->next.load(std::memory_order_relaxed) < impl_->end ||
           impl_->working.load(std::memory_order_acquire) != 0) {
      impl_->cv_done.wait(impl_->mu);
    }
    impl_->body = nullptr;
  }
}

int hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

Mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool FTLA_GUARDED_BY(g_pool_mu);
int g_pool_lanes FTLA_GUARDED_BY(g_pool_mu) = 0;  // 0 = unconfigured

int env_default_threads() {
  if (const char* env = std::getenv("FTLA_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
    if (n == 0) return hardware_threads();
  }
  return 1;
}

}  // namespace

ThreadPool& global_pool() {
  MutexLock lk(g_pool_mu);
  if (!g_pool) {
    g_pool_lanes = env_default_threads();
    g_pool = std::make_unique<ThreadPool>(g_pool_lanes);
  }
  return *g_pool;
}

int global_threads() noexcept {
  MutexLock lk(g_pool_mu);
  if (g_pool) return g_pool_lanes;
  return env_default_threads();
}

void set_global_threads(int threads) {
  if (threads <= 0) threads = hardware_threads();
  MutexLock lk(g_pool_mu);
  if (g_pool && g_pool_lanes == threads) return;
  g_pool.reset();  // joins workers before the replacement spins up
  g_pool_lanes = threads;
  g_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace ftla::common
