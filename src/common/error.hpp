// Error handling primitives shared by every ftla module.
//
// The library distinguishes programming errors (precondition violations,
// reported via FTLA_CHECK / FTLA_BOUNDS_CHECK and always fatal) from
// runtime conditions that callers are expected to handle (reported via
// typed exceptions derived from ftla::Error).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ftla {

/// Base class for all recoverable ftla runtime errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a matrix that must be symmetric positive definite is not
/// (e.g. POTF2 encounters a non-positive pivot). In the fault-tolerance
/// drivers this typically signals an uncorrected storage error that broke
/// positive definiteness — the paper's "fail-stop" scenario.
class NotPositiveDefiniteError : public Error {
 public:
  explicit NotPositiveDefiniteError(int column)
      : Error("matrix is not positive definite at column " +
              std::to_string(column)),
        column_(column) {}
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int column_;
};

/// Thrown by ABFT verification when a corrupted block cannot be repaired
/// from its checksums (more than one error per block column, or corrupted
/// data discovered after it already propagated). Drivers respond by
/// re-running the factorization, exactly as the paper's Offline/Online
/// baselines must.
class UnrecoverableCorruptionError : public Error {
 public:
  explicit UnrecoverableCorruptionError(const std::string& what)
      : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "FTLA_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace detail

/// Precondition check: always on (cheap compared to the O(n^3) work this
/// library performs). Failure indicates a bug in the caller and aborts.
#define FTLA_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::ftla::detail::check_failed(__FILE__, __LINE__, #expr, "");        \
  } while (0)

#define FTLA_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::ftla::detail::check_failed(__FILE__, __LINE__, #expr, (msg));     \
  } while (0)

}  // namespace ftla
