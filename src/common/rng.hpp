// Deterministic, fast pseudo-random number generation.
//
// ftla never uses std::random_device or wall-clock seeding: every
// workload, fault plan and test is reproducible from an explicit 64-bit
// seed. The generator is xoshiro256++ (public domain, Blackman & Vigna)
// seeded through SplitMix64.
#pragma once

#include <cmath>
#include <cstdint>

namespace ftla {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ with convenience helpers for the distributions ftla needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n) for n > 0 (unbiased via rejection).
  std::uint64_t next_below(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return lo +
           static_cast<int>(next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * m;
    have_cached_ = true;
    return u * m;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace ftla
