// Generators for the workloads the paper factorizes: random symmetric
// positive-definite matrices, plus structured instances (Kalman-filter
// covariances, least-squares normal equations) used by the examples.
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace ftla {

/// Fills `a` (n x n) with a random SPD matrix: A = G G^T + n * I where G
/// has i.i.d. uniform(-1,1) entries. The n*I shift keeps the condition
/// number moderate so factorizations of large test matrices stay stable.
void make_spd(Matrix<double>& a, std::uint64_t seed);

/// Diagonally dominant SPD matrix with unit off-diagonal scale; cheaper
/// than make_spd (O(n^2) instead of O(n^3)) — preferred for large n.
void make_spd_diag_dominant(Matrix<double>& a, std::uint64_t seed);

/// SPD covariance-like matrix with exponentially decaying correlations,
/// a_ij = s_i * s_j * rho^|i-j|; typical of Kalman-filter workloads.
void make_spd_exponential(Matrix<double>& a, double rho, std::uint64_t seed);

/// Normal-equations matrix A = X^T X (+ small ridge) for a random
/// least-squares design matrix X (m x n, m >= n).
void make_normal_equations(Matrix<double>& a, int m, std::uint64_t seed);

/// Random general matrix with i.i.d. uniform(-1, 1) entries.
void make_uniform(Matrix<double>& a, std::uint64_t seed);

}  // namespace ftla
