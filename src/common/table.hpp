// Minimal console table / CSV formatter used by the experiment harnesses
// in bench/ to print paper-style tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ftla {

/// Accumulates rows of strings and prints them with aligned columns.
/// Also supports CSV emission so figure data can be re-plotted.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Formats a double with `prec` significant digits.
  static std::string num(double v, int prec = 4);
  /// Formats a percentage like "5.32%".
  static std::string pct(double fraction, int prec = 2);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftla
