// Streaming statistics accumulator (Welford) used by benches and the
// simulator's per-resource utilization reports, plus a fixed-bucket
// histogram with percentile estimation for the observability layer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace ftla {

class Stats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] long long count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Rebuilds an accumulator from closed-form moments (used by
  /// Histogram::merge, which combines two Welford streams exactly).
  static Stats from_moments(long long n, double mean, double m2, double sum,
                            double min, double max) {
    Stats s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.sum_ = sum;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  long long n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram: bucket boundaries are chosen at construction
/// and never move, so two histograms with identical edges merge exactly
/// (the property the metrics registry relies on). Bucket i holds samples
/// with x <= edges[i] (first matching bucket); one implicit overflow
/// bucket catches everything above the last edge.
///
/// Percentile contract (deterministic nearest-rank): for p > 0,
/// percentile(p) is the upper edge of the bucket containing the sample
/// of rank max(1, ceil(p/100 * count)), clamped to [min(), max()];
/// percentile(0) is exactly min() (the rank-0 convention). Properties
/// exporters and their tests rely on:
///   * pure function of (edges, hits, min, max) — two histograms with
///     the same state report byte-identical percentiles, and a merge of
///     partial streams matches the single-stream histogram exactly;
///   * no interpolation, so no accumulation-order float sensitivity;
///   * edge cases: empty -> 0; a single sample or an all-equal stream
///     collapses to that value via the min/max clamp (the overflow
///     bucket's +inf upper bound clamps to max()).
class Histogram {
 public:
  /// Default edges: 2-per-decade log spacing over [1e-9, 1e3] seconds —
  /// wide enough for virtual-time latencies from sub-microsecond kernel
  /// gaps to full paper-scale factorizations.
  Histogram() : Histogram(log_edges(1e-9, 1e3, 2)) {}

  /// `upper_edges` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_edges)
      : edges_(std::move(upper_edges)), hits_(edges_.size() + 1, 0) {
    FTLA_CHECK(!edges_.empty());
    for (std::size_t i = 1; i < edges_.size(); ++i) {
      FTLA_CHECK(edges_[i - 1] < edges_[i]);
    }
  }

  /// Log-spaced edges covering [lo, hi] with `per_decade` buckets per
  /// factor of 10.
  static std::vector<double> log_edges(double lo, double hi,
                                       int per_decade) {
    FTLA_CHECK(lo > 0.0 && hi > lo && per_decade >= 1);
    std::vector<double> edges;
    const double step = std::pow(10.0, 1.0 / per_decade);
    for (double e = lo; e < hi * (1.0 + 1e-12); e *= step) edges.push_back(e);
    return edges;
  }

  void add(double x) {
    stats_.add(x);
    ++hits_[bucket_index(x)];
  }

  [[nodiscard]] long long count() const noexcept { return stats_.count(); }
  [[nodiscard]] double sum() const noexcept { return stats_.sum(); }
  [[nodiscard]] double mean() const noexcept { return stats_.mean(); }
  [[nodiscard]] double min() const noexcept { return stats_.min(); }
  [[nodiscard]] double max() const noexcept { return stats_.max(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return hits_.size();
  }
  /// Inclusive upper bound of bucket i (+inf for the overflow bucket).
  [[nodiscard]] double bucket_upper(std::size_t i) const {
    return i < edges_.size() ? edges_[i]
                             : std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] long long bucket_hits(std::size_t i) const {
    return hits_[i];
  }
  [[nodiscard]] const std::vector<double>& edges() const noexcept {
    return edges_;
  }

  /// Nearest-rank percentile for p in [0, 100]; 0 when empty. See the
  /// class comment for the full contract.
  [[nodiscard]] double percentile(double p) const {
    const long long n = count();
    if (n == 0) return 0.0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    if (clamped == 0.0) return min();
    long long rank = static_cast<long long>(
        std::ceil(clamped / 100.0 * static_cast<double>(n)));
    rank = std::clamp(rank, 1LL, n);
    long long cum = 0;
    for (std::size_t i = 0; i < hits_.size(); ++i) {
      cum += hits_[i];
      if (cum >= rank) {
        return std::clamp(bucket_upper(i), min(), max());
      }
    }
    return max();  // unreachable: cum == n covers every rank
  }
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  /// Merge another histogram with identical edges.
  void merge(const Histogram& other) {
    FTLA_CHECK_MSG(edges_ == other.edges_,
                   "histogram merge requires identical bucket edges");
    for (std::size_t i = 0; i < hits_.size(); ++i) hits_[i] += other.hits_[i];
    // Welford streams do not compose exactly; fold the scalar summary by
    // replaying the closed-form merge for count/mean/M2.
    merge_stats(other.stats_);
  }

 private:
  [[nodiscard]] std::size_t bucket_index(double x) const {
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
    return static_cast<std::size_t>(it - edges_.begin());
  }

  // Chan et al. parallel merge of two (count, mean, M2) Welford streams.
  void merge_stats(const Stats& o) {
    const long long na = stats_.count();
    const long long nb = o.count();
    if (nb == 0) return;
    if (na == 0) {
      stats_ = o;
      return;
    }
    const double delta = o.mean() - stats_.mean();
    const double mean =
        stats_.mean() + delta * static_cast<double>(nb) /
                            static_cast<double>(na + nb);
    const double m2 = stats_.variance() * static_cast<double>(na - 1) +
                      o.variance() * static_cast<double>(nb - 1) +
                      delta * delta * static_cast<double>(na) *
                          static_cast<double>(nb) /
                          static_cast<double>(na + nb);
    stats_ = Stats::from_moments(na + nb, mean, m2, stats_.sum() + o.sum(),
                                 std::min(stats_.min(), o.min()),
                                 std::max(stats_.max(), o.max()));
  }

  std::vector<double> edges_;
  std::vector<long long> hits_;
  Stats stats_;
};

}  // namespace ftla
