// Streaming statistics accumulator (Welford) used by benches and the
// simulator's per-resource utilization reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace ftla {

class Stats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] long long count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  long long n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ftla
