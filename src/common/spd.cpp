#include "common/spd.hpp"

#include <cmath>

namespace ftla {

void make_uniform(Matrix<double>& a, std::uint64_t seed) {
  Rng rng(seed);
  double* p = a.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = rng.uniform(-1.0, 1.0);
}

void make_spd(Matrix<double>& a, std::uint64_t seed) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  Matrix<double> g(n, n);
  make_uniform(g, seed);
  // A = G G^T + n I, computed symmetrically (lower half then mirrored).
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double s = 0.0;
      for (int k = 0; k < n; ++k) s += g(i, k) * g(j, k);
      if (i == j) s += n;
      a(i, j) = s;
      a(j, i) = s;
    }
  }
}

void make_spd_diag_dominant(Matrix<double>& a, std::uint64_t seed) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  Rng rng(seed);
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  // Each diagonal entry strictly dominates its row: SPD by Gershgorin.
  for (int i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j != i) row_sum += std::abs(a(i, j));
    }
    a(i, i) = row_sum + 1.0 + rng.next_double();
  }
}

void make_spd_exponential(Matrix<double>& a, double rho, std::uint64_t seed) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n);
  FTLA_CHECK(rho > -1.0 && rho < 1.0);
  Rng rng(seed);
  std::vector<double> scale(static_cast<std::size_t>(n));
  for (auto& s : scale) s = rng.uniform(0.5, 2.0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      a(i, j) = scale[i] * scale[j] * std::pow(rho, std::abs(i - j));
    }
  }
}

void make_normal_equations(Matrix<double>& a, int m, std::uint64_t seed) {
  const int n = a.rows();
  FTLA_CHECK(a.cols() == n && m >= n);
  Matrix<double> x(m, n);
  make_uniform(x, seed);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double s = 0.0;
      for (int k = 0; k < m; ++k) s += x(k, i) * x(k, j);
      if (i == j) s += 1e-3 * m;  // ridge keeps A comfortably SPD
      a(i, j) = s;
      a(j, i) = s;
    }
  }
}

}  // namespace ftla
