// Shared host thread pool: parallel-for over index ranges.
//
// One pool serves every parallel host path in ftla — the blocked level-3
// BLAS (parallel over MC row panels), checksum block recalculation (the
// host-side analogue of the paper's Opt-1 concurrent-recalc streams),
// and the fault-campaign scenario executor. Usage rules (enforced, see
// docs/performance.md):
//
//   * Only non-pool threads may submit work. A parallel_for issued from
//     inside a pool body (any pool's body) runs INLINE on the calling
//     worker — nesting never spawns nested parallelism and never
//     deadlocks, and a worker-thread caller observes serial semantics.
//   * Bodies must not throw: exceptions cannot cross the pool boundary
//     and will terminate the process.
//   * Work partitioning never changes the result: each index (or chunk)
//     is executed exactly once by exactly one thread, so any body whose
//     per-index work is independent is bit-deterministic regardless of
//     the thread count.
//
// The pool's internal locking is written against the annotated
// primitives in common/thread_annotations.hpp, so clang's
// `-Wthread-safety` checks the guarded state machine on every build
// (see docs/static-analysis.md); the lock-free slice loop documents its
// publish protocol at the one place the analysis is waived.
#pragma once

#include <cstdint>
#include <functional>

namespace ftla::common {

class ThreadPool {
 public:
  /// `threads` is the total lane count including the submitting thread;
  /// <= 1 means no workers (everything runs inline) and 0 means "use
  /// hardware_threads()".
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (worker threads + the submitting caller); always >= 1.
  [[nodiscard]] int threads() const noexcept { return lanes_; }

  /// Runs body(i) for every i in [begin, end), distributing indices
  /// dynamically across lanes (the caller participates). Blocks until
  /// every index has completed. Indices are claimed one at a time, so
  /// use this for coarse tasks (scenarios, blocks), not tight loops.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& body);

  /// Runs body(lo, hi) over a static partition of [begin, end) into
  /// ~threads() contiguous chunks. Each chunk is claimed by exactly one
  /// lane, which lets the body reuse per-chunk scratch (e.g. a packed
  /// panel buffer) across the chunk's indices.
  void parallel_for_chunks(
      std::int64_t begin, std::int64_t end,
      const std::function<void(std::int64_t, std::int64_t)>& body);

  /// True while the calling thread is executing inside any pool body
  /// (used to run nested submissions inline).
  static bool in_parallel_region() noexcept;

 private:
  struct Impl;
  Impl* impl_;
  int lanes_ = 1;
};

/// std::thread::hardware_concurrency() with a floor of 1.
[[nodiscard]] int hardware_threads() noexcept;

/// The process-wide pool used by the BLAS and checksum layers. Starts
/// with FTLA_THREADS lanes (default 1 — fully serial) on first use.
ThreadPool& global_pool();

/// Lane count of the global pool (>= 1) without forcing construction of
/// worker threads when it was never configured.
[[nodiscard]] int global_threads() noexcept;

/// Rebuilds the global pool with `threads` lanes (0 = hardware). Must
/// not be called while any pool work is in flight.
void set_global_threads(int threads);

}  // namespace ftla::common
