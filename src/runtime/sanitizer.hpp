// Dynamic footprint sanitizer for the task-graph runtime.
//
// The runtime infers every RAW/WAR/WAW edge from *declared* tile
// footprints (graph.hpp), so its soundness rests entirely on those
// declarations being complete: a body touching an undeclared tile is a
// silent race that no schedule can be blamed for — the eager-at-issue
// numeric bodies mask it on every run that happens to issue in a safe
// order. The AccessTracker closes that gap dynamically. Arm it with
// TaskGraph::set_access_tracker (the DAG drivers arm it when
// FTLA_DAG_SANITIZE is set in the environment); executors then hand
// every body a recording TileAccessor through TaskContext::tiles, and
// each recorded access is checked two ways:
//
//   * containment — the access must be covered by the task's declared
//     footprint (a Read may also hit a declared Write tile after the
//     task's own write: the scratch idiom);
//   * ordering — per-tile "vector clocks" (ancestor bitsets over task
//     ids, i.e. the inferred happens-before relation) must order the
//     access against every conflicting access already recorded on the
//     tile; an unordered conflicting pair is a race.
//
// Violations carry task names, tile keys, and the executed schedule
// prefix at detection time, and report() renders them as one
// deterministic, actionable block of text. Recording is thread-safe so
// the wave-parallel host executor can run sanitized. See
// docs/static-analysis.md ("Dynamic DAG sanitizer").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "runtime/graph.hpp"

namespace ftla::runtime {

enum class ViolationKind {
  UndeclaredRead,   ///< body read a tile outside its declared footprint
  UndeclaredWrite,  ///< body wrote a tile outside its declared footprint
  Race,             ///< conflicting accesses not ordered by happens-before
};

struct Violation {
  ViolationKind kind = ViolationKind::UndeclaredRead;
  int task = -1;   ///< offending task (the later access for races)
  int other = -1;  ///< the unordered peer task (Race only)
  TileKey tile;
  Access access = Access::Read;  ///< what the body actually did
  /// Length of the executed-order prefix (see schedule_prefix()) when
  /// the violation was detected — the report shows these tasks as the
  /// offending schedule prefix.
  int prefix = 0;
};

/// Collects dynamic accesses for one graph execution and checks them
/// against the declared footprints and inferred happens-before order.
/// Reusable: begin_run resets all state for a fresh execution.
class AccessTracker {
 public:
  /// Snapshots the graph's declared footprints and computes per-task
  /// ancestor bitsets (the happens-before relation). Call before
  /// executing; the executors do this when the tracker is armed.
  void begin_run(const TaskGraph& graph);

  /// Marks the task as issued (appends to the executed-order prefix).
  void begin_task(int task);

  /// Records one dynamic access; checks containment and ordering.
  /// Called through TileAccessor from task bodies.
  void record(int task, TileKey tile, Access access);

  [[nodiscard]] bool clean() const;
  [[nodiscard]] std::vector<Violation> violations() const;
  /// Tasks in the order they were issued, up to `len` (-1 = all).
  [[nodiscard]] std::vector<int> schedule_prefix(int len = -1) const;
  [[nodiscard]] std::int64_t accesses() const;

  /// Deterministic human-readable account of every violation: task
  /// names, tile keys, declared footprints, and the offending schedule
  /// prefix. Empty string when clean. `graph` must be the graph passed
  /// to begin_run.
  [[nodiscard]] std::string report(const TaskGraph& graph) const;

 private:
  struct Recorded {
    int task = -1;
    Access access = Access::Read;
  };

  [[nodiscard]] bool happens_before_locked(int a, int b) const
      FTLA_REQUIRES(mu_);
  void check_containment_locked(int task, TileKey tile, Access access)
      FTLA_REQUIRES(mu_);
  void check_order_locked(int task, TileKey tile, Access access)
      FTLA_REQUIRES(mu_);
  void add_violation_locked(Violation v) FTLA_REQUIRES(mu_);

  mutable common::Mutex mu_;
  int tasks_ FTLA_GUARDED_BY(mu_) = 0;
  /// Declared footprint per task, sorted by tile for binary search.
  std::vector<std::vector<Footprint>> declared_ FTLA_GUARDED_BY(mu_);
  /// Ancestor bitset per task over task ids: bit a set in ancestors_[b]
  /// iff a happens-before b through the graph's edges.
  std::vector<std::vector<std::uint64_t>> ancestors_ FTLA_GUARDED_BY(mu_);
  /// Per-tile dynamic access history, sorted by tile key.
  std::vector<std::pair<TileKey, std::vector<Recorded>>> history_
      FTLA_GUARDED_BY(mu_);
  std::vector<int> executed_ FTLA_GUARDED_BY(mu_);
  std::vector<Violation> violations_ FTLA_GUARDED_BY(mu_);
  std::int64_t accesses_ FTLA_GUARDED_BY(mu_) = 0;
};

/// True when FTLA_DAG_SANITIZE is set in the environment to anything
/// other than "" or "0" — the DAG drivers' opt-in switch.
[[nodiscard]] bool sanitize_env_enabled();

/// Formats a tile key as e.g. "tile(2:1,3)" (matrix:row,col).
[[nodiscard]] std::string tile_name(TileKey t);

}  // namespace ftla::runtime
