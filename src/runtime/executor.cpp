#include "runtime/executor.hpp"

#include <cstddef>

namespace ftla::runtime {

void run_on_host(const TaskGraph& graph, const HostRunOptions& opts) {
  const auto waves = graph.waves();  // throws CycleError up front
  common::ThreadPool* pool =
      opts.pool != nullptr ? opts.pool : &common::global_pool();
  for (const std::vector<int>& wave : waves) {
    pool->parallel_for(0, static_cast<std::int64_t>(wave.size()),
                       [&](std::int64_t i) {
                         const int id = wave[static_cast<std::size_t>(i)];
                         TaskContext ctx;
                         ctx.task = id;
                         graph.node(id).body(ctx);
                       });
  }
  if (opts.metrics != nullptr) {
    opts.metrics->add_counter("runtime.host.tasks", graph.size());
    opts.metrics->add_counter("runtime.host.waves",
                              static_cast<long long>(waves.size()));
  }
}

StreamRunStats run_on_streams(const TaskGraph& graph, sim::Machine& machine,
                              const StreamRunOptions& opts) {
  const std::vector<int> order = graph.schedule();  // throws CycleError
  std::vector<sim::StreamId> pool = opts.streams;
  if (pool.empty()) pool.push_back(machine.default_stream());

  StreamRunStats stats;
  stats.tasks = graph.size();
  stats.edges = graph.edge_count();

  // Per-node completion event, the stream it was recorded on, and the
  // producer stream's end time at issue (-1 event = no event: Host and
  // Inline tasks order via the host clock, and terminal Device tasks
  // skip the record — the caller's final sync covers them).
  //
  // Wait elision: every stream_wait_event / record_event costs one host
  // call (profile.host_call_overhead_s), and dense iterations produce
  // tasks with dozens of predecessors that are long retired. A wait is
  // a timing no-op whenever the producer's kernels ended at or before
  // the consumer stream's current end — the event's host-clock
  // component is always dominated by the consumer's own (monotonically
  // later) issue time — so those waits are skipped instead of issued.
  std::vector<sim::EventId> events(static_cast<std::size_t>(graph.size()), -1);
  std::vector<sim::StreamId> on(static_cast<std::size_t>(graph.size()), -1);
  std::vector<double> ends(static_cast<std::size_t>(graph.size()), 0.0);

  for (const int id : order) {
    const TaskNode& node = graph.node(id);
    if (opts.profile != nullptr) opts.profile->set_iteration(node.opts.iteration);
    obs::TaskScope task_scope(opts.profile, id);
    obs::PhaseScope phase_scope(opts.profile, node.opts.phase);

    TaskContext ctx;
    ctx.task = id;
    switch (node.opts.where) {
      case Where::Inline:
        ++stats.inline_tasks;
        node.body(ctx);
        break;
      case Where::Host: {
        ++stats.host_tasks;
        for (const int p : node.preds) {
          const sim::EventId e = events[static_cast<std::size_t>(p)];
          if (e < 0) continue;  // host/inline pred: host clock orders us
          if (ends[static_cast<std::size_t>(p)] <= machine.host_now()) {
            ++stats.syncs_elided;
            continue;
          }
          machine.sync_event(e);
          ++stats.host_syncs;
        }
        node.body(ctx);
        break;
      }
      case Where::Device: {
        ++stats.device_tasks;
        sim::StreamId s = pool.front();
        for (const sim::StreamId cand : pool) {
          if (machine.stream_end(cand) < machine.stream_end(s)) s = cand;
        }
        for (const int p : node.preds) {
          const sim::EventId e = events[static_cast<std::size_t>(p)];
          if (e < 0) continue;  // host/inline pred: host clock orders us
          if (on[static_cast<std::size_t>(p)] == s) continue;  // FIFO order
          if (ends[static_cast<std::size_t>(p)] <= machine.stream_end(s)) {
            ++stats.waits_elided;
            continue;
          }
          machine.stream_wait_event(s, e);
          ++stats.stream_waits;
        }
        ctx.stream = s;
        node.body(ctx);
        if (!node.succs.empty()) {
          events[static_cast<std::size_t>(id)] = machine.record_event(s);
        }
        on[static_cast<std::size_t>(id)] = s;
        ends[static_cast<std::size_t>(id)] = machine.stream_end(s);
        break;
      }
    }
  }
  if (opts.profile != nullptr) opts.profile->set_iteration(-1);

  if (opts.metrics != nullptr) {
    opts.metrics->add_counter("runtime.tasks", stats.tasks);
    opts.metrics->add_counter("runtime.tasks_device", stats.device_tasks);
    opts.metrics->add_counter("runtime.tasks_host", stats.host_tasks);
    opts.metrics->add_counter("runtime.tasks_inline", stats.inline_tasks);
    opts.metrics->add_counter("runtime.edges", stats.edges);
    opts.metrics->add_counter("runtime.stream_waits", stats.stream_waits);
    opts.metrics->add_counter("runtime.host_syncs", stats.host_syncs);
    opts.metrics->add_counter("runtime.waits_elided", stats.waits_elided);
    opts.metrics->add_counter("runtime.syncs_elided", stats.syncs_elided);
  }
  return stats;
}

}  // namespace ftla::runtime
