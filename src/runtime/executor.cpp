#include "runtime/executor.hpp"

#include <cstddef>
#include <exception>

#include "common/thread_annotations.hpp"
#include "runtime/sanitizer.hpp"

namespace ftla::runtime {

void run_on_host(const TaskGraph& graph, const HostRunOptions& opts) {
  const auto waves = graph.waves();  // throws CycleError up front
  common::ThreadPool* pool =
      opts.pool != nullptr ? opts.pool : &common::global_pool();
  AccessTracker* tracker = graph.access_tracker();
  if (tracker != nullptr) tracker->begin_run(graph);

  // First-failure capture for wave-parallel bodies: workers publish the
  // first exception here under the mutex; once a failure is recorded
  // the remaining tasks are skipped (their inputs may be garbage) and
  // the exception is rethrown after the in-flight wave drains.
  struct Failure {
    common::Mutex mu;
    bool failed FTLA_GUARDED_BY(mu) = false;
    std::exception_ptr first FTLA_GUARDED_BY(mu);
  } failure;

  for (const std::vector<int>& wave : waves) {
    pool->parallel_for(0, static_cast<std::int64_t>(wave.size()),
                       [&](std::int64_t i) {
                         {
                           common::MutexLock lk(failure.mu);
                           if (failure.failed) return;
                         }
                         const int id = wave[static_cast<std::size_t>(i)];
                         if (tracker != nullptr) tracker->begin_task(id);
                         TaskContext ctx;
                         ctx.task = id;
                         ctx.tiles = TileAccessor{tracker, id};
                         try {
                           graph.node(id).body(ctx);
                         } catch (...) {
                           common::MutexLock lk(failure.mu);
                           failure.failed = true;
                           if (failure.first == nullptr) {
                             failure.first = std::current_exception();
                           }
                         }
                       });
    common::MutexLock lk(failure.mu);
    if (failure.failed) break;
  }

  if (opts.metrics != nullptr) {
    opts.metrics->add_counter("runtime.host.tasks", graph.size());
    opts.metrics->add_counter("runtime.host.waves",
                              static_cast<long long>(waves.size()));
    if (tracker != nullptr) {
      opts.metrics->add_counter("runtime.sanitize.accesses",
                                tracker->accesses());
      opts.metrics->add_counter(
          "runtime.sanitize.violations",
          static_cast<long long>(tracker->violations().size()));
    }
  }

  std::exception_ptr first;
  {
    common::MutexLock lk(failure.mu);
    first = failure.first;
  }
  if (first != nullptr) std::rethrow_exception(first);
}

StreamRunStats run_on_streams(const TaskGraph& graph, sim::Machine& machine,
                              const StreamRunOptions& opts) {
  const std::vector<int> order =
      opts.schedule_seed != 0 ? graph.random_schedule(opts.schedule_seed)
                              : graph.schedule();  // throws CycleError
  std::vector<sim::StreamId> pool = opts.streams;
  if (pool.empty()) pool.push_back(machine.default_stream());

  AccessTracker* tracker = graph.access_tracker();
  if (tracker != nullptr) tracker->begin_run(graph);

  StreamRunStats stats;
  stats.tasks = graph.size();
  stats.edges = graph.edge_count();

  // Per-node completion event, the stream it was recorded on, and the
  // producer stream's end time at issue (-1 event = no event: Host and
  // Inline tasks order via the host clock, and terminal Device tasks
  // skip the record — the caller's final sync covers them).
  //
  // Wait elision: every stream_wait_event / record_event costs one host
  // call (profile.host_call_overhead_s), and dense iterations produce
  // tasks with dozens of predecessors that are long retired. A wait is
  // a timing no-op whenever the producer's kernels ended at or before
  // the consumer stream's current end — the event's host-clock
  // component is always dominated by the consumer's own (monotonically
  // later) issue time — so those waits are skipped instead of issued.
  std::vector<sim::EventId> events(static_cast<std::size_t>(graph.size()), -1);
  std::vector<sim::StreamId> on(static_cast<std::size_t>(graph.size()), -1);
  std::vector<double> ends(static_cast<std::size_t>(graph.size()), 0.0);

  const bool tracing = opts.trace != nullptr && opts.trace_ctx.valid();

  for (const int id : order) {
    const TaskNode& node = graph.node(id);
    if (opts.profile != nullptr) opts.profile->set_iteration(node.opts.iteration);
    obs::TaskScope task_scope(opts.profile, id);
    obs::PhaseScope phase_scope(opts.profile, node.opts.phase);

    if (tracker != nullptr) tracker->begin_task(id);
    TaskContext ctx;
    ctx.task = id;
    ctx.tiles = TileAccessor{tracker, id};
    double span_begin = 0.0;
    double span_end = 0.0;
    switch (node.opts.where) {
      case Where::Inline:
        ++stats.inline_tasks;
        span_begin = machine.host_now();
        node.body(ctx);
        span_end = span_begin;
        break;
      case Where::Host: {
        ++stats.host_tasks;
        for (const int p : node.preds) {
          const sim::EventId e = events[static_cast<std::size_t>(p)];
          if (e < 0) continue;  // host/inline pred: host clock orders us
          if (ends[static_cast<std::size_t>(p)] <= machine.host_now()) {
            ++stats.syncs_elided;
            continue;
          }
          machine.sync_event(e);
          ++stats.host_syncs;
        }
        span_begin = machine.host_now();
        node.body(ctx);
        span_end = machine.host_now();
        break;
      }
      case Where::Device: {
        ++stats.device_tasks;
        sim::StreamId s = pool.front();
        for (const sim::StreamId cand : pool) {
          if (machine.stream_end(cand) < machine.stream_end(s)) s = cand;
        }
        for (const int p : node.preds) {
          const sim::EventId e = events[static_cast<std::size_t>(p)];
          if (e < 0) continue;  // host/inline pred: host clock orders us
          if (on[static_cast<std::size_t>(p)] == s) continue;  // FIFO order
          if (ends[static_cast<std::size_t>(p)] <= machine.stream_end(s)) {
            ++stats.waits_elided;
            continue;
          }
          machine.stream_wait_event(s, e);
          ++stats.stream_waits;
        }
        ctx.stream = s;
        span_begin = machine.stream_end(s);
        node.body(ctx);
        span_end = machine.stream_end(s);
        if (!node.succs.empty()) {
          events[static_cast<std::size_t>(id)] = machine.record_event(s);
        }
        on[static_cast<std::size_t>(id)] = s;
        ends[static_cast<std::size_t>(id)] = machine.stream_end(s);
        break;
      }
    }
    if (tracing) {
      obs::TraceSpan ts;
      ts.trace_id = opts.trace_ctx.trace_id;
      ts.span_id = obs::derive_span_id(
          opts.trace_ctx.span_id,
          obs::kTraceTaskChildBase + static_cast<std::uint64_t>(id));
      ts.parent_span = opts.trace_ctx.span_id;
      ts.name = node.name;
      ts.kind = "task";
      ts.device = opts.trace_ctx.device;
      ts.tenant = opts.trace_ctx.tenant;
      ts.start = span_begin;
      ts.end = span_end;
      ts.status = "ok";
      opts.trace->record(ts);
    }
  }
  if (opts.profile != nullptr) opts.profile->set_iteration(-1);

  if (opts.metrics != nullptr) {
    opts.metrics->add_counter("runtime.tasks", stats.tasks);
    opts.metrics->add_counter("runtime.tasks_device", stats.device_tasks);
    opts.metrics->add_counter("runtime.tasks_host", stats.host_tasks);
    opts.metrics->add_counter("runtime.tasks_inline", stats.inline_tasks);
    opts.metrics->add_counter("runtime.edges", stats.edges);
    opts.metrics->add_counter("runtime.stream_waits", stats.stream_waits);
    opts.metrics->add_counter("runtime.host_syncs", stats.host_syncs);
    opts.metrics->add_counter("runtime.waits_elided", stats.waits_elided);
    opts.metrics->add_counter("runtime.syncs_elided", stats.syncs_elided);
    if (tracker != nullptr) {
      opts.metrics->add_counter("runtime.sanitize.accesses",
                                tracker->accesses());
      opts.metrics->add_counter(
          "runtime.sanitize.violations",
          static_cast<long long>(tracker->violations().size()));
    }
  }
  return stats;
}

}  // namespace ftla::runtime
