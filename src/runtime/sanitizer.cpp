#include "runtime/sanitizer.hpp"

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <utility>

namespace ftla::runtime {

namespace {

[[nodiscard]] bool reads(Access a) noexcept { return a != Access::Write; }
[[nodiscard]] bool writes(Access a) noexcept { return a != Access::Read; }

[[nodiscard]] const char* access_name(Access a) noexcept {
  switch (a) {
    case Access::Read: return "read";
    case Access::Write: return "write";
    case Access::ReadWrite: return "rw";
  }
  return "?";
}

[[nodiscard]] int violation_rank(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::UndeclaredRead: return 0;
    case ViolationKind::UndeclaredWrite: return 1;
    case ViolationKind::Race: return 2;
  }
  return 3;
}

[[nodiscard]] const char* violation_name(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::UndeclaredRead: return "undeclared-read";
    case ViolationKind::UndeclaredWrite: return "undeclared-write";
    case ViolationKind::Race: return "race";
  }
  return "?";
}

}  // namespace

void TileAccessor::read(TileKey t) const {
  if (tracker != nullptr) tracker->record(task, t, Access::Read);
}

void TileAccessor::write(TileKey t) const {
  if (tracker != nullptr) tracker->record(task, t, Access::Write);
}

void TileAccessor::rw(TileKey t) const {
  if (tracker != nullptr) tracker->record(task, t, Access::ReadWrite);
}

bool sanitize_env_enabled() {
  const char* env = std::getenv("FTLA_DAG_SANITIZE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

std::string tile_name(TileKey t) {
  return "tile(" + std::to_string(t.matrix) + ":" + std::to_string(t.row) +
         "," + std::to_string(t.col) + ")";
}

void AccessTracker::begin_run(const TaskGraph& graph) {
  // Computed before taking the lock: schedule() walks the graph, and
  // begin_run is a single-threaded setup step by contract.
  const std::vector<int> order = graph.schedule();  // throws on cycle
  const int n = graph.size();
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;

  common::MutexLock lk(mu_);
  tasks_ = n;
  declared_.assign(static_cast<std::size_t>(n), {});
  for (int id = 0; id < n; ++id) {
    auto& fp = declared_[static_cast<std::size_t>(id)];
    fp = graph.node(id).footprint;
    std::sort(fp.begin(), fp.end(),
              [](const Footprint& a, const Footprint& b) {
                return a.tile < b.tile;
              });
  }
  // Happens-before as ancestor bitsets: walking a topological order,
  // every task's set is the union of each predecessor's set plus the
  // predecessor itself, so bit a in ancestors_[b] iff a precedes b
  // along some edge path.
  ancestors_.assign(static_cast<std::size_t>(n),
                    std::vector<std::uint64_t>(words, 0));
  for (const int id : order) {
    auto& mine = ancestors_[static_cast<std::size_t>(id)];
    for (const int p : graph.node(id).preds) {
      const auto& theirs = ancestors_[static_cast<std::size_t>(p)];
      for (std::size_t w = 0; w < words; ++w) mine[w] |= theirs[w];
      mine[static_cast<std::size_t>(p) / 64] |=
          std::uint64_t{1} << (static_cast<std::size_t>(p) % 64);
    }
  }
  history_.clear();
  executed_.clear();
  violations_.clear();
  accesses_ = 0;
}

void AccessTracker::begin_task(int task) {
  common::MutexLock lk(mu_);
  executed_.push_back(task);
}

bool AccessTracker::happens_before_locked(int a, int b) const {
  if (a == b) return true;
  const auto& anc = ancestors_[static_cast<std::size_t>(b)];
  return ((anc[static_cast<std::size_t>(a) / 64] >>
           (static_cast<std::size_t>(a) % 64)) &
          1) != 0;
}

void AccessTracker::add_violation_locked(Violation v) {
  v.prefix = static_cast<int>(executed_.size());
  violations_.push_back(v);
}

void AccessTracker::check_containment_locked(int task, TileKey tile,
                                             Access access) {
  // Effective declared access for this (task, tile): the union of all
  // matching footprint entries.
  bool declared = false;
  bool may_read = false;
  bool may_write = false;
  const auto& fp = declared_[static_cast<std::size_t>(task)];
  auto it = std::lower_bound(fp.begin(), fp.end(), tile,
                             [](const Footprint& f, const TileKey& key) {
                               return f.tile < key;
                             });
  for (; it != fp.end() && it->tile == tile; ++it) {
    declared = true;
    may_read = may_read || reads(it->access);
    may_write = may_write || writes(it->access);
  }

  if (writes(access) && !may_write) {
    add_violation_locked(
        {ViolationKind::UndeclaredWrite, task, -1, tile, access, 0});
    return;  // the write already damns the record; skip the read side
  }
  if (reads(access) && !may_read) {
    // Scratch idiom: reading back what this task itself wrote to a
    // declared Write tile consumes no external producer.
    if (declared && may_write) {
      auto ht = std::lower_bound(
          history_.begin(), history_.end(), tile,
          [](const auto& entry, const TileKey& key) {
            return entry.first < key;
          });
      if (ht != history_.end() && ht->first == tile) {
        for (const Recorded& r : ht->second) {
          if (r.task == task && writes(r.access)) return;
        }
      }
    }
    add_violation_locked(
        {ViolationKind::UndeclaredRead, task, -1, tile, access, 0});
  }
}

void AccessTracker::check_order_locked(int task, TileKey tile,
                                       Access access) {
  auto it = std::lower_bound(history_.begin(), history_.end(), tile,
                             [](const auto& entry, const TileKey& key) {
                               return entry.first < key;
                             });
  if (it == history_.end() || !(it->first == tile)) return;
  for (const Recorded& r : it->second) {
    if (r.task == task) continue;
    if (!writes(r.access) && !writes(access)) continue;  // read/read is fine
    if (happens_before_locked(r.task, task) ||
        happens_before_locked(task, r.task)) {
      continue;
    }
    // One report per unordered (pair, tile): the same conflict recurs
    // for every access the racing bodies make.
    const int lo = std::min(task, r.task);
    const int hi = std::max(task, r.task);
    bool seen = false;
    for (const Violation& v : violations_) {
      if (v.kind == ViolationKind::Race && v.tile == tile &&
          std::min(v.task, v.other) == lo && std::max(v.task, v.other) == hi) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      add_violation_locked(
          {ViolationKind::Race, task, r.task, tile, access, 0});
    }
  }
}

void AccessTracker::record(int task, TileKey tile, Access access) {
  common::MutexLock lk(mu_);
  if (task < 0 || task >= tasks_) return;  // accessor never armed
  ++accesses_;
  check_containment_locked(task, tile, access);
  check_order_locked(task, tile, access);
  auto it = std::lower_bound(history_.begin(), history_.end(), tile,
                             [](const auto& entry, const TileKey& key) {
                               return entry.first < key;
                             });
  if (it == history_.end() || !(it->first == tile)) {
    it = history_.insert(it, {tile, {}});
  }
  it->second.push_back({task, access});
}

bool AccessTracker::clean() const {
  common::MutexLock lk(mu_);
  return violations_.empty();
}

std::vector<Violation> AccessTracker::violations() const {
  common::MutexLock lk(mu_);
  return violations_;
}

std::vector<int> AccessTracker::schedule_prefix(int len) const {
  common::MutexLock lk(mu_);
  if (len < 0 || len > static_cast<int>(executed_.size())) {
    return executed_;
  }
  return {executed_.begin(), executed_.begin() + len};
}

std::int64_t AccessTracker::accesses() const {
  common::MutexLock lk(mu_);
  return accesses_;
}

std::string AccessTracker::report(const TaskGraph& graph) const {
  std::vector<Violation> sorted;
  std::vector<int> executed;
  {
    common::MutexLock lk(mu_);
    sorted = violations_;
    executed = executed_;
  }
  if (sorted.empty()) return {};
  // Sorted, not detection-ordered: under the wave-parallel host
  // executor the detection order depends on thread interleaving; the
  // report must not.
  std::sort(sorted.begin(), sorted.end(),
            [](const Violation& a, const Violation& b) {
              return std::tuple(a.task, violation_rank(a.kind), a.tile,
                                a.other) <
                     std::tuple(b.task, violation_rank(b.kind), b.tile,
                                b.other);
            });

  const auto task_label = [&](int id) {
    return "task " + std::to_string(id) + " '" + graph.node(id).name + "'";
  };
  const auto declared_line = [&](int id) {
    const TaskNode& node = graph.node(id);
    if (node.footprint.empty()) return std::string("(empty footprint)");
    std::string s;
    for (const Footprint& f : node.footprint) {
      if (!s.empty()) s += ", ";
      s += std::string(access_name(f.access)) + " " + tile_name(f.tile);
    }
    return s;
  };

  std::string out = "DAG sanitizer: " + std::to_string(sorted.size()) +
                    " violation(s)\n";
  for (const Violation& v : sorted) {
    out += "  [" + std::string(violation_name(v.kind)) + "] ";
    if (v.kind == ViolationKind::Race) {
      out += task_label(v.task) + " and " + task_label(v.other) +
             " access " + tile_name(v.tile) +
             " with no happens-before order (" +
             std::string(access_name(v.access)) + " by the former)\n";
      out += "      declared by the latter: " + declared_line(v.other) + "\n";
    } else {
      out += task_label(v.task) + " did a " +
             std::string(access_name(v.access)) + " of " +
             tile_name(v.tile) + " outside its declared footprint\n";
    }
    out += "      declared: " + declared_line(v.task) + "\n";
    // The executed prefix at detection time is the witness schedule.
    const int plen =
        std::min(v.prefix, static_cast<int>(executed.size()));
    out += "      after " + std::to_string(plen) + " issued task(s)";
    const int shown = std::min(plen, 8);
    if (shown > 0) {
      out += ": ";
      if (shown < plen) out += "... ";
      for (int i = plen - shown; i < plen; ++i) {
        if (i > plen - shown) out += " -> ";
        out += graph.node(executed[static_cast<std::size_t>(i)]).name;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ftla::runtime
