// Executors: two ways of running the same TaskGraph.
//
// run_on_host — real execution on the shared ThreadPool. Waves of
// mutually independent tasks (TaskGraph::waves) run concurrently via
// parallel_for; because tasks in one wave touch disjoint writable
// tiles, the result is bit-identical at any thread count, including
// serial. Bodies may throw: the first exception observed is captured
// under a mutex, remaining tasks are skipped, and it is rethrown once
// the in-flight wave drains (which of several same-wave exceptions is
// "first" follows thread interleaving).
//
// run_on_streams — issue onto the simulator's streams. Issue order is
// the graph's deterministic schedule(); each Device task runs on the
// least-loaded stream of the pool (tie: pool order) with
// stream_wait_event fences on its cross-stream predecessors, each Host
// task syncs its device predecessors' events before running, and
// Inline tasks run with no machine interaction. Same-stream program
// order and the monotonic host clock make the remaining fences
// implicit — see docs/runtime.md ("Executor contracts") for the
// ordering proof. Bodies run eagerly at issue time (that is how the
// simulator executes numerics), so any topological issue order
// produces bit-identical numerics; the schedule only shapes virtual
// time. StreamRunOptions::schedule_seed draws a seeded random valid
// topological order instead of the deterministic one — the
// schedule-permutation fuzzer's lever for testing exactly that
// equivalence-class property. Bodies may throw (verification tasks do
// on unrecoverable corruption); the exception unwinds out of the
// executor with span scopes restored.
//
// Both executors honor an armed sanitizer (TaskGraph::
// set_access_tracker): they call begin_run/begin_task and hand every
// body a recording TileAccessor via TaskContext::tiles — see
// sanitizer.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/graph.hpp"
#include "sim/machine.hpp"

namespace ftla::runtime {

struct HostRunOptions {
  /// Pool to run on; nullptr = the process-global pool (FTLA_THREADS).
  common::ThreadPool* pool = nullptr;
  /// Optional `runtime.host.*` counters.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Executes every task (wave-parallel). Throws CycleError on a cyclic
/// graph before running anything.
void run_on_host(const TaskGraph& graph, const HostRunOptions& opts = {});

struct StreamRunOptions {
  /// Stream pool for Device tasks; empty = {machine.default_stream()}.
  std::vector<sim::StreamId> streams;
  /// Optional span store: every span a task issues is stamped with the
  /// task's node id, phase and iteration (per-task-node attribution).
  obs::SpanStore* profile = nullptr;
  /// Optional `runtime.*` counters.
  obs::MetricsRegistry* metrics = nullptr;
  /// 0 = the deterministic schedule(). Nonzero = issue in the seeded
  /// random topological order TaskGraph::random_schedule(seed) draws;
  /// numerics stay bit-identical (eager-at-issue bodies), only the
  /// virtual-time shape and fence counts may change.
  std::uint64_t schedule_seed = 0;
  /// Optional causal tracing (docs/observability.md): with a store and
  /// a valid context, every executed task records one TraceSpan under
  /// trace_ctx.span_id, its id derived from the node id (so the same
  /// graph traces to the same ids at any schedule). Device spans cover
  /// the task's stream-end window, Host spans the host-clock window,
  /// Inline tasks record zero-duration markers.
  obs::TraceStore* trace = nullptr;
  obs::TraceContext trace_ctx;
};

struct StreamRunStats {
  int tasks = 0;
  int device_tasks = 0;
  int host_tasks = 0;
  int inline_tasks = 0;
  std::int64_t edges = 0;
  /// Cross-stream event fences issued (same-stream edges are free).
  std::int64_t stream_waits = 0;
  /// Host-side event syncs issued for Host-task predecessors.
  std::int64_t host_syncs = 0;
  /// Fences skipped because the producer had already retired (its
  /// stream end never exceeded the consumer's) — each saves one host
  /// call of overhead without changing any timestamp.
  std::int64_t waits_elided = 0;
  /// Host syncs skipped because the producer ended at or before the
  /// current host clock.
  std::int64_t syncs_elided = 0;
};

/// Issues every task onto `machine`. Throws CycleError on a cyclic
/// graph before issuing anything; rethrows task-body exceptions.
StreamRunStats run_on_streams(const TaskGraph& graph, sim::Machine& machine,
                              const StreamRunOptions& opts = {});

}  // namespace ftla::runtime
