#include "runtime/graph.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/rng.hpp"

namespace ftla::runtime {

namespace {

// Min-heap entry for the ready set: (priority, seq), lowest first.
struct Ready {
  int priority;
  int seq;
  friend bool operator>(const Ready& a, const Ready& b) noexcept {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }
};

}  // namespace

void TaskGraph::link(int from, int to) {
  if (from == to) return;
  auto& preds = nodes_[static_cast<std::size_t>(to)].preds;
  if (std::find(preds.begin(), preds.end(), from) != preds.end()) return;
  preds.push_back(from);
  nodes_[static_cast<std::size_t>(from)].succs.push_back(to);
  ++edges_;
}

int TaskGraph::add_task(std::string name, std::vector<Footprint> footprint,
                        TaskBody body, TaskOptions opts) {
  const int id = static_cast<int>(nodes_.size());
  TaskNode node;
  node.name = std::move(name);
  node.footprint = std::move(footprint);
  node.body = std::move(body);
  node.opts = opts;
  nodes_.push_back(std::move(node));

  for (const Footprint& f : nodes_.back().footprint) {
    auto it = std::lower_bound(
        tiles_.begin(), tiles_.end(), f.tile,
        [](const auto& entry, const TileKey& key) { return entry.first < key; });
    if (it == tiles_.end() || !(it->first == f.tile)) {
      it = tiles_.insert(it, {f.tile, TileState{}});
    }
    TileState& state = it->second;
    switch (f.access) {
      case Access::Read:
        if (state.last_writer >= 0) link(state.last_writer, id);
        state.readers_since_write.push_back(id);
        break;
      case Access::Write:
      case Access::ReadWrite:
        if (state.last_writer >= 0) link(state.last_writer, id);
        for (int r : state.readers_since_write) link(r, id);
        state.readers_since_write.clear();
        state.last_writer = id;
        break;
    }
  }
  return id;
}

void TaskGraph::add_edge(int from, int to) {
  FTLA_CHECK_MSG(from >= 0 && from < size(), "add_edge: from out of range");
  FTLA_CHECK_MSG(to >= 0 && to < size(), "add_edge: to out of range");
  FTLA_CHECK_MSG(from != to, "add_edge: self-edge");
  link(from, to);
}

std::vector<int> TaskGraph::schedule() const {
  const int n = size();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (int id = 0; id < n; ++id) {
    indegree[static_cast<std::size_t>(id)] =
        static_cast<int>(nodes_[static_cast<std::size_t>(id)].preds.size());
  }
  std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> ready;
  for (int id = 0; id < n; ++id) {
    if (indegree[static_cast<std::size_t>(id)] == 0) {
      ready.push({nodes_[static_cast<std::size_t>(id)].opts.priority, id});
    }
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int id = ready.top().seq;
    ready.pop();
    order.push_back(id);
    for (int s : nodes_[static_cast<std::size_t>(id)].succs) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) {
        ready.push({nodes_[static_cast<std::size_t>(s)].opts.priority, s});
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw CycleError(n - static_cast<int>(order.size()));
  }
  return order;
}

std::vector<int> TaskGraph::random_schedule(std::uint64_t seed) const {
  // Start from the deterministic order (throws on cycle) and split it
  // at the sequence points (empty-footprint tasks). Each segment is
  // then re-drawn as a random topological order of its own tasks: every
  // edge between two segment members is respected, every edge across a
  // fence keeps its direction because segments run in order, so the
  // result is a valid topological order of the whole graph with each
  // sequence point preceded by exactly the task set that precedes it
  // deterministically.
  const std::vector<int> det = schedule();
  Rng rng(seed);
  std::vector<int> order;
  order.reserve(det.size());

  std::vector<int> segment;
  std::vector<int> pending;  // scratch for the per-segment ready draw
  const auto flush = [&] {
    if (segment.empty()) return;
    // indexed by position in `segment`
    std::vector<int> indegree(segment.size(), 0);
    std::vector<int> pos_of(static_cast<std::size_t>(size()), -1);
    for (std::size_t i = 0; i < segment.size(); ++i) {
      pos_of[static_cast<std::size_t>(segment[i])] = static_cast<int>(i);
    }
    for (std::size_t i = 0; i < segment.size(); ++i) {
      for (const int p : nodes_[static_cast<std::size_t>(segment[i])].preds) {
        if (pos_of[static_cast<std::size_t>(p)] >= 0) ++indegree[i];
      }
    }
    pending.clear();
    for (std::size_t i = 0; i < segment.size(); ++i) {
      if (indegree[i] == 0) pending.push_back(static_cast<int>(i));
    }
    while (!pending.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(pending.size())));
      const int at = pending[pick];
      pending[pick] = pending.back();
      pending.pop_back();
      const int id = segment[static_cast<std::size_t>(at)];
      order.push_back(id);
      for (const int s : nodes_[static_cast<std::size_t>(id)].succs) {
        const int sp = pos_of[static_cast<std::size_t>(s)];
        if (sp >= 0 && --indegree[static_cast<std::size_t>(sp)] == 0) {
          pending.push_back(sp);
        }
      }
    }
    segment.clear();
  };

  for (const int id : det) {
    if (nodes_[static_cast<std::size_t>(id)].footprint.empty()) {
      flush();
      order.push_back(id);  // sequence point: keep its deterministic slot
    } else {
      segment.push_back(id);
    }
  }
  flush();
  return order;
}

std::vector<std::vector<int>> TaskGraph::waves() const {
  if (size() == 0) return {};
  const std::vector<int> order = schedule();  // throws on cycle
  std::vector<int> depth(static_cast<std::size_t>(size()), 0);
  int max_depth = 0;
  for (int id : order) {
    int d = 0;
    for (int p : nodes_[static_cast<std::size_t>(id)].preds) {
      d = std::max(d, depth[static_cast<std::size_t>(p)] + 1);
    }
    depth[static_cast<std::size_t>(id)] = d;
    max_depth = std::max(max_depth, d);
  }
  std::vector<std::vector<int>> waves(static_cast<std::size_t>(max_depth + 1));
  for (int id = 0; id < size(); ++id) {
    waves[static_cast<std::size_t>(depth[static_cast<std::size_t>(id)])]
        .push_back(id);
  }
  // Node ids are scanned in insertion order, so each wave already is.
  return waves;
}

}  // namespace ftla::runtime
