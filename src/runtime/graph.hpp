// Dependency-driven task graph: the runtime's core data structure.
//
// A TaskGraph is a DAG of named tasks, each declaring the tiles it
// reads and writes (its *footprint*). Dependencies are not wired by
// hand: add_task infers them from footprint overlap with the classic
// hazard rules —
//
//   * RAW: a Read of tile T depends on T's last writer;
//   * WAW: a Write of T depends on T's last writer;
//   * WAR: a Write of T depends on every reader of T since that writer.
//
// Inference edges always point from an earlier-inserted task to a
// later-inserted one, so inference alone can never create a cycle;
// only explicit add_edge can, and schedule() rejects it.
//
// Determinism contract: schedule() runs Kahn's algorithm with a fixed
// (priority, insertion-sequence) tie-break over the ready set, so the
// issue order is a pure function of the graph — no pointer values, no
// hash iteration order, no wall clock. waves() groups tasks by
// longest-path depth; tasks in one wave are mutually independent, which
// is what lets the host executor run a wave's tasks concurrently and
// still produce bit-identical results at any thread count.
//
// The graph itself is execution-agnostic: bodies are opaque callables
// and `Where` only tells an executor which issue protocol a task needs
// (device stream, host, or inline). See docs/runtime.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace ftla::runtime {

class AccessTracker;  // sanitizer.hpp — opt-in dynamic footprint checker

/// Thrown by schedule()/waves() when explicit edges made the graph
/// cyclic. Carries the number of tasks left unordered.
class CycleError : public Error {
 public:
  explicit CycleError(int unordered)
      : Error("task graph contains a cycle (" + std::to_string(unordered) +
              " tasks unorderable)"),
        unordered_(unordered) {}
  [[nodiscard]] int unordered() const noexcept { return unordered_; }

 private:
  int unordered_;
};

/// A tile is any unit of data a task can depend on: a block of the
/// factor matrix, a checksum strip, a host staging buffer, a scratch
/// slot. `matrix` namespaces independent arrays so (row, col) spaces
/// never collide across them.
struct TileKey {
  int matrix = 0;
  int row = 0;
  int col = 0;

  friend bool operator==(const TileKey& a, const TileKey& b) noexcept {
    return a.matrix == b.matrix && a.row == b.row && a.col == b.col;
  }
  friend bool operator<(const TileKey& a, const TileKey& b) noexcept {
    if (a.matrix != b.matrix) return a.matrix < b.matrix;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  }
};

enum class Access {
  Read,       ///< consumes the tile's current contents
  Write,      ///< fully overwrites the tile
  ReadWrite,  ///< updates in place (both hazard directions)
};

struct Footprint {
  TileKey tile;
  Access access = Access::Read;
};

/// Convenience builders, so driver code reads like the math.
[[nodiscard]] inline Footprint read(TileKey t) { return {t, Access::Read}; }
[[nodiscard]] inline Footprint write(TileKey t) { return {t, Access::Write}; }
[[nodiscard]] inline Footprint rw(TileKey t) { return {t, Access::ReadWrite}; }

/// Which issue protocol a task needs from an executor.
enum class Where {
  Device,  ///< issues kernels/copies on an executor-chosen stream
  Host,    ///< runs host-side work; executor syncs device predecessors
  Inline,  ///< runs at issue time with no machine interaction
};

/// Checked tile handle passed to task bodies via TaskContext. When the
/// graph has an AccessTracker armed (TaskGraph::set_access_tracker /
/// FTLA_DAG_SANITIZE), every call records the dynamic access so the
/// sanitizer can verify it against the declared footprint and the
/// inferred happens-before order; with no tracker armed the calls are
/// no-ops, so instrumented bodies cost nothing in production runs.
struct TileAccessor {
  AccessTracker* tracker = nullptr;
  int task = -1;

  void read(TileKey t) const;   ///< body consumed the tile's contents
  void write(TileKey t) const;  ///< body fully overwrote the tile
  void rw(TileKey t) const;     ///< body updated the tile in place
};

/// Handed to the body at execution time.
struct TaskContext {
  int task = -1;    ///< node id in the graph
  int stream = -1;  ///< chosen sim stream (Where::Device only)
  int worker = 0;   ///< host-executor worker index
  /// Dynamic-footprint recording handle (inert unless a sanitizer
  /// tracker is armed on the graph).
  TileAccessor tiles;
};

using TaskBody = std::function<void(const TaskContext&)>;

struct TaskOptions {
  obs::Phase phase = obs::Phase::Base;
  int iteration = -1;
  Where where = Where::Device;
  /// Ready-queue rank: lower runs first; ties break on insertion order.
  int priority = 0;
};

struct TaskNode {
  std::string name;
  std::vector<Footprint> footprint;
  TaskBody body;
  TaskOptions opts;
  std::vector<int> preds;  ///< deduplicated, insertion order
  std::vector<int> succs;
};

class TaskGraph {
 public:
  /// Appends a task and infers RAW/WAR/WAW edges from its footprint.
  /// Returns the node id (dense, starting at 0).
  int add_task(std::string name, std::vector<Footprint> footprint,
               TaskBody body, TaskOptions opts = {});

  /// Explicit ordering edge (`from` before `to`), for constraints the
  /// footprints cannot express. Self-edges are rejected.
  void add_edge(int from, int to);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] const TaskNode& node(int id) const { return nodes_.at(id); }
  [[nodiscard]] std::int64_t edge_count() const noexcept { return edges_; }

  /// Deterministic topological order: Kahn's algorithm, ready set
  /// ordered by (priority, insertion sequence). Throws CycleError.
  [[nodiscard]] std::vector<int> schedule() const;

  /// Tasks grouped by longest-path depth (wave 0 has no predecessors).
  /// Tasks within a wave are pairwise independent; each wave is sorted
  /// by insertion sequence. Throws CycleError.
  [[nodiscard]] std::vector<std::vector<int>> waves() const;

  /// A seeded random valid topological order, for the schedule-
  /// permutation fuzzer. Tasks with an *empty* footprint are treated as
  /// sequence points and keep exactly the position (same preceding task
  /// set) they have in the deterministic schedule(): an empty footprint
  /// opted out of dependency inference (the fault hooks use it to pin a
  /// program point), so no reordering across one can be proven safe.
  /// All other tasks are permuted freely within those fences, subject
  /// to the graph's edges. seed selects the permutation; the result is
  /// a pure function of (graph, seed). Throws CycleError.
  [[nodiscard]] std::vector<int> random_schedule(std::uint64_t seed) const;

  /// Arms (or disarms, with nullptr) the dynamic footprint sanitizer.
  /// Executors call tracker->begin_run/begin_task and hand bodies a
  /// recording TileAccessor; see sanitizer.hpp. Not owned.
  void set_access_tracker(AccessTracker* tracker) noexcept {
    tracker_ = tracker;
  }
  [[nodiscard]] AccessTracker* access_tracker() const noexcept {
    return tracker_;
  }

 private:
  struct TileState {
    int last_writer = -1;
    std::vector<int> readers_since_write;
  };

  void link(int from, int to);

  std::vector<TaskNode> nodes_;
  std::vector<std::pair<TileKey, TileState>> tiles_;  // sorted by key
  std::int64_t edges_ = 0;
  AccessTracker* tracker_ = nullptr;  // not owned
};

}  // namespace ftla::runtime
