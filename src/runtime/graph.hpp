// Dependency-driven task graph: the runtime's core data structure.
//
// A TaskGraph is a DAG of named tasks, each declaring the tiles it
// reads and writes (its *footprint*). Dependencies are not wired by
// hand: add_task infers them from footprint overlap with the classic
// hazard rules —
//
//   * RAW: a Read of tile T depends on T's last writer;
//   * WAW: a Write of T depends on T's last writer;
//   * WAR: a Write of T depends on every reader of T since that writer.
//
// Inference edges always point from an earlier-inserted task to a
// later-inserted one, so inference alone can never create a cycle;
// only explicit add_edge can, and schedule() rejects it.
//
// Determinism contract: schedule() runs Kahn's algorithm with a fixed
// (priority, insertion-sequence) tie-break over the ready set, so the
// issue order is a pure function of the graph — no pointer values, no
// hash iteration order, no wall clock. waves() groups tasks by
// longest-path depth; tasks in one wave are mutually independent, which
// is what lets the host executor run a wave's tasks concurrently and
// still produce bit-identical results at any thread count.
//
// The graph itself is execution-agnostic: bodies are opaque callables
// and `Where` only tells an executor which issue protocol a task needs
// (device stream, host, or inline). See docs/runtime.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace ftla::runtime {

/// Thrown by schedule()/waves() when explicit edges made the graph
/// cyclic. Carries the number of tasks left unordered.
class CycleError : public Error {
 public:
  explicit CycleError(int unordered)
      : Error("task graph contains a cycle (" + std::to_string(unordered) +
              " tasks unorderable)"),
        unordered_(unordered) {}
  [[nodiscard]] int unordered() const noexcept { return unordered_; }

 private:
  int unordered_;
};

/// A tile is any unit of data a task can depend on: a block of the
/// factor matrix, a checksum strip, a host staging buffer, a scratch
/// slot. `matrix` namespaces independent arrays so (row, col) spaces
/// never collide across them.
struct TileKey {
  int matrix = 0;
  int row = 0;
  int col = 0;

  friend bool operator==(const TileKey& a, const TileKey& b) noexcept {
    return a.matrix == b.matrix && a.row == b.row && a.col == b.col;
  }
  friend bool operator<(const TileKey& a, const TileKey& b) noexcept {
    if (a.matrix != b.matrix) return a.matrix < b.matrix;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  }
};

enum class Access {
  Read,       ///< consumes the tile's current contents
  Write,      ///< fully overwrites the tile
  ReadWrite,  ///< updates in place (both hazard directions)
};

struct Footprint {
  TileKey tile;
  Access access = Access::Read;
};

/// Convenience builders, so driver code reads like the math.
[[nodiscard]] inline Footprint read(TileKey t) { return {t, Access::Read}; }
[[nodiscard]] inline Footprint write(TileKey t) { return {t, Access::Write}; }
[[nodiscard]] inline Footprint rw(TileKey t) { return {t, Access::ReadWrite}; }

/// Which issue protocol a task needs from an executor.
enum class Where {
  Device,  ///< issues kernels/copies on an executor-chosen stream
  Host,    ///< runs host-side work; executor syncs device predecessors
  Inline,  ///< runs at issue time with no machine interaction
};

/// Handed to the body at execution time.
struct TaskContext {
  int task = -1;    ///< node id in the graph
  int stream = -1;  ///< chosen sim stream (Where::Device only)
  int worker = 0;   ///< host-executor worker index
};

using TaskBody = std::function<void(const TaskContext&)>;

struct TaskOptions {
  obs::Phase phase = obs::Phase::Base;
  int iteration = -1;
  Where where = Where::Device;
  /// Ready-queue rank: lower runs first; ties break on insertion order.
  int priority = 0;
};

struct TaskNode {
  std::string name;
  std::vector<Footprint> footprint;
  TaskBody body;
  TaskOptions opts;
  std::vector<int> preds;  ///< deduplicated, insertion order
  std::vector<int> succs;
};

class TaskGraph {
 public:
  /// Appends a task and infers RAW/WAR/WAW edges from its footprint.
  /// Returns the node id (dense, starting at 0).
  int add_task(std::string name, std::vector<Footprint> footprint,
               TaskBody body, TaskOptions opts = {});

  /// Explicit ordering edge (`from` before `to`), for constraints the
  /// footprints cannot express. Self-edges are rejected.
  void add_edge(int from, int to);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] const TaskNode& node(int id) const { return nodes_.at(id); }
  [[nodiscard]] std::int64_t edge_count() const noexcept { return edges_; }

  /// Deterministic topological order: Kahn's algorithm, ready set
  /// ordered by (priority, insertion sequence). Throws CycleError.
  [[nodiscard]] std::vector<int> schedule() const;

  /// Tasks grouped by longest-path depth (wave 0 has no predecessors).
  /// Tasks within a wave are pairwise independent; each wave is sorted
  /// by insertion sequence. Throws CycleError.
  [[nodiscard]] std::vector<std::vector<int>> waves() const;

 private:
  struct TileState {
    int last_writer = -1;
    std::vector<int> readers_since_write;
  };

  void link(int from, int to);

  std::vector<TaskNode> nodes_;
  std::vector<std::pair<TileKey, TileState>> tiles_;  // sorted by key
  std::int64_t edges_ = 0;
};

}  // namespace ftla::runtime
