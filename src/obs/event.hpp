// Structured-event model for the ABFT observability layer.
//
// Every layer of the system (simulator, fault injector, ABFT drivers)
// describes what it does as a flat stream of Events posted to an
// EventSink. Events carry virtual-time stamps from the simulated clock,
// a stable sequence number (assigned by the sink, so a single run has a
// total order even when several components emit), and a fixed set of
// typed fields — a deliberately denormalized record so sinks never
// allocate per-kind payloads. Fields a kind does not use stay at their
// defaults and are omitted from serialized output.
//
// Correlation: a fault injection is assigned an injection id; the
// verification that later detects it and any correction that repairs it
// carry the same id in `correlation`, which is what the trace exporter
// turns into Chrome-trace flow arrows (injection -> detection ->
// correction) and what the detection-latency histogram is keyed on.
#pragma once

#include <cstdint>
#include <string>

namespace ftla::obs {

enum class EventKind {
  Kernel,          ///< GPU kernel span (stream + SM-unit attribution)
  HostTask,        ///< host compute span
  Copy,            ///< DMA transfer span (H2D/D2H/D2D)
  Sync,            ///< host-device synchronization point
  FaultInjected,   ///< a planned fault actually fired
  Verification,    ///< one block verified (pass/fail + recalc cost)
  VerifySkip,      ///< Opt-3 skipped a verification site
  Placement,       ///< Opt-2 placement decision with predicted costs
  Detection,       ///< a verification caught an injected fault
  Correction,      ///< one element repaired from checksums
  ChecksumRepair,  ///< a corrupted checksum column re-encoded
  Rollback,        ///< checkpoint rollback triggered
  Rerun,           ///< full-restart recovery triggered
  Checkpoint,      ///< device snapshot taken
  Note,            ///< free-form annotation
  Alert,           ///< SLO burn-rate threshold crossing
};

[[nodiscard]] const char* to_string(EventKind k);

struct Event {
  EventKind kind = EventKind::Note;
  /// Total order within one run; stamped by EventSink::post.
  std::int64_t seq = -1;
  /// Virtual seconds (simulated clock). For spans, the start.
  double time = 0.0;
  /// Span end; equal to `time` for instantaneous events.
  double end = 0.0;
  /// Stream id, or a sim lane constant (kHostLane etc.) for host work.
  int lane = 0;
  std::string name;   ///< short label ("syrk", "verify", "fault:storage")
  std::string op;     ///< ABFT op attribution: syrk|gemm|potf2|trsm
  int iteration = -1; ///< outer iteration, -1 outside the loop
  int block_row = -1; ///< target block (block coordinates)
  int block_col = -1;
  int row = -1;       ///< target element (global coordinates)
  int col = -1;
  bool pass = true;   ///< Verification: no anomaly found
  std::int64_t flops = 0;  ///< modeled cost of the work / recalc
  std::int64_t bytes = 0;  ///< Copy payload
  int units = 0;           ///< SM units occupied
  /// Kind-specific scalar: detection latency (Detection/Correction),
  /// predicted T_gpu (Placement), skipped block count (VerifySkip).
  double value = 0.0;
  /// Second scalar: predicted T_cpu (Placement).
  double value2 = 0.0;
  /// Injection id linking FaultInjected -> Detection -> Correction.
  std::int64_t correlation = -1;
  std::string detail;  ///< free-form context
};

}  // namespace ftla::obs
