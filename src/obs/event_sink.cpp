#include "obs/event_sink.hpp"

#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace ftla::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::Kernel: return "kernel";
    case EventKind::HostTask: return "host_task";
    case EventKind::Copy: return "copy";
    case EventKind::Sync: return "sync";
    case EventKind::FaultInjected: return "fault_injected";
    case EventKind::Verification: return "verification";
    case EventKind::VerifySkip: return "verify_skip";
    case EventKind::Placement: return "placement";
    case EventKind::Detection: return "detection";
    case EventKind::Correction: return "correction";
    case EventKind::ChecksumRepair: return "checksum_repair";
    case EventKind::Rollback: return "rollback";
    case EventKind::Rerun: return "rerun";
    case EventKind::Checkpoint: return "checkpoint";
    case EventKind::Note: return "note";
    case EventKind::Alert: return "alert";
  }
  return "?";
}

// ----- RingBufferSink -------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  FTLA_CHECK(capacity_ > 0);
}

void RingBufferSink::emit(const Event& e) {
  if (!full_) {
    buf_.push_back(e);
    if (buf_.size() == capacity_) full_ = true;
    return;
  }
  buf_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::size_t RingBufferSink::size() const {
  common::MutexLock lk(mu_);
  return buf_.size();
}

std::size_t RingBufferSink::dropped() const {
  common::MutexLock lk(mu_);
  return dropped_;
}

std::vector<Event> RingBufferSink::events() const {
  common::MutexLock lk(mu_);
  std::vector<Event> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

// ----- JSON serialization ---------------------------------------------

void json_escape(const std::string& s, std::ostream& os) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          os << hex;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
}

void event_to_json(const Event& e, std::ostream& os) {
  os << "{\"kind\":\"" << to_string(e.kind) << "\",\"seq\":" << e.seq
     << ",\"t\":" << e.time;
  if (e.end > e.time) os << ",\"t_end\":" << e.end;
  os << ",\"lane\":" << e.lane;
  if (!e.name.empty()) {
    os << ",\"name\":\"";
    json_escape(e.name, os);
    os << '"';
  }
  if (!e.op.empty()) {
    os << ",\"op\":\"";
    json_escape(e.op, os);
    os << '"';
  }
  if (e.iteration >= 0) os << ",\"iter\":" << e.iteration;
  if (e.block_row >= 0) os << ",\"brow\":" << e.block_row;
  if (e.block_col >= 0) os << ",\"bcol\":" << e.block_col;
  if (e.row >= 0) os << ",\"row\":" << e.row;
  if (e.col >= 0) os << ",\"col\":" << e.col;
  if (!e.pass) os << ",\"pass\":false";
  if (e.flops > 0) os << ",\"flops\":" << e.flops;
  if (e.bytes > 0) os << ",\"bytes\":" << e.bytes;
  if (e.units > 0) os << ",\"units\":" << e.units;
  if (e.value != 0.0) os << ",\"value\":" << e.value;
  if (e.value2 != 0.0) os << ",\"value2\":" << e.value2;
  if (e.correlation >= 0) os << ",\"id\":" << e.correlation;
  if (!e.detail.empty()) {
    os << ",\"detail\":\"";
    json_escape(e.detail, os);
    os << '"';
  }
  os << '}';
}

void JsonlStreamSink::emit(const Event& e) {
  event_to_json(e, os_);
  os_ << '\n';
}

}  // namespace ftla::obs
