#include "obs/metrics.hpp"

namespace ftla::obs {

void MetricsRegistry::merge(const MetricsRegistry& other) {
  if (this == &other) return;
  std::scoped_lock lk(mu_, other.mu_);
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

}  // namespace ftla::obs
