#include "obs/metrics.hpp"

namespace ftla::obs {

void MetricsRegistry::merge(const MetricsRegistry& other) {
  if (this == &other) return;
  // Snapshot the source under its own lock, then fold under ours — same
  // one-lock-at-a-time discipline as operator=.
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  {
    common::MutexLock lk(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  common::MutexLock lk(mu_);
  for (const auto& [name, v] : counters) counters_[name] += v;
  for (const auto& [name, v] : gauges) gauges_[name] = v;
  for (auto& [name, h] : histograms) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, std::move(h));
    } else {
      it->second.merge(h);
    }
  }
}

}  // namespace ftla::obs
