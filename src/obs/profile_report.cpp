#include "obs/profile_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <ostream>
#include <set>
#include <utility>

#include "obs/json.hpp"

namespace ftla::obs {

namespace {

constexpr Phase kAllPhases[] = {Phase::Base,   Phase::Encode, Phase::Recalc,
                                Phase::Update, Phase::Verify, Phase::Recover};

// ----- critical-path walk --------------------------------------------

/// Deterministic ordering for the walk's candidate list: by end, then
/// start, then lane/name/iteration as tie-breakers so identical runs
/// always blame identical spans.
bool span_walk_less(const Span* a, const Span* b) {
  if (a->end != b->end) return a->end < b->end;
  if (a->start != b->start) return a->start < b->start;
  if (a->lane != b->lane) return a->lane < b->lane;
  if (a->name != b->name) return a->name < b->name;
  return a->iteration < b->iteration;
}

}  // namespace

ProfileReport build_profile(
    const std::vector<Span>& spans, double makespan,
    const std::map<std::string, ResourceProfile>& resources,
    std::size_t spans_dropped, int top_k) {
  ProfileReport r;
  r.makespan_seconds = makespan;
  r.resources = resources;
  r.span_count = static_cast<long long>(spans.size());
  r.spans_dropped = static_cast<long long>(spans_dropped);
  for (Phase p : kAllPhases) r.phases[to_string(p)];

  std::set<int> task_ids;
  for (const Span& s : spans) {
    PhaseProfile& ph = r.phases[to_string(s.phase)];
    ++ph.spans;
    ph.busy_seconds += s.end - s.start;
    ph.flops += s.flops;
    if (s.task >= 0) task_ids.insert(s.task);
  }
  r.task_nodes = static_cast<long long>(task_ids.size());

  // Backward walk from the makespan: blame the latest-finishing span
  // covering the frontier, jump to its start, repeat. Zero-duration
  // spans are excluded so every step makes strict progress; among spans
  // sharing the blamed end time, the earliest-starting one wins (the
  // longest explanation). Gaps the walk crosses are idle time.
  std::vector<const Span*> by_end;
  by_end.reserve(spans.size());
  for (const Span& s : spans) {
    if (s.end > s.start) by_end.push_back(&s);
  }
  std::sort(by_end.begin(), by_end.end(), span_walk_less);

  double t = makespan;
  while (t > 0.0) {
    // Last candidate with end <= t.
    auto it = std::upper_bound(
        by_end.begin(), by_end.end(), t,
        [](double value, const Span* s) { return value < s->end; });
    if (it == by_end.begin()) {
      ++r.critical_gaps;  // nothing ends before t: idle back to 0
      break;
    }
    const double blamed_end = (*(it - 1))->end;
    // First member of the equal-end group (smallest start).
    auto lo = std::lower_bound(
        by_end.begin(), it, blamed_end,
        [](const Span* s, double value) { return s->end < value; });
    const Span* blamed = *lo;
    if (blamed_end < t) ++r.critical_gaps;
    r.phases[to_string(blamed->phase)].critical_seconds +=
        blamed->end - blamed->start;
    ++r.critical_segments;
    t = blamed->start;
  }

  // The exactness contract (see header): the walk tiles [0, makespan],
  // so the critical path's length IS the makespan; idle is defined as
  // the remainder after the sorted-order phase sum, making the
  // decomposition reproduce the makespan bit-for-bit.
  r.critical_path_seconds = makespan;
  const auto sorted_phase_sum = [&r] {
    double sum = 0.0;
    for (const auto& [name, ph] : r.phases) sum += ph.critical_seconds;
    return sum;
  };
  double phase_sum = sorted_phase_sum();
  r.idle_critical_seconds = makespan - phase_sum;
  // The summation can overshoot the makespan by a few ulps (the walk's
  // segment durations round independently of the boundaries they tile).
  // Normalize by absorbing the overshoot into the largest phase — a
  // deterministic choice (ties break on sorted key order) — so idle is
  // never negative and the remainder identity still holds bit-for-bit.
  for (int pass = 0; pass < 16 && r.idle_critical_seconds < 0.0; ++pass) {
    PhaseProfile* largest = nullptr;
    for (auto& [name, ph] : r.phases) {
      if (largest == nullptr || ph.critical_seconds > largest->critical_seconds) {
        largest = &ph;
      }
    }
    largest->critical_seconds += r.idle_critical_seconds;
    phase_sum = sorted_phase_sum();
    r.idle_critical_seconds = makespan - phase_sum;
  }
  double abft_sum = 0.0;
  for (const auto& [name, ph] : r.phases) {
    if (name != to_string(Phase::Base)) abft_sum += ph.critical_seconds;
  }
  r.abft_critical_seconds = abft_sum;
  r.projected_no_abft_seconds = makespan - abft_sum;

  // Top-K aggregates by total busy time.
  std::map<std::pair<std::string, int>, SpanAggregate> agg;
  for (const Span& s : spans) {
    SpanAggregate& a = agg[{s.name, static_cast<int>(s.phase)}];
    a.name = s.name;
    a.phase = s.phase;
    ++a.count;
    a.busy_seconds += s.end - s.start;
    a.flops += s.flops;
  }
  r.top_spans.reserve(agg.size());
  for (auto& [key, a] : agg) r.top_spans.push_back(std::move(a));
  std::sort(r.top_spans.begin(), r.top_spans.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              if (a.busy_seconds != b.busy_seconds) {
                return a.busy_seconds > b.busy_seconds;
              }
              if (a.name != b.name) return a.name < b.name;
              return static_cast<int>(a.phase) < static_cast<int>(b.phase);
            });
  if (top_k >= 0 &&
      r.top_spans.size() > static_cast<std::size_t>(top_k)) {
    r.top_spans.resize(static_cast<std::size_t>(top_k));
  }
  return r;
}

// ----- JSON export ----------------------------------------------------

void write_profile_json(const ProfileReport& r, std::ostream& os) {
  const double makespan = r.makespan_seconds;
  os << "{\n";
  os << "  \"critical_path\": {\n";
  os << "    \"abft_seconds\": " << fmt_double(r.abft_critical_seconds)
     << ",\n";
  os << "    \"gaps\": " << r.critical_gaps << ",\n";
  os << "    \"idle_seconds\": " << fmt_double(r.idle_critical_seconds)
     << ",\n";
  os << "    \"length_seconds\": " << fmt_double(r.critical_path_seconds)
     << ",\n";
  os << "    \"projected_no_abft_seconds\": "
     << fmt_double(r.projected_no_abft_seconds) << ",\n";
  os << "    \"segments\": " << r.critical_segments << "\n";
  os << "  },\n";
  os << "  \"makespan_seconds\": " << fmt_double(makespan) << ",\n";
  os << "  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : r.meta) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(key, os);
    os << ": ";
    write_json_string(value, os);
  }
  os << (first ? "" : "\n  ") << "},\n";
  os << "  \"phases\": {";
  first = true;
  for (const auto& [name, ph] : r.phases) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(name, os);
    os << ": {\"busy_seconds\": " << fmt_double(ph.busy_seconds)
       << ", \"critical_seconds\": " << fmt_double(ph.critical_seconds)
       << ", \"flops\": " << ph.flops << ", \"spans\": " << ph.spans << "}";
  }
  os << (first ? "" : "\n  ") << "},\n";
  os << "  \"profile_version\": " << ProfileReport::kProfileVersion << ",\n";
  os << "  \"resources\": {";
  first = true;
  for (const auto& [name, res] : r.resources) {
    const double window = res.capacity_units * makespan;
    const double util =
        window > 0.0 ? res.busy_unit_seconds / window : 0.0;
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(name, os);
    os << ": {\"busy_unit_seconds\": " << fmt_double(res.busy_unit_seconds)
       << ", \"capacity_units\": " << fmt_double(res.capacity_units)
       << ", \"idle_unit_seconds\": "
       << fmt_double(window - res.busy_unit_seconds)
       << ", \"utilization\": " << fmt_double(util) << "}";
  }
  os << (first ? "" : "\n  ") << "},\n";
  // task_nodes is emitted only when task attribution exists, so
  // bulk-synchronous profiles (and their pinned baselines) keep their
  // exact historical bytes.
  os << "  \"spans\": {\"dropped\": " << r.spans_dropped
     << ", \"recorded\": " << r.span_count;
  if (r.task_nodes > 0) os << ", \"task_nodes\": " << r.task_nodes;
  os << "},\n";
  os << "  \"top_spans\": [";
  first = true;
  for (const auto& a : r.top_spans) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    os << "{\"busy_seconds\": " << fmt_double(a.busy_seconds)
       << ", \"count\": " << a.count << ", \"flops\": " << a.flops
       << ", \"name\": ";
    write_json_string(a.name, os);
    os << ", \"phase\": ";
    write_json_string(to_string(a.phase), os);
    os << "}";
  }
  os << (first ? "" : "\n  ") << "]\n";
  os << "}\n";
}

bool write_profile_json_file(const ProfileReport& report,
                             const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_profile_json(report, os);
  os.flush();
  return static_cast<bool>(os);
}

// ----- JSON import ----------------------------------------------------

namespace {

Phase phase_from_name(const std::string& name) {
  for (Phase p : kAllPhases) {
    if (name == to_string(p)) return p;
  }
  return Phase::Base;
}

}  // namespace

bool read_profile_json(std::istream& is, ProfileReport* out) {
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  JsonValue root;
  if (!parse_json(text, &root) || root.type != JsonValue::Type::Object) {
    return false;
  }
  double version = 0.0;
  if (!json_get_number(root, "profile_version", &version) ||
      static_cast<int>(version) != ProfileReport::kProfileVersion) {
    return false;
  }

  ProfileReport r;
  if (!json_get_number(root, "makespan_seconds", &r.makespan_seconds)) {
    return false;
  }
  const JsonValue* cp = root.find("critical_path");
  if (cp == nullptr || cp->type != JsonValue::Type::Object) return false;
  if (!json_get_number(*cp, "abft_seconds", &r.abft_critical_seconds) ||
      !json_get_number(*cp, "idle_seconds", &r.idle_critical_seconds) ||
      !json_get_number(*cp, "length_seconds", &r.critical_path_seconds) ||
      !json_get_number(*cp, "projected_no_abft_seconds",
                  &r.projected_no_abft_seconds) ||
      !json_get_count(*cp, "segments", &r.critical_segments) ||
      !json_get_count(*cp, "gaps", &r.critical_gaps)) {
    return false;
  }

  if (const JsonValue* meta = root.find("meta");
      meta != nullptr && meta->type == JsonValue::Type::Object) {
    for (const auto& [key, value] : meta->members) {
      if (value.type != JsonValue::Type::String) return false;
      r.meta[key] = value.str;
    }
  }

  const JsonValue* phases = root.find("phases");
  if (phases == nullptr || phases->type != JsonValue::Type::Object) {
    return false;
  }
  for (const auto& [name, value] : phases->members) {
    if (value.type != JsonValue::Type::Object) return false;
    PhaseProfile ph;
    if (!json_get_number(value, "busy_seconds", &ph.busy_seconds) ||
        !json_get_number(value, "critical_seconds", &ph.critical_seconds) ||
        !json_get_int64(value, "flops", &ph.flops) ||
        !json_get_count(value, "spans", &ph.spans)) {
      return false;
    }
    r.phases[name] = ph;
  }

  if (const JsonValue* resources = root.find("resources");
      resources != nullptr && resources->type == JsonValue::Type::Object) {
    for (const auto& [name, value] : resources->members) {
      if (value.type != JsonValue::Type::Object) return false;
      ResourceProfile res;
      if (!json_get_number(value, "busy_unit_seconds", &res.busy_unit_seconds) ||
          !json_get_number(value, "capacity_units", &res.capacity_units)) {
        return false;
      }
      r.resources[name] = res;
    }
  }

  if (const JsonValue* spans = root.find("spans");
      spans != nullptr && spans->type == JsonValue::Type::Object) {
    if (!json_get_count(*spans, "recorded", &r.span_count) ||
        !json_get_count(*spans, "dropped", &r.spans_dropped)) {
      return false;
    }
    // Optional: absent from pre-runtime profiles (bulk runs carry no
    // task attribution).
    if (spans->find("task_nodes") != nullptr &&
        !json_get_count(*spans, "task_nodes", &r.task_nodes)) {
      return false;
    }
  }

  if (const JsonValue* top = root.find("top_spans");
      top != nullptr && top->type == JsonValue::Type::Array) {
    for (const JsonValue& value : top->elements) {
      if (value.type != JsonValue::Type::Object) return false;
      SpanAggregate a;
      const JsonValue* name = value.find("name");
      const JsonValue* phase = value.find("phase");
      if (name == nullptr || name->type != JsonValue::Type::String ||
          phase == nullptr || phase->type != JsonValue::Type::String ||
          !json_get_number(value, "busy_seconds", &a.busy_seconds) ||
          !json_get_count(value, "count", &a.count) ||
          !json_get_int64(value, "flops", &a.flops)) {
        return false;
      }
      a.name = name->str;
      a.phase = phase_from_name(phase->str);
      r.top_spans.push_back(std::move(a));
    }
  }

  *out = std::move(r);
  return true;
}

bool read_profile_json_file(const std::string& path, ProfileReport* out) {
  std::ifstream is(path);
  if (!is) return false;
  return read_profile_json(is, out);
}

// ----- regression-gate comparison ------------------------------------

namespace {

std::string fmt_finding(const char* format, const std::string& subject,
                        double before, double after, double drift,
                        double tolerance) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, subject.c_str(), before, after,
                drift, tolerance);
  return buf;
}

double fraction(double part, double whole) {
  return whole > 0.0 ? part / whole : 0.0;
}

}  // namespace

std::vector<std::string> compare_profiles(const ProfileReport& baseline,
                                          const ProfileReport& current,
                                          double tolerance) {
  std::vector<std::string> findings;
  const double mb = baseline.makespan_seconds;
  const double mc = current.makespan_seconds;
  const double rel = std::abs(mc - mb) / std::max(std::abs(mb), 1e-300);
  if (rel > tolerance) {
    findings.push_back(fmt_finding(
        "%s: %.6g s -> %.6g s (relative drift %.3g > tolerance %.3g)",
        "makespan", mb, mc, rel, tolerance));
  }
  // Union of phase names, in sorted order (both maps are sorted).
  std::vector<std::string> keys;
  for (const auto& [name, ph] : baseline.phases) keys.push_back(name);
  for (const auto& [name, ph] : current.phases) keys.push_back(name);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const PhaseProfile zero;
  for (const std::string& name : keys) {
    const auto bit = baseline.phases.find(name);
    const auto cit = current.phases.find(name);
    const PhaseProfile& bp = bit != baseline.phases.end() ? bit->second : zero;
    const PhaseProfile& cp = cit != current.phases.end() ? cit->second : zero;
    const double crit_b = fraction(bp.critical_seconds, mb);
    const double crit_c = fraction(cp.critical_seconds, mc);
    if (std::abs(crit_c - crit_b) > tolerance) {
      findings.push_back(fmt_finding(
          "phase %s: critical-path fraction %.4f -> %.4f "
          "(drift %.3g > tolerance %.3g)",
          name, crit_b, crit_c, std::abs(crit_c - crit_b), tolerance));
    }
    const double busy_b = fraction(bp.busy_seconds, mb);
    const double busy_c = fraction(cp.busy_seconds, mc);
    if (std::abs(busy_c - busy_b) > tolerance) {
      findings.push_back(fmt_finding(
          "phase %s: busy fraction %.4f -> %.4f "
          "(drift %.3g > tolerance %.3g)",
          name, busy_b, busy_c, std::abs(busy_c - busy_b), tolerance));
    }
  }
  return findings;
}

// ----- text rendering -------------------------------------------------

void write_profile_text(const ProfileReport& r, std::ostream& os) {
  char buf[256];
  const double makespan = r.makespan_seconds;
  std::snprintf(buf, sizeof(buf),
                "profile v%d  makespan %.6f s  (%lld spans, %lld dropped)\n",
                ProfileReport::kProfileVersion, makespan, r.span_count,
                r.spans_dropped);
  os << buf;
  if (r.task_nodes > 0) {
    std::snprintf(buf, sizeof(buf), "  task nodes: %lld (DAG runtime)\n",
                  r.task_nodes);
    os << buf;
  }
  for (const auto& [key, value] : r.meta) {
    os << "  " << key << ": " << value << "\n";
  }
  std::snprintf(
      buf, sizeof(buf),
      "critical path: %.6f s over %lld segments + %lld gaps "
      "(idle %.6f s)\n",
      r.critical_path_seconds, r.critical_segments, r.critical_gaps,
      r.idle_critical_seconds);
  os << buf;
  std::snprintf(
      buf, sizeof(buf),
      "abft on path : %.6f s; no-ABFT projection %.6f s (%.1f%% of run)\n",
      r.abft_critical_seconds, r.projected_no_abft_seconds,
      100.0 * fraction(r.projected_no_abft_seconds, makespan));
  os << buf;

  os << "\nphase      spans       busy_s    critical_s  crit%\n";
  for (const auto& [name, ph] : r.phases) {
    std::snprintf(buf, sizeof(buf), "%-9s %6lld %12.6f %12.6f %6.2f\n",
                  name.c_str(), ph.spans, ph.busy_seconds,
                  ph.critical_seconds,
                  100.0 * fraction(ph.critical_seconds, makespan));
    os << buf;
  }
  std::snprintf(buf, sizeof(buf), "%-9s %6s %12s %12.6f %6.2f\n", "idle", "-",
                "-", r.idle_critical_seconds,
                100.0 * fraction(r.idle_critical_seconds, makespan));
  os << buf;

  os << "\nresource     busy_unit_s  capacity  util%   idle_unit_s\n";
  for (const auto& [name, res] : r.resources) {
    const double window = res.capacity_units * makespan;
    std::snprintf(buf, sizeof(buf), "%-12s %11.6f %9.0f %6.2f %13.6f\n",
                  name.c_str(), res.busy_unit_seconds, res.capacity_units,
                  100.0 * fraction(res.busy_unit_seconds, window),
                  window - res.busy_unit_seconds);
    os << buf;
  }

  os << "\ntop spans by busy time:\n";
  os << "name             phase    count       busy_s          flops\n";
  for (const auto& a : r.top_spans) {
    std::snprintf(buf, sizeof(buf), "%-16s %-8s %6lld %12.6f %14lld\n",
                  a.name.c_str(), to_string(a.phase), a.count, a.busy_seconds,
                  static_cast<long long>(a.flops));
    os << buf;
  }
}

}  // namespace ftla::obs
