// Simulated-time profiler spans: the raw material of profile reports.
//
// A Span is one completed simulated activity — kernel, host task or DMA
// copy — with its virtual-time window, the resource lane it occupied
// (stream, copy engine or host CPU), its modeled cost, and two profiler
// attributions stamped at record time:
//   * an ABFT phase (checksum encoding / recalculation / updating /
//     verification / recovery, or base factorization work), derived
//     from the kernel name and, for neutrally-named work such as the
//     checksum-strip GEMMs or staging copies, from a driver-pushed
//     phase scope (abft::Telemetry / PhaseScope);
//   * the driver's outer iteration (-1 outside the factorization loop).
//
// The store is fed by sim::Machine (see Machine::set_span_store) and is
// deliberately sim-agnostic: the kernel class arrives as its string
// name so obs keeps no dependency on sim headers. Everything is virtual
// time; nothing here reads a wall clock, so identical runs produce
// identical spans — the byte-stability contract of profile reports
// rests on this.
//
// Thread safety: mutators are serialized by an internal mutex (kernels
// may be issued while thread-pool workers report telemetry), annotated
// for clang's -Wthread-safety. snapshot() copies under the same lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/event.hpp"

namespace ftla::obs {

/// ABFT phase attribution, mirroring the paper's overhead decomposition
/// (Tables II-VI): base factorization work vs. the five ABFT costs.
enum class Phase {
  Base,     ///< the factorization itself (POTF2/TRSM/SYRK/GEMM, staging)
  Encode,   ///< initial checksum encoding (Algorithm 1 prologue)
  Recalc,   ///< checksum recalculation before a verification
  Update,   ///< checksum updating alongside the trailing update (Opt 2)
  Verify,   ///< recalculated-vs-stored comparison (incl. final sweeps)
  Recover,  ///< checkpoints, rollbacks and rerun re-uploads
};

[[nodiscard]] const char* to_string(Phase p);

/// Name-based phase classification, shared by every driver: kernel
/// naming is a cross-layer convention ("encode_*", "recalc_*",
/// "verify*", "ckpt_*"/"restore_*", "*chk*"), and anything neutral is
/// Base — which a surrounding PhaseScope may override at record time.
[[nodiscard]] Phase classify_span_name(const std::string& name);

struct Span {
  EventKind kind = EventKind::Kernel;  ///< Kernel, HostTask or Copy
  std::string name;  ///< kernel/copy label ("syrk", "h2d_2d", ...)
  std::string cls;   ///< sim::KernelClass name ("blas3", "host_potf2", ...)
  int lane = 0;      ///< stream id, or kHostLane/kH2dLane/kD2hLane
  double start = 0.0;  ///< virtual seconds
  double end = 0.0;
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
  int units = 0;  ///< SM units occupied (kernels)
  Phase phase = Phase::Base;
  int iteration = -1;
  /// Task-graph node that issued this span (-1 = outside a task). With
  /// the DAG runtime, iterations interleave in virtual time, so the
  /// task node — not the iteration — is the unit that partitions work.
  int task = -1;
};

class SpanStore {
 public:
  /// Default cap on retained spans, mirroring Machine::kDefaultTraceLimit
  /// (long TimingOnly sweeps would otherwise hold millions of spans).
  static constexpr std::size_t kDefaultLimit = 1u << 20;

  explicit SpanStore(std::size_t limit = kDefaultLimit) : limit_(limit) {}

  /// Records one completed activity. The phase is classified from
  /// `name`; a Base result is overridden by the innermost active
  /// PhaseScope, and the current iteration is stamped.
  void record(EventKind kind, const std::string& name, const char* cls,
              int lane, double start, double end, std::int64_t flops,
              std::int64_t bytes, int units);

  /// Driver tagging (normally via abft::Telemetry): the outer iteration
  /// subsequent spans belong to (-1 = outside the loop).
  void set_iteration(int iteration);
  /// Task-graph tagging (normally via runtime::TaskScope): the graph
  /// node subsequent spans belong to. Returns the previous value so a
  /// scope can restore it.
  int set_task(int task);
  void push_phase(Phase p);
  void pop_phase();

  /// Retained spans in record order (copy taken under the lock).
  [[nodiscard]] std::vector<Span> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  /// Spans discarded because the store was at its cap.
  [[nodiscard]] std::size_t dropped() const;

 private:
  mutable common::Mutex mu_;
  const std::size_t limit_;
  std::vector<Span> spans_ FTLA_GUARDED_BY(mu_);
  std::vector<Phase> phase_stack_ FTLA_GUARDED_BY(mu_);
  int iteration_ FTLA_GUARDED_BY(mu_) = -1;
  int task_ FTLA_GUARDED_BY(mu_) = -1;
  std::size_t dropped_ FTLA_GUARDED_BY(mu_) = 0;
};

/// Null-safe RAII phase override: spans recorded while the scope lives
/// and classified Base by name are attributed to `p` instead. Scopes
/// nest; the innermost wins.
class PhaseScope {
 public:
  PhaseScope(SpanStore* store, Phase p) : store_(store) {
    if (store_ != nullptr) store_->push_phase(p);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() {
    if (store_ != nullptr) store_->pop_phase();
  }

 private:
  SpanStore* store_;
};

/// Null-safe RAII task attribution: spans recorded while the scope
/// lives carry `task` as their graph-node id. Restores the previous
/// task on exit (scopes nest, the innermost wins), including during
/// exception unwind — verification tasks may throw at issue time.
class TaskScope {
 public:
  TaskScope(SpanStore* store, int task) : store_(store) {
    if (store_ != nullptr) prev_ = store_->set_task(task);
  }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;
  ~TaskScope() {
    if (store_ != nullptr) store_->set_task(prev_);
  }

 private:
  SpanStore* store_;
  int prev_ = -1;
};

}  // namespace ftla::obs
