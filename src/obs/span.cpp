#include "obs/span.hpp"

namespace ftla::obs {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::Base: return "base";
    case Phase::Encode: return "encode";
    case Phase::Recalc: return "recalc";
    case Phase::Update: return "update";
    case Phase::Verify: return "verify";
    case Phase::Recover: return "recover";
  }
  return "base";
}

Phase classify_span_name(const std::string& name) {
  const auto starts_with = [&name](const char* prefix) {
    return name.rfind(prefix, 0) == 0;
  };
  if (starts_with("verify")) return Phase::Verify;
  if (starts_with("recalc")) return Phase::Recalc;
  if (starts_with("encode")) return Phase::Encode;
  // Checkpoint/restore names carry a "chk" fragment too, so the recovery
  // prefixes must win before the substring test below.
  if (starts_with("ckpt") || starts_with("restore")) return Phase::Recover;
  if (name.find("chk") != std::string::npos) return Phase::Update;
  return Phase::Base;
}

void SpanStore::record(EventKind kind, const std::string& name,
                       const char* cls, int lane, double start, double end,
                       std::int64_t flops, std::int64_t bytes, int units) {
  common::MutexLock lk(mu_);
  if (spans_.size() >= limit_) {
    ++dropped_;
    return;
  }
  Span s;
  s.kind = kind;
  s.name = name;
  s.cls = cls;
  s.lane = lane;
  s.start = start;
  s.end = end;
  s.flops = flops;
  s.bytes = bytes;
  s.units = units;
  s.phase = classify_span_name(name);
  if (s.phase == Phase::Base && !phase_stack_.empty()) {
    s.phase = phase_stack_.back();
  }
  s.iteration = iteration_;
  s.task = task_;
  spans_.push_back(std::move(s));
}

void SpanStore::set_iteration(int iteration) {
  common::MutexLock lk(mu_);
  iteration_ = iteration;
}

int SpanStore::set_task(int task) {
  common::MutexLock lk(mu_);
  const int prev = task_;
  task_ = task;
  return prev;
}

void SpanStore::push_phase(Phase p) {
  common::MutexLock lk(mu_);
  phase_stack_.push_back(p);
}

void SpanStore::pop_phase() {
  common::MutexLock lk(mu_);
  if (!phase_stack_.empty()) phase_stack_.pop_back();
}

std::vector<Span> SpanStore::snapshot() const {
  common::MutexLock lk(mu_);
  return spans_;
}

std::size_t SpanStore::size() const {
  common::MutexLock lk(mu_);
  return spans_.size();
}

std::size_t SpanStore::dropped() const {
  common::MutexLock lk(mu_);
  return dropped_;
}

}  // namespace ftla::obs
