#include "obs/report.hpp"

#include <cmath>
#include <fstream>
#include <ostream>

#include "obs/event_sink.hpp"  // json_escape

namespace ftla::obs {

namespace {

void write_histogram(const Histogram& h, std::ostream& os) {
  os << "{\"count\":" << h.count() << ",\"sum\":" << h.sum()
     << ",\"min\":" << h.min() << ",\"max\":" << h.max()
     << ",\"mean\":" << h.mean() << ",\"p50\":" << h.p50()
     << ",\"p95\":" << h.p95() << ",\"p99\":" << h.p99() << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_hits(i) == 0) continue;  // sparse: empty buckets omitted
    if (!first) os << ',';
    first = false;
    const double le = h.bucket_upper(i);
    os << "{\"le\":";
    if (std::isinf(le)) {
      os << "\"inf\"";
    } else {
      os << le;
    }
    os << ",\"n\":" << h.bucket_hits(i) << '}';
  }
  os << "]}";
}

}  // namespace

void write_metrics_json(const MetricsReport& report, std::ostream& os) {
  os << "{\"schema_version\":" << MetricsReport::kSchemaVersion
     << ",\"meta\":{";
  bool first = true;
  for (const auto& [k, v] : report.meta) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(k, os);
    os << "\":\"";
    json_escape(v, os);
    os << '"';
  }
  os << "},\"counters\":{";
  first = true;
  for (const auto& [name, v] : report.metrics.counters()) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(name, os);
    os << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : report.metrics.gauges()) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(name, os);
    os << "\":" << v;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : report.metrics.histograms()) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(name, os);
    os << "\":";
    write_histogram(h, os);
  }
  os << "}}";
}

bool write_metrics_json_file(const MetricsReport& report,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_metrics_json(report, f);
  f << '\n';
  return static_cast<bool>(f);
}

}  // namespace ftla::obs
