#include "obs/report.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/event_sink.hpp"  // json_escape
#include "obs/json.hpp"

namespace ftla::obs {

namespace {

void write_histogram(const Histogram& h, std::ostream& os) {
  os << "{\"count\":" << h.count() << ",\"sum\":" << fmt_double(h.sum())
     << ",\"min\":" << fmt_double(h.min()) << ",\"max\":"
     << fmt_double(h.max()) << ",\"mean\":" << fmt_double(h.mean())
     << ",\"p50\":" << fmt_double(h.p50()) << ",\"p95\":"
     << fmt_double(h.p95()) << ",\"p99\":" << fmt_double(h.p99())
     << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_hits(i) == 0) continue;  // sparse: empty buckets omitted
    if (!first) os << ',';
    first = false;
    const double le = h.bucket_upper(i);
    os << "{\"le\":";
    if (std::isinf(le)) {
      os << "\"inf\"";
    } else {
      os << fmt_double(le);
    }
    os << ",\"n\":" << h.bucket_hits(i) << '}';
  }
  os << "]}";
}

}  // namespace

void write_metrics_json(const MetricsReport& report, std::ostream& os) {
  os << "{\"schema_version\":" << MetricsReport::kSchemaVersion
     << ",\"meta\":{";
  bool first = true;
  for (const auto& [k, v] : report.meta) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(k, os);
    os << "\":\"";
    json_escape(v, os);
    os << '"';
  }
  os << "},\"counters\":{";
  first = true;
  for (const auto& [name, v] : report.metrics.counters()) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(name, os);
    os << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : report.metrics.gauges()) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(name, os);
    os << "\":" << fmt_double(v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : report.metrics.histograms()) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(name, os);
    os << "\":";
    write_histogram(h, os);
  }
  os << "}}";
}

bool write_metrics_json_file(const MetricsReport& report,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_metrics_json(report, f);
  f << '\n';
  return static_cast<bool>(f);
}

bool read_metrics_json(std::istream& is, MetricsDoc* out) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  if (!parse_json(text, &root) || root.type != JsonValue::Type::Object) {
    return false;
  }
  long long version = 0;
  if (!json_get_count(root, "schema_version", &version) ||
      version != MetricsReport::kSchemaVersion) {
    return false;
  }

  MetricsDoc doc;
  if (const JsonValue* meta = root.find("meta");
      meta != nullptr && meta->type == JsonValue::Type::Object) {
    for (const auto& [k, v] : meta->members) {
      if (v.type != JsonValue::Type::String) return false;
      doc.meta.emplace_back(k, v.str);
    }
  }
  if (const JsonValue* counters = root.find("counters");
      counters != nullptr && counters->type == JsonValue::Type::Object) {
    for (const auto& [name, v] : counters->members) {
      if (v.type != JsonValue::Type::Number) return false;
      doc.counters[name] = static_cast<long long>(v.number);
    }
  }
  if (const JsonValue* gauges = root.find("gauges");
      gauges != nullptr && gauges->type == JsonValue::Type::Object) {
    for (const auto& [name, v] : gauges->members) {
      if (v.type != JsonValue::Type::Number) return false;
      doc.gauges[name] = v.number;
    }
  }
  if (const JsonValue* histograms = root.find("histograms");
      histograms != nullptr &&
      histograms->type == JsonValue::Type::Object) {
    for (const auto& [name, v] : histograms->members) {
      if (v.type != JsonValue::Type::Object) return false;
      MetricsDoc::HistogramSummary h;
      if (!json_get_count(v, "count", &h.count) ||
          !json_get_number(v, "sum", &h.sum) ||
          !json_get_number(v, "min", &h.min) ||
          !json_get_number(v, "max", &h.max) ||
          !json_get_number(v, "mean", &h.mean) ||
          !json_get_number(v, "p50", &h.p50) ||
          !json_get_number(v, "p95", &h.p95) ||
          !json_get_number(v, "p99", &h.p99)) {
        return false;
      }
      const JsonValue* buckets = v.find("buckets");
      if (buckets == nullptr || buckets->type != JsonValue::Type::Array) {
        return false;
      }
      for (const auto& b : buckets->elements) {
        if (b.type != JsonValue::Type::Object) return false;
        const JsonValue* le = b.find("le");
        long long hits = 0;
        if (le == nullptr || !json_get_count(b, "n", &hits)) return false;
        double upper = 0.0;
        if (le->type == JsonValue::Type::String && le->str == "inf") {
          upper = std::numeric_limits<double>::infinity();
        } else if (le->type == JsonValue::Type::Number) {
          upper = le->number;
        } else {
          return false;
        }
        h.buckets.emplace_back(upper, hits);
      }
      doc.histograms.emplace(name, std::move(h));
    }
  }

  *out = std::move(doc);
  return true;
}

bool read_metrics_json_file(const std::string& path, MetricsDoc* out) {
  std::ifstream is(path);
  if (!is) return false;
  return read_metrics_json(is, out);
}

}  // namespace ftla::obs
