// Profile reports: the analyzer over SpanStore output.
//
// build_profile() turns a run's spans plus the simulator's resource
// accounting into the paper-shaped overhead story:
//   * per-phase decomposition — span counts, busy (span-duration)
//     seconds and modeled flops for base factorization work vs. each
//     ABFT phase (encode/recalc/update/verify/recover);
//   * critical-path extraction — a deterministic backward walk from the
//     makespan, at each point blaming the latest-finishing span and
//     jumping to its start (span starts already encode stream FIFO
//     order, event waits and SM contention, so the walk follows the
//     dependency structure the simulator enforced); uncovered gaps are
//     idle time (host API overhead, true bubbles);
//   * a what-if "ABFT removed" projection — the makespan minus the
//     critical-path time attributed to non-Base phases, an optimistic
//     lower bound (removing ABFT work cannot lengthen the path, but
//     remaining work may re-pack differently);
//   * per-resource utilization (busy unit-seconds over capacity x
//     makespan) and idle-time attribution;
//   * top-K span aggregates by total busy time.
//
// Exactness contract (virtual time has no measurement noise, so these
// are identities, not approximations):
//   * critical_path_seconds == makespan_seconds, by construction: the
//     walk tiles [0, makespan] with span segments and idle gaps;
//   * idle_critical_seconds is defined as the exact remainder
//     makespan - sum of per-phase critical_seconds accumulated in
//     sorted phase order, so recomputing that sorted sum and adding the
//     idle term reproduces the makespan bit-for-bit. A few-ulp
//     summation overshoot is absorbed into the largest phase
//     (deterministically), so the remainder is also never negative.
//
// JSON export is schema-versioned (profile_version 1), keys sorted at
// every level, doubles printed with 17 significant digits: identical
// runs — serial or threaded — serialize byte-identically, which is
// what the bench/baselines regression gate diffs against.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace ftla::obs {

struct PhaseProfile {
  long long spans = 0;
  double busy_seconds = 0.0;  ///< sum of span durations (overlap counted)
  std::int64_t flops = 0;
  double critical_seconds = 0.0;  ///< time on the critical path
};

struct ResourceProfile {
  double busy_unit_seconds = 0.0;
  double capacity_units = 1.0;
};

struct SpanAggregate {
  std::string name;
  Phase phase = Phase::Base;
  long long count = 0;
  double busy_seconds = 0.0;
  std::int64_t flops = 0;
};

struct ProfileReport {
  static constexpr int kProfileVersion = 1;

  /// Free-form run description (algo, n, variant...), sorted on export.
  std::map<std::string, std::string> meta;

  double makespan_seconds = 0.0;
  double critical_path_seconds = 0.0;  ///< == makespan (see header)
  double idle_critical_seconds = 0.0;  ///< exact decomposition remainder
  double abft_critical_seconds = 0.0;  ///< non-Base critical-path time
  double projected_no_abft_seconds = 0.0;
  long long critical_segments = 0;  ///< spans blamed by the walk
  long long critical_gaps = 0;      ///< idle gaps the walk crossed

  /// Keyed by phase name; every phase is present (zeroed when unused).
  std::map<std::string, PhaseProfile> phases;
  std::map<std::string, ResourceProfile> resources;
  std::vector<SpanAggregate> top_spans;  ///< busy-time descending

  long long span_count = 0;
  long long spans_dropped = 0;
  /// Distinct task-graph nodes that issued spans (0 = bulk-synchronous
  /// run, no task attribution). Under the DAG runtime iterations
  /// interleave in virtual time, so per-task stamps — not the iteration
  /// label — are what keep the phase decomposition and the critical
  /// walk's blame exact; this count is the export of that attribution.
  long long task_nodes = 0;
};

/// Analyzes one run. `makespan` is Machine::makespan(); `resources`
/// carries the simulator's busy-unit accounting (see sim/profiler.hpp).
ProfileReport build_profile(const std::vector<Span>& spans, double makespan,
                            const std::map<std::string, ResourceProfile>& resources,
                            std::size_t spans_dropped = 0, int top_k = 12);

/// Byte-stable schema-v1 JSON (sorted keys, 17-digit doubles).
void write_profile_json(const ProfileReport& report, std::ostream& os);
/// Convenience: writes the JSON to a file; returns false on I/O error.
bool write_profile_json_file(const ProfileReport& report,
                             const std::string& path);

/// Parses a profile_version-1 document written by write_profile_json.
/// Returns false on malformed input or a schema-version mismatch.
bool read_profile_json(std::istream& is, ProfileReport* out);
bool read_profile_json_file(const std::string& path, ProfileReport* out);

/// Regression-gate comparison: relative makespan drift plus absolute
/// drift of each phase's critical-path and busy fractions, against
/// `tolerance`. Returns human-readable findings (empty = within
/// tolerance), in deterministic order.
std::vector<std::string> compare_profiles(const ProfileReport& baseline,
                                          const ProfileReport& current,
                                          double tolerance);

/// Human-readable rendering (the ftla_profile_cli text table).
void write_profile_text(const ProfileReport& report, std::ostream& os);

}  // namespace ftla::obs
