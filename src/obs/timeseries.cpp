#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace ftla::obs {

void TimeSeriesStore::sample_counter(const std::string& name, double time,
                                     double delta) {
  common::MutexLock lk(mu_);
  double& total = totals_[name];
  total += delta;
  if (size_ >= limit_) {
    ++dropped_;
    return;
  }
  series_[name].push_back(TimeSeriesSample{time, total});
  ++size_;
}

void TimeSeriesStore::sample_gauge(const std::string& name, double time,
                                   double value) {
  common::MutexLock lk(mu_);
  if (size_ >= limit_) {
    ++dropped_;
    return;
  }
  series_[name].push_back(TimeSeriesSample{time, value});
  ++size_;
}

std::map<std::string, std::vector<TimeSeriesSample>> TimeSeriesStore::snapshot()
    const {
  common::MutexLock lk(mu_);
  return series_;
}

std::size_t TimeSeriesStore::size() const {
  common::MutexLock lk(mu_);
  return size_;
}

std::size_t TimeSeriesStore::dropped() const {
  common::MutexLock lk(mu_);
  return dropped_;
}

namespace {

// Nearest-rank percentile over an ascending-sorted vector: the value at
// rank max(1, ceil(p/100 * n)). Matches the Histogram contract in
// common/stats.hpp, but exact here because the window keeps its raw
// samples.
double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TimeSeriesWindow fold_window(double start, double end,
                             const std::vector<double>& sorted_values) {
  TimeSeriesWindow w;
  w.start = start;
  w.end = end;
  w.samples = static_cast<long long>(sorted_values.size());
  w.min = sorted_values.front();
  w.max = sorted_values.back();
  double sum = 0.0;
  for (const double v : sorted_values) sum += v;
  w.mean = sum / static_cast<double>(sorted_values.size());
  w.p50 = nearest_rank(sorted_values, 50.0);
  w.p99 = nearest_rank(sorted_values, 99.0);
  return w;
}

}  // namespace

TimeSeriesReport build_timeseries_report(const TimeSeriesStore& store,
                                         double window_seconds) {
  TimeSeriesReport report;
  report.window_seconds = window_seconds > 0.0 ? window_seconds : 0.0;
  report.samples_recorded = static_cast<long long>(store.size());
  report.samples_dropped = static_cast<long long>(store.dropped());

  for (auto& [name, raw] : store.snapshot()) {
    // Sort by (time, value) so the rollup is independent of recording
    // interleaving: any thread schedule yields the same sorted order,
    // hence the same summation order, mean, and percentiles.
    std::vector<TimeSeriesSample> samples = raw;
    std::sort(samples.begin(), samples.end(),
              [](const TimeSeriesSample& a, const TimeSeriesSample& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.value < b.value;
              });

    TimeSeriesRollup rollup;
    rollup.samples = static_cast<long long>(samples.size());
    if (!samples.empty()) {
      if (report.window_seconds <= 0.0) {
        // One window spanning the series.
        std::vector<double> values;
        values.reserve(samples.size());
        for (const auto& s : samples) values.push_back(s.value);
        std::sort(values.begin(), values.end());
        rollup.windows.push_back(fold_window(
            samples.front().time, samples.back().time, values));
      } else {
        const double w = report.window_seconds;
        std::size_t i = 0;
        while (i < samples.size()) {
          const auto k =
              static_cast<long long>(std::floor(samples[i].time / w));
          const double start = static_cast<double>(k) * w;
          const double end = static_cast<double>(k + 1) * w;
          std::vector<double> values;
          while (i < samples.size() && samples[i].time < end) {
            values.push_back(samples[i].value);
            ++i;
          }
          std::sort(values.begin(), values.end());
          rollup.windows.push_back(fold_window(start, end, values));
        }
      }
    }
    report.series.emplace(name, std::move(rollup));
  }
  return report;
}

void write_timeseries_json(const TimeSeriesReport& report, std::ostream& os) {
  os << "{\"meta\":{";
  bool first = true;
  for (const auto& [k, v] : report.meta) {
    if (!first) os << ',';
    first = false;
    write_json_string(k, os);
    os << ':';
    write_json_string(v, os);
  }
  os << "},\"samples_dropped\":" << report.samples_dropped
     << ",\"samples_recorded\":" << report.samples_recorded << ",\"series\":{";
  first = true;
  for (const auto& [name, rollup] : report.series) {
    if (!first) os << ',';
    first = false;
    write_json_string(name, os);
    os << ":{\"samples\":" << rollup.samples << ",\"windows\":[";
    bool first_w = true;
    for (const auto& w : rollup.windows) {
      if (!first_w) os << ',';
      first_w = false;
      os << "{\"end\":" << fmt_double(w.end) << ",\"max\":"
         << fmt_double(w.max) << ",\"mean\":" << fmt_double(w.mean)
         << ",\"min\":" << fmt_double(w.min) << ",\"p50\":"
         << fmt_double(w.p50) << ",\"p99\":" << fmt_double(w.p99)
         << ",\"samples\":" << w.samples << ",\"start\":"
         << fmt_double(w.start) << '}';
    }
    os << "]}";
  }
  os << "},\"timeseries_version\":" << TimeSeriesReport::kTimeseriesVersion
     << ",\"window_seconds\":" << fmt_double(report.window_seconds) << "}\n";
}

bool write_timeseries_json_file(const TimeSeriesReport& report,
                                const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_timeseries_json(report, os);
  return static_cast<bool>(os);
}

bool read_timeseries_json(std::istream& is, TimeSeriesReport* out) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  if (!parse_json(text, &root) || root.type != JsonValue::Type::Object) {
    return false;
  }
  long long version = 0;
  if (!json_get_count(root, "timeseries_version", &version) ||
      version != TimeSeriesReport::kTimeseriesVersion) {
    return false;
  }

  TimeSeriesReport report;
  if (const JsonValue* meta = root.find("meta");
      meta != nullptr && meta->type == JsonValue::Type::Object) {
    for (const auto& [k, v] : meta->members) {
      if (v.type != JsonValue::Type::String) return false;
      report.meta[k] = v.str;
    }
  }
  if (!json_get_number(root, "window_seconds", &report.window_seconds) ||
      !json_get_count(root, "samples_recorded", &report.samples_recorded) ||
      !json_get_count(root, "samples_dropped", &report.samples_dropped)) {
    return false;
  }

  const JsonValue* series = root.find("series");
  if (series == nullptr || series->type != JsonValue::Type::Object) {
    return false;
  }
  for (const auto& [name, body] : series->members) {
    if (body.type != JsonValue::Type::Object) return false;
    TimeSeriesRollup rollup;
    if (!json_get_count(body, "samples", &rollup.samples)) return false;
    const JsonValue* windows = body.find("windows");
    if (windows == nullptr || windows->type != JsonValue::Type::Array) {
      return false;
    }
    for (const auto& wv : windows->elements) {
      if (wv.type != JsonValue::Type::Object) return false;
      TimeSeriesWindow w;
      if (!json_get_number(wv, "start", &w.start) ||
          !json_get_number(wv, "end", &w.end) ||
          !json_get_count(wv, "samples", &w.samples) ||
          !json_get_number(wv, "min", &w.min) ||
          !json_get_number(wv, "max", &w.max) ||
          !json_get_number(wv, "mean", &w.mean) ||
          !json_get_number(wv, "p50", &w.p50) ||
          !json_get_number(wv, "p99", &w.p99)) {
        return false;
      }
      rollup.windows.push_back(w);
    }
    report.series.emplace(name, std::move(rollup));
  }

  *out = std::move(report);
  return true;
}

bool read_timeseries_json_file(const std::string& path,
                               TimeSeriesReport* out) {
  std::ifstream is(path);
  if (!is) return false;
  return read_timeseries_json(is, out);
}

}  // namespace ftla::obs
