// Causal tracing for the fleet service stack.
//
// A *trace* is the full causal story of one submitted job: the queue
// wait, every placement attempt, the driver invocation it resolved to,
// the panel checkpoints it cut, the DAG tasks it scheduled, and the
// loss / migrate / resume steps that recovery inserted between them.
// Each step is a TraceSpan carrying {trace_id, span_id, parent_span,
// device, tenant} plus virtual-time start/end stamps, so a flat span
// file reassembles into one tree per job even when the spans were
// recorded on different devices.
//
// Determinism is the load-bearing property: trace and span ids are
// *derived*, never drawn. derive_trace_id mixes the campaign seed with
// the job sequence number; derive_span_id mixes the parent span id with
// a child index that is a function of program structure (attempt
// number, checkpoint iteration, DAG task id) — never of wall clock,
// thread identity, or allocation order. Two runs of the same seed
// therefore produce byte-identical trace files regardless of thread
// count, which is what lets `ftla_trace_cli --diff` gate CI.
//
// Serialization follows the obs export conventions (json.hpp): keys
// sorted, doubles through fmt_double, a `trace_version` field first.
// Ids are printed as fixed-width lowercase hex strings because JSON
// numbers cannot carry 64 bits exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace ftla::obs {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

/// Current trace file schema version.
inline constexpr int kTraceVersion = 1;

// Child-index namespaces for derive_span_id. Structural children of a
// span use small indices (attempt number, fixed slots); the bases keep
// per-iteration, per-checkpoint and per-DAG-task children from ever
// colliding with them or each other.
inline constexpr std::uint64_t kTraceCheckpointChildBase = 1ull << 16;
inline constexpr std::uint64_t kTraceIterationChildBase = 2ull << 16;
inline constexpr std::uint64_t kTraceTaskChildBase = 3ull << 16;
/// Fixed child index the ABFT driver roots its "factorize" span at —
/// callers handing a context to the driver keep their own direct
/// children below this value.
inline constexpr std::uint64_t kTraceDriverChild = 8;

/// Trace id for the `sequence`-th job derived from a campaign/run seed.
/// Pure mixing (splitmix64-style), never zero.
[[nodiscard]] TraceId derive_trace_id(std::uint64_t seed,
                                      std::uint64_t sequence);

/// Span id for the `child_index`-th structural child of `parent`.
/// Pure mixing, never zero. Distinct (parent, child_index) pairs map to
/// distinct ids for all practical purposes.
[[nodiscard]] SpanId derive_span_id(SpanId parent, std::uint64_t child_index);

/// Fixed-width lowercase hex rendering of an id (16 chars).
[[nodiscard]] std::string format_trace_id(std::uint64_t id);

/// Parses a format_trace_id string back; false on malformed input.
bool parse_trace_id(const std::string& text, std::uint64_t* out);

/// The propagation handle threaded from service::JobSpec down through
/// driver options into DAG task execution. `span_id` is the would-be
/// parent of any span recorded under this context.
struct TraceContext {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  int device = -1;
  std::string tenant;

  [[nodiscard]] bool valid() const { return trace_id != 0; }
  /// Context for a child span: same trace/device/tenant, new parent.
  [[nodiscard]] TraceContext child(std::uint64_t child_index) const {
    TraceContext c = *this;
    c.span_id = derive_span_id(span_id, child_index);
    return c;
  }
};

/// One recorded causal step. `end == start` marks an instantaneous
/// event span (submit, loss, complete markers).
struct TraceSpan {
  TraceId trace_id = 0;
  SpanId span_id = 0;
  SpanId parent_span = 0;  ///< 0 for the root span of a trace
  std::string name;        ///< short label ("attempt", "checkpoint", ...)
  std::string kind;        ///< job|queue|attempt|driver|pass|checkpoint|
                           ///< task|marker
  int device = -1;         ///< fleet device ordinal, -1 for host/service
  std::string tenant;
  double start = 0.0;      ///< virtual seconds (fleet-reconciled clock)
  double end = 0.0;
  std::string status;      ///< "ok", "loss", "error", "" (markers)
  std::string detail;      ///< free-form context
};

/// Thread-safe bounded span collector. Recording order does not matter:
/// exports sort into a canonical order, so concurrent scenario workers
/// feeding one store (or per-scenario stores merged in draw order)
/// produce identical files.
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity = 1u << 20);

  void record(const TraceSpan& span);
  void append(const std::vector<TraceSpan>& spans);

  [[nodiscard]] std::vector<TraceSpan> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const;
  void clear();

 private:
  mutable common::Mutex mu_;
  std::vector<TraceSpan> spans_ FTLA_GUARDED_BY(mu_);
  std::size_t capacity_;
  std::size_t dropped_ FTLA_GUARDED_BY(mu_) = 0;
};

/// A complete trace file: spans in canonical order (trace_id, start,
/// end, span_id) plus the count of spans the store had to drop.
struct TraceReport {
  std::vector<TraceSpan> spans;
  std::int64_t dropped = 0;

  /// Snapshot + canonical sort.
  [[nodiscard]] static TraceReport build(const TraceStore& store);

  /// Byte-stable trace_version-1 JSON.
  void write(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  bool write_file(const std::string& path) const;

  static bool read(const std::string& text, TraceReport* out,
                   std::string* error = nullptr);
  static bool read_file(const std::string& path, TraceReport* out,
                        std::string* error = nullptr);
};

/// One span with its children, reassembled. Children are ordered by
/// (start, end, span_id) — i.e. causal order under the virtual clock.
struct TraceNode {
  const TraceSpan* span = nullptr;
  std::vector<TraceNode> children;
};

/// One reassembled trace. Spans whose parent id never appears in the
/// file surface as extra roots after the true root, never silently
/// dropped; `missing_parents` counts them.
struct TraceTree {
  TraceId trace_id = 0;
  std::vector<TraceNode> roots;
  int missing_parents = 0;
};

/// Cross-device reassembly: groups spans by trace and rebuilds each
/// parent/child tree. Trees are ordered by trace_id.
[[nodiscard]] std::vector<TraceTree> assemble_traces(
    const TraceReport& report);

/// Span filter for the CLI. Zero / empty / -2 fields match everything.
struct TraceFilter {
  TraceId trace_id = 0;
  std::string tenant;
  int device = -2;
};

[[nodiscard]] TraceReport filter_trace(const TraceReport& report,
                                       const TraceFilter& filter);

/// Text waterfall: one line per span, indented by tree depth, with a
/// bar positioned on a shared virtual-time axis. Deterministic.
[[nodiscard]] std::string render_waterfall(const TraceReport& report,
                                           int width = 48);

/// Structural trace diff: matches traces by trace_id and compares span
/// trees recursively — name, kind, device, tenant, status, child count
/// and order — while ignoring absolute time stamps, so two runs of the
/// same seed compare clean even if one embeds a shifted clock.
struct TraceDiffResult {
  std::vector<std::string> differences;
  [[nodiscard]] bool identical() const { return differences.empty(); }
};

[[nodiscard]] TraceDiffResult diff_traces(const TraceReport& a,
                                          const TraceReport& b,
                                          std::size_t max_differences = 64);

}  // namespace ftla::obs
