#include "obs/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "obs/event_sink.hpp"  // json_escape

namespace ftla::obs {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_json_string(const std::string& s, std::ostream& os) {
  os << '"';
  json_escape(s, os);
  os << '"';
}

namespace {

class JsonParser {
 public:
  JsonParser(const char* begin, const char* end) : p_(begin), end_(end) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool consume(char c) {
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out->type = JsonValue::Type::String;
                return parse_string(&out->str);
      case 't':
        out->type = JsonValue::Type::Bool;
        out->boolean = true;
        return parse_literal("true");
      case 'f':
        out->type = JsonValue::Type::Bool;
        out->boolean = false;
        return parse_literal("false");
      case 'n': out->type = JsonValue::Type::Null;
                return parse_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_literal(const char* lit) {
    for (; *lit != '\0'; ++lit) {
      if (p_ == end_ || *p_ != *lit) return false;
      ++p_;
    }
    return true;
  }

  bool parse_number(JsonValue* out) {
    char* after = nullptr;
    // The buffer came from a file read into a NUL-terminated string, so
    // strtod stops at the first non-number character.
    const double v = std::strtod(p_, &after);
    if (after == p_) return false;
    out->type = JsonValue::Type::Number;
    out->number = v;
    p_ = after;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) return false;
        const char esc = *p_++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // Only the control-character escapes our writers emit.
            if (end_ - p_ < 4) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p_++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0x7f) return false;
            c = static_cast<char>(code);
            break;
          }
          default: return false;
        }
      }
      out->push_back(c);
    }
    return consume('"');
  }

  bool parse_object(JsonValue* out) {
    if (!consume('{')) return false;
    out->type = JsonValue::Type::Object;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue* out) {
    if (!consume('[')) return false;
    out->type = JsonValue::Type::Array;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->elements.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue* out) {
  JsonParser parser(text.c_str(), text.c_str() + text.size());
  return parser.parse(out);
}

bool json_get_number(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::Number) return false;
  *out = v->number;
  return true;
}

bool json_get_count(const JsonValue& obj, const char* key, long long* out) {
  double v = 0.0;
  if (!json_get_number(obj, key, &v)) return false;
  *out = static_cast<long long>(v);
  return true;
}

bool json_get_int64(const JsonValue& obj, const char* key,
                    std::int64_t* out) {
  double v = 0.0;
  if (!json_get_number(obj, key, &v)) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool json_get_string(const JsonValue& obj, const char* key,
                     std::string* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::String) return false;
  *out = v->str;
  return true;
}

}  // namespace ftla::obs
