// Flight recorder: a postmortem bundle for any CLI exiting nonzero.
//
// The recorder does not record anything itself — it composes views of
// the observability stores a CLI already owns (the bounded
// RingBufferSink, the MetricsRegistry, the SpanStore) and, on demand,
// serializes a bounded "what just happened" bundle: the last N events,
// the last N spans, every counter and gauge, free-form breadcrumbs the
// tool dropped along the way, and the exit code + reason being
// reported. CLIs dump it on any nonzero exit per the shared exit-code
// contract (common/exit_codes.hpp), replacing the ad-hoc trace/metrics/
// profile diagnostic triple CI used to re-run for.
//
// Determinism: everything in the bundle derives from virtual-clock
// stores, so the same failing run produces a byte-identical bundle —
// keys sorted at every level, doubles via fmt_double, schema-versioned
// (flight_version 1). read_flight_bundle() parses back the fields a
// test or triage script needs to reconcile the bundle against the
// metrics report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace ftla::obs {

class MetricsRegistry;
class RingBufferSink;
class SpanStore;

class FlightRecorder {
 public:
  /// Tail depths: enough context to see the failure's neighborhood
  /// without an unbounded dump.
  static constexpr std::size_t kDefaultEventTail = 256;
  static constexpr std::size_t kDefaultSpanTail = 64;

  FlightRecorder() = default;

  // Attach the stores to snapshot at dump time. All optional; a null
  // attachment simply leaves its section empty. Pointers must outlive
  // the recorder's last write_bundle/dump_file call.
  void attach_events(const RingBufferSink* sink) { events_ = sink; }
  void attach_metrics(const MetricsRegistry* metrics) { metrics_ = metrics; }
  void attach_spans(const SpanStore* spans) { spans_ = spans; }

  /// Run description (tool name, arguments...). Exported sorted.
  void set_meta(const std::string& key, const std::string& value) {
    meta_[key] = value;
  }

  /// Appends a free-form breadcrumb ("parsed args", "campaign started").
  /// Kept in append order; the trail shows how far the tool got.
  void note(const std::string& text) { breadcrumbs_.push_back(text); }

  void set_event_tail(std::size_t n) { event_tail_ = n; }
  void set_span_tail(std::size_t n) { span_tail_ = n; }

  /// Serializes the bundle: byte-stable flight_version-1 JSON with the
  /// last event_tail events, last span_tail spans, all metrics, meta,
  /// breadcrumbs, and the exit code + reason being reported.
  void write_bundle(std::ostream& os, int exit_code,
                    const std::string& reason) const;

  /// write_bundle to `path`; returns false on I/O failure.
  bool dump_file(const std::string& path, int exit_code,
                 const std::string& reason) const;

 private:
  const RingBufferSink* events_ = nullptr;
  const MetricsRegistry* metrics_ = nullptr;
  const SpanStore* spans_ = nullptr;
  std::map<std::string, std::string> meta_;
  std::vector<std::string> breadcrumbs_;
  std::size_t event_tail_ = kDefaultEventTail;
  std::size_t span_tail_ = kDefaultSpanTail;
};

/// Minimal event view parsed back from a bundle — the fields triage
/// needs to line events up against the metrics report.
struct FlightEvent {
  std::int64_t seq = -1;
  std::string kind;
  double time = 0.0;
  std::string name;
};

/// Read-back of the fields tests and triage scripts consume.
struct FlightBundle {
  int flight_version = 0;
  int exit_code = 0;
  std::string reason;
  std::map<std::string, std::string> meta;
  std::vector<std::string> breadcrumbs;
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  long long events_posted = 0;
  long long events_dropped = 0;
  std::vector<FlightEvent> events;
  long long spans_recorded = 0;
  long long spans_dropped = 0;
  long long span_tail = 0;  ///< spans actually present in the bundle
};

/// Parses a flight_version-1 bundle written by write_bundle. Returns
/// false on malformed input or a schema-version mismatch.
bool read_flight_bundle(std::istream& is, FlightBundle* out);
bool read_flight_bundle_file(const std::string& path, FlightBundle* out);

}  // namespace ftla::obs
