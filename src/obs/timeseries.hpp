// Time-series telemetry: virtual-clock-sampled counter/gauge series
// with deterministic windowed rollups.
//
// The store is the recording side: producers (sim::Machine occupancy
// derivation, abft::Telemetry verification counters) push samples
// stamped with the simulated clock. Two sample kinds cover the layer's
// needs:
//   * sample_counter(name, t, delta) — a monotone accumulation; the
//     store records the running total at t, so the series is the
//     counter's level over virtual time;
//   * sample_gauge(name, t, v) — a point-in-time measurement (SM units
//     in use, detection latency of the fault just caught).
//
// build_timeseries_report() turns a store into fixed-width windowed
// rollups: for every series, each non-empty window [k*W, (k+1)*W)
// carries the sample count, min, max, mean and nearest-rank p50/p99 of
// the samples falling inside it. Determinism contract: samples are
// sorted by (time, value) before any window is folded, so the mean's
// summation order and the percentiles are independent of recording
// interleaving — a run under FTLA_THREADS=4 rolls up byte-identically
// to a serial run. Everything is virtual time; nothing here reads a
// wall clock.
//
// Naming: series use the "timeseries." metric namespace (enforced by
// ftla_lint's metrics-naming rule), with the producing subsystem as the
// second segment — "timeseries.sim.sm_units_in_use",
// "timeseries.abft.verified_blocks".
//
// JSON export is schema-versioned (timeseries_version 1), keys sorted
// at every level, doubles via fmt_double — byte-stable for identical
// runs, like profile reports.
//
// Thread safety: the store's mutators are serialized by an internal
// mutex (telemetry records from thread-pool workers), annotated for
// clang's -Wthread-safety; snapshot() copies under the same lock.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace ftla::obs {

struct TimeSeriesSample {
  double time = 0.0;   ///< virtual seconds
  double value = 0.0;  ///< counter level or gauge reading
};

class TimeSeriesStore {
 public:
  /// Cap on total retained samples across all series, mirroring
  /// SpanStore::kDefaultLimit.
  static constexpr std::size_t kDefaultLimit = 1u << 20;

  explicit TimeSeriesStore(std::size_t limit = kDefaultLimit)
      : limit_(limit) {}

  /// Adds `delta` to the named counter and records its new running
  /// total at virtual time `time`.
  void sample_counter(const std::string& name, double time, double delta);

  /// Records a point-in-time gauge reading.
  void sample_gauge(const std::string& name, double time, double value);

  /// All series, keyed by name, samples in record order (copy taken
  /// under the lock).
  [[nodiscard]] std::map<std::string, std::vector<TimeSeriesSample>>
  snapshot() const;
  /// Total samples retained across all series.
  [[nodiscard]] std::size_t size() const;
  /// Samples discarded because the store was at its cap.
  [[nodiscard]] std::size_t dropped() const;

 private:
  mutable common::Mutex mu_;
  const std::size_t limit_;
  std::map<std::string, std::vector<TimeSeriesSample>> series_
      FTLA_GUARDED_BY(mu_);
  std::map<std::string, double> totals_ FTLA_GUARDED_BY(mu_);
  std::size_t size_ FTLA_GUARDED_BY(mu_) = 0;
  std::size_t dropped_ FTLA_GUARDED_BY(mu_) = 0;
};

/// One rollup window: samples falling in [start, end).
struct TimeSeriesWindow {
  double start = 0.0;
  double end = 0.0;
  long long samples = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;  ///< nearest-rank over the window's exact samples
  double p99 = 0.0;
};

struct TimeSeriesRollup {
  long long samples = 0;                  ///< total over all windows
  std::vector<TimeSeriesWindow> windows;  ///< non-empty windows only
};

struct TimeSeriesReport {
  static constexpr int kTimeseriesVersion = 1;

  /// Free-form run description (algo, n, variant...), sorted on export.
  std::map<std::string, std::string> meta;

  double window_seconds = 0.0;
  long long samples_recorded = 0;
  long long samples_dropped = 0;
  std::map<std::string, TimeSeriesRollup> series;
};

/// Rolls a store up into fixed-width windows. `window_seconds` <= 0
/// collapses each series into a single window covering its full span.
/// Deterministic regardless of sample recording order (see header).
TimeSeriesReport build_timeseries_report(const TimeSeriesStore& store,
                                         double window_seconds);

/// Byte-stable schema-v1 JSON (sorted keys, 17-digit doubles).
void write_timeseries_json(const TimeSeriesReport& report, std::ostream& os);
bool write_timeseries_json_file(const TimeSeriesReport& report,
                                const std::string& path);

/// Parses a timeseries_version-1 document written by
/// write_timeseries_json. Returns false on malformed input or a
/// schema-version mismatch.
bool read_timeseries_json(std::istream& is, TimeSeriesReport* out);
bool read_timeseries_json_file(const std::string& path,
                               TimeSeriesReport* out);

}  // namespace ftla::obs
