// MetricsReport: the schema-versioned JSON export shared by the bench
// harnesses and ftla_cli (--metrics-out).
//
// Layout (schema_version 1):
//   {
//     "schema_version": 1,
//     "meta":       { "<key>": "<string value>", ... },
//     "counters":   { "<name>": <integer>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": {
//       "<name>": {
//         "count": N, "sum": S, "min": m, "max": M, "mean": mu,
//         "p50": ..., "p95": ..., "p99": ...,
//         "buckets": [ {"le": <upper bound or "inf">, "n": <hits>}, ... ]
//       }, ...
//     }
//   }
// Keys inside each section are sorted (std::map order), so exports are
// byte-stable for identical runs — diffable in CI.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ftla::obs {

struct MetricsReport {
  static constexpr int kSchemaVersion = 1;

  /// Free-form run description (machine, mode, n, variant...), emitted
  /// in insertion order.
  std::vector<std::pair<std::string, std::string>> meta;
  MetricsRegistry metrics;

  void add_meta(std::string key, std::string value) {
    meta.emplace_back(std::move(key), std::move(value));
  }
};

void write_metrics_json(const MetricsReport& report, std::ostream& os);

/// Convenience: writes the JSON to a file; returns false on I/O error.
bool write_metrics_json_file(const MetricsReport& report,
                             const std::string& path);

}  // namespace ftla::obs
