// MetricsReport: the schema-versioned JSON export shared by the bench
// harnesses and ftla_cli (--metrics-out).
//
// Layout (schema_version 1):
//   {
//     "schema_version": 1,
//     "meta":       { "<key>": "<string value>", ... },
//     "counters":   { "<name>": <integer>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": {
//       "<name>": {
//         "count": N, "sum": S, "min": m, "max": M, "mean": mu,
//         "p50": ..., "p95": ..., "p99": ...,
//         "buckets": [ {"le": <upper bound or "inf">, "n": <hits>}, ... ]
//       }, ...
//     }
//   }
// Keys inside each section are sorted (std::map order), so exports are
// byte-stable for identical runs — diffable in CI.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ftla::obs {

struct MetricsReport {
  static constexpr int kSchemaVersion = 1;

  /// Free-form run description (machine, mode, n, variant...), emitted
  /// in insertion order.
  std::vector<std::pair<std::string, std::string>> meta;
  MetricsRegistry metrics;

  void add_meta(std::string key, std::string value) {
    meta.emplace_back(std::move(key), std::move(value));
  }
};

void write_metrics_json(const MetricsReport& report, std::ostream& os);

/// Convenience: writes the JSON to a file; returns false on I/O error.
bool write_metrics_json_file(const MetricsReport& report,
                             const std::string& path);

/// Parsed-back view of a schema_version-1 metrics document (ftla_cli
/// --metrics-out, fault_campaign_cli --report, BENCH_*.json). The
/// consumer side of write_metrics_json: the report CLI and triage
/// scripts read these instead of re-running anything.
struct MetricsDoc {
  /// Meta pairs in document order.
  std::vector<std::pair<std::string, std::string>> meta;
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;

  struct HistogramSummary {
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// (upper bound, hits); the overflow bucket carries +inf.
    std::vector<std::pair<double, long long>> buckets;
  };
  std::map<std::string, HistogramSummary> histograms;

  [[nodiscard]] const std::string* find_meta(const std::string& key) const {
    for (const auto& [k, v] : meta) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses a document written by write_metrics_json. Returns false on
/// malformed input or a schema-version mismatch.
bool read_metrics_json(std::istream& is, MetricsDoc* out);
bool read_metrics_json_file(const std::string& path, MetricsDoc* out);

}  // namespace ftla::obs
