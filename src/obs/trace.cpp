#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace ftla::obs {

namespace {

/// splitmix64 finalizer — the standard 64-bit avalanche mix. Pure
/// arithmetic: equal inputs give equal ids on every platform.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TraceId derive_trace_id(std::uint64_t seed, std::uint64_t sequence) {
  const std::uint64_t id = mix64(mix64(seed) ^ (sequence + 1));
  return id != 0 ? id : 1;
}

SpanId derive_span_id(SpanId parent, std::uint64_t child_index) {
  const std::uint64_t id = mix64(parent ^ mix64(child_index + 1));
  return id != 0 ? id : 1;
}

std::string format_trace_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

bool parse_trace_id(const std::string& text, std::uint64_t* out) {
  // Strict: exactly the 16 lowercase hex digits format_trace_id emits,
  // so ids survive a JSON round trip byte-for-byte.
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = v;
  return true;
}

TraceStore::TraceStore(std::size_t capacity) : capacity_(capacity) {}

void TraceStore::record(const TraceSpan& span) {
  common::MutexLock lk(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(span);
}

void TraceStore::append(const std::vector<TraceSpan>& spans) {
  common::MutexLock lk(mu_);
  for (const TraceSpan& s : spans) {
    if (spans_.size() >= capacity_) {
      ++dropped_;
      continue;
    }
    spans_.push_back(s);
  }
}

std::vector<TraceSpan> TraceStore::snapshot() const {
  common::MutexLock lk(mu_);
  return spans_;
}

std::size_t TraceStore::size() const {
  common::MutexLock lk(mu_);
  return spans_.size();
}

std::size_t TraceStore::dropped() const {
  common::MutexLock lk(mu_);
  return dropped_;
}

void TraceStore::clear() {
  common::MutexLock lk(mu_);
  spans_.clear();
  dropped_ = 0;
}

namespace {

/// Canonical span order: by trace, then causally by virtual time, with
/// the span id as the final tiebreak so equal-time markers still sort
/// identically across runs.
bool canonical_less(const TraceSpan& a, const TraceSpan& b) {
  if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
  if (a.start != b.start) return a.start < b.start;
  if (a.end != b.end) return a.end < b.end;
  return a.span_id < b.span_id;
}

void write_span(const TraceSpan& s, std::ostream& os) {
  os << "{\"detail\":";
  write_json_string(s.detail, os);
  os << ",\"device\":" << s.device;
  os << ",\"end\":" << fmt_double(s.end);
  os << ",\"kind\":";
  write_json_string(s.kind, os);
  os << ",\"name\":";
  write_json_string(s.name, os);
  os << ",\"parent_span\":";
  write_json_string(format_trace_id(s.parent_span), os);
  os << ",\"span_id\":";
  write_json_string(format_trace_id(s.span_id), os);
  os << ",\"start\":" << fmt_double(s.start);
  os << ",\"status\":";
  write_json_string(s.status, os);
  os << ",\"tenant\":";
  write_json_string(s.tenant, os);
  os << ",\"trace_id\":";
  write_json_string(format_trace_id(s.trace_id), os);
  os << "}";
}

bool read_span(const JsonValue& v, TraceSpan* out, std::string* error) {
  if (v.type != JsonValue::Type::Object) {
    if (error) *error = "span is not an object";
    return false;
  }
  std::string id;
  if (!json_get_string(v, "trace_id", &id) ||
      !parse_trace_id(id, &out->trace_id)) {
    if (error) *error = "span missing trace_id";
    return false;
  }
  if (!json_get_string(v, "span_id", &id) ||
      !parse_trace_id(id, &out->span_id)) {
    if (error) *error = "span missing span_id";
    return false;
  }
  if (!json_get_string(v, "parent_span", &id) ||
      !parse_trace_id(id, &out->parent_span)) {
    if (error) *error = "span missing parent_span";
    return false;
  }
  json_get_string(v, "name", &out->name);
  json_get_string(v, "kind", &out->kind);
  json_get_string(v, "tenant", &out->tenant);
  json_get_string(v, "status", &out->status);
  json_get_string(v, "detail", &out->detail);
  double d = 0.0;
  if (json_get_number(v, "device", &d)) out->device = static_cast<int>(d);
  json_get_number(v, "start", &out->start);
  json_get_number(v, "end", &out->end);
  return true;
}

}  // namespace

TraceReport TraceReport::build(const TraceStore& store) {
  TraceReport r;
  r.spans = store.snapshot();
  r.dropped = static_cast<std::int64_t>(store.dropped());
  std::sort(r.spans.begin(), r.spans.end(), canonical_less);
  return r;
}

void TraceReport::write(std::ostream& os) const {
  os << "{\"dropped\":" << dropped << ",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n";
    write_span(spans[i], os);
  }
  if (!spans.empty()) os << "\n";
  os << "],\"trace_version\":" << kTraceVersion << "}\n";
}

std::string TraceReport::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

bool TraceReport::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write(os);
  os.flush();
  return os.good();
}

bool TraceReport::read(const std::string& text, TraceReport* out,
                       std::string* error) {
  JsonValue doc;
  if (!parse_json(text, &doc) || doc.type != JsonValue::Type::Object) {
    if (error) *error = "malformed JSON";
    return false;
  }
  long long version = 0;
  if (!json_get_count(doc, "trace_version", &version) ||
      version != kTraceVersion) {
    if (error) *error = "missing or unsupported trace_version";
    return false;
  }
  out->spans.clear();
  out->dropped = 0;
  long long dropped = 0;
  json_get_count(doc, "dropped", &dropped);
  out->dropped = dropped;
  const JsonValue* spans = doc.find("spans");
  if (spans == nullptr || spans->type != JsonValue::Type::Array) {
    if (error) *error = "missing spans array";
    return false;
  }
  out->spans.reserve(spans->elements.size());
  for (const JsonValue& e : spans->elements) {
    TraceSpan s;
    if (!read_span(e, &s, error)) return false;
    out->spans.push_back(std::move(s));
  }
  std::sort(out->spans.begin(), out->spans.end(), canonical_less);
  return true;
}

bool TraceReport::read_file(const std::string& path, TraceReport* out,
                            std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return read(buf.str(), out, error);
}

namespace {

TraceNode build_node(
    const TraceSpan* span,
    const std::map<SpanId, std::vector<const TraceSpan*>>& children) {
  TraceNode node;
  node.span = span;
  auto it = children.find(span->span_id);
  if (it != children.end()) {
    node.children.reserve(it->second.size());
    for (const TraceSpan* c : it->second) {
      node.children.push_back(build_node(c, children));
    }
  }
  return node;
}

}  // namespace

std::vector<TraceTree> assemble_traces(const TraceReport& report) {
  // Group by trace id; std::map keeps trees ordered by trace_id.
  std::map<TraceId, std::vector<const TraceSpan*>> by_trace;
  for (const TraceSpan& s : report.spans) {
    by_trace[s.trace_id].push_back(&s);
  }
  std::vector<TraceTree> trees;
  trees.reserve(by_trace.size());
  for (auto& [trace_id, spans] : by_trace) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceSpan* a, const TraceSpan* b) {
                       return canonical_less(*a, *b);
                     });
    std::map<SpanId, const TraceSpan*> by_id;
    for (const TraceSpan* s : spans) by_id.emplace(s->span_id, s);
    std::map<SpanId, std::vector<const TraceSpan*>> children;
    std::vector<const TraceSpan*> roots;
    TraceTree tree;
    tree.trace_id = trace_id;
    for (const TraceSpan* s : spans) {
      const bool has_parent =
          s->parent_span != 0 && by_id.count(s->parent_span) != 0 &&
          s->parent_span != s->span_id;
      if (has_parent) {
        children[s->parent_span].push_back(s);
      } else {
        if (s->parent_span != 0) ++tree.missing_parents;
        roots.push_back(s);
      }
    }
    for (const TraceSpan* r : roots) {
      tree.roots.push_back(build_node(r, children));
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

TraceReport filter_trace(const TraceReport& report,
                         const TraceFilter& filter) {
  TraceReport out;
  out.dropped = report.dropped;
  for (const TraceSpan& s : report.spans) {
    if (filter.trace_id != 0 && s.trace_id != filter.trace_id) continue;
    if (!filter.tenant.empty() && s.tenant != filter.tenant) continue;
    if (filter.device != -2 && s.device != filter.device) continue;
    out.spans.push_back(s);
  }
  return out;
}

namespace {

std::string fmt_time(double t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", t);
  return buf;
}

void render_node(const TraceNode& node, int depth, double t0, double t1,
                 int width, std::ostringstream& os) {
  const TraceSpan& s = *node.span;
  const double range = t1 > t0 ? t1 - t0 : 1.0;
  int lo = static_cast<int>((s.start - t0) / range * width);
  int hi = static_cast<int>((s.end - t0) / range * width);
  lo = std::min(std::max(lo, 0), width - 1);
  hi = std::min(std::max(hi, lo), width - 1);
  std::string bar(static_cast<std::size_t>(width), '.');
  for (int i = lo; i <= hi; ++i) {
    bar[static_cast<std::size_t>(i)] = (s.end == s.start) ? '|' : '=';
  }
  os << "  [" << bar << "] ";
  for (int i = 0; i < depth; ++i) os << "  ";
  os << s.name << " (" << s.kind;
  if (s.device >= 0) os << " dev=" << s.device;
  if (!s.tenant.empty()) os << " tenant=" << s.tenant;
  if (!s.status.empty()) os << " " << s.status;
  os << ") " << fmt_time(s.start);
  if (s.end != s.start) os << ".." << fmt_time(s.end);
  if (!s.detail.empty()) os << " " << s.detail;
  os << "\n";
  for (const TraceNode& c : node.children) {
    render_node(c, depth + 1, t0, t1, width, os);
  }
}

void span_extent(const TraceNode& node, double* t0, double* t1) {
  *t0 = std::min(*t0, node.span->start);
  *t1 = std::max(*t1, node.span->end);
  for (const TraceNode& c : node.children) span_extent(c, t0, t1);
}

std::size_t count_nodes(const TraceNode& node) {
  std::size_t n = 1;
  for (const TraceNode& c : node.children) n += count_nodes(c);
  return n;
}

}  // namespace

std::string render_waterfall(const TraceReport& report, int width) {
  if (width < 8) width = 8;
  std::ostringstream os;
  const std::vector<TraceTree> trees = assemble_traces(report);
  for (const TraceTree& tree : trees) {
    double t0 = 1e300;
    double t1 = -1e300;
    std::size_t spans = 0;
    for (const TraceNode& r : tree.roots) {
      span_extent(r, &t0, &t1);
      spans += count_nodes(r);
    }
    if (t1 < t0) t0 = t1 = 0.0;
    os << "trace " << format_trace_id(tree.trace_id) << " spans=" << spans
       << " window=" << fmt_time(t0) << ".." << fmt_time(t1);
    if (tree.missing_parents != 0) {
      os << " missing_parents=" << tree.missing_parents;
    }
    os << "\n";
    for (const TraceNode& r : tree.roots) {
      render_node(r, 0, t0, t1, width, os);
    }
  }
  if (trees.empty()) os << "no spans\n";
  return os.str();
}

namespace {

std::string span_path(const std::string& prefix, const TraceSpan& s) {
  return prefix + "/" + s.name;
}

/// Structural identity of one span, excluding anything time-derived.
std::string span_signature(const TraceSpan& s) {
  std::ostringstream os;
  os << s.name << "|" << s.kind << "|dev=" << s.device << "|tenant="
     << s.tenant << "|status=" << s.status;
  return os.str();
}

void diff_nodes(const std::string& path, const TraceNode& a,
                const TraceNode& b, std::size_t max_differences,
                std::vector<std::string>* out) {
  if (out->size() >= max_differences) return;
  const std::string sa = span_signature(*a.span);
  const std::string sb = span_signature(*b.span);
  if (sa != sb) {
    out->push_back(path + ": span mismatch: " + sa + " vs " + sb);
    return;
  }
  if (a.children.size() != b.children.size()) {
    std::ostringstream os;
    os << path << ": child count " << a.children.size() << " vs "
       << b.children.size();
    out->push_back(os.str());
    return;
  }
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    diff_nodes(span_path(path, *a.children[i].span), a.children[i],
               b.children[i], max_differences, out);
  }
}

}  // namespace

TraceDiffResult diff_traces(const TraceReport& a, const TraceReport& b,
                            std::size_t max_differences) {
  TraceDiffResult r;
  const std::vector<TraceTree> ta = assemble_traces(a);
  const std::vector<TraceTree> tb = assemble_traces(b);
  std::map<TraceId, const TraceTree*> ma;
  std::map<TraceId, const TraceTree*> mb;
  for (const TraceTree& t : ta) ma.emplace(t.trace_id, &t);
  for (const TraceTree& t : tb) mb.emplace(t.trace_id, &t);
  for (const auto& [id, t] : ma) {
    if (r.differences.size() >= max_differences) break;
    auto it = mb.find(id);
    if (it == mb.end()) {
      r.differences.push_back("trace " + format_trace_id(id) +
                              " only in first file");
      continue;
    }
    const TraceTree& u = *it->second;
    if (t->roots.size() != u.roots.size()) {
      std::ostringstream os;
      os << "trace " << format_trace_id(id) << ": root count "
         << t->roots.size() << " vs " << u.roots.size();
      r.differences.push_back(os.str());
      continue;
    }
    for (std::size_t i = 0; i < t->roots.size(); ++i) {
      diff_nodes(format_trace_id(id) + "/" + t->roots[i].span->name,
                 t->roots[i], u.roots[i], max_differences,
                 &r.differences);
    }
  }
  for (const auto& [id, t] : mb) {
    (void)t;
    if (r.differences.size() >= max_differences) break;
    if (ma.count(id) == 0) {
      r.differences.push_back("trace " + format_trace_id(id) +
                              " only in second file");
    }
  }
  return r;
}

}  // namespace ftla::obs
