#include "obs/flight_recorder.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/event_sink.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ftla::obs {

void FlightRecorder::write_bundle(std::ostream& os, int exit_code,
                                  const std::string& reason) const {
  os << "{\"breadcrumbs\":[";
  bool first = true;
  for (const auto& b : breadcrumbs_) {
    if (!first) os << ',';
    first = false;
    write_json_string(b, os);
  }
  os << "],\"counters\":{";
  first = true;
  if (metrics_ != nullptr) {
    for (const auto& [name, v] : metrics_->counters()) {
      if (!first) os << ',';
      first = false;
      write_json_string(name, os);
      os << ':' << v;
    }
  }
  os << "},\"events\":{\"dropped\":"
     << (events_ != nullptr ? static_cast<long long>(events_->dropped()) : 0)
     << ",\"posted\":" << (events_ != nullptr ? events_->posted() : 0)
     << ",\"tail\":[";
  first = true;
  if (events_ != nullptr) {
    const std::vector<Event> all = events_->events();
    const std::size_t start =
        all.size() > event_tail_ ? all.size() - event_tail_ : 0;
    for (std::size_t i = start; i < all.size(); ++i) {
      if (!first) os << ',';
      first = false;
      event_to_json(all[i], os);
    }
  }
  os << "]},\"exit_code\":" << exit_code << ",\"flight_version\":1"
     << ",\"gauges\":{";
  first = true;
  if (metrics_ != nullptr) {
    for (const auto& [name, v] : metrics_->gauges()) {
      if (!first) os << ',';
      first = false;
      write_json_string(name, os);
      os << ':' << fmt_double(v);
    }
  }
  os << "},\"meta\":{";
  first = true;
  for (const auto& [k, v] : meta_) {
    if (!first) os << ',';
    first = false;
    write_json_string(k, os);
    os << ':';
    write_json_string(v, os);
  }
  os << "},\"reason\":";
  write_json_string(reason, os);
  os << ",\"spans\":{\"dropped\":"
     << (spans_ != nullptr ? static_cast<long long>(spans_->dropped()) : 0)
     << ",\"recorded\":"
     << (spans_ != nullptr ? static_cast<long long>(spans_->size()) : 0)
     << ",\"tail\":[";
  first = true;
  if (spans_ != nullptr) {
    const std::vector<Span> all = spans_->snapshot();
    const std::size_t start =
        all.size() > span_tail_ ? all.size() - span_tail_ : 0;
    for (std::size_t i = start; i < all.size(); ++i) {
      const Span& s = all[i];
      if (!first) os << ',';
      first = false;
      os << "{\"end\":" << fmt_double(s.end) << ",\"flops\":" << s.flops
         << ",\"iteration\":" << s.iteration << ",\"lane\":" << s.lane
         << ",\"name\":";
      write_json_string(s.name, os);
      os << ",\"phase\":";
      write_json_string(to_string(s.phase), os);
      os << ",\"start\":" << fmt_double(s.start) << '}';
    }
  }
  os << "]}}\n";
}

bool FlightRecorder::dump_file(const std::string& path, int exit_code,
                               const std::string& reason) const {
  std::ofstream os(path);
  if (!os) return false;
  write_bundle(os, exit_code, reason);
  return static_cast<bool>(os);
}

bool read_flight_bundle(std::istream& is, FlightBundle* out) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  if (!parse_json(text, &root) || root.type != JsonValue::Type::Object) {
    return false;
  }

  FlightBundle bundle;
  long long version = 0;
  if (!json_get_count(root, "flight_version", &version) || version != 1) {
    return false;
  }
  bundle.flight_version = static_cast<int>(version);
  long long exit_code = 0;
  if (!json_get_count(root, "exit_code", &exit_code)) return false;
  bundle.exit_code = static_cast<int>(exit_code);
  if (!json_get_string(root, "reason", &bundle.reason)) return false;

  if (const JsonValue* meta = root.find("meta");
      meta != nullptr && meta->type == JsonValue::Type::Object) {
    for (const auto& [k, v] : meta->members) {
      if (v.type != JsonValue::Type::String) return false;
      bundle.meta[k] = v.str;
    }
  }
  if (const JsonValue* crumbs = root.find("breadcrumbs");
      crumbs != nullptr && crumbs->type == JsonValue::Type::Array) {
    for (const auto& c : crumbs->elements) {
      if (c.type != JsonValue::Type::String) return false;
      bundle.breadcrumbs.push_back(c.str);
    }
  }
  if (const JsonValue* counters = root.find("counters");
      counters != nullptr && counters->type == JsonValue::Type::Object) {
    for (const auto& [name, v] : counters->members) {
      if (v.type != JsonValue::Type::Number) return false;
      bundle.counters[name] = static_cast<long long>(v.number);
    }
  }
  if (const JsonValue* gauges = root.find("gauges");
      gauges != nullptr && gauges->type == JsonValue::Type::Object) {
    for (const auto& [name, v] : gauges->members) {
      if (v.type != JsonValue::Type::Number) return false;
      bundle.gauges[name] = v.number;
    }
  }

  const JsonValue* events = root.find("events");
  if (events == nullptr || events->type != JsonValue::Type::Object) {
    return false;
  }
  if (!json_get_count(*events, "posted", &bundle.events_posted) ||
      !json_get_count(*events, "dropped", &bundle.events_dropped)) {
    return false;
  }
  const JsonValue* tail = events->find("tail");
  if (tail == nullptr || tail->type != JsonValue::Type::Array) return false;
  for (const auto& ev : tail->elements) {
    if (ev.type != JsonValue::Type::Object) return false;
    FlightEvent fe;
    if (!json_get_int64(ev, "seq", &fe.seq) ||
        !json_get_string(ev, "kind", &fe.kind) ||
        !json_get_number(ev, "t", &fe.time)) {
      return false;
    }
    json_get_string(ev, "name", &fe.name);  // omitted when empty
    bundle.events.push_back(std::move(fe));
  }

  const JsonValue* spans = root.find("spans");
  if (spans == nullptr || spans->type != JsonValue::Type::Object) {
    return false;
  }
  if (!json_get_count(*spans, "recorded", &bundle.spans_recorded) ||
      !json_get_count(*spans, "dropped", &bundle.spans_dropped)) {
    return false;
  }
  if (const JsonValue* span_tail = spans->find("tail");
      span_tail != nullptr && span_tail->type == JsonValue::Type::Array) {
    bundle.span_tail = static_cast<long long>(span_tail->elements.size());
  } else {
    return false;
  }

  *out = std::move(bundle);
  return true;
}

bool read_flight_bundle_file(const std::string& path, FlightBundle* out) {
  std::ifstream is(path);
  if (!is) return false;
  return read_flight_bundle(is, out);
}

}  // namespace ftla::obs
