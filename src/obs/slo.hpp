// Service-level objectives evaluated over virtual time.
//
// An SLO is a target fraction of "good" jobs over the run: availability
// (job completed successfully), p99 latency (job finished under a
// threshold), and zero-SDC (no silent data corruption escaped the
// oracle). The engine consumes one record_job() call per finished job
// — stamped with the fleet's virtual clock — and maintains, per SLO,
// the bad-event count, the error-budget fraction consumed, and the
// *burn rate*: the ratio of the observed bad fraction to the budget the
// objective allows. burn_rate == 1 means the budget is being consumed
// exactly as fast as the objective permits; above `alert_burn_rate` the
// engine emits a threshold-crossing EventKind::Alert into the normal
// event plumbing (and so into flight-recorder tails), stamped with the
// virtual time of the job that crossed the threshold.
//
// A zero-width budget (objective == 1.0, the zero-SDC case) makes the
// burn rate infinite on the first bad event; it is capped at
// kMaxBurnRate so exports stay finite and byte-stable.
//
// Everything here is deterministic: no wall clock, no sampling — the
// p99 is the exact nearest-rank percentile over all recorded
// latencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace ftla::obs {

class EventSink;
class MetricsRegistry;

/// Burn-rate cap substituting for infinity when the error budget is
/// zero-width (objective == 1.0).
inline constexpr double kMaxBurnRate = 1.0e6;

enum class SloKind {
  Availability,  ///< good = job completed successfully
  LatencyP99,    ///< good = latency <= latency_threshold_s
  ZeroSdc,       ///< good = no silent data corruption
};

[[nodiscard]] const char* to_string(SloKind k);

struct SloSpec {
  std::string name;  ///< metric-segment name, e.g. "availability"
  SloKind kind = SloKind::Availability;
  /// Target good fraction; the error budget is 1 - objective.
  double objective = 0.999;
  /// LatencyP99 only: the latency above which a job is "bad".
  double latency_threshold_s = 0.0;
  /// Alert when the burn rate first crosses this threshold.
  double alert_burn_rate = 1.0;
};

/// Live evaluation state for one SLO.
struct SloState {
  SloSpec spec;
  std::int64_t total = 0;
  std::int64_t bad = 0;
  bool alerting = false;   ///< burn rate has crossed alert_burn_rate
  double alert_time = 0.0; ///< virtual time of the crossing job

  [[nodiscard]] double bad_fraction() const {
    return total > 0 ? static_cast<double>(bad) / static_cast<double>(total)
                     : 0.0;
  }
  /// Observed bad fraction over the allowed bad fraction, capped at
  /// kMaxBurnRate when the budget is zero-width.
  [[nodiscard]] double burn_rate() const;
  /// Fraction of the error budget consumed so far (also capped).
  [[nodiscard]] double budget_consumed() const { return burn_rate(); }
};

/// Evaluates a set of SLOs over a stream of finished jobs. Thread-safe
/// recording; accessors are for the export phase (single-threaded by
/// the same contract as MetricsRegistry's reference accessors).
class SloEngine {
 public:
  SloEngine() = default;

  /// The fleet service's stock objectives: 99% availability, p99 job
  /// latency under `latency_threshold_s`, and zero SDC.
  [[nodiscard]] static std::vector<SloSpec> default_fleet_slos(
      double latency_threshold_s);

  void add(const SloSpec& spec);
  void set_event_sink(EventSink* sink) { sink_ = sink; }

  /// Records one finished job at virtual time `time`. Emits an Alert
  /// event for every SLO whose burn rate crosses its alert threshold
  /// with this job.
  void record_job(double time, bool success, bool sdc, double latency_s);

  [[nodiscard]] std::vector<SloState> states() const;

  /// Exact nearest-rank p99 over every recorded latency.
  [[nodiscard]] double latency_p99() const;

  /// Exports slo.<name>.{total,bad,burn_rate,objective,alerting} plus
  /// slo.latency_p99_s and slo.alerts under the `slo.` namespace.
  void export_metrics(MetricsRegistry* metrics) const;

  [[nodiscard]] std::int64_t alerts_fired() const;

 private:
  mutable common::Mutex mu_;
  std::vector<SloState> states_ FTLA_GUARDED_BY(mu_);
  std::vector<double> latencies_ FTLA_GUARDED_BY(mu_);
  std::int64_t alerts_ FTLA_GUARDED_BY(mu_) = 0;
  EventSink* sink_ = nullptr;
};

}  // namespace ftla::obs
