// Minimal JSON utilities shared by the obs serializers.
//
// Every byte-stable export in the observability layer (profile reports,
// metrics reports, time-series rollups, flight-recorder bundles,
// campaign analytics) follows the same conventions: keys sorted at
// every level, doubles printed with 17 significant digits via
// fmt_double so values round-trip exactly through strtod, and strings
// escaped with json_escape (event_sink.hpp). The reader side is a
// deliberately small value tree — objects, arrays, strings, numbers —
// just enough to parse back what our writers emit, so the repo stays
// dependency-free.
//
// Extracted from profile_report.cpp when the timeseries / analytics /
// postmortem exports joined the layer; the profile reader is the
// reference user.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ftla::obs {

/// 17 significant digits: enough for exact double round-trips through
/// strtod, and a fixed width-independent format for byte-stable output
/// (std::ostream would default to 6 digits).
std::string fmt_double(double v);

/// Writes `s` quoted and JSON-escaped.
void write_json_string(const std::string& s, std::ostream& os);

/// A minimal JSON value tree — just enough to read back what the obs
/// writers emit (objects, arrays, strings, numbers, bools, null).
/// Object members keep document order; find() is linear.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Object, Array };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> members;
  std::vector<JsonValue> elements;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses a complete JSON document (no trailing garbage). Returns false
/// on malformed input.
bool parse_json(const std::string& text, JsonValue* out);

// Typed member accessors: each returns false when the key is missing or
// holds the wrong type.
bool json_get_number(const JsonValue& obj, const char* key, double* out);
bool json_get_count(const JsonValue& obj, const char* key, long long* out);
bool json_get_int64(const JsonValue& obj, const char* key,
                    std::int64_t* out);
bool json_get_string(const JsonValue& obj, const char* key,
                     std::string* out);

}  // namespace ftla::obs
