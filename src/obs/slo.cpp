#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"

namespace ftla::obs {

const char* to_string(SloKind k) {
  switch (k) {
    case SloKind::Availability: return "availability";
    case SloKind::LatencyP99: return "latency_p99";
    case SloKind::ZeroSdc: return "zero_sdc";
  }
  return "unknown";
}

double SloState::burn_rate() const {
  const double bad_frac = bad_fraction();
  if (bad_frac <= 0.0) return 0.0;
  const double budget = 1.0 - spec.objective;
  if (budget <= 0.0) return kMaxBurnRate;
  return std::min(bad_frac / budget, kMaxBurnRate);
}

std::vector<SloSpec> SloEngine::default_fleet_slos(
    double latency_threshold_s) {
  std::vector<SloSpec> specs;
  SloSpec avail;
  avail.name = "availability";
  avail.kind = SloKind::Availability;
  avail.objective = 0.99;
  specs.push_back(avail);
  SloSpec lat;
  lat.name = "job_latency";
  lat.kind = SloKind::LatencyP99;
  lat.objective = 0.99;
  lat.latency_threshold_s = latency_threshold_s;
  specs.push_back(lat);
  SloSpec sdc;
  sdc.name = "zero_sdc";
  sdc.kind = SloKind::ZeroSdc;
  sdc.objective = 1.0;
  specs.push_back(sdc);
  return specs;
}

void SloEngine::add(const SloSpec& spec) {
  common::MutexLock lk(mu_);
  SloState st;
  st.spec = spec;
  states_.push_back(st);
}

void SloEngine::record_job(double time, bool success, bool sdc,
                           double latency_s) {
  std::vector<Event> alerts;
  {
    common::MutexLock lk(mu_);
    latencies_.push_back(latency_s);
    for (SloState& st : states_) {
      bool is_bad = false;
      switch (st.spec.kind) {
        case SloKind::Availability: is_bad = !success; break;
        case SloKind::LatencyP99:
          is_bad = latency_s > st.spec.latency_threshold_s;
          break;
        case SloKind::ZeroSdc: is_bad = sdc; break;
      }
      ++st.total;
      if (is_bad) ++st.bad;
      const bool over = st.burn_rate() > st.spec.alert_burn_rate;
      if (over && !st.alerting) {
        // Threshold crossing: latch and emit one alert event. The
        // latch only releases if the burn rate later drops back under
        // the threshold, so a steady burn fires exactly once.
        st.alerting = true;
        st.alert_time = time;
        ++alerts_;
        Event e;
        e.kind = EventKind::Alert;
        e.time = time;
        e.end = time;
        e.name = std::string("slo:") + st.spec.name;
        e.value = st.burn_rate();
        e.value2 = st.spec.alert_burn_rate;
        e.detail = std::string("burn rate crossed threshold (") +
                   to_string(st.spec.kind) + ")";
        alerts.push_back(e);
      } else if (!over && st.alerting) {
        st.alerting = false;
      }
    }
  }
  if (sink_ != nullptr) {
    for (const Event& e : alerts) sink_->post(e);
  }
}

std::vector<SloState> SloEngine::states() const {
  common::MutexLock lk(mu_);
  return states_;
}

double SloEngine::latency_p99() const {
  common::MutexLock lk(mu_);
  if (latencies_.empty()) return 0.0;
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: ceil(0.99 * N), 1-based.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank, sorted.size()) - 1];
}

void SloEngine::export_metrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  const std::vector<SloState> states = this->states();
  for (const SloState& st : states) {
    const std::string base = "slo." + st.spec.name;
    metrics->add_counter(base + ".total", st.total);
    metrics->add_counter(base + ".bad", st.bad);
    metrics->set_gauge(base + ".objective", st.spec.objective);
    metrics->set_gauge(base + ".burn_rate", st.burn_rate());
    metrics->set_gauge(base + ".alerting", st.alerting ? 1.0 : 0.0);
  }
  metrics->set_gauge("slo.latency_p99_s", latency_p99());
  metrics->add_counter("slo.alerts", alerts_fired());
}

std::int64_t SloEngine::alerts_fired() const {
  common::MutexLock lk(mu_);
  return alerts_;
}

}  // namespace ftla::obs
