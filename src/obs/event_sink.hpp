// Event sinks: where the structured-event stream goes.
//
// Producers call `post`, which stamps the run-wide sequence number and
// hands the event to the concrete sink. Three implementations cover the
// intended uses:
//   * NullSink        — swallow everything (the default-off path costs
//                       one pointer test at each producer site).
//   * RingBufferSink  — bounded in-memory capture for trace merging and
//                       tests; overwrites the oldest events when full
//                       and counts what it dropped.
//   * JsonlStreamSink — one JSON object per line to any std::ostream,
//                       for piping a live run into external tooling.
//
// Thread safety: `post` is serialized by an internal mutex held across
// sequence stamping AND the concrete emit, so one posted event is
// atomic end to end — events from thread-pool workers interleave whole,
// never torn, and the sequence numbers match arrival order. The
// accessors take the same lock; clang's -Wthread-safety checks all of
// it (see docs/static-analysis.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/event.hpp"

namespace ftla::obs {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Stamps the sequence number and delivers the event.
  void post(Event e) {
    common::MutexLock lk(mu_);
    e.seq = next_seq_++;
    emit(e);
  }

  /// Events posted so far (including any a bounded sink later dropped).
  [[nodiscard]] std::int64_t posted() const {
    common::MutexLock lk(mu_);
    return next_seq_;
  }

 protected:
  /// Called with mu_ held: a concrete sink's state is guarded by the
  /// same lock, so implementations need no locking of their own.
  virtual void emit(const Event& e) FTLA_REQUIRES(mu_) = 0;

  mutable common::Mutex mu_;

 private:
  std::int64_t next_seq_ FTLA_GUARDED_BY(mu_) = 0;
};

class NullSink final : public EventSink {
 protected:
  void emit(const Event&) override {}  // no state: nothing to guard
};

class RingBufferSink final : public EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit RingBufferSink(std::size_t capacity = kDefaultCapacity);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the buffer was full.
  [[nodiscard]] std::size_t dropped() const;

 protected:
  void emit(const Event& e) override FTLA_REQUIRES(mu_);

 private:
  const std::size_t capacity_;
  std::vector<Event> buf_ FTLA_GUARDED_BY(mu_);  // ring storage once full
  std::size_t head_ FTLA_GUARDED_BY(mu_) = 0;    // next write slot if full
  bool full_ FTLA_GUARDED_BY(mu_) = false;
  std::size_t dropped_ FTLA_GUARDED_BY(mu_) = 0;
};

class JsonlStreamSink final : public EventSink {
 public:
  explicit JsonlStreamSink(std::ostream& os) : os_(os) {}

 protected:
  void emit(const Event& e) override FTLA_REQUIRES(mu_);

 private:
  std::ostream& os_;
};

/// Serializes one event as a compact JSON object (no trailing newline).
/// Default-valued fields are omitted; shared by JsonlStreamSink and the
/// Chrome-trace merger.
void event_to_json(const Event& e, std::ostream& os);

/// Writes `s` with JSON string escaping (quotes, backslashes, control
/// characters).
void json_escape(const std::string& s, std::ostream& os);

}  // namespace ftla::obs
