// Event sinks: where the structured-event stream goes.
//
// Producers call `post`, which stamps the run-wide sequence number and
// hands the event to the concrete sink. Three implementations cover the
// intended uses:
//   * NullSink        — swallow everything (the default-off path costs
//                       one pointer test at each producer site).
//   * RingBufferSink  — bounded in-memory capture for trace merging and
//                       tests; overwrites the oldest events when full
//                       and counts what it dropped.
//   * JsonlStreamSink — one JSON object per line to any std::ostream,
//                       for piping a live run into external tooling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/event.hpp"

namespace ftla::obs {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Stamps the sequence number and delivers the event.
  void post(Event e) {
    e.seq = next_seq_++;
    emit(e);
  }

  /// Events posted so far (including any a bounded sink later dropped).
  [[nodiscard]] std::int64_t posted() const noexcept { return next_seq_; }

 protected:
  virtual void emit(const Event& e) = 0;

 private:
  std::int64_t next_seq_ = 0;
};

class NullSink final : public EventSink {
 protected:
  void emit(const Event&) override {}
};

class RingBufferSink final : public EventSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit RingBufferSink(std::size_t capacity = kDefaultCapacity);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events overwritten because the buffer was full.
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

 protected:
  void emit(const Event& e) override;

 private:
  std::size_t capacity_;
  std::vector<Event> buf_;   // ring storage once full
  std::size_t head_ = 0;     // next write position when full
  bool full_ = false;
  std::size_t dropped_ = 0;
};

class JsonlStreamSink final : public EventSink {
 public:
  explicit JsonlStreamSink(std::ostream& os) : os_(os) {}

 protected:
  void emit(const Event& e) override;

 private:
  std::ostream& os_;
};

/// Serializes one event as a compact JSON object (no trailing newline).
/// Default-valued fields are omitted; shared by JsonlStreamSink and the
/// Chrome-trace merger.
void event_to_json(const Event& e, std::ostream& os);

/// Writes `s` with JSON string escaping (quotes, backslashes, control
/// characters).
void json_escape(const std::string& s, std::ostream& os);

}  // namespace ftla::obs
