// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// The registry is the aggregate side of the observability layer: while
// the event stream records *what happened when*, the registry records
// *how much of it happened*. Drivers increment counters at the same
// program points where they update their result structs, so exported
// metrics reconcile exactly with CholeskyResult (the property the
// end-to-end tests assert).
//
// Naming convention: dotted lowercase paths, `<layer>.<noun>[.<sub>]` —
// e.g. "abft.verify.gemm_blocks", "abft.detection_latency_s",
// "sim.h2d_bytes". Units are spelled in the trailing segment (_s,
// _bytes, _blocks) rather than in a separate field. The convention is
// machine-checked by ftla_lint's metrics-naming rule
// (docs/static-analysis.md).
//
// Thread safety: the value-passing mutators (add_counter, set_gauge,
// record_histogram, merge) and the has_* queries are serialized by an
// internal mutex, so concurrent recording from thread-pool workers is
// safe; clang's -Wthread-safety checks the locking. The
// reference-returning accessors (counter(), gauge(), histogram()) and
// the iteration views remain single-threaded by contract — they are for
// setup and export phases, when no worker is recording. Debug builds
// enforce that contract: the first reference-accessor call claims an
// owner thread, and any later call from a different thread aborts.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"

namespace ftla::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& other) { *this = other; }
  MetricsRegistry& operator=(const MetricsRegistry& other) {
    if (this == &other) return *this;
    // Snapshot under the source lock, then install under ours: locking
    // one registry at a time keeps the analysis exact and makes a lock
    // order impossible to get wrong.
    std::map<std::string, long long> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
    {
      common::MutexLock lk(other.mu_);
      counters = other.counters_;
      gauges = other.gauges_;
      histograms = other.histograms_;
    }
    common::MutexLock lk(mu_);
    counters_ = std::move(counters);
    gauges_ = std::move(gauges);
    histograms_ = std::move(histograms);
    return *this;
  }

  /// Returns the counter, creating it at zero. The reference stays valid
  /// for the registry's lifetime (std::map nodes are stable). Not
  /// thread-safe: use add_counter from concurrent code.
  long long& counter(const std::string& name) {
    assert_single_threaded_ref();
    common::MutexLock lk(mu_);
    return counters_[name];
  }
  void add_counter(const std::string& name, long long delta) {
    common::MutexLock lk(mu_);
    counters_[name] += delta;
  }

  /// Not thread-safe; use set_gauge from concurrent code.
  double& gauge(const std::string& name) {
    assert_single_threaded_ref();
    common::MutexLock lk(mu_);
    return gauges_[name];
  }
  void set_gauge(const std::string& name, double v) {
    common::MutexLock lk(mu_);
    gauges_[name] = v;
  }

  /// Thread-safe sample recording into a (default-edged) histogram.
  void record_histogram(const std::string& name, double value) {
    common::MutexLock lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{}).first;
    }
    it->second.add(value);
  }

  /// Returns the histogram, creating it with default log-spaced edges.
  /// Not thread-safe; use record_histogram from concurrent code.
  Histogram& histogram(const std::string& name) {
    assert_single_threaded_ref();
    common::MutexLock lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{}).first;
    }
    return it->second;
  }
  /// Creates (or returns) a histogram with explicit bucket edges; edges
  /// are ignored when the histogram already exists.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_edges) {
    assert_single_threaded_ref();
    common::MutexLock lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{upper_edges}).first;
    }
    return it->second;
  }

  [[nodiscard]] bool has_counter(const std::string& name) const {
    common::MutexLock lk(mu_);
    return counters_.count(name) != 0;
  }
  [[nodiscard]] bool has_histogram(const std::string& name) const {
    common::MutexLock lk(mu_);
    return histograms_.count(name) != 0;
  }

  /// Folds `other` into this registry: counters add, gauges take the
  /// other's value (last writer wins, matching sequential export), and
  /// histograms merge bucket-wise (edges must match).
  void merge(const MetricsRegistry& other);

  // Deterministically ordered iteration for exporters. Single-threaded
  // by the same contract as the reference accessors: the returned view
  // must not be walked while workers are still recording.
  [[nodiscard]] const std::map<std::string, long long>& counters() const {
    assert_single_threaded_ref();
    common::MutexLock lk(mu_);
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    assert_single_threaded_ref();
    common::MutexLock lk(mu_);
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    assert_single_threaded_ref();
    common::MutexLock lk(mu_);
    return histograms_;
  }

 private:
  /// Debug-build enforcement of the reference accessors' single-threaded
  /// contract (a comment-only rule before): the first call claims the
  /// registry for its thread; a call from any other thread aborts with a
  /// pointer at the thread-safe mutators. Compiled out under NDEBUG.
  void assert_single_threaded_ref() const {
#ifndef NDEBUG
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (!ref_thread_.compare_exchange_strong(expected, self,
                                             std::memory_order_relaxed)) {
      FTLA_CHECK_MSG(expected == self,
                     "MetricsRegistry reference accessor called from a "
                     "second thread; concurrent code must use add_counter/"
                     "set_gauge/record_histogram");
    }
#endif
  }

  mutable common::Mutex mu_;
  std::map<std::string, long long> counters_ FTLA_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ FTLA_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ FTLA_GUARDED_BY(mu_);
#ifndef NDEBUG
  mutable std::atomic<std::thread::id> ref_thread_{};
#endif
};

}  // namespace ftla::obs
