// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// The registry is the aggregate side of the observability layer: while
// the event stream records *what happened when*, the registry records
// *how much of it happened*. Drivers increment counters at the same
// program points where they update their result structs, so exported
// metrics reconcile exactly with CholeskyResult (the property the
// end-to-end tests assert).
//
// Naming convention: dotted lowercase paths, `<layer>.<noun>[.<sub>]` —
// e.g. "abft.verify.gemm_blocks", "abft.detection_latency_s",
// "sim.h2d_bytes". Units are spelled in the trailing segment (_s,
// _bytes, _blocks) rather than in a separate field.
//
// Thread safety: the value-passing mutators (add_counter, set_gauge,
// record_histogram, merge) and the has_* queries are serialized by an
// internal mutex, so concurrent recording from thread-pool workers is
// safe. The reference-returning accessors (counter(), gauge(),
// histogram()) and the iteration views remain single-threaded by
// contract — they are for setup and export phases, when no worker is
// recording.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace ftla::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& other) { *this = other; }
  MetricsRegistry& operator=(const MetricsRegistry& other) {
    if (this == &other) return *this;
    std::scoped_lock lk(mu_, other.mu_);
    counters_ = other.counters_;
    gauges_ = other.gauges_;
    histograms_ = other.histograms_;
    return *this;
  }

  /// Returns the counter, creating it at zero. The reference stays valid
  /// for the registry's lifetime (std::map nodes are stable). Not
  /// thread-safe: use add_counter from concurrent code.
  long long& counter(const std::string& name) { return counters_[name]; }
  void add_counter(const std::string& name, long long delta) {
    std::lock_guard<std::mutex> lk(mu_);
    counters_[name] += delta;
  }

  /// Not thread-safe; use set_gauge from concurrent code.
  double& gauge(const std::string& name) { return gauges_[name]; }
  void set_gauge(const std::string& name, double v) {
    std::lock_guard<std::mutex> lk(mu_);
    gauges_[name] = v;
  }

  /// Thread-safe sample recording into a (default-edged) histogram.
  void record_histogram(const std::string& name, double value) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{}).first;
    }
    it->second.add(value);
  }

  /// Returns the histogram, creating it with default log-spaced edges.
  /// Not thread-safe; use record_histogram from concurrent code.
  Histogram& histogram(const std::string& name) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{}).first;
    }
    return it->second;
  }
  /// Creates (or returns) a histogram with explicit bucket edges; edges
  /// are ignored when the histogram already exists.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_edges) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{upper_edges}).first;
    }
    return it->second;
  }

  [[nodiscard]] bool has_counter(const std::string& name) const {
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.count(name) != 0;
  }
  [[nodiscard]] bool has_histogram(const std::string& name) const {
    std::lock_guard<std::mutex> lk(mu_);
    return histograms_.count(name) != 0;
  }

  /// Folds `other` into this registry: counters add, gauges take the
  /// other's value (last writer wins, matching sequential export), and
  /// histograms merge bucket-wise (edges must match).
  void merge(const MetricsRegistry& other);

  // Deterministically ordered iteration for exporters.
  [[nodiscard]] const std::map<std::string, long long>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, long long> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ftla::obs
