#include "fault/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <tuple>

#include "common/stats.hpp"
#include "obs/json.hpp"

namespace ftla::fault {

namespace {

// Nearest-rank percentile over an ascending-sorted vector (the same
// contract as Histogram::percentile, exact because the raw samples are
// kept).
double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

HistogramSummary summarize(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.min = h.min();
  s.max = h.max();
  s.mean = h.mean();
  s.p50 = h.p50();
  s.p95 = h.p95();
  s.p99 = h.p99();
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    s.buckets.emplace_back(h.bucket_upper(i), h.bucket_hits(i));
  }
  return s;
}

/// The fault-free NoFt run of the same shape: the overhead denominator.
/// Virtual time is data-independent, so any matrix seed gives the same
/// makespan; memoization keys on what the timing model sees.
double baseline_seconds(
    std::map<std::tuple<int, int, int>, double>* cache, Algo algo, int n,
    int block) {
  const auto key = std::make_tuple(static_cast<int>(algo), n, block);
  const auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  Scenario sc;
  sc.algo = algo;
  sc.variant = abft::Variant::NoFt;
  sc.recovery = abft::Recovery::Rerun;
  sc.n = n;
  sc.block = block;
  sc.matrix_seed = 1;
  sc.mtbf_s = 0.0;  // no arrival process, no planned faults
  const ScenarioResult res = run_scenario(sc);
  (*cache)[key] = res.seconds;
  return res.seconds;
}

void write_histogram_summary(const HistogramSummary& s, std::ostream& os) {
  using obs::fmt_double;
  os << "{\"buckets\":[";
  bool first = true;
  for (const auto& [upper, hits] : s.buckets) {
    if (!first) os << ',';
    first = false;
    os << "{\"le\":";
    if (std::isinf(upper)) {
      os << "\"inf\"";
    } else {
      os << fmt_double(upper);
    }
    os << ",\"n\":" << hits << '}';
  }
  os << "],\"count\":" << s.count << ",\"max\":" << fmt_double(s.max)
     << ",\"mean\":" << fmt_double(s.mean) << ",\"min\":" << fmt_double(s.min)
     << ",\"p50\":" << fmt_double(s.p50) << ",\"p95\":" << fmt_double(s.p95)
     << ",\"p99\":" << fmt_double(s.p99) << '}';
}

bool read_histogram_summary(const obs::JsonValue& v, HistogramSummary* out) {
  using obs::JsonValue;
  if (v.type != JsonValue::Type::Object) return false;
  HistogramSummary s;
  if (!obs::json_get_count(v, "count", &s.count) ||
      !obs::json_get_number(v, "min", &s.min) ||
      !obs::json_get_number(v, "max", &s.max) ||
      !obs::json_get_number(v, "mean", &s.mean) ||
      !obs::json_get_number(v, "p50", &s.p50) ||
      !obs::json_get_number(v, "p95", &s.p95) ||
      !obs::json_get_number(v, "p99", &s.p99)) {
    return false;
  }
  const JsonValue* buckets = v.find("buckets");
  if (buckets == nullptr || buckets->type != JsonValue::Type::Array) {
    return false;
  }
  for (const auto& b : buckets->elements) {
    if (b.type != JsonValue::Type::Object) return false;
    const JsonValue* le = b.find("le");
    long long hits = 0;
    if (le == nullptr || !obs::json_get_count(b, "n", &hits)) return false;
    double upper = 0.0;
    if (le->type == JsonValue::Type::String && le->str == "inf") {
      upper = std::numeric_limits<double>::infinity();
    } else if (le->type == JsonValue::Type::Number) {
      upper = le->number;
    } else {
      return false;
    }
    s.buckets.emplace_back(upper, hits);
  }
  *out = std::move(s);
  return true;
}

}  // namespace

CampaignAnalytics aggregate_campaign(const CampaignSummary& summary) {
  CampaignAnalytics out;
  out.scenarios = static_cast<int>(summary.observations.size());

  std::map<std::string, Histogram> latency;
  std::map<std::string, std::vector<double>> ratios;
  std::map<std::tuple<int, int, int>, double> baselines;

  for (const auto& obs : summary.observations) {
    const std::string verdict_key = std::string(to_string(obs.algo)) + "/" +
                                    abft::to_string(obs.variant) + "/" +
                                    abft::to_string(obs.recovery);
    out.verdicts[verdict_key][static_cast<int>(obs.verdict)] += 1;

    for (const auto& d : obs.detections) {
      if (d.latency_s < 0.0) continue;
      auto it = latency.find(to_string(d.type));
      if (it == latency.end()) {
        it = latency.emplace(to_string(d.type), Histogram{}).first;
      }
      it->second.add(d.latency_s);
    }

    if (obs.seconds > 0.0 && obs.n > 0 && obs.block > 0) {
      const double base =
          baseline_seconds(&baselines, obs.algo, obs.n, obs.block);
      if (base > 0.0) {
        const std::string overhead_key = std::string(to_string(obs.algo)) +
                                         "/" + abft::to_string(obs.variant);
        ratios[overhead_key].push_back(obs.seconds / base);
      }
    }
  }

  for (const auto& [type, h] : latency) {
    out.detection_latency.emplace(type, summarize(h));
  }
  for (auto& [key, samples] : ratios) {
    std::sort(samples.begin(), samples.end());
    CampaignAnalytics::OverheadStats st;
    st.samples = static_cast<long long>(samples.size());
    st.min = samples.front();
    st.max = samples.back();
    double sum = 0.0;
    for (const double r : samples) sum += r;
    st.mean = sum / static_cast<double>(samples.size());
    st.p50 = nearest_rank(samples, 50.0);
    st.p95 = nearest_rank(samples, 95.0);
    st.p99 = nearest_rank(samples, 99.0);
    out.overhead.emplace(key, st);
  }
  return out;
}

void write_analytics_json(const CampaignAnalytics& analytics,
                          std::ostream& os) {
  using obs::fmt_double;
  using obs::write_json_string;

  os << "{\"analytics_version\":" << CampaignAnalytics::kAnalyticsVersion
     << ",\"detection_latency\":{";
  bool first = true;
  for (const auto& [type, h] : analytics.detection_latency) {
    if (!first) os << ',';
    first = false;
    write_json_string(type, os);
    os << ':';
    write_histogram_summary(h, os);
  }
  os << "},\"meta\":{";
  first = true;
  for (const auto& [k, v] : analytics.meta) {
    if (!first) os << ',';
    first = false;
    write_json_string(k, os);
    os << ':';
    write_json_string(v, os);
  }
  os << "},\"overhead\":{";
  first = true;
  for (const auto& [key, st] : analytics.overhead) {
    if (!first) os << ',';
    first = false;
    write_json_string(key, os);
    os << ":{\"max\":" << fmt_double(st.max) << ",\"mean\":"
       << fmt_double(st.mean) << ",\"min\":" << fmt_double(st.min)
       << ",\"p50\":" << fmt_double(st.p50) << ",\"p95\":"
       << fmt_double(st.p95) << ",\"p99\":" << fmt_double(st.p99)
       << ",\"samples\":" << st.samples << '}';
  }
  os << "},\"scenarios\":" << analytics.scenarios << ",\"verdicts\":{";
  first = true;
  for (const auto& [key, row] : analytics.verdicts) {
    if (!first) os << ',';
    first = false;
    write_json_string(key, os);
    os << ":[";
    for (int i = 0; i < kVerdictCount; ++i) {
      if (i != 0) os << ',';
      os << row[static_cast<std::size_t>(i)];
    }
    os << ']';
  }
  os << "}}\n";
}

bool write_analytics_json_file(const CampaignAnalytics& analytics,
                               const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_analytics_json(analytics, os);
  return static_cast<bool>(os);
}

bool read_analytics_json(std::istream& is, CampaignAnalytics* out) {
  using obs::JsonValue;

  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  if (!obs::parse_json(text, &root) ||
      root.type != JsonValue::Type::Object) {
    return false;
  }
  long long version = 0;
  if (!obs::json_get_count(root, "analytics_version", &version) ||
      version != CampaignAnalytics::kAnalyticsVersion) {
    return false;
  }

  CampaignAnalytics a;
  long long scenarios = 0;
  if (!obs::json_get_count(root, "scenarios", &scenarios)) return false;
  a.scenarios = static_cast<int>(scenarios);

  if (const JsonValue* meta = root.find("meta");
      meta != nullptr && meta->type == JsonValue::Type::Object) {
    for (const auto& [k, v] : meta->members) {
      if (v.type != JsonValue::Type::String) return false;
      a.meta[k] = v.str;
    }
  }

  const JsonValue* latency = root.find("detection_latency");
  if (latency == nullptr || latency->type != JsonValue::Type::Object) {
    return false;
  }
  for (const auto& [type, v] : latency->members) {
    HistogramSummary h;
    if (!read_histogram_summary(v, &h)) return false;
    a.detection_latency.emplace(type, std::move(h));
  }

  const JsonValue* overhead = root.find("overhead");
  if (overhead == nullptr || overhead->type != JsonValue::Type::Object) {
    return false;
  }
  for (const auto& [key, v] : overhead->members) {
    if (v.type != JsonValue::Type::Object) return false;
    CampaignAnalytics::OverheadStats st;
    if (!obs::json_get_count(v, "samples", &st.samples) ||
        !obs::json_get_number(v, "min", &st.min) ||
        !obs::json_get_number(v, "max", &st.max) ||
        !obs::json_get_number(v, "mean", &st.mean) ||
        !obs::json_get_number(v, "p50", &st.p50) ||
        !obs::json_get_number(v, "p95", &st.p95) ||
        !obs::json_get_number(v, "p99", &st.p99)) {
      return false;
    }
    a.overhead.emplace(key, st);
  }

  const JsonValue* verdicts = root.find("verdicts");
  if (verdicts == nullptr || verdicts->type != JsonValue::Type::Object) {
    return false;
  }
  for (const auto& [key, v] : verdicts->members) {
    if (v.type != JsonValue::Type::Array ||
        v.elements.size() != static_cast<std::size_t>(kVerdictCount)) {
      return false;
    }
    std::array<long long, kVerdictCount> row{};
    for (std::size_t i = 0; i < v.elements.size(); ++i) {
      if (v.elements[i].type != JsonValue::Type::Number) return false;
      row[i] = static_cast<long long>(v.elements[i].number);
    }
    a.verdicts.emplace(key, row);
  }

  *out = std::move(a);
  return true;
}

bool read_analytics_json_file(const std::string& path,
                              CampaignAnalytics* out) {
  std::ifstream is(path);
  if (!is) return false;
  return read_analytics_json(is, out);
}

}  // namespace ftla::fault
