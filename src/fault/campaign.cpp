#include "fault/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <memory>
#include <iostream>
#include <ostream>
#include <sstream>
#include <utility>

#include "abft/cholesky.hpp"
#include "abft/lu.hpp"
#include "abft/qr.hpp"
#include "blas/lapack.hpp"
#include "blas/qr.hpp"
#include "common/fp.hpp"
#include "common/spd.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "fault/process.hpp"
#include "obs/event_sink.hpp"
#include "sim/machine.hpp"
#include "sim/profile.hpp"

namespace ftla::fault {
namespace {

/// The oracle's pass/fail line. Injected magnitudes are macroscopic
/// (>= 1e3, or bit flips anchored in the high mantissa / exponent), so
/// any uncorrected corruption lands orders of magnitude above this.
constexpr double kResidualThreshold = 1.0e-6;

Verdict classify(const abft::CholeskyResult& res, double residual) {
  if (!res.success) return Verdict::FailStop;
  // NaN-safe: a NaN/Inf residual must read as corrupt, and NaN fails
  // every comparison, so test "residual < threshold" and invert.
  if (!(residual < kResidualThreshold)) return Verdict::Sdc;
  if (res.reruns > 0) return Verdict::Rerun;
  if (res.rollbacks > 0) return Verdict::RolledBack;
  return Verdict::Corrected;
}

}  // namespace

const char* to_string(Algo a) {
  switch (a) {
    case Algo::Cholesky: return "cholesky";
    case Algo::Lu: return "lu";
    case Algo::Qr: return "qr";
  }
  return "?";
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Corrected: return "corrected";
    case Verdict::RolledBack: return "rolled_back";
    case Verdict::Rerun: return "rerun";
    case Verdict::FailStop: return "fail_stop";
    case Verdict::Sdc: return "sdc";
  }
  return "?";
}

ScenarioResult run_scenario(const Scenario& sc) {
  sim::Machine m(sim::test_rig(), sim::ExecutionMode::Numeric);
  const int n = sc.n;

  Matrix<double> a(n, n);
  if (sc.algo == Algo::Qr) {
    make_uniform(a, sc.matrix_seed);
  } else {
    make_spd_diag_dominant(a, sc.matrix_seed);
  }
  const Matrix<double> pristine = a;

  Injector inj(sc.plan, EccModel{sc.ecc});
  // Attach the clock here rather than relying on the driver's telemetry
  // layer (which only wires it when an event sink / metrics registry is
  // present): the arrival process below is driven by virtual time.
  inj.set_clock([&m] { return m.host_now(); });

  FaultProcess* proc = nullptr;
  std::unique_ptr<FaultProcess> proc_storage;
  if (sc.mtbf_s > 0.0) {
    ProcessConfig pc;
    pc.mtbf_s = sc.mtbf_s;
    pc.seed = sc.fault_seed;
    pc.max_arrivals = sc.max_arrivals;
    // LU/QR geometry differs from blocked Cholesky's lower triangle;
    // let those drivers' own default-target logic place the strike.
    pc.explicit_blocks = (sc.algo == Algo::Cholesky);
    proc_storage = std::make_unique<FaultProcess>(pc, sc.nblocks());
    proc = proc_storage.get();
    inj.attach_process(proc);
  }

  // Transfer-corruption hook: planned specs replay by copy ordinal;
  // process arrivals come back as skeletons (elem_row < 0) that we
  // concretize from the in-flight copy's shape. The hook runs after the
  // numeric copy, so flipping destination bits IS mid-PCIe corruption:
  // the source stays intact and no source-side verification saw it.
  int transfer_faults = 0;
  Rng xfer_rng(sc.fault_seed ^ 0x7f4a7c15ULL);
  m.set_transfer_hook([&](const sim::TransferCtx& ctx) {
    auto specs = inj.take_transfer(ctx.seq, ctx.end, ctx.armed);
    if (std::getenv("FTLA_CAMPAIGN_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "xfer name=%s seq=%lld h2d=%d %dx%d ld=%d off=%lld "
                   "armed=%d hits=%zu t=%.4e\n",
                   ctx.name, static_cast<long long>(ctx.seq),
                   ctx.h2d ? 1 : 0, ctx.rows, ctx.cols, ctx.ld,
                   static_cast<long long>(ctx.dev_off),
                   ctx.armed ? 1 : 0, specs.size(), ctx.end);
    }
    if (specs.empty() || ctx.data == nullptr || ctx.rows <= 0 ||
        ctx.cols <= 0) {
      return;
    }
    for (FaultSpec spec : specs) {
      int r = 0;
      int c = 0;
      if (spec.elem_row >= 0) {  // planned replay: clamp to this copy
        r = std::min(spec.elem_row, ctx.rows - 1);
        c = std::min(spec.elem_col, ctx.cols - 1);
      } else {  // fresh arrival: pick the struck element now
        r = xfer_rng.uniform_int(0, ctx.rows - 1);
        c = xfer_rng.uniform_int(0, ctx.cols - 1);
        spec.elem_row = r;
        spec.elem_col = c;
        spec.bits = proc != nullptr ? proc->sample_bits()
                                    : std::vector<int>{47, 52};
      }
      double* p = ctx.data + static_cast<std::int64_t>(c) * ctx.ld + r;
      const double old_value = *p;
      double v = old_value;
      for (int b : spec.bits) v = flip_bit(v, b);
      *p = v;
      // Global coordinates are only meaningful for full-matrix device
      // copies (ld == n); checksum-strip and scratch copies record -1.
      int grow = -1;
      int gcol = -1;
      if (ctx.dev_off >= 0 && ctx.ld == n) {
        grow = static_cast<int>(ctx.dev_off % n) + r;
        gcol = static_cast<int>(ctx.dev_off / n) + c;
      }
      inj.record(spec, old_value, v, grow, gcol);
      ++transfer_faults;
    }
  });

  // A scratch registry activates the drivers' telemetry layer, which is
  // what correlates corrections back to injections (mark_detected) —
  // without it every campaign run would report zero detections.
  obs::MetricsRegistry scratch_metrics;
  // FTLA_CAMPAIGN_DEBUG=1 streams the full event log to stderr — the
  // fastest way to triage a replayed failure plan.
  std::unique_ptr<obs::JsonlStreamSink> dbg_sink;
  if (std::getenv("FTLA_CAMPAIGN_DEBUG") != nullptr) {
    dbg_sink = std::make_unique<obs::JsonlStreamSink>(std::cerr);
  }

  abft::CholeskyResult res;
  std::vector<double> tau;
  switch (sc.algo) {
    case Algo::Cholesky: {
      abft::CholeskyOptions o;
      o.variant = sc.variant;
      o.block_size = sc.block;
      o.verify_interval = sc.verify_interval;
      o.placement = sc.placement;
      o.runtime = sc.runtime;
      o.recovery = sc.recovery;
      o.checkpoint_interval = sc.checkpoint_interval;
      o.transfer_guard = sc.transfer_guard;
      o.metrics = &scratch_metrics;
      o.event_sink = dbg_sink.get();
      res = abft::cholesky(m, &a, n, o, &inj);
      break;
    }
    case Algo::Lu: {
      abft::LuOptions o;
      o.variant = sc.variant;
      o.block_size = sc.block;
      o.runtime = sc.runtime;
      o.verify_interval = sc.verify_interval;
      o.metrics = &scratch_metrics;
      o.event_sink = dbg_sink.get();
      res = abft::lu(m, &a, n, o, &inj);
      break;
    }
    case Algo::Qr: {
      abft::QrOptions o;
      o.variant = sc.variant;
      o.block_size = sc.block;
      o.runtime = sc.runtime;
      o.verify_interval = sc.verify_interval;
      o.metrics = &scratch_metrics;
      o.event_sink = dbg_sink.get();
      res = abft::qr(m, &a, &tau, n, o, &inj);
      break;
    }
  }

  ScenarioResult out;
  out.success = res.success;
  out.residual = std::numeric_limits<double>::quiet_NaN();
  if (res.success) {
    switch (sc.algo) {
      case Algo::Cholesky:
        out.residual = blas::cholesky_residual(pristine.view(), a.view());
        if (std::getenv("FTLA_CAMPAIGN_DEBUG") != nullptr) {
          double worst = 0.0;
          int wi = -1;
          int wj = -1;
          for (int jj = 0; jj < n; ++jj) {
            for (int ii = jj; ii < n; ++ii) {
              double r = pristine(ii, jj);
              for (int kk = 0; kk <= jj; ++kk) r -= a(ii, kk) * a(jj, kk);
              if (std::abs(r) > worst) {
                worst = std::abs(r);
                wi = ii;
                wj = jj;
              }
            }
          }
          std::fprintf(stderr, "residual argmax |A-LL^T|(%d,%d)=%.3e\n",
                       wi, wj, worst);
        }
        break;
      case Algo::Lu:
        out.residual = blas::lu_residual(pristine.view(), a.view());
        break;
      case Algo::Qr:
        out.residual = blas::qr_residual(pristine.view(), a.view(),
                                         tau.data());
        break;
    }
  }
  out.verdict = classify(res, out.residual);
  out.seconds = res.seconds;
  out.faults_fired = inj.fired_count();
  out.faults_detected = inj.detected_count();
  out.ecc_absorbed = inj.ecc_absorbed_count();
  out.transfer_faults = transfer_faults;
  out.errors_corrected = res.errors_corrected;
  out.rollbacks = res.rollbacks;
  out.reruns = res.reruns;
  out.fired_plan.reserve(inj.records().size());
  for (const auto& rec : inj.records()) out.fired_plan.push_back(rec.spec);
  out.records = inj.records();
  out.note = res.note;
  return out;
}

Scenario random_scenario(Rng& rng, const CampaignOptions& opt) {
  Scenario sc;
  sc.block = opt.block;
  sc.n = opt.block * rng.uniform_int(opt.min_blocks, opt.max_blocks);
  sc.matrix_seed = rng.next_u64() | 1ULL;
  sc.fault_seed = rng.next_u64() | 1ULL;

  if (rng.uniform(0.0, 1.0) < opt.lu_qr_share) {
    sc.algo = rng.uniform_int(0, 1) == 0 ? Algo::Lu : Algo::Qr;
    sc.variant = rng.uniform_int(0, 2) == 0 ? abft::Variant::NoFt
                                            : abft::Variant::EnhancedOnline;
    sc.recovery = abft::Recovery::Rerun;
  } else {
    sc.algo = Algo::Cholesky;
    switch (rng.uniform_int(0, 3)) {
      case 0: sc.variant = abft::Variant::NoFt; break;
      case 1: sc.variant = abft::Variant::Offline; break;
      case 2: sc.variant = abft::Variant::Online; break;
      default: sc.variant = abft::Variant::EnhancedOnline; break;
    }
    sc.recovery = rng.uniform_int(0, 2) == 0 ? abft::Recovery::Checkpoint
                                             : abft::Recovery::Rerun;
    switch (rng.uniform_int(0, 3)) {
      case 0: sc.placement = abft::UpdatePlacement::Blocking; break;
      case 1: sc.placement = abft::UpdatePlacement::Gpu; break;
      case 2: sc.placement = abft::UpdatePlacement::Cpu; break;
      default: sc.placement = abft::UpdatePlacement::Auto; break;
    }
  }
  // Some of the load runs the task-graph runtime so the zero-SDC
  // invariant is demonstrated over the DAG drivers, not just the bulk
  // oracle. Cholesky's graph path models Gpu-placement rerun-recovery
  // runs only (everything else falls back to bulk, docs/runtime.md), so
  // dag draws pin those axes to guarantee real graph coverage.
  if (rng.uniform(0.0, 1.0) < opt.dag_share) {
    sc.runtime = abft::RuntimeMode::Dag;
    if (sc.algo == Algo::Cholesky) {
      sc.placement = abft::UpdatePlacement::Gpu;
      sc.recovery = abft::Recovery::Rerun;
    }
  }
  sc.verify_interval = rng.uniform_int(0, 3) == 0 ? 2 : 1;
  sc.checkpoint_interval = rng.uniform_int(2, 4);
  // The zero-SDC invariant holds for the guarded variant only with the
  // PCIe windows closed; everything else runs unguarded so the campaign
  // demonstrates the paper's point (NoFt/Offline do produce sdc).
  sc.transfer_guard = (sc.variant == opt.guarded);
  sc.ecc = rng.uniform_int(0, 3) == 0;
  // Calibrated against test_rig makespans (~1e-4 virtual seconds at
  // these sizes): log-uniform MTBF giving roughly 1..8 arrivals a run.
  sc.mtbf_s = std::pow(10.0, rng.uniform(-5.0, -3.9));
  sc.max_arrivals = 8;
  return sc;
}

namespace {

/// Folds one finished scenario into the summary; the unexpected-verdict
/// handling (deterministic twin + shrinking) re-runs scenarios, so with
/// a parallel campaign this only ever executes in the serial merge
/// phase, in draw order — making the whole summary order-independent of
/// the worker schedule.
void merge_one(CampaignSummary& sum, const Scenario& sc,
               const ScenarioResult& res, const CampaignOptions& opt) {
  ++sum.scenarios_run;
  sum.faults_fired += res.faults_fired;
  sum.faults_detected += res.faults_detected;
  sum.ecc_absorbed += res.ecc_absorbed;
  sum.transfer_faults += res.transfer_faults;
  const std::string key = std::string(to_string(sc.algo)) + "/" +
                          abft::to_string(sc.variant);
  sum.verdicts[key][static_cast<int>(res.verdict)] += 1;

  if (opt.collect_observations) {
    ScenarioObservation obs;
    obs.algo = sc.algo;
    obs.variant = sc.variant;
    obs.recovery = sc.recovery;
    obs.verdict = res.verdict;
    obs.n = sc.n;
    obs.block = sc.block;
    obs.seconds = res.seconds;
    obs.faults_fired = res.faults_fired;
    for (const auto& rec : res.records) {
      if (!rec.detected()) continue;
      obs.detections.push_back(
          DetectionSample{rec.spec.type, rec.detection_latency()});
    }
    sum.observations.push_back(std::move(obs));
  }

  bool unexpected = false;
  if (res.verdict == Verdict::Sdc && sc.variant == opt.guarded) {
    ++sum.guarded_sdc;
    unexpected = true;
  }
  if (res.verdict == Verdict::FailStop && res.faults_fired == 0) {
    ++sum.unexpected_fail_stop;
    unexpected = true;
  }
  if (unexpected) {
    CampaignFailure f;
    // `scenario` stays the original stochastic run — the seeded
    // arrival process makes it replayable as-is. The deterministic
    // twin turns the fired faults into a planned list with the
    // process disabled; shrinking starts from the twin.
    f.scenario = sc;
    f.result = res;
    Scenario twin_sc = sc;
    twin_sc.mtbf_s = 0.0;
    twin_sc.plan = res.fired_plan;
    const ScenarioResult twin = run_scenario(twin_sc);
    f.reproduced = twin.verdict == res.verdict;
    if (f.reproduced && opt.shrink_failures) {
      ShrinkOutcome so = shrink_scenario(twin_sc, res.verdict,
                                         opt.max_shrink_runs);
      f.shrunk = std::move(so.scenario);
      f.shrink_runs = so.runs;
    } else {
      f.shrunk = std::move(twin_sc);
    }
    sum.failures.push_back(std::move(f));
  }
}

}  // namespace

CampaignSummary run_campaign(const CampaignOptions& opt,
                             obs::MetricsRegistry* metrics,
                             std::ostream* progress, int progress_every) {
  CampaignSummary sum;
  Rng rng(opt.seed != 0 ? opt.seed : 1);

  // abort_after truncates the campaign after a prefix of the draw
  // order. Both execution paths honor the same limit, and the rng draws
  // are identical to the full campaign's prefix, so an aborted run's
  // summary is exactly the full run's state after `limit` scenarios.
  const int limit = opt.abort_after > 0
                        ? std::min(opt.scenarios, opt.abort_after)
                        : opt.scenarios;
  sum.aborted = limit < opt.scenarios;

  if (opt.threads == 1 || limit <= 1) {
    for (int i = 0; i < limit; ++i) {
      const Scenario sc = random_scenario(rng, opt);
      const ScenarioResult res = run_scenario(sc);
      merge_one(sum, sc, res, opt);
      if (progress != nullptr && progress_every > 0 &&
          (i + 1) % progress_every == 0) {
        *progress << "[campaign] " << (i + 1) << "/" << limit
                  << " scenarios, " << sum.faults_fired << " faults fired, "
                  << sum.failures.size() << " failures\n";
      }
    }
  } else {
    // Parallel executor. Scenarios are pre-drawn serially (identical rng
    // draw order to the serial path), executed with a grain of 1 so
    // expensive scenarios load-balance, then merged in draw order. Each
    // run_scenario is self-contained (own machine, matrices, injector),
    // and BLAS nested inside a pool worker runs inline, so per-scenario
    // results are bit-identical to the serial campaign.
    std::vector<Scenario> scenarios;
    scenarios.reserve(static_cast<std::size_t>(limit));
    for (int i = 0; i < limit; ++i) {
      scenarios.push_back(random_scenario(rng, opt));
    }
    std::vector<ScenarioResult> results(scenarios.size());
    common::ThreadPool pool(opt.threads);
    common::Mutex progress_mu;
    int completed = 0;
    pool.parallel_for(0, limit, [&](std::int64_t i) {
      results[static_cast<std::size_t>(i)] =
          run_scenario(scenarios[static_cast<std::size_t>(i)]);
      if (progress != nullptr && progress_every > 0) {
        common::MutexLock lk(progress_mu);
        ++completed;
        if (completed % progress_every == 0) {
          // Completion-order progress: counts only — the aggregate
          // numbers of the serial path are not known until the merge.
          *progress << "[campaign] " << completed << "/" << limit
                    << " scenarios completed\n";
        }
      }
    });
    for (int i = 0; i < limit; ++i) {
      merge_one(sum, scenarios[static_cast<std::size_t>(i)],
                results[static_cast<std::size_t>(i)], opt);
    }
  }

  if (metrics != nullptr) {
    metrics->add_counter("campaign.scenarios", sum.scenarios_run);
    metrics->add_counter("campaign.faults.fired", sum.faults_fired);
    metrics->add_counter("campaign.faults.detected", sum.faults_detected);
    metrics->add_counter("campaign.faults.ecc_absorbed", sum.ecc_absorbed);
    metrics->add_counter("campaign.faults.transfer", sum.transfer_faults);
    metrics->add_counter("campaign.failures",
                         static_cast<long long>(sum.failures.size()));
    metrics->add_counter("campaign.guarded_sdc", sum.guarded_sdc);
    metrics->add_counter("campaign.unexpected_fail_stop",
                         sum.unexpected_fail_stop);
    for (const auto& [key, row] : sum.verdicts) {
      std::string dotted = key;
      std::replace(dotted.begin(), dotted.end(), '/', '.');
      for (int v = 0; v < kVerdictCount; ++v) {
        if (row[v] == 0) continue;
        metrics->add_counter("campaign.verdict." + dotted + "." +
                                 to_string(static_cast<Verdict>(v)),
                             row[v]);
      }
    }
  }
  return sum;
}

ShrinkOutcome shrink_scenario(const Scenario& seed_scenario, Verdict target,
                              int max_runs) {
  ShrinkOutcome out;
  out.scenario = seed_scenario;

  const auto reproduces = [&](const Scenario& cand) {
    if (out.runs >= max_runs) return false;
    ++out.runs;
    return run_scenario(cand).verdict == target;
  };

  // Phase 1: drop whole faults while the verdict survives. Restarting
  // the sweep after every successful drop keeps this ddmin-flavored
  // greedy pass order-insensitive enough for small plans.
  bool changed = true;
  while (changed && out.runs < max_runs) {
    changed = false;
    for (std::size_t i = 0; i < out.scenario.plan.size(); ++i) {
      Scenario cand = out.scenario;
      cand.plan.erase(cand.plan.begin() + static_cast<std::ptrdiff_t>(i));
      if (reproduces(cand)) {
        out.scenario = std::move(cand);
        changed = true;
        break;
      }
      if (out.runs >= max_runs) break;
    }
  }

  // Phase 2: canonicalize the survivors — single anchor bit, element
  // (0,0), default magnitude — one attribute at a time.
  for (std::size_t i = 0;
       i < out.scenario.plan.size() && out.runs < max_runs; ++i) {
    FaultSpec& f = out.scenario.plan[i];
    if (f.bits.size() > 1) {
      Scenario cand = out.scenario;
      cand.plan[i].bits = {f.bits.back()};
      if (reproduces(cand)) out.scenario = std::move(cand);
    }
    if (out.runs < max_runs &&
        (out.scenario.plan[i].elem_row != 0 ||
         out.scenario.plan[i].elem_col != 0)) {
      Scenario cand = out.scenario;
      cand.plan[i].elem_row = 0;
      cand.plan[i].elem_col = 0;
      if (reproduces(cand)) out.scenario = std::move(cand);
    }
    if (out.runs < max_runs &&
        out.scenario.plan[i].type == FaultType::Computing &&
        out.scenario.plan[i].magnitude != 1.0e4) {
      Scenario cand = out.scenario;
      cand.plan[i].magnitude = 1.0e4;
      if (reproduces(cand)) out.scenario = std::move(cand);
    }
  }
  return out;
}

namespace {

template <typename Enum>
bool enum_from_string(const std::string& s, Enum* out, int count) {
  for (int i = 0; i < count; ++i) {
    const auto e = static_cast<Enum>(i);
    if (s == to_string(e)) {
      *out = e;
      return true;
    }
  }
  return false;
}

bool variant_from_string(const std::string& s, abft::Variant* out) {
  for (int i = 0; i <= static_cast<int>(abft::Variant::EnhancedOnline);
       ++i) {
    const auto v = static_cast<abft::Variant>(i);
    if (s == abft::to_string(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

bool recovery_from_string(const std::string& s, abft::Recovery* out) {
  for (const auto r : {abft::Recovery::Rerun, abft::Recovery::Checkpoint}) {
    if (s == abft::to_string(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

bool runtime_from_string(const std::string& s, abft::RuntimeMode* out) {
  for (const auto m : {abft::RuntimeMode::Bulk, abft::RuntimeMode::Dag}) {
    if (s == abft::to_string(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool placement_from_string(const std::string& s,
                           abft::UpdatePlacement* out) {
  for (int i = 0; i <= static_cast<int>(abft::UpdatePlacement::Auto); ++i) {
    const auto p = static_cast<abft::UpdatePlacement>(i);
    if (s == abft::to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

std::string join_bits(const std::vector<int>& bits) {
  std::ostringstream os;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i > 0) os << ',';
    os << bits[i];
  }
  return os.str();
}

/// Splits "key=value"; returns false when '=' is missing.
bool split_kv(const std::string& tok, std::string* key, std::string* val) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = tok.substr(0, eq);
  *val = tok.substr(eq + 1);
  return true;
}

}  // namespace

std::string format_scenario(const Scenario& sc) {
  std::ostringstream os;
  // Round-trip precision: mtbf and magnitude feed the seeded arrival
  // process, so a lossy print would make the replay diverge.
  os << std::setprecision(17);
  os << "scenario algo=" << to_string(sc.algo)
     << " variant=" << abft::to_string(sc.variant)
     << " recovery=" << abft::to_string(sc.recovery)
     << " placement=" << abft::to_string(sc.placement)
     << " runtime=" << abft::to_string(sc.runtime) << " n=" << sc.n
     << " block=" << sc.block << " k=" << sc.verify_interval
     << " ckpt=" << sc.checkpoint_interval
     << " matrix_seed=" << sc.matrix_seed
     << " guard=" << (sc.transfer_guard ? 1 : 0)
     << " ecc=" << (sc.ecc ? 1 : 0) << " mtbf=" << sc.mtbf_s
     << " fault_seed=" << sc.fault_seed
     << " max_arrivals=" << sc.max_arrivals << "\n";
  for (const auto& f : sc.plan) {
    os << "fault type=" << to_string(f.type) << " op=" << to_string(f.op)
       << " iter=" << f.iteration << " block=" << f.block_row << ","
       << f.block_col << " elem=" << f.elem_row << "," << f.elem_col
       << " bits=" << join_bits(f.bits) << " mag=" << f.magnitude
       << " chk=" << (f.target_checksum ? 1 : 0)
       << " xfer=" << f.transfer_index << "\n";
  }
  return os.str();
}

bool parse_scenario(const std::string& text, Scenario* out,
                    std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  Scenario sc;
  sc.plan.clear();
  bool saw_header = false;

  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream toks(line);
    std::string head;
    if (!(toks >> head) || head.empty() || head[0] == '#') continue;

    const auto where = [&] {
      return "line " + std::to_string(lineno) + ": ";
    };

    if (head == "scenario") {
      saw_header = true;
      std::string tok;
      while (toks >> tok) {
        std::string key;
        std::string val;
        if (!split_kv(tok, &key, &val)) {
          return fail(where() + "expected key=value, got '" + tok + "'");
        }
        bool ok = true;
        if (key == "algo") {
          ok = enum_from_string(val, &sc.algo, 3);
        } else if (key == "variant") {
          ok = variant_from_string(val, &sc.variant);
        } else if (key == "recovery") {
          ok = recovery_from_string(val, &sc.recovery);
        } else if (key == "placement") {
          ok = placement_from_string(val, &sc.placement);
        } else if (key == "runtime") {
          // Absent in pre-runtime plans: the Bulk default applies.
          ok = runtime_from_string(val, &sc.runtime);
        } else if (key == "n") {
          sc.n = std::atoi(val.c_str());
        } else if (key == "block") {
          sc.block = std::atoi(val.c_str());
        } else if (key == "k") {
          sc.verify_interval = std::atoi(val.c_str());
        } else if (key == "ckpt") {
          sc.checkpoint_interval = std::atoi(val.c_str());
        } else if (key == "matrix_seed") {
          sc.matrix_seed = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "guard") {
          sc.transfer_guard = val != "0";
        } else if (key == "ecc") {
          sc.ecc = val != "0";
        } else if (key == "mtbf") {
          sc.mtbf_s = std::atof(val.c_str());
        } else if (key == "fault_seed") {
          sc.fault_seed = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "max_arrivals") {
          sc.max_arrivals = std::atoi(val.c_str());
        } else {
          return fail(where() + "unknown scenario key '" + key + "'");
        }
        if (!ok) {
          return fail(where() + "bad value '" + val + "' for '" + key +
                      "'");
        }
      }
      if (sc.n <= 0 || sc.block <= 0) {
        return fail(where() + "n and block must be positive");
      }
    } else if (head == "fault") {
      FaultSpec f;
      std::string tok;
      while (toks >> tok) {
        std::string key;
        std::string val;
        if (!split_kv(tok, &key, &val)) {
          return fail(where() + "expected key=value, got '" + tok + "'");
        }
        bool ok = true;
        if (key == "type") {
          ok = enum_from_string(val, &f.type, 3);
        } else if (key == "op") {
          ok = enum_from_string(val, &f.op, 4);
        } else if (key == "iter") {
          f.iteration = std::atoi(val.c_str());
        } else if (key == "block") {
          ok = std::sscanf(val.c_str(), "%d,%d", &f.block_row,
                           &f.block_col) == 2;
        } else if (key == "elem") {
          ok = std::sscanf(val.c_str(), "%d,%d", &f.elem_row,
                           &f.elem_col) == 2;
        } else if (key == "bits") {
          f.bits.clear();
          std::istringstream bs(val);
          std::string b;
          while (std::getline(bs, b, ',')) {
            if (!b.empty()) f.bits.push_back(std::atoi(b.c_str()));
          }
          ok = !f.bits.empty();
        } else if (key == "mag") {
          f.magnitude = std::atof(val.c_str());
        } else if (key == "chk") {
          f.target_checksum = val != "0";
        } else if (key == "xfer") {
          f.transfer_index = std::strtoll(val.c_str(), nullptr, 10);
        } else {
          return fail(where() + "unknown fault key '" + key + "'");
        }
        if (!ok) {
          return fail(where() + "bad value '" + val + "' for '" + key +
                      "'");
        }
      }
      sc.plan.push_back(std::move(f));
    } else {
      return fail(where() + "expected 'scenario' or 'fault', got '" +
                  head + "'");
    }
  }

  if (!saw_header) return fail("no 'scenario' header line found");
  *out = sc;
  return true;
}

}  // namespace ftla::fault
