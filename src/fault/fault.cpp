#include "fault/fault.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "common/error.hpp"
#include "fault/process.hpp"

namespace ftla::fault {

const char* to_string(FaultType t) {
  switch (t) {
    case FaultType::Computing: return "computing";
    case FaultType::Storage: return "storage";
    case FaultType::Transfer: return "transfer";
  }
  return "?";
}

const char* to_string(Op op) {
  switch (op) {
    case Op::Syrk: return "syrk";
    case Op::Gemm: return "gemm";
    case Op::Potf2: return "potf2";
    case Op::Trsm: return "trsm";
  }
  return "?";
}

Injector::Injector(std::vector<FaultSpec> plan, EccModel ecc)
    : plan_(std::move(plan)), ecc_(ecc) {}

std::vector<FaultSpec> Injector::take(FaultType type, Op op, int iteration) {
  std::vector<FaultSpec> fired;
  auto it = plan_.begin();
  while (it != plan_.end()) {
    if (it->type == type && it->op == op && it->iteration == iteration) {
      // Storage faults pass through the ECC model first; computing
      // errors are logic faults ECC cannot see.
      if (type == FaultType::Storage && ecc_.corrects(it->bits)) {
        ++ecc_absorbed_;
      } else {
        fired.push_back(*it);
      }
      it = plan_.erase(it);
    } else {
      ++it;
    }
  }
  if (process_ != nullptr && clock_ &&
      (type == FaultType::Storage || type == FaultType::Computing)) {
    const int due = process_->drain(type, clock_());
    for (int i = 0; i < due; ++i) {
      for (FaultSpec s : process_->synthesize(type, op, iteration)) {
        if (type == FaultType::Storage && ecc_.corrects(s.bits)) {
          ++ecc_absorbed_;
        } else {
          fired.push_back(s);
        }
      }
    }
  }
  return fired;
}

std::vector<FaultSpec> Injector::take_transfer(std::int64_t seq, double now,
                                               bool process_eligible) {
  std::vector<FaultSpec> fired;
  auto it = plan_.begin();
  while (it != plan_.end()) {
    if (it->type == FaultType::Transfer && it->transfer_index == seq) {
      fired.push_back(*it);
      it = plan_.erase(it);
    } else {
      ++it;
    }
  }
  if (process_eligible && process_ != nullptr) {
    const int due = process_->drain(FaultType::Transfer, now);
    for (int i = 0; i < due; ++i) {
      FaultSpec s;
      s.type = FaultType::Transfer;
      s.transfer_index = seq;
      // Element and bits are chosen by the caller, which knows the
      // shape of the in-flight copy.
      s.elem_row = -1;
      s.elem_col = -1;
      s.bits.clear();
      fired.push_back(s);
    }
  }
  return fired;
}

std::vector<FaultSpec> Injector::poll_window(Op op, int iteration) {
  std::vector<FaultSpec> fired;
  if (process_ == nullptr || !clock_) return fired;
  const int due = process_->drain(FaultType::Storage, clock_());
  for (int i = 0; i < due; ++i) {
    for (FaultSpec s : process_->synthesize(FaultType::Storage, op,
                                            iteration)) {
      if (ecc_.corrects(s.bits)) {
        ++ecc_absorbed_;
      } else {
        fired.push_back(s);
      }
    }
  }
  return fired;
}

std::int64_t Injector::record(const FaultSpec& spec, double old_value,
                              double new_value, int global_row,
                              int global_col) {
  InjectionRecord r;
  r.spec = spec;
  r.old_value = old_value;
  r.new_value = new_value;
  r.global_row = global_row;
  r.global_col = global_col;
  r.id = static_cast<std::int64_t>(records_.size());
  r.inject_time = clock_ ? clock_() : 0.0;
  records_.push_back(r);
  if (sink_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::FaultInjected;
    e.time = r.inject_time;
    e.end = r.inject_time;
    e.name = std::string("fault:") + to_string(spec.type);
    e.op = to_string(spec.op);
    e.iteration = spec.iteration;
    e.block_row = spec.block_row;
    e.block_col = spec.block_col;
    e.row = global_row;
    e.col = global_col;
    e.correlation = r.id;
    e.value = old_value;
    e.value2 = new_value;
    if (spec.target_checksum) e.detail = "target=checksum";
    sink_->post(e);
  }
  return r.id;
}

void Injector::mark_detected(std::int64_t id, double time) {
  if (id < 0 || id >= static_cast<std::int64_t>(records_.size())) return;
  auto& r = records_[static_cast<std::size_t>(id)];
  if (!r.detected()) r.detect_time = time;
}

FaultSpec computing_error_at(int iter, int nblocks, Rng& rng) {
  FTLA_CHECK(iter >= 0 && iter < nblocks);
  FaultSpec s;
  s.type = FaultType::Computing;
  s.iteration = iter;
  // The GEMM panel update exists only while there are blocks below the
  // diagonal; fall back to the SYRK diagonal update on the last column.
  s.op = iter + 1 < nblocks ? Op::Gemm : Op::Syrk;
  s.block_col = iter;
  s.block_row =
      s.op == Op::Gemm ? rng.uniform_int(iter + 1, nblocks - 1) : iter;
  s.magnitude = rng.uniform(1.0e3, 1.0e5);
  return s;
}

FaultSpec storage_error_at(int iter, int nblocks, Rng& rng) {
  FTLA_CHECK(iter >= 1 && iter < nblocks);
  FaultSpec s;
  s.type = FaultType::Storage;
  s.iteration = iter;
  // Corrupt an already-decomposed panel block that this iteration's
  // SYRK/GEMM reads — the window classic Online-ABFT leaves unprotected.
  s.op = rng.next_double() < 0.5 ? Op::Syrk : Op::Gemm;
  s.block_col = rng.uniform_int(0, iter - 1);
  s.block_row =
      s.op == Op::Syrk ? iter
                       : (iter + 1 < nblocks ? rng.uniform_int(iter + 1, nblocks - 1)
                                             : iter);
  if (s.op == Op::Gemm && s.block_row == iter) s.op = Op::Syrk;
  // Two mantissa bits + one exponent bit: multi-bit, so SEC-DED ECC
  // cannot repair it.
  s.bits = {20, 44, 54};
  return s;
}

std::vector<FaultSpec> random_plan(int count, int nblocks,
                                   std::uint64_t seed,
                                   std::optional<FaultType> only_type) {
  FTLA_CHECK(count >= 0 && nblocks >= 2);
  Rng rng(seed);
  std::vector<FaultSpec> plan;
  plan.reserve(count);
  // At most one fault per (iteration, op, type, block) hook so that
  // per-column correctability (one error per block column) holds.
  // Collisions are resampled rather than dropped, so the plan really
  // contains `count` faults; a bounded attempt budget covers the case
  // where the hook grid is smaller than the request.
  std::set<std::tuple<int, int, int, int, int>> used;
  const int max_attempts = 64 * std::max(count, 1);
  int attempts = 0;
  while (static_cast<int>(plan.size()) < count && attempts++ < max_attempts) {
    const bool computing =
        only_type ? *only_type == FaultType::Computing
                  : rng.next_double() < 0.5;
    FaultSpec s;
    if (computing) {
      s = computing_error_at(rng.uniform_int(0, nblocks - 1), nblocks, rng);
    } else {
      s = storage_error_at(rng.uniform_int(1, nblocks - 1), nblocks, rng);
    }
    const auto key = std::make_tuple(s.iteration, static_cast<int>(s.op),
                                     static_cast<int>(s.type), s.block_row,
                                     s.block_col);
    if (used.insert(key).second) plan.push_back(s);
  }
  std::stable_sort(plan.begin(), plan.end(), [](const FaultSpec& a,
                                                const FaultSpec& b) {
    return std::tie(a.iteration, a.op, a.type, a.block_row, a.block_col) <
           std::tie(b.iteration, b.op, b.type, b.block_row, b.block_col);
  });
  return plan;
}

const char* to_string(DeviceFaultKind k) {
  switch (k) {
    case DeviceFaultKind::FailStop:
      return "fail_stop";
    case DeviceFaultKind::Stall:
      return "stall";
    case DeviceFaultKind::Degrade:
      return "degrade";
  }
  return "?";
}

std::vector<DeviceFaultSpec> sample_device_faults(
    const DeviceFaultPlanConfig& cfg) {
  FTLA_CHECK(cfg.devices >= 1);
  FTLA_CHECK(cfg.horizon_s > 0.0);
  Rng rng(cfg.seed ^ 0x5851f42d4c957f2dULL);
  std::vector<DeviceFaultSpec> plan;

  // Losses strike distinct devices, and at least one device survives by
  // plan (a fully annihilated fleet certifies nothing: every job would
  // trivially fail-stop).
  const int losses = std::min(cfg.loss_count, cfg.devices - 1);
  std::vector<char> lost(static_cast<std::size_t>(cfg.devices), 0);
  for (int i = 0; i < losses; ++i) {
    int d = rng.uniform_int(0, cfg.devices - 1);
    while (lost[static_cast<std::size_t>(d)] != 0) d = (d + 1) % cfg.devices;
    lost[static_cast<std::size_t>(d)] = 1;
    DeviceFaultSpec s;
    s.kind = DeviceFaultKind::FailStop;
    s.device = d;
    s.time = rng.uniform(0.15, 0.85) * cfg.horizon_s;
    plan.push_back(s);
  }
  for (int i = 0; i < cfg.stall_count; ++i) {
    DeviceFaultSpec s;
    s.kind = DeviceFaultKind::Stall;
    s.device = rng.uniform_int(0, cfg.devices - 1);
    s.time = rng.uniform(0.15, 0.85) * cfg.horizon_s;
    s.duration = cfg.stall_duration_frac * cfg.horizon_s;
    plan.push_back(s);
  }
  for (int i = 0; i < cfg.degrade_count; ++i) {
    DeviceFaultSpec s;
    s.kind = DeviceFaultKind::Degrade;
    s.device = rng.uniform_int(0, cfg.devices - 1);
    s.time = 0.0;  // degradation is in effect from job admission
    s.rate_multiplier = cfg.degrade_multiplier;
    plan.push_back(s);
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const DeviceFaultSpec& a, const DeviceFaultSpec& b) {
                     return std::tie(a.time, a.device) <
                            std::tie(b.time, b.device);
                   });
  return plan;
}

}  // namespace ftla::fault
