#include "fault/process.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ftla::fault {

FaultProcess::FaultProcess(ProcessConfig cfg, int nblocks)
    : cfg_(cfg),
      nblocks_(nblocks),
      synth_rng_(cfg.seed ^ 0x9e3779b97f4a7c15ULL) {
  FTLA_CHECK(cfg_.mtbf_s > 0.0);
  FTLA_CHECK(nblocks_ >= 1);
  FTLA_CHECK(cfg_.devices >= 1);
  dev_.reserve(static_cast<std::size_t>(cfg_.devices));
  for (int d = 0; d < cfg_.devices; ++d) {
    // Device 0 is seeded exactly like the historical single-device
    // process; siblings mix the device id in with an odd multiplier so
    // no derived seed collides with the synth stream's seed ^ golden.
    const std::uint64_t seed =
        d == 0 ? cfg_.seed
               : cfg_.seed ^
                     (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(d));
    dev_.emplace_back(seed);
    // First arrival: exponential gap from t = 0.
    dev_.back().next_time =
        -cfg_.mtbf_s * std::log(1.0 - dev_.back().rng.next_double());
  }
}

FaultProcess::DeviceStream& FaultProcess::active_stream() {
  return dev_[static_cast<std::size_t>(active_)];
}

void FaultProcess::set_active_device(int device) {
  FTLA_CHECK(device >= 0 && device < static_cast<int>(dev_.size()));
  active_ = device;
}

void FaultProcess::set_rate_multiplier(int device, double multiplier) {
  FTLA_CHECK(device >= 0 && device < static_cast<int>(dev_.size()));
  FTLA_CHECK(multiplier > 0.0);
  auto& ds = dev_[static_cast<std::size_t>(device)];
  // Rescale the already-drawn pending gap so the change is exact when
  // applied before the device's first generated arrival.
  ds.next_time *= ds.rate_multiplier / multiplier;
  ds.rate_multiplier = multiplier;
}

int FaultProcess::arrivals_generated() const noexcept {
  int total = 0;
  for (const auto& ds : dev_) total += ds.generated;
  return total;
}

int FaultProcess::arrivals_generated(int device) const {
  FTLA_CHECK(device >= 0 && device < static_cast<int>(dev_.size()));
  return dev_[static_cast<std::size_t>(device)].generated;
}

void FaultProcess::generate_until(DeviceStream& ds, double now) {
  const double wsum = cfg_.w_computing + cfg_.w_storage + cfg_.w_transfer;
  FTLA_CHECK(wsum > 0.0);
  // The storm cap is per-device: a noisy sibling never consumes this
  // device's injection budget.
  while (ds.next_time <= now && ds.generated < cfg_.max_arrivals) {
    const double u = ds.rng.next_double() * wsum;
    int cat = 0;  // FaultType::Computing
    if (u >= cfg_.w_computing) {
      cat = u < cfg_.w_computing + cfg_.w_storage ? 1 : 2;
    }
    ++ds.pending[cat];
    ++ds.generated;
    ds.next_time += -(cfg_.mtbf_s / ds.rate_multiplier) *
                    std::log(1.0 - ds.rng.next_double());
  }
}

int FaultProcess::drain(FaultType type, double now) {
  DeviceStream& ds = active_stream();
  generate_until(ds, now);
  const int idx = static_cast<int>(type);
  const int due = ds.pending[idx];
  ds.pending[idx] = 0;
  return due;
}

std::vector<int> FaultProcess::sample_bits() {
  // One anchor bit in the high mantissa / low exponent range keeps the
  // corruption macroscopic (visible to both verification and the SDC
  // oracle); extra bits defeat SEC-DED ECC. Bits stay in 8..61 so the
  // exponent can never become all-ones — a flip never yields Inf/NaN.
  if (synth_rng_.next_double() < cfg_.p_single_bit) {
    return {synth_rng_.uniform_int(44, 56)};
  }
  std::vector<int> bits;
  bits.push_back(synth_rng_.uniform_int(44, 56));
  bits.push_back(synth_rng_.uniform_int(8, 43));
  if (synth_rng_.next_double() < 0.5) {
    bits.push_back(synth_rng_.uniform_int(57, 61));
  }
  std::sort(bits.begin(), bits.end());
  bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
  return bits;
}

std::vector<FaultSpec> FaultProcess::synthesize(FaultType type, Op op,
                                                int iteration) {
  std::vector<FaultSpec> out;
  const int j = std::clamp(iteration, 0, nblocks_ - 1);
  if (type == FaultType::Computing) {
    FaultSpec s;
    s.type = FaultType::Computing;
    s.op = op;
    s.iteration = iteration;
    // Leave the block at the driver's default output target; randomize
    // the element so strikes spread over the block.
    s.elem_row = synth_rng_.uniform_int(0, 63);
    s.elem_col = synth_rng_.uniform_int(0, 63);
    s.magnitude = synth_rng_.uniform(1.0e3, 1.0e5);
    out.push_back(s);
    return out;
  }
  FTLA_CHECK(type == FaultType::Storage);
  FaultSpec s;
  s.type = FaultType::Storage;
  s.op = op;
  s.iteration = iteration;
  if (cfg_.explicit_blocks) {
    // Live lower-triangle region: any block at or below the current
    // panel row whose column is already decomposed or being decomposed.
    // Retired rows (above j) are never re-read by the inner-product
    // algorithm, so a strike there could not influence the run.
    const int bi = synth_rng_.uniform_int(j, nblocks_ - 1);
    const int bk = synth_rng_.uniform_int(0, std::min(bi, j));
    s.block_row = bi;
    s.block_col = bk;
  }
  s.elem_row = synth_rng_.uniform_int(0, 63);
  s.elem_col = synth_rng_.uniform_int(0, 63);
  s.bits = sample_bits();
  s.target_checksum = synth_rng_.next_double() < cfg_.p_checksum_target;
  out.push_back(s);
  if (!s.target_checksum &&
      synth_rng_.next_double() < cfg_.p_double_fault) {
    // Correlated double fault: a second flip in the same column of the
    // same block. Two errors in one block column exceed the scheme's
    // correction capability and must escalate (rollback/rerun). Rows
    // stay in 0..15 so they remain distinct after the driver clamps
    // them to the block size (campaign blocks are at least 16 wide).
    FaultSpec t = s;
    out.back().elem_row = synth_rng_.uniform_int(0, 14);
    t.elem_row = synth_rng_.uniform_int(out.back().elem_row + 1, 15);
    t.bits = sample_bits();
    out.push_back(t);
  }
  return out;
}

}  // namespace ftla::fault
