// Stochastic fault-campaign engine with an independent SDC oracle.
//
// A *scenario* is one factorization run under fault: an algorithm
// (Cholesky / LU / QR), a scheme variant, a recovery policy, a matrix,
// and a fault load — either a stochastic Poisson process (process.hpp)
// or an explicit planned FaultSpec list (deterministic replay). The
// engine runs scenarios end to end and classifies each with an oracle
// that does NOT trust the scheme's own claims: it reconstructs the
// factorization product against the pristine input (cholesky_residual /
// lu_residual / qr_residual) and calls anything that passed with a bad
// residual `sdc` — silent data corruption, the failure mode the paper's
// Enhanced Online-ABFT exists to eliminate.
//
// Verdicts (exactly one per scenario):
//   corrected   — finished, clean residual, no recovery escalation
//                 (in-place correction or no effective fault)
//   rolled_back — finished clean but used >= 1 checkpoint rollback
//   rerun       — finished clean but needed >= 1 full restart
//   fail_stop   — did not produce a result (the honest failure mode)
//   sdc         — produced a WRONG result claimed as success
//
// On an unexpected verdict (sdc for the guarded variant, or fail_stop
// with zero faults fired) the campaign shrinks the scenario: the
// stochastic run's injection records give a deterministic planned twin,
// which is then greedily minimized (drop faults, reduce bit widths,
// canonicalize elements) while it still reproduces the verdict. The
// result is a replayable plan, printable with format_scenario and
// loadable with parse_scenario.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "abft/options.hpp"
#include "common/exit_codes.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace ftla::fault {

// Exit-code contract shared by every CLI tool; canonical definitions
// live in common/exit_codes.hpp (re-exported here for existing users).
using common::kExitFailStop;
using common::kExitIoError;
using common::kExitSdc;
using common::kExitSuccess;
using common::kExitUsage;

enum class Algo { Cholesky, Lu, Qr };
enum class Verdict { Corrected, RolledBack, Rerun, FailStop, Sdc };
inline constexpr int kVerdictCount = 5;

[[nodiscard]] const char* to_string(Algo a);
[[nodiscard]] const char* to_string(Verdict v);

/// One fault-campaign run, fully self-describing and replayable.
struct Scenario {
  Algo algo = Algo::Cholesky;
  abft::Variant variant = abft::Variant::EnhancedOnline;
  abft::Recovery recovery = abft::Recovery::Rerun;
  abft::UpdatePlacement placement = abft::UpdatePlacement::Gpu;
  /// Execution structure (docs/runtime.md): bulk-synchronous oracle or
  /// the dependency-driven task-graph runtime. Dag scenarios put the
  /// graph drivers under the same fault load and SDC oracle as bulk.
  abft::RuntimeMode runtime = abft::RuntimeMode::Bulk;
  int n = 64;
  int block = 16;
  int verify_interval = 1;
  int checkpoint_interval = 4;
  std::uint64_t matrix_seed = 1;
  bool transfer_guard = false;
  bool ecc = false;
  /// Stochastic load: mean time between faults in virtual seconds;
  /// <= 0 disables the arrival process (planned-only scenario).
  double mtbf_s = 0.0;
  std::uint64_t fault_seed = 1;
  int max_arrivals = 8;
  /// Planned faults (replay / shrinking); may be combined with mtbf_s.
  std::vector<FaultSpec> plan;

  [[nodiscard]] int nblocks() const { return (n + block - 1) / block; }
};

struct ScenarioResult {
  Verdict verdict = Verdict::FailStop;
  bool success = false;
  /// The oracle's residual; NaN/Inf count as corrupt.
  double residual = 0.0;
  /// Virtual makespan of the run (simulated seconds).
  double seconds = 0.0;
  int faults_fired = 0;
  int faults_detected = 0;
  int ecc_absorbed = 0;
  int transfer_faults = 0;
  long long errors_corrected = 0;
  int rollbacks = 0;
  int reruns = 0;
  /// Concrete specs of every fired fault, in firing order: running them
  /// as `plan` (with the process disabled) is the scenario's
  /// deterministic twin, the starting point for shrinking.
  std::vector<FaultSpec> fired_plan;
  /// Full injection records (inject/detect timestamps) for the same
  /// faults, for per-fault triage of a replayed scenario.
  std::vector<InjectionRecord> records;
  std::string note;
};

/// Runs one scenario end to end and classifies it with the oracle.
ScenarioResult run_scenario(const Scenario& sc);

struct CampaignOptions {
  int scenarios = 200;
  std::uint64_t seed = 1;
  /// Matrix sizes are block multiples drawn from [min_blocks, max_blocks].
  int min_blocks = 3;
  int max_blocks = 7;
  int block = 16;
  /// Share of scenarios exercising the LU/QR extensions (their fault
  /// surface is smaller: NoFt/EnhancedOnline, rerun recovery only).
  double lu_qr_share = 0.25;
  /// Share of scenarios running the task-graph runtime instead of the
  /// bulk oracle (docs/runtime.md). Cholesky dag draws pin placement to
  /// Gpu and recovery to rerun — the combinations the graph models — so
  /// every dag scenario genuinely exercises the graph path.
  double dag_share = 0.25;
  /// The variant carrying the zero-SDC invariant: any sdc verdict for
  /// it is a campaign failure (and gets shrunk).
  abft::Variant guarded = abft::Variant::EnhancedOnline;
  bool shrink_failures = true;
  int max_shrink_runs = 64;
  /// Scenario-level parallelism (0 = all hardware threads). Scenarios
  /// are pre-drawn serially from the campaign seed, executed on a local
  /// thread pool, and merged in draw order, so every per-scenario
  /// verdict, fired plan and the whole summary (including shrinking,
  /// which runs in the serial merge phase) is bit-identical to a
  /// single-threaded campaign.
  int threads = 1;
  /// Retain one ScenarioObservation per scenario for cross-scenario
  /// analytics (analytics.hpp). Off by default: a large campaign's
  /// observations are only needed when --analytics-out is requested.
  bool collect_observations = false;
  /// Stop after this many scenarios (0 = run all). An aborted campaign
  /// is the deterministic "killed mid-flight" case: the completed
  /// prefix is identical to the same-seed full campaign's, and the
  /// summary is flagged `aborted` so callers exit nonzero and dump a
  /// postmortem bundle.
  int abort_after = 0;
};

/// Draws a randomized scenario (algorithm, variant, recovery, size,
/// fault load) from the campaign distribution.
Scenario random_scenario(Rng& rng, const CampaignOptions& opt);

struct CampaignFailure {
  Scenario scenario;        ///< deterministic twin of the failing run
  ScenarioResult result;    ///< the unexpected outcome
  Scenario shrunk;          ///< minimal reproducer (== scenario if the
                            ///< twin did not reproduce or shrinking off)
  bool reproduced = false;  ///< twin reproduced the verdict
  int shrink_runs = 0;
};

/// One detected fault's latency sample, tagged by fault type.
struct DetectionSample {
  FaultType type = FaultType::Computing;
  double latency_s = 0.0;
};

/// Per-scenario record kept (only when CampaignOptions::
/// collect_observations) for cross-scenario aggregation. Deliberately
/// small — the analytics layer wants distributions, not replays.
struct ScenarioObservation {
  Algo algo = Algo::Cholesky;
  abft::Variant variant = abft::Variant::EnhancedOnline;
  abft::Recovery recovery = abft::Recovery::Rerun;
  Verdict verdict = Verdict::FailStop;
  int n = 0;
  int block = 0;
  double seconds = 0.0;
  int faults_fired = 0;
  std::vector<DetectionSample> detections;
};

struct CampaignSummary {
  int scenarios_run = 0;
  long long faults_fired = 0;
  long long faults_detected = 0;
  long long ecc_absorbed = 0;
  long long transfer_faults = 0;
  /// Verdict histogram keyed "algo/variant", indexed by Verdict.
  std::map<std::string, std::array<long long, kVerdictCount>> verdicts;
  long long guarded_sdc = 0;           ///< sdc count for the guarded variant
  long long unexpected_fail_stop = 0;  ///< fail-stop with zero faults fired
  std::vector<CampaignFailure> failures;
  /// Per-scenario observations, in draw order (empty unless
  /// CampaignOptions::collect_observations).
  std::vector<ScenarioObservation> observations;
  /// The campaign stopped at CampaignOptions::abort_after before
  /// covering every drawn scenario.
  bool aborted = false;

  [[nodiscard]] bool clean() const noexcept { return failures.empty(); }
};

/// Runs the campaign. When `metrics` is given, verdict counters and
/// totals are exported under "campaign.*" (see docs/fault-model.md for
/// the report schema). `progress`, when non-null, receives one status
/// line every `progress_every` scenarios.
CampaignSummary run_campaign(const CampaignOptions& opt,
                             obs::MetricsRegistry* metrics = nullptr,
                             std::ostream* progress = nullptr,
                             int progress_every = 100);

struct ShrinkOutcome {
  Scenario scenario;  ///< the minimal scenario found
  int runs = 0;       ///< scenario executions spent shrinking
};

/// Greedy ddmin-style minimizer: drops planned faults one at a time,
/// then narrows each survivor (single bit, canonical element, default
/// magnitude), keeping a candidate only when run_scenario still returns
/// `target`. `seed_scenario` must be a planned (deterministic) scenario
/// that already reproduces `target`.
ShrinkOutcome shrink_scenario(const Scenario& seed_scenario, Verdict target,
                              int max_runs = 64);

/// Human-readable AND machine-parsable scenario serialization: one
/// `scenario ...` header line plus one `fault ...` line per planned
/// fault. Round-trips through parse_scenario.
std::string format_scenario(const Scenario& sc);
bool parse_scenario(const std::string& text, Scenario* out,
                    std::string* error);

}  // namespace ftla::fault
